#include "bio/tap_sim.hpp"

#include <gtest/gtest.h>

#include "bio/bait.hpp"
#include "bio/cellzome_synth.hpp"

namespace hp::bio {
namespace {

hyper::Hypergraph two_complexes() {
  hyper::HypergraphBuilder b{5};
  b.add_edge({0, 1, 2});
  b.add_edge({2, 3, 4});
  return b.build();
}

TEST(TapSim, PerfectSuccessRecoversEverything) {
  Rng rng{1};
  const TapSimParams params{1.0, 10};
  const TapSimResult r = simulate_tap(two_complexes(), {2}, params, rng);
  EXPECT_DOUBLE_EQ(r.mean_recovered_fraction, 1.0);
  EXPECT_EQ(r.uncoverable_complexes, 0u);
}

TEST(TapSim, ZeroSuccessRecoversNothing) {
  Rng rng{2};
  const TapSimParams params{0.0, 10};
  const TapSimResult r = simulate_tap(two_complexes(), {2}, params, rng);
  EXPECT_DOUBLE_EQ(r.mean_recovered_fraction, 0.0);
}

TEST(TapSim, UncoveredComplexesReported) {
  Rng rng{3};
  const TapSimParams params{1.0, 5};
  const TapSimResult r = simulate_tap(two_complexes(), {0}, params, rng);
  EXPECT_EQ(r.uncoverable_complexes, 1u);  // second complex has no bait
  EXPECT_DOUBLE_EQ(r.mean_recovered_fraction, 1.0);  // of the coverable one
}

TEST(TapSim, SingleBaitMatchesBernoulliRate) {
  Rng rng{4};
  hyper::HypergraphBuilder b{2};
  b.add_edge({0, 1});
  const TapSimParams params{0.7, 2000};
  const TapSimResult r = simulate_tap(b.build(), {0}, params, rng);
  EXPECT_NEAR(r.mean_recovered_fraction, 0.7, 0.03);
}

TEST(TapSim, DoubleCoverBeatsSingleCoverUnderFailures) {
  // The paper's reliability motivation, measured: with 70 % per-pulldown
  // success, a 2-multicover recovers a larger fraction of complexes per
  // round than a minimum 1-cover.
  CellzomeParams p;
  p.num_proteins = 400;
  p.num_complexes = 80;
  p.degree_one_proteins = 240;
  p.max_degree = 12;
  p.core_proteins = 20;
  p.core_complexes = 15;
  p.core_memberships = 4;
  p.max_complex_size = 30;
  const ComplexDataset data = cellzome_surrogate(p);
  const hyper::Hypergraph& h = data.hypergraph;

  const BaitSelection single =
      select_baits(h, BaitStrategy::kMinCardinality);
  const BaitSelection twice = select_baits(h, BaitStrategy::kDoubleCoverage);

  Rng rng{5};
  const TapSimParams params{0.7, 300};
  const TapSimResult r1 = simulate_tap(h, single.baits, params, rng);
  const TapSimResult r2 = simulate_tap(h, twice.baits, params, rng);
  EXPECT_GT(r2.mean_recovered_fraction, r1.mean_recovered_fraction + 0.05);
  // Single cover with p = 0.7: roughly 70 % of the complexes per round.
  EXPECT_NEAR(r1.mean_recovered_fraction, 0.72, 0.12);
}

TEST(TapSim, RejectsBadParams) {
  Rng rng{6};
  EXPECT_THROW(simulate_tap(two_complexes(), {0}, {1.5, 10}, rng),
               InvalidInputError);
  EXPECT_THROW(simulate_tap(two_complexes(), {0}, {0.5, 0}, rng),
               InvalidInputError);
  EXPECT_THROW(simulate_tap(two_complexes(), {9}, {0.5, 10}, rng),
               InvalidInputError);
}

}  // namespace
}  // namespace hp::bio
