#include "bio/complex_io.hpp"

#include <gtest/gtest.h>

namespace hp::bio {
namespace {

constexpr const char* kSample =
    "# test complexes\n"
    "Arp2/3\tARP2\tARP3\tARC15\n"
    "SAGA\tGCN5\tADA2\tSPT7\tARP2\n"
    "Solo\tONLY1\n";

TEST(ComplexIo, ParsesTabSeparated) {
  const ComplexDataset d = parse_complex_table(kSample);
  EXPECT_EQ(d.hypergraph.num_edges(), 3u);
  EXPECT_EQ(d.hypergraph.num_vertices(), 7u);  // ARP2 shared
  EXPECT_EQ(d.complex_names[0], "Arp2/3");
  // ARP2 is in both complexes.
  const index_t arp2 = d.proteins.id_of("ARP2");
  EXPECT_EQ(d.hypergraph.vertex_degree(arp2), 2u);
}

TEST(ComplexIo, ParsesWhitespaceSeparated) {
  const ComplexDataset d = parse_complex_table("C1 P1 P2\nC2 P2 P3\n");
  EXPECT_EQ(d.hypergraph.num_edges(), 2u);
  EXPECT_EQ(d.hypergraph.num_vertices(), 3u);
}

TEST(ComplexIo, SkipsCommentsAndBlank) {
  const ComplexDataset d =
      parse_complex_table("# c\n\nC1 P1\n  \n# another\nC2 P2\n");
  EXPECT_EQ(d.hypergraph.num_edges(), 2u);
}

TEST(ComplexIo, RejectsMalformed) {
  EXPECT_THROW(parse_complex_table("LonelyName\n"), ParseError);
  EXPECT_THROW(parse_complex_table("C1 P1\nC1 P2\n"), ParseError);  // dup
}

TEST(ComplexIo, RoundTrip) {
  const ComplexDataset d = parse_complex_table(kSample);
  const ComplexDataset back = parse_complex_table(format_complex_table(d));
  EXPECT_EQ(back.hypergraph, d.hypergraph);
  EXPECT_EQ(back.complex_names, d.complex_names);
  EXPECT_EQ(back.proteins.names(), d.proteins.names());
}

TEST(ComplexIo, SingletonComplexSupported) {
  const ComplexDataset d = parse_complex_table("Solo P1\n");
  EXPECT_EQ(d.hypergraph.num_edges(), 1u);
  EXPECT_EQ(d.hypergraph.edge_size(0), 1u);
}

TEST(ComplexIo, DuplicateProteinWithinComplexMerged) {
  const ComplexDataset d = parse_complex_table("C1 P1 P1 P2\n");
  EXPECT_EQ(d.hypergraph.edge_size(0), 2u);
}

}  // namespace
}  // namespace hp::bio
