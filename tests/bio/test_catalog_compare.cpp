#include "bio/catalog_compare.hpp"

#include <gtest/gtest.h>

#include "bio/tap_sim.hpp"
#include "util/rng.hpp"

namespace hp::bio {
namespace {

hyper::Hypergraph catalog(std::initializer_list<std::vector<index_t>> edges,
                          index_t num_vertices) {
  hyper::HypergraphBuilder b{num_vertices};
  for (const auto& e : edges) b.add_edge(e);
  return b.build();
}

TEST(BestMatches, IdenticalCatalogs) {
  const auto h = catalog({{0, 1, 2}, {3, 4}}, 5);
  const auto m = best_matches(h, h);
  ASSERT_EQ(m.size(), 2u);
  EXPECT_EQ(m[0].counterpart, 0u);
  EXPECT_DOUBLE_EQ(m[0].jaccard, 1.0);
  EXPECT_EQ(m[1].counterpart, 1u);
}

TEST(BestMatches, PicksHighestJaccard) {
  const auto predicted = catalog({{0, 1, 2}}, 6);
  const auto reference = catalog({{0, 5}, {0, 1, 2, 3}}, 6);
  const auto m = best_matches(predicted, reference);
  // Jaccard with {0,5} = 1/4; with {0,1,2,3} = 3/4.
  EXPECT_EQ(m[0].counterpart, 1u);
  EXPECT_DOUBLE_EQ(m[0].jaccard, 0.75);
}

TEST(BestMatches, NoOverlapMeansNoMatch) {
  const auto predicted = catalog({{0, 1}}, 4);
  const auto reference = catalog({{2, 3}}, 4);
  const auto m = best_matches(predicted, reference);
  EXPECT_EQ(m[0].counterpart, kInvalidIndex);
  EXPECT_DOUBLE_EQ(m[0].jaccard, 0.0);
}

TEST(BestMatches, RejectsDifferentUniverses) {
  const auto a = catalog({{0, 1}}, 3);
  const auto b = catalog({{0, 1}}, 4);
  EXPECT_THROW(best_matches(a, b), InvalidInputError);
}

TEST(CompareCatalogs, PerfectAgreement) {
  const auto h = catalog({{0, 1, 2}, {3, 4}, {5, 6, 7}}, 8);
  const CatalogComparison c = compare_catalogs(h, h);
  EXPECT_DOUBLE_EQ(c.precision, 1.0);
  EXPECT_DOUBLE_EQ(c.recall, 1.0);
  EXPECT_DOUBLE_EQ(c.f1, 1.0);
  EXPECT_DOUBLE_EQ(c.mean_jaccard, 1.0);
}

TEST(CompareCatalogs, PartialAgreement) {
  // Predicted recovers one of two reference complexes exactly and
  // invents one extra.
  const auto predicted = catalog({{0, 1, 2}, {6, 7}}, 8);
  const auto reference = catalog({{0, 1, 2}, {3, 4, 5}}, 8);
  const CatalogComparison c = compare_catalogs(predicted, reference, 0.5);
  EXPECT_EQ(c.matched_predicted, 1u);
  EXPECT_EQ(c.matched_reference, 1u);
  EXPECT_DOUBLE_EQ(c.precision, 0.5);
  EXPECT_DOUBLE_EQ(c.recall, 0.5);
}

TEST(CompareCatalogs, ThresholdMatters) {
  const auto predicted = catalog({{0, 1, 2, 3}}, 8);
  const auto reference = catalog({{0, 1, 2, 4, 5}}, 8);  // Jaccard 3/6 = 0.5
  EXPECT_EQ(compare_catalogs(predicted, reference, 0.5).matched_predicted,
            1u);
  EXPECT_EQ(compare_catalogs(predicted, reference, 0.6).matched_predicted,
            0u);
  EXPECT_THROW(compare_catalogs(predicted, reference, 0.0),
               InvalidInputError);
}

TEST(CompareCatalogs, NoisyReplicationScenario) {
  // Simulate the paper's repeat-the-experiment scenario: the reference
  // catalog observed through a noisy channel (each membership kept with
  // p = 0.8) should still be recognizably the same catalog at a loose
  // threshold.
  Rng rng{77};
  hyper::HypergraphBuilder truth_b{60};
  for (index_t e = 0; e < 12; ++e) {
    std::vector<index_t> members;
    for (index_t i = 0; i < 5; ++i) {
      members.push_back(static_cast<index_t>((e * 5 + i) % 60));
    }
    truth_b.add_edge(members);
  }
  const hyper::Hypergraph truth = truth_b.build();

  hyper::HypergraphBuilder noisy_b{60};
  for (index_t e = 0; e < truth.num_edges(); ++e) {
    std::vector<index_t> members;
    for (index_t v : truth.vertices_of(e)) {
      if (rng.bernoulli(0.8)) members.push_back(v);
    }
    if (members.empty()) {
      members.push_back(truth.vertices_of(e).front());
    }
    noisy_b.add_edge(members);
  }
  const CatalogComparison c =
      compare_catalogs(noisy_b.build(), truth, 0.5);
  EXPECT_GT(c.recall, 0.7);
  EXPECT_GT(c.precision, 0.7);
  EXPECT_GT(c.mean_jaccard, 0.6);
}

}  // namespace
}  // namespace hp::bio
