#include "bio/dip_surrogate.hpp"

#include <gtest/gtest.h>

#include "graph/graph_kcore.hpp"

namespace hp::bio {
namespace {

TEST(YeastPpiSurrogate, MatchesPublishedScaleAndCoreBand) {
  Rng rng{4746};
  const graph::Graph g = yeast_ppi_surrogate({}, rng);
  EXPECT_EQ(g.num_vertices(), 4746u);
  // Expected average degree ~ 6.3.
  const double mean = 2.0 * static_cast<double>(g.num_edges()) /
                      g.num_vertices();
  EXPECT_NEAR(mean, 6.3, 1.2);
  // Paper: max core k = 10 with 33 proteins; the surrogate lands close.
  const graph::CoreDecomposition d = graph::core_decomposition(g);
  EXPECT_GE(d.max_core, 8u);
  EXPECT_LE(d.max_core, 13u);
  EXPECT_LT(d.max_core_vertices().size(), 150u);
}

TEST(FlyPpiSurrogate, ShallowButLargeCore) {
  Rng rng{7000};
  const graph::Graph g = fly_ppi_surrogate({}, rng);
  EXPECT_EQ(g.num_vertices(), 7000u);
  const graph::CoreDecomposition d = graph::core_decomposition(g);
  // Paper: k = 8 with 577 proteins.
  EXPECT_GE(d.max_core, 6u);
  EXPECT_LE(d.max_core, 10u);
  EXPECT_GT(d.max_core_vertices().size(), 300u);
}

TEST(FlyPpiSurrogate, QualitativeRelationToYeast) {
  Rng a{1}, b{2};
  const graph::CoreDecomposition yeast =
      graph::core_decomposition(yeast_ppi_surrogate({}, a));
  const graph::CoreDecomposition fly =
      graph::core_decomposition(fly_ppi_surrogate({}, b));
  // Yeast core deeper, fly core far larger.
  EXPECT_GT(yeast.max_core, fly.max_core - 4);  // deeper or comparable
  EXPECT_GT(fly.max_core_vertices().size(),
            5 * yeast.max_core_vertices().size());
}

TEST(FlyPpiSurrogate, RejectsOversizedBlock) {
  Rng rng{3};
  FlyPpiParams p;
  p.block_offset = 6800;
  p.block_size = 600;
  EXPECT_THROW(fly_ppi_surrogate(p, rng), InvalidInputError);
}

TEST(DipSurrogates, DeterministicForSeed) {
  Rng a{9}, b{9};
  YeastPpiParams p;
  p.num_proteins = 500;
  p.average_degree = 5.0;
  const graph::Graph g1 = yeast_ppi_surrogate(p, a);
  const graph::Graph g2 = yeast_ppi_surrogate(p, b);
  ASSERT_EQ(g1.num_edges(), g2.num_edges());
  for (index_t v = 0; v < g1.num_vertices(); ++v) {
    EXPECT_EQ(g1.degree(v), g2.degree(v));
  }
}

}  // namespace
}  // namespace hp::bio
