#include "bio/protein.hpp"

#include <gtest/gtest.h>

namespace hp::bio {
namespace {

TEST(ProteinRegistry, InternAssignsDenseIds) {
  ProteinRegistry r;
  EXPECT_EQ(r.intern("ADH1"), 0u);
  EXPECT_EQ(r.intern("CDC28"), 1u);
  EXPECT_EQ(r.intern("ADH1"), 0u);  // idempotent
  EXPECT_EQ(r.size(), 2u);
}

TEST(ProteinRegistry, LookupBothDirections) {
  ProteinRegistry r;
  r.intern("A");
  r.intern("B");
  EXPECT_EQ(r.id_of("B"), 1u);
  EXPECT_EQ(r.name_of(0), "A");
  EXPECT_TRUE(r.contains("A"));
  EXPECT_FALSE(r.contains("C"));
}

TEST(ProteinRegistry, ErrorsOnBadLookups) {
  ProteinRegistry r;
  r.intern("A");
  EXPECT_THROW(r.id_of("missing"), InvalidInputError);
  EXPECT_THROW(r.name_of(5), InvalidInputError);
  EXPECT_THROW(r.intern(""), InvalidInputError);
}

TEST(ProteinRegistry, NamesVectorInIdOrder) {
  ProteinRegistry r;
  r.intern("x");
  r.intern("y");
  r.intern("z");
  EXPECT_EQ(r.names(), (std::vector<std::string>{"x", "y", "z"}));
}

}  // namespace
}  // namespace hp::bio
