#include "bio/core_recovery.hpp"

#include <gtest/gtest.h>

#include "bio/cellzome_synth.hpp"
#include "core/kcore.hpp"
#include "core/projection.hpp"
#include "graph/graph_kcore.hpp"

namespace hp::bio {
namespace {

TEST(RecoveryStats, ExactMatch) {
  const RecoveryStats s = recovery_stats({1, 2, 3}, {3, 2, 1});
  EXPECT_EQ(s.true_positives, 3u);
  EXPECT_DOUBLE_EQ(s.precision, 1.0);
  EXPECT_DOUBLE_EQ(s.recall, 1.0);
  EXPECT_DOUBLE_EQ(s.f1, 1.0);
  EXPECT_DOUBLE_EQ(s.jaccard, 1.0);
}

TEST(RecoveryStats, PartialOverlap) {
  const RecoveryStats s = recovery_stats({1, 2, 3, 4}, {3, 4, 5, 6, 7, 8});
  EXPECT_EQ(s.true_positives, 2u);
  EXPECT_EQ(s.false_positives, 2u);
  EXPECT_EQ(s.false_negatives, 4u);
  EXPECT_DOUBLE_EQ(s.precision, 0.5);
  EXPECT_NEAR(s.recall, 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(s.jaccard, 2.0 / 8.0, 1e-12);
}

TEST(RecoveryStats, EmptySets) {
  const RecoveryStats both = recovery_stats({}, {});
  EXPECT_DOUBLE_EQ(both.precision, 1.0);
  EXPECT_DOUBLE_EQ(both.jaccard, 1.0);
  const RecoveryStats none_predicted = recovery_stats({}, {1, 2});
  EXPECT_DOUBLE_EQ(none_predicted.recall, 0.0);
  EXPECT_DOUBLE_EQ(none_predicted.f1, 0.0);
}

TEST(RecoveryStats, DuplicatesIgnored) {
  const RecoveryStats s = recovery_stats({1, 1, 2, 2}, {1, 2});
  EXPECT_DOUBLE_EQ(s.precision, 1.0);
  EXPECT_DOUBLE_EQ(s.recall, 1.0);
}

TEST(CoreRecovery, HypergraphCoreRecoversPlantedModuleWell) {
  // The surrogate plants its core module at vertex ids
  // [0, core_proteins); the computed maximum core should retrieve it
  // with high precision and recall.
  CellzomeParams params;
  const ComplexDataset data = cellzome_surrogate(params);
  const hyper::HyperCoreResult cores =
      hyper::core_decomposition(data.hypergraph);
  std::vector<index_t> planted;
  for (index_t v = 0; v < params.core_proteins; ++v) planted.push_back(v);

  const RecoveryStats hyper_stats =
      recovery_stats(cores.core_vertices(cores.max_core), planted);
  EXPECT_GT(hyper_stats.precision, 0.9);
  EXPECT_GT(hyper_stats.recall, 0.9);

  // The paper's warning quantified: the clique-expansion graph core is a
  // much blunter instrument for the same retrieval task.
  const graph::Graph clique = hyper::clique_expansion(data.hypergraph);
  const graph::CoreDecomposition gcores = graph::core_decomposition(clique);
  const RecoveryStats graph_stats =
      recovery_stats(gcores.max_core_vertices(), planted);
  EXPECT_LT(graph_stats.f1, hyper_stats.f1);
}

}  // namespace
}  // namespace hp::bio
