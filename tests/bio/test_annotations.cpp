#include "bio/annotations.hpp"

#include <gtest/gtest.h>

namespace hp::bio {
namespace {

TEST(SimulateAnnotations, SizesAndDeterminism) {
  Rng a{5}, b{5};
  const AnnotationSet x = simulate_annotations(100, {1, 2, 3}, {}, a);
  const AnnotationSet y = simulate_annotations(100, {1, 2, 3}, {}, b);
  EXPECT_EQ(x.size(), 100u);
  EXPECT_EQ(x.essential, y.essential);
  EXPECT_EQ(x.homolog, y.homolog);
  EXPECT_EQ(x.known, y.known);
}

TEST(SimulateAnnotations, CoreRatesAreElevated) {
  Rng rng{7};
  std::vector<index_t> core;
  for (index_t v = 0; v < 400; ++v) core.push_back(v);  // half the proteome
  const AnnotationSet a = simulate_annotations(800, core, {}, rng);
  index_t core_essential = 0, bg_essential = 0;
  for (index_t v = 0; v < 400; ++v) core_essential += a.essential[v] ? 1 : 0;
  for (index_t v = 400; v < 800; ++v) bg_essential += a.essential[v] ? 1 : 0;
  // Core essential rate ~ (32/41)*(22/32) = 0.54 vs background ~ 0.15.
  EXPECT_GT(core_essential, 2 * bg_essential);
}

TEST(SimulateAnnotations, BackgroundRatesMatchCygd) {
  Rng rng{11};
  const AnnotationSet a = simulate_annotations(20000, {}, {}, rng);
  index_t essential = 0;
  for (index_t v = 0; v < a.size(); ++v) essential += a.essential[v] ? 1 : 0;
  // P(essential) = P(known) * P(essential | known) = 0.70 * (878/4036).
  const double expected = 0.70 * 878.0 / 4036.0;
  EXPECT_NEAR(essential / 20000.0, expected, 0.02);
}

TEST(SimulateAnnotations, RejectsOutOfRangeCoreIds) {
  Rng rng{1};
  EXPECT_THROW(simulate_annotations(10, {10}, {}, rng), InvalidInputError);
}

TEST(AnnotationsIo, RoundTrip) {
  ProteinRegistry reg;
  reg.intern("A");
  reg.intern("B");
  reg.intern("C");
  AnnotationSet a;
  a.essential = {true, false, true};
  a.homolog = {false, true, true};
  a.known = {true, true, false};
  const AnnotationSet back = parse_annotations(format_annotations(a, reg), reg);
  EXPECT_EQ(back.essential, a.essential);
  EXPECT_EQ(back.homolog, a.homolog);
  EXPECT_EQ(back.known, a.known);
}

TEST(AnnotationsIo, UnknownProteinsSkipped) {
  ProteinRegistry reg;
  reg.intern("A");
  const AnnotationSet a = parse_annotations(
      "A essential homolog known\nZZZ essential homolog known\n", reg);
  EXPECT_TRUE(a.essential[0]);
}

TEST(AnnotationsIo, RejectsMalformedLines) {
  ProteinRegistry reg;
  reg.intern("A");
  EXPECT_THROW(parse_annotations("A essential\n", reg), ParseError);
  EXPECT_THROW(parse_annotations("A maybe homolog known\n", reg), ParseError);
  EXPECT_THROW(parse_annotations("A essential what known\n", reg),
               ParseError);
  EXPECT_THROW(parse_annotations("A essential homolog maybe\n", reg),
               ParseError);
}

}  // namespace
}  // namespace hp::bio
