// Golden regression for the paper's §3 numbers on the synthetic
// Cellzome surrogate at the default seed. The neighbouring suites
// assert banded properties; this one pins the EXACT values the repo
// currently reproduces, so any drift in the generator, the peel
// substrate, reduction, or traversal shows up as a one-line diff
// against the published table rather than a silent recalibration.
//
// Paper (Table 1 / §3) vs surrogate at default seed:
//   proteins            1361        1361  (exact)
//   complexes            232         232  (exact)
//   max vertex degree     21          21  (exact)
//   degree-1 proteins    846         846  (exact)
//   max core               6           6  (exact)
//   6-core proteins       41          41  (exact)
//   6-core complexes      54          55  (surrogate; documented
//                                          discrepancy, see DESIGN.md)
//   diameter               6           6  (exact)
//   avg path length    2.568      2.5805  (surrogate)
//
// If an intentional change moves one of these, update the constant in
// the same commit and say why in its message.
#include <gtest/gtest.h>

#include "bio/cellzome_synth.hpp"
#include "core/kcore.hpp"
#include "core/reduce.hpp"
#include "core/stats.hpp"
#include "core/traversal.hpp"

namespace hp::bio {
namespace {

const ComplexDataset& surrogate() {
  static const ComplexDataset data = cellzome_surrogate();
  return data;
}

TEST(PaperGolden, DatasetShape) {
  const auto& h = surrogate().hypergraph;
  EXPECT_EQ(h.num_vertices(), 1361u);
  EXPECT_EQ(h.num_edges(), 232u);
  EXPECT_EQ(h.max_vertex_degree(), 21u);
  EXPECT_EQ(hyper::summarize(h).degree_one_vertices, 846u);
}

TEST(PaperGolden, SixCoreExactSizes) {
  const auto r = hyper::core_decomposition(surrogate().hypergraph);
  EXPECT_EQ(r.max_core, 6u);
  EXPECT_EQ(r.core_vertices(6).size(), 41u);  // paper: 41 proteins
  EXPECT_EQ(r.core_edges(6).size(), 55u);     // paper: 54 complexes
}

TEST(PaperGolden, FullCoreLevelProfile) {
  const auto r = hyper::core_decomposition(surrogate().hypergraph);
  const std::vector<index_t> expected_vertices = {1361, 1361, 495, 188,
                                                  48,   43,   41};
  const std::vector<index_t> expected_edges = {184, 184, 153, 129,
                                               67,  55,  55};
  EXPECT_EQ(r.level_vertices, expected_vertices);
  EXPECT_EQ(r.level_edges, expected_edges);
}

TEST(PaperGolden, InitialReductionKeeps184Complexes) {
  // 232 complexes reduce to 184 maximal ones before peeling starts.
  EXPECT_EQ(hyper::reduce(surrogate().hypergraph).hypergraph.num_edges(),
            184u);
}

TEST(PaperGolden, ComponentStructure) {
  const auto c = hyper::connected_components(surrogate().hypergraph);
  EXPECT_EQ(c.count, 15u);
  EXPECT_EQ(c.vertex_counts[c.largest()], 1335u);  // giant component
}

TEST(PaperGolden, PathStatistics) {
  const auto p = hyper::path_summary(surrogate().hypergraph);
  EXPECT_EQ(p.diameter, 6u);  // paper: diameter 6
  EXPECT_NEAR(p.average_length, 2.5805, 5e-4);  // paper: 2.568
  EXPECT_EQ(p.connected_pairs, 1780914u);
}

}  // namespace
}  // namespace hp::bio
