#include "bio/enrichment.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace hp::bio {
namespace {

TEST(HypergeometricTail, KnownSmallValues) {
  // Population 10, 5 successes, draw 4. P(X >= 1) = 1 - C(5,4)/C(10,4)
  // = 1 - 5/210.
  EXPECT_NEAR(hypergeometric_tail(10, 5, 4, 1), 1.0 - 5.0 / 210.0, 1e-12);
  // P(X >= 4) = C(5,4)/C(10,4) = 5/210.
  EXPECT_NEAR(hypergeometric_tail(10, 5, 4, 4), 5.0 / 210.0, 1e-12);
}

TEST(HypergeometricTail, Extremes) {
  EXPECT_DOUBLE_EQ(hypergeometric_tail(100, 50, 10, 0), 1.0);
  EXPECT_DOUBLE_EQ(hypergeometric_tail(100, 50, 10, 11), 0.0);
  // Drawing everything: observed = successes with certainty.
  EXPECT_NEAR(hypergeometric_tail(20, 7, 20, 7), 1.0, 1e-12);
}

TEST(HypergeometricTail, MonotoneInObserved) {
  double prev = 1.1;
  for (count_t k = 0; k <= 10; ++k) {
    const double p = hypergeometric_tail(200, 40, 10, k);
    EXPECT_LE(p, prev + 1e-12);
    prev = p;
  }
}

TEST(HypergeometricTail, RejectsBadArgs) {
  EXPECT_THROW(hypergeometric_tail(10, 11, 5, 1), InvalidInputError);
  EXPECT_THROW(hypergeometric_tail(10, 5, 11, 1), InvalidInputError);
}

TEST(Enrichment, ComputesFoldAndPValue) {
  // 100 proteins, 20 flagged; a set of 10 containing 8 flagged.
  std::vector<bool> flag(100, false);
  for (index_t v = 0; v < 20; ++v) flag[v] = true;
  std::vector<index_t> set;
  for (index_t v = 0; v < 8; ++v) set.push_back(v);       // flagged
  set.push_back(50);
  set.push_back(51);                                      // unflagged
  const EnrichmentResult r = enrichment(set, flag, "test");
  EXPECT_EQ(r.set_positive, 8u);
  EXPECT_DOUBLE_EQ(r.set_fraction, 0.8);
  EXPECT_DOUBLE_EQ(r.background_fraction, 0.2);
  EXPECT_DOUBLE_EQ(r.fold_enrichment, 4.0);
  EXPECT_LT(r.p_value, 1e-4);
}

TEST(Enrichment, NullSetIsNotSignificant) {
  std::vector<bool> flag(1000, false);
  for (index_t v = 0; v < 200; ++v) flag[v] = true;
  // A "set" matching the background rate exactly.
  std::vector<index_t> set{0, 500, 501, 502, 503};  // 1/5 flagged
  const EnrichmentResult r = enrichment(set, flag, "null");
  EXPECT_NEAR(r.fold_enrichment, 1.0, 0.01);
  EXPECT_GT(r.p_value, 0.3);
}

TEST(Enrichment, EmptySet) {
  std::vector<bool> flag(10, true);
  const EnrichmentResult r = enrichment({}, flag, "empty");
  EXPECT_EQ(r.set_size, 0u);
  EXPECT_DOUBLE_EQ(r.p_value, 1.0);
}

TEST(CoreProteomeReport, ReproducesPaperShape) {
  // Construct annotations exactly matching the paper's core numbers:
  // 41 core proteins, 9 unknown, 22 of 32 known essential, 24 homologs.
  const count_t n = 1361;
  AnnotationSet a;
  a.essential.assign(n, false);
  a.homolog.assign(n, false);
  a.known.assign(n, true);
  std::vector<index_t> core;
  for (index_t v = 0; v < 41; ++v) core.push_back(v);
  for (index_t v = 0; v < 9; ++v) a.known[v] = false;       // unknown
  for (index_t v = 9; v < 31; ++v) a.essential[v] = true;   // 22 essential
  for (index_t v = 0; v < 24; ++v) a.homolog[v] = true;     // 24 homologs
  // Background essential rate ~ 21.8 % of known proteins.
  for (index_t v = 41; v < 329; ++v) a.essential[v] = true;  // 288 more

  const CoreProteomeReport r = core_proteome_report(core, a);
  EXPECT_EQ(r.core_size, 41u);
  EXPECT_EQ(r.core_unknown, 9u);
  EXPECT_EQ(r.core_known, 32u);
  EXPECT_EQ(r.core_known_essential, 22u);
  EXPECT_EQ(r.core_homologs, 24u);
  // 22/32 = 69 % essential in the core vs ~23 % background: enriched.
  EXPECT_GT(r.essential_enrichment.fold_enrichment, 2.0);
  EXPECT_LT(r.essential_enrichment.p_value, 1e-5);
  EXPECT_GT(r.homolog_enrichment.fold_enrichment, 5.0);
}

TEST(CoreProteomeReport, OutOfRangeCoreIdThrows) {
  AnnotationSet a;
  a.essential.assign(5, false);
  a.homolog.assign(5, false);
  a.known.assign(5, true);
  EXPECT_THROW(core_proteome_report({7}, a), InvalidInputError);
}

}  // namespace
}  // namespace hp::bio
