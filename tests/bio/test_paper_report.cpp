#include "bio/paper_report.hpp"

#include <gtest/gtest.h>

#include "bio/cellzome_synth.hpp"

namespace hp::bio {
namespace {

const PaperReport& surrogate_report() {
  static const PaperReport report = [] {
    CellzomeParams params;
    params.num_proteins = 300;
    params.num_complexes = 60;
    params.degree_one_proteins = 180;
    params.max_degree = 10;
    params.core_proteins = 15;
    params.core_complexes = 12;
    params.core_memberships = 4;
    params.max_complex_size = 30;
    return analyze(cellzome_surrogate(params).hypergraph);
  }();
  return report;
}

TEST(PaperReport, AnalyzeFillsEveryField) {
  const PaperReport& r = surrogate_report();
  EXPECT_EQ(r.summary.num_vertices, 300u);
  EXPECT_EQ(r.summary.num_edges, 60u);
  EXPECT_GT(r.paths.diameter, 0u);
  EXPECT_GT(r.degree_fit.gamma, 0.0);
  EXPECT_GE(r.max_core, 2u);
  EXPECT_GT(r.core_proteins, 0u);
  EXPECT_GT(r.cover_unit_size, 0u);
  EXPECT_GE(r.cover_deg2_size, r.cover_unit_size);
  EXPECT_GE(r.multicover_size, r.cover_deg2_size);
  EXPECT_GE(r.core_seconds, 0.0);
}

TEST(PaperReport, CellzomeReferenceHoldsPublishedValues) {
  const PaperReference ref = PaperReference::cellzome();
  EXPECT_EQ(ref.num_vertices, 1361u);
  EXPECT_EQ(ref.max_core, 6u);
  EXPECT_EQ(ref.cover_unit_size, 109u);
  EXPECT_DOUBLE_EQ(*ref.gamma, 2.528);
}

TEST(PaperReport, RenderWithCellzomeReference) {
  const std::string text =
      render_report(surrogate_report(), PaperReference::cellzome());
  EXPECT_NE(text.find("maximum core k"), std::string::npos);
  EXPECT_NE(text.find("2.528"), std::string::npos);  // paper gamma
  EXPECT_NE(text.find("109"), std::string::npos);    // paper cover
  EXPECT_NE(text.find("core decomposition time"), std::string::npos);
}

TEST(PaperReport, RenderWithBlankReferenceUsesDashes) {
  const std::string text =
      render_report(surrogate_report(), PaperReference{});
  EXPECT_NE(text.find("| - "), std::string::npos);
  EXPECT_EQ(text.find("2.528"), std::string::npos);
}

}  // namespace
}  // namespace hp::bio
