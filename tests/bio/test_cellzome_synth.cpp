#include "bio/cellzome_synth.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "core/kcore.hpp"
#include "core/stats.hpp"

namespace hp::bio {
namespace {

// The full-size surrogate is used by several tests; generate once.
const ComplexDataset& surrogate() {
  static const ComplexDataset data = cellzome_surrogate();
  return data;
}

TEST(CellzomeSurrogate, MatchesPublishedCounts) {
  const auto& h = surrogate().hypergraph;
  EXPECT_EQ(h.num_vertices(), 1361u);
  EXPECT_EQ(h.num_edges(), 232u);
}

TEST(CellzomeSurrogate, MaxDegreeIsTwentyOneAndNamedAdh1) {
  const auto& d = surrogate();
  EXPECT_EQ(d.hypergraph.max_vertex_degree(), 21u);
  // Vertex 0 carries the maximum degree and the ADH1 name.
  EXPECT_EQ(d.hypergraph.vertex_degree(0), 21u);
  EXPECT_EQ(d.proteins.name_of(0), "ADH1");
}

TEST(CellzomeSurrogate, DegreeOneProteinsNearPublished) {
  const auto& h = surrogate().hypergraph;
  const hyper::HypergraphSummary s = hyper::summarize(h);
  // 846 in the paper; stub-collision drops move a handful of proteins.
  EXPECT_NEAR(static_cast<double>(s.degree_one_vertices), 846.0, 25.0);
}

TEST(CellzomeSurrogate, ThreeSingletonComplexes) {
  const auto& h = surrogate().hypergraph;
  index_t singletons = 0;
  for (index_t e = 0; e < h.num_edges(); ++e) {
    if (h.edge_size(e) == 1) ++singletons;
  }
  EXPECT_EQ(singletons, 3u);
}

TEST(CellzomeSurrogate, ComplexSizesBounded) {
  const auto& h = surrogate().hypergraph;
  EXPECT_LE(h.max_edge_size(), 88u);
  EXPECT_GE(h.max_edge_size(), 30u);  // some large complexes exist
}

TEST(CellzomeSurrogate, PowerLawDegreeDistribution) {
  const PowerLawFit fit =
      hyper::vertex_degree_power_law(surrogate().hypergraph);
  // Paper: gamma = 2.528, R^2 = 0.963.
  EXPECT_NEAR(fit.gamma, 2.5, 0.45);
  EXPECT_GT(fit.r_squared, 0.85);
}

TEST(CellzomeSurrogate, DeepCoreMatchesPaperAtDefaultSeed) {
  const hyper::HyperCoreResult r =
      hyper::core_decomposition(surrogate().hypergraph);
  // Paper: maximum core is a 6-core with 41 proteins and 54 complexes.
  // With the default seed and calibration the surrogate reproduces the
  // 6-core exactly and the sizes within a small band.
  EXPECT_EQ(r.max_core, 6u);
  const auto core_v = r.core_vertices(6);
  const auto core_e = r.core_edges(6);
  EXPECT_GE(core_v.size(), 35u);
  EXPECT_LE(core_v.size(), 50u);
  EXPECT_GE(core_e.size(), 45u);
  EXPECT_LE(core_e.size(), 80u);
}

TEST(CellzomeSurrogate, LocalityWindowZeroIsConfigurationModel) {
  CellzomeParams p;
  p.locality_window = 0;
  const ComplexDataset d = cellzome_surrogate(p);
  EXPECT_EQ(d.hypergraph.num_vertices(), 1361u);
  EXPECT_NO_THROW(hyper::validate(d.hypergraph));
  // Without locality the hypergraph has fewer nested complexes: the
  // initial reduction removes less.
  const hyper::HyperCoreResult with_locality =
      hyper::core_decomposition(surrogate().hypergraph);
  const hyper::HyperCoreResult without =
      hyper::core_decomposition(d.hypergraph);
  EXPECT_GT(without.level_edges[0], with_locality.level_edges[0]);
}

TEST(CellzomeSurrogate, DeterministicForSeed) {
  CellzomeParams p;
  const ComplexDataset a = cellzome_surrogate(p);
  const ComplexDataset b = cellzome_surrogate(p);
  EXPECT_EQ(a.hypergraph, b.hypergraph);
}

TEST(CellzomeSurrogate, DifferentSeedsDiffer) {
  CellzomeParams p;
  p.seed = 1;
  CellzomeParams q;
  q.seed = 2;
  EXPECT_NE(cellzome_surrogate(p).hypergraph,
            cellzome_surrogate(q).hypergraph);
}

TEST(CellzomeSurrogate, ValidStructure) {
  EXPECT_NO_THROW(hyper::validate(surrogate().hypergraph));
  EXPECT_EQ(surrogate().complex_names.size(), 232u);
  EXPECT_EQ(surrogate().proteins.size(), 1361u);
}

TEST(CellzomeDegreeSequence, SumsAndShape) {
  CellzomeParams p;
  const auto seq = cellzome_degree_sequence(p);
  EXPECT_EQ(seq.size(), 1361u);
  EXPECT_EQ(seq.front(), 21u);
  EXPECT_EQ(seq.back(), 1u);
  // Descending.
  EXPECT_TRUE(std::is_sorted(seq.rbegin(), seq.rend()));
  // 846 degree-1 entries.
  const auto ones = std::count(seq.begin(), seq.end(), 1u);
  EXPECT_EQ(ones, 846);
}

TEST(CellzomeSurrogate, SmallCustomParams) {
  CellzomeParams p;
  p.num_proteins = 150;
  p.num_complexes = 30;
  p.degree_one_proteins = 90;
  p.max_degree = 8;
  p.core_proteins = 10;
  p.core_complexes = 8;
  p.core_memberships = 3;
  p.max_complex_size = 25;
  const ComplexDataset d = cellzome_surrogate(p);
  EXPECT_EQ(d.hypergraph.num_vertices(), 150u);
  EXPECT_EQ(d.hypergraph.num_edges(), 30u);
  EXPECT_NO_THROW(hyper::validate(d.hypergraph));
}

TEST(CellzomeSurrogate, RejectsInconsistentParams) {
  CellzomeParams p;
  p.core_complexes = 500;  // more than num_complexes
  EXPECT_THROW(cellzome_surrogate(p), InvalidInputError);
  CellzomeParams q;
  q.degree_one_proteins = q.num_proteins;
  EXPECT_THROW(cellzome_surrogate(q), InvalidInputError);
}

}  // namespace
}  // namespace hp::bio
