#include "bio/bait.hpp"

#include <gtest/gtest.h>

#include "bio/cellzome_synth.hpp"

namespace hp::bio {
namespace {

const hyper::Hypergraph& small_surrogate() {
  static const ComplexDataset data = [] {
    CellzomeParams p;
    p.num_proteins = 300;
    p.num_complexes = 60;
    p.degree_one_proteins = 180;
    p.max_degree = 10;
    p.core_proteins = 15;
    p.core_complexes = 12;
    p.core_memberships = 4;
    p.max_complex_size = 30;
    return cellzome_surrogate(p);
  }();
  return data.hypergraph;
}

TEST(BaitSelection, MinCardinalityCoversEverything) {
  const BaitSelection s =
      select_baits(small_surrogate(), BaitStrategy::kMinCardinality);
  EXPECT_TRUE(hyper::is_vertex_cover(small_surrogate(), s.baits));
  EXPECT_TRUE(s.excluded_complexes.empty());
}

TEST(BaitSelection, DegreeSquaredLowersAverageDegree) {
  const BaitSelection cardinality =
      select_baits(small_surrogate(), BaitStrategy::kMinCardinality);
  const BaitSelection low_degree =
      select_baits(small_surrogate(), BaitStrategy::kDegreeSquared);
  EXPECT_TRUE(hyper::is_vertex_cover(small_surrogate(), low_degree.baits));
  // The paper's observation: avg degree 3.7 -> 1.14 while the cover
  // grows (109 -> 233).
  EXPECT_LT(low_degree.average_degree, cardinality.average_degree);
  EXPECT_GE(low_degree.baits.size(), cardinality.baits.size());
}

TEST(BaitSelection, DoubleCoverageHitsComplexesTwice) {
  const hyper::Hypergraph& h = small_surrogate();
  const BaitSelection s = select_baits(h, BaitStrategy::kDoubleCoverage);
  std::vector<index_t> req(h.num_edges(), 2);
  EXPECT_TRUE(hyper::is_multicover(h, s.baits, req));
  // Singleton complexes are reported as excluded.
  index_t singletons = 0;
  for (index_t e = 0; e < h.num_edges(); ++e) {
    if (h.edge_size(e) == 1) ++singletons;
  }
  EXPECT_EQ(s.excluded_complexes.size(), singletons);
}

TEST(BaitSelection, NamesResolve) {
  const ComplexDataset data = [] {
    CellzomeParams p;
    p.num_proteins = 100;
    p.num_complexes = 20;
    p.degree_one_proteins = 60;
    p.max_degree = 6;
    p.core_proteins = 8;
    p.core_complexes = 6;
    p.core_memberships = 3;
    p.max_complex_size = 20;
    return cellzome_surrogate(p);
  }();
  const BaitSelection s =
      select_baits(data.hypergraph, BaitStrategy::kMinCardinality);
  const auto names = bait_names(s, data.proteins);
  EXPECT_EQ(names.size(), s.baits.size());
  for (const auto& n : names) EXPECT_FALSE(n.empty());
}

TEST(PulldownCounts, MatchDegrees) {
  const hyper::Hypergraph& h = small_surrogate();
  const std::vector<index_t> baits{0, 1, 2};
  const auto counts = pulldown_counts(h, baits);
  ASSERT_EQ(counts.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(counts[i], h.vertex_degree(baits[i]));
  }
  EXPECT_THROW(pulldown_counts(h, {99999}), InvalidInputError);
}

}  // namespace
}  // namespace hp::bio
