#include "util/lazy_heap.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace hp {
namespace {

TEST(LazyMinHeap, PopsMinimum) {
  LazyMinHeap heap;
  heap.push(0, 3.0);
  heap.push(1, 1.0);
  heap.push(2, 2.0);
  std::vector<double> keys{3.0, 1.0, 2.0};
  const auto key = [&](index_t v) { return keys[v]; };
  const auto live = [](index_t) { return true; };
  EXPECT_EQ(heap.pop_current(key, live), 1u);
  EXPECT_EQ(heap.pop_current(key, live), 2u);
  EXPECT_EQ(heap.pop_current(key, live), 0u);
}

TEST(LazyMinHeap, StaleEntriesAreRefreshed) {
  LazyMinHeap heap;
  std::vector<double> keys{1.0, 2.0};
  heap.push(0, keys[0]);
  heap.push(1, keys[1]);
  // Item 0's true key grows past item 1's before the pop.
  keys[0] = 5.0;
  const auto key = [&](index_t v) { return keys[v]; };
  const auto live = [](index_t) { return true; };
  EXPECT_EQ(heap.pop_current(key, live), 1u);
  EXPECT_EQ(heap.pop_current(key, live), 0u);
}

TEST(LazyMinHeap, DeadItemsAreSkipped) {
  LazyMinHeap heap;
  heap.push(0, 1.0);
  heap.push(1, 2.0);
  std::vector<bool> alive{false, true};
  const auto key = [](index_t) { return 2.0; };
  const auto live = [&](index_t v) { return alive[v]; };
  EXPECT_EQ(heap.pop_current(key, live), 1u);
}

TEST(LazyMinHeap, ThrowsWhenDrained) {
  LazyMinHeap heap;
  heap.push(0, 1.0);
  const auto key = [](index_t) { return 1.0; };
  const auto dead = [](index_t) { return false; };
  EXPECT_THROW(heap.pop_current(key, dead), std::logic_error);
}

TEST(LazyMinHeap, DeterministicTieBreakByItem) {
  LazyMinHeap heap;
  heap.push(5, 1.0);
  heap.push(2, 1.0);
  heap.push(9, 1.0);
  const auto key = [](index_t) { return 1.0; };
  const auto live = [](index_t) { return true; };
  EXPECT_EQ(heap.pop_current(key, live), 2u);
  EXPECT_EQ(heap.pop_current(key, live), 5u);
  EXPECT_EQ(heap.pop_current(key, live), 9u);
}

TEST(LazyMinHeap, ManyUpdatesConverge) {
  // Keys that repeatedly grow: each pop must return the item whose
  // current key is (weakly) minimal at that moment.
  LazyMinHeap heap;
  std::vector<double> keys{1.0, 1.5, 2.0, 2.5};
  for (index_t v = 0; v < 4; ++v) heap.push(v, keys[v]);
  std::vector<bool> alive(4, true);
  const auto key = [&](index_t v) { return keys[v]; };
  const auto live = [&](index_t v) { return alive[v]; };

  // Grow key of 0 twice before popping.
  keys[0] = 3.0;
  keys[0] = 10.0;
  EXPECT_EQ(heap.pop_current(key, live), 1u);
  alive[1] = false;
  keys[2] = 20.0;
  EXPECT_EQ(heap.pop_current(key, live), 3u);
  alive[3] = false;
  EXPECT_EQ(heap.pop_current(key, live), 0u);
}

}  // namespace
}  // namespace hp
