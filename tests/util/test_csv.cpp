#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "util/common.hpp"

namespace hp {
namespace {

TEST(CsvWriter, PlainFields) {
  CsvWriter w;
  w.add_row({"a", "b", "c"});
  EXPECT_EQ(w.buffer(), "a,b,c\n");
}

TEST(CsvWriter, EscapesSpecials) {
  CsvWriter w;
  w.add_row({"a,b", "say \"hi\"", "line\nbreak"});
  EXPECT_EQ(w.buffer(), "\"a,b\",\"say \"\"hi\"\"\",\"line\nbreak\"\n");
}

TEST(CsvRoundTrip, PreservesFields) {
  CsvWriter w;
  w.add_row({"x", "1,2", "q\"q"});
  w.add_row({"", "plain", ""});
  const auto rows = parse_csv(w.buffer());
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"x", "1,2", "q\"q"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"", "plain", ""}));
}

TEST(ParseCsv, HandlesCrlfAndFinalLineWithoutNewline) {
  const auto rows = parse_csv("a,b\r\nc,d");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1], (std::vector<std::string>{"c", "d"}));
}

TEST(ParseCsv, EmptyInput) { EXPECT_TRUE(parse_csv("").empty()); }

TEST(ParseCsv, UnterminatedQuoteThrows) {
  EXPECT_THROW(parse_csv("\"abc"), ParseError);
}

TEST(CsvWriter, SaveWritesFile) {
  CsvWriter w;
  w.add_row({"k", "v"});
  const std::string path = testing::TempDir() + "/hp_csv_test.csv";
  w.save(path);
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "k,v");
  std::remove(path.c_str());
}

TEST(CsvWriter, SaveToBadPathThrows) {
  CsvWriter w;
  w.add_row({"x"});
  EXPECT_THROW(w.save("/nonexistent_dir_hp/x.csv"), std::runtime_error);
}

}  // namespace
}  // namespace hp
