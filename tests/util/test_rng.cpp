#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

namespace hp {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a{42}, b{42};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1}, b{2};
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng a{7};
  const auto first = a();
  a();
  a.reseed(7);
  EXPECT_EQ(a(), first);
}

TEST(Rng, UniformInRange) {
  Rng rng{3};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.uniform(10), 10u);
  }
}

TEST(Rng, UniformRejectsZero) {
  Rng rng{3};
  EXPECT_THROW(rng.uniform(0), std::invalid_argument);
}

TEST(Rng, UniformCoversAllValues) {
  Rng rng{11};
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.uniform(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformIsApproximatelyUniform) {
  Rng rng{5};
  std::vector<int> counts(8, 0);
  const int n = 80000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform(8)];
  for (int c : counts) {
    EXPECT_NEAR(c, n / 8, 4 * std::sqrt(n / 8.0));
  }
}

TEST(Rng, UniformIntBounds) {
  Rng rng{9};
  for (int i = 0; i < 1000; ++i) {
    const auto x = rng.uniform_int(-5, 5);
    EXPECT_GE(x, -5);
    EXPECT_LE(x, 5);
  }
}

TEST(Rng, UniformIntSingleton) {
  Rng rng{9};
  EXPECT_EQ(rng.uniform_int(3, 3), 3);
}

TEST(Rng, UniformIntRejectsEmptyRange) {
  Rng rng{9};
  EXPECT_THROW(rng.uniform_int(2, 1), std::invalid_argument);
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Rng rng{13};
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform01();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng{17};
  const int n = 50000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(2.0, 3.0);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(var, 9.0, 0.5);
}

TEST(Rng, LognormalIsPositive) {
  Rng rng{19};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GT(rng.lognormal(1.0, 0.5), 0.0);
  }
}

TEST(Rng, ZipfStaysInRange) {
  Rng rng{23};
  for (int i = 0; i < 5000; ++i) {
    const auto k = rng.zipf(100, 1.5);
    EXPECT_GE(k, 1u);
    EXPECT_LE(k, 100u);
  }
}

TEST(Rng, ZipfFavorsSmallValues) {
  Rng rng{29};
  int ones = 0, big = 0;
  for (int i = 0; i < 10000; ++i) {
    const auto k = rng.zipf(1000, 2.0);
    if (k == 1) ++ones;
    if (k > 100) ++big;
  }
  EXPECT_GT(ones, 10 * big);
}

TEST(Rng, ZipfExponentNearOne) {
  Rng rng{31};
  for (int i = 0; i < 2000; ++i) {
    const auto k = rng.zipf(50, 1.0);
    EXPECT_GE(k, 1u);
    EXPECT_LE(k, 50u);
  }
}

TEST(Rng, ZipfRejectsBadArgs) {
  Rng rng{1};
  EXPECT_THROW(rng.zipf(0, 1.0), std::invalid_argument);
  EXPECT_THROW(rng.zipf(10, 0.0), std::invalid_argument);
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng rng{37};
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9};
  auto shuffled = v;
  rng.shuffle(shuffled);
  auto sorted = shuffled;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, v);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng rng{41};
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);
}

TEST(AliasTable, SamplesProportionally) {
  Rng rng{43};
  AliasTable table{{1.0, 3.0, 6.0}};
  std::vector<int> counts(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[table.sample(rng)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.015);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.6, 0.015);
}

TEST(AliasTable, HandlesZeroWeights) {
  Rng rng{47};
  AliasTable table{{0.0, 1.0, 0.0}};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(table.sample(rng), 1u);
  }
}

TEST(AliasTable, SingleEntry) {
  Rng rng{53};
  AliasTable table{{2.5}};
  EXPECT_EQ(table.sample(rng), 0u);
}

TEST(AliasTable, RejectsInvalidWeights) {
  EXPECT_THROW(AliasTable{std::vector<double>{}}, std::invalid_argument);
  EXPECT_THROW((AliasTable{std::vector<double>{-1.0, 2.0}}),
               std::invalid_argument);
  EXPECT_THROW((AliasTable{std::vector<double>{0.0, 0.0}}),
               std::invalid_argument);
}

}  // namespace
}  // namespace hp
