#include "util/timer.hpp"

#include <gtest/gtest.h>

namespace hp {
namespace {

TEST(Timer, ElapsedIsNonNegativeAndMonotone) {
  Timer t;
  const double a = t.seconds();
  const double b = t.seconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
}

TEST(Timer, ResetRestartsClock) {
  Timer t;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  t.reset();
  EXPECT_LT(t.seconds(), 0.5);
}

TEST(Timer, NanosecondsTracksSeconds) {
  Timer t;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  const std::uint64_t ns = t.nanoseconds();
  const double s = t.seconds();
  EXPECT_GT(ns, 0u);
  // seconds() was read after nanoseconds(), so it bounds it from above.
  EXPECT_LE(static_cast<double>(ns) / 1e9, s);
}

TEST(FormatDuration, PicksUnits) {
  EXPECT_EQ(format_duration(0.47), "470.00 ms");
  EXPECT_EQ(format_duration(2.0), "2.00 s");
  EXPECT_EQ(format_duration(90.0), "1.50 m");
  EXPECT_EQ(format_duration(7200.0), "2.00 h");
  EXPECT_EQ(format_duration(5e-5), "50.0 us");
  EXPECT_EQ(format_duration(5e-8), "50 ns");
}

TEST(FormatDuration, BoundaryValues) {
  EXPECT_EQ(format_duration(1.0), "1.00 s");
  EXPECT_EQ(format_duration(60.0), "1.00 m");
  EXPECT_EQ(format_duration(3600.0), "1.00 h");
  EXPECT_EQ(format_duration(1e-3), "1.00 ms");
  EXPECT_EQ(format_duration(1e-6), "1.0 us");
  EXPECT_EQ(format_duration(0.0), "0 ns");
}

}  // namespace
}  // namespace hp
