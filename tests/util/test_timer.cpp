#include "util/timer.hpp"

#include <gtest/gtest.h>

namespace hp {
namespace {

TEST(Timer, ElapsedIsNonNegativeAndMonotone) {
  Timer t;
  const double a = t.seconds();
  const double b = t.seconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
}

TEST(Timer, ResetRestartsClock) {
  Timer t;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += i;
  t.reset();
  EXPECT_LT(t.seconds(), 0.5);
}

TEST(FormatDuration, PicksUnits) {
  EXPECT_EQ(format_duration(0.47), "470.00 ms");
  EXPECT_EQ(format_duration(2.0), "2.00 s");
  EXPECT_EQ(format_duration(90.0), "1.50 m");
  EXPECT_EQ(format_duration(7200.0), "2.00 h");
  EXPECT_EQ(format_duration(5e-5), "50.0 us");
}

TEST(FormatDuration, BoundaryValues) {
  EXPECT_EQ(format_duration(1.0), "1.00 s");
  EXPECT_EQ(format_duration(60.0), "1.00 m");
  EXPECT_EQ(format_duration(3600.0), "1.00 h");
  EXPECT_EQ(format_duration(1e-3), "1.00 ms");
}

}  // namespace
}  // namespace hp
