#include "util/linreg.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "util/rng.hpp"

namespace hp {
namespace {

TEST(LinearFit, ExactLine) {
  const std::vector<double> x{1, 2, 3, 4, 5};
  const std::vector<double> y{3, 5, 7, 9, 11};  // y = 1 + 2x
  const LinearFit fit = linear_fit(x, y);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
  EXPECT_EQ(fit.n, 5u);
}

TEST(LinearFit, NoisyLineHasHighR2) {
  Rng rng{99};
  std::vector<double> x, y;
  for (int i = 0; i < 200; ++i) {
    x.push_back(i);
    y.push_back(0.5 + 1.5 * i + rng.normal(0.0, 1.0));
  }
  const LinearFit fit = linear_fit(x, y);
  EXPECT_NEAR(fit.slope, 1.5, 0.05);
  EXPECT_GT(fit.r_squared, 0.99);
}

TEST(LinearFit, PureNoiseHasLowR2) {
  Rng rng{101};
  std::vector<double> x, y;
  for (int i = 0; i < 500; ++i) {
    x.push_back(i);
    y.push_back(rng.normal(0.0, 1.0));
  }
  EXPECT_LT(linear_fit(x, y).r_squared, 0.1);
}

TEST(LinearFit, RejectsBadInput) {
  EXPECT_THROW(linear_fit({1.0}, {2.0}), std::invalid_argument);
  EXPECT_THROW(linear_fit({1.0, 2.0}, {2.0}), std::invalid_argument);
  EXPECT_THROW(linear_fit({3.0, 3.0}, {1.0, 2.0}), std::invalid_argument);
}

TEST(LinearFit, RejectsNonFinitePoints) {
  // log10 of an empty bucket is -inf; the fit must refuse it loudly
  // instead of returning a NaN slope.
  const double inf = std::numeric_limits<double>::infinity();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(linear_fit({0.0, 1.0}, {-inf, 2.0}), std::invalid_argument);
  EXPECT_THROW(linear_fit({-inf, 1.0}, {0.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(linear_fit({0.0, 1.0}, {nan, 2.0}), std::invalid_argument);
}

TEST(PowerLawFit, RecoversSyntheticExponent) {
  // frequencies[d] = round(1000 * d^-2.5)
  std::vector<std::size_t> freq(30, 0);
  for (std::size_t d = 1; d < freq.size(); ++d) {
    freq[d] = static_cast<std::size_t>(
        std::llround(1000.0 * std::pow(static_cast<double>(d), -2.5)));
  }
  const PowerLawFit fit = power_law_fit(freq);
  EXPECT_NEAR(fit.gamma, 2.5, 0.15);  // rounding distorts the tail
  EXPECT_NEAR(fit.log10_c, 3.0, 0.2);
  EXPECT_GT(fit.r_squared, 0.95);
}

TEST(PowerLawFit, SkipsZeroFrequencies) {
  std::vector<std::size_t> freq{0, 100, 0, 4, 0, 1};  // gaps are fine
  const PowerLawFit fit = power_law_fit(freq);
  EXPECT_EQ(fit.n, 3u);
  EXPECT_GT(fit.gamma, 0.0);
}

TEST(PowerLawFit, RejectsTooFewPoints) {
  EXPECT_THROW(power_law_fit({0, 5}), std::invalid_argument);
  EXPECT_THROW(power_law_fit({}), std::invalid_argument);
}

TEST(PowerLawFit, ZeroCountBinsNeverPoisonTheFit) {
  // A histogram whose frequencies() span includes empty buckets (and
  // the un-loggable degree-0 bin) must produce a finite fit: the empty
  // bins are skipped, never log10'd into -inf.
  const std::vector<std::size_t> freq{7, 0, 100, 0, 0, 10, 0, 1, 0};
  const PowerLawFit fit = power_law_fit(freq);
  EXPECT_EQ(fit.n, 3u);  // degrees 2, 5, 7 only
  EXPECT_TRUE(std::isfinite(fit.gamma));
  EXPECT_TRUE(std::isfinite(fit.log10_c));
  EXPECT_TRUE(std::isfinite(fit.r_squared));
}

TEST(ExponentialFit, ZeroCountBinsNeverPoisonTheFit) {
  const std::vector<std::size_t> freq{3, 0, 50, 0, 5, 0, 0, 2};
  const ExponentialFit fit = exponential_fit(freq);
  EXPECT_EQ(fit.n, 3u);
  EXPECT_TRUE(std::isfinite(fit.lambda));
  EXPECT_TRUE(std::isfinite(fit.log10_c));
}

TEST(PowerLawFit, DegreeZeroOnlyPopulationThrowsInsteadOfInf) {
  // Every observation at degree 0 (plus one lone positive bin): fewer
  // than two usable points must be a clean error, not a silent -inf.
  EXPECT_THROW(power_law_fit({42, 0, 0, 3}), std::invalid_argument);
}

TEST(ExponentialFit, RecoversSyntheticRate) {
  // frequencies[d] = round(10000 * exp(-0.4 d))
  std::vector<std::size_t> freq(20, 0);
  for (std::size_t d = 1; d < freq.size(); ++d) {
    freq[d] = static_cast<std::size_t>(
        std::llround(10000.0 * std::exp(-0.4 * static_cast<double>(d))));
  }
  const ExponentialFit fit = exponential_fit(freq);
  EXPECT_NEAR(fit.lambda, 0.4, 0.05);
  EXPECT_GT(fit.r_squared, 0.97);
}

TEST(Fits, PowerLawDataFitsPowerBetterThanExponential) {
  std::vector<std::size_t> freq(40, 0);
  for (std::size_t d = 1; d < freq.size(); ++d) {
    freq[d] = static_cast<std::size_t>(
        std::llround(5000.0 * std::pow(static_cast<double>(d), -2.0)));
  }
  const PowerLawFit p = power_law_fit(freq);
  const ExponentialFit e = exponential_fit(freq);
  EXPECT_GT(p.r_squared, e.r_squared);
}

}  // namespace
}  // namespace hp
