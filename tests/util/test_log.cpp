#include "util/log.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

namespace hp {
namespace {

TEST(Log, LevelRoundTrips) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(original);
}

TEST(Log, StreamsComposeWithoutCrashing) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::kError);  // silence output during the test
  log_info() << "value=" << 42 << " pi=" << 3.14;
  log_debug() << "suppressed";
  log_warn() << "also suppressed";
  set_log_level(original);
  SUCCEED();
}

TEST(Log, ParseLevelAcceptsAnyCase) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("INFO"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("Warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("eRRoR"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("verbose"), std::nullopt);
  EXPECT_EQ(parse_log_level(""), std::nullopt);
}

TEST(Log, EnvVariableSetsThreshold) {
  const LogLevel original = log_level();
  setenv("HP_LOG_LEVEL", "error", 1);
  init_log_from_env();
  EXPECT_EQ(log_level(), LogLevel::kError);
  // Unparsable values leave the current threshold untouched.
  setenv("HP_LOG_LEVEL", "shouting", 1);
  init_log_from_env();
  EXPECT_EQ(log_level(), LogLevel::kError);
  // So does unsetting the variable.
  unsetenv("HP_LOG_LEVEL");
  init_log_from_env();
  EXPECT_EQ(log_level(), LogLevel::kError);
  set_log_level(original);
}

TEST(Log, PrefixCarriesTimestampThreadIdAndLevel) {
  const std::string prefix = log_prefix(LogLevel::kWarn);
  // Shape: "[   0.001234] [T0] [WARN] "
  ASSERT_FALSE(prefix.empty());
  EXPECT_EQ(prefix.front(), '[');
  EXPECT_NE(prefix.find("] [T"), std::string::npos);
  EXPECT_NE(prefix.find("[WARN] "), std::string::npos);
  EXPECT_NE(prefix.find('.'), std::string::npos);  // fractional seconds
  // Monotonic: a later prefix never shows an earlier timestamp.
  const std::string a = log_prefix(LogLevel::kInfo);
  const std::string b = log_prefix(LogLevel::kInfo);
  const double ta = std::strtod(a.c_str() + 1, nullptr);
  const double tb = std::strtod(b.c_str() + 1, nullptr);
  EXPECT_GE(tb, ta);
  EXPECT_GE(ta, 0.0);
}

TEST(Log, PrefixDistinguishesLevels) {
  EXPECT_NE(log_prefix(LogLevel::kDebug).find("[DEBUG]"), std::string::npos);
  EXPECT_NE(log_prefix(LogLevel::kInfo).find("[INFO]"), std::string::npos);
  EXPECT_NE(log_prefix(LogLevel::kError).find("[ERROR]"), std::string::npos);
}

}  // namespace
}  // namespace hp
