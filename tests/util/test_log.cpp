#include "util/log.hpp"

#include <gtest/gtest.h>

namespace hp {
namespace {

TEST(Log, LevelRoundTrips) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(original);
}

TEST(Log, StreamsComposeWithoutCrashing) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::kError);  // silence output during the test
  log_info() << "value=" << 42 << " pi=" << 3.14;
  log_debug() << "suppressed";
  log_warn() << "also suppressed";
  set_log_level(original);
  SUCCEED();
}

}  // namespace
}  // namespace hp
