#include "util/stringutil.hpp"

#include <gtest/gtest.h>

#include "util/common.hpp"

namespace hp {
namespace {

TEST(Trim, StripsBothEnds) {
  EXPECT_EQ(trim("  abc  "), "abc");
  EXPECT_EQ(trim("\tabc\n"), "abc");
  EXPECT_EQ(trim("abc"), "abc");
}

TEST(Trim, EmptyAndWhitespaceOnly) {
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   \t\n"), "");
}

TEST(Split, PreservesEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Split, SingleField) {
  const auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(SplitWhitespace, SkipsRuns) {
  const auto parts = split_whitespace("  a \t b\n c  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(SplitWhitespace, EmptyInput) {
  EXPECT_TRUE(split_whitespace("").empty());
  EXPECT_TRUE(split_whitespace("   ").empty());
}

TEST(StartsWith, Basics) {
  EXPECT_TRUE(starts_with("hypergraph", "hyper"));
  EXPECT_FALSE(starts_with("hyper", "hypergraph"));
  EXPECT_TRUE(starts_with("abc", ""));
}

TEST(IEquals, CaseInsensitive) {
  EXPECT_TRUE(iequals("MatrixMarket", "matrixmarket"));
  EXPECT_FALSE(iequals("abc", "abd"));
  EXPECT_FALSE(iequals("abc", "ab"));
}

TEST(ToLower, Converts) { EXPECT_EQ(to_lower("AbC"), "abc"); }

TEST(ParseInt, ValidAndInvalid) {
  EXPECT_EQ(parse_int("42"), 42);
  EXPECT_EQ(parse_int("-17"), -17);
  EXPECT_EQ(parse_int("  7 "), 7);
  EXPECT_THROW(parse_int("4x"), ParseError);
  EXPECT_THROW(parse_int(""), ParseError);
  EXPECT_THROW(parse_int("1.5"), ParseError);
}

TEST(ParseDouble, ValidAndInvalid) {
  EXPECT_DOUBLE_EQ(parse_double("2.5"), 2.5);
  EXPECT_DOUBLE_EQ(parse_double("-1e-3"), -1e-3);
  EXPECT_THROW(parse_double("abc"), ParseError);
  EXPECT_THROW(parse_double(""), ParseError);
}

TEST(Join, Basics) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"one"}, ","), "one");
}

}  // namespace
}  // namespace hp
