#include "util/histogram.hpp"

#include <gtest/gtest.h>

namespace hp {
namespace {

TEST(Histogram, EmptyDefaults) {
  Histogram h;
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.max_value(), 0u);
  EXPECT_EQ(h.min_value(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_THROW(h.percentile(0.5), std::logic_error);
}

TEST(Histogram, CountsValues) {
  Histogram h{{1, 1, 2, 5}};
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.count(1), 2u);
  EXPECT_EQ(h.count(2), 1u);
  EXPECT_EQ(h.count(5), 1u);
  EXPECT_EQ(h.count(3), 0u);
  EXPECT_EQ(h.count(99), 0u);
}

TEST(Histogram, AddWithMultiplicity) {
  Histogram h;
  h.add(3, 10);
  h.add(3);
  EXPECT_EQ(h.count(3), 11u);
  EXPECT_EQ(h.total(), 11u);
}

TEST(Histogram, MinMax) {
  Histogram h{{4, 7, 2, 9}};
  EXPECT_EQ(h.min_value(), 2u);
  EXPECT_EQ(h.max_value(), 9u);
}

TEST(Histogram, MeanAndVariance) {
  Histogram h{{1, 2, 3, 4}};
  EXPECT_DOUBLE_EQ(h.mean(), 2.5);
  EXPECT_DOUBLE_EQ(h.variance(), 1.25);
}

TEST(Histogram, Percentiles) {
  Histogram h{{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}};
  EXPECT_EQ(h.percentile(0.0), 1u);
  EXPECT_EQ(h.percentile(0.5), 5u);
  EXPECT_EQ(h.percentile(1.0), 10u);
  EXPECT_THROW(h.percentile(1.5), std::invalid_argument);
}

TEST(Histogram, ToStringSkipsZeros) {
  Histogram h{{1, 1, 3}};
  EXPECT_EQ(h.to_string(), "1 2\n3 1\n");
}

TEST(Histogram, ZeroIsAValidValue) {
  Histogram h{{0, 0, 1}};
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.min_value(), 0u);
}

}  // namespace
}  // namespace hp
