#include "util/args.hpp"

#include <gtest/gtest.h>

#include "util/common.hpp"

namespace hp {
namespace {

Args make_args(std::initializer_list<const char*> argv) {
  std::vector<const char*> v(argv);
  return Args{static_cast<int>(v.size()), v.data()};
}

TEST(Args, EqualsForm) {
  const Args a = make_args({"prog", "--seed=42", "--name=x"});
  EXPECT_EQ(a.get_int("seed", 0), 42);
  EXPECT_EQ(a.get("name", ""), "x");
  EXPECT_EQ(a.program(), "prog");
}

TEST(Args, SpaceForm) {
  const Args a = make_args({"prog", "--seed", "7"});
  EXPECT_EQ(a.get_int("seed", 0), 7);
}

TEST(Args, BooleanFlag) {
  const Args a = make_args({"prog", "--verbose"});
  EXPECT_TRUE(a.get_bool("verbose", false));
  EXPECT_TRUE(a.has("verbose"));
  EXPECT_FALSE(a.has("quiet"));
}

TEST(Args, BoolParsing) {
  const Args a = make_args(
      {"prog", "--a=true", "--b=0", "--c=YES", "--d=off", "--e=1"});
  EXPECT_TRUE(a.get_bool("a", false));
  EXPECT_FALSE(a.get_bool("b", true));
  EXPECT_TRUE(a.get_bool("c", false));
  EXPECT_FALSE(a.get_bool("d", true));
  EXPECT_TRUE(a.get_bool("e", false));
}

TEST(Args, Defaults) {
  const Args a = make_args({"prog"});
  EXPECT_EQ(a.get_int("missing", -1), -1);
  EXPECT_DOUBLE_EQ(a.get_double("missing", 2.5), 2.5);
  EXPECT_EQ(a.get("missing", "dflt"), "dflt");
}

TEST(Args, Positional) {
  const Args a = make_args({"prog", "input.txt", "--k=3", "more"});
  ASSERT_EQ(a.positional().size(), 2u);
  EXPECT_EQ(a.positional()[0], "input.txt");
  EXPECT_EQ(a.positional()[1], "more");
}

TEST(Args, DoubleValues) {
  const Args a = make_args({"prog", "--rate=0.7"});
  EXPECT_DOUBLE_EQ(a.get_double("rate", 0.0), 0.7);
}

TEST(Args, MalformedFlagThrows) {
  EXPECT_THROW(make_args({"prog", "--"}), ParseError);
  EXPECT_THROW(make_args({"prog", "--=5"}), ParseError);
}

TEST(Args, LastValueWins) {
  const Args a = make_args({"prog", "--k=1", "--k=2"});
  EXPECT_EQ(a.get_int("k", 0), 2);
}

}  // namespace
}  // namespace hp
