#include "util/bucket_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace hp {
namespace {

TEST(BucketQueue, PopsInPriorityOrder) {
  BucketQueue q{{3, 1, 2}, 3};
  index_t p = 0;
  EXPECT_EQ(q.pop_min(p), 1u);
  EXPECT_EQ(p, 1u);
  EXPECT_EQ(q.pop_min(p), 2u);
  EXPECT_EQ(p, 2u);
  EXPECT_EQ(q.pop_min(p), 0u);
  EXPECT_EQ(p, 3u);
  EXPECT_TRUE(q.empty());
}

TEST(BucketQueue, DecreaseKeyMovesItem) {
  BucketQueue q{{5, 5, 5}, 5};
  q.decrease_key(2, 1);
  index_t p = 0;
  EXPECT_EQ(q.pop_min(p), 2u);
  EXPECT_EQ(p, 1u);
}

TEST(BucketQueue, DecreaseKeyToSameValueIsNoop) {
  BucketQueue q{{2}, 2};
  q.decrease_key(0, 2);
  EXPECT_EQ(q.priority(0), 2u);
}

TEST(BucketQueue, DecreaseKeyRejectsIncrease) {
  BucketQueue q{{1}, 3};
  EXPECT_THROW(q.decrease_key(0, 2), std::invalid_argument);
}

TEST(BucketQueue, EraseRemovesItem) {
  BucketQueue q{{1, 2}, 2};
  q.erase(0);
  EXPECT_FALSE(q.contains(0));
  EXPECT_EQ(q.size(), 1u);
  index_t p = 0;
  EXPECT_EQ(q.pop_min(p), 1u);
}

TEST(BucketQueue, OperationsOnAbsentItemsThrow) {
  BucketQueue q{{1}, 1};
  index_t p = 0;
  q.pop_min(p);
  EXPECT_THROW(q.pop_min(p), std::logic_error);
  EXPECT_THROW(q.erase(0), std::logic_error);
  EXPECT_THROW(q.decrease_key(0, 0), std::logic_error);
}

TEST(BucketQueue, RejectsPriorityAboveMax) {
  EXPECT_THROW(BucketQueue({5}, 4), std::invalid_argument);
}

TEST(BucketQueue, CursorHandlesNonMonotoneMinimum) {
  // Pop at priority 2, then decrease another item below it; the queue
  // must rewind its cursor (the paper notes the min degree can decrease).
  BucketQueue q{{2, 4, 4}, 4};
  index_t p = 0;
  EXPECT_EQ(q.pop_min(p), 0u);
  q.decrease_key(1, 1);
  EXPECT_EQ(q.pop_min(p), 1u);
  EXPECT_EQ(p, 1u);
}

TEST(BucketQueue, PeelingSimulation) {
  // Simulate a degree-peeling pattern: repeatedly pop min and decrement
  // two arbitrary survivors.
  std::vector<index_t> init{4, 4, 4, 4, 4, 4};
  BucketQueue q{init, 4};
  index_t pops = 0;
  index_t max_min = 0;
  while (!q.empty()) {
    index_t p = 0;
    const index_t v = q.pop_min(p);
    (void)v;
    max_min = std::max(max_min, p);
    ++pops;
    // Decrement priorities of up to two remaining items.
    for (index_t u = 0; u < init.size() && q.size() > 0; ++u) {
      if (q.contains(u) && q.priority(u) > 0) {
        q.decrease_key(u, q.priority(u) - 1);
        break;
      }
    }
  }
  EXPECT_EQ(pops, 6u);
  EXPECT_LE(max_min, 4u);
}

}  // namespace
}  // namespace hp
