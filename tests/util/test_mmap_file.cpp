#include "util/mmap_file.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <utility>

namespace hp {
namespace {

std::string write_file(const std::string& name, const std::string& bytes) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::ofstream out{path, std::ios::binary};
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return path;
}

TEST(MappedFileTest, MapsFileContents) {
  const std::string payload = "hyperproteome mmap payload\n";
  const std::string path = write_file("hp_mmap_basic.bin", payload);

  MappedFile file{path};
  ASSERT_EQ(file.size(), payload.size());
  ASSERT_NE(file.data(), nullptr);
  EXPECT_EQ(std::memcmp(file.data(), payload.data(), payload.size()), 0);
  EXPECT_EQ(file.path(), path);
  std::remove(path.c_str());
}

TEST(MappedFileTest, EmptyFileMapsToNull) {
  const std::string path = write_file("hp_mmap_empty.bin", "");
  MappedFile file{path};
  EXPECT_EQ(file.size(), 0u);
  EXPECT_EQ(file.data(), nullptr);
  std::remove(path.c_str());
}

TEST(MappedFileTest, MissingFileThrows) {
  EXPECT_THROW(MappedFile{::testing::TempDir() + "/no_such_file.bin"},
               std::runtime_error);
}

TEST(MappedFileTest, DirectoryThrows) {
  EXPECT_THROW(MappedFile{::testing::TempDir()}, std::runtime_error);
}

TEST(MappedFileTest, MoveTransfersOwnership) {
  const std::string payload = "move me";
  const std::string path = write_file("hp_mmap_move.bin", payload);

  MappedFile a{path};
  const void* data = a.data();
  MappedFile b{std::move(a)};
  EXPECT_EQ(b.data(), data);
  EXPECT_EQ(b.size(), payload.size());
  EXPECT_EQ(a.data(), nullptr);
  EXPECT_EQ(a.size(), 0u);

  MappedFile c;
  c = std::move(b);
  EXPECT_EQ(c.data(), data);
  EXPECT_EQ(std::memcmp(c.data(), payload.data(), payload.size()), 0);
  EXPECT_EQ(b.data(), nullptr);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hp
