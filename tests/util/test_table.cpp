#include "util/table.hpp"

#include <gtest/gtest.h>

namespace hp {
namespace {

TEST(Table, RendersAlignedColumns) {
  Table t{{"name", "count"}};
  t.row().cell("a").cell(10);
  t.row().cell("longer").cell(3);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("longer | 3"), std::string::npos);
  // Header separator rule present.
  EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(Table, DoubleCellPrecision) {
  Table t{{"x"}};
  t.row().cell(3.14159, 2);
  EXPECT_NE(t.to_string().find("3.14"), std::string::npos);
  EXPECT_EQ(t.to_string().find("3.142"), std::string::npos);
}

TEST(Table, IntegerOverloads) {
  Table t{{"a", "b", "c", "d"}};
  t.row()
      .cell(static_cast<std::int64_t>(-5))
      .cell(static_cast<std::uint64_t>(7))
      .cell(-3)
      .cell(9u);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("-5"), std::string::npos);
  EXPECT_NE(s.find("7"), std::string::npos);
}

TEST(Table, CountsRowsAndColumns) {
  Table t{{"a", "b"}};
  EXPECT_EQ(t.num_columns(), 2u);
  EXPECT_EQ(t.num_rows(), 0u);
  t.row().cell("x").cell("y");
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(Table, RejectsMisuse) {
  EXPECT_THROW(Table{std::vector<std::string>{}}, std::invalid_argument);
  Table t{{"only"}};
  EXPECT_THROW(t.cell("no row yet"), std::logic_error);
  t.row().cell("ok");
  EXPECT_THROW(t.cell("too many"), std::logic_error);
}

TEST(Table, IncompleteRowDetectedOnNextRow) {
  Table t{{"a", "b"}};
  t.row().cell("only one");
  EXPECT_THROW(t.row(), std::logic_error);
}

}  // namespace
}  // namespace hp
