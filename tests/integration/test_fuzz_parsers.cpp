// Deterministic fuzz tests for every parser: random garbage and
// mutations of valid files must either parse or throw hp::ParseError /
// hp::InvalidInputError -- never crash, hang, or throw anything else.
#include <gtest/gtest.h>

#include <string>

#include "bio/annotations.hpp"
#include "bio/complex_io.hpp"
#include "core/binary_io.hpp"
#include "core/hypergraph_io.hpp"
#include "mm/matrix_market.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"

namespace hp {
namespace {

std::string random_ascii(Rng& rng, std::size_t length) {
  static const char alphabet[] =
      " \t\n0123456789abcxyz%#.-\"\\,|VF%%MatrixMarket";
  std::string out;
  out.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    out += alphabet[rng.pick(sizeof(alphabet) - 1)];
  }
  return out;
}

std::string mutate(Rng& rng, std::string text, int edits) {
  for (int i = 0; i < edits && !text.empty(); ++i) {
    const std::size_t pos = rng.pick(text.size());
    switch (rng.uniform(3)) {
      case 0:
        text[pos] = static_cast<char>(32 + rng.uniform(95));
        break;
      case 1:
        text.erase(pos, 1);
        break;
      default:
        text.insert(pos, 1, static_cast<char>(32 + rng.uniform(95)));
    }
  }
  return text;
}

template <typename Parser>
void fuzz(Parser&& parse, const std::string& valid, std::uint64_t seed) {
  Rng rng{seed};
  // Pure garbage.
  for (int trial = 0; trial < 60; ++trial) {
    const std::string input = random_ascii(rng, 1 + rng.pick(200));
    try {
      parse(input);
    } catch (const ParseError&) {
    } catch (const InvalidInputError&) {
    }
    // Any other exception type (or a crash) fails the test harness.
  }
  // Mutations of a valid input.
  for (int trial = 0; trial < 60; ++trial) {
    const std::string input = mutate(rng, valid, 1 + static_cast<int>(rng.uniform(6)));
    try {
      parse(input);
    } catch (const ParseError&) {
    } catch (const InvalidInputError&) {
    }
  }
  SUCCEED();
}

TEST(FuzzParsers, HypergraphText) {
  const std::string valid = "%hypergraph 4 2\n0 1 2\n2 3\n";
  fuzz([](const std::string& s) { hyper::from_text(s); }, valid, 11);
}

TEST(FuzzParsers, Hmetis) {
  const std::string valid = "2 4\n1 2 3\n3 4\n";
  fuzz([](const std::string& s) { hyper::from_hmetis(s); }, valid, 13);
}

TEST(FuzzParsers, MatrixMarket) {
  const std::string valid =
      "%%MatrixMarket matrix coordinate real general\n"
      "3 3 2\n1 2 1.5\n3 1 -2.0\n";
  fuzz([](const std::string& s) { mm::parse_matrix_market(s); }, valid, 17);
}

TEST(FuzzParsers, ComplexTable) {
  const std::string valid = "C1\tP1\tP2\nC2\tP2\tP3\n";
  fuzz([](const std::string& s) { bio::parse_complex_table(s); }, valid, 19);
}

TEST(FuzzParsers, Annotations) {
  bio::ProteinRegistry reg;
  reg.intern("P1");
  reg.intern("P2");
  const std::string valid =
      "P1 essential homolog known\nP2 nonessential nohomolog unknown\n";
  fuzz([&reg](const std::string& s) { bio::parse_annotations(s, reg); },
       valid, 23);
}

TEST(FuzzParsers, Csv) {
  const std::string valid = "a,b,\"c,d\"\n1,2,3\n";
  fuzz([](const std::string& s) { parse_csv(s); }, valid, 29);
}

TEST(FuzzParsers, BinaryHypergraph) {
  hyper::HypergraphBuilder b{5};
  b.add_edge({0, 1, 2});
  b.add_edge({3, 4});
  const std::string valid = hyper::to_binary(b.build());
  Rng rng{31};
  for (int trial = 0; trial < 200; ++trial) {
    std::string input = valid;
    // Byte-level mutations.
    const int edits = 1 + static_cast<int>(rng.uniform(8));
    for (int i = 0; i < edits && !input.empty(); ++i) {
      const std::size_t pos = rng.pick(input.size());
      switch (rng.uniform(3)) {
        case 0:
          input[pos] = static_cast<char>(rng.uniform(256));
          break;
        case 1:
          input.erase(pos, 1 + rng.pick(3));
          break;
        default:
          input.insert(pos, 1, static_cast<char>(rng.uniform(256)));
      }
    }
    try {
      hyper::from_binary(input);
    } catch (const ParseError&) {
    } catch (const InvalidInputError&) {
    }
  }
  SUCCEED();
}

TEST(FuzzParsers, ValidInputsStillParseAfterNoopMutation) {
  // Control: the unmutated valid inputs parse (the fuzz harness would
  // hide a regression otherwise).
  EXPECT_NO_THROW(hyper::from_text("%hypergraph 4 2\n0 1 2\n2 3\n"));
  EXPECT_NO_THROW(hyper::from_hmetis("2 4\n1 2 3\n3 4\n"));
  EXPECT_NO_THROW(bio::parse_complex_table("C1\tP1\tP2\n"));
}

}  // namespace
}  // namespace hp
