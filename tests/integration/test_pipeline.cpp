// End-to-end integration tests: run the full paper pipeline (surrogate
// dataset -> properties -> k-core -> enrichment -> covers -> TAP
// reliability) and cross-check the modules against each other.
#include <gtest/gtest.h>

#include "bio/annotations.hpp"
#include "bio/bait.hpp"
#include "bio/cellzome_synth.hpp"
#include "bio/complex_io.hpp"
#include "bio/enrichment.hpp"
#include "bio/tap_sim.hpp"
#include "core/hypergraph_io.hpp"
#include "core/kcore.hpp"
#include "core/kcore_naive.hpp"
#include "core/kcore_parallel.hpp"
#include "core/projection.hpp"
#include "core/reduce.hpp"
#include "core/stats.hpp"
#include "core/traversal.hpp"
#include "graph/graph_algos.hpp"
#include "graph/graph_generators.hpp"
#include "graph/graph_kcore.hpp"
#include "mm/mm_synth.hpp"
#include "mm/mm_to_hypergraph.hpp"

namespace hp {
namespace {

const bio::ComplexDataset& dataset() {
  static const bio::ComplexDataset data = bio::cellzome_surrogate();
  return data;
}

TEST(Pipeline, SurrogateSurvivesIoRoundTrip) {
  const auto& d = dataset();
  // Complex-table round trip preserves structure and names.
  const bio::ComplexDataset back =
      bio::parse_complex_table(bio::format_complex_table(d));
  EXPECT_EQ(back.hypergraph.num_pins(), d.hypergraph.num_pins());
  // Raw hypergraph text round trip is exact.
  EXPECT_EQ(hyper::from_text(hyper::to_text(d.hypergraph)), d.hypergraph);
}

TEST(Pipeline, PropertiesAreInThePaperBand) {
  const auto& h = dataset().hypergraph;
  const hyper::HypergraphSummary s = hyper::summarize(h);
  EXPECT_EQ(s.num_vertices, 1361u);
  EXPECT_EQ(s.num_edges, 232u);
  EXPECT_EQ(s.max_vertex_degree, 21u);

  const hyper::HyperPathSummary paths = hyper::path_summary(h);
  // Paper: diameter 6, average 2.568. A calibrated surrogate lands in a
  // modest band around those values.
  EXPECT_GE(paths.diameter, 3u);
  EXPECT_LE(paths.diameter, 10u);
  EXPECT_GT(paths.average_length, 1.5);
  EXPECT_LT(paths.average_length, 4.5);
}

TEST(Pipeline, AllThreeCoreImplementationsAgreeOnTheSurrogate) {
  const auto& h = dataset().hypergraph;
  const hyper::HyperCoreResult fast = hyper::core_decomposition(h);
  const hyper::HyperCoreResult par = hyper::core_decomposition_parallel(h);
  EXPECT_EQ(fast.vertex_core, par.vertex_core);
  EXPECT_EQ(fast.max_core, par.max_core);
  EXPECT_EQ(fast.level_vertices, par.level_vertices);
  EXPECT_EQ(fast.level_edges, par.level_edges);
}

TEST(Pipeline, CoreProteomeEnrichment) {
  const auto& d = dataset();
  const hyper::HyperCoreResult cores =
      hyper::core_decomposition(d.hypergraph);
  const auto core = cores.core_vertices(cores.max_core);
  ASSERT_FALSE(core.empty());

  Rng rng{2004};
  const bio::AnnotationSet ann = bio::simulate_annotations(
      d.hypergraph.num_vertices(), core, {}, rng);
  const bio::CoreProteomeReport report =
      bio::core_proteome_report(core, ann);
  // The paper's qualitative claim: the core proteome is enriched in
  // essential and homologous proteins.
  EXPECT_GT(report.essential_enrichment.fold_enrichment, 1.5);
  EXPECT_LT(report.essential_enrichment.p_value, 0.01);
  EXPECT_GT(report.homolog_enrichment.fold_enrichment, 1.2);
}

TEST(Pipeline, CoverLadderMatchesPaperOrdering) {
  const auto& h = dataset().hypergraph;
  const bio::BaitSelection unit =
      bio::select_baits(h, bio::BaitStrategy::kMinCardinality);
  const bio::BaitSelection deg2 =
      bio::select_baits(h, bio::BaitStrategy::kDegreeSquared);
  const bio::BaitSelection twice =
      bio::select_baits(h, bio::BaitStrategy::kDoubleCoverage);

  // Paper ordering: 109 < 233 < 558 proteins; avg degree 3.7 > 1.14.
  EXPECT_LT(unit.baits.size(), deg2.baits.size());
  EXPECT_LT(deg2.baits.size(), twice.baits.size());
  EXPECT_GT(unit.average_degree, deg2.average_degree);
  EXPECT_TRUE(hyper::is_vertex_cover(h, unit.baits));
  EXPECT_TRUE(hyper::is_vertex_cover(h, deg2.baits));
  EXPECT_EQ(twice.excluded_complexes.size(), 3u);  // the 3 singletons
}

TEST(Pipeline, TapReliabilityImprovesWithMulticover) {
  const auto& h = dataset().hypergraph;
  const bio::BaitSelection unit =
      bio::select_baits(h, bio::BaitStrategy::kMinCardinality);
  const bio::BaitSelection twice =
      bio::select_baits(h, bio::BaitStrategy::kDoubleCoverage);
  Rng rng{70};
  const bio::TapSimParams params{0.7, 100};
  const bio::TapSimResult single =
      bio::simulate_tap(h, unit.baits, params, rng);
  const bio::TapSimResult doubled =
      bio::simulate_tap(h, twice.baits, params, rng);
  EXPECT_GT(doubled.mean_recovered_fraction,
            single.mean_recovered_fraction);
}

TEST(Pipeline, ProjectionsAgreeOnConnectivity) {
  const auto& h = dataset().hypergraph;
  const hyper::HyperComponents hyper_comp = hyper::connected_components(h);
  const graph::Components clique_comp =
      graph::connected_components(hyper::clique_expansion(h));
  // Vertices connected in the hypergraph are connected in the clique
  // expansion and vice versa (isolated vertices are their own
  // components in both).
  for (index_t u = 0; u < h.num_vertices(); ++u) {
    for (index_t v : {index_t{0}, index_t{100}, index_t{700}}) {
      const bool same_h =
          hyper_comp.vertex_label[u] == hyper_comp.vertex_label[v];
      const bool same_g = clique_comp.label[u] == clique_comp.label[v];
      EXPECT_EQ(same_h, same_g) << u << " vs " << v;
    }
  }
}

TEST(Pipeline, MatrixMarketHypergraphCoreRuns) {
  Rng rng{11};
  const mm::CooMatrix matrix = mm::synthesize_stiffness(300, 6, 250, rng);
  const hyper::Hypergraph h = mm::row_net_hypergraph(matrix);
  const hyper::HyperCoreResult cores = hyper::core_decomposition(h);
  EXPECT_GT(cores.max_core, 0u);
  const hyper::SubHypergraph core =
      hyper::extract_core(h, cores, cores.max_core);
  EXPECT_TRUE(
      hyper::satisfies_core_conditions(core.hypergraph, cores.max_core));
}

TEST(Pipeline, GraphCoreOnPpiSurrogateIsDeeperThanHypergraphCore) {
  // Section 3's comparison: DIP yeast PPI graph max core (k = 10) is
  // deeper than the protein-complex hypergraph's (k = 6). Reproduce the
  // qualitative relation on matched surrogates.
  Rng rng{12};
  const auto weights = graph::power_law_weights(2000, 2.4, 9.0);
  const graph::Graph ppi = graph::generate_chung_lu(weights, rng);
  const graph::CoreDecomposition gcores = graph::core_decomposition(ppi);

  const hyper::HyperCoreResult hcores =
      hyper::core_decomposition(dataset().hypergraph);
  EXPECT_GT(gcores.max_core, hcores.max_core);
}

}  // namespace
}  // namespace hp
