// CLI smoke tests: usage/exit-code behaviour of the dispatcher and the
// --context-stats counter block.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "cli/commands.hpp"

namespace hp::cli {
namespace {

Args make_args(std::initializer_list<const char*> argv) {
  std::vector<const char*> v;
  v.push_back("hp_cli");
  v.insert(v.end(), argv);
  return Args{static_cast<int>(v.size()), v.data()};
}

class CliSmokeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    table_path_ = ::testing::TempDir() + "/cli_smoke_complexes.tsv";
    std::ofstream out(table_path_);
    out << "Arp23\tARP2\tARP3\tARC15\n"
        << "SAGA\tGCN5\tADA2\tSPT7\tARP2\n"
        << "ADA\tGCN5\tADA2\n";
  }
  void TearDown() override { std::remove(table_path_.c_str()); }

  std::string table_path_;
};

TEST_F(CliSmokeTest, NoArgumentsPrintsUsageAndFails) {
  std::ostringstream out;
  const int rc = run(make_args({}), out);
  EXPECT_EQ(rc, 2);
  EXPECT_NE(out.str().find("usage"), std::string::npos);
  EXPECT_EQ(out.str(), usage());
}

TEST_F(CliSmokeTest, UnknownSubcommandPrintsUsageAndFails) {
  std::ostringstream out;
  const int rc = run(make_args({"frobnicate", table_path_.c_str()}), out);
  EXPECT_EQ(rc, 2);
  EXPECT_NE(out.str().find("usage"), std::string::npos);
}

TEST_F(CliSmokeTest, UsageMentionsEveryCommandAndContextStats) {
  const std::string text = usage();
  for (const char* name :
       {"stats", "report", "core", "cover", "match", "soverlap",
        "smallworld", "convert", "generate", "pajek", "render"}) {
    EXPECT_NE(text.find(name), std::string::npos) << name;
  }
  EXPECT_NE(text.find("--context-stats"), std::string::npos);
}

TEST_F(CliSmokeTest, ContextStatsFlagEmitsCounterBlock) {
  std::ostringstream out;
  const int rc = run(
      make_args({"stats", table_path_.c_str(), "--context-stats"}), out);
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.str().find("context artifact counters"), std::string::npos);
  // The counter table lists the slot names with build counts.
  EXPECT_NE(out.str().find("components"), std::string::npos);
  EXPECT_NE(out.str().find("overlap table"), std::string::npos);
}

TEST_F(CliSmokeTest, WithoutFlagNoCounterBlock) {
  std::ostringstream out;
  const int rc = run(make_args({"stats", table_path_.c_str()}), out);
  EXPECT_EQ(rc, 0);
  EXPECT_EQ(out.str().find("context artifact counters"), std::string::npos);
}

TEST_F(CliSmokeTest, ReportContextStatsBuildsEachArtifactAtMostOnce) {
  std::ostringstream out;
  const int rc = run(
      make_args({"report", table_path_.c_str(), "--context-stats"}), out);
  EXPECT_EQ(rc, 0);
  const std::string text = out.str();
  const std::size_t block = text.find("context artifact counters");
  ASSERT_NE(block, std::string::npos);
  // Every listed artifact row shows 0 or 1 builds -- nothing is ever
  // rebuilt within one CLI invocation.
  std::istringstream lines{text.substr(block)};
  std::string line;
  std::getline(lines, line);  // "context artifact counters:"
  std::getline(lines, line);  // column header
  int rows = 0;
  while (std::getline(lines, line) && !line.empty()) {
    if (line.find("  total") == 0) break;
    // Per-artifact row: the name occupies the first 28 columns, the
    // builds count follows.
    ASSERT_GE(line.size(), 28u) << line;
    std::istringstream cols{line.substr(28)};
    std::uint64_t builds = 99;
    cols >> builds;
    EXPECT_LE(builds, 1u) << line;
    ++rows;
  }
  EXPECT_GT(rows, 10);
}

}  // namespace
}  // namespace hp::cli
