// CLI smoke tests: usage/exit-code behaviour of the dispatcher and the
// --context-stats counter block.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "cli/commands.hpp"
#include "obs/json_check.hpp"
#include "obs/trace.hpp"

namespace hp::cli {
namespace {

Args make_args(std::initializer_list<const char*> argv) {
  std::vector<const char*> v;
  v.push_back("hp_cli");
  v.insert(v.end(), argv);
  return Args{static_cast<int>(v.size()), v.data()};
}

class CliSmokeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    table_path_ = ::testing::TempDir() + "/cli_smoke_complexes.tsv";
    std::ofstream out(table_path_);
    out << "Arp23\tARP2\tARP3\tARC15\n"
        << "SAGA\tGCN5\tADA2\tSPT7\tARP2\n"
        << "ADA\tGCN5\tADA2\n";
  }
  void TearDown() override { std::remove(table_path_.c_str()); }

  std::string table_path_;
};

TEST_F(CliSmokeTest, NoArgumentsPrintsUsageAndFails) {
  std::ostringstream out;
  const int rc = run(make_args({}), out);
  EXPECT_EQ(rc, 2);
  EXPECT_NE(out.str().find("usage"), std::string::npos);
  EXPECT_EQ(out.str(), usage());
}

TEST_F(CliSmokeTest, UnknownSubcommandPrintsUsageAndFails) {
  std::ostringstream out;
  const int rc = run(make_args({"frobnicate", table_path_.c_str()}), out);
  EXPECT_EQ(rc, 2);
  EXPECT_NE(out.str().find("usage"), std::string::npos);
}

TEST_F(CliSmokeTest, UsageMentionsEveryCommandAndContextStats) {
  const std::string text = usage();
  for (const char* name :
       {"stats", "report", "core", "cover", "match", "soverlap",
        "smallworld", "convert", "generate", "pajek", "render"}) {
    EXPECT_NE(text.find(name), std::string::npos) << name;
  }
  EXPECT_NE(text.find("--context-stats"), std::string::npos);
  EXPECT_NE(text.find("--trace"), std::string::npos);
  EXPECT_NE(text.find("--metrics"), std::string::npos);
  EXPECT_NE(text.find("HP_TRACE"), std::string::npos);
  EXPECT_NE(text.find("--profile"), std::string::npos);
  EXPECT_NE(text.find("HP_PROFILE"), std::string::npos);
  EXPECT_NE(text.find("--metrics-interval"), std::string::npos);
  EXPECT_NE(text.find("HP_METRICS_INTERVAL"), std::string::npos);
  EXPECT_NE(text.find("--slow-span-ms"), std::string::npos);
}

TEST_F(CliSmokeTest, ContextStatsFlagEmitsCounterBlock) {
  std::ostringstream out;
  const int rc = run(
      make_args({"stats", table_path_.c_str(), "--context-stats"}), out);
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.str().find("context artifact counters"), std::string::npos);
  // The block routes through the shared metrics table: one
  // `metric | type | value` row per counter.
  EXPECT_NE(out.str().find("context.components.builds"), std::string::npos);
  EXPECT_NE(out.str().find("context.overlap_table.builds"),
            std::string::npos);
  EXPECT_NE(out.str().find("counter"), std::string::npos);
}

TEST_F(CliSmokeTest, WithoutFlagNoCounterBlock) {
  std::ostringstream out;
  const int rc = run(make_args({"stats", table_path_.c_str()}), out);
  EXPECT_EQ(rc, 0);
  EXPECT_EQ(out.str().find("context artifact counters"), std::string::npos);
}

TEST_F(CliSmokeTest, ReportContextStatsBuildsEachArtifactAtMostOnce) {
  std::ostringstream out;
  const int rc = run(
      make_args({"report", table_path_.c_str(), "--context-stats"}), out);
  EXPECT_EQ(rc, 0);
  const std::string text = out.str();
  const std::size_t block = text.find("context artifact counters");
  ASSERT_NE(block, std::string::npos);
  // Every per-artifact `context.<slug>.builds | counter | N` row shows 0
  // or 1 builds -- nothing is ever rebuilt within one CLI invocation.
  std::istringstream lines{text.substr(block)};
  std::string line;
  int rows = 0;
  while (std::getline(lines, line)) {
    const std::size_t builds_col = line.find(".builds ");
    if (line.rfind("context.", 0) != 0 || builds_col == std::string::npos) {
      continue;
    }
    if (line.rfind("context.total.", 0) == 0) continue;
    const std::size_t last_sep = line.rfind('|');
    ASSERT_NE(last_sep, std::string::npos) << line;
    std::istringstream value{line.substr(last_sep + 1)};
    std::uint64_t builds = 99;
    value >> builds;
    EXPECT_LE(builds, 1u) << line;
    ++rows;
  }
  EXPECT_GT(rows, 10);
}

TEST_F(CliSmokeTest, TraceFlagWritesParseableChromeTrace) {
  const std::string trace_path = ::testing::TempDir() + "/cli_smoke_trace.json";
  std::ostringstream out;
  const int rc = run(
      make_args({"report", table_path_.c_str(), "--trace",
                 trace_path.c_str()}),
      out);
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.str().find("wrote trace"), std::string::npos);

  std::ifstream in{trace_path};
  ASSERT_TRUE(in.good());
  std::ostringstream text;
  text << in.rdbuf();
  const obs::json::Value root = obs::json::parse(text.str());
  const obs::TraceSummary summary = obs::summarize_trace(root);
  EXPECT_TRUE(summary.all_balanced());
  EXPECT_TRUE(summary.all_monotonic());
  // The report drives the context, which nests artifact-build spans
  // under the command span; the peel loop adds one span per level.
  for (const char* name :
       {"cli.report", "cli.load_dataset", "context.build.core_decomposition",
        "kcore.peel_level"}) {
    EXPECT_NE(text.str().find(name), std::string::npos) << name;
  }
  std::remove(trace_path.c_str());
  obs::set_tracing_enabled(false);
  obs::reset_tracing();
}

TEST_F(CliSmokeTest, MetricsFlagWritesRegistryJson) {
  const std::string metrics_path =
      ::testing::TempDir() + "/cli_smoke_metrics.json";
  std::ostringstream out;
  const int rc = run(
      make_args({"core", table_path_.c_str(), "--metrics",
                 metrics_path.c_str()}),
      out);
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.str().find("wrote metrics"), std::string::npos);

  std::ifstream in{metrics_path};
  ASSERT_TRUE(in.good());
  std::ostringstream text;
  text << in.rdbuf();
  const obs::json::Value root = obs::json::parse(text.str());
  const obs::json::Value* counters = root.find("counters");
  ASSERT_NE(counters, nullptr);
  // The core command peels, so the substrate counters and the context
  // cache counters must both be in the dump.
  EXPECT_NE(counters->find("peel.rounds"), nullptr);
  EXPECT_NE(counters->find("context.core_decomposition.builds"), nullptr);
  const obs::json::Value* histograms = root.find("histograms");
  ASSERT_NE(histograms, nullptr);
  EXPECT_NE(histograms->find("context.build_ns"), nullptr);
  std::remove(metrics_path.c_str());
}

TEST_F(CliSmokeTest, TracedCommandYieldsSingleConnectedSpanTree) {
  const std::string trace_path =
      ::testing::TempDir() + "/cli_smoke_tree.json";
  std::ostringstream out;
  const int rc = run(
      make_args({"report", table_path_.c_str(), "--trace",
                 trace_path.c_str()}),
      out);
  EXPECT_EQ(rc, 0);

  std::ifstream in{trace_path};
  ASSERT_TRUE(in.good());
  std::ostringstream text;
  text << in.rdbuf();
  const obs::TraceSummary summary =
      obs::summarize_trace(obs::json::parse(text.str()));
  // The whole command -- dataset load, every artifact build, peel
  // levels, pool tasks -- hangs off the one cli.report root span.
  EXPECT_TRUE(summary.parent_integrity);
  ASSERT_EQ(summary.trees.size(), 1u);
  EXPECT_EQ(summary.trees[0].roots, 1u);
  EXPECT_TRUE(summary.trees[0].connected);
  EXPECT_TRUE(summary.all_single_rooted());
  EXPECT_GT(summary.trees[0].spans, 10u);
  std::remove(trace_path.c_str());
  obs::set_tracing_enabled(false);
  obs::reset_tracing();
}

// Satellite (a): observability reports must flush on error paths too --
// a trace of a failing run is precisely when you want one.
TEST_F(CliSmokeTest, FailingCommandStillFlushesTraceAndMetrics) {
  const std::string trace_path =
      ::testing::TempDir() + "/cli_smoke_err_trace.json";
  const std::string metrics_path =
      ::testing::TempDir() + "/cli_smoke_err_metrics.json";
  std::ostringstream out;
  const int rc = run(
      make_args({"stats", "/nonexistent/input.tsv", "--trace",
                 trace_path.c_str(), "--metrics", metrics_path.c_str()}),
      out);
  EXPECT_EQ(rc, 1);
  EXPECT_NE(out.str().find("error:"), std::string::npos);
  EXPECT_NE(out.str().find("wrote trace"), std::string::npos);
  EXPECT_NE(out.str().find("wrote metrics"), std::string::npos);

  std::ifstream trace_in{trace_path};
  ASSERT_TRUE(trace_in.good());
  std::ostringstream trace_text;
  trace_text << trace_in.rdbuf();
  const obs::TraceSummary summary =
      obs::summarize_trace(obs::json::parse(trace_text.str()));
  // The cli.stats root span closed cleanly despite the throw inside.
  EXPECT_TRUE(summary.all_balanced());
  EXPECT_TRUE(summary.all_single_rooted());

  std::ifstream metrics_in{metrics_path};
  ASSERT_TRUE(metrics_in.good());
  std::ostringstream metrics_text;
  metrics_text << metrics_in.rdbuf();
  obs::json::parse(metrics_text.str());

  std::remove(trace_path.c_str());
  std::remove(metrics_path.c_str());
  obs::set_tracing_enabled(false);
  obs::reset_tracing();
}

TEST_F(CliSmokeTest, ProfileFlagWritesFoldedFile) {
  const std::string profile_path =
      ::testing::TempDir() + "/cli_smoke_profile.folded";
  std::ostringstream out;
  const int rc = run(
      make_args({"report", table_path_.c_str(), "--profile",
                 profile_path.c_str()}),
      out);
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.str().find("wrote profile"), std::string::npos);
  // The run may be too short to catch a sample; the file must exist
  // either way (ci.sh asserts non-emptiness on a real workload).
  EXPECT_TRUE(std::ifstream{profile_path}.good());
  std::remove(profile_path.c_str());
}

TEST_F(CliSmokeTest, BadMetricsIntervalIsAUsageError) {
  std::ostringstream out;
  const int rc = run(
      make_args({"stats", table_path_.c_str(), "--metrics-interval",
                 "soon"}),
      out);
  EXPECT_EQ(rc, 2);
  EXPECT_NE(out.str().find("--metrics-interval"), std::string::npos);
}

TEST_F(CliSmokeTest, MetricsIntervalWritesSeriesSinks) {
  const std::string jsonl = ::testing::TempDir() + "/cli_smoke_series.jsonl";
  const std::string prom = ::testing::TempDir() + "/cli_smoke_series.prom";
  std::remove(jsonl.c_str());
  std::ostringstream out;
  const int rc = run(
      make_args({"report", table_path_.c_str(), "--metrics-interval",
                 "10ms", "--metrics-jsonl", jsonl.c_str(),
                 "--metrics-prom", prom.c_str()}),
      out);
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.str().find("wrote metrics series"), std::string::npos);

  // stop() always takes a final snapshot, so both sinks exist even if
  // the command beat the first timer tick.
  std::ifstream jsonl_in{jsonl};
  ASSERT_TRUE(jsonl_in.good());
  std::string line;
  std::string last_line;
  std::size_t lines = 0;
  while (std::getline(jsonl_in, line)) {
    ++lines;
    last_line = line;
    const obs::json::Value root = obs::json::parse(line);
    EXPECT_NE(root.find("unix_ms"), nullptr);
  }
  ASSERT_GE(lines, 1u);
  // The final flush (after the command ran) carries the refreshed
  // process gauges and the pool's queue-depth contribution.
  const obs::json::Value last = obs::json::parse(last_line);
  const obs::json::Value* gauges = last.find("gauges");
  ASSERT_NE(gauges, nullptr);
  ASSERT_NE(gauges->find("process.rss_bytes"), nullptr);
  EXPECT_GT(gauges->find("process.rss_bytes")->number, 0.0);
  ASSERT_NE(gauges->find("par.queue_depth"), nullptr);
  std::ifstream prom_in{prom};
  ASSERT_TRUE(prom_in.good());
  std::ostringstream prom_text;
  prom_text << prom_in.rdbuf();
  EXPECT_NE(prom_text.str().find("# TYPE hp_process_rss_bytes gauge"),
            std::string::npos);
  std::remove(jsonl.c_str());
  std::remove(prom.c_str());
}

TEST_F(CliSmokeTest, PeelStatsRouteThroughMetricsTable) {
  std::ostringstream out;
  const int rc = run(
      make_args({"core", table_path_.c_str(), "--peel-stats"}), out);
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.str().find("peel substrate counters"), std::string::npos);
  EXPECT_NE(out.str().find("peel.overlap_decrements"), std::string::npos);
  EXPECT_NE(out.str().find("peel.containment_probes"), std::string::npos);
}

}  // namespace
}  // namespace hp::cli
