#include "cli/commands.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/hypergraph_io.hpp"

namespace hp::cli {
namespace {

Args make_args(std::initializer_list<const char*> argv) {
  std::vector<const char*> v;
  v.push_back("hp_cli");
  v.insert(v.end(), argv);
  return Args{static_cast<int>(v.size()), v.data()};
}

class CliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir();
    table_path_ = dir_ + "/cli_complexes.tsv";
    std::ofstream out(table_path_);
    out << "Arp23\tARP2\tARP3\tARC15\n"
        << "SAGA\tGCN5\tADA2\tSPT7\tARP2\n"
        << "ADA\tGCN5\tADA2\n";
  }
  void TearDown() override { std::remove(table_path_.c_str()); }

  std::string dir_;
  std::string table_path_;
};

TEST_F(CliTest, LoadDatasetComplexTable) {
  const bio::ComplexDataset d = load_dataset(table_path_);
  EXPECT_EQ(d.hypergraph.num_edges(), 3u);
  EXPECT_TRUE(d.proteins.contains("GCN5"));
}

TEST_F(CliTest, LoadDatasetRejectsUnknownExtension) {
  EXPECT_THROW(load_dataset("foo.xyz"), InvalidInputError);
}

TEST_F(CliTest, StatsCommand) {
  std::ostringstream out;
  const int rc = cmd_stats(make_args({"stats", table_path_.c_str()}), out);
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.str().find("|V| (vertices)"), std::string::npos);
  EXPECT_NE(out.str().find("6"), std::string::npos);  // 6 distinct proteins
}

TEST_F(CliTest, CoreCommandListsLadderAndNames) {
  std::ostringstream out;
  const int rc = cmd_core(make_args({"core", table_path_.c_str()}), out);
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.str().find("k-core ladder"), std::string::npos);
  EXPECT_NE(out.str().find("GCN5"), std::string::npos);
}

TEST_F(CliTest, CoreCommandWritesExtractedCore) {
  const std::string core_path = dir_ + "/cli_core_out.hyper";
  std::ostringstream out;
  const int rc = cmd_core(
      make_args({"core", table_path_.c_str(), "--k", "1", "--out",
                 core_path.c_str()}),
      out);
  EXPECT_EQ(rc, 0);
  const hyper::Hypergraph core = hyper::load_text(core_path);
  EXPECT_GT(core.num_edges(), 0u);
  std::remove(core_path.c_str());
}

TEST_F(CliTest, CoverCommandVariants) {
  std::ostringstream unit_out, deg2_out, multi_out;
  EXPECT_EQ(cmd_cover(make_args({"cover", table_path_.c_str()}), unit_out),
            0);
  EXPECT_EQ(cmd_cover(make_args({"cover", table_path_.c_str(), "--weights",
                                 "deg2"}),
                      deg2_out),
            0);
  EXPECT_EQ(cmd_cover(make_args({"cover", table_path_.c_str(),
                                 "--multicover", "2"}),
                      multi_out),
            0);
  EXPECT_NE(unit_out.str().find("cover:"), std::string::npos);
  EXPECT_NE(multi_out.str().find("cover:"), std::string::npos);
}

TEST_F(CliTest, CoverRejectsBadWeights) {
  std::ostringstream out;
  EXPECT_THROW(cmd_cover(make_args({"cover", table_path_.c_str(),
                                    "--weights", "banana"}),
                         out),
               InvalidInputError);
}

TEST_F(CliTest, ConvertTsvToHgrAndBack) {
  const std::string hgr = dir_ + "/cli_conv.hgr";
  const std::string hyper = dir_ + "/cli_conv.hyper";
  std::ostringstream out;
  EXPECT_EQ(cmd_convert(
                make_args({"convert", table_path_.c_str(), hgr.c_str()}),
                out),
            0);
  EXPECT_EQ(cmd_convert(make_args({"convert", hgr.c_str(), hyper.c_str()}),
                        out),
            0);
  const bio::ComplexDataset original = load_dataset(table_path_);
  const bio::ComplexDataset converted = load_dataset(hyper);
  EXPECT_EQ(converted.hypergraph.num_pins(),
            original.hypergraph.num_pins());
  std::remove(hgr.c_str());
  std::remove(hyper.c_str());
}

TEST_F(CliTest, ConvertToMtxIsRejected) {
  std::ostringstream out;
  const bio::ComplexDataset d = load_dataset(table_path_);
  EXPECT_THROW(save_dataset(d, dir_ + "/x.mtx"), InvalidInputError);
}

TEST_F(CliTest, GenerateWritesSurrogate) {
  const std::string path = dir_ + "/cli_gen.tsv";
  std::ostringstream out;
  const int rc =
      cmd_generate(make_args({"generate", path.c_str(), "--seed", "7"}), out);
  EXPECT_EQ(rc, 0);
  const bio::ComplexDataset d = load_dataset(path);
  EXPECT_EQ(d.hypergraph.num_vertices(), 1361u);
  EXPECT_EQ(d.hypergraph.num_edges(), 232u);
  std::remove(path.c_str());
}

TEST_F(CliTest, PajekWritesNetAndClu) {
  const std::string prefix = dir_ + "/cli_fig3";
  std::ostringstream out;
  const int rc = cmd_pajek(
      make_args({"pajek", table_path_.c_str(), prefix.c_str()}), out);
  EXPECT_EQ(rc, 0);
  std::ifstream net(prefix + ".net");
  std::ifstream clu(prefix + ".clu");
  EXPECT_TRUE(net.good());
  EXPECT_TRUE(clu.good());
  std::string first;
  std::getline(net, first);
  EXPECT_NE(first.find("*Vertices"), std::string::npos);
  std::remove((prefix + ".net").c_str());
  std::remove((prefix + ".clu").c_str());
}

TEST_F(CliTest, MatchCommand) {
  std::ostringstream out;
  const int rc = cmd_match(make_args({"match", table_path_.c_str()}), out);
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.str().find("maximal matching:"), std::string::npos);
  // Arp23 is disjoint from the GCN5 family: matching size >= 2.
  EXPECT_NE(out.str().find("Arp23"), std::string::npos);
}

TEST_F(CliTest, SoverlapCommand) {
  std::ostringstream out;
  const int rc =
      cmd_soverlap(make_args({"soverlap", table_path_.c_str()}), out);
  EXPECT_EQ(rc, 0);
  // SAGA and ADA share {GCN5, ADA2}: max meaningful s is 2.
  EXPECT_NE(out.str().find("max meaningful s: 2"), std::string::npos);
}

TEST_F(CliTest, SmallworldCommand) {
  std::ostringstream out;
  const int rc = cmd_smallworld(
      make_args({"smallworld", table_path_.c_str(), "--seed", "3"}), out);
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.str().find("observed:"), std::string::npos);
  EXPECT_NE(out.str().find("null model:"), std::string::npos);
}

TEST_F(CliTest, ConvertThroughBinary) {
  const std::string hpb = dir_ + "/cli_conv.hpb";
  std::ostringstream out;
  EXPECT_EQ(cmd_convert(
                make_args({"convert", table_path_.c_str(), hpb.c_str()}),
                out),
            0);
  const bio::ComplexDataset back = load_dataset(hpb);
  EXPECT_EQ(back.hypergraph.num_edges(), 3u);
  std::remove(hpb.c_str());
}

TEST_F(CliTest, SnapshotConvertInfoVerify) {
  const std::string hps = dir_ + "/cli_snap.hps";
  std::ostringstream out;
  EXPECT_EQ(cmd_snapshot(
                make_args({"snapshot", "convert", table_path_.c_str(),
                           hps.c_str()}),
                out),
            0);
  EXPECT_NE(out.str().find("codec nop"), std::string::npos);

  std::ostringstream info_out;
  EXPECT_EQ(cmd_snapshot(make_args({"snapshot", "info", hps.c_str()}),
                         info_out),
            0);
  EXPECT_NE(info_out.str().find("hyperedges     : 3"), std::string::npos);

  std::ostringstream verify_out;
  EXPECT_EQ(cmd_snapshot(make_args({"snapshot", "verify", hps.c_str()}),
                         verify_out),
            0);
  EXPECT_NE(verify_out.str().find("snapshot ok"), std::string::npos);
  std::remove(hps.c_str());
}

TEST_F(CliTest, SnapshotStatsMatchesTextPath) {
  // The acceptance contract: analysis over a .hps must print exactly
  // what the same analysis over the text formats prints.
  const std::string hyper = dir_ + "/cli_snap_ref.hyper";
  const std::string hps = dir_ + "/cli_snap_ref.hps";
  std::ostringstream conv;
  ASSERT_EQ(cmd_convert(
                make_args({"convert", table_path_.c_str(), hyper.c_str()}),
                conv),
            0);
  ASSERT_EQ(cmd_snapshot(
                make_args({"snapshot", "convert", hyper.c_str(), hps.c_str(),
                           "--codec", "varint"}),
                conv),
            0);
  std::ostringstream from_text, from_snapshot;
  ASSERT_EQ(cmd_stats(make_args({"stats", hyper.c_str()}), from_text), 0);
  ASSERT_EQ(cmd_stats(make_args({"stats", hps.c_str()}), from_snapshot), 0);
  EXPECT_EQ(from_text.str(), from_snapshot.str());
  std::remove(hyper.c_str());
  std::remove(hps.c_str());
}

TEST_F(CliTest, SnapshotRejectsBadSubcommandAndCodec) {
  std::ostringstream out;
  EXPECT_THROW(cmd_snapshot(make_args({"snapshot", "frob", "x.hps"}), out),
               InvalidInputError);
  EXPECT_THROW(cmd_snapshot(make_args({"snapshot", "convert",
                                       table_path_.c_str(), "x.hps",
                                       "--codec", "lzma"}),
                            out),
               InvalidInputError);
}

TEST_F(CliTest, ReportCommand) {
  std::ostringstream out;
  const int rc = cmd_report(
      make_args({"report", table_path_.c_str(), "--no-paper"}), out);
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.str().find("maximum core k"), std::string::npos);
  EXPECT_NE(out.str().find("2-multicover size"), std::string::npos);
}

TEST_F(CliTest, RenderWritesSvg) {
  const std::string path = dir_ + "/cli_fig3.svg";
  std::ostringstream out;
  const int rc = cmd_render(
      make_args({"render", table_path_.c_str(), path.c_str(),
                 "--iterations", "10"}),
      out);
  EXPECT_EQ(rc, 0);
  std::ifstream svg(path);
  std::string first;
  ASSERT_TRUE(std::getline(svg, first));
  EXPECT_NE(first.find("<svg"), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(CliTest, RunDispatchesAndHandlesErrors) {
  std::ostringstream out;
  EXPECT_EQ(run(make_args({}), out), 2);
  EXPECT_NE(out.str().find("usage:"), std::string::npos);

  std::ostringstream out2;
  EXPECT_EQ(run(make_args({"frobnicate"}), out2), 2);
  EXPECT_NE(out2.str().find("unknown command"), std::string::npos);

  std::ostringstream out3;
  EXPECT_EQ(run(make_args({"stats", "/no/such/file.tsv"}), out3), 1);
  EXPECT_NE(out3.str().find("error:"), std::string::npos);

  std::ostringstream out4;
  EXPECT_EQ(run(make_args({"stats", table_path_.c_str()}), out4), 0);
}

}  // namespace
}  // namespace hp::cli
