#include "core/hypergraph.hpp"

#include <gtest/gtest.h>

#include "test_helpers.hpp"
#include "util/common.hpp"

namespace hp::hyper {
namespace {

TEST(HypergraphBuilder, BasicConstruction) {
  HypergraphBuilder b{4};
  const index_t e0 = b.add_edge({0, 1, 2});
  const index_t e1 = b.add_edge({2, 3});
  EXPECT_EQ(e0, 0u);
  EXPECT_EQ(e1, 1u);
  const Hypergraph h = b.build();
  EXPECT_EQ(h.num_vertices(), 4u);
  EXPECT_EQ(h.num_edges(), 2u);
  EXPECT_EQ(h.num_pins(), 5u);
  EXPECT_EQ(h.edge_size(0), 3u);
  EXPECT_EQ(h.vertex_degree(2), 2u);
  EXPECT_EQ(h.vertex_degree(3), 1u);
}

TEST(HypergraphBuilder, SortsAndDeduplicatesMembers) {
  HypergraphBuilder b{5};
  b.add_edge({3, 1, 3, 0, 1});
  const Hypergraph h = b.build();
  const auto members = h.vertices_of(0);
  ASSERT_EQ(members.size(), 3u);
  EXPECT_EQ(members[0], 0u);
  EXPECT_EQ(members[1], 1u);
  EXPECT_EQ(members[2], 3u);
}

TEST(HypergraphBuilder, RejectsEmptyEdgeAndBadVertex) {
  HypergraphBuilder b{3};
  EXPECT_THROW(b.add_edge(std::initializer_list<index_t>{}),
               InvalidInputError);
  EXPECT_THROW(b.add_edge({0, 3}), InvalidInputError);
}

TEST(Hypergraph, EdgesOfIsSortedByEdgeId) {
  HypergraphBuilder b{3};
  b.add_edge({0, 1});
  b.add_edge({0, 2});
  b.add_edge({0});
  const Hypergraph h = b.build();
  const auto edges = h.edges_of(0);
  ASSERT_EQ(edges.size(), 3u);
  EXPECT_EQ(edges[0], 0u);
  EXPECT_EQ(edges[1], 1u);
  EXPECT_EQ(edges[2], 2u);
}

TEST(Hypergraph, EdgeContains) {
  const Hypergraph h = testing::toy_hypergraph();
  EXPECT_TRUE(h.edge_contains(0, 2));
  EXPECT_FALSE(h.edge_contains(0, 5));
  EXPECT_TRUE(h.edge_contains(3, 5));
}

TEST(Hypergraph, MaxDegrees) {
  const Hypergraph h = testing::toy_hypergraph();
  EXPECT_EQ(h.max_edge_size(), 5u);   // e4
  EXPECT_EQ(h.max_vertex_degree(), 3u);  // vertex 2 or 3: e0, e1, e4
}

TEST(Hypergraph, IsolatedVertices) {
  HypergraphBuilder b{5};
  b.add_edge({0, 1});
  const Hypergraph h = b.build();
  EXPECT_EQ(h.vertex_degree(4), 0u);
  EXPECT_TRUE(h.edges_of(4).empty());
}

TEST(Hypergraph, EmptyHypergraph) {
  const Hypergraph h = HypergraphBuilder{0}.build();
  EXPECT_EQ(h.num_vertices(), 0u);
  EXPECT_EQ(h.num_edges(), 0u);
  EXPECT_EQ(h.num_pins(), 0u);
  EXPECT_EQ(h.max_vertex_degree(), 0u);
  EXPECT_EQ(h.max_edge_size(), 0u);
}

TEST(Hypergraph, EqualityIsStructural) {
  HypergraphBuilder a{3}, b{3};
  a.add_edge({0, 1});
  b.add_edge({1, 0});
  EXPECT_EQ(a.build(), b.build());
  b.add_edge({2});
  EXPECT_NE(a.build(), b.build());
}

TEST(Validate, AcceptsWellFormed) {
  EXPECT_NO_THROW(validate(testing::toy_hypergraph()));
  EXPECT_NO_THROW(validate(HypergraphBuilder{0}.build()));
}

TEST(Validate, RandomHypergraphsAreConsistent) {
  Rng rng{2024};
  for (int trial = 0; trial < 10; ++trial) {
    const Hypergraph h = testing::random_hypergraph(rng, 40, 30, 8);
    EXPECT_NO_THROW(validate(h));
  }
}

TEST(Induce, KeepsSelectedAndRemaps) {
  const Hypergraph h = testing::toy_hypergraph();
  std::vector<bool> keep_v(7, true);
  keep_v[4] = false;  // drop vertex 4
  std::vector<bool> keep_e(5, true);
  keep_e[3] = false;  // drop the singleton {5}
  const SubHypergraph sub = induce(h, keep_v, keep_e);
  EXPECT_EQ(sub.hypergraph.num_vertices(), 6u);
  // e2 = {4,5} loses 4 and becomes {5}; still non-empty so it is kept.
  EXPECT_EQ(sub.hypergraph.num_edges(), 4u);
  EXPECT_NO_THROW(validate(sub.hypergraph));
  // Mappings point back at the parent.
  EXPECT_EQ(sub.vertex_to_parent.size(), 6u);
  for (index_t e = 0; e < sub.hypergraph.num_edges(); ++e) {
    EXPECT_NE(sub.edge_to_parent[e], 3u);
  }
}

TEST(Induce, DropsEmptiedEdges) {
  const Hypergraph h = testing::toy_hypergraph();
  std::vector<bool> keep_v(7, true);
  keep_v[5] = false;
  std::vector<bool> keep_e(5, true);
  const SubHypergraph sub = induce(h, keep_v, keep_e);
  // e3 = {5} becomes empty and disappears.
  EXPECT_EQ(sub.hypergraph.num_edges(), 4u);
}

TEST(Induce, SizeMismatchThrows) {
  const Hypergraph h = testing::toy_hypergraph();
  EXPECT_THROW(induce(h, std::vector<bool>(3, true),
                      std::vector<bool>(5, true)),
               InvalidInputError);
  EXPECT_THROW(induce(h, std::vector<bool>(7, true),
                      std::vector<bool>(2, true)),
               InvalidInputError);
}

TEST(Hypergraph, StorageBytesTracksPins) {
  HypergraphBuilder small{10}, large{10};
  small.add_edge({0, 1});
  for (int i = 0; i < 20; ++i) {
    large.add_edge({0, 1, 2, 3, 4, 5, 6, 7, 8, 9});
  }
  EXPECT_LT(small.build().storage_bytes(), large.build().storage_bytes());
}

}  // namespace
}  // namespace hp::hyper
