#include "core/hypergraph_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "test_helpers.hpp"
#include "util/common.hpp"

namespace hp::hyper {
namespace {

TEST(HypergraphIo, RoundTripToy) {
  const Hypergraph h = testing::toy_hypergraph();
  const Hypergraph back = from_text(to_text(h));
  EXPECT_EQ(h, back);
}

TEST(HypergraphIo, RoundTripRandom) {
  Rng rng{77};
  for (int trial = 0; trial < 5; ++trial) {
    const Hypergraph h = testing::random_hypergraph(rng, 25, 20, 6);
    EXPECT_EQ(h, from_text(to_text(h)));
  }
}

TEST(HypergraphIo, PreservesIsolatedVertices) {
  HypergraphBuilder b{10};
  b.add_edge({0, 1});
  const Hypergraph h = b.build();
  const Hypergraph back = from_text(to_text(h));
  EXPECT_EQ(back.num_vertices(), 10u);
}

TEST(HypergraphIo, ParsesCommentsAndBlankLines) {
  const Hypergraph h = from_text(
      "# a comment\n"
      "\n"
      "%hypergraph 3 2\n"
      "0 1\n"
      "# interior comment\n"
      "1 2\n");
  EXPECT_EQ(h.num_vertices(), 3u);
  EXPECT_EQ(h.num_edges(), 2u);
}

TEST(HypergraphIo, RejectsMalformedInput) {
  EXPECT_THROW(from_text(""), ParseError);
  EXPECT_THROW(from_text("0 1\n"), ParseError);  // edge before header
  EXPECT_THROW(from_text("%hypergraph 2\n"), ParseError);  // short header
  EXPECT_THROW(from_text("%hypergraph 2 1\n0 5\n"), ParseError);  // range
  EXPECT_THROW(from_text("%hypergraph 2 2\n0 1\n"), ParseError);  // count
  EXPECT_THROW(from_text("%hypergraph 2 1\n0 x\n"), ParseError);  // token
}

TEST(HypergraphIo, FileRoundTrip) {
  const Hypergraph h = testing::toy_hypergraph();
  const std::string path = ::testing::TempDir() + "/hp_io_test.hyper";
  save_text(h, path);
  EXPECT_EQ(load_text(path), h);
  std::remove(path.c_str());
}

TEST(HypergraphIo, MissingFileThrows) {
  EXPECT_THROW(load_text("/nonexistent/hp.hyper"), std::runtime_error);
}

TEST(HmetisIo, RoundTripPreservesEdges) {
  const Hypergraph h = testing::toy_hypergraph();
  const Hypergraph back = from_hmetis(to_hmetis(h));
  // hMETIS cannot represent trailing isolated vertices beyond the
  // declared count; the toy has none, so the round trip is exact.
  EXPECT_EQ(back, h);
}

TEST(HmetisIo, FormatShape) {
  HypergraphBuilder b{3};
  b.add_edge({0, 2});
  b.add_edge({1});
  const std::string text = to_hmetis(b.build());
  // Header "2 3" (edges, vertices), then 1-based member lists.
  EXPECT_NE(text.find("2 3\n"), std::string::npos);
  EXPECT_NE(text.find("1 3\n"), std::string::npos);
  EXPECT_NE(text.find("\n2\n"), std::string::npos);
}

TEST(HmetisIo, ParsesCommentsAndValidates) {
  const Hypergraph h = from_hmetis("% comment\n2 4\n1 2\n3 4\n");
  EXPECT_EQ(h.num_vertices(), 4u);
  EXPECT_EQ(h.num_edges(), 2u);
  EXPECT_TRUE(h.edge_contains(0, 0));  // 1-based "1" -> vertex 0
}

TEST(HmetisIo, RejectsMalformed) {
  EXPECT_THROW(from_hmetis(""), ParseError);
  EXPECT_THROW(from_hmetis("2 4 1\n1 2\n3 4\n"), ParseError);  // weighted fmt
  EXPECT_THROW(from_hmetis("1 2\n0 1\n"), ParseError);  // 0 is out of range
  EXPECT_THROW(from_hmetis("1 2\n1 3\n"), ParseError);  // beyond vertices
  EXPECT_THROW(from_hmetis("2 2\n1 2\n"), ParseError);  // edge count
}

TEST(HmetisIo, FileRoundTrip) {
  const Hypergraph h = testing::toy_hypergraph();
  const std::string path = ::testing::TempDir() + "/hp_io_test.hgr";
  save_hmetis(h, path);
  EXPECT_EQ(load_hmetis(path), h);
  std::remove(path.c_str());
  EXPECT_THROW(load_hmetis("/no/such/file.hgr"), std::runtime_error);
}

}  // namespace
}  // namespace hp::hyper
