// The mmap'd snapshot format (core/snapshot/): round-trips, zero-copy
// opens, the parse-or-throw corruption contract, and algorithms running
// unchanged over mapped storage.
#include "core/snapshot/snapshot.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/context/analysis_context.hpp"
#include "core/hypergraph.hpp"
#include "core/hypergraph_io.hpp"
#include "core/mutate/mutable_context.hpp"
#include "core/snapshot/snapshot_format.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace hp::hyper {
namespace {

std::string save_temp(const Hypergraph& h, const std::string& name,
                      snapshot::SaveOptions options = {}) {
  const std::string path = ::testing::TempDir() + "/" + name;
  snapshot::save(h, path, options);
  return path;
}

snapshot::SaveOptions varint_options() {
  snapshot::SaveOptions o;
  o.codec = snapshot::Codec::kVarint;
  return o;
}

TEST(SnapshotTest, RoundTripBothCodecs) {
  Rng rng{20040426};
  for (int trial = 0; trial < 8; ++trial) {
    const Hypergraph h = testing::random_hypergraph(rng, 30, 20, 6);
    EXPECT_EQ(snapshot::from_bytes(snapshot::to_bytes(h)), h);
    EXPECT_EQ(snapshot::from_bytes(snapshot::to_bytes(h, varint_options())),
              h);
  }
}

TEST(SnapshotTest, RoundTripEmptyAndEdgeless) {
  const Hypergraph empty;
  EXPECT_EQ(snapshot::from_bytes(snapshot::to_bytes(empty)), empty);

  // Isolated vertices only: offsets exist, adjacency sections are empty.
  const Hypergraph isolated = HypergraphBuilder{5}.build();
  EXPECT_EQ(snapshot::from_bytes(snapshot::to_bytes(isolated)), isolated);
  EXPECT_EQ(
      snapshot::from_bytes(snapshot::to_bytes(isolated, varint_options())),
      isolated);
}

TEST(SnapshotTest, OpenIsZeroCopyForRawCodec) {
  const Hypergraph h = testing::toy_hypergraph();
  const std::string path = save_temp(h, "hp_snap_raw.hps");

  const Hypergraph mapped = snapshot::open(path);
  EXPECT_TRUE(mapped.is_mapped());
  EXPECT_EQ(mapped.owned_bytes(), 0u);
  EXPECT_GT(mapped.mapped_bytes(), 0u);
  EXPECT_EQ(mapped, h);
  EXPECT_FALSE(h.is_mapped());
  validate(mapped);
  std::remove(path.c_str());
}

TEST(SnapshotTest, OpenDecodesVarintIntoOwnedStorage) {
  const Hypergraph h = testing::toy_hypergraph();
  const std::string path = save_temp(h, "hp_snap_varint.hps", varint_options());

  const Hypergraph opened = snapshot::open(path);
  EXPECT_FALSE(opened.is_mapped());
  EXPECT_EQ(opened.mapped_bytes(), 0u);
  EXPECT_GT(opened.owned_bytes(), 0u);
  EXPECT_EQ(opened, h);
  std::remove(path.c_str());
}

TEST(SnapshotTest, VarintFilesAreSmaller) {
  Rng rng{7};
  const Hypergraph h = testing::random_hypergraph(rng, 500, 200, 8);
  EXPECT_LT(snapshot::to_bytes(h, varint_options()).size(),
            snapshot::to_bytes(h).size());
}

TEST(SnapshotTest, StructuralEqualityAcrossStorageKinds) {
  const Hypergraph h = testing::toy_hypergraph();
  const std::string path = save_temp(h, "hp_snap_eq.hps");
  const Hypergraph mapped = snapshot::open(path);

  // Same structure, different storage: equal both ways.
  EXPECT_TRUE(mapped == h);
  EXPECT_TRUE(h == mapped);

  // Copying a mapped hypergraph preserves structure and equality.
  const Hypergraph copy = mapped;  // NOLINT(performance-unnecessary-copy)
  EXPECT_EQ(copy, h);

  // A structurally different hypergraph is unequal regardless of storage.
  HypergraphBuilder b{7};
  b.add_edge({0, 1});
  const Hypergraph other = b.build();
  EXPECT_FALSE(mapped == other);
  std::remove(path.c_str());
}

TEST(SnapshotTest, DefaultVersusBuiltEmptyCompareEqual) {
  EXPECT_TRUE(Hypergraph{} == HypergraphBuilder{0}.build());
}

TEST(SnapshotTest, InfoReportsHeaderFields) {
  const Hypergraph h = testing::toy_hypergraph();
  const std::string path = save_temp(h, "hp_snap_info.hps", varint_options());
  const snapshot::Info info = snapshot::info(path);
  EXPECT_EQ(info.version, snapshot::kFormatVersion);
  EXPECT_EQ(info.codec, snapshot::Codec::kVarint);
  EXPECT_EQ(info.num_vertices, h.num_vertices());
  EXPECT_EQ(info.num_edges, h.num_edges());
  EXPECT_EQ(info.num_pins, h.num_pins());
  EXPECT_GT(info.file_bytes, info.section_bytes);
  std::remove(path.c_str());
}

TEST(SnapshotTest, VerifyAcceptsIntactAndRejectsCorrupt) {
  const Hypergraph h = testing::toy_hypergraph();
  const std::string path = save_temp(h, "hp_snap_verify.hps");
  EXPECT_NO_THROW(snapshot::verify(path));

  // Flip one adjacency byte on disk: the section checksum must catch it.
  std::string bytes = snapshot::to_bytes(h);
  bytes[bytes.size() - 1] ^= 0x40;
  const std::string bad = ::testing::TempDir() + "/hp_snap_verify_bad.hps";
  {
    std::ofstream out{bad, std::ios::binary};
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  EXPECT_THROW(snapshot::verify(bad), ParseError);
  std::remove(path.c_str());
  std::remove(bad.c_str());
}

TEST(SnapshotTest, EveryHeaderByteFlipIsRejected) {
  const std::string bytes = snapshot::to_bytes(testing::toy_hypergraph());
  ASSERT_GE(bytes.size(), sizeof(snapshot::Header));
  for (std::size_t i = 0; i < sizeof(snapshot::Header); ++i) {
    for (const char mask : {char(0x01), char(0x80)}) {
      std::string corrupt = bytes;
      corrupt[i] ^= mask;
      EXPECT_THROW(snapshot::from_bytes(corrupt), ParseError)
          << "header byte " << i << " flip went undetected";
    }
  }
}

TEST(SnapshotTest, EveryBodyByteFlipParsesOrThrows) {
  // The oracle contract over the full file, both codecs: a one-byte
  // flip either throws ParseError or (padding bytes, which no checksum
  // covers) yields the original hypergraph. Anything else -- a crash,
  // another exception type, a silently different graph -- fails.
  const Hypergraph h = testing::toy_hypergraph();
  for (const bool varint : {false, true}) {
    const std::string bytes =
        varint ? snapshot::to_bytes(h, varint_options())
               : snapshot::to_bytes(h);
    for (std::size_t i = sizeof(snapshot::Header); i < bytes.size(); ++i) {
      std::string corrupt = bytes;
      corrupt[i] ^= 0x20;
      try {
        EXPECT_EQ(snapshot::from_bytes(corrupt), h)
            << "non-padding byte " << i << " flip went undetected";
      } catch (const ParseError&) {
      } catch (const InvalidInputError&) {
      }
    }
  }
}

TEST(SnapshotTest, TruncationAlwaysThrows) {
  const std::string bytes = snapshot::to_bytes(testing::toy_hypergraph());
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{7}, std::size_t{64},
        sizeof(snapshot::Header) - 1, sizeof(snapshot::Header),
        bytes.size() - 64, bytes.size() - 1}) {
    EXPECT_THROW(snapshot::from_bytes(bytes.substr(0, keep)), ParseError)
        << "truncation to " << keep << " bytes went undetected";
  }
}

TEST(SnapshotTest, AlgorithmsRunOverMappedStorage) {
  Rng rng{99};
  const Hypergraph h = testing::random_hypergraph(rng, 40, 25, 5);
  const std::string path = save_temp(h, "hp_snap_algos.hps");
  const Hypergraph mapped = snapshot::open(path);

  // induce over a mapped parent produces owned storage with the same
  // result as inducing the owned original.
  std::vector<bool> keep_vertex(h.num_vertices(), true);
  keep_vertex[0] = false;
  const std::vector<bool> keep_edge(h.num_edges(), true);
  const SubHypergraph from_mapped = induce(mapped, keep_vertex, keep_edge);
  EXPECT_FALSE(from_mapped.hypergraph.is_mapped());
  EXPECT_EQ(from_mapped.hypergraph,
            induce(h, keep_vertex, keep_edge).hypergraph);

  // A full analysis context over the mapping, with the ownership split
  // surfaced in its stats.
  AnalysisContext context{mapped};
  context.cores();
  context.components();
  const ContextStats stats = context.stats();
  EXPECT_GT(stats.hypergraph_mapped_bytes, 0u);
  EXPECT_EQ(stats.hypergraph_owned_bytes, 0u);
  std::remove(path.c_str());
}

TEST(SnapshotTest, MutablePipelineOverMappedBase) {
  const Hypergraph h = testing::toy_hypergraph();
  const std::string path = save_temp(h, "hp_snap_mutate.hps");
  const Hypergraph mapped = snapshot::open(path);

  MutableAnalysisContext ctx{mapped};
  const index_t e = ctx.graph().add_hyperedge({0, 4, 6});
  ctx.vertex_degrees();
  EXPECT_EQ(ctx.graph().live_edges(), h.num_edges() + 1);
  ctx.graph().remove_hyperedge(e);
  EXPECT_EQ(ctx.graph().live_edges(), h.num_edges());
  EXPECT_EQ(ctx.snapshot().hypergraph, h);
  EXPECT_GT(ctx.stats().hypergraph_owned_bytes, 0u);
  std::remove(path.c_str());
}

TEST(SnapshotTest, TextAndSnapshotLoadersAgree) {
  Rng rng{11};
  const Hypergraph h = testing::random_hypergraph(rng, 25, 15, 4);
  const std::string text_path = ::testing::TempDir() + "/hp_snap_diff.hyper";
  save_text(h, text_path);
  const std::string snap_path = save_temp(h, "hp_snap_diff.hps");
  EXPECT_EQ(load_text(text_path), snapshot::open(snap_path));
  std::remove(text_path.c_str());
  std::remove(snap_path.c_str());
}

}  // namespace
}  // namespace hp::hyper
