#include "core/matching.hpp"

#include <gtest/gtest.h>

#include "core/cover.hpp"
#include "test_helpers.hpp"

namespace hp::hyper {
namespace {

TEST(GreedyMatching, DisjointEdgesAllMatched) {
  HypergraphBuilder b{6};
  b.add_edge({0, 1});
  b.add_edge({2, 3});
  b.add_edge({4, 5});
  const MatchingResult m = greedy_matching(b.build());
  EXPECT_EQ(m.edges.size(), 3u);
}

TEST(GreedyMatching, OverlappingEdgesPickOne) {
  HypergraphBuilder b{3};
  b.add_edge({0, 1});
  b.add_edge({1, 2});
  const Hypergraph h = b.build();
  const MatchingResult m = greedy_matching(h);
  EXPECT_EQ(m.edges.size(), 1u);
  EXPECT_TRUE(is_maximal_matching(h, m.edges));
}

TEST(GreedyMatching, PrefersSmallEdges) {
  // The small disjoint pair beats the big edge that blocks both.
  HypergraphBuilder b{4};
  b.add_edge({0, 1, 2, 3});
  b.add_edge({0, 1});
  b.add_edge({2, 3});
  const MatchingResult m = greedy_matching(b.build());
  EXPECT_EQ(m.edges, (std::vector<index_t>{1, 2}));
}

TEST(GreedyMatching, AlwaysMaximalOnRandomInputs) {
  Rng rng{33};
  for (int trial = 0; trial < 10; ++trial) {
    const Hypergraph h = testing::random_hypergraph(rng, 25, 30, 5);
    const MatchingResult m = greedy_matching(h);
    EXPECT_TRUE(is_matching(h, m.edges)) << trial;
    EXPECT_TRUE(is_maximal_matching(h, m.edges)) << trial;
  }
}

TEST(Matching, WeakDualityWithCovers) {
  // |matching| <= |any vertex cover|: each matched edge needs its own
  // cover vertex.
  Rng rng{44};
  for (int trial = 0; trial < 10; ++trial) {
    const Hypergraph h = testing::random_hypergraph(rng, 20, 25, 4);
    const MatchingResult m = greedy_matching(h);
    const CoverResult c = greedy_vertex_cover(h, unit_weights(h));
    EXPECT_LE(m.edges.size(), c.vertices.size()) << trial;
  }
}

TEST(ExactMatching, BeatsOrMatchesGreedy) {
  Rng rng{55};
  for (int trial = 0; trial < 8; ++trial) {
    const Hypergraph h = testing::random_hypergraph(rng, 15, 12, 4);
    const MatchingResult greedy = greedy_matching(h);
    const MatchingResult exact = exact_maximum_matching(h);
    EXPECT_TRUE(is_matching(h, exact.edges)) << trial;
    EXPECT_GE(exact.edges.size(), greedy.edges.size()) << trial;
  }
}

TEST(ExactMatching, KnownOptimum) {
  // Two disjoint pairs + a spanning edge: optimum is the two pairs.
  HypergraphBuilder b{4};
  b.add_edge({0, 1, 2, 3});
  b.add_edge({0, 1});
  b.add_edge({2, 3});
  const MatchingResult m = exact_maximum_matching(b.build());
  EXPECT_EQ(m.edges.size(), 2u);
}

TEST(ExactMatching, RefusesLargeInstances) {
  Rng rng{66};
  const Hypergraph h = testing::random_hypergraph(rng, 30, 40, 3);
  EXPECT_THROW(exact_maximum_matching(h), std::invalid_argument);
}

TEST(IsMatching, DetectsConflicts) {
  HypergraphBuilder b{3};
  b.add_edge({0, 1});
  b.add_edge({1, 2});
  const Hypergraph h = b.build();
  EXPECT_TRUE(is_matching(h, {0}));
  EXPECT_FALSE(is_matching(h, {0, 1}));
  EXPECT_TRUE(is_matching(h, {}));
  EXPECT_THROW(is_matching(h, {7}), InvalidInputError);
}

TEST(IsMaximalMatching, EmptySetOnlyMaximalForEmptyHypergraph) {
  EXPECT_TRUE(is_maximal_matching(HypergraphBuilder{3}.build(), {}));
  HypergraphBuilder b{2};
  b.add_edge({0, 1});
  EXPECT_FALSE(is_maximal_matching(b.build(), {}));
}

}  // namespace
}  // namespace hp::hyper
