// Structural theorems relating the hypergraph to its projections,
// verified on random inputs:
//
//   1. intersection_graph(H) == clique_expansion(dual(H)) -- the
//      complex intersection graph is exactly the clique expansion of
//      the dual hypergraph.
//   2. hypergraph distances == clique-expansion graph distances -- a
//      path through k hyperedges corresponds to a k-edge path in the
//      clique expansion and vice versa.
//   3. star expansion distances are >= clique expansion distances.
//   4. edge-count identities for each projection.
#include <gtest/gtest.h>

#include "core/dual.hpp"
#include "core/projection.hpp"
#include "core/traversal.hpp"
#include "graph/graph_algos.hpp"
#include "test_helpers.hpp"

namespace hp::hyper {
namespace {

class ProjectionProperties : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(ProjectionProperties, IntersectionGraphIsCliqueExpansionOfDual) {
  Rng rng{GetParam()};
  const Hypergraph h = testing::random_hypergraph(rng, 20, 18, 5);
  const graph::Graph inter = intersection_graph(h);
  const graph::Graph dual_clique = clique_expansion(dual(h));
  ASSERT_EQ(inter.num_vertices(), dual_clique.num_vertices());
  EXPECT_EQ(inter.num_edges(), dual_clique.num_edges());
  for (index_t u = 0; u < inter.num_vertices(); ++u) {
    for (index_t v = u + 1; v < inter.num_vertices(); ++v) {
      EXPECT_EQ(inter.has_edge(u, v), dual_clique.has_edge(u, v))
          << u << "," << v;
    }
  }
}

TEST_P(ProjectionProperties, HypergraphDistancesMatchCliqueExpansion) {
  Rng rng{GetParam() * 131};
  const Hypergraph h = testing::random_hypergraph(rng, 25, 20, 5);
  const graph::Graph clique = clique_expansion(h);
  for (index_t s = 0; s < 5; ++s) {
    const auto hyper_dist = bfs_distances(h, s);
    const auto graph_dist = graph::bfs_distances(clique, s);
    for (index_t v = 0; v < h.num_vertices(); ++v) {
      EXPECT_EQ(hyper_dist[v], graph_dist[v]) << "s=" << s << " v=" << v;
    }
  }
}

TEST_P(ProjectionProperties, StarExpansionNeverShortensPaths) {
  Rng rng{GetParam() * 733};
  const Hypergraph h = testing::random_hypergraph(rng, 20, 15, 5);
  const graph::Graph clique = clique_expansion(h);
  const graph::Graph star = star_expansion(h, default_baits(h));
  for (index_t s = 0; s < 4; ++s) {
    const auto via_clique = graph::bfs_distances(clique, s);
    const auto via_star = graph::bfs_distances(star, s);
    for (index_t v = 0; v < h.num_vertices(); ++v) {
      if (via_star[v] == kInvalidIndex) {
        // Star model may even disconnect pairs the complex connects.
        continue;
      }
      ASSERT_NE(via_clique[v], kInvalidIndex);
      EXPECT_LE(via_clique[v], via_star[v]);
    }
  }
}

TEST_P(ProjectionProperties, EdgeCountIdentities) {
  Rng rng{GetParam() * 977};
  const Hypergraph h = testing::random_hypergraph(rng, 30, 20, 6);
  // Clique expansion has at most sum C(|f|, 2) edges (dedup can only
  // lower it); star expansion at most sum (|f| - 1).
  count_t clique_bound = 0, star_bound = 0;
  for (index_t e = 0; e < h.num_edges(); ++e) {
    const count_t size = h.edge_size(e);
    clique_bound += size * (size - 1) / 2;
    star_bound += size - 1;
  }
  EXPECT_LE(clique_expansion(h).num_edges(), clique_bound);
  EXPECT_LE(star_expansion(h, default_baits(h)).num_edges(), star_bound);
  // Bipartite graph has exactly one edge per pin.
  EXPECT_EQ(bipartite_graph(h).num_edges(), h.num_pins());
}

TEST_P(ProjectionProperties, StarIsSubgraphOfClique) {
  Rng rng{GetParam() * 3571};
  const Hypergraph h = testing::random_hypergraph(rng, 18, 14, 5);
  const graph::Graph clique = clique_expansion(h);
  const graph::Graph star = star_expansion(h, default_baits(h));
  for (index_t u = 0; u < star.num_vertices(); ++u) {
    for (index_t v : star.neighbors(u)) {
      if (u < v) EXPECT_TRUE(clique.has_edge(u, v));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProjectionProperties,
                         ::testing::Range<std::uint64_t>(1, 9));

TEST(ProjectionProperties, DoubleDualIsIdentityWithoutIsolatedVertices) {
  // Build a hypergraph where every vertex has degree >= 1; then
  // dual(dual(h)) reproduces h exactly (edge i of the double dual is
  // the incidence list of dual-vertex i, which is original edge i).
  Rng rng{424242};
  HypergraphBuilder b{15};
  std::vector<index_t> all(15);
  for (index_t i = 0; i < 15; ++i) all[i] = i;
  b.add_edge(all);  // guarantees no isolated vertices
  for (int e = 0; e < 10; ++e) {
    std::vector<index_t> members;
    const index_t size = 2 + static_cast<index_t>(rng.uniform(4));
    for (index_t i = 0; i < size; ++i) {
      members.push_back(static_cast<index_t>(rng.uniform(15)));
    }
    b.add_edge(members);
  }
  const Hypergraph h = b.build();
  EXPECT_EQ(dual(dual(h)), h);
}

}  // namespace
}  // namespace hp::hyper
