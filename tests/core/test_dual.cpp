#include "core/dual.hpp"

#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace hp::hyper {
namespace {

TEST(Dual, SwapsRoles) {
  HypergraphBuilder b{3};
  b.add_edge({0, 1});  // e0
  b.add_edge({1, 2});  // e1
  const Hypergraph h = b.build();
  const Hypergraph d = dual(h);
  // Dual vertices = original edges (2); dual edges = original vertices
  // with positive degree (3).
  EXPECT_EQ(d.num_vertices(), 2u);
  EXPECT_EQ(d.num_edges(), 3u);
  EXPECT_EQ(d.num_pins(), h.num_pins());
}

TEST(Dual, DegreeSizeExchange) {
  const Hypergraph h = testing::toy_hypergraph();
  const Hypergraph d = dual(h);
  // Max dual edge size = max original vertex degree, and vice versa for
  // vertices that had positive degree.
  EXPECT_EQ(d.max_edge_size(), h.max_vertex_degree());
  EXPECT_EQ(d.max_vertex_degree(), h.max_edge_size());
}

TEST(Dual, DoubleDualRecoversPinCount) {
  Rng rng{55};
  const Hypergraph h = testing::random_hypergraph(rng, 20, 15, 5);
  const Hypergraph dd = dual(dual(h));
  EXPECT_EQ(dd.num_pins(), h.num_pins());
  EXPECT_EQ(dd.num_edges(), h.num_edges());
}

TEST(Dual, IsolatedVerticesVanish) {
  HypergraphBuilder b{5};
  b.add_edge({0, 1});
  const Hypergraph d = dual(b.build());
  EXPECT_EQ(d.num_edges(), 2u);  // only vertices 0 and 1 become edges
}

TEST(Dual, ValidatesStructurally) {
  Rng rng{66};
  const Hypergraph h = testing::random_hypergraph(rng, 30, 20, 6);
  EXPECT_NO_THROW(validate(dual(h)));
}

}  // namespace
}  // namespace hp::hyper
