#include "core/generalized_core.hpp"

#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace hp::hyper {
namespace {

TEST(MeasureValues, DegreeCountsConnectingEdges) {
  // e0 = {0,1}, e1 = {0,2}, e2 = {0}: the singleton never connects.
  HypergraphBuilder b{3};
  b.add_edge({0, 1});
  b.add_edge({0, 2});
  b.add_edge({0});
  const auto deg = measure_values(b.build(), CoreMeasure::kDegree);
  EXPECT_DOUBLE_EQ(deg[0], 2.0);
  EXPECT_DOUBLE_EQ(deg[1], 1.0);
  EXPECT_DOUBLE_EQ(deg[2], 1.0);
}

TEST(MeasureValues, PinWeightStartsAtDegree) {
  // On an intact hypergraph each edge contributes exactly 1.
  Rng rng{3};
  const Hypergraph h = testing::random_hypergraph(rng, 20, 15, 5);
  const auto pin = measure_values(h, CoreMeasure::kPinWeight);
  for (index_t v = 0; v < h.num_vertices(); ++v) {
    index_t nontrivial = 0;
    for (index_t e : h.edges_of(v)) {
      if (h.edge_size(e) >= 2) ++nontrivial;
    }
    EXPECT_DOUBLE_EQ(pin[v], static_cast<double>(nontrivial)) << v;
  }
}

TEST(MeasureValues, NeighborhoodIsVertexDegree2) {
  // Matches the d2(v) from the cover analysis on the intact hypergraph.
  const Hypergraph h = testing::toy_hypergraph();
  const auto nbr = measure_values(h, CoreMeasure::kNeighborhood);
  EXPECT_DOUBLE_EQ(nbr[0], 4.0);  // co-members of vertex 0: {1,2,3,6}
  EXPECT_DOUBLE_EQ(nbr[4], 3.0);  // {2,3,5}
  EXPECT_DOUBLE_EQ(nbr[6], 4.0);  // {0,1,2,3}
}

TEST(GeneralizedCore, CoreValuesAreMonotoneInPeelOrder) {
  Rng rng{7};
  for (const CoreMeasure m :
       {CoreMeasure::kDegree, CoreMeasure::kPinWeight,
        CoreMeasure::kNeighborhood}) {
    const Hypergraph h = testing::random_hypergraph(rng, 30, 30, 5);
    const GeneralizedCoreResult r = generalized_core(h, m);
    double max_seen = 0.0;
    for (double v : r.value) {
      EXPECT_GE(v, 0.0);
      max_seen = std::max(max_seen, v);
    }
    EXPECT_DOUBLE_EQ(max_seen, r.max_value);
  }
}

TEST(GeneralizedCore, CoreConditionHoldsWithinEachLevel) {
  // Property: every vertex in the t-core has measure >= t when the
  // measure is evaluated on the t-core itself (for the degree measure).
  Rng rng{11};
  const Hypergraph h = testing::random_hypergraph(rng, 25, 30, 4);
  const GeneralizedCoreResult r =
      generalized_core(h, CoreMeasure::kDegree);
  for (double t = 1.0; t <= r.max_value; t += 1.0) {
    const auto members = r.core_vertices(t);
    if (members.empty()) continue;
    std::vector<bool> in(h.num_vertices(), false);
    for (index_t v : members) in[v] = true;
    for (index_t v : members) {
      // Degree within the core: incident edges with >= 1 other core
      // member.
      index_t degree = 0;
      for (index_t e : h.edges_of(v)) {
        index_t live = 0;
        for (index_t w : h.vertices_of(e)) {
          if (in[w]) ++live;
        }
        if (live >= 2) ++degree;
      }
      EXPECT_GE(static_cast<double>(degree), t) << "vertex " << v;
    }
  }
}

TEST(GeneralizedCore, DegreeMeasureOnDisjointEdgesIsOne) {
  HypergraphBuilder b{6};
  b.add_edge({0, 1});
  b.add_edge({2, 3});
  b.add_edge({4, 5});
  const GeneralizedCoreResult r =
      generalized_core(b.build(), CoreMeasure::kDegree);
  EXPECT_DOUBLE_EQ(r.max_value, 1.0);
}

TEST(GeneralizedCore, PlantedDenseModuleGetsHighestValues) {
  // 5 vertices covered by all C(5,3) triples, plus pendant vertices.
  HypergraphBuilder b{10};
  for (index_t i = 0; i < 5; ++i) {
    for (index_t j = i + 1; j < 5; ++j) {
      for (index_t k = j + 1; k < 5; ++k) b.add_edge({i, j, k});
    }
  }
  for (index_t v = 5; v < 10; ++v) {
    b.add_edge({0, v});
  }
  const GeneralizedCoreResult r =
      generalized_core(b.build(), CoreMeasure::kDegree);
  for (index_t v = 0; v < 5; ++v) {
    for (index_t w = 5; w < 10; ++w) {
      EXPECT_GT(r.value[v], r.value[w]);
    }
  }
}

TEST(GeneralizedCore, EmptyHypergraph) {
  const GeneralizedCoreResult r =
      generalized_core(HypergraphBuilder{0}.build(), CoreMeasure::kDegree);
  EXPECT_DOUBLE_EQ(r.max_value, 0.0);
  EXPECT_TRUE(r.value.empty());
}

TEST(GeneralizedCore, DeterministicAcrossRuns) {
  Rng rng{13};
  const Hypergraph h = testing::random_hypergraph(rng, 20, 25, 5);
  const GeneralizedCoreResult a =
      generalized_core(h, CoreMeasure::kNeighborhood);
  const GeneralizedCoreResult b =
      generalized_core(h, CoreMeasure::kNeighborhood);
  EXPECT_EQ(a.value, b.value);
}

}  // namespace
}  // namespace hp::hyper
