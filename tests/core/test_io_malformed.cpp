// Malformed-input suite for the three hypergraph loaders (text, hMETIS,
// binary): truncation, out-of-range and integer-wrapping vertex ids,
// overflowing header counts, duplicate entries, trailing garbage. Every
// case must raise a structured hp::ParseError / hp::InvalidInputError --
// never crash, allocate unboundedly, or silently misparse. Run under
// HP_SANITIZE in CI.
#include <gtest/gtest.h>

#include <string>

#include "core/binary_io.hpp"
#include "core/hypergraph.hpp"
#include "core/hypergraph_io.hpp"

namespace hp::hyper {
namespace {

// --- hp-hyper text format ------------------------------------------------

TEST(TextMalformed, MissingHeader) {
  EXPECT_THROW(from_text("0 1 2\n"), ParseError);
  EXPECT_THROW(from_text(""), ParseError);
  EXPECT_THROW(from_text("# only a comment\n"), ParseError);
}

TEST(TextMalformed, BadHeaderShape) {
  EXPECT_THROW(from_text("%hypergraph 4\n"), ParseError);
  EXPECT_THROW(from_text("%hypergraph 4 2 9\n"), ParseError);
  EXPECT_THROW(from_text("%graph 4 2\n"), ParseError);
  EXPECT_THROW(from_text("%hypergraph four 2\n"), ParseError);
}

TEST(TextMalformed, NegativeHeaderCounts) {
  // Before the overflow guard these wrapped to ~4.29e9 and triggered a
  // multi-gigabyte CSR allocation at build().
  EXPECT_THROW(from_text("%hypergraph -1 0\n"), ParseError);
  EXPECT_THROW(from_text("%hypergraph 4 -2\n"), ParseError);
}

TEST(TextMalformed, OverflowingHeaderCounts) {
  EXPECT_THROW(from_text("%hypergraph 4294967296 0\n"), ParseError);
  EXPECT_THROW(from_text("%hypergraph 999999999999999 0\n"), ParseError);
  EXPECT_THROW(from_text("%hypergraph 3 4294967297\n"), ParseError);
}

TEST(TextMalformed, VertexIdOutOfRange) {
  EXPECT_THROW(from_text("%hypergraph 4 1\n0 4\n"), ParseError);
  EXPECT_THROW(from_text("%hypergraph 4 1\n-1 2\n"), ParseError);
}

TEST(TextMalformed, VertexIdWraparound) {
  // 2^32 wraps to 0 under a bare u32 cast; the parser must reject it by
  // comparing in 64 bits first.
  EXPECT_THROW(from_text("%hypergraph 4 1\n0 4294967296\n"), ParseError);
  EXPECT_THROW(from_text("%hypergraph 4 1\n0 4294967297\n"), ParseError);
}

TEST(TextMalformed, EdgeCountMismatch) {
  EXPECT_THROW(from_text("%hypergraph 4 2\n0 1\n"), ParseError);
  EXPECT_THROW(from_text("%hypergraph 4 1\n0 1\n2 3\n"), ParseError);
}

TEST(TextMalformed, EdgeBeforeHeader) {
  EXPECT_THROW(from_text("0 1\n%hypergraph 4 1\n"), ParseError);
}

TEST(TextMalformed, NonNumericMember) {
  EXPECT_THROW(from_text("%hypergraph 4 1\n0 x\n"), ParseError);
  EXPECT_THROW(from_text("%hypergraph 4 1\n0 1.5\n"), ParseError);
}

TEST(TextMalformed, DuplicateMembersAreMergedNotFatal) {
  // Duplicate entries within one edge are defined to merge (builder
  // semantics); the parser must not crash or double-count pins.
  const Hypergraph h = from_text("%hypergraph 4 1\n1 1 1 2\n");
  EXPECT_EQ(h.num_edges(), 1u);
  EXPECT_EQ(h.edge_size(0), 2u);
  validate(h);
}

// --- hMETIS format -------------------------------------------------------

TEST(HmetisMalformed, MissingOrBadHeader) {
  EXPECT_THROW(from_hmetis(""), ParseError);
  EXPECT_THROW(from_hmetis("% nothing but comments\n"), ParseError);
  EXPECT_THROW(from_hmetis("2\n1 2\n3 4\n"), ParseError);
}

TEST(HmetisMalformed, WeightedFormatRejected) {
  EXPECT_THROW(from_hmetis("2 4 1\n1 2\n3 4\n"), ParseError);
}

TEST(HmetisMalformed, NegativeAndOverflowingHeader) {
  EXPECT_THROW(from_hmetis("-2 4\n"), ParseError);
  EXPECT_THROW(from_hmetis("2 -4\n"), ParseError);
  EXPECT_THROW(from_hmetis("4294967296 4\n"), ParseError);
  EXPECT_THROW(from_hmetis("1 999999999999\n1\n"), ParseError);
}

TEST(HmetisMalformed, VertexIdOutOfRangeAndWraparound) {
  EXPECT_THROW(from_hmetis("1 4\n5\n"), ParseError);
  EXPECT_THROW(from_hmetis("1 4\n0\n"), ParseError);  // ids are 1-based
  EXPECT_THROW(from_hmetis("1 4\n4294967297\n"), ParseError);
}

TEST(HmetisMalformed, EdgeCountMismatch) {
  EXPECT_THROW(from_hmetis("2 4\n1 2\n"), ParseError);
  EXPECT_THROW(from_hmetis("1 4\n1 2\n3 4\n"), ParseError);
}

// --- binary format -------------------------------------------------------

std::string valid_binary() {
  HypergraphBuilder b{5};
  b.add_edge({0, 1, 2});
  b.add_edge({3, 4});
  return to_binary(b.build());
}

TEST(BinaryMalformed, TruncatedAtEveryPrefix) {
  const std::string bytes = valid_binary();
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_THROW(from_binary(bytes.substr(0, len)), ParseError)
        << "prefix length " << len;
  }
}

TEST(BinaryMalformed, BadMagicAndVersion) {
  std::string bytes = valid_binary();
  bytes[0] = 'X';
  EXPECT_THROW(from_binary(bytes), ParseError);
  bytes = valid_binary();
  bytes[4] = 9;  // version
  EXPECT_THROW(from_binary(bytes), ParseError);
}

TEST(BinaryMalformed, OverflowingCounts) {
  // Blow up each header count field; the size checks must reject the
  // file before allocating anything proportional to the bogus counts.
  for (std::size_t field_offset : {8u, 12u, 16u}) {
    std::string bytes = valid_binary();
    for (std::size_t i = 0; i < 4; ++i) {
      bytes[field_offset + i] = static_cast<char>(0xff);
    }
    EXPECT_THROW(from_binary(bytes), ParseError)
        << "field at offset " << field_offset;
  }
}

TEST(BinaryMalformed, VertexCountBombRejected) {
  // Found by hp_fuzz (seed 410): the vertex count never enters the
  // size-consistency equation, so a corrupted header word declaring
  // ~3e9 vertices passed every check and made the builder commit tens
  // of gigabytes of per-vertex offsets. Such counts must be rejected
  // before any allocation.
  std::string bytes = valid_binary();
  bytes[8] = 0x08;  // num_vertices (u32 LE at offset 8) := 0xb7000008
  bytes[9] = 0x00;
  bytes[10] = 0x00;
  bytes[11] = static_cast<char>(0xb7);
  EXPECT_THROW(from_binary(bytes), ParseError);
}

TEST(BinaryMalformed, MemberOutOfRange) {
  std::string bytes = valid_binary();
  // Last 4 bytes are the final member vertex id (u32 LE).
  bytes[bytes.size() - 1] = static_cast<char>(0xff);
  EXPECT_THROW(from_binary(bytes), ParseError);
}

TEST(BinaryMalformed, TrailingBytes) {
  std::string bytes = valid_binary();
  bytes += '\0';
  EXPECT_THROW(from_binary(bytes), ParseError);
}

TEST(BinaryMalformed, NonMonotoneOffsets) {
  // Swap the two interior edge offsets (offsets live right after the
  // 24-byte header): [0, 3, 5] becomes [3, 0, 5].
  std::string bytes = valid_binary();
  std::string first = bytes.substr(24, 8);
  std::string second = bytes.substr(32, 8);
  bytes.replace(24, 8, second);
  bytes.replace(32, 8, first);
  EXPECT_THROW(from_binary(bytes), ParseError);
}

TEST(Malformed, ValidInputsStillParse) {
  // Control for the whole suite.
  EXPECT_NO_THROW(from_text("%hypergraph 4 2\n0 1 2\n2 3\n"));
  EXPECT_NO_THROW(from_hmetis("2 4\n1 2 3\n3 4\n"));
  EXPECT_NO_THROW(from_binary(valid_binary()));
}

}  // namespace
}  // namespace hp::hyper
