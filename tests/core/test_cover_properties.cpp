// Property-based sweeps for the cover family: greedy, multicover, and
// primal-dual against the exact branch-and-bound oracle, with random
// weights and random per-edge requirements.
#include <gtest/gtest.h>

#include "core/cover.hpp"
#include "core/cover_pd.hpp"
#include "core/multicover.hpp"
#include "test_helpers.hpp"

namespace hp::hyper {
namespace {

std::vector<double> random_weights(Rng& rng, index_t n) {
  std::vector<double> w(n);
  for (double& x : w) x = rng.uniform_real(0.1, 10.0);
  return w;
}

/// Exact minimum-cardinality multicover by exhaustive subset search;
/// usable up to ~16 vertices.
std::size_t exact_multicover_size(const Hypergraph& h,
                                  const std::vector<index_t>& req) {
  const index_t n = h.num_vertices();
  std::size_t best = n + 1;
  for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
    const std::size_t size = static_cast<std::size_t>(__builtin_popcount(mask));
    if (size >= best) continue;
    std::vector<index_t> cover;
    for (index_t v = 0; v < n; ++v) {
      if (mask & (1u << v)) cover.push_back(v);
    }
    if (is_multicover(h, cover, req)) best = size;
  }
  return best;
}

class CoverProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CoverProperties, GreedyWithRandomWeightsIsValidAndBounded) {
  Rng rng{GetParam()};
  const Hypergraph h = testing::random_hypergraph(rng, 12, 10, 4);
  const std::vector<double> w = random_weights(rng, h.num_vertices());
  const CoverResult greedy = greedy_vertex_cover(h, w);
  EXPECT_TRUE(is_vertex_cover(h, greedy.vertices));
  const ExactCoverResult exact = exact_vertex_cover(h, w);
  const double hm = harmonic(h.num_edges());
  EXPECT_LE(greedy.total_weight, exact.total_weight * hm + 1e-9);
  EXPECT_GE(greedy.total_weight, exact.total_weight - 1e-9);
}

TEST_P(CoverProperties, PrimalDualSandwichesTheOptimum) {
  Rng rng{GetParam() * 31 + 7};
  const Hypergraph h = testing::random_hypergraph(rng, 12, 10, 4);
  const std::vector<double> w = random_weights(rng, h.num_vertices());
  const PrimalDualResult pd = primal_dual_cover(h, w);
  const ExactCoverResult exact = exact_vertex_cover(h, w);
  EXPECT_TRUE(is_vertex_cover(h, pd.vertices));
  EXPECT_LE(pd.dual_value, exact.total_weight + 1e-9);
  EXPECT_GE(pd.total_weight, exact.total_weight - 1e-9);
  EXPECT_LE(pd.total_weight,
            exact.total_weight * h.max_edge_size() + 1e-9);
}

TEST_P(CoverProperties, MulticoverWithRandomRequirements) {
  Rng rng{GetParam() * 101 + 13};
  const Hypergraph h = testing::random_hypergraph(rng, 14, 8, 4);
  std::vector<index_t> req(h.num_edges());
  for (index_t e = 0; e < h.num_edges(); ++e) {
    req[e] = 1 + static_cast<index_t>(rng.uniform(3));
  }
  const MulticoverResult greedy =
      greedy_multicover(h, unit_weights(h), req);
  EXPECT_TRUE(is_multicover(h, greedy.vertices, req));

  // Against the exhaustive optimum: greedy is within the H_m factor.
  const std::size_t optimum = exact_multicover_size(h, req);
  const double hm = harmonic(h.num_edges());
  EXPECT_LE(static_cast<double>(greedy.vertices.size()),
            static_cast<double>(optimum) * hm + 1e-9);
  EXPECT_GE(greedy.vertices.size(), optimum);
}

TEST_P(CoverProperties, CoverIsMinimalEnough) {
  // Sanity: no chosen vertex is entirely redundant at selection time --
  // equivalently the greedy cover never exceeds |F| vertices.
  Rng rng{GetParam() * 977};
  const Hypergraph h = testing::random_hypergraph(rng, 30, 20, 5);
  const CoverResult greedy = greedy_vertex_cover(h, unit_weights(h));
  EXPECT_LE(greedy.vertices.size(), h.num_edges());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoverProperties,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace hp::hyper
