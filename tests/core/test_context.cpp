// AnalysisContext: every memoized artifact must be structurally equal
// to the direct module computation, each slot must build exactly once,
// and concurrent first accesses must be safe.
#include "core/context/analysis_context.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "core/dual.hpp"
#include "core/kcore.hpp"
#include "core/overlap.hpp"
#include "core/projection.hpp"
#include "core/reduce.hpp"
#include "core/stats.hpp"
#include "core/traversal.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace hp::hyper {
namespace {

std::vector<std::vector<index_t>> edge_lists(const Hypergraph& h) {
  std::vector<std::vector<index_t>> out;
  for (index_t e = 0; e < h.num_edges(); ++e) {
    const auto members = h.vertices_of(e);
    out.emplace_back(members.begin(), members.end());
  }
  return out;
}

void expect_same_hypergraph(const Hypergraph& a, const Hypergraph& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  EXPECT_EQ(edge_lists(a), edge_lists(b));
}

void expect_same_graph(const graph::Graph& a, const graph::Graph& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (index_t v = 0; v < a.num_vertices(); ++v) {
    const auto na = a.neighbors(v);
    const auto nb = b.neighbors(v);
    ASSERT_TRUE(std::equal(na.begin(), na.end(), nb.begin(), nb.end()))
        << "neighbor lists differ at vertex " << v;
  }
}

std::vector<std::vector<std::pair<index_t, index_t>>> overlap_rows(
    const OverlapTable& t) {
  std::vector<std::vector<std::pair<index_t, index_t>>> rows;
  for (index_t f = 0; f < t.num_edges(); ++f) {
    std::vector<std::pair<index_t, index_t>> row;
    for (const auto [g, ov] : t.row(f)) row.emplace_back(g, ov);
    rows.push_back(std::move(row));
  }
  return rows;
}

TEST(ContextTest, ArtifactsMatchDirectComputationAcrossSeeds) {
  Rng seeder{20040426};
  for (int trial = 0; trial < 25; ++trial) {
    const index_t nv = 20 + static_cast<index_t>(seeder.uniform(40));
    const index_t ne = 10 + static_cast<index_t>(seeder.uniform(30));
    const index_t max_size = 2 + static_cast<index_t>(seeder.uniform(6));
    Rng rng{seeder()};
    const Hypergraph h = testing::random_hypergraph(rng, nv, ne, max_size);
    const AnalysisContext ctx{h};
    SCOPED_TRACE("trial " + std::to_string(trial));

    expect_same_hypergraph(ctx.hypergraph(), h);
    expect_same_hypergraph(ctx.dual(), dual(h));
    expect_same_graph(ctx.clique_projection(), clique_expansion(h));
    EXPECT_EQ(ctx.star_baits(), default_baits(h));
    expect_same_graph(ctx.star_projection(),
                      star_expansion(h, default_baits(h)));
    expect_same_graph(ctx.intersection_projection(),
                      intersection_graph(h, nullptr));

    const HyperComponents direct_components = connected_components(h);
    EXPECT_EQ(ctx.components().count, direct_components.count);
    EXPECT_EQ(ctx.components().vertex_label, direct_components.vertex_label);
    EXPECT_EQ(ctx.components().edge_label, direct_components.edge_label);

    EXPECT_EQ(ctx.vertex_degree_histogram().frequencies(),
              vertex_degree_histogram(h).frequencies());
    EXPECT_EQ(ctx.edge_size_histogram().frequencies(),
              edge_size_histogram(h).frequencies());

    const OverlapTable direct_overlaps{h};
    EXPECT_EQ(ctx.overlaps().max_degree2(), direct_overlaps.max_degree2());
    EXPECT_EQ(overlap_rows(ctx.overlaps()), overlap_rows(direct_overlaps));

    const SubHypergraph direct_reduced = reduce(h);
    expect_same_hypergraph(ctx.reduced().hypergraph,
                           direct_reduced.hypergraph);
    EXPECT_EQ(ctx.reduced().vertex_to_parent,
              direct_reduced.vertex_to_parent);
    EXPECT_EQ(ctx.reduced().edge_to_parent, direct_reduced.edge_to_parent);

    const HyperCoreResult direct_cores = core_decomposition(h, nullptr);
    EXPECT_EQ(ctx.cores().max_core, direct_cores.max_core);
    EXPECT_EQ(ctx.cores().vertex_core, direct_cores.vertex_core);
    EXPECT_EQ(ctx.cores().edge_core, direct_cores.edge_core);
    EXPECT_EQ(ctx.cores().level_vertices, direct_cores.level_vertices);
    EXPECT_EQ(ctx.cores().level_edges, direct_cores.level_edges);

    EXPECT_EQ(to_string(ctx.summary()), to_string(summarize(h)));

    const HyperPathSummary direct_paths = path_summary(h);
    EXPECT_EQ(ctx.paths().diameter, direct_paths.diameter);
    EXPECT_DOUBLE_EQ(ctx.paths().average_length,
                     direct_paths.average_length);
    EXPECT_EQ(ctx.paths().connected_pairs, direct_paths.connected_pairs);

    const RepresentationCosts direct_costs = representation_costs(h);
    const RepresentationCosts ctx_costs = ctx.representation_costs();
    EXPECT_EQ(ctx_costs.hypergraph_pins, direct_costs.hypergraph_pins);
    EXPECT_EQ(ctx_costs.hypergraph_bytes, direct_costs.hypergraph_bytes);
    EXPECT_EQ(ctx_costs.clique_edges, direct_costs.clique_edges);
    EXPECT_EQ(ctx_costs.clique_bytes, direct_costs.clique_bytes);
    EXPECT_EQ(ctx_costs.star_edges, direct_costs.star_edges);
    EXPECT_EQ(ctx_costs.star_bytes, direct_costs.star_bytes);
    EXPECT_EQ(ctx_costs.intersection_edges, direct_costs.intersection_edges);
    EXPECT_EQ(ctx_costs.intersection_bytes, direct_costs.intersection_bytes);
  }
}

TEST(ContextTest, EachArtifactBuildsExactlyOnce) {
  const AnalysisContext ctx{testing::toy_hypergraph()};

  // Touch everything twice; composite artifacts (summary, costs) also
  // touch their dependencies internally.
  for (int round = 0; round < 2; ++round) {
    ctx.dual();
    ctx.clique_projection();
    ctx.star_baits();
    ctx.star_projection();
    ctx.intersection_projection();
    ctx.components();
    ctx.vertex_degree_histogram();
    ctx.edge_size_histogram();
    ctx.overlaps();
    ctx.reduced();
    ctx.cores();
    ctx.summary();
    ctx.paths();
    ctx.representation_costs();
  }

  const ContextStats stats = ctx.stats();
  ASSERT_FALSE(stats.artifacts.empty());
  for (const ArtifactStats& a : stats.artifacts) {
    EXPECT_EQ(a.builds, 1u) << a.name;
    EXPECT_GE(a.hits, 1u) << a.name;
    EXPECT_GT(a.bytes, 0u) << a.name;
  }
  EXPECT_EQ(stats.total_builds(), stats.artifacts.size());
}

TEST(ContextTest, UntouchedSlotsReportZeroBuilds) {
  const AnalysisContext ctx{testing::toy_hypergraph()};
  ctx.components();
  const ContextStats stats = ctx.stats();
  for (const ArtifactStats& a : stats.artifacts) {
    if (a.name == "components") {
      EXPECT_EQ(a.builds, 1u);
    } else {
      EXPECT_EQ(a.builds, 0u) << a.name;
      EXPECT_EQ(a.hits, 0u) << a.name;
    }
  }
}

TEST(ContextTest, PeelStatsComeFromTheCachedDecomposition) {
  const Hypergraph h = testing::toy_hypergraph();
  const AnalysisContext ctx{h};
  PeelStats direct;
  core_decomposition(h, &direct);
  EXPECT_EQ(ctx.core_peel_stats().overlap_decrements,
            direct.overlap_decrements);
  EXPECT_EQ(ctx.core_peel_stats().peel_rounds, direct.peel_rounds);
  // Asking for the stats must not rebuild the decomposition.
  for (const ArtifactStats& a : ctx.stats().artifacts) {
    if (a.name == "core decomposition") EXPECT_EQ(a.builds, 1u);
  }
}

TEST(ContextTest, ConcurrentFirstAccessBuildsOnce) {
  Rng rng{7};
  const Hypergraph h = testing::random_hypergraph(rng, 60, 40, 5);
  const AnalysisContext ctx{h};

  std::vector<std::thread> workers;
  for (int t = 0; t < 8; ++t) {
    workers.emplace_back([&ctx] {
      for (int i = 0; i < 50; ++i) {
        ctx.summary();
        ctx.cores();
        ctx.overlaps();
        ctx.clique_projection();
        ctx.components();
      }
    });
  }
  for (std::thread& w : workers) w.join();

  for (const ArtifactStats& a : ctx.stats().artifacts) {
    if (a.builds > 0) EXPECT_EQ(a.builds, 1u) << a.name;
  }
  // 8 threads x 50 rounds x 5 artifacts minus the 5 builds.
  EXPECT_EQ(ctx.stats().total_hits() + ctx.stats().total_builds(),
            8u * 50u * 5u + /* summary's internal deps */ 2u * 1u);
}

}  // namespace
}  // namespace hp::hyper
