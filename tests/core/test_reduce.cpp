#include "core/reduce.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "test_helpers.hpp"

namespace hp::hyper {
namespace {

TEST(Reduce, DetectsStrictContainment) {
  const Hypergraph h = testing::toy_hypergraph();
  const ReduceResult r = find_non_maximal(h);
  // e0 = {0,1,2,3} is inside e4 = {0,1,2,3,6}; e3 = {5} is inside
  // e2 = {4,5}.
  EXPECT_FALSE(r.keep[0]);
  EXPECT_TRUE(r.keep[1]);
  EXPECT_TRUE(r.keep[2]);
  EXPECT_FALSE(r.keep[3]);
  EXPECT_TRUE(r.keep[4]);
  EXPECT_EQ(r.num_removed, 2u);
}

TEST(Reduce, KeepsLowestIdDuplicate) {
  HypergraphBuilder b{4};
  b.add_edge({0, 1});
  b.add_edge({1, 0});
  b.add_edge({0, 1});
  b.add_edge({2, 3});
  const ReduceResult r = find_non_maximal(b.build());
  EXPECT_TRUE(r.keep[0]);
  EXPECT_FALSE(r.keep[1]);
  EXPECT_FALSE(r.keep[2]);
  EXPECT_TRUE(r.keep[3]);
}

TEST(Reduce, ChainOfContainments) {
  HypergraphBuilder b{5};
  b.add_edge({0});
  b.add_edge({0, 1});
  b.add_edge({0, 1, 2});
  b.add_edge({0, 1, 2, 3, 4});
  const ReduceResult r = find_non_maximal(b.build());
  EXPECT_FALSE(r.keep[0]);
  EXPECT_FALSE(r.keep[1]);
  EXPECT_FALSE(r.keep[2]);
  EXPECT_TRUE(r.keep[3]);
}

TEST(Reduce, DisjointEdgesAllKept) {
  HypergraphBuilder b{6};
  b.add_edge({0, 1});
  b.add_edge({2, 3});
  b.add_edge({4, 5});
  EXPECT_EQ(find_non_maximal(b.build()).num_removed, 0u);
}

TEST(Reduce, OverlapWithoutContainmentKept) {
  HypergraphBuilder b{4};
  b.add_edge({0, 1, 2});
  b.add_edge({1, 2, 3});
  EXPECT_EQ(find_non_maximal(b.build()).num_removed, 0u);
}

TEST(Reduce, BuildsReducedHypergraph) {
  const SubHypergraph sub = reduce(testing::toy_hypergraph());
  EXPECT_EQ(sub.hypergraph.num_edges(), 3u);
  EXPECT_TRUE(is_reduced(sub.hypergraph));
  // Vertices are all retained.
  EXPECT_EQ(sub.hypergraph.num_vertices(), 7u);
  // edge_to_parent skips the removed ids 0 and 3.
  EXPECT_EQ(sub.edge_to_parent, (std::vector<index_t>{1, 2, 4}));
}

TEST(Reduce, IsIdempotent) {
  Rng rng{123};
  for (int trial = 0; trial < 8; ++trial) {
    const Hypergraph h = testing::random_hypergraph(rng, 20, 25, 5);
    const SubHypergraph once = reduce(h);
    EXPECT_TRUE(is_reduced(once.hypergraph)) << "trial " << trial;
    const SubHypergraph twice = reduce(once.hypergraph);
    EXPECT_EQ(twice.hypergraph.num_edges(), once.hypergraph.num_edges());
  }
}

TEST(Reduce, ReducedNeverGainsEdges) {
  Rng rng{321};
  for (int trial = 0; trial < 8; ++trial) {
    const Hypergraph h = testing::random_hypergraph(rng, 15, 30, 4);
    const SubHypergraph sub = reduce(h);
    EXPECT_LE(sub.hypergraph.num_edges(), h.num_edges());
    // Every surviving edge is one of the originals, verbatim.
    for (index_t e = 0; e < sub.hypergraph.num_edges(); ++e) {
      const auto new_members = sub.hypergraph.vertices_of(e);
      const auto old_members = h.vertices_of(sub.edge_to_parent[e]);
      ASSERT_EQ(new_members.size(), old_members.size());
      EXPECT_TRUE(std::equal(new_members.begin(), new_members.end(),
                             old_members.begin()));
    }
  }
}

TEST(IsReduced, EmptyAndSingle) {
  EXPECT_TRUE(is_reduced(HypergraphBuilder{0}.build()));
  HypergraphBuilder b{2};
  b.add_edge({0, 1});
  EXPECT_TRUE(is_reduced(b.build()));
}

}  // namespace
}  // namespace hp::hyper
