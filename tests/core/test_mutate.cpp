// MutableHypergraph / MutableAnalysisContext: stable-id edit semantics
// and the incremental-vs-rebuild equivalence contract. The fuzzing
// oracle (check/mutation.hpp) sweeps random traces; these tests pin the
// named edge cases and the artifact-cache bookkeeping.
#include "core/mutate/mutable_context.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "check/mutation.hpp"
#include "core/context/analysis_context.hpp"
#include "core/kcore.hpp"
#include "core/stats.hpp"
#include "core/traversal.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace hp::hyper {
namespace {

std::vector<std::vector<index_t>> edge_lists(const Hypergraph& h) {
  std::vector<std::vector<index_t>> out;
  for (index_t e = 0; e < h.num_edges(); ++e) {
    const auto members = h.vertices_of(e);
    out.emplace_back(members.begin(), members.end());
  }
  return out;
}

/// Compare every cheap-tier artifact against a from-scratch computation
/// on the materialized snapshot (the equivalence the design promises).
void expect_matches_rebuild(MutableAnalysisContext& ctx) {
  const Hypergraph& snap = ctx.snapshot().hypergraph;
  const std::vector<index_t>& edge_to_stable = ctx.snapshot().edge_to_stable;

  // Degrees: stable vertex ids are preserved verbatim in the snapshot.
  const std::vector<index_t>& degrees = ctx.vertex_degrees();
  ASSERT_EQ(degrees.size(), snap.num_vertices());
  for (index_t v = 0; v < snap.num_vertices(); ++v) {
    EXPECT_EQ(degrees[v], snap.vertex_degree(v)) << "vertex " << v;
  }

  EXPECT_EQ(ctx.vertex_degree_histogram().frequencies(),
            vertex_degree_histogram(snap).frequencies());
  EXPECT_EQ(ctx.vertex_degree_histogram().total(),
            vertex_degree_histogram(snap).total());
  EXPECT_EQ(ctx.edge_size_histogram().frequencies(),
            edge_size_histogram(snap).frequencies());

  const HyperComponents expected_comp = connected_components(snap);
  const HyperComponents& comp = ctx.components();
  EXPECT_EQ(comp.vertex_label, expected_comp.vertex_label);
  EXPECT_EQ(comp.edge_label, expected_comp.edge_label);
  EXPECT_EQ(comp.vertex_counts, expected_comp.vertex_counts);
  EXPECT_EQ(comp.edge_counts, expected_comp.edge_counts);
  EXPECT_EQ(comp.count, expected_comp.count);

  const HyperCoreResult expected_cores = core_decomposition(snap);
  const HyperCoreResult& cores = ctx.cores();
  EXPECT_EQ(cores.vertex_core, expected_cores.vertex_core);
  EXPECT_EQ(cores.max_core, expected_cores.max_core);
  EXPECT_EQ(cores.level_vertices, expected_cores.level_vertices);
  EXPECT_EQ(cores.level_edges, expected_cores.level_edges);
  // Edge artifacts live in stable slot space; map through the snapshot.
  for (index_t compact = 0; compact < snap.num_edges(); ++compact) {
    const index_t stable = edge_to_stable[compact];
    EXPECT_EQ(cores.edge_core[stable], expected_cores.edge_core[compact])
        << "edge slot " << stable;
    EXPECT_EQ(cores.in_reduced[stable] != 0,
              expected_cores.in_reduced[compact] != 0)
        << "edge slot " << stable;
  }
}

TEST(MutateHypergraphTest, RemoveLastEdgeOfVertexLeavesVertexAlive) {
  HypergraphBuilder b{3};
  b.add_edge({0, 1});
  b.add_edge({1, 2});
  MutableHypergraph g{b.build()};

  ASSERT_TRUE(g.remove_hyperedge(0));
  EXPECT_TRUE(g.vertex_alive(0));
  EXPECT_EQ(g.vertex_degree(0), 0u);
  EXPECT_EQ(g.live_edges(), 1u);

  // The degree-0 vertex must still occupy its snapshot slot.
  const Hypergraph& snap = g.snapshot().hypergraph;
  EXPECT_EQ(snap.num_vertices(), 3u);
  EXPECT_EQ(snap.vertex_degree(0), 0u);
  EXPECT_EQ(edge_lists(snap), (std::vector<std::vector<index_t>>{{1, 2}}));

  // Removing the already-dead slot is a no-op, not an error.
  EXPECT_FALSE(g.remove_hyperedge(0));
}

TEST(MutateHypergraphTest, RemoveVertexKillsEdgesThatBecomeEmpty) {
  HypergraphBuilder b{3};
  b.add_edge({0});
  b.add_edge({0, 1});
  MutableHypergraph g{b.build()};

  ASSERT_TRUE(g.remove_vertex(0));
  EXPECT_FALSE(g.vertex_alive(0));
  EXPECT_FALSE(g.edge_alive(0));  // {0} became empty and died
  EXPECT_TRUE(g.edge_alive(1));   // {0,1} shrank to {1}
  EXPECT_EQ(edge_lists(g.snapshot().hypergraph),
            (std::vector<std::vector<index_t>>{{1}}));
  EXPECT_FALSE(g.remove_vertex(0));  // tombstones are idempotent
}

TEST(MutateHypergraphTest, DuplicateEdgeInsertIsAllowedAndDistinct) {
  HypergraphBuilder b{3};
  b.add_edge({0, 1, 2});
  MutableHypergraph g{b.build()};

  const index_t dup = g.add_hyperedge({2, 1, 0, 1});  // dedup + sort
  EXPECT_EQ(dup, 1u);
  EXPECT_EQ(g.live_edges(), 2u);
  EXPECT_EQ(edge_lists(g.snapshot().hypergraph),
            (std::vector<std::vector<index_t>>{{0, 1, 2}, {0, 1, 2}}));
  // The copies are independent: removing one leaves the other.
  ASSERT_TRUE(g.remove_hyperedge(0));
  EXPECT_EQ(edge_lists(g.snapshot().hypergraph),
            (std::vector<std::vector<index_t>>{{0, 1, 2}}));
  EXPECT_EQ(g.snapshot().edge_to_stable, std::vector<index_t>{1});
}

TEST(MutateHypergraphTest, RejectsEmptyAndDeadMemberInserts) {
  MutableHypergraph g{testing::toy_hypergraph()};
  EXPECT_THROW(g.add_hyperedge(std::initializer_list<index_t>{}),
               InvalidInputError);
  EXPECT_THROW(g.add_hyperedge({0, 99}), InvalidInputError);
  ASSERT_TRUE(g.remove_vertex(6));
  EXPECT_THROW(g.add_hyperedge({6}), InvalidInputError);
}

TEST(MutateContextTest, EmptyHypergraphMutations) {
  MutableAnalysisContext ctx{Hypergraph{}};
  expect_matches_rebuild(ctx);

  // Grow from nothing: vertices first, then edges over them.
  const index_t v0 = ctx.graph().add_vertex();
  const index_t v1 = ctx.graph().add_vertex();
  const index_t v2 = ctx.graph().add_vertex();
  expect_matches_rebuild(ctx);
  ctx.graph().add_hyperedge({v0, v1});
  ctx.graph().add_hyperedge({v1, v2});
  expect_matches_rebuild(ctx);
  EXPECT_EQ(ctx.components().count, 1u);

  // And shrink back to empty.
  ctx.graph().remove_vertex(v0);
  ctx.graph().remove_vertex(v1);
  ctx.graph().remove_vertex(v2);
  expect_matches_rebuild(ctx);
  EXPECT_EQ(ctx.graph().live_edges(), 0u);
  EXPECT_EQ(ctx.edge_size_histogram().total(), 0u);
}

TEST(MutateContextTest, IncrementalMatchesRebuildAcrossSeeds) {
  Rng seeder{20040426};
  for (int trial = 0; trial < 50; ++trial) {
    SCOPED_TRACE("trial " + std::to_string(trial));
    const index_t nv = 8 + static_cast<index_t>(seeder.uniform(40));
    const index_t ne = 4 + static_cast<index_t>(seeder.uniform(30));
    const index_t max_size = 2 + static_cast<index_t>(seeder.uniform(6));
    Rng rng{seeder()};
    const Hypergraph base = testing::random_hypergraph(rng, nv, ne, max_size);

    check::MutationTraceOptions options;
    options.num_ops = 24;
    const std::vector<check::MutationOp> trace =
        check::generate_trace(base, seeder(), options);

    MutableAnalysisContext ctx{base};
    expect_matches_rebuild(ctx);  // warm every artifact on the base
    for (const check::MutationOp& op : trace) {
      using Kind = check::MutationOp::Kind;
      try {
        switch (op.kind) {
          case Kind::kAddVertex:
            ctx.graph().add_vertex();
            break;
          case Kind::kRemoveVertex:
            ctx.graph().remove_vertex(op.target);
            break;
          case Kind::kAddEdge:
            ctx.graph().add_hyperedge(op.members);
            break;
          case Kind::kRemoveEdge:
            ctx.graph().remove_hyperedge(op.target);
            break;
        }
      } catch (const InvalidInputError&) {
        // Traces generated against the evolving structure can still
        // contain deliberately invalid ops; skipping matches the oracle.
      }
    }
    expect_matches_rebuild(ctx);
    EXPECT_GT(ctx.apply_stats().mutations, 0u);
  }
}

TEST(MutateContextTest, ApplyStatsCountRepairsAndInvalidations) {
  MutableAnalysisContext ctx{testing::toy_hypergraph()};
  ctx.cores();
  ctx.components();
  AnalysisContext& inner = ctx.analysis();
  inner.cores();  // build a rebuild-tier slot so rebase has work

  ctx.graph().add_hyperedge({0, 4});
  ctx.cores();
  const auto& stats = ctx.apply_stats();
  EXPECT_EQ(stats.applies, 1u);
  EXPECT_EQ(stats.mutations, 1u);
  EXPECT_EQ(stats.core_repairs + stats.core_repair_fallbacks, 1u);

  // The rebuild tier resets only built slots, and only on next access.
  ctx.analysis();
  EXPECT_GE(stats.slot_invalidations, 1u);
}

TEST(MutateContextTest, ContextBytesShrinkWhenSlotsReset) {
  AnalysisContext ctx{testing::toy_hypergraph()};
  ctx.cores();
  ctx.dual();
  const ContextStats before = ctx.stats();
  EXPECT_GT(before.total_bytes(), 0u);

  // Rebase to the same structure: every built slot resets, and the
  // byte accounting must reflect the teardown immediately.
  const index_t reset = ctx.rebase(testing::toy_hypergraph());
  EXPECT_EQ(reset, 2u);
  const ContextStats after = ctx.stats();
  EXPECT_LT(after.total_bytes(), before.total_bytes());
  EXPECT_EQ(after.total_invalidations(), 2u);

  // Artifacts come back on demand and byte accounting grows again.
  ctx.cores();
  EXPECT_GT(ctx.stats().total_bytes(), after.total_bytes());
}

TEST(MutateContextTest, TraceShrinkerFindsMinimalFailingSubsequence) {
  // Synthetic predicate: "fails" iff the trace still contains both the
  // add of edge slot 9 and the removal of vertex 3. ddmin must reduce
  // the 12-op trace to exactly those two ops, preserving order.
  std::vector<check::MutationOp> trace;
  for (int i = 0; i < 12; ++i) {
    check::MutationOp op;
    if (i == 4) {
      op.kind = check::MutationOp::Kind::kAddEdge;
      op.members = {9};
    } else if (i == 8) {
      op.kind = check::MutationOp::Kind::kRemoveVertex;
      op.target = 3;
    } else {
      op.kind = check::MutationOp::Kind::kAddVertex;
    }
    trace.push_back(op);
  }
  const auto still_fails = [](const std::vector<check::MutationOp>& t) {
    bool has_add = false;
    bool has_remove = false;
    for (const auto& op : t) {
      has_add |= op.kind == check::MutationOp::Kind::kAddEdge;
      has_remove |= op.kind == check::MutationOp::Kind::kRemoveVertex;
    }
    return has_add && has_remove;
  };
  const std::vector<check::MutationOp> minimal =
      check::shrink_trace(trace, still_fails);
  ASSERT_EQ(minimal.size(), 2u);
  EXPECT_EQ(minimal[0].kind, check::MutationOp::Kind::kAddEdge);
  EXPECT_EQ(minimal[1].kind, check::MutationOp::Kind::kRemoveVertex);
  EXPECT_EQ(check::to_string(minimal[0]), "add-edge 9");
  EXPECT_EQ(check::to_string(minimal[1]), "remove-vertex 3");
}

TEST(MutateContextTest, MutationOracleCleanOnToyAndRandomInstances) {
  std::vector<check::CheckFailure> failures;
  check::check_mutations(testing::toy_hypergraph(), 32, failures);
  Rng rng{7};
  const Hypergraph random = testing::random_hypergraph(rng, 30, 20, 5);
  check::check_mutations(random, 32, failures);
  for (const auto& f : failures) {
    ADD_FAILURE() << f.oracle << ": " << f.detail;
  }
}

}  // namespace
}  // namespace hp::hyper
