#include "core/stats.hpp"

#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace hp::hyper {
namespace {

TEST(Summarize, ToyValues) {
  const HypergraphSummary s = summarize(testing::toy_hypergraph());
  EXPECT_EQ(s.num_vertices, 7u);
  EXPECT_EQ(s.num_edges, 5u);
  EXPECT_EQ(s.num_pins, 15u);
  EXPECT_EQ(s.max_vertex_degree, 3u);
  EXPECT_EQ(s.max_edge_size, 5u);
  EXPECT_EQ(s.num_components, 1u);
  EXPECT_EQ(s.largest_component_vertices, 7u);
  EXPECT_EQ(s.largest_component_edges, 5u);
  EXPECT_EQ(s.isolated_vertices, 0u);
  EXPECT_DOUBLE_EQ(s.mean_edge_size, 3.0);
}

TEST(Summarize, DegreeOneAndIsolatedCounts) {
  HypergraphBuilder b{5};
  b.add_edge({0, 1});
  b.add_edge({1, 2});
  // 3, 4 isolated; 0 and 2 have degree 1.
  const HypergraphSummary s = summarize(b.build());
  EXPECT_EQ(s.degree_one_vertices, 2u);
  EXPECT_EQ(s.isolated_vertices, 2u);
  EXPECT_EQ(s.num_components, 3u);
}

TEST(Summarize, EmptyHypergraph) {
  const HypergraphSummary s = summarize(HypergraphBuilder{0}.build());
  EXPECT_EQ(s.num_vertices, 0u);
  EXPECT_EQ(s.num_components, 0u);
  EXPECT_DOUBLE_EQ(s.mean_vertex_degree, 0.0);
}

TEST(DegreeHistograms, MatchDirectCounts) {
  const Hypergraph h = testing::toy_hypergraph();
  const Histogram vd = vertex_degree_histogram(h);
  EXPECT_EQ(vd.total(), h.num_vertices());
  index_t deg1 = 0;
  for (index_t v = 0; v < h.num_vertices(); ++v) {
    if (h.vertex_degree(v) == 1) ++deg1;
  }
  EXPECT_EQ(vd.count(1), deg1);

  const Histogram es = edge_size_histogram(h);
  EXPECT_EQ(es.total(), h.num_edges());
  EXPECT_EQ(es.count(5), 1u);  // e4
  EXPECT_EQ(es.count(1), 1u);  // e3
}

TEST(VertexDegreePowerLaw, RecoversPlantedExponent) {
  // Build a hypergraph whose degree frequencies follow d^-2.5 exactly,
  // using singleton-ish edges to realize the degrees.
  HypergraphBuilder b{400};
  index_t next_vertex = 0;
  index_t edge_budget = 0;
  std::vector<std::vector<index_t>> edges;
  // counts per degree d: round(300 * d^-2.5), d = 1..8
  const index_t counts[] = {300, 53, 19, 9, 5, 3, 2, 1};
  for (index_t d = 1; d <= 8; ++d) {
    edge_budget = std::max<index_t>(edge_budget, d);
    for (index_t i = 0; i < counts[d - 1]; ++i) {
      (void)next_vertex;
      ++next_vertex;
    }
  }
  // Realize with `edge_budget` big edges; vertex v of target degree d is
  // placed into the first d of them.
  edges.resize(edge_budget);
  index_t v = 0;
  for (index_t d = 1; d <= 8; ++d) {
    for (index_t i = 0; i < counts[d - 1]; ++i, ++v) {
      for (index_t e = 0; e < d; ++e) edges[e].push_back(v);
    }
  }
  HypergraphBuilder builder{v};
  for (const auto& members : edges) builder.add_edge(members);
  const PowerLawFit fit = vertex_degree_power_law(builder.build());
  EXPECT_NEAR(fit.gamma, 2.5, 0.2);
  EXPECT_GT(fit.r_squared, 0.95);
}

TEST(EdgeSizeFits, ReturnsBothModels) {
  Rng rng{88};
  const Hypergraph h = testing::random_hypergraph(rng, 60, 50, 8);
  const EdgeSizeFits fits = edge_size_fits(h);
  EXPECT_GT(fits.power.n, 0u);
  EXPECT_GT(fits.exponential.n, 0u);
}

TEST(ToString, MentionsKeyFields) {
  const std::string s = to_string(summarize(testing::toy_hypergraph()));
  EXPECT_NE(s.find("|V|"), std::string::npos);
  EXPECT_NE(s.find("Delta_2,F"), std::string::npos);
  EXPECT_NE(s.find("7"), std::string::npos);
}

}  // namespace
}  // namespace hp::hyper
