#include "core/soverlap.hpp"

#include <gtest/gtest.h>

#include "core/projection.hpp"
#include "test_helpers.hpp"

namespace hp::hyper {
namespace {

/// e0 = {0,1,2,3}, e1 = {2,3,4}, e2 = {4,5}, e3 = {5}, e4 = {0,1,2,3,6}
/// Overlaps: (e0,e1)=2, (e0,e4)=4, (e1,e2)=1, (e1,e4)=2, (e2,e3)=1.
Hypergraph toy() { return testing::toy_hypergraph(); }

TEST(SIntersection, SOneMatchesPaperIntersectionGraph) {
  const graph::Graph s1 = s_intersection_graph(toy(), 1);
  const graph::Graph paper = intersection_graph(toy());
  ASSERT_EQ(s1.num_vertices(), paper.num_vertices());
  EXPECT_EQ(s1.num_edges(), paper.num_edges());
  for (index_t u = 0; u < s1.num_vertices(); ++u) {
    for (index_t v = u + 1; v < s1.num_vertices(); ++v) {
      EXPECT_EQ(s1.has_edge(u, v), paper.has_edge(u, v))
          << u << "," << v;
    }
  }
}

TEST(SIntersection, HigherSPrunesWeakTies) {
  const graph::Graph s2 = s_intersection_graph(toy(), 2);
  EXPECT_TRUE(s2.has_edge(0, 1));   // share {2,3}
  EXPECT_TRUE(s2.has_edge(0, 4));   // share 4 proteins
  EXPECT_TRUE(s2.has_edge(1, 4));
  EXPECT_FALSE(s2.has_edge(1, 2));  // share only vertex 4
  EXPECT_FALSE(s2.has_edge(2, 3));

  const graph::Graph s4 = s_intersection_graph(toy(), 4);
  EXPECT_EQ(s4.num_edges(), 1u);  // only (e0, e4)
}

TEST(SIntersection, EdgeCountMonotoneInS) {
  Rng rng{9};
  const Hypergraph h = testing::random_hypergraph(rng, 25, 30, 6);
  count_t prev = ~count_t{0};
  for (index_t s = 1; s <= 5; ++s) {
    const count_t m = s_intersection_graph(h, s).num_edges();
    EXPECT_LE(m, prev);
    prev = m;
  }
}

TEST(SIntersection, RejectsZeroS) {
  EXPECT_THROW(s_intersection_graph(toy(), 0), InvalidInputError);
}

TEST(SComponents, ToyStructure) {
  // s = 1: {e0,e1,e2,e3,e4} all linked -> 1 component.
  EXPECT_EQ(s_components(toy(), 1).count, 1u);
  // s = 2: {e0,e1,e4} together; e2 and e3 isolated -> 3 components.
  const SComponents c2 = s_components(toy(), 2);
  EXPECT_EQ(c2.count, 3u);
  EXPECT_EQ(c2.sizes[c2.largest()], 3u);
  EXPECT_EQ(c2.label[0], c2.label[1]);
  EXPECT_EQ(c2.label[0], c2.label[4]);
  EXPECT_NE(c2.label[0], c2.label[2]);
}

TEST(SDistances, WalksRespectThreshold) {
  // At s = 1: e3 - e2 - e1 - e0 is a walk; d(e3, e0) = 3.
  const auto d1 = s_distances(toy(), 3, 1);
  EXPECT_EQ(d1[2], 1u);
  EXPECT_EQ(d1[1], 2u);
  EXPECT_EQ(d1[0], 3u);
  // At s = 2 e3 is isolated.
  const auto d2 = s_distances(toy(), 3, 2);
  EXPECT_EQ(d2[0], kInvalidIndex);
  EXPECT_EQ(d2[3], 0u);
}

TEST(SPathSummary, ShrinksWithS) {
  Rng rng{21};
  const Hypergraph h = testing::random_hypergraph(rng, 40, 40, 6);
  const SPathSummary p1 = s_path_summary(h, 1);
  const SPathSummary p2 = s_path_summary(h, 2);
  EXPECT_LE(p2.connected_pairs, p1.connected_pairs);
}

TEST(MaxMeaningfulS, ToyAndEdgeCases) {
  EXPECT_EQ(max_meaningful_s(toy()), 4u);  // |e0 ∩ e4| = 4
  HypergraphBuilder disjoint{4};
  disjoint.add_edge({0, 1});
  disjoint.add_edge({2, 3});
  EXPECT_EQ(max_meaningful_s(disjoint.build()), 0u);
  EXPECT_EQ(max_meaningful_s(HypergraphBuilder{0}.build()), 0u);
}

TEST(SIntersection, AboveMaxMeaningfulSIsEmpty) {
  Rng rng{31};
  const Hypergraph h = testing::random_hypergraph(rng, 20, 20, 5);
  const index_t s_max = max_meaningful_s(h);
  if (s_max > 0) {
    EXPECT_GT(s_intersection_graph(h, s_max).num_edges(), 0u);
  }
  EXPECT_EQ(s_intersection_graph(h, s_max + 1).num_edges(), 0u);
}

}  // namespace
}  // namespace hp::hyper
