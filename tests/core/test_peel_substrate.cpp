// Property tests for the unified peeling substrate: on ~50 synthetic
// Cellzome-style instances, the sequential overlap peel, the naive
// set-comparison oracle, the bulk-synchronous parallel peel and the
// standalone reduction must agree, and the PeelStats invariants
// documented in peel_stats.hpp must hold.
#include <gtest/gtest.h>

#include "bio/cellzome_synth.hpp"
#include "core/kcore.hpp"
#include "core/kcore_naive.hpp"
#include "core/kcore_parallel.hpp"
#include "core/peel/peel.hpp"
#include "core/reduce.hpp"
#include "test_helpers.hpp"

namespace hp::hyper {
namespace {

/// Cellzome-style instance: a few promiscuous hub vertices (the ADH1
/// analogue), many low-degree members, nested and duplicated complexes
/// (TAP pulldowns of sub-complexes), sizes varying per seed.
Hypergraph cellzome_style_instance(std::uint64_t seed) {
  Rng rng{seed};
  const index_t num_vertices = 20 + static_cast<index_t>(rng.uniform(40));
  const index_t num_edges = 15 + static_cast<index_t>(rng.uniform(50));
  const index_t num_hubs = 1 + static_cast<index_t>(rng.uniform(4));
  HypergraphBuilder builder{num_vertices};
  std::vector<index_t> members;
  std::vector<std::vector<index_t>> committed;
  for (index_t e = 0; e < num_edges; ++e) {
    const double roll = rng.uniform01();
    if (roll < 0.15 && !committed.empty()) {
      // Duplicate an earlier complex verbatim.
      builder.add_edge(committed[rng.uniform(committed.size())]);
      continue;
    }
    if (roll < 0.3 && !committed.empty()) {
      // Pull down a sub-complex: a prefix of an earlier complex.
      const auto& parent = committed[rng.uniform(committed.size())];
      const std::size_t take = 1 + rng.uniform(parent.size());
      members.assign(parent.begin(), parent.begin() + take);
      builder.add_edge(members);
      continue;
    }
    const index_t size = 1 + static_cast<index_t>(rng.uniform(7));
    members.clear();
    // Hubs join complexes with high probability; the rest uniformly.
    for (index_t i = 0; i < size; ++i) {
      if (rng.uniform01() < 0.3) {
        members.push_back(static_cast<index_t>(rng.uniform(num_hubs)));
      } else {
        members.push_back(static_cast<index_t>(rng.uniform(num_vertices)));
      }
    }
    builder.add_edge(members);
    committed.emplace_back(members);
  }
  return builder.build();
}

void expect_equivalent(const HyperCoreResult& a, const HyperCoreResult& b,
                       const char* label, std::uint64_t seed) {
  EXPECT_EQ(a.max_core, b.max_core) << label << " seed " << seed;
  EXPECT_EQ(a.vertex_core, b.vertex_core) << label << " seed " << seed;
  EXPECT_EQ(a.level_vertices, b.level_vertices) << label << " seed " << seed;
  EXPECT_EQ(a.level_edges, b.level_edges) << label << " seed " << seed;
}

void expect_stats_invariants(const PeelStats& stats, const Hypergraph& h,
                             const char* label, std::uint64_t seed) {
  // Overlaps are symmetric: decrements come in (f,g)/(g,f) pairs.
  EXPECT_EQ(stats.overlap_decrements % 2, 0u) << label << " seed " << seed;
  // A mid-peel edge deletion is always preceded by a containment probe.
  EXPECT_GE(stats.containment_probes, stats.cascaded_edge_deletions)
      << label << " seed " << seed;
  // A full decomposition consumes the whole hypergraph, exactly once.
  EXPECT_EQ(stats.vertex_deletions, h.num_vertices())
      << label << " seed " << seed;
  EXPECT_EQ(stats.edge_deletions, h.num_edges()) << label << " seed " << seed;
  EXPECT_LE(stats.cascaded_edge_deletions, stats.edge_deletions)
      << label << " seed " << seed;
  EXPECT_LE(stats.peak_queue_length, h.num_vertices())
      << label << " seed " << seed;
  if (h.num_vertices() > 0) {
    EXPECT_GE(stats.peel_rounds, 1u) << label << " seed " << seed;
  }
}

class PeelSubstrateSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PeelSubstrateSweep, ImplementationsAgreeAndStatsHold) {
  const std::uint64_t seed = GetParam();
  const Hypergraph h = cellzome_style_instance(seed);

  PeelStats seq_stats;
  const HyperCoreResult fast = core_decomposition(h, &seq_stats);
  expect_equivalent(fast, core_decomposition_naive(h), "naive", seed);
  PeelStats par_stats;
  expect_equivalent(fast, core_decomposition_parallel(h, 0, &par_stats),
                    "parallel", seed);

  expect_stats_invariants(seq_stats, h, "sequential", seed);
  expect_stats_invariants(par_stats, h, "parallel", seed);
  // The bulk peel does no pairwise decrements at all (it recounts).
  EXPECT_EQ(par_stats.overlap_decrements, 0u);

  // reduce() must agree with the decomposition's level-0 residual: same
  // surviving-edge count, and its output is actually reduced.
  const ReduceResult r = find_non_maximal(h);
  EXPECT_EQ(fast.level_edges[0], h.num_edges() - r.num_removed)
      << "seed " << seed;
  EXPECT_TRUE(is_reduced(reduce(h).hypergraph)) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, PeelSubstrateSweep,
                         ::testing::Range<std::uint64_t>(1, 51));

TEST(PeelSubstrate, FlatTrackerMatchesCliqueDecrements) {
  // e0={0,1,2}, e1={0,1,3}, e2={1,2,3}: deleting vertex 1 (member of all
  // three) must drop every pairwise overlap by exactly one.
  HypergraphBuilder b{4};
  b.add_edge({0, 1, 2});
  b.add_edge({0, 1, 3});
  b.add_edge({1, 2, 3});
  const Hypergraph h = b.build();
  FlatOverlapTracker tracker{h};
  EXPECT_EQ(tracker.overlap(0, 1), 2u);
  EXPECT_EQ(tracker.overlap(0, 2), 2u);
  EXPECT_EQ(tracker.overlap(1, 2), 2u);

  PeelStats stats;
  const std::vector<index_t> touched{0, 1, 2};
  tracker.decrement_clique(touched, &stats);
  EXPECT_EQ(tracker.overlap(0, 1), 1u);
  EXPECT_EQ(tracker.overlap(1, 0), 1u);
  EXPECT_EQ(tracker.overlap(0, 2), 1u);
  EXPECT_EQ(tracker.overlap(1, 2), 1u);
  EXPECT_EQ(stats.overlap_decrements, 6u);  // 3 pairs, both directions
}

TEST(PeelSubstrate, ResidualErasePrimitives) {
  const Hypergraph h = testing::toy_hypergraph();
  ResidualHypergraph residual{h};
  EXPECT_EQ(residual.live_vertices(), h.num_vertices());
  EXPECT_EQ(residual.live_edges(), h.num_edges());

  // Erase vertex 4 (member of e1 {2,3,4} and e2 {4,5}).
  std::vector<index_t> touched;
  residual.erase_vertex(4, touched);
  EXPECT_EQ(touched, (std::vector<index_t>{1, 2}));
  EXPECT_FALSE(residual.vertex_alive(4));
  EXPECT_EQ(residual.edge_size(1), 2u);
  EXPECT_EQ(residual.edge_size(2), 1u);

  // Erase edge e2 {4,5}: only live member 5 loses a degree.
  index_t dropped = kInvalidIndex;
  residual.erase_edge(2, [&](index_t w, index_t degree) {
    dropped = w;
    EXPECT_EQ(degree, residual.vertex_degree(w));
  });
  EXPECT_EQ(dropped, 5u);
  EXPECT_FALSE(residual.edge_alive(2));
  EXPECT_EQ(residual.live_edges(), h.num_edges() - 1);
}

TEST(PeelSubstrate, StampsCoresOnDeletion) {
  const Hypergraph h = testing::toy_hypergraph();
  std::vector<index_t> vertex_core(h.num_vertices(), 0);
  std::vector<index_t> edge_core(h.num_edges(), 0);
  ResidualHypergraph residual{h};
  residual.bind_cores(&vertex_core, &edge_core);

  residual.set_peel_level(0);
  residual.erase_edge(0);
  EXPECT_EQ(edge_core[0], 0u);  // level 0: not stamped

  residual.set_peel_level(3);
  residual.erase_vertex(6);
  residual.erase_edge(4);
  EXPECT_EQ(vertex_core[6], 2u);
  EXPECT_EQ(edge_core[4], 2u);
}

TEST(PeelSubstrate, CellzomeSurrogateStatsInvariants) {
  const Hypergraph h = bio::cellzome_surrogate().hypergraph;
  PeelStats stats;
  const HyperCoreResult cores = core_decomposition(h, &stats);
  expect_stats_invariants(stats, h, "cellzome", 0);
  // Paper invariant (section 3): the maximum core is the 6-core with 41
  // proteins and 54 complexes. At the default seed the calibrated
  // surrogate reproduces the 6-core and 41 proteins exactly and lands
  // one complex off (55); the values below are the deterministic
  // surrogate outputs, identical before and after the substrate refactor.
  EXPECT_EQ(cores.max_core, 6u);
  EXPECT_EQ(cores.core_vertices(6).size(), 41u);
  EXPECT_EQ(cores.core_edges(6).size(), 55u);
}

}  // namespace
}  // namespace hp::hyper
