// Structural property sweeps for the hypergraph k-core across every
// input family the benchmarks use (random, Matrix Market profiles, the
// Cellzome surrogate).
#include <gtest/gtest.h>

#include "bio/cellzome_synth.hpp"
#include "core/kcore.hpp"
#include "core/kcore_parallel.hpp"
#include "mm/mm_synth.hpp"
#include "mm/mm_to_hypergraph.hpp"
#include "test_helpers.hpp"

namespace hp::hyper {
namespace {

void check_core_invariants(const Hypergraph& h) {
  const HyperCoreResult r = core_decomposition(h);

  // Nestedness: the (k+1)-core is contained in the k-core.
  for (index_t k = 1; k <= r.max_core; ++k) {
    const auto outer = r.core_vertices(k);
    const auto inner = r.core_vertices(k + 1);
    std::vector<bool> in_outer(h.num_vertices(), false);
    for (index_t v : outer) in_outer[v] = true;
    for (index_t v : inner) EXPECT_TRUE(in_outer[v]);
  }

  // Every level satisfies the definition.
  for (index_t k = 1; k <= r.max_core; ++k) {
    const SubHypergraph core = extract_core(h, r, k);
    EXPECT_TRUE(satisfies_core_conditions(core.hypergraph, k)) << "k=" << k;
  }

  // The extracted maximum core's own decomposition tops out at exactly
  // the same k (a deeper core inside it would be a deeper core of h).
  if (r.max_core > 0) {
    const SubHypergraph max_core = extract_core(h, r, r.max_core);
    const HyperCoreResult inner = core_decomposition(max_core.hypergraph);
    EXPECT_EQ(inner.max_core, r.max_core);
    EXPECT_EQ(inner.core_vertices(r.max_core).size(),
              max_core.hypergraph.num_vertices());
  }

  // Parallel implementation agrees.
  const HyperCoreResult par = core_decomposition_parallel(h);
  EXPECT_EQ(par.vertex_core, r.vertex_core);
  EXPECT_EQ(par.max_core, r.max_core);
}

TEST(KCoreProperties, BandedMatrixHypergraph) {
  Rng rng{1};
  check_core_invariants(
      mm::row_net_hypergraph(mm::synthesize_banded(150, 4, 0.6, rng)));
}

TEST(KCoreProperties, FemBlockMatrixHypergraph) {
  Rng rng{2};
  check_core_invariants(
      mm::row_net_hypergraph(mm::synthesize_fem_blocks(200, 8, 120, rng)));
}

TEST(KCoreProperties, StiffnessMatrixHypergraph) {
  Rng rng{3};
  check_core_invariants(
      mm::row_net_hypergraph(mm::synthesize_stiffness(180, 5, 150, rng)));
}

TEST(KCoreProperties, TokamakMatrixHypergraph) {
  Rng rng{4};
  check_core_invariants(
      mm::row_net_hypergraph(mm::synthesize_tokamak(120, 3, 4, 0.5, rng)));
}

TEST(KCoreProperties, SmallCellzomeSurrogate) {
  bio::CellzomeParams p;
  p.num_proteins = 220;
  p.num_complexes = 45;
  p.degree_one_proteins = 130;
  p.max_degree = 9;
  p.core_proteins = 12;
  p.core_complexes = 10;
  p.core_memberships = 3;
  p.max_complex_size = 25;
  check_core_invariants(bio::cellzome_surrogate(p).hypergraph);
}

class KCorePropertySweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KCorePropertySweep, RandomHypergraphs) {
  Rng rng{GetParam()};
  const index_t nv = 20 + static_cast<index_t>(rng.uniform(30));
  const index_t ne = 20 + static_cast<index_t>(rng.uniform(40));
  check_core_invariants(testing::random_hypergraph(rng, nv, ne, 6));
}

INSTANTIATE_TEST_SUITE_P(Seeds, KCorePropertySweep,
                         ::testing::Range<std::uint64_t>(100, 110));

TEST(KCoreProperties, VertexRemovalNeverDeepensTheCore) {
  // Monotonicity: deleting a vertex cannot increase the maximum core.
  Rng rng{55};
  const Hypergraph h = testing::random_hypergraph(rng, 18, 25, 5);
  const index_t base = core_decomposition(h).max_core;
  for (index_t v = 0; v < h.num_vertices(); v += 3) {
    std::vector<bool> keep_v(h.num_vertices(), true);
    keep_v[v] = false;
    const std::vector<bool> keep_e(h.num_edges(), true);
    const SubHypergraph sub = induce(h, keep_v, keep_e);
    EXPECT_LE(core_decomposition(sub.hypergraph).max_core, base)
        << "removing vertex " << v;
  }
}

}  // namespace
}  // namespace hp::hyper
