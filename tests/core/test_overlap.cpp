#include "core/overlap.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "test_helpers.hpp"

namespace hp::hyper {
namespace {

TEST(OverlapTable, PairwiseCounts) {
  const Hypergraph h = testing::toy_hypergraph();
  const OverlapTable t{h};
  // e0 = {0,1,2,3}, e1 = {2,3,4}: share {2,3}.
  EXPECT_EQ(t.overlap(0, 1), 2u);
  EXPECT_EQ(t.overlap(1, 0), 2u);
  // e0 and e2 = {4,5}: disjoint.
  EXPECT_EQ(t.overlap(0, 2), 0u);
  // e0 inside e4: overlap = |e0| = 4.
  EXPECT_EQ(t.overlap(0, 4), 4u);
  // Self-overlap defined as 0.
  EXPECT_EQ(t.overlap(1, 1), 0u);
}

TEST(OverlapTable, Degree2Counts) {
  const Hypergraph h = testing::toy_hypergraph();
  const OverlapTable t{h};
  // e1 = {2,3,4} overlaps e0, e2, e4.
  EXPECT_EQ(t.degree2(1), 3u);
  // e3 = {5} overlaps only e2.
  EXPECT_EQ(t.degree2(3), 1u);
  EXPECT_EQ(t.max_degree2(), 3u);
}

TEST(OverlapTable, MatchesBruteForceOnRandomInputs) {
  Rng rng{2718};
  for (int trial = 0; trial < 6; ++trial) {
    const Hypergraph h = testing::random_hypergraph(rng, 18, 15, 6);
    const OverlapTable t{h};
    for (index_t f = 0; f < h.num_edges(); ++f) {
      for (index_t g = 0; g < h.num_edges(); ++g) {
        if (f == g) continue;
        const auto fv = h.vertices_of(f);
        const auto gv = h.vertices_of(g);
        std::vector<index_t> inter;
        std::set_intersection(fv.begin(), fv.end(), gv.begin(), gv.end(),
                              std::back_inserter(inter));
        EXPECT_EQ(t.overlap(f, g), inter.size())
            << "trial " << trial << " pair (" << f << "," << g << ")";
      }
    }
  }
}

TEST(OverlapTable, EmptyHypergraph) {
  const OverlapTable t{HypergraphBuilder{0}.build()};
  EXPECT_EQ(t.max_degree2(), 0u);
  EXPECT_EQ(t.num_edges(), 0u);
}

TEST(VertexDegree2, ToyValues) {
  const Hypergraph h = testing::toy_hypergraph();
  const auto d2 = vertex_degree2(h);
  // Vertex 0 is in e0 {0,1,2,3} and e4 {0,1,2,3,6}: co-members {1,2,3,6}.
  EXPECT_EQ(d2[0], 4u);
  // Vertex 4 in e1 {2,3,4} and e2 {4,5}: co-members {2,3,5}.
  EXPECT_EQ(d2[4], 3u);
  // Vertex 6 only in e4: co-members {0,1,2,3}.
  EXPECT_EQ(d2[6], 4u);
}

TEST(VertexDegree2, IsolatedVertexIsZero) {
  HypergraphBuilder b{3};
  b.add_edge({0, 1});
  EXPECT_EQ(vertex_degree2(b.build())[2], 0u);
}

}  // namespace
}  // namespace hp::hyper
