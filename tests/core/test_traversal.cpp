#include "core/traversal.hpp"

#include <gtest/gtest.h>

#include "core/projection.hpp"
#include "graph/graph_algos.hpp"
#include "test_helpers.hpp"

namespace hp::hyper {
namespace {

/// Chain of hyperedges: e_i = {i, i+1}; distances equal index gaps.
Hypergraph chain_hypergraph(index_t n) {
  HypergraphBuilder b{n};
  for (index_t i = 0; i + 1 < n; ++i) b.add_edge({i, static_cast<index_t>(i + 1)});
  return b.build();
}

TEST(HyperBfs, ChainDistances) {
  const Hypergraph h = chain_hypergraph(6);
  const auto dist = bfs_distances(h, 0);
  for (index_t v = 0; v < 6; ++v) EXPECT_EQ(dist[v], v);
}

TEST(HyperBfs, OneBigEdgeGivesDistanceOne) {
  HypergraphBuilder b{5};
  b.add_edge({0, 1, 2, 3, 4});
  const auto dist = bfs_distances(b.build(), 2);
  EXPECT_EQ(dist[2], 0u);
  for (index_t v = 0; v < 5; ++v) {
    if (v != 2) EXPECT_EQ(dist[v], 1u);
  }
}

TEST(HyperBfs, UnreachableMarked) {
  HypergraphBuilder b{4};
  b.add_edge({0, 1});
  b.add_edge({2, 3});
  const auto dist = bfs_distances(b.build(), 0);
  EXPECT_EQ(dist[2], kInvalidIndex);
}

TEST(HyperBfs, PathAlternatesThroughSharedVertices) {
  // e0 = {0,1,2}, e1 = {2,3}, e2 = {3,4,5}: d(0,5) = 3 hyperedges.
  HypergraphBuilder b{6};
  b.add_edge({0, 1, 2});
  b.add_edge({2, 3});
  b.add_edge({3, 4, 5});
  const auto dist = bfs_distances(b.build(), 0);
  EXPECT_EQ(dist[2], 1u);
  EXPECT_EQ(dist[3], 2u);
  EXPECT_EQ(dist[5], 3u);
}

TEST(HyperBfs, MatchesBipartiteGraphDistances) {
  // The paper defines hypergraph distance as the number of hyperedges on
  // the path, which is half the distance in B(H).
  Rng rng{12};
  const Hypergraph h = testing::random_hypergraph(rng, 25, 25, 5);
  const graph::Graph b = bipartite_graph(h);
  for (index_t s = 0; s < 5; ++s) {
    const auto hyper_dist = bfs_distances(h, s);
    const auto bip_dist = graph::bfs_distances(b, s);
    for (index_t v = 0; v < h.num_vertices(); ++v) {
      if (hyper_dist[v] == kInvalidIndex) {
        EXPECT_EQ(bip_dist[v], kInvalidIndex);
      } else {
        EXPECT_EQ(hyper_dist[v] * 2, bip_dist[v]) << "s=" << s << " v=" << v;
      }
    }
  }
}

TEST(HyperComponents, CountsVerticesAndEdges) {
  HypergraphBuilder b{7};
  b.add_edge({0, 1, 2});
  b.add_edge({2, 3});
  b.add_edge({4, 5});
  // vertex 6 isolated
  const HyperComponents c = connected_components(b.build());
  EXPECT_EQ(c.count, 3u);
  const index_t big = c.largest();
  EXPECT_EQ(c.vertex_counts[big], 4u);
  EXPECT_EQ(c.edge_counts[big], 2u);
  // Isolated vertex forms a component with zero edges.
  index_t singleton_components = 0;
  for (index_t i = 0; i < c.count; ++i) {
    if (c.vertex_counts[i] == 1 && c.edge_counts[i] == 0) {
      ++singleton_components;
    }
  }
  EXPECT_EQ(singleton_components, 1u);
}

TEST(HyperComponents, LabelsAreConsistent) {
  Rng rng{14};
  const Hypergraph h = testing::random_hypergraph(rng, 40, 20, 4);
  const HyperComponents c = connected_components(h);
  for (index_t e = 0; e < h.num_edges(); ++e) {
    for (index_t v : h.vertices_of(e)) {
      EXPECT_EQ(c.vertex_label[v], c.edge_label[e]);
    }
  }
}

TEST(HyperPathSummary, ChainValues) {
  const HyperPathSummary s = path_summary(chain_hypergraph(5));
  EXPECT_EQ(s.diameter, 4u);
  EXPECT_EQ(s.connected_pairs, 20u);
  // Average over ordered pairs of |i-j|: 2*(4*1+3*2+2*3+1*4)/20 = 2.
  EXPECT_DOUBLE_EQ(s.average_length, 2.0);
}

TEST(HyperPathSummary, TwoComponentsAverageWithinComponentsOnly) {
  // The paper reports its 2.568 average path length over the giant
  // component, i.e. averaging over connected ordered pairs only.
  // Unreachable cross-component pairs must enter neither the numerator
  // nor the denominator.
  //   component A: chain 0-1-2 via {0,1},{1,2}
  //   component B: pair 3-4 via {3,4}
  HypergraphBuilder b{5};
  b.add_edge({0, 1});
  b.add_edge({1, 2});
  b.add_edge({3, 4});
  const HyperPathSummary s = path_summary(b.build());
  // A: ordered-pair distances 1,1,1,1,2,2 (total 8 over 6 pairs).
  // B: 1,1 (total 2 over 2 pairs). The 12 cross pairs are excluded,
  // so the average is 10/8, not 10/20 or an infinity-poisoned value.
  EXPECT_EQ(s.connected_pairs, 8u);
  EXPECT_EQ(s.diameter, 2u);
  EXPECT_DOUBLE_EQ(s.average_length, 1.25);
}

TEST(HyperPathSummary, EmptyAndSingleton) {
  const HyperPathSummary empty = path_summary(HypergraphBuilder{0}.build());
  EXPECT_EQ(empty.diameter, 0u);
  EXPECT_EQ(empty.connected_pairs, 0u);

  HypergraphBuilder b{1};
  b.add_edge({0});
  const HyperPathSummary one = path_summary(b.build());
  EXPECT_EQ(one.connected_pairs, 0u);
}

}  // namespace
}  // namespace hp::hyper
