#include "core/projection.hpp"

#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace hp::hyper {
namespace {

TEST(CliqueExpansion, EachEdgeBecomesAClique) {
  HypergraphBuilder b{5};
  b.add_edge({0, 1, 2});
  b.add_edge({3, 4});
  const graph::Graph g = clique_expansion(b.build());
  EXPECT_EQ(g.num_edges(), 4u);  // C(3,2) + 1
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_TRUE(g.has_edge(3, 4));
  EXPECT_FALSE(g.has_edge(2, 3));
}

TEST(CliqueExpansion, SharedPairsNotDoubleCounted) {
  HypergraphBuilder b{3};
  b.add_edge({0, 1, 2});
  b.add_edge({0, 1});
  EXPECT_EQ(clique_expansion(b.build()).num_edges(), 3u);
}

TEST(CliqueExpansion, QuadraticBlowupOnLargeEdge) {
  // The paper's storage argument: one n-member complex costs O(n) in the
  // hypergraph but O(n^2) edges in the clique expansion.
  HypergraphBuilder b{50};
  std::vector<index_t> all(50);
  for (index_t i = 0; i < 50; ++i) all[i] = i;
  b.add_edge(all);
  const Hypergraph h = b.build();
  EXPECT_EQ(h.num_pins(), 50u);
  EXPECT_EQ(clique_expansion(h).num_edges(), 50u * 49 / 2);
}

TEST(StarExpansion, BaitConnectsToMembers) {
  HypergraphBuilder b{4};
  b.add_edge({0, 1, 2, 3});
  const graph::Graph g = star_expansion(b.build(), {1});
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_TRUE(g.has_edge(1, 3));
  EXPECT_FALSE(g.has_edge(0, 2));
}

TEST(StarExpansion, RejectsNonMemberBait) {
  HypergraphBuilder b{4};
  b.add_edge({0, 1});
  EXPECT_THROW(star_expansion(b.build(), {3}), InvalidInputError);
  EXPECT_THROW(star_expansion(b.build(), {}), InvalidInputError);
}

TEST(StarExpansion, SingletonEdgeContributesNothing) {
  HypergraphBuilder b{2};
  b.add_edge({0});
  b.add_edge({0, 1});
  const graph::Graph g = star_expansion(b.build(), {0, 0});
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(DefaultBaits, PicksHighestDegreeMember) {
  HypergraphBuilder b{4};
  b.add_edge({0, 1});     // deg(1) will be 3
  b.add_edge({1, 2});
  b.add_edge({1, 3, 0});
  const auto baits = default_baits(b.build());
  EXPECT_EQ(baits, (std::vector<index_t>{1, 1, 1}));
}

TEST(IntersectionGraph, SharedProteinsCreateEdges) {
  const Hypergraph h = testing::toy_hypergraph();
  std::vector<index_t> weights;
  const graph::Graph g = intersection_graph(h, &weights);
  EXPECT_EQ(g.num_vertices(), h.num_edges());
  // e0 and e1 share {2,3}.
  EXPECT_TRUE(g.has_edge(0, 1));
  // e0 and e2 are disjoint.
  EXPECT_FALSE(g.has_edge(0, 2));
  // Weight for the (0,1) pair is 2 (first in sorted pair order).
  ASSERT_FALSE(weights.empty());
  EXPECT_EQ(weights.size(), g.num_edges());
}

TEST(IntersectionGraph, QuadraticInVertexDegree) {
  // A protein in m complexes creates C(m,2) intersection edges.
  HypergraphBuilder b{11};
  for (index_t e = 0; e < 10; ++e) {
    b.add_edge({0, static_cast<index_t>(e + 1)});
  }
  const graph::Graph g = intersection_graph(b.build());
  EXPECT_EQ(g.num_edges(), 45u);  // C(10,2)
}

TEST(BipartiteGraph, StructureMatches) {
  const Hypergraph h = testing::toy_hypergraph();
  const graph::Graph b = bipartite_graph(h);
  EXPECT_EQ(b.num_vertices(), h.num_vertices() + h.num_edges());
  EXPECT_EQ(b.num_edges(), h.num_pins());
  // Vertex 0 belongs to e0 and e4.
  EXPECT_TRUE(b.has_edge(0, h.num_vertices() + 0));
  EXPECT_TRUE(b.has_edge(0, h.num_vertices() + 4));
  EXPECT_FALSE(b.has_edge(0, h.num_vertices() + 2));
}

TEST(RepresentationCosts, HypergraphIsCheapestOnCliqueHeavyData) {
  // Few large complexes: the regime where the paper's O(n) vs O(n^2)
  // argument bites.
  HypergraphBuilder b{60};
  std::vector<index_t> members;
  for (index_t start = 0; start < 3; ++start) {
    members.clear();
    for (index_t i = 0; i < 20; ++i) members.push_back(start * 20 + i);
    b.add_edge(members);
  }
  const RepresentationCosts costs = representation_costs(b.build());
  EXPECT_LT(costs.hypergraph_pins, costs.clique_edges);
  EXPECT_LT(costs.hypergraph_bytes, costs.clique_bytes);
  EXPECT_EQ(costs.star_edges, 57u);  // 3 * (20 - 1)
}

}  // namespace
}  // namespace hp::hyper
