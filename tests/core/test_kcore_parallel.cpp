#include "core/kcore_parallel.hpp"

#include <gtest/gtest.h>

#include "core/kcore.hpp"
#include "test_helpers.hpp"

namespace hp::hyper {
namespace {

TEST(ParallelKCore, EmptyAndTrivial) {
  const HyperCoreResult empty =
      core_decomposition_parallel(HypergraphBuilder{0}.build());
  EXPECT_EQ(empty.max_core, 0u);

  HypergraphBuilder b{2};
  b.add_edge({0, 1});
  const HyperCoreResult one = core_decomposition_parallel(b.build());
  EXPECT_EQ(one.max_core, 1u);
}

TEST(ParallelKCore, ThreadCountDoesNotChangeResult) {
  Rng rng{31337};
  const Hypergraph h = testing::random_hypergraph(rng, 60, 80, 6);
  const HyperCoreResult t1 = core_decomposition_parallel(h, 1);
  const HyperCoreResult t2 = core_decomposition_parallel(h, 2);
  const HyperCoreResult t4 = core_decomposition_parallel(h, 4);
  EXPECT_EQ(t1.vertex_core, t2.vertex_core);
  EXPECT_EQ(t1.vertex_core, t4.vertex_core);
  EXPECT_EQ(t1.edge_core, t2.edge_core);
  EXPECT_EQ(t1.edge_core, t4.edge_core);
  EXPECT_EQ(t1.max_core, t4.max_core);
}

TEST(ParallelKCore, EdgeRepresentativeIsLowestId) {
  // Two edges shrink to the same residual set in the same round; the
  // parallel algorithm deterministically keeps the lower id.
  HypergraphBuilder b{4};
  b.add_edge({0, 1, 2});  // e0
  b.add_edge({0, 1, 3});  // e1
  const HyperCoreResult r = core_decomposition_parallel(b.build());
  // At k = 2: vertices 2 and 3 peel, e0 and e1 both become {0,1};
  // e1 (higher id) is deleted at level 2 (edge_core 1), e0 peels later.
  EXPECT_EQ(r.max_core, 1u);
  EXPECT_EQ(r.edge_core[1], 1u);
}

TEST(ParallelKCore, ExtractedCoreIsValid) {
  Rng rng{71};
  const Hypergraph h = testing::random_hypergraph(rng, 40, 60, 5);
  const HyperCoreResult r = core_decomposition_parallel(h);
  for (index_t k = 1; k <= r.max_core; ++k) {
    const SubHypergraph core = extract_core(h, r, k);
    EXPECT_TRUE(satisfies_core_conditions(core.hypergraph, k)) << k;
  }
}

TEST(ParallelKCore, DefaultThreadsMatchesSequentialContract) {
  Rng rng{9001};
  const Hypergraph h = testing::random_hypergraph(rng, 35, 50, 6);
  const HyperCoreResult par = core_decomposition_parallel(h);
  const HyperCoreResult seq = core_decomposition(h);
  EXPECT_EQ(par.vertex_core, seq.vertex_core);
  EXPECT_EQ(par.level_vertices, seq.level_vertices);
  EXPECT_EQ(par.level_edges, seq.level_edges);
}

}  // namespace
}  // namespace hp::hyper
