#include "core/smallworld.hpp"

#include <gtest/gtest.h>

#include "core/stats.hpp"
#include "test_helpers.hpp"

namespace hp::hyper {
namespace {

TEST(ConfigurationModel, PreservesEdgeSizesApproximately) {
  Rng rng{101};
  const Hypergraph h = testing::random_hypergraph(rng, 50, 40, 6);
  const Hypergraph null_h = configuration_model(h, rng);
  EXPECT_EQ(null_h.num_vertices(), h.num_vertices());
  EXPECT_EQ(null_h.num_edges(), h.num_edges());
  // Stub matching preserves pin count up to rare collision drops.
  EXPECT_GE(null_h.num_pins(), h.num_pins() * 95 / 100);
  EXPECT_LE(null_h.num_pins(), h.num_pins());
}

TEST(ConfigurationModel, PreservesDegreeSequenceApproximately) {
  Rng rng{103};
  const Hypergraph h = testing::random_hypergraph(rng, 40, 40, 5);
  const Hypergraph null_h = configuration_model(h, rng);
  const Histogram before = vertex_degree_histogram(h);
  const Histogram after = vertex_degree_histogram(null_h);
  // Total degree mass is nearly identical.
  EXPECT_NEAR(static_cast<double>(after.total()) * after.mean(),
              static_cast<double>(before.total()) * before.mean(),
              0.05 * static_cast<double>(h.num_pins()) + 1.0);
}

TEST(ConfigurationModel, RandomizesStructure) {
  Rng rng{107};
  const Hypergraph h = testing::random_hypergraph(rng, 60, 50, 5);
  const Hypergraph null_h = configuration_model(h, rng);
  EXPECT_NE(h, null_h);
}

TEST(ConfigurationModel, ValidOutput) {
  Rng rng{109};
  const Hypergraph h = testing::random_hypergraph(rng, 30, 25, 6);
  EXPECT_NO_THROW(validate(configuration_model(h, rng)));
}

TEST(SmallWorldReport, ChainIsNotSmallWorld) {
  // A long chain has average path length ~ n/3, far above the rewired
  // null model's ~ log n.
  HypergraphBuilder b{40};
  for (index_t i = 0; i + 1 < 40; ++i) {
    b.add_edge({i, static_cast<index_t>(i + 1)});
  }
  Rng rng{113};
  const SmallWorldReport r = small_world_report(b.build(), rng);
  EXPECT_GT(r.observed.average_length, 10.0);
  EXPECT_GT(r.path_ratio, 2.0);
}

TEST(SmallWorldReport, RandomHypergraphIsSmallWorld) {
  Rng rng{127};
  const Hypergraph h = testing::random_hypergraph(rng, 150, 120, 6);
  const SmallWorldReport r = small_world_report(h, rng);
  // A random hypergraph IS its own null model: ratio near 1.
  EXPECT_GT(r.path_ratio, 0.5);
  EXPECT_LT(r.path_ratio, 2.0);
  EXPECT_GT(r.log_num_vertices, 0.0);
}

}  // namespace
}  // namespace hp::hyper
