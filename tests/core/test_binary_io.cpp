#include "core/binary_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "bio/cellzome_synth.hpp"
#include "test_helpers.hpp"

namespace hp::hyper {
namespace {

TEST(BinaryIo, RoundTripToy) {
  const Hypergraph h = testing::toy_hypergraph();
  EXPECT_EQ(from_binary(to_binary(h)), h);
}

TEST(BinaryIo, RoundTripRandom) {
  Rng rng{1};
  for (int trial = 0; trial < 6; ++trial) {
    const Hypergraph h = testing::random_hypergraph(rng, 30, 25, 6);
    EXPECT_EQ(from_binary(to_binary(h)), h);
  }
}

TEST(BinaryIo, PreservesIsolatedVertices) {
  HypergraphBuilder b{12};
  b.add_edge({0, 1});
  const Hypergraph h = b.build();
  EXPECT_EQ(from_binary(to_binary(h)).num_vertices(), 12u);
}

TEST(BinaryIo, RoundTripCellzomeScale) {
  const Hypergraph h = bio::cellzome_surrogate().hypergraph;
  const std::string bytes = to_binary(h);
  EXPECT_EQ(from_binary(bytes), h);
  // Binary is far more compact than the text format would be for this
  // instance: 24-byte header + 8 * (|F|+1) + 4 * |E|.
  EXPECT_EQ(bytes.size(), 24u + 8u * (h.num_edges() + 1) +
                              4u * static_cast<std::size_t>(h.num_pins()));
}

TEST(BinaryIo, RejectsCorruptedInputs) {
  const Hypergraph h = testing::toy_hypergraph();
  const std::string good = to_binary(h);

  EXPECT_THROW(from_binary(""), ParseError);
  EXPECT_THROW(from_binary("XXXX"), ParseError);

  std::string bad_magic = good;
  bad_magic[0] = 'Z';
  EXPECT_THROW(from_binary(bad_magic), ParseError);

  std::string bad_version = good;
  bad_version[4] = 99;
  EXPECT_THROW(from_binary(bad_version), ParseError);

  std::string truncated = good.substr(0, good.size() - 3);
  EXPECT_THROW(from_binary(truncated), ParseError);

  std::string trailing = good + "junk";
  EXPECT_THROW(from_binary(trailing), ParseError);

  // Corrupt a member id to be out of range.
  std::string bad_member = good;
  bad_member[bad_member.size() - 4] = static_cast<char>(0xFF);
  bad_member[bad_member.size() - 3] = static_cast<char>(0xFF);
  EXPECT_THROW(from_binary(bad_member), ParseError);
}

TEST(BinaryIo, FileRoundTrip) {
  const Hypergraph h = testing::toy_hypergraph();
  const std::string path = ::testing::TempDir() + "/hp_bin_test.hpb";
  save_binary(h, path);
  EXPECT_EQ(load_binary(path), h);
  std::remove(path.c_str());
  EXPECT_THROW(load_binary("/no/such/file.hpb"), std::runtime_error);
}

TEST(BinaryIo, EmptyHypergraph) {
  const Hypergraph h = HypergraphBuilder{0}.build();
  EXPECT_EQ(from_binary(to_binary(h)), h);
}

}  // namespace
}  // namespace hp::hyper
