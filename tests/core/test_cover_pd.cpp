#include "core/cover_pd.hpp"

#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace hp::hyper {
namespace {

TEST(PrimalDual, ProducesValidCover) {
  Rng rng{3};
  for (int trial = 0; trial < 10; ++trial) {
    const Hypergraph h = testing::random_hypergraph(rng, 30, 35, 5);
    const PrimalDualResult r = primal_dual_cover(h, unit_weights(h));
    EXPECT_TRUE(is_vertex_cover(h, r.vertices)) << trial;
  }
}

TEST(PrimalDual, DualIsALowerBound) {
  Rng rng{4};
  for (int trial = 0; trial < 8; ++trial) {
    const Hypergraph h = testing::random_hypergraph(rng, 12, 10, 4);
    const PrimalDualResult pd = primal_dual_cover(h, unit_weights(h));
    const ExactCoverResult exact = exact_vertex_cover(h, unit_weights(h));
    EXPECT_LE(pd.dual_value, exact.total_weight + 1e-9) << trial;
    EXPECT_GE(pd.total_weight, exact.total_weight - 1e-9) << trial;
  }
}

TEST(PrimalDual, WithinMaxEdgeSizeFactor) {
  Rng rng{9};
  for (int trial = 0; trial < 8; ++trial) {
    const Hypergraph h = testing::random_hypergraph(rng, 12, 12, 4);
    const PrimalDualResult pd = primal_dual_cover(h, unit_weights(h));
    const ExactCoverResult exact = exact_vertex_cover(h, unit_weights(h));
    EXPECT_LE(pd.total_weight,
              exact.total_weight * h.max_edge_size() + 1e-9)
        << trial;
  }
}

TEST(PrimalDual, ZeroWeightVerticesAreFree) {
  HypergraphBuilder b{3};
  b.add_edge({0, 1});
  b.add_edge({1, 2});
  const Hypergraph h = b.build();
  const PrimalDualResult r = primal_dual_cover(h, {5.0, 0.0, 5.0});
  EXPECT_TRUE(is_vertex_cover(h, r.vertices));
  EXPECT_DOUBLE_EQ(r.total_weight, 0.0);  // vertex 1 alone suffices
}

TEST(PrimalDual, EmptyHypergraph) {
  const Hypergraph h = HypergraphBuilder{3}.build();
  const PrimalDualResult r = primal_dual_cover(h, unit_weights(h));
  EXPECT_TRUE(r.vertices.empty());
  EXPECT_DOUBLE_EQ(r.dual_value, 0.0);
}

TEST(ExactCover, SolvesKnownInstances) {
  // Star: optimum is the hub alone.
  HypergraphBuilder b{5};
  b.add_edge({0, 1});
  b.add_edge({0, 2});
  b.add_edge({0, 3});
  b.add_edge({0, 4});
  const ExactCoverResult r = exact_vertex_cover(b.build(),
                                                unit_weights(b.build()));
  EXPECT_EQ(r.vertices, (std::vector<index_t>{0}));
  EXPECT_DOUBLE_EQ(r.total_weight, 1.0);
}

TEST(ExactCover, RespectsWeights) {
  // Hub is expensive: optimum picks the four leaves.
  HypergraphBuilder b{5};
  b.add_edge({0, 1});
  b.add_edge({0, 2});
  b.add_edge({0, 3});
  b.add_edge({0, 4});
  const ExactCoverResult r =
      exact_vertex_cover(b.build(), {3.5, 1.0, 1.0, 1.0, 1.0});
  EXPECT_DOUBLE_EQ(r.total_weight, 3.5);  // hub still cheaper than 4 leaves
  const ExactCoverResult r2 =
      exact_vertex_cover(b.build(), {4.5, 1.0, 1.0, 1.0, 1.0});
  EXPECT_DOUBLE_EQ(r2.total_weight, 4.0);  // now the leaves win
  EXPECT_EQ(r2.vertices.size(), 4u);
}

TEST(ExactCover, EmptyEdgeSetIsZero) {
  const Hypergraph h = HypergraphBuilder{4}.build();
  const ExactCoverResult r = exact_vertex_cover(h, unit_weights(h));
  EXPECT_TRUE(r.vertices.empty());
  EXPECT_DOUBLE_EQ(r.total_weight, 0.0);
}

TEST(ExactCover, RefusesLargeInstances) {
  Rng rng{21};
  const Hypergraph h = testing::random_hypergraph(rng, 64, 10, 3);
  EXPECT_THROW(exact_vertex_cover(h, unit_weights(h)),
               std::invalid_argument);
}

}  // namespace
}  // namespace hp::hyper
