#include "core/multicover.hpp"

#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace hp::hyper {
namespace {

TEST(Multicover, RequirementOneMatchesCoverSemantics) {
  Rng rng{5};
  const Hypergraph h = testing::random_hypergraph(rng, 30, 35, 5);
  const MulticoverResult r = greedy_multicover(h, unit_weights(h), 1);
  EXPECT_TRUE(is_multicover(h, r.vertices,
                            std::vector<index_t>(h.num_edges(), 1)));
  EXPECT_TRUE(is_vertex_cover(h, r.vertices));
}

TEST(Multicover, DoubleCoverageIsSatisfied) {
  Rng rng{6};
  for (int trial = 0; trial < 8; ++trial) {
    const Hypergraph h = testing::random_hypergraph(rng, 25, 30, 5);
    const MulticoverResult r = greedy_multicover(h, unit_weights(h), 2);
    EXPECT_TRUE(is_multicover(h, r.vertices,
                              std::vector<index_t>(h.num_edges(), 2)))
        << trial;
  }
}

TEST(Multicover, SingletonEdgesAreClampedAndReported) {
  HypergraphBuilder b{4};
  b.add_edge({0});         // singleton: can only be covered once
  b.add_edge({1, 2, 3});
  const Hypergraph h = b.build();
  const MulticoverResult r = greedy_multicover(h, unit_weights(h), 2);
  ASSERT_EQ(r.clamped_edges.size(), 1u);
  EXPECT_EQ(r.clamped_edges[0], 0u);
  // Edge 1 is hit twice; edge 0 once.
  EXPECT_TRUE(is_multicover(h, r.vertices, {2, 2}));
}

TEST(Multicover, DoubleCoverNeedsMoreVerticesThanSingle) {
  Rng rng{8};
  const Hypergraph h = testing::random_hypergraph(rng, 60, 60, 6);
  const MulticoverResult once = greedy_multicover(h, unit_weights(h), 1);
  const MulticoverResult twice = greedy_multicover(h, unit_weights(h), 2);
  EXPECT_GT(twice.vertices.size(), once.vertices.size());
}

TEST(Multicover, PerEdgeRequirements) {
  HypergraphBuilder b{6};
  b.add_edge({0, 1, 2});
  b.add_edge({3, 4, 5});
  const Hypergraph h = b.build();
  const MulticoverResult r =
      greedy_multicover(h, unit_weights(h), std::vector<index_t>{3, 1});
  // Edge 0 needs all three members; edge 1 only one.
  EXPECT_TRUE(is_multicover(h, r.vertices, {3, 1}));
  index_t from_first = 0;
  for (index_t v : r.vertices) from_first += v < 3 ? 1 : 0;
  EXPECT_EQ(from_first, 3u);
}

TEST(Multicover, NoDuplicateSelections) {
  Rng rng{13};
  const Hypergraph h = testing::random_hypergraph(rng, 40, 50, 5);
  const MulticoverResult r = greedy_multicover(h, unit_weights(h), 2);
  std::vector<index_t> sorted = r.vertices;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
}

TEST(Multicover, RejectsBadArgs) {
  const Hypergraph h = testing::toy_hypergraph();
  EXPECT_THROW(greedy_multicover(h, std::vector<double>(2, 1.0), 1),
               InvalidInputError);
  EXPECT_THROW(
      greedy_multicover(h, unit_weights(h), std::vector<index_t>{1, 1}),
      InvalidInputError);
  EXPECT_THROW(greedy_multicover(h, unit_weights(h),
                                 std::vector<index_t>(h.num_edges(), 0)),
               InvalidInputError);
}

TEST(IsMulticover, CountsDistinctHits) {
  HypergraphBuilder b{3};
  b.add_edge({0, 1, 2});
  const Hypergraph h = b.build();
  EXPECT_FALSE(is_multicover(h, {0}, {2}));
  EXPECT_TRUE(is_multicover(h, {0, 2}, {2}));
  EXPECT_TRUE(is_multicover(h, {0, 1, 2}, {3}));
}

}  // namespace
}  // namespace hp::hyper
