// Differential tests: the overlap-maintaining peel (the paper's
// algorithm), the naive set-comparison reference, and the
// bulk-synchronous parallel variant must agree on every input.
//
// Agreement contract: vertex core numbers, maximum core, and per-level
// vertex/edge counts are identical. Edge *identity* may differ between
// implementations only within groups of hyperedges whose residual sets
// become equal during peeling (each keeps one representative).
#include <gtest/gtest.h>

#include "core/kcore.hpp"
#include "core/kcore_naive.hpp"
#include "core/kcore_parallel.hpp"
#include "test_helpers.hpp"

namespace hp::hyper {
namespace {

void expect_equivalent(const HyperCoreResult& a, const HyperCoreResult& b,
                       const std::string& label) {
  EXPECT_EQ(a.max_core, b.max_core) << label;
  EXPECT_EQ(a.vertex_core, b.vertex_core) << label;
  EXPECT_EQ(a.level_vertices, b.level_vertices) << label;
  EXPECT_EQ(a.level_edges, b.level_edges) << label;
}

class KCoreEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KCoreEquivalence, RandomSparse) {
  Rng rng{GetParam()};
  const Hypergraph h = testing::random_hypergraph(rng, 30, 40, 5);
  const HyperCoreResult fast = core_decomposition(h);
  expect_equivalent(fast, core_decomposition_naive(h), "naive");
  expect_equivalent(fast, core_decomposition_parallel(h), "parallel");
}

TEST_P(KCoreEquivalence, RandomDense) {
  Rng rng{GetParam() * 7919};
  const Hypergraph h = testing::random_hypergraph(rng, 15, 60, 8);
  const HyperCoreResult fast = core_decomposition(h);
  expect_equivalent(fast, core_decomposition_naive(h), "naive");
  expect_equivalent(fast, core_decomposition_parallel(h), "parallel");
}

TEST_P(KCoreEquivalence, ManySmallEdges) {
  Rng rng{GetParam() * 104729};
  const Hypergraph h = testing::random_hypergraph(rng, 50, 120, 3);
  const HyperCoreResult fast = core_decomposition(h);
  expect_equivalent(fast, core_decomposition_naive(h), "naive");
  expect_equivalent(fast, core_decomposition_parallel(h), "parallel");
}

INSTANTIATE_TEST_SUITE_P(Seeds, KCoreEquivalence,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11,
                                           12));

TEST(KCoreEquivalence, ToyHypergraph) {
  const Hypergraph h = testing::toy_hypergraph();
  const HyperCoreResult fast = core_decomposition(h);
  expect_equivalent(fast, core_decomposition_naive(h), "naive");
  expect_equivalent(fast, core_decomposition_parallel(h), "parallel");
}

TEST(KCoreEquivalence, DuplicateHeavyInput) {
  // Stress representative selection: many duplicate and nested edges.
  HypergraphBuilder b{6};
  b.add_edge({0, 1, 2});
  b.add_edge({0, 1, 2});
  b.add_edge({1, 2});
  b.add_edge({0, 1, 2, 3});
  b.add_edge({3, 4, 5});
  b.add_edge({4, 5});
  b.add_edge({4, 5});
  const Hypergraph h = b.build();
  const HyperCoreResult fast = core_decomposition(h);
  expect_equivalent(fast, core_decomposition_naive(h), "naive");
  expect_equivalent(fast, core_decomposition_parallel(h), "parallel");
}

TEST(KCoreEquivalence, StarOfEdges) {
  // One hub vertex in every edge; peeling order stresses the cascade.
  HypergraphBuilder b{9};
  for (index_t i = 1; i < 9; i += 2) {
    b.add_edge({0, i, i + 1 < 9 ? i + 1 : 1});
  }
  const Hypergraph h = b.build();
  const HyperCoreResult fast = core_decomposition(h);
  expect_equivalent(fast, core_decomposition_naive(h), "naive");
  expect_equivalent(fast, core_decomposition_parallel(h), "parallel");
}

}  // namespace
}  // namespace hp::hyper
