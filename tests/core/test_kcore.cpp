#include "core/kcore.hpp"

#include <gtest/gtest.h>

#include "core/reduce.hpp"
#include "test_helpers.hpp"

namespace hp::hyper {
namespace {

/// Hypergraph with a planted 2-core: edges e0..e2 pairwise overlapping on
/// vertices {0,1,2}, each of which lies in >= 2 of them, plus a pendant
/// tail that peels away.
Hypergraph planted_two_core() {
  HypergraphBuilder b{7};
  b.add_edge({0, 1, 3});  // e0
  b.add_edge({1, 2, 4});  // e1
  b.add_edge({0, 2, 5});  // e2
  b.add_edge({5, 6});     // e3: tail
  return b.build();
}

TEST(HyperKCore, EmptyHypergraph) {
  const HyperCoreResult r = core_decomposition(HypergraphBuilder{0}.build());
  EXPECT_EQ(r.max_core, 0u);
  EXPECT_EQ(r.level_vertices.size(), 1u);
  EXPECT_EQ(r.level_vertices[0], 0u);
}

TEST(HyperKCore, SingleEdgeIsOneCore) {
  HypergraphBuilder b{3};
  b.add_edge({0, 1, 2});
  const HyperCoreResult r = core_decomposition(b.build());
  EXPECT_EQ(r.max_core, 1u);
  EXPECT_EQ(r.core_vertices(1).size(), 3u);
  EXPECT_EQ(r.core_edges(1).size(), 1u);
}

TEST(HyperKCore, IsolatedVertexHasCoreZero) {
  HypergraphBuilder b{3};
  b.add_edge({0, 1});
  const HyperCoreResult r = core_decomposition(b.build());
  EXPECT_EQ(r.vertex_core[2], 0u);
  EXPECT_EQ(r.vertex_core[0], 1u);
}

TEST(HyperKCore, PlantedTwoCore) {
  const HyperCoreResult r = core_decomposition(planted_two_core());
  EXPECT_EQ(r.max_core, 2u);
  EXPECT_EQ(r.core_vertices(2), (std::vector<index_t>{0, 1, 2}));
  // All three overlapping edges survive at level 2 (they shrink to pairs
  // {0,1}, {1,2}, {0,2} -- distinct, so all maximal).
  EXPECT_EQ(r.core_edges(2).size(), 3u);
  // Tail vertices have core 1.
  EXPECT_EQ(r.vertex_core[5], 1u);
  EXPECT_EQ(r.vertex_core[6], 1u);
}

TEST(HyperKCore, NonMaximalEdgeRemovedAtLevelZero) {
  const Hypergraph h = testing::toy_hypergraph();
  const HyperCoreResult r = core_decomposition(h);
  // e0 (inside e4) and e3 (inside e2) are gone before level 1.
  EXPECT_EQ(r.edge_core[0], 0u);
  EXPECT_EQ(r.edge_core[3], 0u);
  EXPECT_EQ(r.level_edges[0], 3u);
}

TEST(HyperKCore, ContainmentCreatedDuringPeelCascades) {
  // e0 = {0,1,3} and e1 = {0,1,2} are incomparable, so the initial
  // reduction keeps both. At k = 2 the degree-1 vertices 2 and 3 are
  // removed, both edges shrink to {0,1} and become duplicates; one is
  // deleted, the degrees of 0 and 1 drop to 1, and everything peels:
  // the 2-core is empty even though 0 and 1 started with degree 2.
  HypergraphBuilder b{4};
  b.add_edge({0, 1, 3});
  b.add_edge({0, 1, 2});
  const HyperCoreResult r = core_decomposition(b.build());
  EXPECT_EQ(r.max_core, 1u);
  EXPECT_EQ(r.vertex_core[0], 1u);
  EXPECT_EQ(r.vertex_core[2], 1u);
  // Exactly one of the two edges survived into the 1-core.
  EXPECT_EQ(r.level_edges[1], 2u);  // both alive at level 1
}

TEST(HyperKCore, DeepCoreFromCompleteIncidence) {
  // 5 vertices, all C(5,3) = 10 triples as hyperedges: every vertex is
  // in C(4,2) = 6 edges; no triple contains another. The whole thing is
  // reduced and is a 6-core? Peeling shows where it lands.
  HypergraphBuilder b{5};
  for (index_t i = 0; i < 5; ++i) {
    for (index_t j = i + 1; j < 5; ++j) {
      for (index_t k = j + 1; k < 5; ++k) {
        b.add_edge({i, j, k});
      }
    }
  }
  const HyperCoreResult r = core_decomposition(b.build());
  // Every vertex has degree 6 with a fully symmetric structure, so the
  // 6-core is the whole hypergraph; at level 7 everything collapses.
  EXPECT_EQ(r.max_core, 6u);
  EXPECT_EQ(r.core_vertices(6).size(), 5u);
  EXPECT_EQ(r.core_edges(6).size(), 10u);
}

TEST(HyperKCore, LevelSizesAreMonotone) {
  Rng rng{999};
  const Hypergraph h = testing::random_hypergraph(rng, 40, 50, 6);
  const HyperCoreResult r = core_decomposition(h);
  for (std::size_t k = 1; k < r.level_vertices.size(); ++k) {
    EXPECT_LE(r.level_vertices[k], r.level_vertices[k - 1]);
    EXPECT_LE(r.level_edges[k], r.level_edges[k - 1]);
  }
}

TEST(HyperKCore, LevelCountsMatchCoreNumbers) {
  Rng rng{1234};
  const Hypergraph h = testing::random_hypergraph(rng, 30, 40, 5);
  const HyperCoreResult r = core_decomposition(h);
  for (index_t k = 1; k <= r.max_core; ++k) {
    EXPECT_EQ(r.core_vertices(k).size(), r.level_vertices[k]);
    EXPECT_EQ(r.core_edges(k).size(), r.level_edges[k]);
  }
}

TEST(HyperKCore, ExtractedCoreSatisfiesDefinition) {
  Rng rng{4321};
  for (int trial = 0; trial < 8; ++trial) {
    const Hypergraph h = testing::random_hypergraph(rng, 25, 35, 5);
    const HyperCoreResult r = core_decomposition(h);
    for (index_t k = 1; k <= r.max_core; ++k) {
      const SubHypergraph core = extract_core(h, r, k);
      EXPECT_TRUE(satisfies_core_conditions(core.hypergraph, k))
          << "trial " << trial << " level " << k;
    }
  }
}

TEST(HyperKCore, MaxCorePlusOneIsEmpty) {
  Rng rng{777};
  const Hypergraph h = testing::random_hypergraph(rng, 30, 45, 5);
  const HyperCoreResult r = core_decomposition(h);
  EXPECT_TRUE(r.core_vertices(r.max_core + 1).empty());
}

TEST(HyperKCore, DuplicateInputEdgesKeepOneRepresentative) {
  HypergraphBuilder b{4};
  b.add_edge({0, 1, 2});
  b.add_edge({0, 1, 2});
  b.add_edge({0, 1, 2});
  b.add_edge({1, 2, 3});
  const HyperCoreResult r = core_decomposition(b.build());
  // After reduction only one copy of {0,1,2} remains.
  EXPECT_EQ(r.level_edges[0], 2u);
}

TEST(SatisfiesCoreConditions, RejectsViolations) {
  // Degree violation.
  HypergraphBuilder a{3};
  a.add_edge({0, 1});
  a.add_edge({1, 2});
  EXPECT_FALSE(satisfies_core_conditions(a.build(), 2));
  EXPECT_TRUE(satisfies_core_conditions(a.build(), 1));
  // Reducedness violation.
  HypergraphBuilder c{3};
  c.add_edge({0, 1});
  c.add_edge({0, 1, 2});
  EXPECT_FALSE(satisfies_core_conditions(c.build(), 1));
}

}  // namespace
}  // namespace hp::hyper
