// Property-based invariant sweep over the check/ generator's
// adversarial shapes (50 seeds, every structural regime). Unlike the
// example-based suites, nothing here pins concrete values: each test
// states an algebraic law of the substrate and asserts it on every
// generated instance.
//
// The seeds fan out across the shared work-stealing pool (src/par/):
// every case derives all of its randomness from the seed value alone,
// so the verdicts are independent of lane count and schedule. gtest's
// EXPECT macros are thread-safe on pthreads.
//
//   * dual involution:      dual(dual(H)) = H minus isolated vertices
//   * reduce idempotence:   reduce(reduce(H)) = reduce(H)
//   * core nesting:         kcore(k+1) is a sub-hypergraph of kcore(k)
//   * core monotonicity:    vertex_core <= degree; max_core realized
//   * core conditions:      every extracted k-core is reduced with
//                           min residual degree >= k
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "check/generator.hpp"
#include "check/oracles.hpp"
#include "core/dual.hpp"
#include "core/hypergraph.hpp"
#include "core/kcore.hpp"
#include "core/reduce.hpp"
#include "par/thread_pool.hpp"

namespace hp::hyper {
namespace {

constexpr std::uint64_t kSeeds = 50;

Hypergraph instance(std::uint64_t seed) { return check::generate(seed); }

/// Fan `body(seed)` over the sweep seeds on the shared pool, one seed
/// per task (grain 1 -- cases vary wildly in cost, so fine-grained
/// stealing is what balances the lanes).
template <typename Body>
void for_each_seed(const Body& body) {
  par::parallel_for(index_t{0}, static_cast<index_t>(kSeeds), /*grain=*/1,
                    [&](index_t begin, index_t end, int /*lane*/) {
                      for (index_t i = begin; i < end; ++i) {
                        body(static_cast<std::uint64_t>(i));
                      }
                    });
}

TEST(Invariants, DualInvolutionUpToIsolatedVertices) {
  for_each_seed([](std::uint64_t seed) {
    const Hypergraph h = instance(seed);
    const Hypergraph dd = dual(dual(h));

    // Expected: h with isolated vertices dropped (duality cannot
    // represent degree-0 vertices; edges are preserved verbatim).
    std::vector<bool> keep_vertex(h.num_vertices());
    for (index_t v = 0; v < h.num_vertices(); ++v) {
      keep_vertex[v] = h.vertex_degree(v) > 0;
    }
    const Hypergraph expected =
        induce(h, keep_vertex,
               std::vector<bool>(h.num_edges(), true))
            .hypergraph;
    EXPECT_TRUE(check::same_structure(dd, expected)) << "seed " << seed;
  });
}

TEST(Invariants, ReduceIsIdempotent) {
  for_each_seed([](std::uint64_t seed) {
    const Hypergraph h = instance(seed);
    const Hypergraph once = reduce(h).hypergraph;
    EXPECT_TRUE(is_reduced(once)) << "seed " << seed;
    const Hypergraph twice = reduce(once).hypergraph;
    EXPECT_TRUE(check::same_structure(once, twice)) << "seed " << seed;
  });
}

TEST(Invariants, CoresAreNested) {
  for_each_seed([](std::uint64_t seed) {
    const Hypergraph h = instance(seed);
    const HyperCoreResult d = core_decomposition(h);
    for (index_t k = 1; k <= d.max_core; ++k) {
      const auto outer = d.core_vertices(k);
      const auto inner = d.core_vertices(k + 1);
      EXPECT_TRUE(std::includes(outer.begin(), outer.end(), inner.begin(),
                                inner.end()))
          << "seed " << seed << " k " << k;
      // Level sizes must agree with the vertex-core array.
      EXPECT_EQ(static_cast<index_t>(outer.size()), d.level_vertices[k])
          << "seed " << seed << " k " << k;
    }
  });
}

TEST(Invariants, VertexCoreBoundedByDegreeAndRealized) {
  for_each_seed([](std::uint64_t seed) {
    const Hypergraph h = instance(seed);
    const HyperCoreResult d = core_decomposition(h);
    index_t observed_max = 0;
    for (index_t v = 0; v < h.num_vertices(); ++v) {
      EXPECT_LE(d.vertex_core[v], h.vertex_degree(v)) << "seed " << seed;
      observed_max = std::max(observed_max, d.vertex_core[v]);
    }
    // max_core is attained by some vertex (0 when no vertex survives).
    EXPECT_EQ(observed_max, d.max_core) << "seed " << seed;
  });
}

TEST(Invariants, ExtractedCoresSatisfyCoreConditions) {
  for_each_seed([](std::uint64_t seed) {
    const Hypergraph h = instance(seed);
    const HyperCoreResult d = core_decomposition(h);
    for (index_t k = 1; k <= d.max_core; ++k) {
      const SubHypergraph core = extract_core(h, d, k);
      EXPECT_TRUE(satisfies_core_conditions(core.hypergraph, k))
          << "seed " << seed << " k " << k;
    }
  });
}

TEST(Invariants, ReductionPreservesCoreDecomposition) {
  // The k-core is defined on the reduced hypergraph, so reducing first
  // must not change any surviving vertex's core number.
  for_each_seed([](std::uint64_t seed) {
    const Hypergraph h = instance(seed);
    const HyperCoreResult before = core_decomposition(h);
    const SubHypergraph reduced = reduce(h);
    const HyperCoreResult after = core_decomposition(reduced.hypergraph);
    EXPECT_EQ(before.max_core, after.max_core) << "seed " << seed;
    for (index_t v = 0; v < reduced.hypergraph.num_vertices(); ++v) {
      EXPECT_EQ(after.vertex_core[v],
                before.vertex_core[reduced.vertex_to_parent[v]])
          << "seed " << seed << " vertex " << v;
    }
  });
}

}  // namespace
}  // namespace hp::hyper
