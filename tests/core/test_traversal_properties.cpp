// Metric properties of hypergraph distances on random inputs: symmetry,
// triangle inequality, component consistency, and agreement between the
// all-pairs summary and per-source BFS.
#include <gtest/gtest.h>

#include "core/traversal.hpp"
#include "test_helpers.hpp"

namespace hp::hyper {
namespace {

class TraversalProperties : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(TraversalProperties, DistanceIsSymmetric) {
  Rng rng{GetParam()};
  const Hypergraph h = testing::random_hypergraph(rng, 22, 18, 5);
  for (index_t s = 0; s < 6; ++s) {
    const auto from_s = bfs_distances(h, s);
    for (index_t v = s + 1; v < 12 && v < h.num_vertices(); ++v) {
      const auto from_v = bfs_distances(h, v);
      EXPECT_EQ(from_s[v], from_v[s]) << s << " <-> " << v;
    }
  }
}

TEST_P(TraversalProperties, TriangleInequality) {
  Rng rng{GetParam() * 53};
  const Hypergraph h = testing::random_hypergraph(rng, 20, 16, 5);
  std::vector<std::vector<index_t>> dist;
  for (index_t v = 0; v < h.num_vertices(); ++v) {
    dist.push_back(bfs_distances(h, v));
  }
  for (index_t a = 0; a < h.num_vertices(); ++a) {
    for (index_t b = 0; b < h.num_vertices(); ++b) {
      for (index_t c = 0; c < h.num_vertices(); c += 3) {
        if (dist[a][b] == kInvalidIndex || dist[b][c] == kInvalidIndex) {
          continue;
        }
        ASSERT_NE(dist[a][c], kInvalidIndex);
        EXPECT_LE(dist[a][c], dist[a][b] + dist[b][c]);
      }
    }
  }
}

TEST_P(TraversalProperties, ReachabilityMatchesComponents) {
  Rng rng{GetParam() * 191};
  const Hypergraph h = testing::random_hypergraph(rng, 30, 12, 4);
  const HyperComponents comp = connected_components(h);
  for (index_t s = 0; s < 8 && s < h.num_vertices(); ++s) {
    const auto dist = bfs_distances(h, s);
    for (index_t v = 0; v < h.num_vertices(); ++v) {
      const bool reachable = dist[v] != kInvalidIndex;
      const bool same_component =
          comp.vertex_label[s] == comp.vertex_label[v];
      EXPECT_EQ(reachable, same_component) << s << " -> " << v;
    }
  }
}

TEST_P(TraversalProperties, SummaryAgreesWithPerSourceBfs) {
  Rng rng{GetParam() * 719};
  const Hypergraph h = testing::random_hypergraph(rng, 18, 14, 4);
  const HyperPathSummary summary = path_summary(h);
  count_t pairs = 0, total = 0;
  index_t diameter = 0;
  for (index_t s = 0; s < h.num_vertices(); ++s) {
    const auto dist = bfs_distances(h, s);
    for (index_t v = 0; v < h.num_vertices(); ++v) {
      if (v == s || dist[v] == kInvalidIndex) continue;
      ++pairs;
      total += dist[v];
      diameter = std::max(diameter, dist[v]);
    }
  }
  EXPECT_EQ(summary.connected_pairs, pairs);
  EXPECT_EQ(summary.diameter, diameter);
  if (pairs > 0) {
    EXPECT_DOUBLE_EQ(summary.average_length,
                     static_cast<double>(total) / pairs);
  }
}

TEST_P(TraversalProperties, ComponentCountsSumCorrectly) {
  Rng rng{GetParam() * 1009};
  const Hypergraph h = testing::random_hypergraph(rng, 40, 15, 4);
  const HyperComponents comp = connected_components(h);
  count_t vertex_sum = 0, edge_sum = 0;
  for (index_t c = 0; c < comp.count; ++c) {
    vertex_sum += comp.vertex_counts[c];
    edge_sum += comp.edge_counts[c];
  }
  EXPECT_EQ(vertex_sum, h.num_vertices());
  EXPECT_EQ(edge_sum, h.num_edges());
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraversalProperties,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace hp::hyper
