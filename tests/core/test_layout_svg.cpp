#include <gtest/gtest.h>

#include <cmath>

#include "core/kcore.hpp"
#include "core/layout.hpp"
#include "core/projection.hpp"
#include "core/svg.hpp"
#include "test_helpers.hpp"

namespace hp::hyper {
namespace {

TEST(ForceLayout, PositionsStayOnCanvas) {
  Rng rng{5};
  const Hypergraph h = testing::random_hypergraph(rng, 20, 15, 4);
  const graph::Graph b = bipartite_graph(h);
  LayoutParams params;
  params.iterations = 30;
  const auto pos = force_layout(b, params);
  ASSERT_EQ(pos.size(), b.num_vertices());
  for (const Point& p : pos) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, params.width);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, params.height);
  }
}

TEST(ForceLayout, DeterministicForSeed) {
  graph::GraphBuilder b{6};
  for (index_t i = 0; i + 1 < 6; ++i) b.add_edge(i, i + 1);
  const graph::Graph g = b.build();
  LayoutParams params;
  params.iterations = 25;
  const auto a = force_layout(g, params);
  const auto c = force_layout(g, params);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].x, c[i].x);
    EXPECT_DOUBLE_EQ(a[i].y, c[i].y);
  }
}

TEST(ForceLayout, ConnectedNodesEndUpCloserThanRandomPairs) {
  // A path graph: layout should place adjacent vertices closer on
  // average than the endpoints.
  graph::GraphBuilder b{10};
  for (index_t i = 0; i + 1 < 10; ++i) b.add_edge(i, i + 1);
  LayoutParams params;
  params.iterations = 150;
  const auto pos = force_layout(b.build(), params);
  auto dist = [&](index_t u, index_t v) {
    const double dx = pos[u].x - pos[v].x;
    const double dy = pos[u].y - pos[v].y;
    return std::sqrt(dx * dx + dy * dy);
  };
  double adjacent = 0.0;
  for (index_t i = 0; i + 1 < 10; ++i) adjacent += dist(i, i + 1);
  adjacent /= 9.0;
  EXPECT_LT(adjacent, dist(0, 9));
}

TEST(ForceLayout, TrivialGraphs) {
  EXPECT_TRUE(force_layout(graph::GraphBuilder{0}.build()).empty());
  EXPECT_EQ(force_layout(graph::GraphBuilder{1}.build()).size(), 1u);
}

TEST(FitToCanvas, NormalizesIntoMargins) {
  std::vector<Point> pts{{-50.0, 0.0}, {0.0, 500.0}, {200.0, 1000.0}};
  fit_to_canvas(pts, 100.0, 100.0, 10.0);
  for (const Point& p : pts) {
    EXPECT_GE(p.x, 10.0);
    EXPECT_LE(p.x, 90.0);
    EXPECT_GE(p.y, 10.0);
    EXPECT_LE(p.y, 90.0);
  }
  // Extremes hit the margins exactly.
  EXPECT_DOUBLE_EQ(pts[0].x, 10.0);
  EXPECT_DOUBLE_EQ(pts[2].x, 90.0);
}

TEST(FitToCanvas, RejectsOversizedMargin) {
  std::vector<Point> pts{{0.0, 0.0}};
  EXPECT_THROW(fit_to_canvas(pts, 10.0, 10.0, 6.0), InvalidInputError);
}

TEST(Svg, ContainsAllNodesAndLegend) {
  const Hypergraph h = testing::toy_hypergraph();
  const HyperCoreResult cores = core_decomposition(h);
  LayoutParams params;
  params.iterations = 20;
  const std::string svg =
      render_fig3_svg(h, cores.vertex_core, cores.edge_core, 1, params);
  // One circle per protein + 2 legend circles; one rect per complex +
  // background + 2 legend rects.
  std::size_t circles = 0, rects = 0, lines = 0;
  for (std::size_t i = 0; (i = svg.find("<circle", i)) != std::string::npos;
       ++i) {
    ++circles;
  }
  for (std::size_t i = 0; (i = svg.find("<rect", i)) != std::string::npos;
       ++i) {
    ++rects;
  }
  for (std::size_t i = 0; (i = svg.find("<line", i)) != std::string::npos;
       ++i) {
    ++lines;
  }
  EXPECT_EQ(circles, h.num_vertices() + 2u);
  EXPECT_EQ(rects, h.num_edges() + 3u);  // background + legend x2
  EXPECT_EQ(lines, h.num_pins());
  EXPECT_NE(svg.find("core complex"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
}

TEST(Svg, SizeMismatchThrows) {
  const Hypergraph h = testing::toy_hypergraph();
  const std::vector<Point> too_few(3);
  const std::vector<Fig3Class> classes(h.num_vertices() + h.num_edges(),
                                       Fig3Class::kProtein);
  EXPECT_THROW(to_svg(h, too_few, classes), InvalidInputError);
}

TEST(Svg, SaveToBadPathThrows) {
  EXPECT_THROW(save_svg("<svg/>", "/nonexistent_dir_hp/x.svg"),
               std::runtime_error);
}

}  // namespace
}  // namespace hp::hyper
