// Differential battery for the frontier peeling engine
// (core/peel/frontier.hpp).
//
// Contract under test: the frontier engines (lazy degree-bucket seeding
// sequentially, per-lane drop bags + atomic decrements in the bulk
// parallel peel) are drop-in replacements for the legacy
// scan-and-stamp loops. Same-discipline pairs -- frontier vs scan,
// sequential and parallel separately -- must be FULLY bit-identical
// (vertex_core, edge_core, in_reduced, levels, max_core); across
// disciplines the usual agreement contract applies (edge representative
// choice among identical residual sets may differ), checked against
// the naive set-comparison oracle as well.
//
// The 50-seed sweep runs the adversarial fuzz generator so every
// structural regime (nested chains, duplicate chains, near-cliques,
// power-law hubs, ...) exercises the bucket/bag plumbing; the pinned
// cases cover the classic frontier traps (empty input, all-duplicate
// edges, star hub, one giant edge). The suite name is wired into
// HP_PAR_SUITE_FILTER, so the whole file re-runs at HP_THREADS=1 and
// HP_THREADS=16 and under TSan in CI.
#include <gtest/gtest.h>

#include "check/generator.hpp"
#include "core/kcore.hpp"
#include "core/kcore_naive.hpp"
#include "core/kcore_parallel.hpp"
#include "test_helpers.hpp"

namespace hp::hyper {
namespace {

void expect_bit_identical(const HyperCoreResult& a, const HyperCoreResult& b,
                          const std::string& label) {
  EXPECT_EQ(a.max_core, b.max_core) << label;
  EXPECT_EQ(a.vertex_core, b.vertex_core) << label;
  EXPECT_EQ(a.edge_core, b.edge_core) << label;
  EXPECT_EQ(a.in_reduced, b.in_reduced) << label;
  EXPECT_EQ(a.level_vertices, b.level_vertices) << label;
  EXPECT_EQ(a.level_edges, b.level_edges) << label;
}

void expect_equivalent(const HyperCoreResult& a, const HyperCoreResult& b,
                       const std::string& label) {
  EXPECT_EQ(a.max_core, b.max_core) << label;
  EXPECT_EQ(a.vertex_core, b.vertex_core) << label;
  EXPECT_EQ(a.level_vertices, b.level_vertices) << label;
  EXPECT_EQ(a.level_edges, b.level_edges) << label;
}

/// The full cross-engine battery for one input.
void check_engines(const Hypergraph& h, const std::string& label) {
  PeelStats frontier_stats;
  const HyperCoreResult frontier = core_decomposition(h, &frontier_stats);
  const HyperCoreResult scan = core_decomposition_scan(h);
  expect_bit_identical(frontier, scan, label + ": frontier vs scan");

  PeelStats par_stats;
  const HyperCoreResult par_frontier =
      core_decomposition_parallel(h, 0, &par_stats);
  const HyperCoreResult par_scan = core_decomposition_parallel_scan(h);
  expect_bit_identical(par_frontier, par_scan,
                       label + ": par frontier vs par scan");

  expect_equivalent(frontier, par_frontier, label + ": seq vs par");
  expect_equivalent(frontier, core_decomposition_naive(h),
                    label + ": frontier vs naive");

  // The lazy engines' accounting invariant: every wasted entry was
  // pushed first.
  EXPECT_LE(frontier_stats.frontier_wasted, frontier_stats.frontier_pushes)
      << label;
  EXPECT_LE(par_stats.frontier_wasted, par_stats.frontier_pushes) << label;
  // Both engines fill the buckets once per vertex at minimum.
  if (h.num_vertices() > 0) {
    EXPECT_GE(frontier_stats.frontier_pushes, h.num_vertices()) << label;
    EXPECT_GE(par_stats.frontier_pushes, h.num_vertices()) << label;
  }
}

class FrontierPeel : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FrontierPeel, AdversarialShapeSweep) {
  // The fuzz generator's structural regimes (shape = seed % kNumShapes),
  // including the duplicate-chain reduction stressor.
  const Hypergraph h = check::generate(GetParam());
  check_engines(h, "fuzz seed " + std::to_string(GetParam()));
}

TEST_P(FrontierPeel, RandomSweep) {
  Rng rng{GetParam() * 0x9e3779b97f4a7c15ULL + 17};
  const Hypergraph h = testing::random_hypergraph(rng, 40, 70, 6);
  check_engines(h, "random seed " + std::to_string(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, FrontierPeel,
                         ::testing::Range(std::uint64_t{1},
                                          std::uint64_t{51}));

TEST(FrontierPeel, EmptyHypergraph) {
  check_engines(HypergraphBuilder{0}.build(), "empty");
}

TEST(FrontierPeel, VerticesWithoutEdges) {
  check_engines(HypergraphBuilder{7}.build(), "edgeless");
}

TEST(FrontierPeel, AllDuplicateEdges) {
  // Reduction collapses everything to one representative; level seeds
  // then drain almost the whole bucket fill at k=1.
  HypergraphBuilder b{5};
  for (int i = 0; i < 8; ++i) b.add_edge({0, 1, 2, 3, 4});
  check_engines(b.build(), "all-duplicates");
}

TEST(FrontierPeel, StarHub) {
  // One hub in every edge: deleting leaves cascades degree drops onto
  // the hub repeatedly -- the regime with maximal stale bucket entries.
  HypergraphBuilder b{11};
  for (index_t i = 1; i < 11; ++i) b.add_edge({0, i});
  check_engines(b.build(), "star");
}

TEST(FrontierPeel, SingleGiantEdge) {
  HypergraphBuilder b{12};
  b.add_edge({0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11});
  check_engines(b.build(), "giant edge");
}

TEST(FrontierPeel, DuplicateChain) {
  // The quadratic-fixpoint stressor: nested prefixes, each duplicated.
  HypergraphBuilder b{6};
  for (index_t take = 1; take <= 6; ++take) {
    const std::vector<index_t> prefix = [&] {
      std::vector<index_t> p;
      for (index_t v = 0; v < take; ++v) p.push_back(v);
      return p;
    }();
    b.add_edge(prefix);
    b.add_edge(prefix);
    b.add_edge(prefix);
  }
  check_engines(b.build(), "duplicate chain");
}

TEST(FrontierPeel, PaperToy) {
  check_engines(testing::toy_hypergraph(), "toy");
}

}  // namespace
}  // namespace hp::hyper
