#include "core/pajek.hpp"

#include <gtest/gtest.h>

#include "core/kcore.hpp"
#include "test_helpers.hpp"

namespace hp::hyper {
namespace {

TEST(Pajek, BipartiteStructure) {
  HypergraphBuilder b{3};
  b.add_edge({0, 1});
  b.add_edge({1, 2});
  const std::string net = to_pajek_bipartite(b.build());
  // Two-mode header: 5 nodes total, 3 in the first mode.
  EXPECT_NE(net.find("*Vertices 5 3"), std::string::npos);
  EXPECT_NE(net.find("*Edges"), std::string::npos);
  // Edge lines are 1-based: vertex 1 -> edge node 4.
  EXPECT_NE(net.find("1 4"), std::string::npos);
  EXPECT_NE(net.find("3 5"), std::string::npos);
  // Generic labels.
  EXPECT_NE(net.find("\"v0\""), std::string::npos);
  EXPECT_NE(net.find("\"f1\""), std::string::npos);
}

TEST(Pajek, CustomLabelsAndQuoting) {
  HypergraphBuilder b{2};
  b.add_edge({0, 1});
  const std::string net = to_pajek_bipartite(
      b.build(), {"ADH1", "has\"quote"}, {"Arp2/3"});
  EXPECT_NE(net.find("\"ADH1\""), std::string::npos);
  EXPECT_NE(net.find("\"Arp2/3\""), std::string::npos);
  // Embedded quotes are replaced, not emitted raw.
  EXPECT_EQ(net.find("has\"quote"), std::string::npos);
  EXPECT_NE(net.find("has'quote"), std::string::npos);
}

TEST(Pajek, LabelCountMismatchThrows) {
  HypergraphBuilder b{2};
  b.add_edge({0, 1});
  EXPECT_THROW(to_pajek_bipartite(b.build(), {"only-one-label"}, {}),
               InvalidInputError);
}

TEST(Pajek, PartitionFormat) {
  const std::string clu = to_pajek_partition(
      {Fig3Class::kProtein, Fig3Class::kCoreProtein, Fig3Class::kComplex,
       Fig3Class::kCoreComplex});
  EXPECT_EQ(clu, "*Vertices 4\n0\n1\n2\n3\n");
}

TEST(Pajek, Fig3ClassesMatchCoreMembership) {
  const Hypergraph h = testing::toy_hypergraph();
  const HyperCoreResult cores = core_decomposition(h);
  const auto classes =
      fig3_classes(h, cores.vertex_core, cores.edge_core, 1);
  ASSERT_EQ(classes.size(), h.num_vertices() + h.num_edges());
  for (index_t v = 0; v < h.num_vertices(); ++v) {
    const bool in_core = cores.vertex_core[v] >= 1;
    EXPECT_EQ(classes[v] == Fig3Class::kCoreProtein, in_core);
  }
  for (index_t e = 0; e < h.num_edges(); ++e) {
    const bool in_core = cores.edge_core[e] >= 1;
    EXPECT_EQ(classes[h.num_vertices() + e] == Fig3Class::kCoreComplex,
              in_core);
  }
}

TEST(Pajek, GraphExport) {
  graph::GraphBuilder b{3};
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  const std::string net = to_pajek_graph(b.build(), {"a", "b", "c"});
  EXPECT_NE(net.find("*Vertices 3"), std::string::npos);
  EXPECT_NE(net.find("1 2"), std::string::npos);
  EXPECT_NE(net.find("2 3"), std::string::npos);
  EXPECT_EQ(net.find("2 1\n"), std::string::npos);  // each edge once
}

TEST(Pajek, SaveToBadPathThrows) {
  EXPECT_THROW(save_pajek("x", "/nonexistent_dir_hp/a.net"),
               std::runtime_error);
}

TEST(Pajek, EdgeCountMatchesPins) {
  Rng rng{8};
  const Hypergraph h = testing::random_hypergraph(rng, 20, 15, 5);
  const std::string net = to_pajek_bipartite(h);
  // Count lines after "*Edges".
  const auto pos = net.find("*Edges\n");
  ASSERT_NE(pos, std::string::npos);
  count_t lines = 0;
  for (std::size_t i = pos + 7; i < net.size(); ++i) {
    if (net[i] == '\n') ++lines;
  }
  EXPECT_EQ(lines, h.num_pins());
}

}  // namespace
}  // namespace hp::hyper
