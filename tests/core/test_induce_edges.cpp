// Edge cases of induce(): identity masks, empty masks, and edges that
// become empty when their vertices are masked out.
#include <gtest/gtest.h>

#include <vector>

#include "core/hypergraph.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace hp::hyper {
namespace {

std::vector<std::vector<index_t>> edge_lists(const Hypergraph& h) {
  std::vector<std::vector<index_t>> out;
  for (index_t e = 0; e < h.num_edges(); ++e) {
    const auto members = h.vertices_of(e);
    out.emplace_back(members.begin(), members.end());
  }
  return out;
}

TEST(InduceEdgesTest, AllTrueMasksAreIdentity) {
  const Hypergraph h = testing::toy_hypergraph();
  const SubHypergraph sub =
      induce(h, std::vector<bool>(h.num_vertices(), true),
             std::vector<bool>(h.num_edges(), true));

  ASSERT_EQ(sub.hypergraph.num_vertices(), h.num_vertices());
  ASSERT_EQ(sub.hypergraph.num_edges(), h.num_edges());
  EXPECT_EQ(sub.hypergraph.num_pins(), h.num_pins());
  EXPECT_EQ(edge_lists(sub.hypergraph), edge_lists(h));
  for (index_t v = 0; v < h.num_vertices(); ++v) {
    EXPECT_EQ(sub.vertex_to_parent[v], v);
  }
  for (index_t e = 0; e < h.num_edges(); ++e) {
    EXPECT_EQ(sub.edge_to_parent[e], e);
  }
}

TEST(InduceEdgesTest, EmptyVertexMaskYieldsEmptyHypergraph) {
  const Hypergraph h = testing::toy_hypergraph();
  const SubHypergraph sub =
      induce(h, std::vector<bool>(h.num_vertices(), false),
             std::vector<bool>(h.num_edges(), true));

  EXPECT_EQ(sub.hypergraph.num_vertices(), 0u);
  EXPECT_EQ(sub.hypergraph.num_edges(), 0u);
  EXPECT_EQ(sub.hypergraph.num_pins(), 0u);
  EXPECT_TRUE(sub.vertex_to_parent.empty());
  EXPECT_TRUE(sub.edge_to_parent.empty());
}

TEST(InduceEdgesTest, EmptyEdgeMaskKeepsVerticesOnly) {
  const Hypergraph h = testing::toy_hypergraph();
  const SubHypergraph sub =
      induce(h, std::vector<bool>(h.num_vertices(), true),
             std::vector<bool>(h.num_edges(), false));

  EXPECT_EQ(sub.hypergraph.num_vertices(), h.num_vertices());
  EXPECT_EQ(sub.hypergraph.num_edges(), 0u);
  EXPECT_TRUE(sub.edge_to_parent.empty());
}

TEST(InduceEdgesTest, BothMasksFalseYieldEmptyHypergraph) {
  const Hypergraph h = testing::toy_hypergraph();
  const SubHypergraph sub =
      induce(h, std::vector<bool>(h.num_vertices(), false),
             std::vector<bool>(h.num_edges(), false));

  EXPECT_EQ(sub.hypergraph.num_vertices(), 0u);
  EXPECT_EQ(sub.hypergraph.num_edges(), 0u);
  EXPECT_EQ(sub.hypergraph.num_pins(), 0u);
  EXPECT_TRUE(sub.vertex_to_parent.empty());
  EXPECT_TRUE(sub.edge_to_parent.empty());
  validate(sub.hypergraph);
}

TEST(InduceEdgesTest, IsolatedVertexOnlyParent) {
  // A parent with vertices but no hyperedges at all: induction is pure
  // vertex renumbering and must not touch (empty) adjacency.
  const Hypergraph h = HypergraphBuilder{4}.build();
  std::vector<bool> keep_vertex{true, false, true, false};
  const SubHypergraph sub = induce(h, keep_vertex, {});

  EXPECT_EQ(sub.hypergraph.num_vertices(), 2u);
  EXPECT_EQ(sub.hypergraph.num_edges(), 0u);
  EXPECT_EQ(sub.hypergraph.num_pins(), 0u);
  EXPECT_EQ(sub.vertex_to_parent, (std::vector<index_t>{0, 2}));
  validate(sub.hypergraph);
}

TEST(InduceEdgesTest, EdgesEmptiedByVertexRemovalAreDropped) {
  // toy: e0 = {0,1,2,3}, e1 = {2,3,4}, e2 = {4,5}, e3 = {5},
  //      e4 = {0,1,2,3,6}. Removing vertices 4 and 5 empties e2 and e3.
  const Hypergraph h = testing::toy_hypergraph();
  std::vector<bool> keep_vertex(h.num_vertices(), true);
  keep_vertex[4] = false;
  keep_vertex[5] = false;
  const SubHypergraph sub =
      induce(h, keep_vertex, std::vector<bool>(h.num_edges(), true));

  // Surviving edges, in parent order: e0, e1 (restricted to {2,3}), e4.
  ASSERT_EQ(sub.edge_to_parent.size(), 3u);
  EXPECT_EQ(sub.edge_to_parent[0], 0u);
  EXPECT_EQ(sub.edge_to_parent[1], 1u);
  EXPECT_EQ(sub.edge_to_parent[2], 4u);

  // Kept vertices 0,1,2,3,6 are renumbered densely in parent order.
  ASSERT_EQ(sub.vertex_to_parent.size(), 5u);
  const std::vector<index_t> expect_vertices{0, 1, 2, 3, 6};
  EXPECT_EQ(sub.vertex_to_parent, expect_vertices);

  // e1 restricted to the mask is {2,3} -> new ids {2,3}.
  const auto lists = edge_lists(sub.hypergraph);
  EXPECT_EQ(lists[1], (std::vector<index_t>{2, 3}));
  // e4 keeps {0,1,2,3,6} -> {0,1,2,3,4}.
  EXPECT_EQ(lists[2], (std::vector<index_t>{0, 1, 2, 3, 4}));
}

TEST(InduceEdgesTest, MaskSizeMismatchThrows) {
  const Hypergraph h = testing::toy_hypergraph();
  EXPECT_THROW(induce(h, std::vector<bool>(h.num_vertices() + 1, true),
                      std::vector<bool>(h.num_edges(), true)),
               InvalidInputError);
  EXPECT_THROW(induce(h, std::vector<bool>(h.num_vertices(), true),
                      std::vector<bool>(h.num_edges() + 1, true)),
               InvalidInputError);
}

TEST(InduceEdgesTest, InducedRandomHypergraphsValidate) {
  Rng rng{20040426};
  for (int trial = 0; trial < 10; ++trial) {
    const Hypergraph h = testing::random_hypergraph(rng, 40, 25, 6);
    std::vector<bool> keep_vertex(h.num_vertices());
    std::vector<bool> keep_edge(h.num_edges());
    for (index_t v = 0; v < h.num_vertices(); ++v) {
      keep_vertex[v] = rng.uniform(2) == 0;
    }
    for (index_t e = 0; e < h.num_edges(); ++e) {
      keep_edge[e] = rng.uniform(2) == 0;
    }
    const SubHypergraph sub = induce(h, keep_vertex, keep_edge);
    validate(sub.hypergraph);
    // Every surviving edge maps to a kept parent edge and its members
    // are exactly the kept members of that parent edge.
    for (index_t e = 0; e < sub.hypergraph.num_edges(); ++e) {
      const index_t parent = sub.edge_to_parent[e];
      ASSERT_TRUE(keep_edge[parent]);
      std::vector<index_t> expect;
      for (index_t v : h.vertices_of(parent)) {
        if (keep_vertex[v]) expect.push_back(v);
      }
      std::vector<index_t> got;
      for (index_t v : sub.hypergraph.vertices_of(e)) {
        got.push_back(sub.vertex_to_parent[v]);
      }
      EXPECT_EQ(got, expect);
    }
  }
}

}  // namespace
}  // namespace hp::hyper
