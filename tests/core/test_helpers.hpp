// Shared helpers for the hypergraph test suites.
#pragma once

#include <vector>

#include "core/hypergraph.hpp"
#include "util/rng.hpp"

namespace hp::hyper::testing {

/// Random hypergraph: `num_edges` hyperedges, each with a uniform size in
/// [1, max_size], members drawn uniformly (deduplicated by the builder).
inline Hypergraph random_hypergraph(Rng& rng, index_t num_vertices,
                                    index_t num_edges, index_t max_size) {
  HypergraphBuilder builder{num_vertices};
  std::vector<index_t> members;
  for (index_t e = 0; e < num_edges; ++e) {
    const index_t size =
        1 + static_cast<index_t>(rng.uniform(max_size));
    members.clear();
    for (index_t i = 0; i < size; ++i) {
      members.push_back(static_cast<index_t>(rng.uniform(num_vertices)));
    }
    builder.add_edge(members);
  }
  return builder.build();
}

/// The paper-style toy: two overlapping "complexes" plus satellites.
///   e0 = {0,1,2,3}, e1 = {2,3,4}, e2 = {4,5}, e3 = {5}, e4 = {0,1,2,3,6}
/// e0 is contained in e4, so a reduction must drop e0.
inline Hypergraph toy_hypergraph() {
  HypergraphBuilder b{7};
  b.add_edge({0, 1, 2, 3});
  b.add_edge({2, 3, 4});
  b.add_edge({4, 5});
  b.add_edge({5});
  b.add_edge({0, 1, 2, 3, 6});
  return b.build();
}

}  // namespace hp::hyper::testing
