#include "core/cover.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/cover_pd.hpp"
#include "test_helpers.hpp"

namespace hp::hyper {
namespace {

TEST(GreedyCover, CoversEveryEdge) {
  Rng rng{1};
  for (int trial = 0; trial < 10; ++trial) {
    const Hypergraph h = testing::random_hypergraph(rng, 30, 40, 5);
    const CoverResult r = greedy_vertex_cover(h, unit_weights(h));
    EXPECT_TRUE(is_vertex_cover(h, r.vertices)) << trial;
  }
}

TEST(GreedyCover, HubVertexIsChosenFirst) {
  // Vertex 0 hits all edges; greedy must pick exactly it.
  HypergraphBuilder b{5};
  b.add_edge({0, 1});
  b.add_edge({0, 2});
  b.add_edge({0, 3});
  b.add_edge({0, 4});
  const Hypergraph h = b.build();
  const CoverResult r = greedy_vertex_cover(h, unit_weights(h));
  ASSERT_EQ(r.vertices.size(), 1u);
  EXPECT_EQ(r.vertices[0], 0u);
  EXPECT_DOUBLE_EQ(r.total_weight, 1.0);
  EXPECT_DOUBLE_EQ(r.average_degree, 4.0);
}

TEST(GreedyCover, WeightsChangeTheChoice) {
  // Same star, but vertex 0 is expensive: cover uses the leaves.
  HypergraphBuilder b{5};
  b.add_edge({0, 1});
  b.add_edge({0, 2});
  b.add_edge({0, 3});
  b.add_edge({0, 4});
  const Hypergraph h = b.build();
  std::vector<double> w{100.0, 1.0, 1.0, 1.0, 1.0};
  const CoverResult r = greedy_vertex_cover(h, w);
  EXPECT_EQ(r.vertices.size(), 4u);
  EXPECT_DOUBLE_EQ(r.total_weight, 4.0);
}

TEST(GreedyCover, DegreeSquaredWeightsLowerCoverDegree) {
  Rng rng{42};
  const Hypergraph h = testing::random_hypergraph(rng, 120, 120, 6);
  const CoverResult unit = greedy_vertex_cover(h, unit_weights(h));
  const CoverResult deg2 = greedy_vertex_cover(h, degree_squared_weights(h));
  EXPECT_TRUE(is_vertex_cover(h, deg2.vertices));
  // The paper's effect: degree^2 weighting drives the average cover
  // degree down (3.7 -> 1.14 on Cellzome) at the cost of more proteins.
  EXPECT_LT(deg2.average_degree, unit.average_degree);
  EXPECT_GE(deg2.vertices.size(), unit.vertices.size());
}

TEST(GreedyCover, EmptyHypergraphGivesEmptyCover) {
  const Hypergraph h = HypergraphBuilder{5}.build();
  const CoverResult r = greedy_vertex_cover(h, unit_weights(h));
  EXPECT_TRUE(r.vertices.empty());
  EXPECT_DOUBLE_EQ(r.total_weight, 0.0);
}

TEST(GreedyCover, SingletonEdgesForceTheirVertex) {
  HypergraphBuilder b{3};
  b.add_edge({0});
  b.add_edge({1});
  b.add_edge({0, 1, 2});
  const CoverResult r = greedy_vertex_cover(b.build(),
                                            unit_weights(b.build()));
  EXPECT_TRUE(is_vertex_cover(b.build(), r.vertices));
  EXPECT_LE(r.vertices.size(), 2u);
}

TEST(GreedyCover, RejectsBadWeights) {
  const Hypergraph h = testing::toy_hypergraph();
  EXPECT_THROW(greedy_vertex_cover(h, std::vector<double>(2, 1.0)),
               InvalidInputError);
  std::vector<double> neg(h.num_vertices(), 1.0);
  neg[0] = -1.0;
  EXPECT_THROW(greedy_vertex_cover(h, neg), InvalidInputError);
}

TEST(GreedyCover, WithinHarmonicFactorOfExactOptimum) {
  // The JCL guarantee: greedy <= H_m * OPT. Check on exhaustive
  // instances small enough for branch and bound.
  Rng rng{7};
  for (int trial = 0; trial < 12; ++trial) {
    const Hypergraph h = testing::random_hypergraph(rng, 12, 10, 4);
    const CoverResult greedy = greedy_vertex_cover(h, unit_weights(h));
    const ExactCoverResult exact =
        exact_vertex_cover(h, unit_weights(h));
    const double hm = harmonic(h.num_edges());
    EXPECT_LE(greedy.total_weight, exact.total_weight * hm + 1e-9)
        << "trial " << trial;
    EXPECT_GE(greedy.total_weight, exact.total_weight - 1e-9);
  }
}

TEST(GreedyCover, LowerBoundIsConsistent) {
  Rng rng{11};
  const Hypergraph h = testing::random_hypergraph(rng, 20, 25, 4);
  const CoverResult r = greedy_vertex_cover(h, unit_weights(h));
  EXPECT_LE(r.lower_bound, r.total_weight);
  EXPECT_GT(r.lower_bound, 0.0);
}

TEST(IsVertexCover, DetectsNonCovers) {
  const Hypergraph h = testing::toy_hypergraph();
  EXPECT_FALSE(is_vertex_cover(h, {}));
  EXPECT_FALSE(is_vertex_cover(h, {0}));  // misses e2 = {4,5} etc.
  EXPECT_TRUE(is_vertex_cover(h, {2, 4, 5}));
  EXPECT_THROW(is_vertex_cover(h, {99}), InvalidInputError);
}

TEST(Harmonic, KnownValues) {
  EXPECT_DOUBLE_EQ(harmonic(0), 0.0);
  EXPECT_DOUBLE_EQ(harmonic(1), 1.0);
  EXPECT_NEAR(harmonic(4), 1.0 + 0.5 + 1.0 / 3.0 + 0.25, 1e-12);
  EXPECT_NEAR(harmonic(1000), std::log(1000.0) + 0.5772, 0.01);
}

TEST(AverageDegree, Basics) {
  const Hypergraph h = testing::toy_hypergraph();
  EXPECT_DOUBLE_EQ(average_degree(h, {}), 0.0);
  EXPECT_DOUBLE_EQ(average_degree(h, {2}), 3.0);
  EXPECT_DOUBLE_EQ(average_degree(h, {2, 6}), 2.0);  // (3 + 1) / 2
}

}  // namespace
}  // namespace hp::hyper
