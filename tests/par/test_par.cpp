// Unit coverage for the shared work-stealing runtime (src/par/).
//
// Correctness tests run against *local* pools with an explicit lane
// count, so they exercise real concurrency even when the build machine
// (or HP_THREADS) pins the global pool to one lane. The regression
// tests at the bottom target the two bugs this runtime replaced:
// per-call thread spawning (oversubscription under nesting) and the
// process-global omp_set_num_threads mutation.
#include "par/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <fstream>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "check/generator.hpp"
#include "core/kcore.hpp"
#include "core/kcore_parallel.hpp"
#include "core/traversal.hpp"

namespace hp::par {
namespace {

TEST(ParseThreadCount, FallsBackOnInvalidText) {
  EXPECT_EQ(parse_thread_count(nullptr, 7), 7);
  EXPECT_EQ(parse_thread_count("", 7), 7);
  EXPECT_EQ(parse_thread_count("abc", 7), 7);
  EXPECT_EQ(parse_thread_count("0", 7), 7);
  EXPECT_EQ(parse_thread_count("-3", 7), 7);
  EXPECT_EQ(parse_thread_count("4x", 7), 7);   // trailing garbage
  EXPECT_EQ(parse_thread_count("1e2", 7), 7);  // not an integer literal
}

TEST(ParseThreadCount, AcceptsAndClampsValidValues) {
  EXPECT_EQ(parse_thread_count("1", 7), 1);
  EXPECT_EQ(parse_thread_count("4", 7), 4);
  EXPECT_EQ(parse_thread_count("16", 7), 16);
  // Values beyond the hardware count are honored (race stress on small
  // machines), but never past the kMaxThreads backstop.
  EXPECT_EQ(parse_thread_count("999999", 7), kMaxThreads);
}

TEST(ParseThreadCount, ConfigurationAlwaysYieldsValidPoolSize) {
  EXPECT_GE(hardware_threads(), 1);
  const int configured = configured_threads();
  EXPECT_GE(configured, 1);
  EXPECT_LE(configured, kMaxThreads);
}

TEST(ThreadPoolTest, GlobalPoolIsASingleton) {
  EXPECT_EQ(&ThreadPool::global(), &ThreadPool::global());
  EXPECT_GE(ThreadPool::global().thread_count(), 1);
}

TEST(ThreadPoolTest, SerialPoolSpawnsNoWorkers) {
  ThreadPool pool{1};
  EXPECT_EQ(pool.thread_count(), 1);
  EXPECT_EQ(pool.worker_count(), 0);
}

TEST(ThreadPoolTest, ClampsConstructorArgument) {
  ThreadPool pool{0};
  EXPECT_EQ(pool.thread_count(), 1);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool{4};
  constexpr index_t n = 10'000;
  std::vector<int> hits(n, 0);
  parallel_for(
      index_t{0}, n, /*grain=*/64,
      [&](index_t begin, index_t end, int lane) {
        ASSERT_GE(lane, 0);
        ASSERT_LT(lane, pool.thread_count());
        for (index_t i = begin; i < end; ++i) ++hits[i];
      },
      pool);
  for (index_t i = 0; i < n; ++i) ASSERT_EQ(hits[i], 1) << "index " << i;
}

TEST(ParallelFor, EmptyRangeNeverInvokesBody) {
  ThreadPool pool{4};
  std::atomic<int> calls{0};
  parallel_for(
      index_t{5}, index_t{5}, /*grain=*/1,
      [&](index_t, index_t, int) { calls.fetch_add(1); }, pool);
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelFor, GrainLargerThanRangeRunsOneInlineChunk) {
  ThreadPool pool{4};
  const std::thread::id caller = std::this_thread::get_id();
  int calls = 0;
  parallel_for(
      index_t{0}, index_t{10}, /*grain=*/1'000,
      [&](index_t begin, index_t end, int lane) {
        ++calls;
        EXPECT_EQ(begin, 0u);
        EXPECT_EQ(end, 10u);
        EXPECT_EQ(lane, 0);
        EXPECT_EQ(std::this_thread::get_id(), caller);
      },
      pool);
  EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, FirstExceptionPropagatesToCaller) {
  ThreadPool pool{4};
  EXPECT_THROW(
      parallel_for(
          index_t{0}, index_t{1'000}, /*grain=*/1,
          [&](index_t begin, index_t, int) {
            if (begin == 500) throw std::runtime_error{"chunk 500"};
          },
          pool),
      std::runtime_error);
}

TEST(ParallelReduce, SumMatchesClosedFormOnAnyLaneCount) {
  constexpr index_t n = 5'000;
  const std::uint64_t expected =
      static_cast<std::uint64_t>(n) * (n - 1) / 2;
  for (int lanes : {1, 2, 4}) {
    ThreadPool pool{lanes};
    const std::uint64_t sum = parallel_reduce(
        index_t{0}, n, /*grain=*/33, std::uint64_t{0},
        [](index_t begin, index_t end) {
          std::uint64_t s = 0;
          for (index_t i = begin; i < end; ++i) s += i;
          return s;
        },
        [](std::uint64_t a, std::uint64_t b) { return a + b; }, pool);
    EXPECT_EQ(sum, expected) << "lanes " << lanes;
  }
}

TEST(TaskGroupTest, RunsEveryTaskBeforeWaitReturns) {
  ThreadPool pool{4};
  std::atomic<int> done{0};
  TaskGroup group{pool};
  for (int i = 0; i < 64; ++i) {
    group.run([&done] { done.fetch_add(1, std::memory_order_relaxed); });
  }
  group.wait();
  EXPECT_EQ(done.load(), 64);
}

TEST(TaskGroupTest, NestedGroupsShareThePoolWithoutDeadlock) {
  // Every task spawns a subgroup on the same pool; wait() must help
  // drain queued work instead of parking, or this deadlocks with more
  // groups than lanes.
  ThreadPool pool{2};
  std::atomic<int> leaves{0};
  TaskGroup outer{pool};
  for (int i = 0; i < 16; ++i) {
    outer.run([&] {
      TaskGroup inner{pool};
      for (int j = 0; j < 8; ++j) {
        inner.run(
            [&leaves] { leaves.fetch_add(1, std::memory_order_relaxed); });
      }
      inner.wait();
    });
  }
  outer.wait();
  EXPECT_EQ(leaves.load(), 16 * 8);
}

TEST(TaskGroupTest, ExceptionRethrownByWait) {
  ThreadPool pool{4};
  TaskGroup group{pool};
  group.run([] { throw std::runtime_error{"task failed"}; });
  EXPECT_THROW(group.wait(), std::runtime_error);
}

TEST(LaneLimitTest, OneForcesInlineOrderedExecution) {
  ThreadPool pool{4};
  const std::thread::id caller = std::this_thread::get_id();
  LaneLimit serial{1};
  EXPECT_EQ(LaneLimit::current(), 1);
  index_t last_end = 0;
  parallel_for(
      index_t{0}, index_t{100}, /*grain=*/10,
      [&](index_t begin, index_t end, int lane) {
        EXPECT_EQ(lane, 0);
        EXPECT_EQ(std::this_thread::get_id(), caller);
        EXPECT_EQ(begin, last_end);  // chunks arrive in order
        last_end = end;
      },
      pool);
  EXPECT_EQ(last_end, 100u);
}

TEST(LaneLimitTest, NestedLimitsComposeByMinimum) {
  EXPECT_EQ(LaneLimit::current(), 0);  // unlimited outside any scope
  {
    LaneLimit outer{4};
    EXPECT_EQ(LaneLimit::current(), 4);
    {
      LaneLimit inner{8};  // looser than the enclosing cap: no effect
      EXPECT_EQ(LaneLimit::current(), 4);
      LaneLimit tighter{2};
      EXPECT_EQ(LaneLimit::current(), 2);
    }
    EXPECT_EQ(LaneLimit::current(), 4);
  }
  EXPECT_EQ(LaneLimit::current(), 0);
}

TEST(PoolStatsTest, CountersAdvanceWithExecutedTasks) {
  ThreadPool pool{4};
  const PoolStats before = pool.stats();
  TaskGroup group{pool};
  for (int i = 0; i < 32; ++i) group.run([] {});
  group.wait();
  const PoolStats after = pool.stats();
  EXPECT_GE(after.tasks, before.tasks + 32);
}

#ifdef __linux__
int process_thread_count() {
  std::ifstream status{"/proc/self/status"};
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("Threads:", 0) == 0) {
      std::istringstream fields{line.substr(8)};
      int n = 0;
      fields >> n;
      return n;
    }
  }
  return -1;
}

TEST(Oversubscription, NestedParallelStormSpawnsNoExtraThreads) {
  // Regression for the bug this runtime replaced: each
  // core_decomposition_parallel call configured its own thread team, so
  // fuzz-smoke-style nesting (parallel sweep -> parallel kcore ->
  // parallel containment scan) multiplied the process thread count.
  // With the shared pool, the storm below must finish with exactly the
  // threads the pool was born with.
  ThreadPool& pool = ThreadPool::global();
  (void)pool.thread_count();  // force lazy construction before snapshot
  const int baseline = process_thread_count();
  ASSERT_GT(baseline, 0);

  TaskGroup group{pool};
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    group.run([seed] {
      const hyper::Hypergraph h = check::generate(seed);
      // Nested parallel regions inside an already-parallel task.
      const auto parallel = hyper::core_decomposition_parallel(h, 8);
      const auto serial = hyper::core_decomposition(h);
      EXPECT_EQ(parallel.vertex_core, serial.vertex_core)
          << "seed " << seed;
      (void)hyper::path_summary(h);
    });
  }
  group.wait();

  EXPECT_EQ(process_thread_count(), baseline)
      << "nested parallel regions grew the process thread count";
}
#endif  // __linux__

TEST(Determinism, KcoreAndPathsIdenticalAcrossLaneCaps) {
  // The HP_THREADS=1 vs =16 contract, exercised in-process via
  // LaneLimit: every cap must produce bit-identical results.
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const hyper::Hypergraph h = check::generate(seed);
    const auto serial_cores = hyper::core_decomposition(h);
    hyper::HyperPathSummary serial_paths;
    {
      LaneLimit one{1};
      serial_paths = hyper::path_summary(h);
    }
    for (int cap : {1, 2, 16}) {
      LaneLimit limit{cap};
      const auto cores = hyper::core_decomposition_parallel(h);
      EXPECT_EQ(cores.vertex_core, serial_cores.vertex_core)
          << "seed " << seed << " cap " << cap;
      EXPECT_EQ(cores.max_core, serial_cores.max_core)
          << "seed " << seed << " cap " << cap;
      const hyper::HyperPathSummary paths = hyper::path_summary(h);
      EXPECT_EQ(paths.diameter, serial_paths.diameter)
          << "seed " << seed << " cap " << cap;
      EXPECT_EQ(paths.connected_pairs, serial_paths.connected_pairs)
          << "seed " << seed << " cap " << cap;
      EXPECT_DOUBLE_EQ(paths.average_length, serial_paths.average_length)
          << "seed " << seed << " cap " << cap;
    }
  }
}

}  // namespace
}  // namespace hp::par
