// End-to-end tests of the analysis server over real Unix-domain
// sockets: query dispatch, context-cache hits, eviction, per-request
// timeouts, graceful shutdown draining in-flight work, protocol-error
// handling on a live connection, a multi-client concurrency storm, and
// the per-request trace tree.
//
// The storm and dispatch suites run three times in CI: plain, under
// HP_THREADS=1 (every request executes inline), and HP_THREADS=16
// (oversubscribed work stealing) via the Serve* entry in
// HP_PAR_SUITE_FILTER -- plus once under ThreadSanitizer.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "cli/commands.hpp"
#include "obs/json_check.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/client.hpp"
#include "serve/serve_commands.hpp"
#include "serve/server.hpp"

namespace hp::serve {
namespace {

class ServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir();
    data_a_ = dir_ + "/serve_a.tsv";
    data_b_ = dir_ + "/serve_b.tsv";
    std::ofstream a(data_a_);
    a << "Arp23\tARP2\tARP3\tARC15\n"
      << "SAGA\tGCN5\tADA2\tSPT7\tARP2\n"
      << "ADA\tGCN5\tADA2\n";
    std::ofstream b(data_b_);
    b << "CxA\tP1\tP2\tP3\n"
      << "CxB\tP2\tP4\n";
  }

  /// A running server on a fresh Unix socket. (TempDir paths stay well
  /// under the 107-byte sockaddr_un limit.)
  ServerOptions options(const char* name) {
    ServerOptions opts;
    opts.endpoint = parse_endpoint(dir_ + "/" + name + ".sock");
    return opts;
  }

  std::string dir_, data_a_, data_b_;
};

TEST_F(ServeTest, QueryMissThenHitSameOutput) {
  Server server{options("hit")};
  server.start();
  Client client{server.endpoint()};

  const proto::Response cold = client.query("stats", data_a_);
  ASSERT_TRUE(cold.ok) << cold.error;
  EXPECT_EQ(cold.cache, "miss");
  EXPECT_NE(cold.output.find("|V| (vertices)"), std::string::npos);

  const proto::Response warm = client.query("stats", data_a_);
  ASSERT_TRUE(warm.ok) << warm.error;
  EXPECT_EQ(warm.cache, "hit");
  EXPECT_EQ(warm.output, cold.output);

  server.request_stop();
  server.wait();
  EXPECT_EQ(server.pool().stats().hits, 1u);
  EXPECT_EQ(server.pool().stats().misses, 1u);
}

TEST_F(ServeTest, ArgsReachTheQueryLayer) {
  Server server{options("args")};
  server.start();
  Client client{server.endpoint()};
  const proto::Response limited =
      client.query("core", data_a_, {{"limit", "1"}, {"k", "1"}});
  ASSERT_TRUE(limited.ok) << limited.error;
  EXPECT_NE(limited.output.find("..."), std::string::npos)
      << "limit=1 should elide the member list:\n" << limited.output;
}

TEST_F(ServeTest, EvictionUnderTinyBudget) {
  ServerOptions opts = options("evict");
  opts.cache_budget_bytes = 1;  // every second dataset evicts the first
  Server server{std::move(opts)};
  server.start();
  Client client{server.endpoint()};

  ASSERT_TRUE(client.query("stats", data_a_).ok);
  ASSERT_TRUE(client.query("stats", data_b_).ok);
  const proto::Response reload = client.query("stats", data_a_);
  ASSERT_TRUE(reload.ok);
  EXPECT_EQ(reload.cache, "miss");  // was evicted by data_b_

  const PoolStats stats = server.pool().stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GE(stats.evictions, 2u);
}

TEST_F(ServeTest, PerRequestTimeoutProducesErrorReply) {
  Server server{options("timeout")};
  server.start();
  Client client{server.endpoint()};

  proto::Request request;
  request.command = "sleep";
  request.args = {{"ms", "2000"}};
  request.timeout_ms = 30;
  const proto::Response response = client.call(std::move(request));
  EXPECT_FALSE(response.ok);
  EXPECT_NE(response.error.find("timeout"), std::string::npos)
      << response.error;

  // The connection survives a timed-out request.
  const proto::Response after = client.query("ping", "");
  EXPECT_TRUE(after.ok);
  EXPECT_EQ(after.output, "pong\n");
}

TEST_F(ServeTest, HugeTimeoutDoesNotOverflowIntoSpuriousTimeout) {
  // Regression: the deadline used to be computed as
  // start_ns + timeout_ms * 1'000'000 in uint64, which wraps for large
  // client-supplied values -- a huge timeout silently became a short
  // one. Both probes below are accepted by the protocol's integer-field
  // cap (2^53 - 1); the second one's nanosecond product wraps to about
  // 0.45 ms, which pre-fix timed the 50 ms sleep out spuriously.
  Server server{options("timeout_overflow")};
  server.start();
  Client client{server.endpoint()};

  const std::uint64_t timeouts_before =
      obs::counter("server.timeouts").value();
  for (const std::uint64_t timeout_ms :
       {std::uint64_t{9007199254740991ull},    // 2^53 - 1
        std::uint64_t{18446744073710ull}}) {   // * 1e6 wraps to ~0.45ms
    proto::Request request;
    request.command = "sleep";
    request.args = {{"ms", "50"}};
    request.timeout_ms = timeout_ms;
    const proto::Response response = client.call(std::move(request));
    EXPECT_TRUE(response.ok) << "timeout_ms=" << timeout_ms << ": "
                             << response.error;
  }
  EXPECT_EQ(obs::counter("server.timeouts").value(), timeouts_before);
}

TEST_F(ServeTest, ServerDefaultTimeoutApplies) {
  ServerOptions opts = options("timeout_default");
  opts.default_timeout_ms = 30;
  Server server{std::move(opts)};
  server.start();
  Client client{server.endpoint()};
  proto::Request request;
  request.command = "sleep";
  request.args = {{"ms", "2000"}};
  const proto::Response response = client.call(std::move(request));
  EXPECT_FALSE(response.ok);
  EXPECT_NE(response.error.find("timeout"), std::string::npos);
}

TEST_F(ServeTest, MalformedFrameGetsErrorReplyAndConnectionSurvives) {
  Server server{options("malformed")};
  server.start();
  Client client{server.endpoint()};

  const std::string reply = client.call_raw("{\"cmd\": \"stats\", nope}");
  const proto::Response parsed = proto::parse_response(reply);
  EXPECT_FALSE(parsed.ok);
  EXPECT_FALSE(parsed.has_id());
  EXPECT_FALSE(parsed.error.empty());

  const proto::Response after = client.query("ping", "");
  EXPECT_TRUE(after.ok);
}

TEST_F(ServeTest, UnknownCommandAndMissingPathAreErrors) {
  Server server{options("unknown")};
  server.start();
  Client client{server.endpoint()};
  const proto::Response unknown = client.query("frobnicate", "");
  EXPECT_FALSE(unknown.ok);
  EXPECT_NE(unknown.error.find("unknown command"), std::string::npos);

  const proto::Response no_path = client.query("stats", "");
  EXPECT_FALSE(no_path.ok);
  EXPECT_NE(no_path.error.find("path"), std::string::npos);

  const proto::Response bad_file =
      client.query("stats", dir_ + "/missing.tsv");
  EXPECT_FALSE(bad_file.ok);
}

TEST_F(ServeTest, ShutdownCommandStopsTheServer) {
  Server server{options("shutdown")};
  server.start();
  Client client{server.endpoint()};
  const proto::Response response = client.shutdown();
  EXPECT_TRUE(response.ok);
  EXPECT_EQ(response.output, "stopping\n");
  server.wait();  // returns promptly: the command triggered stop
  EXPECT_TRUE(server.stopping());
}

TEST_F(ServeTest, GracefulShutdownDrainsInFlightRequests) {
  Server server{options("drain")};
  server.start();

  std::atomic<bool> got_reply{false};
  proto::Response slow_response;
  std::thread requester([&] {
    Client client{server.endpoint()};
    proto::Request request;
    request.command = "sleep";
    request.args = {{"ms", "200"}};
    slow_response = client.call(std::move(request));
    got_reply.store(true);
  });

  // Let the slow request reach the server, then stop while in flight.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  server.request_stop();
  server.wait();
  requester.join();

  // The in-flight request completed and its reply was delivered.
  ASSERT_TRUE(got_reply.load());
  EXPECT_TRUE(slow_response.ok) << slow_response.error;
  EXPECT_EQ(slow_response.output, "slept 200ms\n");
}

TEST_F(ServeTest, MultiClientConcurrencyStorm) {
  Server server{options("storm")};
  server.start();

  constexpr int kClients = 8;
  constexpr int kRequests = 25;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Client client{server.endpoint()};
      std::string expected_stats;
      for (int i = 0; i < kRequests; ++i) {
        const std::string& path = (c % 2 == 0) ? data_a_ : data_b_;
        proto::Response response;
        switch (i % 3) {
          case 0:
            response = client.query("stats", path);
            break;
          case 1:
            response = client.query("soverlap", path);
            break;
          default:
            response = client.query("ping", "");
            break;
        }
        if (!response.ok) {
          ++failures;
          continue;
        }
        // Repeated stats answers over one dataset must be identical.
        if (i % 3 == 0) {
          if (expected_stats.empty()) {
            expected_stats = response.output;
          } else if (response.output != expected_stats) {
            ++failures;
          }
        }
      }
    });
  }
  for (std::thread& thread : clients) thread.join();
  EXPECT_EQ(failures.load(), 0);

  const PoolStats stats = server.pool().stats();
  EXPECT_EQ(stats.misses, 2u);  // one load per dataset, stampede-safe
  EXPECT_GE(stats.hits, 2u * (kClients / 2) * (kRequests / 3) - 2u);
}

TEST_F(ServeTest, RequestTraceTreeIsSingleRooted) {
  Server server{options("trace")};  // never started: in-process handle()
  obs::reset_tracing();
  obs::set_tracing_enabled(true);

  for (int i = 0; i < 3; ++i) {
    proto::Request request;
    request.id = static_cast<std::uint64_t>(i);
    request.command = "stats";
    request.path = data_a_;
    const proto::Response response = server.handle(request);
    ASSERT_TRUE(response.ok) << response.error;
  }

  std::ostringstream trace;
  obs::write_chrome_trace(trace);
  obs::set_tracing_enabled(false);
  obs::reset_tracing();

  const obs::json::Value root = obs::json::parse(trace.str());
  const obs::TraceSummary summary = obs::summarize_trace(root);
  EXPECT_TRUE(summary.all_balanced());
  EXPECT_TRUE(summary.all_single_rooted());
  EXPECT_TRUE(summary.parent_integrity);

  // Each request is its own causal tree rooted at serve.request.
  std::size_t request_spans = 0;
  const obs::json::Value* events = root.find("traceEvents");
  ASSERT_NE(events, nullptr);
  for (const obs::json::Value& event : events->array) {
    const obs::json::Value* ph = event.find("ph");
    const obs::json::Value* name = event.find("name");
    if (ph != nullptr && ph->string == "B" && name != nullptr &&
        name->string == "serve.request") {
      ++request_spans;
    }
  }
  EXPECT_EQ(request_spans, 3u);
  EXPECT_GE(summary.trees.size(), 3u);
}

TEST_F(ServeTest, UsageListsRegisteredServeCommands) {
  // register_cli_commands is idempotent (replace-on-re-register), so
  // the test can call it even when another test already did.
  serve::register_cli_commands();
  const std::string text = cli::usage();
  EXPECT_NE(text.find("serve --socket"), std::string::npos);
  EXPECT_NE(text.find("query --socket"), std::string::npos);
}

}  // namespace
}  // namespace hp::serve
