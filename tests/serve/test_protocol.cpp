// Wire-protocol unit tests (serve/protocol.hpp): parse/format round
// trips, field validation, and the fuzz oracle's own battery on fixed
// seeds. The hostile-input sweep runs continuously in fuzz_smoke; this
// file pins the named rules.
#include <gtest/gtest.h>

#include "check/protocol_fuzz.hpp"
#include "serve/protocol.hpp"
#include "util/common.hpp"
#include "util/rng.hpp"

namespace hp::serve::proto {
namespace {

TEST(Protocol, ParsesFullRequest) {
  const Request r = parse_request(
      "{\"id\": 7, \"cmd\": \"core\", \"path\": \"d.hyper\", "
      "\"args\": {\"k\": 3, \"peel-stats\": true, \"out\": \"x.hyper\"}, "
      "\"timeout_ms\": 250}");
  EXPECT_EQ(r.id, 7u);
  EXPECT_TRUE(r.has_id());
  EXPECT_EQ(r.command, "core");
  EXPECT_EQ(r.path, "d.hyper");
  ASSERT_EQ(r.args.size(), 3u);
  // Wire order preserved; scalar values normalized to strings.
  EXPECT_EQ(r.args[0], (std::pair<std::string, std::string>{"k", "3"}));
  EXPECT_EQ(r.args[1],
            (std::pair<std::string, std::string>{"peel-stats", "true"}));
  EXPECT_EQ(r.args[2],
            (std::pair<std::string, std::string>{"out", "x.hyper"}));
  EXPECT_EQ(r.timeout_ms, 250u);
}

TEST(Protocol, MinimalRequestHasNoId) {
  const Request r = parse_request("{\"cmd\": \"ping\"}");
  EXPECT_FALSE(r.has_id());
  EXPECT_TRUE(r.path.empty());
  EXPECT_TRUE(r.args.empty());
  EXPECT_EQ(r.timeout_ms, 0u);
}

TEST(Protocol, RequestRoundTripPreservesEverything) {
  Request r;
  r.id = 42;
  r.command = "cover";
  r.path = "data with spaces \"quoted\".hyper";
  r.args = {{"weights", "deg2"}, {"multicover", "2"}, {"limit", "5"}};
  r.timeout_ms = 1000;
  const Request again = parse_request(format_request(r));
  EXPECT_EQ(again.id, r.id);
  EXPECT_EQ(again.command, r.command);
  EXPECT_EQ(again.path, r.path);
  EXPECT_EQ(again.args, r.args);
  EXPECT_EQ(again.timeout_ms, r.timeout_ms);
}

TEST(Protocol, ResponseRoundTripBothOutcomes) {
  Response ok;
  ok.id = 9;
  ok.ok = true;
  ok.output = "line one\nline two\ttabbed\n";
  ok.cache = "hit";
  ok.micros = 184;
  const Response ok2 = parse_response(format_response(ok));
  EXPECT_TRUE(ok2.ok);
  EXPECT_EQ(ok2.output, ok.output);
  EXPECT_EQ(ok2.cache, "hit");
  EXPECT_EQ(ok2.micros, 184u);

  Response err;
  err.ok = false;
  err.error = "no such file";
  const Response err2 = parse_response(format_response(err));
  EXPECT_FALSE(err2.ok);
  EXPECT_FALSE(err2.has_id());  // id serialized as null, parsed back as none
  EXPECT_EQ(err2.error, "no such file");
}

TEST(Protocol, FramesNeverContainRawNewlines) {
  Response r;
  r.ok = true;
  r.output = "a\nb\nc\n";
  EXPECT_EQ(format_response(r).find('\n'), std::string::npos);
}

TEST(Protocol, RejectsProtocolViolations) {
  EXPECT_THROW(parse_request(""), ParseError);
  EXPECT_THROW(parse_request("{}"), ParseError);
  EXPECT_THROW(parse_request("[\"cmd\"]"), ParseError);
  EXPECT_THROW(parse_request("{\"cmd\": \"Core\"}"), ParseError);
  EXPECT_THROW(parse_request("{\"cmd\": \"core\", \"id\": 1.5}"), ParseError);
  EXPECT_THROW(parse_request("{\"cmd\": \"core\", \"cmd\": \"core\"}"),
               ParseError);
  EXPECT_THROW(parse_request("{\"cmd\": \"core\", \"nope\": 1}"), ParseError);
  EXPECT_THROW(parse_response("{\"ok\": true, \"error\": \"x\"}"),
               ParseError);
  EXPECT_THROW(parse_response("{\"ok\": false}"), ParseError);
}

TEST(Protocol, RejectsHostileNestingWithoutCrashing) {
  std::string deep = "{\"cmd\": \"a\", \"args\": ";
  deep.append(100000, '[');
  EXPECT_THROW(parse_request(deep), ParseError);
}

TEST(Protocol, FormatRequestValidatesFields) {
  Request r;
  r.command = "BAD CMD";
  EXPECT_THROW(format_request(r), InvalidInputError);
  r.command = std::string(kMaxCommandLength + 1, 'a');
  EXPECT_THROW(format_request(r), InvalidInputError);
}

TEST(Protocol, FuzzOracleIsCleanOnFixedSeeds) {
  for (std::uint64_t seed : {1ull, 7ull, 99ull, 123456789ull}) {
    Rng rng{seed};
    const auto failures = check::check_protocol(rng, 64);
    for (const auto& failure : failures) {
      ADD_FAILURE() << "seed " << seed << ": " << failure.detail;
    }
  }
}

TEST(Protocol, GeneratedFramesAreValid) {
  Rng rng{2024};
  for (int i = 0; i < 200; ++i) {
    EXPECT_NO_THROW(parse_request(check::random_request_frame(rng)));
    EXPECT_NO_THROW(parse_response(check::random_response_frame(rng)));
  }
}

}  // namespace
}  // namespace hp::serve::proto
