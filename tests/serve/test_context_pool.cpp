// ContextPool accounting and eviction regressions (serve/context_pool).
//
// The load-bearing invariant: the bytes the pool charges for an entry
// are exactly the session's own ContextStats accounting (artifacts +
// owned + mapped hypergraph storage), re-measured at lease release --
// so the LRU budget operates on real footprints, not stale estimates,
// across insert, query-driven growth, eviction and re-load.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "cli/query.hpp"
#include "serve/context_pool.hpp"

namespace hp::serve {
namespace {

class ContextPoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir();
    path_a_ = dir_ + "/pool_a.tsv";
    path_b_ = dir_ + "/pool_b.tsv";
    std::ofstream a(path_a_);
    a << "Arp23\tARP2\tARP3\tARC15\n"
      << "SAGA\tGCN5\tADA2\tSPT7\tARP2\n"
      << "ADA\tGCN5\tADA2\n";
    std::ofstream b(path_b_);
    b << "CxA\tP1\tP2\tP3\n"
      << "CxB\tP2\tP4\n"
      << "CxC\tP1\tP4\tP5\tP6\n"
      << "CxD\tP6\tP7\n";
  }

  std::string dir_, path_a_, path_b_;
};

TEST_F(ContextPoolTest, HitMissAndSharedSessions) {
  ContextPool pool{std::size_t{1} << 30};
  {
    ContextPool::Lease first = pool.acquire(path_a_);
    EXPECT_FALSE(first.cache_hit());
    ContextPool::Lease second = pool.acquire(path_a_);
    EXPECT_TRUE(second.cache_hit());
    // Same underlying session: artifacts built through one lease are
    // visible through the other.
    EXPECT_EQ(&first.session(), &second.session());
  }
  const PoolStats stats = pool.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST_F(ContextPoolTest, CanonicalizationSharesEntries) {
  ContextPool pool{std::size_t{1} << 30};
  { ContextPool::Lease lease = pool.acquire(path_a_); }
  // A ./-prefixed spelling of the same file must hit the same entry.
  const std::string dotted =
      dir_ + "/./" + path_a_.substr(dir_.size() + 1);
  ContextPool::Lease again = pool.acquire(dotted);
  EXPECT_TRUE(again.cache_hit());
  EXPECT_EQ(pool.stats().entries, 1u);
}

TEST_F(ContextPoolTest, ChargedBytesTrackContextStatsExactly) {
  ContextPool pool{std::size_t{1} << 30};

  // Load both and grow one with real queries.
  {
    ContextPool::Lease lease = pool.acquire(path_a_);
    Args args{0, nullptr};
    std::ostringstream out;
    cli::run_query(lease.session(), "stats", args, out);
    cli::run_query(lease.session(), "soverlap", args, out);
  }
  { ContextPool::Lease lease = pool.acquire(path_b_); }

  // Every resident entry's charge equals the session's own accounting,
  // and the pool total is their sum.
  std::size_t expected_total = 0;
  for (const ChargedEntry& entry : pool.charged_entries()) {
    ContextPool::Lease lease = pool.acquire(entry.key);
    ASSERT_TRUE(lease.cache_hit()) << entry.key;
    const std::size_t measured = session_charge_bytes(lease.session());
    EXPECT_EQ(entry.bytes, measured) << entry.key;
    EXPECT_GT(measured, 0u) << entry.key;
    expected_total += measured;
  }
  EXPECT_EQ(pool.stats().charged_bytes, expected_total);
}

TEST_F(ContextPoolTest, QueriesGrowTheCharge) {
  ContextPool pool{std::size_t{1} << 30};
  std::size_t cold = 0;
  {
    ContextPool::Lease lease = pool.acquire(path_a_);
    cold = session_charge_bytes(lease.session());
  }
  {
    ContextPool::Lease lease = pool.acquire(path_a_);
    Args args{0, nullptr};
    std::ostringstream out;
    cli::run_query(lease.session(), "soverlap", args, out);
  }
  // The overlap table built during the query is charged at release.
  const std::vector<ChargedEntry> entries = pool.charged_entries();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_GT(entries[0].bytes, cold);
}

TEST_F(ContextPoolTest, EvictsLeastRecentlyUsedUnderBudget) {
  // A 1-byte budget forces eviction on every new key, but the newest
  // entry always survives (the pool never evicts below one entry).
  ContextPool pool{1};
  { ContextPool::Lease lease = pool.acquire(path_a_); }
  EXPECT_EQ(pool.stats().entries, 1u);
  { ContextPool::Lease lease = pool.acquire(path_b_); }

  const PoolStats stats = pool.stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(pool.charged_entries()[0].key, canonical_key(path_b_));

  // Re-loading the evicted key is a miss and re-charges from scratch.
  {
    ContextPool::Lease lease = pool.acquire(path_a_);
    EXPECT_FALSE(lease.cache_hit());
    ASSERT_EQ(pool.charged_entries().size(), 1u);
    EXPECT_EQ(session_charge_bytes(lease.session()),
              pool.charged_entries()[0].bytes);
  }
  EXPECT_EQ(pool.stats().misses, 3u);
  EXPECT_EQ(pool.stats().evictions, 2u);
}

TEST_F(ContextPoolTest, LeasedEntriesAreNeverEvicted) {
  ContextPool pool{1};
  ContextPool::Lease held = pool.acquire(path_a_);
  { ContextPool::Lease other = pool.acquire(path_b_); }
  // Both entries exceed the budget but A is pinned by the live lease
  // and B is the newest: nothing evictable.
  EXPECT_EQ(pool.stats().entries, 2u);
  // Releasing A makes it evictable (B is newer).
  { ContextPool::Lease drop = std::move(held); }
  ContextPool::Lease touch = pool.acquire(path_b_);
  EXPECT_TRUE(touch.cache_hit());
  EXPECT_EQ(pool.charged_entries().size(), 1u);
}

TEST_F(ContextPoolTest, LoadFailureLeavesNoEntry) {
  ContextPool pool{std::size_t{1} << 30};
  EXPECT_THROW(pool.acquire(dir_ + "/does_not_exist.tsv"), std::exception);
  EXPECT_EQ(pool.stats().entries, 0u);
  // The pool stays usable.
  ContextPool::Lease lease = pool.acquire(path_a_);
  EXPECT_FALSE(lease.cache_hit());
}

TEST_F(ContextPoolTest, ClearDropsIdleEntries) {
  ContextPool pool{std::size_t{1} << 30};
  { ContextPool::Lease lease = pool.acquire(path_a_); }
  { ContextPool::Lease lease = pool.acquire(path_b_); }
  pool.clear();
  EXPECT_EQ(pool.stats().entries, 0u);
  EXPECT_EQ(pool.stats().evictions, 2u);
}

}  // namespace
}  // namespace hp::serve
