// Golden parity: a warm server answer must be byte-identical to the
// one-shot CLI for every query command. The server reuses cached
// AnalysisContexts across requests, so any hidden state leaking between
// queries -- or any drift between cli::run and the serve dispatch path
// -- shows up here as a byte diff on a realistic surrogate dataset.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "cli/commands.hpp"
#include "serve/server.hpp"
#include "util/common.hpp"

namespace hp::serve {
namespace {

int run_cli(const std::vector<std::string>& argv, std::string* output) {
  std::vector<const char*> raw;
  raw.reserve(argv.size() + 1);
  raw.push_back("hyperproteome");
  for (const std::string& arg : argv) raw.push_back(arg.c_str());
  const Args args{static_cast<int>(raw.size()), raw.data()};
  std::ostringstream out;
  const int code = cli::run(args, out);
  *output = out.str();
  return code;
}

/// Drop the wall-clock lines ("core decomposition in 1.2ms", "core
/// decomposition time: ...") that legitimately differ between runs.
std::string strip_timing(const std::string& text) {
  std::istringstream in{text};
  std::string result, line;
  while (std::getline(in, line)) {
    if (line.find("core decomposition") != std::string::npos) continue;
    result += line;
    result += '\n';
  }
  return result;
}

class ServeGoldenTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // One calibrated surrogate for the whole suite; generation is
    // deterministic in --seed, so every test run sees the same dataset.
    static const std::string* dataset = [] {
      const std::string path = ::testing::TempDir() + "/golden.hyper";
      std::string output;
      const int code = run_cli(
          {"generate", path, "--seed=99", "--proteins=300"}, &output);
      HP_REQUIRE(code == 0, "surrogate generation failed");
      return new std::string{path};
    }();
    path_ = *dataset;
  }

  /// One-shot CLI vs warm server answer for one command; both outputs
  /// returned through the filter (identity for deterministic commands).
  void expect_parity(Server& server, const std::string& command,
                     const std::vector<std::string>& flags,
                     std::string (*filter)(const std::string&) = nullptr) {
    std::vector<std::string> argv{command, path_};
    argv.insert(argv.end(), flags.begin(), flags.end());
    std::string one_shot;
    ASSERT_EQ(run_cli(argv, &one_shot), 0) << command;

    proto::Request request;
    request.command = command;
    request.path = path_;
    for (const std::string& flag : flags) {
      // "--key=value" / "--key" wire form.
      const std::size_t eq = flag.find('=');
      const std::string key = flag.substr(2, eq - 2);
      request.args.emplace_back(
          key, eq == std::string::npos ? "true" : flag.substr(eq + 1));
    }
    const proto::Response response = server.handle(request);
    ASSERT_TRUE(response.ok) << command << ": " << response.error;

    const std::string expected =
        filter != nullptr ? filter(one_shot) : one_shot;
    const std::string actual =
        filter != nullptr ? filter(response.output) : response.output;
    EXPECT_EQ(actual, expected) << command << " drifted from one-shot CLI";
  }

  std::string path_;
};

TEST_F(ServeGoldenTest, WarmServerMatchesOneShotCliByteForByte) {
  ServerOptions opts;
  opts.endpoint = parse_endpoint(::testing::TempDir() + "/golden.sock");
  Server server{std::move(opts)};  // handle() in-process; never started

  // Run everything twice: the first pass answers from a cold context,
  // the second from a context warmed by *all* previous commands --
  // cached artifacts must not change any answer.
  for (int pass = 0; pass < 2; ++pass) {
    expect_parity(server, "stats", {"--paths"});
    expect_parity(server, "core", {"--k=2", "--peel-stats"},
                  &strip_timing);
    expect_parity(server, "cover", {"--weights=deg2", "--multicover=2"});
    expect_parity(server, "match", {"--limit=10"});
    expect_parity(server, "soverlap", {});
    expect_parity(server, "smallworld", {"--seed=7"});
    expect_parity(server, "report", {}, &strip_timing);
  }
  // Everything above shared one cached context.
  EXPECT_EQ(server.pool().stats().entries, 1u);
  EXPECT_EQ(server.pool().stats().misses, 1u);
}

TEST_F(ServeGoldenTest, ContextStatsFlagWorksThroughTheServer) {
  ServerOptions opts;
  opts.endpoint = parse_endpoint(::testing::TempDir() + "/golden_cs.sock");
  Server server{std::move(opts)};
  proto::Request request;
  request.command = "stats";
  request.path = path_;
  request.args = {{"context-stats", "true"}};
  const proto::Response response = server.handle(request);
  ASSERT_TRUE(response.ok) << response.error;
  EXPECT_NE(response.output.find("context artifact counters"),
            std::string::npos)
      << response.output;
}

}  // namespace
}  // namespace hp::serve
