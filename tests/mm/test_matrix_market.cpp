#include "mm/matrix_market.hpp"

#include <gtest/gtest.h>

#include <cstdio>

namespace hp::mm {
namespace {

constexpr const char* kGeneral =
    "%%MatrixMarket matrix coordinate real general\n"
    "% a comment\n"
    "3 4 5\n"
    "1 1 1.5\n"
    "1 2 -2.0\n"
    "2 3 3.25\n"
    "3 1 0.5\n"
    "3 4 1.0\n";

TEST(MatrixMarket, ParsesGeneralReal) {
  const CooMatrix m = parse_matrix_market(kGeneral);
  EXPECT_EQ(m.num_rows, 3u);
  EXPECT_EQ(m.num_cols, 4u);
  EXPECT_EQ(m.nnz_stored(), 5u);
  EXPECT_EQ(m.field, Field::kReal);
  EXPECT_EQ(m.symmetry, Symmetry::kGeneral);
  EXPECT_EQ(m.entries[0].row, 0u);  // converted to 0-based
  EXPECT_EQ(m.entries[0].col, 0u);
  EXPECT_DOUBLE_EQ(m.entries[1].value, -2.0);
  EXPECT_EQ(m.nnz_expanded(), 5u);
}

TEST(MatrixMarket, ParsesPatternSymmetric) {
  const CooMatrix m = parse_matrix_market(
      "%%MatrixMarket matrix coordinate pattern symmetric\n"
      "3 3 3\n"
      "1 1\n"
      "2 1\n"
      "3 2\n");
  EXPECT_EQ(m.field, Field::kPattern);
  EXPECT_EQ(m.symmetry, Symmetry::kSymmetric);
  EXPECT_EQ(m.nnz_stored(), 3u);
  // One diagonal + two off-diagonal entries.
  EXPECT_EQ(m.nnz_expanded(), 5u);
}

TEST(MatrixMarket, BannerIsCaseInsensitive) {
  const CooMatrix m = parse_matrix_market(
      "%%matrixmarket MATRIX Coordinate REAL General\n"
      "1 1 1\n"
      "1 1 2.0\n");
  EXPECT_EQ(m.num_rows, 1u);
}

TEST(MatrixMarket, RejectsMalformed) {
  EXPECT_THROW(parse_matrix_market(""), ParseError);
  EXPECT_THROW(parse_matrix_market("%%MatrixMarket matrix array real general\n"),
               ParseError);
  EXPECT_THROW(parse_matrix_market(
                   "%%MatrixMarket matrix coordinate complex general\n"
                   "1 1 1\n1 1 1 1\n"),
               ParseError);
  // Out-of-range index.
  EXPECT_THROW(parse_matrix_market(
                   "%%MatrixMarket matrix coordinate real general\n"
                   "2 2 1\n3 1 1.0\n"),
               ParseError);
  // Entry count mismatch.
  EXPECT_THROW(parse_matrix_market(
                   "%%MatrixMarket matrix coordinate real general\n"
                   "2 2 2\n1 1 1.0\n"),
               ParseError);
  // Upper-triangular entry in symmetric storage.
  EXPECT_THROW(parse_matrix_market(
                   "%%MatrixMarket matrix coordinate real symmetric\n"
                   "2 2 1\n1 2 1.0\n"),
               ParseError);
  // Pattern entry with a value.
  EXPECT_THROW(parse_matrix_market(
                   "%%MatrixMarket matrix coordinate pattern general\n"
                   "2 2 1\n1 2 9\n"),
               ParseError);
}

TEST(MatrixMarket, RoundTripGeneral) {
  const CooMatrix m = parse_matrix_market(kGeneral);
  const CooMatrix back = parse_matrix_market(format_matrix_market(m));
  EXPECT_EQ(back.num_rows, m.num_rows);
  EXPECT_EQ(back.nnz_stored(), m.nnz_stored());
  for (std::size_t i = 0; i < m.entries.size(); ++i) {
    EXPECT_EQ(back.entries[i].row, m.entries[i].row);
    EXPECT_EQ(back.entries[i].col, m.entries[i].col);
    EXPECT_DOUBLE_EQ(back.entries[i].value, m.entries[i].value);
  }
}

TEST(MatrixMarket, RoundTripPattern) {
  CooMatrix m;
  m.num_rows = 2;
  m.num_cols = 3;
  m.field = Field::kPattern;
  m.entries = {{0, 0, 1.0}, {1, 2, 1.0}};
  const CooMatrix back = parse_matrix_market(format_matrix_market(m));
  EXPECT_EQ(back.field, Field::kPattern);
  EXPECT_EQ(back.nnz_stored(), 2u);
}

TEST(MatrixMarket, FileRoundTrip) {
  const CooMatrix m = parse_matrix_market(kGeneral);
  const std::string path = ::testing::TempDir() + "/hp_mm_test.mtx";
  save_matrix_market(m, path);
  const CooMatrix back = load_matrix_market(path);
  EXPECT_EQ(back.nnz_stored(), m.nnz_stored());
  std::remove(path.c_str());
  EXPECT_THROW(load_matrix_market("/no/such/file.mtx"), std::runtime_error);
}

}  // namespace
}  // namespace hp::mm
