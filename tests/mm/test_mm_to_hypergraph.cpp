#include "mm/mm_to_hypergraph.hpp"

#include <gtest/gtest.h>

#include "core/hypergraph.hpp"

namespace hp::mm {
namespace {

TEST(RowNet, GeneralMatrix) {
  // Rows -> hyperedges over column vertices.
  const CooMatrix m = parse_matrix_market(
      "%%MatrixMarket matrix coordinate real general\n"
      "3 4 5\n"
      "1 1 1.0\n"
      "1 2 1.0\n"
      "2 3 1.0\n"
      "3 1 1.0\n"
      "3 4 1.0\n");
  const hyper::Hypergraph h = row_net_hypergraph(m);
  EXPECT_EQ(h.num_vertices(), 4u);
  EXPECT_EQ(h.num_edges(), 3u);
  EXPECT_EQ(h.num_pins(), 5u);
  EXPECT_TRUE(h.edge_contains(0, 0));
  EXPECT_TRUE(h.edge_contains(0, 1));
  EXPECT_TRUE(h.edge_contains(2, 3));
}

TEST(RowNet, SymmetricExpansion) {
  const CooMatrix m = parse_matrix_market(
      "%%MatrixMarket matrix coordinate pattern symmetric\n"
      "3 3 3\n"
      "1 1\n"
      "2 1\n"
      "3 2\n");
  const hyper::Hypergraph h = row_net_hypergraph(m);
  // Expanded rows: r0 = {0,1}, r1 = {0,2}... wait: entries (0,0), (1,0),
  // (2,1); expansion adds (0,1) and (1,2).
  EXPECT_EQ(h.num_edges(), 3u);
  EXPECT_TRUE(h.edge_contains(0, 0));
  EXPECT_TRUE(h.edge_contains(0, 1));  // from transpose of (1,0)
  EXPECT_TRUE(h.edge_contains(1, 0));
  EXPECT_TRUE(h.edge_contains(1, 2));
  EXPECT_TRUE(h.edge_contains(2, 1));
}

TEST(RowNet, EmptyRowsProduceNoEdges) {
  const CooMatrix m = parse_matrix_market(
      "%%MatrixMarket matrix coordinate real general\n"
      "3 2 1\n"
      "2 1 1.0\n");
  const hyper::Hypergraph h = row_net_hypergraph(m);
  EXPECT_EQ(h.num_edges(), 1u);
  EXPECT_EQ(h.num_vertices(), 2u);
}

TEST(RowNet, DuplicateEntriesMerged) {
  CooMatrix m;
  m.num_rows = 1;
  m.num_cols = 3;
  m.entries = {{0, 1, 1.0}, {0, 1, 2.0}, {0, 2, 1.0}};
  const hyper::Hypergraph h = row_net_hypergraph(m);
  EXPECT_EQ(h.edge_size(0), 2u);
}

TEST(ColumnNet, IsTransposedRowNet) {
  const CooMatrix m = parse_matrix_market(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 3 3\n"
      "1 1 1.0\n"
      "1 3 1.0\n"
      "2 2 1.0\n");
  const hyper::Hypergraph h = column_net_hypergraph(m);
  EXPECT_EQ(h.num_vertices(), 2u);  // rows become vertices
  EXPECT_EQ(h.num_edges(), 3u);     // columns become edges
  EXPECT_TRUE(h.edge_contains(0, 0));  // col 0 contains row 0
  EXPECT_TRUE(h.edge_contains(2, 0));  // col 2 contains row 0
  EXPECT_TRUE(h.edge_contains(1, 1));
}

TEST(RowNet, ValidatesStructurally) {
  CooMatrix m;
  m.num_rows = 5;
  m.num_cols = 5;
  m.symmetry = Symmetry::kSymmetric;
  m.entries = {{1, 0, 1.0}, {2, 2, 1.0}, {4, 3, 1.0}, {4, 4, 1.0}};
  EXPECT_NO_THROW(hyper::validate(row_net_hypergraph(m)));
}

}  // namespace
}  // namespace hp::mm
