#include "mm/mm_synth.hpp"

#include <gtest/gtest.h>

#include <set>

#include "mm/mm_to_hypergraph.hpp"

namespace hp::mm {
namespace {

TEST(SynthBanded, EntriesStayInBand) {
  Rng rng{1};
  const CooMatrix m = synthesize_banded(50, 3, 0.6, rng);
  EXPECT_EQ(m.num_rows, 50u);
  for (const Entry& e : m.entries) {
    const auto diff = e.row > e.col ? e.row - e.col : e.col - e.row;
    EXPECT_LE(diff, 3u);
  }
}

TEST(SynthBanded, DiagonalAlwaysPresent) {
  Rng rng{2};
  const CooMatrix m = synthesize_banded(20, 2, 0.0, rng);
  std::set<index_t> diag;
  for (const Entry& e : m.entries) {
    EXPECT_EQ(e.row, e.col);  // fill = 0: only the diagonal
    diag.insert(e.row);
  }
  EXPECT_EQ(diag.size(), 20u);
}

TEST(SynthFemBlocks, ProducesOverlappingBlocks) {
  Rng rng{3};
  const CooMatrix m = synthesize_fem_blocks(60, 8, 30, rng);
  EXPECT_GT(m.nnz_stored(), 60u * 8u / 2u);
  // No duplicate coordinates.
  std::set<std::pair<index_t, index_t>> seen;
  for (const Entry& e : m.entries) {
    EXPECT_TRUE(seen.insert({e.row, e.col}).second);
  }
}

TEST(SynthStiffness, SymmetricLowerTriangle) {
  Rng rng{4};
  const CooMatrix m = synthesize_stiffness(80, 4, 40, rng);
  EXPECT_EQ(m.symmetry, Symmetry::kSymmetric);
  for (const Entry& e : m.entries) {
    EXPECT_GE(e.row, e.col);
  }
}

TEST(SynthTokamak, BorderRowsAreDense) {
  Rng rng{5};
  const CooMatrix m = synthesize_tokamak(100, 2, 5, 0.5, rng);
  // Count entries in the border columns: should be substantial.
  count_t border_entries = 0;
  for (const Entry& e : m.entries) {
    if (e.col >= 95 || e.row >= 95) ++border_entries;
  }
  EXPECT_GT(border_entries, 100u);
}

TEST(SynthRandom, ExactNnz) {
  Rng rng{6};
  const CooMatrix m = synthesize_random(30, 40, 200, rng);
  EXPECT_EQ(m.nnz_stored(), 200u);
  std::set<std::pair<index_t, index_t>> seen;
  for (const Entry& e : m.entries) {
    EXPECT_LT(e.row, 30u);
    EXPECT_LT(e.col, 40u);
    EXPECT_TRUE(seen.insert({e.row, e.col}).second);
  }
}

TEST(SynthRandom, RejectsOverfull) {
  Rng rng{7};
  EXPECT_THROW(synthesize_random(3, 3, 10, rng), InvalidInputError);
}

TEST(SynthMatrices, ConvertAndValidateAsHypergraphs) {
  Rng rng{8};
  EXPECT_NO_THROW(
      hyper::validate(row_net_hypergraph(synthesize_banded(60, 4, 0.5, rng))));
  EXPECT_NO_THROW(hyper::validate(
      row_net_hypergraph(synthesize_fem_blocks(60, 6, 20, rng))));
  EXPECT_NO_THROW(hyper::validate(
      row_net_hypergraph(synthesize_stiffness(60, 4, 30, rng))));
  EXPECT_NO_THROW(hyper::validate(
      row_net_hypergraph(synthesize_tokamak(60, 3, 4, 0.5, rng))));
}

TEST(SynthMatrices, RoundTripThroughFormat) {
  Rng rng{9};
  const CooMatrix m = synthesize_stiffness(30, 3, 15, rng);
  const CooMatrix back = parse_matrix_market(format_matrix_market(m));
  EXPECT_EQ(back.symmetry, Symmetry::kSymmetric);
  EXPECT_EQ(back.nnz_stored(), m.nnz_stored());
}

TEST(SynthMatrices, DeterministicForSeed) {
  Rng a{10}, b{10};
  const CooMatrix m1 = synthesize_banded(40, 3, 0.5, a);
  const CooMatrix m2 = synthesize_banded(40, 3, 0.5, b);
  ASSERT_EQ(m1.nnz_stored(), m2.nnz_stored());
  for (std::size_t i = 0; i < m1.entries.size(); ++i) {
    EXPECT_EQ(m1.entries[i].row, m2.entries[i].row);
    EXPECT_EQ(m1.entries[i].col, m2.entries[i].col);
  }
}

}  // namespace
}  // namespace hp::mm
