#include "mm/csr.hpp"

#include <gtest/gtest.h>

#include "mm/mm_synth.hpp"
#include "util/rng.hpp"

namespace hp::mm {
namespace {

CooMatrix small_general() {
  CooMatrix m;
  m.num_rows = 3;
  m.num_cols = 4;
  m.entries = {{0, 0, 1.0}, {0, 2, 2.0}, {1, 3, 3.0}, {2, 0, 4.0},
               {2, 1, 5.0}};
  return m;
}

TEST(CsrMatrix, BuildsFromCoo) {
  const CsrMatrix csr{small_general()};
  EXPECT_EQ(csr.num_rows(), 3u);
  EXPECT_EQ(csr.num_cols(), 4u);
  EXPECT_EQ(csr.nnz(), 5u);
  const auto row0 = csr.row_columns(0);
  ASSERT_EQ(row0.size(), 2u);
  EXPECT_EQ(row0[0], 0u);
  EXPECT_EQ(row0[1], 2u);
  EXPECT_DOUBLE_EQ(csr.row_values(0)[1], 2.0);
}

TEST(CsrMatrix, SymmetricExpansion) {
  CooMatrix m;
  m.num_rows = 3;
  m.num_cols = 3;
  m.symmetry = Symmetry::kSymmetric;
  m.entries = {{0, 0, 1.0}, {1, 0, 2.0}, {2, 1, 3.0}};
  const CsrMatrix csr{m};
  EXPECT_EQ(csr.nnz(), 5u);  // diagonal + 2 mirrored pairs
  EXPECT_EQ(csr.row_size(0), 2u);  // (0,0) and mirrored (0,1)
  EXPECT_EQ(csr.row_columns(0)[1], 1u);
}

TEST(CsrMatrix, DuplicatesAreSummed) {
  CooMatrix m;
  m.num_rows = 1;
  m.num_cols = 2;
  m.entries = {{0, 1, 2.0}, {0, 1, 3.0}};
  const CsrMatrix csr{m};
  EXPECT_EQ(csr.nnz(), 1u);
  EXPECT_DOUBLE_EQ(csr.row_values(0)[0], 5.0);
}

TEST(CsrMatrix, MultiplyMatchesManualComputation) {
  const CsrMatrix csr{small_general()};
  const std::vector<double> x{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> y = csr.multiply(x);
  ASSERT_EQ(y.size(), 3u);
  EXPECT_DOUBLE_EQ(y[0], 1.0 * 1 + 2.0 * 3);   // 7
  EXPECT_DOUBLE_EQ(y[1], 3.0 * 4);             // 12
  EXPECT_DOUBLE_EQ(y[2], 4.0 * 1 + 5.0 * 2);   // 14
  EXPECT_THROW(csr.multiply({1.0}), InvalidInputError);
}

TEST(CsrMatrix, TransposeRoundTrip) {
  const CsrMatrix csr{small_general()};
  const CsrMatrix tt = csr.transpose().transpose();
  ASSERT_EQ(tt.num_rows(), csr.num_rows());
  ASSERT_EQ(tt.nnz(), csr.nnz());
  for (index_t r = 0; r < csr.num_rows(); ++r) {
    const auto a = csr.row_columns(r);
    const auto b = tt.row_columns(r);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i], b[i]);
      EXPECT_DOUBLE_EQ(csr.row_values(r)[i], tt.row_values(r)[i]);
    }
  }
}

TEST(CsrMatrix, TransposeIsAdjoint) {
  // <A x, y> == <x, A^T y> for random vectors.
  Rng rng{3};
  const CooMatrix m = synthesize_random(20, 15, 60, rng);
  const CsrMatrix a{m};
  const CsrMatrix at = a.transpose();
  std::vector<double> x(15), y(20);
  for (double& v : x) v = rng.uniform_real(-1.0, 1.0);
  for (double& v : y) v = rng.uniform_real(-1.0, 1.0);
  const auto ax = a.multiply(x);
  const auto aty = at.multiply(y);
  double lhs = 0.0, rhs = 0.0;
  for (index_t i = 0; i < 20; ++i) lhs += ax[i] * y[i];
  for (index_t i = 0; i < 15; ++i) rhs += x[i] * aty[i];
  EXPECT_NEAR(lhs, rhs, 1e-9);
}

TEST(MatrixStats, BandedMatrixDescriptors) {
  Rng rng{5};
  const CooMatrix m = synthesize_banded(100, 4, 1.0, rng);
  const MatrixStats s = matrix_stats(m);
  EXPECT_EQ(s.bandwidth, 4u);
  EXPECT_EQ(s.empty_rows, 0u);
  EXPECT_EQ(s.max_row_size, 9u);  // full band in the interior
  EXPECT_GT(s.profile, 0u);
}

TEST(MatrixStats, TokamakHasLargeBandwidth) {
  Rng rng{7};
  const CooMatrix banded = synthesize_banded(200, 3, 0.5, rng);
  const CooMatrix tokamak = synthesize_tokamak(200, 3, 5, 0.5, rng);
  EXPECT_GT(matrix_stats(tokamak).bandwidth,
            matrix_stats(banded).bandwidth);
}

TEST(MatrixStats, EmptyRowsCounted) {
  CooMatrix m;
  m.num_rows = 4;
  m.num_cols = 4;
  m.entries = {{0, 0, 1.0}, {2, 3, 1.0}};
  const MatrixStats s = matrix_stats(m);
  EXPECT_EQ(s.empty_rows, 2u);
  EXPECT_EQ(s.nnz, 2u);
}

}  // namespace
}  // namespace hp::mm
