// Malformed-input suite for the MatrixMarket parser: bad banners,
// truncated files, out-of-range / integer-wrapping indices, overflowing
// and negative counts, symmetry violations. Every case must raise a
// structured hp::ParseError -- never crash or allocate unboundedly.
// Run under HP_SANITIZE in CI.
#include <gtest/gtest.h>

#include <string>

#include "mm/matrix_market.hpp"

namespace hp::mm {
namespace {

const char kValid[] =
    "%%MatrixMarket matrix coordinate real general\n"
    "3 3 2\n"
    "1 2 1.5\n"
    "3 1 -2.0\n";

TEST(MmMalformed, EmptyAndTruncated) {
  EXPECT_THROW(parse_matrix_market(""), ParseError);
  EXPECT_THROW(parse_matrix_market("%%MatrixMarket matrix coordinate real "
                                   "general\n"),
               ParseError);  // missing size line
  EXPECT_THROW(
      parse_matrix_market("%%MatrixMarket matrix coordinate real general\n"
                          "3 3 2\n"
                          "1 2 1.5\n"),
      ParseError);  // one entry short
}

TEST(MmMalformed, BadBanner) {
  EXPECT_THROW(parse_matrix_market("%%MatrixMarket matrix array real "
                                   "general\n1 1 1\n1 1 1\n"),
               ParseError);
  EXPECT_THROW(parse_matrix_market("%%NotMatrixMarket matrix coordinate "
                                   "real general\n1 1 0\n"),
               ParseError);
  EXPECT_THROW(parse_matrix_market("%%MatrixMarket matrix coordinate "
                                   "complex general\n1 1 0\n"),
               ParseError);
  EXPECT_THROW(parse_matrix_market("%%MatrixMarket matrix coordinate real "
                                   "skew-symmetric\n1 1 0\n"),
               ParseError);
}

TEST(MmMalformed, BadSizeLine) {
  EXPECT_THROW(parse_matrix_market("%%MatrixMarket matrix coordinate real "
                                   "general\n3 3\n"),
               ParseError);
  EXPECT_THROW(parse_matrix_market("%%MatrixMarket matrix coordinate real "
                                   "general\nthree 3 0\n"),
               ParseError);
}

TEST(MmMalformed, NegativeAndOverflowingCounts) {
  EXPECT_THROW(parse_matrix_market("%%MatrixMarket matrix coordinate real "
                                   "general\n-3 3 0\n"),
               ParseError);
  EXPECT_THROW(parse_matrix_market("%%MatrixMarket matrix coordinate real "
                                   "general\n3 -3 0\n"),
               ParseError);
  EXPECT_THROW(parse_matrix_market("%%MatrixMarket matrix coordinate real "
                                   "general\n4294967296 3 0\n"),
               ParseError);
  // A negative or absurd nnz must fail cleanly; before the reserve cap a
  // tiny file declaring 10^14 entries was an allocation bomb.
  EXPECT_THROW(parse_matrix_market("%%MatrixMarket matrix coordinate real "
                                   "general\n3 3 -1\n"),
               ParseError);
  EXPECT_THROW(parse_matrix_market("%%MatrixMarket matrix coordinate real "
                                   "general\n3 3 99999999999999\n"),
               ParseError);  // count mismatch, after a bounded reserve
}

TEST(MmMalformed, IndexOutOfRangeAndWraparound) {
  EXPECT_THROW(parse_matrix_market("%%MatrixMarket matrix coordinate real "
                                   "general\n3 3 1\n4 1 1.0\n"),
               ParseError);
  EXPECT_THROW(parse_matrix_market("%%MatrixMarket matrix coordinate real "
                                   "general\n3 3 1\n0 1 1.0\n"),
               ParseError);  // ids are 1-based
  EXPECT_THROW(parse_matrix_market("%%MatrixMarket matrix coordinate real "
                                   "general\n3 3 1\n-2 1 1.0\n"),
               ParseError);
  // 2^32+1 wraps to 1 under a bare u32 cast; must be rejected.
  EXPECT_THROW(parse_matrix_market("%%MatrixMarket matrix coordinate real "
                                   "general\n3 3 1\n4294967297 1 1.0\n"),
               ParseError);
  EXPECT_THROW(parse_matrix_market("%%MatrixMarket matrix coordinate real "
                                   "general\n3 3 1\n1 4294967297 1.0\n"),
               ParseError);
}

TEST(MmMalformed, WrongEntryArity) {
  EXPECT_THROW(parse_matrix_market("%%MatrixMarket matrix coordinate real "
                                   "general\n3 3 1\n1 2\n"),
               ParseError);  // real needs a value
  EXPECT_THROW(parse_matrix_market("%%MatrixMarket matrix coordinate "
                                   "pattern general\n3 3 1\n1 2 1.0\n"),
               ParseError);  // pattern must not carry one
  EXPECT_THROW(parse_matrix_market("%%MatrixMarket matrix coordinate real "
                                   "general\n3 3 1\n1 2 x\n"),
               ParseError);
}

TEST(MmMalformed, UpperTriangularSymmetricEntry) {
  EXPECT_THROW(parse_matrix_market("%%MatrixMarket matrix coordinate real "
                                   "symmetric\n3 3 1\n1 2 1.0\n"),
               ParseError);
}

TEST(MmMalformed, EntryCountMismatchTooMany) {
  EXPECT_THROW(parse_matrix_market("%%MatrixMarket matrix coordinate real "
                                   "general\n3 3 1\n1 1 1.0\n2 2 2.0\n"),
               ParseError);
}

TEST(MmMalformed, ValidInputStillParses) {
  const CooMatrix m = parse_matrix_market(kValid);
  EXPECT_EQ(m.num_rows, 3u);
  EXPECT_EQ(m.num_cols, 3u);
  EXPECT_EQ(m.entries.size(), 2u);
}

}  // namespace
}  // namespace hp::mm
