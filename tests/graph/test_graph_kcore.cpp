#include "graph/graph_kcore.hpp"

#include <gtest/gtest.h>

#include "graph/graph_generators.hpp"
#include "util/rng.hpp"

namespace hp::graph {
namespace {

// The paper's Fig. 2 example: a graph whose maximum core is a 3-core,
// where the 2-core equals the 3-core. We use a K4 with pendant paths.
Graph fig2_like_graph() {
  GraphBuilder b{8};
  // K4 on {0,1,2,3} -> the 3-core.
  b.add_edge(0, 1);
  b.add_edge(0, 2);
  b.add_edge(0, 3);
  b.add_edge(1, 2);
  b.add_edge(1, 3);
  b.add_edge(2, 3);
  // Tree hanging off: degree-1 chain.
  b.add_edge(3, 4);
  b.add_edge(4, 5);
  b.add_edge(5, 6);
  b.add_edge(5, 7);
  return b.build();
}

TEST(GraphKCore, Fig2Example) {
  const CoreDecomposition d = core_decomposition(fig2_like_graph());
  EXPECT_EQ(d.max_core, 3u);
  const auto core3 = d.max_core_vertices();
  EXPECT_EQ(core3, (std::vector<index_t>{0, 1, 2, 3}));
  // Pendant vertices have core number 1.
  EXPECT_EQ(d.core[6], 1u);
  EXPECT_EQ(d.core[4], 1u);
}

TEST(GraphKCore, CliqueCore) {
  GraphBuilder b{6};
  for (index_t u = 0; u < 6; ++u) {
    for (index_t v = u + 1; v < 6; ++v) b.add_edge(u, v);
  }
  const CoreDecomposition d = core_decomposition(b.build());
  EXPECT_EQ(d.max_core, 5u);
  EXPECT_EQ(d.max_core_vertices().size(), 6u);
}

TEST(GraphKCore, CycleIsTwoCore) {
  GraphBuilder b{5};
  for (index_t i = 0; i < 5; ++i) b.add_edge(i, (i + 1) % 5);
  const CoreDecomposition d = core_decomposition(b.build());
  EXPECT_EQ(d.max_core, 2u);
  for (index_t v = 0; v < 5; ++v) EXPECT_EQ(d.core[v], 2u);
}

TEST(GraphKCore, TreeIsOneCore) {
  GraphBuilder b{7};
  for (index_t i = 1; i < 7; ++i) b.add_edge(i, (i - 1) / 2);
  const CoreDecomposition d = core_decomposition(b.build());
  EXPECT_EQ(d.max_core, 1u);
}

TEST(GraphKCore, EdgelessGraphHasCoreZero) {
  const CoreDecomposition d = core_decomposition(GraphBuilder{4}.build());
  EXPECT_EQ(d.max_core, 0u);
  EXPECT_TRUE(d.max_core_vertices().empty());
}

TEST(GraphKCore, KCoreVerticesFilter) {
  const CoreDecomposition d = core_decomposition(fig2_like_graph());
  EXPECT_EQ(k_core_vertices(d, 1).size(), 8u);
  EXPECT_EQ(k_core_vertices(d, 2).size(), 4u);
  EXPECT_EQ(k_core_vertices(d, 3).size(), 4u);  // 2-core == 3-core
  EXPECT_TRUE(k_core_vertices(d, 4).empty());
}

TEST(GraphKCore, CoreSubgraphMinDegreeInvariant) {
  // Property: within the k-core, every vertex has >= k neighbors that
  // are also in the k-core.
  Rng rng{13};
  const Graph g = generate_erdos_renyi(120, 600, rng);
  const CoreDecomposition d = core_decomposition(g);
  for (index_t k = 1; k <= d.max_core; ++k) {
    const auto members = k_core_vertices(d, k);
    ASSERT_FALSE(members.empty());
    std::vector<bool> in(g.num_vertices(), false);
    for (index_t v : members) in[v] = true;
    for (index_t v : members) {
      index_t inside = 0;
      for (index_t u : g.neighbors(v)) inside += in[u] ? 1 : 0;
      EXPECT_GE(inside, k) << "vertex " << v << " at level " << k;
    }
  }
}

class GraphKCoreRandomized : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GraphKCoreRandomized, MatchesNaiveReference) {
  Rng rng{GetParam()};
  const index_t n = 30 + static_cast<index_t>(rng.uniform(50));
  const count_t m = 40 + rng.uniform(200);
  const Graph g = generate_erdos_renyi(n, std::min<count_t>(m, static_cast<count_t>(n) * (n - 1) / 2), rng);
  const CoreDecomposition fast = core_decomposition(g);
  const CoreDecomposition naive = core_decomposition_naive(g);
  EXPECT_EQ(fast.max_core, naive.max_core);
  EXPECT_EQ(fast.core, naive.core);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphKCoreRandomized,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

}  // namespace
}  // namespace hp::graph
