#include "graph/graph_stats.hpp"

#include <gtest/gtest.h>

#include "graph/graph_generators.hpp"
#include "util/rng.hpp"

namespace hp::graph {
namespace {

Graph triangle_plus_pendant() {
  GraphBuilder b{4};
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 0);
  b.add_edge(2, 3);
  return b.build();
}

TEST(DegreeHistogram, Counts) {
  const Histogram h = degree_histogram(triangle_plus_pendant());
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.count(1), 1u);  // the pendant
  EXPECT_EQ(h.count(2), 2u);
  EXPECT_EQ(h.count(3), 1u);
}

TEST(Clustering, TriangleIsFullyClustered) {
  GraphBuilder b{3};
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 0);
  EXPECT_DOUBLE_EQ(average_clustering_coefficient(b.build()), 1.0);
  EXPECT_DOUBLE_EQ(transitivity(b.build()), 1.0);
}

TEST(Clustering, StarHasZeroClustering) {
  GraphBuilder b{5};
  for (index_t v = 1; v < 5; ++v) b.add_edge(0, v);
  EXPECT_DOUBLE_EQ(average_clustering_coefficient(b.build()), 0.0);
  EXPECT_DOUBLE_EQ(transitivity(b.build()), 0.0);
}

TEST(Clustering, MixedGraphValues) {
  const Graph g = triangle_plus_pendant();
  // Vertex 0: nbrs {1,2} linked -> 1; vertex 1: same -> 1;
  // vertex 2: nbrs {0,1,3}, one of three pairs linked -> 1/3;
  // vertex 3: degree 1 -> 0. Average = (1 + 1 + 1/3 + 0) / 4.
  EXPECT_NEAR(average_clustering_coefficient(g), (2.0 + 1.0 / 3.0) / 4.0,
              1e-12);
  // Wedges: v0:1, v1:1, v2:3 -> 5; closed: 3 (one per triangle corner).
  EXPECT_NEAR(transitivity(g), 3.0 / 5.0, 1e-12);
}

TEST(Clustering, EmptyGraph) {
  EXPECT_DOUBLE_EQ(average_clustering_coefficient(GraphBuilder{0}.build()),
                   0.0);
  EXPECT_DOUBLE_EQ(transitivity(GraphBuilder{0}.build()), 0.0);
}

TEST(DegreePowerLaw, BaGraphIsHeavyTailed) {
  Rng rng{31};
  const Graph g = generate_barabasi_albert(2000, 2, rng);
  const PowerLawFit fit = degree_power_law(g);
  // BA exponent is ~3 in theory; log-binning noise allows a wide band.
  EXPECT_GT(fit.gamma, 1.5);
  EXPECT_GT(fit.r_squared, 0.5);
}

TEST(Clustering, ErGraphHasLowClustering) {
  Rng rng{37};
  const Graph g = generate_erdos_renyi(300, 900, rng);
  // Expected clustering ~ p = 2m/(n(n-1)) ~ 0.02.
  EXPECT_LT(average_clustering_coefficient(g), 0.1);
}

}  // namespace
}  // namespace hp::graph
