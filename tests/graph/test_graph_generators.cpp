#include "graph/graph_generators.hpp"

#include <gtest/gtest.h>

#include "graph/graph_algos.hpp"
#include "graph/graph_stats.hpp"
#include "util/rng.hpp"

namespace hp::graph {
namespace {

TEST(ErdosRenyi, ExactEdgeCount) {
  Rng rng{1};
  const Graph g = generate_erdos_renyi(50, 200, rng);
  EXPECT_EQ(g.num_vertices(), 50u);
  EXPECT_EQ(g.num_edges(), 200u);
}

TEST(ErdosRenyi, CompleteGraphLimit) {
  Rng rng{2};
  const Graph g = generate_erdos_renyi(6, 15, rng);  // C(6,2)
  EXPECT_EQ(g.num_edges(), 15u);
  EXPECT_EQ(g.max_degree(), 5u);
}

TEST(ErdosRenyi, RejectsTooManyEdges) {
  Rng rng{3};
  EXPECT_THROW(generate_erdos_renyi(4, 7, rng), InvalidInputError);
}

TEST(ErdosRenyi, DeterministicForSeed) {
  Rng a{9}, b{9};
  const Graph g1 = generate_erdos_renyi(30, 60, a);
  const Graph g2 = generate_erdos_renyi(30, 60, b);
  for (index_t v = 0; v < 30; ++v) {
    EXPECT_EQ(g1.degree(v), g2.degree(v));
  }
}

TEST(BarabasiAlbert, SizeAndDegreeFloor) {
  Rng rng{5};
  const Graph g = generate_barabasi_albert(200, 3, rng);
  EXPECT_EQ(g.num_vertices(), 200u);
  // Every non-seed vertex attaches with 3 edges.
  for (index_t v = 4; v < 200; ++v) {
    EXPECT_GE(g.degree(v), 3u);
  }
}

TEST(BarabasiAlbert, ProducesSkewedDegrees) {
  Rng rng{7};
  const Graph g = generate_barabasi_albert(1000, 2, rng);
  // Hubs: max degree far above the mean (2 * m).
  EXPECT_GT(g.max_degree(), 20u);
}

TEST(BarabasiAlbert, RejectsBadParams) {
  Rng rng{1};
  EXPECT_THROW(generate_barabasi_albert(3, 0, rng), InvalidInputError);
  EXPECT_THROW(generate_barabasi_albert(3, 3, rng), InvalidInputError);
}

TEST(PowerLawWeights, MatchesTargetAverage) {
  const auto w = power_law_weights(1000, 2.5, 6.0);
  double sum = 0.0;
  for (double x : w) sum += x;
  EXPECT_NEAR(sum / 1000.0, 6.0, 1e-9);
  // Decreasing sequence.
  EXPECT_GT(w.front(), w.back());
}

TEST(PowerLawWeights, RejectsGammaAtMostTwo) {
  EXPECT_THROW(power_law_weights(10, 2.0, 3.0), InvalidInputError);
}

TEST(ChungLu, ApproximatesExpectedDegrees) {
  Rng rng{11};
  const auto w = power_law_weights(2000, 2.5, 8.0);
  const Graph g = generate_chung_lu(w, rng);
  const double mean_degree =
      2.0 * static_cast<double>(g.num_edges()) / g.num_vertices();
  EXPECT_NEAR(mean_degree, 8.0, 1.5);
}

TEST(ChungLu, PowerLawWeightsYieldSkewedGraph) {
  Rng rng{13};
  const auto w = power_law_weights(3000, 2.4, 10.0);
  const Graph g = generate_chung_lu(w, rng);
  const PowerLawFit fit = degree_power_law(g);
  EXPECT_GT(fit.gamma, 1.3);
  EXPECT_LT(fit.gamma, 4.0);
}

TEST(Rewire, PreservesDegreeSequence) {
  Rng rng{17};
  const Graph g = generate_erdos_renyi(60, 150, rng);
  const Graph r = rewire_preserving_degrees(g, 300, rng);
  ASSERT_EQ(r.num_vertices(), g.num_vertices());
  EXPECT_EQ(r.num_edges(), g.num_edges());
  for (index_t v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(r.degree(v), g.degree(v));
  }
}

TEST(Rewire, ActuallyChangesStructure) {
  Rng rng{19};
  const Graph g = generate_erdos_renyi(80, 200, rng);
  const Graph r = rewire_preserving_degrees(g, 400, rng);
  count_t differing = 0;
  for (index_t u = 0; u < g.num_vertices(); ++u) {
    for (index_t v : g.neighbors(u)) {
      if (u < v && !r.has_edge(u, v)) ++differing;
    }
  }
  EXPECT_GT(differing, 50u);
}

TEST(Rewire, TinyGraphIsStable) {
  GraphBuilder b{2};
  b.add_edge(0, 1);
  Rng rng{23};
  const Graph r = rewire_preserving_degrees(b.build(), 10, rng);
  EXPECT_EQ(r.num_edges(), 1u);
  EXPECT_TRUE(r.has_edge(0, 1));
}

}  // namespace
}  // namespace hp::graph
