#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include "util/common.hpp"

namespace hp::graph {
namespace {

TEST(GraphBuilder, BuildsTriangle) {
  GraphBuilder b{3};
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 0);
  const Graph g = b.build();
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 0));
}

TEST(GraphBuilder, DeduplicatesParallelEdges) {
  GraphBuilder b{2};
  b.add_edge(0, 1);
  b.add_edge(1, 0);
  b.add_edge(0, 1);
  const Graph g = b.build();
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.degree(0), 1u);
}

TEST(GraphBuilder, RejectsSelfLoopAndOutOfRange) {
  GraphBuilder b{2};
  EXPECT_THROW(b.add_edge(0, 0), InvalidInputError);
  EXPECT_THROW(b.add_edge(0, 2), InvalidInputError);
}

TEST(Graph, NeighborsAreSorted) {
  GraphBuilder b{5};
  b.add_edge(2, 4);
  b.add_edge(2, 0);
  b.add_edge(2, 3);
  const Graph g = b.build();
  const auto nbrs = g.neighbors(2);
  ASSERT_EQ(nbrs.size(), 3u);
  EXPECT_EQ(nbrs[0], 0u);
  EXPECT_EQ(nbrs[1], 3u);
  EXPECT_EQ(nbrs[2], 4u);
}

TEST(Graph, EmptyGraph) {
  const Graph g = GraphBuilder{0}.build();
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.max_degree(), 0u);
}

TEST(Graph, IsolatedVerticesHaveDegreeZero) {
  GraphBuilder b{4};
  b.add_edge(0, 1);
  const Graph g = b.build();
  EXPECT_EQ(g.degree(2), 0u);
  EXPECT_EQ(g.degree(3), 0u);
  EXPECT_TRUE(g.neighbors(2).empty());
}

TEST(Graph, MaxDegree) {
  GraphBuilder b{4};
  b.add_edge(0, 1);
  b.add_edge(0, 2);
  b.add_edge(0, 3);
  EXPECT_EQ(b.build().max_degree(), 3u);
}

TEST(Graph, StorageBytesGrowsWithEdges) {
  GraphBuilder small{10};
  small.add_edge(0, 1);
  GraphBuilder big{10};
  for (index_t u = 0; u < 10; ++u) {
    for (index_t v = u + 1; v < 10; ++v) big.add_edge(u, v);
  }
  EXPECT_LT(small.build().storage_bytes(), big.build().storage_bytes());
}

TEST(GraphBuilder, ReusableAfterBuild) {
  GraphBuilder b{3};
  b.add_edge(0, 1);
  const Graph g1 = b.build();
  b.add_edge(1, 2);
  const Graph g2 = b.build();
  EXPECT_EQ(g1.num_edges(), 1u);
  EXPECT_EQ(g2.num_edges(), 2u);
}

}  // namespace
}  // namespace hp::graph
