#include "graph/graph_algos.hpp"

#include <gtest/gtest.h>

#include "graph/graph_generators.hpp"
#include "util/rng.hpp"

namespace hp::graph {
namespace {

Graph path_graph(index_t n) {
  GraphBuilder b{n};
  for (index_t i = 0; i + 1 < n; ++i) b.add_edge(i, i + 1);
  return b.build();
}

TEST(BfsDistances, PathGraph) {
  const Graph g = path_graph(5);
  const auto dist = bfs_distances(g, 0);
  for (index_t v = 0; v < 5; ++v) {
    EXPECT_EQ(dist[v], v);
  }
}

TEST(BfsDistances, UnreachableIsMarked) {
  GraphBuilder b{4};
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  const auto dist = bfs_distances(b.build(), 0);
  EXPECT_EQ(dist[1], 1u);
  EXPECT_EQ(dist[2], kInvalidIndex);
  EXPECT_EQ(dist[3], kInvalidIndex);
}

TEST(BfsDistances, SourceOutOfRangeThrows) {
  const Graph g = path_graph(3);
  EXPECT_THROW(bfs_distances(g, 3), InvalidInputError);
}

TEST(ConnectedComponents, CountsAndSizes) {
  GraphBuilder b{6};
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(3, 4);
  const Components c = connected_components(b.build());
  EXPECT_EQ(c.count, 3u);  // {0,1,2}, {3,4}, {5}
  EXPECT_EQ(c.sizes[c.largest()], 3u);
  EXPECT_EQ(c.label[0], c.label[2]);
  EXPECT_NE(c.label[0], c.label[3]);
}

TEST(ConnectedComponents, EmptyGraph) {
  const Components c = connected_components(GraphBuilder{0}.build());
  EXPECT_EQ(c.count, 0u);
  EXPECT_THROW(c.largest(), InvalidInputError);
}

TEST(PathSummary, PathGraphDiameter) {
  const PathSummary s = path_summary(path_graph(6));
  EXPECT_EQ(s.diameter, 5u);
  EXPECT_EQ(s.pairs, 30u);  // all ordered pairs connected
}

TEST(PathSummary, CompleteGraphAveragesOne) {
  GraphBuilder b{5};
  for (index_t u = 0; u < 5; ++u) {
    for (index_t v = u + 1; v < 5; ++v) b.add_edge(u, v);
  }
  const PathSummary s = path_summary(b.build());
  EXPECT_EQ(s.diameter, 1u);
  EXPECT_DOUBLE_EQ(s.average_length, 1.0);
}

TEST(PathSummary, DisconnectedPairsExcluded) {
  GraphBuilder b{4};
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  const PathSummary s = path_summary(b.build());
  EXPECT_EQ(s.pairs, 4u);
  EXPECT_DOUBLE_EQ(s.average_length, 1.0);
}

TEST(PathSummary, TwoComponentsAverageWithinComponentsOnly) {
  // Mirror of the hypergraph fixture: a 3-chain plus a 2-chain. The
  // average must be 10/8 over connected ordered pairs; the 12 cross
  // pairs stay out of the denominator (paper convention: path metrics
  // are reported per component).
  GraphBuilder b{5};
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(3, 4);
  const PathSummary s = path_summary(b.build());
  EXPECT_EQ(s.pairs, 8u);
  EXPECT_EQ(s.diameter, 2u);
  EXPECT_DOUBLE_EQ(s.average_length, 1.25);
}

TEST(PathSummary, RandomGraphIsSmallWorldScale) {
  Rng rng{7};
  const Graph g = generate_erdos_renyi(200, 1000, rng);
  const PathSummary s = path_summary(g);
  // Dense ER graph: short paths.
  EXPECT_LE(s.diameter, 5u);
  EXPECT_GT(s.pairs, 0u);
}

}  // namespace
}  // namespace hp::graph
