#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

#include "obs/json_check.hpp"

namespace hp::obs {
namespace {

TEST(Metrics, CounterAddAndSet) {
  Counter c;
  c.add(3);
  c.add(4);
  EXPECT_EQ(c.value(), 7u);
  c.set(100);
  EXPECT_EQ(c.value(), 100u);
}

TEST(Metrics, GaugeLastWriteWins) {
  Gauge g;
  g.set(1.5);
  g.set(-2.25);
  EXPECT_EQ(g.value(), -2.25);
}

TEST(Metrics, HistogramBucketsAndQuantiles) {
  LatencyHistogram h;
  // 10 samples at ~1us, one outlier at ~1ms.
  for (int i = 0; i < 10; ++i) h.record_ns(1024);
  h.record_ns(1'000'000);
  EXPECT_EQ(h.count(), 11u);
  EXPECT_EQ(h.sum_ns(), 10u * 1024u + 1'000'000u);
  // p50 must land in the 1us bucket (upper bound 2^11), max in the
  // outlier's bucket.
  EXPECT_EQ(h.quantile_upper_ns(0.5), std::uint64_t{1} << 11);
  EXPECT_GE(h.quantile_upper_ns(1.0), 1'000'000u);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile_upper_ns(0.5), 0u);
}

TEST(Metrics, HistogramZeroNanosecondSample) {
  LatencyHistogram h;
  h.record_ns(0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.bucket(0), 1u);
}

TEST(Metrics, RegistryReturnsStableReferences) {
  Counter& a = counter("test.stable");
  a.add(1);
  // Registering more metrics must not invalidate the reference.
  for (int i = 0; i < 64; ++i) {
    counter("test.stable.filler" + std::to_string(i));
  }
  Counter& b = counter("test.stable");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.value(), 1u);
  Registry::global().reset();
}

TEST(Metrics, RegistryConcurrentUpdates) {
  Registry::global().reset();
  constexpr int kThreads = 4;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([] {
      Counter& c = counter("test.concurrent");
      for (int i = 0; i < kIncrements; ++i) c.add(1);
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(counter("test.concurrent").value(),
            static_cast<std::uint64_t>(kThreads) * kIncrements);
  Registry::global().reset();
}

TEST(Metrics, SnapshotIsNameSorted) {
  Registry::global().reset();
  counter("test.zzz").add(1);
  counter("test.aaa").add(2);
  const MetricsSnapshot snap = Registry::global().snapshot();
  std::size_t aaa = snap.counters.size();
  std::size_t zzz = 0;
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    if (snap.counters[i].name == "test.aaa") aaa = i;
    if (snap.counters[i].name == "test.zzz") zzz = i;
  }
  EXPECT_LT(aaa, zzz);
  Registry::global().reset();
}

TEST(Metrics, RenderTableListsEveryKind) {
  MetricsSnapshot snap;
  snap.counters.push_back({"peel.rounds", 6});
  snap.gauges.push_back({"peel.peak_queue_length", 17.0});
  HistogramSample h;
  h.name = "context.build_ns";
  h.count = 3;
  h.sum_ns = 3000;
  h.p50_ns = 1024;
  h.p90_ns = 1024;
  h.p99_ns = 2048;
  h.max_ns = 2048;
  snap.histograms.push_back(h);

  const std::string table = render_table(snap);
  EXPECT_NE(table.find("metric"), std::string::npos);
  EXPECT_NE(table.find("peel.rounds"), std::string::npos);
  EXPECT_NE(table.find("counter"), std::string::npos);
  EXPECT_NE(table.find("gauge"), std::string::npos);
  EXPECT_NE(table.find("count=3"), std::string::npos);
  EXPECT_NE(table.find("p50<="), std::string::npos);
  EXPECT_NE(table.find("p90<="), std::string::npos);
  EXPECT_NE(table.find("p99<="), std::string::npos);
}

TEST(Metrics, JsonExportRoundTripsThroughParser) {
  MetricsSnapshot snap;
  snap.counters.push_back({"a.count", 42});
  snap.gauges.push_back({"b.gauge", 0.5});
  HistogramSample h;
  h.name = "c.lat";
  h.count = 2;
  h.sum_ns = 300;
  h.buckets = {0, 0, 0, 0, 0, 0, 1, 1};
  snap.histograms.push_back(h);

  std::ostringstream out;
  write_metrics_json(snap, out);
  const json::Value root = json::parse(out.str());

  const json::Value* counters = root.find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_NE(counters->find("a.count"), nullptr);
  EXPECT_EQ(counters->find("a.count")->number, 42.0);

  const json::Value* gauges = root.find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_EQ(gauges->find("b.gauge")->number, 0.5);

  const json::Value* histograms = root.find("histograms");
  ASSERT_NE(histograms, nullptr);
  const json::Value* lat = histograms->find("c.lat");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->find("count")->number, 2.0);
  EXPECT_EQ(lat->find("buckets")->array.size(), 8u);
}

TEST(Metrics, EmptySnapshotStillValidJson) {
  std::ostringstream out;
  write_metrics_json(MetricsSnapshot{}, out);
  const json::Value root = json::parse(out.str());
  EXPECT_EQ(root.type, json::Value::Type::kObject);
  EXPECT_TRUE(root.find("counters")->object.empty());
}

}  // namespace
}  // namespace hp::obs
