#include "obs/json_check.hpp"

#include <gtest/gtest.h>

#include "util/common.hpp"

namespace hp::obs {
namespace {

TEST(JsonCheck, ParsesScalars) {
  EXPECT_EQ(json::parse("null").type, json::Value::Type::kNull);
  EXPECT_TRUE(json::parse("true").boolean);
  EXPECT_FALSE(json::parse("false").boolean);
  EXPECT_EQ(json::parse("42").number, 42.0);
  EXPECT_EQ(json::parse("-1.5e2").number, -150.0);
  EXPECT_EQ(json::parse("\"hi\"").string, "hi");
}

TEST(JsonCheck, ParsesNestedStructures) {
  const json::Value root =
      json::parse(R"({"a": [1, 2, {"b": "c"}], "d": {"e": null}})");
  ASSERT_EQ(root.type, json::Value::Type::kObject);
  const json::Value* a = root.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->array.size(), 3u);
  EXPECT_EQ(a->array[1].number, 2.0);
  EXPECT_EQ(a->array[2].find("b")->string, "c");
  EXPECT_EQ(root.find("d")->find("e")->type, json::Value::Type::kNull);
  EXPECT_EQ(root.find("missing"), nullptr);
}

TEST(JsonCheck, DecodesEscapes) {
  EXPECT_EQ(json::parse(R"("a\"b\\c\nd\te")").string, "a\"b\\c\nd\te");
}

TEST(JsonCheck, RejectsMalformedInput) {
  EXPECT_THROW(json::parse(""), ParseError);
  EXPECT_THROW(json::parse("{"), ParseError);
  EXPECT_THROW(json::parse("[1, 2,]"), ParseError);
  EXPECT_THROW(json::parse("{\"a\": 1} trailing"), ParseError);
  EXPECT_THROW(json::parse("'single'"), ParseError);
  EXPECT_THROW(json::parse("{\"unterminated): 1}"), ParseError);
}

TEST(JsonCheck, SummarizesWellFormedTrace) {
  const json::Value root = json::parse(R"({"traceEvents": [
    {"name": "a", "ph": "B", "pid": 1, "tid": 0, "ts": 1.0},
    {"name": "b", "ph": "B", "pid": 1, "tid": 0, "ts": 2.0},
    {"name": "b", "ph": "E", "pid": 1, "tid": 0, "ts": 3.0},
    {"name": "c", "ph": "C", "pid": 1, "tid": 0, "ts": 3.5,
     "args": {"value": 7}},
    {"name": "a", "ph": "E", "pid": 1, "tid": 0, "ts": 4.0},
    {"name": "w", "ph": "B", "pid": 1, "tid": 1, "ts": 0.5},
    {"name": "w", "ph": "E", "pid": 1, "tid": 1, "ts": 0.75}
  ]})");
  const TraceSummary summary = summarize_trace(root);
  EXPECT_EQ(summary.events, 7u);
  ASSERT_EQ(summary.threads.size(), 2u);
  EXPECT_TRUE(summary.all_balanced());
  EXPECT_TRUE(summary.all_monotonic());
  const TraceThreadSummary* main_thread = summary.thread(0);
  ASSERT_NE(main_thread, nullptr);
  EXPECT_EQ(main_thread->begin_events, 2u);
  EXPECT_EQ(main_thread->end_events, 2u);
  EXPECT_EQ(main_thread->counter_events, 1u);
  EXPECT_EQ(summary.thread(7), nullptr);
}

TEST(JsonCheck, FlagsOutOfOrderTimestamps) {
  const json::Value root = json::parse(R"({"traceEvents": [
    {"name": "a", "ph": "B", "pid": 1, "tid": 0, "ts": 5.0},
    {"name": "a", "ph": "E", "pid": 1, "tid": 0, "ts": 1.0}
  ]})");
  const TraceSummary summary = summarize_trace(root);
  EXPECT_FALSE(summary.all_monotonic());
  EXPECT_TRUE(summary.all_balanced());
}

TEST(JsonCheck, FlagsUnbalancedSpans) {
  const json::Value root = json::parse(R"({"traceEvents": [
    {"name": "a", "ph": "E", "pid": 1, "tid": 0, "ts": 1.0},
    {"name": "a", "ph": "B", "pid": 1, "tid": 0, "ts": 2.0}
  ]})");
  const TraceSummary summary = summarize_trace(root);
  EXPECT_FALSE(summary.all_balanced());
}

TEST(JsonCheck, RejectsStructurallyInvalidTrace) {
  EXPECT_THROW(summarize_trace(json::parse("[]")), ParseError);
  EXPECT_THROW(summarize_trace(json::parse("{\"traceEvents\": 3}")),
               ParseError);
  EXPECT_THROW(
      summarize_trace(json::parse(
          R"({"traceEvents": [{"ph": "B", "tid": 0, "ts": 1.0}]})")),
      ParseError);
  EXPECT_THROW(
      summarize_trace(json::parse(
          R"({"traceEvents": [{"name": "a", "ph": "B", "tid": 0}]})")),
      ParseError);
}

}  // namespace
}  // namespace hp::obs
