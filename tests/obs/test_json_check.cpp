#include "obs/json_check.hpp"

#include <gtest/gtest.h>

#include "util/common.hpp"

namespace hp::obs {
namespace {

TEST(JsonCheck, ParsesScalars) {
  EXPECT_EQ(json::parse("null").type, json::Value::Type::kNull);
  EXPECT_TRUE(json::parse("true").boolean);
  EXPECT_FALSE(json::parse("false").boolean);
  EXPECT_EQ(json::parse("42").number, 42.0);
  EXPECT_EQ(json::parse("-1.5e2").number, -150.0);
  EXPECT_EQ(json::parse("\"hi\"").string, "hi");
}

TEST(JsonCheck, ParsesNestedStructures) {
  const json::Value root =
      json::parse(R"({"a": [1, 2, {"b": "c"}], "d": {"e": null}})");
  ASSERT_EQ(root.type, json::Value::Type::kObject);
  const json::Value* a = root.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->array.size(), 3u);
  EXPECT_EQ(a->array[1].number, 2.0);
  EXPECT_EQ(a->array[2].find("b")->string, "c");
  EXPECT_EQ(root.find("d")->find("e")->type, json::Value::Type::kNull);
  EXPECT_EQ(root.find("missing"), nullptr);
}

TEST(JsonCheck, DecodesEscapes) {
  EXPECT_EQ(json::parse(R"("a\"b\\c\nd\te")").string, "a\"b\\c\nd\te");
}

TEST(JsonCheck, RejectsMalformedInput) {
  EXPECT_THROW(json::parse(""), ParseError);
  EXPECT_THROW(json::parse("{"), ParseError);
  EXPECT_THROW(json::parse("[1, 2,]"), ParseError);
  EXPECT_THROW(json::parse("{\"a\": 1} trailing"), ParseError);
  EXPECT_THROW(json::parse("'single'"), ParseError);
  EXPECT_THROW(json::parse("{\"unterminated): 1}"), ParseError);
}

TEST(JsonCheck, SummarizesWellFormedTrace) {
  const json::Value root = json::parse(R"({"traceEvents": [
    {"name": "a", "ph": "B", "pid": 1, "tid": 0, "ts": 1.0},
    {"name": "b", "ph": "B", "pid": 1, "tid": 0, "ts": 2.0},
    {"name": "b", "ph": "E", "pid": 1, "tid": 0, "ts": 3.0},
    {"name": "c", "ph": "C", "pid": 1, "tid": 0, "ts": 3.5,
     "args": {"value": 7}},
    {"name": "a", "ph": "E", "pid": 1, "tid": 0, "ts": 4.0},
    {"name": "w", "ph": "B", "pid": 1, "tid": 1, "ts": 0.5},
    {"name": "w", "ph": "E", "pid": 1, "tid": 1, "ts": 0.75}
  ]})");
  const TraceSummary summary = summarize_trace(root);
  EXPECT_EQ(summary.events, 7u);
  ASSERT_EQ(summary.threads.size(), 2u);
  EXPECT_TRUE(summary.all_balanced());
  EXPECT_TRUE(summary.all_monotonic());
  const TraceThreadSummary* main_thread = summary.thread(0);
  ASSERT_NE(main_thread, nullptr);
  EXPECT_EQ(main_thread->begin_events, 2u);
  EXPECT_EQ(main_thread->end_events, 2u);
  EXPECT_EQ(main_thread->counter_events, 1u);
  EXPECT_EQ(summary.thread(7), nullptr);
}

TEST(JsonCheck, FlagsOutOfOrderTimestamps) {
  const json::Value root = json::parse(R"({"traceEvents": [
    {"name": "a", "ph": "B", "pid": 1, "tid": 0, "ts": 5.0},
    {"name": "a", "ph": "E", "pid": 1, "tid": 0, "ts": 1.0}
  ]})");
  const TraceSummary summary = summarize_trace(root);
  EXPECT_FALSE(summary.all_monotonic());
  EXPECT_TRUE(summary.all_balanced());
}

TEST(JsonCheck, FlagsUnbalancedSpans) {
  const json::Value root = json::parse(R"({"traceEvents": [
    {"name": "a", "ph": "E", "pid": 1, "tid": 0, "ts": 1.0},
    {"name": "a", "ph": "B", "pid": 1, "tid": 0, "ts": 2.0}
  ]})");
  const TraceSummary summary = summarize_trace(root);
  EXPECT_FALSE(summary.all_balanced());
}

TEST(JsonCheck, SummarizesCausalTrees) {
  const json::Value root = json::parse(R"({"traceEvents": [
    {"name": "root", "ph": "B", "pid": 1, "tid": 0, "ts": 1.0,
     "args": {"trace": 7, "span": 1, "parent": 0}},
    {"name": "child", "ph": "B", "pid": 1, "tid": 3, "ts": 2.0,
     "args": {"trace": 7, "span": 2, "parent": 1}},
    {"name": "spawn", "ph": "s", "pid": 1, "tid": 0, "ts": 2.1,
     "cat": "par", "id": 9},
    {"name": "spawn", "ph": "f", "pid": 1, "tid": 3, "ts": 2.2,
     "cat": "par", "id": 9, "bp": "e"},
    {"name": "child", "ph": "E", "pid": 1, "tid": 3, "ts": 3.0},
    {"name": "root", "ph": "E", "pid": 1, "tid": 0, "ts": 4.0}
  ]})");
  const TraceSummary summary = summarize_trace(root);
  EXPECT_TRUE(summary.parent_integrity);
  EXPECT_TRUE(summary.all_single_rooted());
  ASSERT_EQ(summary.trees.size(), 1u);
  const TraceTreeSummary* tree = summary.tree(7);
  ASSERT_NE(tree, nullptr);
  EXPECT_EQ(tree->spans, 2u);
  EXPECT_EQ(tree->roots, 1u);
  EXPECT_EQ(tree->threads, 2u);
  EXPECT_TRUE(tree->connected);
  EXPECT_EQ(summary.tree(8), nullptr);
  EXPECT_EQ(summary.thread(0)->flow_events, 1u);
  EXPECT_EQ(summary.thread(3)->flow_events, 1u);
}

TEST(JsonCheck, FlagsDanglingParentReference) {
  const json::Value root = json::parse(R"({"traceEvents": [
    {"name": "root", "ph": "B", "pid": 1, "tid": 0, "ts": 1.0,
     "args": {"trace": 1, "span": 1, "parent": 0}},
    {"name": "orphan", "ph": "B", "pid": 1, "tid": 0, "ts": 2.0,
     "args": {"trace": 1, "span": 2, "parent": 99}},
    {"name": "orphan", "ph": "E", "pid": 1, "tid": 0, "ts": 3.0},
    {"name": "root", "ph": "E", "pid": 1, "tid": 0, "ts": 4.0}
  ]})");
  const TraceSummary summary = summarize_trace(root);
  EXPECT_FALSE(summary.parent_integrity);
  EXPECT_FALSE(summary.all_single_rooted());
  ASSERT_NE(summary.tree(1), nullptr);
  EXPECT_FALSE(summary.tree(1)->connected);
}

TEST(JsonCheck, FlagsCrossTraceParent) {
  const json::Value root = json::parse(R"({"traceEvents": [
    {"name": "a", "ph": "B", "pid": 1, "tid": 0, "ts": 1.0,
     "args": {"trace": 1, "span": 1, "parent": 0}},
    {"name": "a", "ph": "E", "pid": 1, "tid": 0, "ts": 2.0},
    {"name": "b", "ph": "B", "pid": 1, "tid": 0, "ts": 3.0,
     "args": {"trace": 2, "span": 2, "parent": 1}},
    {"name": "b", "ph": "E", "pid": 1, "tid": 0, "ts": 4.0}
  ]})");
  const TraceSummary summary = summarize_trace(root);
  EXPECT_FALSE(summary.parent_integrity);
  ASSERT_NE(summary.tree(2), nullptr);
  EXPECT_FALSE(summary.tree(2)->connected);
}

TEST(JsonCheck, FlagsTwoRootsInOneTrace) {
  const json::Value root = json::parse(R"({"traceEvents": [
    {"name": "a", "ph": "B", "pid": 1, "tid": 0, "ts": 1.0,
     "args": {"trace": 4, "span": 1, "parent": 0}},
    {"name": "a", "ph": "E", "pid": 1, "tid": 0, "ts": 2.0},
    {"name": "b", "ph": "B", "pid": 1, "tid": 0, "ts": 3.0,
     "args": {"trace": 4, "span": 2, "parent": 0}},
    {"name": "b", "ph": "E", "pid": 1, "tid": 0, "ts": 4.0}
  ]})");
  const TraceSummary summary = summarize_trace(root);
  EXPECT_TRUE(summary.parent_integrity);  // nothing dangles...
  EXPECT_FALSE(summary.all_single_rooted());  // ...but the tree forked
  ASSERT_NE(summary.tree(4), nullptr);
  EXPECT_EQ(summary.tree(4)->roots, 2u);
}

TEST(JsonCheck, FlagsDuplicateSpanIds) {
  const json::Value root = json::parse(R"({"traceEvents": [
    {"name": "a", "ph": "B", "pid": 1, "tid": 0, "ts": 1.0,
     "args": {"trace": 1, "span": 5, "parent": 0}},
    {"name": "a", "ph": "E", "pid": 1, "tid": 0, "ts": 2.0},
    {"name": "b", "ph": "B", "pid": 1, "tid": 0, "ts": 3.0,
     "args": {"trace": 1, "span": 5, "parent": 0}},
    {"name": "b", "ph": "E", "pid": 1, "tid": 0, "ts": 4.0}
  ]})");
  EXPECT_FALSE(summarize_trace(root).parent_integrity);
}

TEST(JsonCheck, SpansWithoutIdsStayOutsideTreeBookkeeping) {
  const json::Value root = json::parse(R"({"traceEvents": [
    {"name": "legacy", "ph": "B", "pid": 1, "tid": 0, "ts": 1.0},
    {"name": "legacy", "ph": "E", "pid": 1, "tid": 0, "ts": 2.0}
  ]})");
  const TraceSummary summary = summarize_trace(root);
  EXPECT_TRUE(summary.parent_integrity);
  EXPECT_TRUE(summary.trees.empty());
  EXPECT_TRUE(summary.all_single_rooted());  // vacuously
}

TEST(JsonCheck, RejectsStructurallyInvalidTrace) {
  EXPECT_THROW(summarize_trace(json::parse("[]")), ParseError);
  EXPECT_THROW(summarize_trace(json::parse("{\"traceEvents\": 3}")),
               ParseError);
  EXPECT_THROW(
      summarize_trace(json::parse(
          R"({"traceEvents": [{"ph": "B", "tid": 0, "ts": 1.0}]})")),
      ParseError);
  EXPECT_THROW(
      summarize_trace(json::parse(
          R"({"traceEvents": [{"name": "a", "ph": "B", "tid": 0}]})")),
      ParseError);
}

}  // namespace
}  // namespace hp::obs
