// Sampling profiler: lifecycle, folded-stack output shape, and the
// fixed-buffer drop accounting. Sampling runs on ITIMER_PROF (CPU
// time), so each test burns real CPU to guarantee samples arrive.
#include "obs/profile.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <sstream>
#include <string>

#include "util/common.hpp"

namespace hp::obs {
namespace {

/// Burn roughly `ms` milliseconds of CPU time; returns a value the
/// optimizer cannot delete.
std::uint64_t burn_cpu_ms(int ms) {
  volatile std::uint64_t acc = 0;
  const auto deadline = static_cast<std::uint64_t>(ms) * 2'000'000;
  for (std::uint64_t i = 0; i < deadline; ++i) acc += i * i;
  return acc;
}

struct ProfileSandbox {
  ProfileSandbox() {
    stop_profiling();
    reset_profiling();
  }
  ~ProfileSandbox() {
    stop_profiling();
    reset_profiling();
  }
};

TEST(Profile, InactiveByDefault) {
  ProfileSandbox sandbox;
  EXPECT_FALSE(profiling_active());
  EXPECT_EQ(profile_sample_count(), 0u);
}

TEST(Profile, CollectsSamplesWhileBurningCpu) {
  ProfileSandbox sandbox;
  ProfileOptions options;
  options.interval_us = 500;  // 2 kHz so even a short burn lands samples
  start_profiling(options);
  EXPECT_TRUE(profiling_active());
  burn_cpu_ms(300);
  stop_profiling();
  EXPECT_FALSE(profiling_active());
  EXPECT_GT(profile_sample_count(), 0u);
  EXPECT_EQ(profile_dropped_samples(), 0u);
}

TEST(Profile, FoldedOutputIsWellFormed) {
  ProfileSandbox sandbox;
  ProfileOptions options;
  options.interval_us = 500;
  start_profiling(options);
  burn_cpu_ms(300);
  stop_profiling();
  ASSERT_GT(profile_sample_count(), 0u);

  std::ostringstream out;
  write_folded(out);
  const std::string text = out.str();
  ASSERT_FALSE(text.empty());

  // Every line is "frame(;frame)* count": a non-empty stack, a single
  // separating space, and a positive integer whose sum is the number of
  // completed samples.
  std::istringstream lines{text};
  std::string line;
  std::uint64_t total = 0;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    ASSERT_GT(space, 0u) << line;
    const std::string count = line.substr(space + 1);
    ASSERT_FALSE(count.empty()) << line;
    for (char c : count) {
      ASSERT_TRUE(std::isdigit(static_cast<unsigned char>(c))) << line;
    }
    total += std::strtoull(count.c_str(), nullptr, 10);
    // Frames never embed the separators.
    EXPECT_EQ(line.substr(0, space).find(' '), std::string::npos) << line;
  }
  EXPECT_GT(total, 0u);
  EXPECT_LE(total, profile_sample_count());
}

TEST(Profile, StartWhileActiveThrows) {
  ProfileSandbox sandbox;
  start_profiling();
  EXPECT_THROW(start_profiling(), InvalidInputError);
  stop_profiling();
}

TEST(Profile, RejectsDegenerateOptions) {
  ProfileSandbox sandbox;
  ProfileOptions zero_interval;
  zero_interval.interval_us = 0;
  EXPECT_THROW(start_profiling(zero_interval), InvalidInputError);
  ProfileOptions zero_frames;
  zero_frames.max_frames = 0;
  EXPECT_THROW(start_profiling(zero_frames), InvalidInputError);
}

TEST(Profile, OverflowDropsInsteadOfGrowing) {
  ProfileSandbox sandbox;
  ProfileOptions options;
  options.interval_us = 200;  // 5 kHz
  options.max_samples = 8;    // overflow almost immediately
  start_profiling(options);
  burn_cpu_ms(300);
  stop_profiling();
  EXPECT_EQ(profile_sample_count(), 8u);
  EXPECT_GT(profile_dropped_samples(), 0u);
}

TEST(Profile, ResetClearsSamples) {
  ProfileSandbox sandbox;
  ProfileOptions options;
  options.interval_us = 500;
  start_profiling(options);
  burn_cpu_ms(100);
  stop_profiling();
  ASSERT_GT(profile_sample_count(), 0u);
  reset_profiling();
  EXPECT_EQ(profile_sample_count(), 0u);
  EXPECT_EQ(profile_dropped_samples(), 0u);
  std::ostringstream out;
  write_folded(out);
  EXPECT_TRUE(out.str().empty());
}

TEST(Profile, ResetWhileActiveThrows) {
  ProfileSandbox sandbox;
  start_profiling();
  EXPECT_THROW(reset_profiling(), InvalidInputError);
  stop_profiling();
}

}  // namespace
}  // namespace hp::obs
