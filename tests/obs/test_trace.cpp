#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/json_check.hpp"

namespace hp::obs {
namespace {

/// RAII guard: every test starts from a clean, disabled tracer and
/// leaves it that way for the next one.
struct TraceSandbox {
  TraceSandbox() {
    set_tracing_enabled(false);
    reset_tracing();
  }
  ~TraceSandbox() {
    set_tracing_enabled(false);
    reset_tracing();
  }
};

TEST(Trace, DisabledSpansRecordNothing) {
  TraceSandbox sandbox;
  {
    HP_TRACE_SPAN("off.outer");
    HP_TRACE_SPAN("off.inner", 7);
    trace_counter("off.counter", 1.0);
  }
  EXPECT_EQ(trace_event_count(), 0u);
}

TEST(Trace, SpansAndCountersBuffer) {
  TraceSandbox sandbox;
  set_tracing_enabled(true);
  {
    HP_TRACE_SPAN("t.outer");
    EXPECT_EQ(trace_span_depth(), 1u);
    {
      HP_TRACE_SPAN("t.inner", 42);
      EXPECT_EQ(trace_span_depth(), 2u);
    }
    trace_counter("t.counter", 3.5);
  }
  EXPECT_EQ(trace_span_depth(), 0u);
  // 2 spans x (B + E) + 1 counter.
  EXPECT_EQ(trace_event_count(), 5u);
}

TEST(Trace, ToggleMidSpanStillClosesCleanly) {
  TraceSandbox sandbox;
  set_tracing_enabled(true);
  {
    HP_TRACE_SPAN("t.straddle");
    set_tracing_enabled(false);
    // Destructor must still emit the E event (the span captured that it
    // had begun), keeping the buffer balanced.
  }
  set_tracing_enabled(true);
  std::ostringstream json;
  write_chrome_trace(json);
  const TraceSummary summary = summarize_trace(json::parse(json.str()));
  EXPECT_EQ(summary.events, 2u);
  EXPECT_TRUE(summary.all_balanced());
}

TEST(Trace, ResetDropsEventsAndRestartsClock) {
  TraceSandbox sandbox;
  set_tracing_enabled(true);
  {
    HP_TRACE_SPAN("t.before_reset");
  }
  EXPECT_GT(trace_event_count(), 0u);
  reset_tracing();
  EXPECT_EQ(trace_event_count(), 0u);
  // The thread-local buffer must survive the reset and keep recording.
  {
    HP_TRACE_SPAN("t.after_reset");
  }
  EXPECT_EQ(trace_event_count(), 2u);
}

// The satellite test from the issue: spans across 4 threads, write the
// file, re-parse it, and assert (a) valid JSON, (b) per-thread
// timestamps non-decreasing, (c) balanced B/E pairs.
TEST(Trace, FourThreadExportRoundTrips) {
  TraceSandbox sandbox;
  set_tracing_enabled(true);

  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 25;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([t] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        HP_TRACE_SPAN("worker.outer", static_cast<std::uint64_t>(t));
        HP_TRACE_SPAN("worker.inner", static_cast<std::uint64_t>(i));
        trace_counter("worker.progress", static_cast<double>(i));
      }
    });
  }
  for (std::thread& w : workers) w.join();

  const std::string path = "trace_four_threads.json";
  write_chrome_trace_file(path);

  std::ifstream in{path};
  ASSERT_TRUE(in.good());
  std::ostringstream text;
  text << in.rdbuf();
  const json::Value root = json::parse(text.str());  // (a) valid JSON

  const TraceSummary summary = summarize_trace(root);
  constexpr std::size_t kPerThread = kSpansPerThread * 5;  // 2B+2E+1C
  EXPECT_GE(summary.events, kPerThread * kThreads);
  // The main thread may or may not have events; the 4 workers must.
  std::size_t worker_threads = 0;
  for (const TraceThreadSummary& thread : summary.threads) {
    EXPECT_TRUE(thread.timestamps_monotonic) << "tid " << thread.tid;  // (b)
    EXPECT_TRUE(thread.balanced) << "tid " << thread.tid;              // (c)
    if (thread.begin_events == 2 * kSpansPerThread) ++worker_threads;
  }
  EXPECT_EQ(worker_threads, static_cast<std::size_t>(kThreads));
  EXPECT_TRUE(summary.all_monotonic());
  EXPECT_TRUE(summary.all_balanced());

  std::remove(path.c_str());
}

TEST(Trace, ExportEscapesAndStructure) {
  TraceSandbox sandbox;
  set_tracing_enabled(true);
  {
    HP_TRACE_SPAN("quote\"back\\slash", 3);
  }
  std::ostringstream json;
  write_chrome_trace(json);
  const json::Value root = json::parse(json.str());
  const json::Value* events = root.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->array.size(), 2u);
  const json::Value& begin = events->array.front();
  EXPECT_EQ(begin.find("name")->string, "quote\"back\\slash");
  EXPECT_EQ(begin.find("ph")->string, "B");
  const json::Value* args = begin.find("args");
  ASSERT_NE(args, nullptr);
  ASSERT_NE(args->find("k"), nullptr);
  EXPECT_EQ(args->find("k")->number, 3.0);
}

}  // namespace
}  // namespace hp::obs
