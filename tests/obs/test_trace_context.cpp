// Request-scoped trace context: span parenting, cross-thread
// propagation via TraceContextScope, and the TaskGroup round trip that
// must yield a single connected span tree (DESIGN.md section 14).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/json_check.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "par/thread_pool.hpp"

namespace hp::obs {
namespace {

struct TraceSandbox {
  TraceSandbox() {
    set_tracing_enabled(false);
    reset_tracing();
  }
  ~TraceSandbox() {
    set_tracing_enabled(false);
    set_slow_span_threshold_ns(0);
    reset_tracing();
  }
};

TraceSummary exported_summary() {
  std::ostringstream json;
  write_chrome_trace(json);
  return summarize_trace(json::parse(json.str()));
}

TEST(TraceContext, EmptyOutsideAnySpan) {
  TraceSandbox sandbox;
  set_tracing_enabled(true);
  EXPECT_FALSE(current_trace_context().valid());
}

TEST(TraceContext, RootSpanStartsTraceAndNestedSpansInherit) {
  TraceSandbox sandbox;
  set_tracing_enabled(true);
  TraceContext outer;
  TraceContext inner;
  {
    HP_TRACE_SPAN("ctx.outer");
    outer = current_trace_context();
    EXPECT_TRUE(outer.valid());
    {
      HP_TRACE_SPAN("ctx.inner");
      inner = current_trace_context();
    }
    // Closing the inner span restores the outer context.
    EXPECT_EQ(current_trace_context().span_id, outer.span_id);
  }
  EXPECT_FALSE(current_trace_context().valid());
  EXPECT_EQ(inner.trace_id, outer.trace_id);
  EXPECT_NE(inner.span_id, outer.span_id);

  const TraceSummary summary = exported_summary();
  EXPECT_TRUE(summary.parent_integrity);
  ASSERT_EQ(summary.trees.size(), 1u);
  EXPECT_EQ(summary.trees[0].spans, 2u);
  EXPECT_EQ(summary.trees[0].roots, 1u);
  EXPECT_TRUE(summary.all_single_rooted());
}

TEST(TraceContext, SiblingRootSpansStartSeparateTraces) {
  TraceSandbox sandbox;
  set_tracing_enabled(true);
  TraceContext first;
  TraceContext second;
  {
    HP_TRACE_SPAN("ctx.first");
    first = current_trace_context();
  }
  {
    HP_TRACE_SPAN("ctx.second");
    second = current_trace_context();
  }
  EXPECT_NE(first.trace_id, second.trace_id);
  const TraceSummary summary = exported_summary();
  EXPECT_EQ(summary.trees.size(), 2u);
  EXPECT_TRUE(summary.all_single_rooted());
}

TEST(TraceContext, ScopeCarriesContextAcrossRawThread) {
  TraceSandbox sandbox;
  set_tracing_enabled(true);
  {
    HP_TRACE_SPAN("ctx.root");
    const TraceContext root = current_trace_context();
    std::thread worker{[root] {
      EXPECT_FALSE(current_trace_context().valid());
      TraceContextScope scope{root};
      EXPECT_EQ(current_trace_context().trace_id, root.trace_id);
      HP_TRACE_SPAN("ctx.remote");
    }};
    worker.join();
  }
  const TraceSummary summary = exported_summary();
  EXPECT_TRUE(summary.parent_integrity);
  ASSERT_EQ(summary.trees.size(), 1u);
  EXPECT_EQ(summary.trees[0].spans, 2u);
  EXPECT_EQ(summary.trees[0].threads, 2u);
  EXPECT_TRUE(summary.all_single_rooted());
}

TEST(TraceContext, CaptureIsEmptyWhileDisabled) {
  TraceSandbox sandbox;
  const TaskLink link = capture_task_link();
  EXPECT_EQ(link.flow_id, 0u);
  EXPECT_FALSE(link.context.valid());
  // Adopting an empty link must stay a no-op while tracing is off.
  { TaskScope scope{link}; }
  EXPECT_EQ(trace_event_count(), 0u);
}

// The issue's acceptance test: spans spawned through a 4-lane TaskGroup
// land in the spawner's tree no matter which lane (or steal victim)
// executes them -- exported, re-parsed, and checked for one fully
// connected single-root tree.
TEST(TraceContext, TaskGroupFourLaneRoundTrip) {
  TraceSandbox sandbox;
  set_tracing_enabled(true);
  par::ThreadPool pool{4};
  constexpr int kTasks = 32;
  {
    HP_TRACE_SPAN("op.root");
    par::TaskGroup group{pool};
    for (int i = 0; i < kTasks; ++i) {
      group.run([i] {
        HP_TRACE_SPAN("op.work", static_cast<std::uint64_t>(i));
      });
    }
    group.wait();
  }

  const std::string path =
      ::testing::TempDir() + "/trace_context_round_trip.json";
  write_chrome_trace_file(path);
  std::ifstream in{path};
  ASSERT_TRUE(in.good());
  std::ostringstream text;
  text << in.rdbuf();
  const TraceSummary summary = summarize_trace(json::parse(text.str()));
  std::remove(path.c_str());

  EXPECT_TRUE(summary.parent_integrity);
  ASSERT_EQ(summary.trees.size(), 1u);
  const TraceTreeSummary& tree = summary.trees[0];
  // op.root + kTasks par.task envelopes + kTasks op.work spans.
  EXPECT_EQ(tree.spans, 1u + 2u * kTasks);
  EXPECT_EQ(tree.roots, 1u);
  EXPECT_TRUE(tree.connected);
  EXPECT_TRUE(summary.all_single_rooted());
  EXPECT_TRUE(summary.all_balanced());

  // Every spawn emitted a flow ('s') event and every adopted task a
  // binding ('f') event.
  std::size_t flows = 0;
  for (const TraceThreadSummary& thread : summary.threads) {
    flows += thread.flow_events;
  }
  EXPECT_EQ(flows, 2u * kTasks);
}

TEST(TraceContext, ParallelForChunksJoinTheAmbientTree) {
  TraceSandbox sandbox;
  set_tracing_enabled(true);
  par::ThreadPool pool{4};
  {
    HP_TRACE_SPAN("op.parent");
    std::vector<int> data(1 << 12, 1);
    par::parallel_for(
        index_t{0}, static_cast<index_t>(data.size()), /*grain=*/256,
        [&](index_t begin, index_t end, int) {
          HP_TRACE_SPAN("op.chunk");
          for (index_t i = begin; i < end; ++i) data[i] = 2;
        },
        pool);
  }
  const TraceSummary summary = exported_summary();
  EXPECT_TRUE(summary.parent_integrity);
  ASSERT_EQ(summary.trees.size(), 1u);
  EXPECT_TRUE(summary.all_single_rooted());
}

TEST(TraceContext, SlowSpanWatchdogCountsAndKeepsTrace) {
  TraceSandbox sandbox;
  set_tracing_enabled(true);
  const std::uint64_t before = counter("obs.slow_spans").value();
  set_slow_span_threshold_ns(1);  // everything is slow
  {
    HP_TRACE_SPAN("ctx.slow");
  }
  set_slow_span_threshold_ns(0);
  EXPECT_GT(counter("obs.slow_spans").value(), before);
  const TraceSummary summary = exported_summary();
  EXPECT_TRUE(summary.all_balanced());
}

}  // namespace
}  // namespace hp::obs
