// Continuous metrics export: interval parsing, Prometheus text
// exposition, JSONL framing, process gauges, and the background
// flusher's ring buffer.
#include "obs/export.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "obs/json_check.hpp"
#include "obs/metrics.hpp"

namespace hp::obs {
namespace {

using std::chrono::milliseconds;

MetricsSnapshot sample_snapshot() {
  MetricsSnapshot s;
  s.counters.push_back({"par.tasks", 42});
  s.gauges.push_back({"process.rss_bytes", 1048576.0});
  HistogramSample h;
  h.name = "context.build_ns";
  h.count = 10;
  h.sum_ns = 5000;
  h.p50_ns = 256;
  h.p90_ns = 512;
  h.p99_ns = 1024;
  h.max_ns = 2048;
  s.histograms.push_back(h);
  return s;
}

TEST(Export, ParsesIntervalSpecs) {
  EXPECT_EQ(parse_metrics_interval("250ms"), milliseconds{250});
  EXPECT_EQ(parse_metrics_interval("2s"), milliseconds{2000});
  EXPECT_EQ(parse_metrics_interval("17"), milliseconds{17});
  EXPECT_EQ(parse_metrics_interval("0.5s"), milliseconds{500});
  EXPECT_EQ(parse_metrics_interval(""), std::nullopt);
  EXPECT_EQ(parse_metrics_interval("soon"), std::nullopt);
  EXPECT_EQ(parse_metrics_interval("-5ms"), std::nullopt);
  EXPECT_EQ(parse_metrics_interval("0"), std::nullopt);
  EXPECT_EQ(parse_metrics_interval("5m"), std::nullopt);  // no minutes
}

TEST(Export, PrometheusExpositionShape) {
  std::ostringstream out;
  write_prometheus(sample_snapshot(), out);
  const std::string text = out.str();
  EXPECT_NE(text.find("# TYPE hp_par_tasks counter\nhp_par_tasks 42\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE hp_process_rss_bytes gauge\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE hp_context_build_ns summary\n"),
            std::string::npos);
  EXPECT_NE(text.find("hp_context_build_ns{quantile=\"0.5\"} 256\n"),
            std::string::npos);
  EXPECT_NE(text.find("hp_context_build_ns{quantile=\"0.99\"} 1024\n"),
            std::string::npos);
  EXPECT_NE(text.find("hp_context_build_ns_sum 5000\n"), std::string::npos);
  EXPECT_NE(text.find("hp_context_build_ns_count 10\n"), std::string::npos);
  // Dots never leak into exposition names.
  EXPECT_EQ(text.find("par.tasks"), std::string::npos);
}

TEST(Export, PrometheusFileReplacesAtomically) {
  const std::string path = ::testing::TempDir() + "/export_test.prom";
  write_prometheus_file(sample_snapshot(), path);
  write_prometheus_file(sample_snapshot(), path);  // second write: rename over
  std::ifstream in{path};
  ASSERT_TRUE(in.good());
  std::ostringstream text;
  text << in.rdbuf();
  EXPECT_NE(text.str().find("hp_par_tasks 42"), std::string::npos);
  std::remove(path.c_str());
  // No stale temp file left behind.
  EXPECT_FALSE(std::ifstream{path + ".tmp"}.good());
}

TEST(Export, JsonlAppendsOneParseableObjectPerLine) {
  const std::string path = ::testing::TempDir() + "/export_test.jsonl";
  std::remove(path.c_str());
  TimedSnapshot timed;
  timed.unix_ms = 1700000000000;
  timed.uptime_ns = 123456789;
  timed.snapshot = sample_snapshot();
  append_metrics_jsonl(timed, path);
  timed.uptime_ns += 1000;
  append_metrics_jsonl(timed, path);

  std::ifstream in{path};
  ASSERT_TRUE(in.good());
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    const json::Value root = json::parse(line);
    EXPECT_EQ(root.find("unix_ms")->number, 1700000000000.0);
    const json::Value* counters = root.find("counters");
    ASSERT_NE(counters, nullptr);
    EXPECT_EQ(counters->find("par.tasks")->number, 42.0);
    const json::Value* histograms = root.find("histograms");
    ASSERT_NE(histograms, nullptr);
    EXPECT_EQ(histograms->find("context.build_ns")->find("p99_ns")->number,
              1024.0);
  }
  EXPECT_EQ(lines, 2);
  std::remove(path.c_str());
}

TEST(Export, ProcessGaugesPopulate) {
  update_process_gauges();
  // /proc/self/statm exists on every Linux this project targets.
  EXPECT_GT(gauge("process.rss_bytes").value(), 0.0);
  EXPECT_GE(gauge("process.vm_bytes").value(),
            gauge("process.rss_bytes").value());
}

TEST(Export, FlushCallbacksRunOnEveryUpdate) {
  int calls = 0;
  register_flush_callback("test.callback", [&calls] { ++calls; });
  update_process_gauges();
  update_process_gauges();
  EXPECT_EQ(calls, 2);
  // Re-registration replaces, not stacks.
  register_flush_callback("test.callback", [] {});
  update_process_gauges();
  EXPECT_EQ(calls, 2);
}

TEST(Export, BackgroundFlusherFillsRingAndSinks) {
  const std::string jsonl = ::testing::TempDir() + "/export_bg.jsonl";
  const std::string prom = ::testing::TempDir() + "/export_bg.prom";
  std::remove(jsonl.c_str());
  std::remove(prom.c_str());

  MetricsExporter exporter;
  ExportOptions options;
  options.interval = milliseconds{20};
  options.jsonl_path = jsonl;
  options.prom_path = prom;
  options.ring_capacity = 4;
  exporter.start(options);
  EXPECT_TRUE(exporter.running());
  std::this_thread::sleep_for(milliseconds{120});
  exporter.stop();  // final flush guarantees at least one snapshot
  EXPECT_FALSE(exporter.running());
  EXPECT_GE(exporter.flush_count(), 1u);

  const std::vector<TimedSnapshot> ring = exporter.ring();
  ASSERT_FALSE(ring.empty());
  EXPECT_LE(ring.size(), 4u);
  for (std::size_t i = 1; i < ring.size(); ++i) {
    EXPECT_GE(ring[i].uptime_ns, ring[i - 1].uptime_ns);  // oldest first
  }

  std::ifstream prom_in{prom};
  ASSERT_TRUE(prom_in.good());
  std::ostringstream prom_text;
  prom_text << prom_in.rdbuf();
  EXPECT_NE(prom_text.str().find("# TYPE"), std::string::npos);

  std::ifstream jsonl_in{jsonl};
  ASSERT_TRUE(jsonl_in.good());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(jsonl_in, line)) {
    ++lines;
    json::parse(line);  // throws on malformed framing
  }
  EXPECT_EQ(lines, exporter.flush_count());

  std::remove(jsonl.c_str());
  std::remove(prom.c_str());
}

TEST(Export, RingWrapsKeepingNewest) {
  MetricsExporter exporter;
  ExportOptions options;
  options.interval = milliseconds{60000};  // timer never fires in-test
  options.ring_capacity = 3;
  exporter.start(options);
  for (int i = 0; i < 7; ++i) exporter.flush_now();
  exporter.stop();
  const std::vector<TimedSnapshot> ring = exporter.ring();
  ASSERT_EQ(ring.size(), 3u);
  for (std::size_t i = 1; i < ring.size(); ++i) {
    EXPECT_GE(ring[i].uptime_ns, ring[i - 1].uptime_ns);
  }
  EXPECT_GE(exporter.flush_count(), 8u);  // 7 manual + final
}

}  // namespace
}  // namespace hp::obs
