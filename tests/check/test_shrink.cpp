// The shrinker must preserve the failure (the predicate stays true),
// actually minimize, and terminate within its budget. Failure
// predicates here are synthetic properties with known minimal
// witnesses, so the expected shrink target is exact.
#include "check/shrink.hpp"

#include <gtest/gtest.h>

#include "core/hypergraph.hpp"
#include "core/kcore.hpp"
#include "util/rng.hpp"

#include "../core/test_helpers.hpp"

namespace hp::check {
namespace {

using hyper::Hypergraph;
using hyper::HypergraphBuilder;

bool contains_vertex_pair_edge(const Hypergraph& h) {
  for (index_t e = 0; e < h.num_edges(); ++e) {
    if (h.edge_size(e) == 2) return true;
  }
  return false;
}

TEST(Shrink, MinimizesToSingleEdge) {
  Rng rng{17};
  const Hypergraph h = hyper::testing::random_hypergraph(rng, 30, 40, 6);
  ASSERT_TRUE(contains_vertex_pair_edge(h));

  ShrinkStats stats;
  const Hypergraph shrunk =
      shrink(h, contains_vertex_pair_edge, ShrinkOptions{}, &stats);

  EXPECT_TRUE(contains_vertex_pair_edge(shrunk));
  EXPECT_EQ(shrunk.num_edges(), 1);
  EXPECT_EQ(shrunk.num_vertices(), 2);  // compaction dropped the rest
  EXPECT_GT(stats.predicate_calls, 0);
}

TEST(Shrink, MinimizesMembersWithinAnEdge) {
  HypergraphBuilder b{10};
  b.add_edge({0, 1, 2, 3, 4, 5, 6, 7, 8, 9});
  const Hypergraph h = b.build();

  // "Some edge contains vertex 4" -- minimal witness is one singleton.
  const auto predicate = [](const Hypergraph& g) {
    for (index_t e = 0; e < g.num_edges(); ++e) {
      for (index_t v : g.vertices_of(e)) {
        if (v == 4) return true;
      }
    }
    return false;
  };
  const Hypergraph shrunk = shrink(h, predicate);
  ASSERT_EQ(shrunk.num_edges(), 1);
  EXPECT_EQ(shrunk.edge_size(0), 1);
  // This predicate depends on the vertex's identity, so the compaction
  // pass (which renumbers) must be rejected: the universe stays at 10.
  EXPECT_EQ(shrunk.num_vertices(), 10);
  EXPECT_EQ(shrunk.vertices_of(0)[0], 4);
}

TEST(Shrink, PreservesFailuresThatNeedStructure) {
  // "Max core >= 2" needs an actual 2-core; the shrinker must not
  // destroy it while discarding the satellite edges around it.
  HypergraphBuilder b{12};
  b.add_edge({0, 1, 2});
  b.add_edge({0, 1, 3});
  b.add_edge({0, 2, 3});
  b.add_edge({1, 2, 3});
  for (index_t v = 4; v < 12; ++v) b.add_edge({v});
  const Hypergraph h = b.build();

  const auto predicate = [](const Hypergraph& g) {
    return hyper::core_decomposition(g).max_core >= 2;
  };
  ASSERT_TRUE(predicate(h));
  const Hypergraph shrunk = shrink(h, predicate);
  EXPECT_TRUE(predicate(shrunk));
  EXPECT_LE(shrunk.num_edges(), 4);
  EXPECT_LE(shrunk.num_vertices(), 4);
}

TEST(Shrink, RespectsPredicateBudget) {
  Rng rng{23};
  const Hypergraph h = hyper::testing::random_hypergraph(rng, 40, 50, 6);
  ShrinkOptions options;
  options.max_predicate_calls = 10;
  ShrinkStats stats;
  const Hypergraph shrunk = shrink(
      h, [](const Hypergraph&) { return true; }, options, &stats);
  EXPECT_LE(stats.predicate_calls, options.max_predicate_calls);
  // Even a truncated shrink must return a valid failing instance.
  EXPECT_NO_THROW(hyper::validate(shrunk));
}

TEST(Shrink, FixpointOnAlreadyMinimalInstance) {
  HypergraphBuilder b{1};
  b.add_edge({0});
  const Hypergraph h = b.build();
  ShrinkStats stats;
  const Hypergraph shrunk = shrink(
      h, [](const Hypergraph& g) { return g.num_edges() == 1; },
      ShrinkOptions{}, &stats);
  EXPECT_EQ(shrunk.num_edges(), 1);
  EXPECT_EQ(shrunk.num_vertices(), 1);
}

}  // namespace
}  // namespace hp::check
