// End-to-end tests of the hp_fuzz driver library: sweeps are clean and
// deterministic, reproducers round-trip through the text loader, and
// the checked-in corpus (tests/corpus/) replays green. The corpus
// replay is the regression guarantee ISSUE'd for every bug the fuzzer
// finds: its shrunk witness lands in tests/corpus/ and this test runs
// it forever after.
#include "check/fuzz.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "core/hypergraph_io.hpp"

#ifndef HP_TEST_CORPUS_DIR
#error "HP_TEST_CORPUS_DIR must point at tests/corpus"
#endif

namespace hp::check {
namespace {

namespace fs = std::filesystem;
using hyper::Hypergraph;
using hyper::HypergraphBuilder;

TEST(FuzzDriver, SmallSweepIsClean) {
  FuzzConfig config;
  config.seed_begin = 0;
  config.seed_end = 40;
  config.mutation_trials = 2;
  const FuzzSummary summary = run_fuzz(config);
  EXPECT_EQ(summary.cases, 40);
  EXPECT_EQ(summary.oracle_checks, 40);
  EXPECT_EQ(summary.mutation_trials, 40 * 2 * 4);  // 4 formats
  for (const auto& f : summary.failures) {
    for (const auto& c : f.checks) {
      ADD_FAILURE() << "seed " << f.seed << " " << c.oracle << ": "
                    << c.detail;
    }
  }
}

TEST(FuzzDriver, SweepIsDeterministic) {
  FuzzConfig config;
  config.seed_begin = 100;
  config.seed_end = 130;
  const FuzzSummary a = run_fuzz(config);
  const FuzzSummary b = run_fuzz(config);
  EXPECT_EQ(a.cases, b.cases);
  EXPECT_EQ(a.mutation_trials, b.mutation_trials);
  EXPECT_EQ(a.failures.size(), b.failures.size());
}

TEST(FuzzDriver, ReproducerRoundTripsThroughTextLoader) {
  HypergraphBuilder b{4};
  b.add_edge({0, 1});
  b.add_edge({1, 2, 3});
  const Hypergraph h = b.build();

  const std::string dir =
      (fs::path(::testing::TempDir()) / "hp_fuzz_corpus").string();
  const std::string path = write_reproducer(
      dir, 77, h, {{"core_agreement", "synthetic failure for the test"}});

  ASSERT_TRUE(fs::exists(path));
  EXPECT_EQ(fs::path(path).extension(), ".hyper");

  // Provenance comments must parse as comments, and the instance must
  // survive the round-trip.
  const Hypergraph loaded = hyper::load_text(path);
  EXPECT_TRUE(same_structure(h, loaded));

  std::ifstream in(path);
  std::string first_line;
  std::getline(in, first_line);
  EXPECT_EQ(first_line.rfind("# ", 0), 0u);
  fs::remove_all(dir);
}

TEST(FuzzDriver, ReplayEmptyDirectoryIsCleanNoop) {
  const FuzzSummary summary = replay_corpus(
      (fs::path(::testing::TempDir()) / "no_such_corpus_dir").string());
  EXPECT_EQ(summary.cases, 0);
  EXPECT_TRUE(summary.ok());
}

TEST(FuzzDriver, CheckedInCorpusReplaysGreen) {
  const FuzzSummary summary = replay_corpus(HP_TEST_CORPUS_DIR);
  EXPECT_GT(summary.cases, 0) << "corpus directory missing or empty: "
                              << HP_TEST_CORPUS_DIR;
  for (const auto& f : summary.failures) {
    for (const auto& c : f.checks) {
      ADD_FAILURE() << f.source << " " << c.oracle << ": " << c.detail;
    }
  }
}

TEST(FuzzDriver, ReplayFlagsUnparsableCorpusFile) {
  const std::string dir =
      (fs::path(::testing::TempDir()) / "hp_fuzz_bad_corpus").string();
  fs::create_directories(dir);
  {
    std::ofstream out(fs::path(dir) / "broken.hyper");
    out << "%hypergraph not a header\n";
  }
  const FuzzSummary summary = replay_corpus(dir);
  EXPECT_EQ(summary.cases, 1);
  ASSERT_EQ(summary.failures.size(), 1u);
  EXPECT_EQ(summary.failures[0].checks.at(0).oracle, "corpus_load");
  fs::remove_all(dir);
}

}  // namespace
}  // namespace hp::check
