// The oracle battery itself needs tests: a battery that silently
// returns "clean" on everything is worse than none. These verify that
// clean instances pass every oracle, that the structural comparator the
// oracles are built on actually discriminates, and that the loader
// corruption check upholds the parse-or-throw contract.
#include "check/oracles.hpp"

#include <gtest/gtest.h>

#include "check/generator.hpp"
#include "core/hypergraph.hpp"
#include "util/rng.hpp"

namespace hp::check {
namespace {

using hyper::Hypergraph;
using hyper::HypergraphBuilder;

Hypergraph paper_toy() {
  HypergraphBuilder b{7};
  b.add_edge({0, 1, 2, 3});
  b.add_edge({2, 3, 4});
  b.add_edge({4, 5});
  b.add_edge({5});
  b.add_edge({0, 1, 2, 3, 6});
  return b.build();
}

TEST(Oracles, CleanOnPaperToy) {
  const auto failures = run_all_oracles(paper_toy());
  for (const auto& f : failures) {
    ADD_FAILURE() << f.oracle << ": " << f.detail;
  }
}

TEST(Oracles, CleanOnEmptyHypergraph) {
  EXPECT_TRUE(run_all_oracles(Hypergraph{}).empty());
}

TEST(Oracles, CleanOnEdgelessHypergraph) {
  EXPECT_TRUE(run_all_oracles(HypergraphBuilder{5}.build()).empty());
}

TEST(Oracles, CleanAcrossGeneratedSeeds) {
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    const auto failures = run_all_oracles(generate(seed));
    for (const auto& f : failures) {
      ADD_FAILURE() << "seed " << seed << " " << f.oracle << ": " << f.detail;
    }
  }
}

TEST(Oracles, EveryShapeRunsClean) {
  for (int s = 0; s < kNumShapes; ++s) {
    Rng rng{static_cast<std::uint64_t>(s) + 1};
    const Hypergraph h = generate_shape(static_cast<Shape>(s), rng);
    const auto failures = run_all_oracles(h);
    for (const auto& f : failures) {
      ADD_FAILURE() << shape_name(static_cast<Shape>(s)) << " " << f.oracle
                    << ": " << f.detail;
    }
  }
}

TEST(Oracles, SameStructureIgnoresRepresentation) {
  // A built and a default-constructed empty instance differ in raw CSR
  // vectors (voff_ sizing) but are the same hypergraph.
  EXPECT_TRUE(same_structure(Hypergraph{}, HypergraphBuilder{0}.build()));

  // Member order is normalized by the builder.
  HypergraphBuilder a{4};
  a.add_edge({3, 0, 2});
  HypergraphBuilder b{4};
  b.add_edge({0, 2, 3});
  EXPECT_TRUE(same_structure(a.build(), b.build()));
}

TEST(Oracles, SameStructureDiscriminates) {
  HypergraphBuilder a{4};
  a.add_edge({0, 1});
  HypergraphBuilder b{4};
  b.add_edge({0, 2});
  EXPECT_FALSE(same_structure(a.build(), b.build()));

  // Same edges, different vertex universe (isolated vertex matters).
  HypergraphBuilder c{5};
  c.add_edge({0, 1});
  EXPECT_FALSE(same_structure(a.build(), c.build()));

  // Same edge set, different multiplicity.
  HypergraphBuilder d{4};
  d.add_edge({0, 1});
  d.add_edge({0, 1});
  EXPECT_FALSE(same_structure(a.build(), d.build()));
}

TEST(Oracles, MutatedLoadsHoldOnToyAndGenerated) {
  Rng rng{2026};
  EXPECT_TRUE(check_mutated_loads(paper_toy(), rng, 8).empty());
  for (std::uint64_t seed = 0; seed < 16; ++seed) {
    Rng seed_rng{seed};
    const auto failures = check_mutated_loads(generate(seed), seed_rng, 4);
    for (const auto& f : failures) {
      ADD_FAILURE() << "seed " << seed << " " << f.oracle << ": " << f.detail;
    }
  }
}

TEST(Oracles, DescribeMentionsSizes) {
  const std::string d = describe(paper_toy());
  EXPECT_NE(d.find("7"), std::string::npos);  // |V|
  EXPECT_NE(d.find("5"), std::string::npos);  // |F|
}

TEST(Oracles, OptionsDisableExpensiveChecks) {
  CheckOptions options;
  options.with_naive = false;
  options.with_paths = false;
  options.with_loaders = false;
  options.with_context = false;
  EXPECT_TRUE(run_all_oracles(paper_toy(), options).empty());
}

}  // namespace
}  // namespace hp::check
