// The generator is the harness's foundation: if it stops producing the
// adversarial regimes (or loses determinism), the fuzzer silently stops
// covering the interesting code paths. These tests pin per-shape
// structural properties and the seed -> instance contract.
#include "check/generator.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "core/hypergraph.hpp"
#include "util/rng.hpp"

namespace hp::check {
namespace {

using hyper::Hypergraph;

TEST(Generator, DeterministicPerSeed) {
  for (std::uint64_t seed : {0ULL, 7ULL, 123ULL, 99999ULL}) {
    const Hypergraph a = generate(seed);
    const Hypergraph b = generate(seed);
    ASSERT_EQ(a.num_vertices(), b.num_vertices()) << "seed " << seed;
    ASSERT_EQ(a.num_edges(), b.num_edges()) << "seed " << seed;
    for (index_t e = 0; e < a.num_edges(); ++e) {
      const auto ma = a.vertices_of(e);
      const auto mb = b.vertices_of(e);
      ASSERT_TRUE(std::equal(ma.begin(), ma.end(), mb.begin(), mb.end()))
          << "seed " << seed << " edge " << e;
    }
  }
}

TEST(Generator, AllInstancesValidate) {
  for (std::uint64_t seed = 0; seed < 256; ++seed) {
    const Hypergraph h = generate(seed);
    EXPECT_NO_THROW(hyper::validate(h)) << "seed " << seed;
  }
}

TEST(Generator, RespectsSizeEnvelope) {
  GenOptions options;
  options.max_vertices = 12;
  options.max_edges = 10;
  options.max_edge_size = 4;
  for (std::uint64_t seed = 0; seed < 128; ++seed) {
    const Hypergraph h = generate(seed, options);
    EXPECT_LE(h.num_vertices(), options.max_vertices) << "seed " << seed;
    EXPECT_LE(h.num_edges(), options.max_edges) << "seed " << seed;
    for (index_t e = 0; e < h.num_edges(); ++e) {
      EXPECT_LE(h.edge_size(e), options.max_edge_size)
          << "seed " << seed << " edge " << e;
    }
  }
}

TEST(Generator, SeedRangeSweepsAllShapes) {
  std::set<Shape> seen;
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    seen.insert(shape_of_seed(seed));
  }
  EXPECT_EQ(static_cast<int>(seen.size()), kNumShapes);
}

TEST(Generator, NestedChainReallyNests) {
  Rng rng{42};
  const Hypergraph h = generate_shape(Shape::kNestedChain, rng);
  ASSERT_GE(h.num_edges(), 2);
  // At least one ordered pair of distinct edges must be in containment;
  // the chain construction guarantees many.
  int containments = 0;
  for (index_t a = 0; a < h.num_edges(); ++a) {
    for (index_t b = 0; b < h.num_edges(); ++b) {
      if (a == b) continue;
      const auto ma = h.vertices_of(a);
      const auto mb = h.vertices_of(b);
      if (ma.size() > mb.size()) continue;
      if (std::includes(mb.begin(), mb.end(), ma.begin(), ma.end())) {
        ++containments;
      }
    }
  }
  EXPECT_GT(containments, 0);
}

TEST(Generator, DuplicateHeavyRepeatsEdges) {
  Rng rng{7};
  const Hypergraph h = generate_shape(Shape::kDuplicateHeavy, rng);
  std::set<std::vector<index_t>> distinct;
  for (index_t e = 0; e < h.num_edges(); ++e) {
    const auto m = h.vertices_of(e);
    distinct.insert(std::vector<index_t>(m.begin(), m.end()));
  }
  EXPECT_LT(distinct.size(), static_cast<std::size_t>(h.num_edges()));
}

TEST(Generator, SingletonShapeHasSingletonEdges) {
  Rng rng{3};
  const Hypergraph h = generate_shape(Shape::kSingletons, rng);
  bool has_singleton = false;
  for (index_t e = 0; e < h.num_edges(); ++e) {
    if (h.edge_size(e) == 1) has_singleton = true;
  }
  EXPECT_TRUE(has_singleton);
}

TEST(Generator, SparseShapeLeavesIsolatedVertices) {
  Rng rng{11};
  const Hypergraph h = generate_shape(Shape::kSparse, rng);
  index_t isolated = 0;
  for (index_t v = 0; v < h.num_vertices(); ++v) {
    if (h.vertex_degree(v) == 0) ++isolated;
  }
  EXPECT_GT(isolated, 0);
}

TEST(Generator, ProducesDegenerateInstancesAtSmallRate) {
  bool saw_empty = false;
  bool saw_edgeless = false;
  for (std::uint64_t seed = 0; seed < 512; ++seed) {
    const Hypergraph h = generate(seed);
    if (h.num_vertices() == 0) saw_empty = true;
    if (h.num_vertices() > 0 && h.num_edges() == 0) saw_edgeless = true;
  }
  EXPECT_TRUE(saw_empty);
  EXPECT_TRUE(saw_edgeless);
}

TEST(Generator, MutateTextIsDeterministicGivenRngState) {
  const std::string input = "%hypergraph 4 2\n0 1 2\n2 3\n";
  Rng a{5};
  Rng b{5};
  EXPECT_EQ(mutate_text(a, input, 4), mutate_text(b, input, 4));
}

TEST(Generator, MutateBytesChangesInput) {
  const std::string input(64, '\x5a');
  Rng rng{9};
  int changed = 0;
  for (int i = 0; i < 16; ++i) {
    if (mutate_bytes(rng, input, 3) != input) ++changed;
  }
  EXPECT_GT(changed, 8);  // overwhelming majority of mutations differ
}

TEST(Generator, MutateTextHandlesEmptyInput) {
  Rng rng{1};
  EXPECT_NO_THROW(mutate_text(rng, "", 4));
  EXPECT_NO_THROW(mutate_bytes(rng, "", 4));
}

}  // namespace
}  // namespace hp::check
