#!/usr/bin/env sh
# Tier-1 build pipeline: plain Release build + full ctest, then the same
# suite under AddressSanitizer + UBSan (HP_SANITIZE) to guard the raw
# flat-array indexing in the peeling substrate (src/core/peel/).
#
# Usage: scripts/ci.sh [build-dir-prefix]   (default: build)
set -eu

prefix="${1:-build}"
root="$(cd "$(dirname "$0")/.." && pwd)"

echo "=== tier-1: release build + ctest ==="
cmake -B "${prefix}" -S "${root}"
cmake --build "${prefix}" -j
ctest --test-dir "${prefix}" --output-on-failure

echo "=== context memoization bench (quick) ==="
"${prefix}/bench/bench_micro_context" --quick --json "${root}/BENCH_context.json"

echo "=== tier-1: sanitized build + ctest (HP_SANITIZE=address;undefined) ==="
cmake -B "${prefix}-asan" -S "${root}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo "-DHP_SANITIZE=address;undefined"
cmake --build "${prefix}-asan" -j
ctest --test-dir "${prefix}-asan" --output-on-failure

echo "ci: all green"
