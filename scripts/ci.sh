#!/usr/bin/env sh
# Tier-1 build pipeline: plain Release build + full ctest, then the same
# suite under AddressSanitizer + UBSan (HP_SANITIZE) to guard the raw
# flat-array indexing in the peeling substrate (src/core/peel/).
#
# Usage: scripts/ci.sh [build-dir-prefix]   (default: build)
set -eu

prefix="${1:-build}"
root="$(cd "$(dirname "$0")/.." && pwd)"

echo "=== tier-1: release build + ctest (default HP_THREADS) ==="
cmake -B "${prefix}" -S "${root}"
cmake --build "${prefix}" -j
ctest --test-dir "${prefix}" --output-on-failure

echo "=== tier-1: ctest again with the pool forced serial (HP_THREADS=1) ==="
# The determinism contract (DESIGN.md section 11): every parallel
# algorithm must produce identical results with no worker threads.
HP_THREADS=1 ctest --test-dir "${prefix}" --output-on-failure

echo "=== parallel runtime ablation bench (quick) ==="
"${prefix}/bench/bench_micro_par" --quick --json "${root}/BENCH_par.json"
python3 - "${root}/BENCH_par.json" <<'EOF'
import json, sys

bench = json.load(open(sys.argv[1]))
hw = bench["hardware_threads"]
speedup = bench["bfs_speedup"]
for inst in bench["instances"]:
    for w in inst["workloads"]:
        assert w["deterministic"], \
            f"{inst['name']}/{w['name']}: serial and pool outputs differ"
# The speedup gate only means something with real parallelism under it;
# on the 1-2 core CI fallback we record the number but do not gate.
if hw >= 8:
    assert speedup >= 3.0, \
        f"all-sources BFS speedup {speedup:.2f}x < 3x on {hw} threads"
    print(f"par bench ok: {speedup:.2f}x BFS speedup on {hw} threads (gate: >= 3x)")
else:
    print(f"par bench ok: {speedup:.2f}x BFS speedup on {hw} threads "
          f"(< 8 threads, 3x gate skipped)")
EOF

echo "=== frontier peeling ablation bench (quick) ==="
HP_THREADS=16 "${prefix}/bench/bench_micro_kcore" --quick --proteins 1000000 \
  --json "${root}/BENCH_kcore.json"
python3 - "${root}/BENCH_kcore.json" <<'EOF'
import json, sys

bench = json.load(open(sys.argv[1]))
hw = bench["hardware_threads"]
speedup = bench["frontier_speedup"]
# The binary exits nonzero before timing if the engines disagree; the
# flag is recorded so a stale JSON can never pass the gate.
assert bench["self_check"], "frontier/scan engines disagreed before timing"
assert bench["num_vertices"] >= 1000000, "surrogate below gate scale"
# Like the BFS gate: only gate the speedup when real hardware threads
# back the 16 lanes; on the 1-2 core CI fallback record but don't gate.
if hw >= 8:
    assert speedup >= 2.0, \
        f"frontier peel speedup {speedup:.2f}x < 2x over scan-and-stamp " \
        f"on {hw} threads"
    print(f"kcore bench ok: {speedup:.2f}x frontier speedup on {hw} threads "
          f"(gate: >= 2x)")
else:
    print(f"kcore bench ok: {speedup:.2f}x frontier speedup on {hw} threads "
          f"(< 8 threads, 2x gate skipped)")
EOF

echo "=== mutable pipeline ablation bench (quick) ==="
"${prefix}/bench/bench_micro_mutate" --quick --json "${root}/BENCH_mutate.json"
python3 - "${root}/BENCH_mutate.json" <<'EOF'
import json, sys

bench = json.load(open(sys.argv[1]))
speedup = bench["gate_speedup"]
scaled = next(i for i in bench["instances"] if i["name"] == "cellzome scaled")
assert scaled["rebuild_seconds"] > 0, "rebuild baseline did not run"
assert speedup >= 20.0, \
    f"incremental single-edge update speedup {speedup:.1f}x < 20x " \
    f"vs full context rebuild on the scaled surrogate"
print(f"mutate bench ok: {speedup:.1f}x single-update speedup vs rebuild "
      f"(gate: >= 20x)")
EOF

echo "=== snapshot format: round-trip + corruption + open-speed gate ==="
snap_dir="${prefix}/snap-check"
mkdir -p "${snap_dir}"
"${prefix}/src/cli/hyperproteome" generate "${snap_dir}/surrogate.hyper" \
  --proteins 20000
"${prefix}/src/cli/hyperproteome" snapshot convert \
  "${snap_dir}/surrogate.hyper" "${snap_dir}/surrogate.hps"
"${prefix}/src/cli/hyperproteome" snapshot convert \
  "${snap_dir}/surrogate.hyper" "${snap_dir}/surrogate_varint.hps" \
  --codec varint
"${prefix}/src/cli/hyperproteome" snapshot verify "${snap_dir}/surrogate.hps"
"${prefix}/src/cli/hyperproteome" snapshot verify \
  "${snap_dir}/surrogate_varint.hps"
# Analysis over the mmap'd snapshot must print exactly what the text
# path prints (the zero-copy storage is an implementation detail).
"${prefix}/src/cli/hyperproteome" stats "${snap_dir}/surrogate.hyper" \
  > "${snap_dir}/stats_text.txt"
"${prefix}/src/cli/hyperproteome" stats "${snap_dir}/surrogate.hps" \
  > "${snap_dir}/stats_snap.txt"
"${prefix}/src/cli/hyperproteome" stats "${snap_dir}/surrogate_varint.hps" \
  > "${snap_dir}/stats_varint.txt"
diff "${snap_dir}/stats_text.txt" "${snap_dir}/stats_snap.txt"
diff "${snap_dir}/stats_text.txt" "${snap_dir}/stats_varint.txt"
# Byte-flip corruption of snapshots is oracle-checked inside hp_fuzz
# (check_mutated_loads), which the sanitizer stage below re-runs.
"${prefix}/bench/bench_micro_snapshot" --quick \
  --json "${root}/BENCH_snapshot.json"
python3 - "${root}/BENCH_snapshot.json" <<'EOF'
import json, sys

bench = json.load(open(sys.argv[1]))
speedup = bench["gate_speedup"]
scaled = next(i for i in bench["instances"] if i["name"] == "cellzome scaled")
text = next(w for w in scaled["workloads"] if w["name"] == "text parse")
assert text["seconds"] > 0, "text-parse baseline did not run"
assert speedup >= 50.0, \
    f"warm mmap open speedup {speedup:.1f}x < 50x vs text parse " \
    f"on the scaled surrogate"
print(f"snapshot bench ok: {speedup:.1f}x warm open speedup vs text parse "
      f"(gate: >= 50x)")
EOF

echo "=== fuzz pipeline throughput bench (quick) ==="
"${prefix}/bench/bench_micro_fuzz" --quick --json "${root}/BENCH_fuzz.json"

echo "=== context memoization bench (quick) ==="
"${prefix}/bench/bench_micro_context" --quick --json "${root}/BENCH_context.json"

echo "=== tracing overhead bench (quick) ==="
"${prefix}/bench/bench_micro_obs" --quick --json "${root}/BENCH_obs.json"
python3 - "${root}/BENCH_obs.json" <<'EOF'
import json, sys

bench = json.load(open(sys.argv[1]))
disabled = bench["derived_disabled_overhead_percent"]
enabled = bench["measured_enabled_overhead_percent"]
assert bench["disabled_within_0_1_percent"], \
    f"tracing-disabled overhead {disabled:.5f}% exceeds the 0.1% budget"
assert bench["enabled_within_5_percent"], \
    f"tracing-enabled overhead {enabled:.2f}% exceeds the 5% budget"
assert bench["profiler_samples"] > 0, "profiler collected no samples"
print(f"obs bench ok: disabled {disabled:.5f}% (gate: <= 0.1%), "
      f"enabled {enabled:.2f}% (gate: <= 5%), "
      f"profiler {bench['profiler_overhead_percent']:.2f}% (recorded)")
EOF

echo "=== traced + profiled report on the Cellzome surrogate ==="
obs_dir="${prefix}/obs-check"
mkdir -p "${obs_dir}"
"${prefix}/src/cli/hyperproteome" generate "${obs_dir}/cellzome.tsv" \
  --proteins 20000
# HP_THREADS=16 oversubscribes the pool so the span tree really crosses
# lanes; the validator below requires every task span to reattach to the
# single cli.report root via parent links and s/f flow events.
HP_THREADS=16 "${prefix}/src/cli/hyperproteome" report \
  "${obs_dir}/cellzome.tsv" \
  --trace "${obs_dir}/report_trace.json" \
  --metrics "${obs_dir}/report_metrics.json" \
  --profile "${obs_dir}/report_profile.folded" \
  --metrics-interval 50ms \
  --metrics-jsonl "${obs_dir}/report_metrics.jsonl" \
  --metrics-prom "${obs_dir}/report_metrics.prom"
python3 - "${obs_dir}/report_trace.json" "${obs_dir}/report_metrics.json" \
  "${obs_dir}/report_profile.folded" "${obs_dir}/report_metrics.jsonl" \
  "${obs_dir}/report_metrics.prom" <<'EOF'
import json, sys

trace = json.load(open(sys.argv[1]))
events = trace["traceEvents"]
assert events, "trace has no events"

# Balanced B/E per thread, with at least one span per context artifact
# and per peel level.
depth = {}
for e in events:
    tid = e["tid"]
    if e["ph"] == "B":
        depth[tid] = depth.get(tid, 0) + 1
    elif e["ph"] == "E":
        depth[tid] = depth.get(tid, 0) - 1
        assert depth[tid] >= 0, f"unbalanced E on tid {tid}"
assert all(d == 0 for d in depth.values()), f"unclosed spans: {depth}"

names = {e["name"] for e in events}
builds = sorted(n for n in names if n.startswith("context.build."))
assert len(builds) >= 1, "no context artifact build spans"
peel_levels = sum(
    1 for e in events
    if e["name"] == "kcore.peel_level" and e["ph"] == "B")
assert peel_levels >= 1, "no per-level peel spans"
assert "cli.report" in names and "cli.load_dataset" in names

# Causal-tree integrity: every B event carries trace/span/parent ids,
# they form ONE tree rooted at cli.report, and no parent dangles.
spans = {}
traces = set()
for e in events:
    if e["ph"] != "B":
        continue
    args = e.get("args", {})
    assert {"trace", "span", "parent"} <= args.keys(), \
        f"span {e['name']} missing causal ids"
    assert args["span"] not in spans, f"duplicate span id {args['span']}"
    spans[args["span"]] = args
    traces.add(args["trace"])
assert len(traces) == 1, f"expected one trace tree, got {len(traces)}"
roots = [s for s in spans.values() if s["parent"] == 0]
assert len(roots) == 1, f"expected one root span, got {len(roots)}"
dangling = [s for s in spans.values()
            if s["parent"] != 0 and s["parent"] not in spans]
assert not dangling, f"{len(dangling)} spans reference missing parents"
threads = {e["tid"] for e in events if e["ph"] == "B"}
flows = sum(1 for e in events if e["ph"] in ("s", "f"))

metrics = json.load(open(sys.argv[2]))
assert metrics["counters"].get("peel.rounds", 0) > 0
assert any(k.startswith("context.") and k.endswith(".builds")
           for k in metrics["counters"])
assert "context.build_ns" in metrics["histograms"]

# Folded profile: non-empty, every line is "frame;frame;... count".
folded = [l for l in open(sys.argv[3]) if l.strip()]
assert folded, "profiler wrote an empty folded file"
for line in folded:
    stack, _, count = line.rstrip("\n").rpartition(" ")
    assert stack and count.isdigit() and int(count) > 0, \
        f"malformed folded line: {line!r}"

# Continuous export: the JSONL series parses per line and the final
# flush carries process gauges; the Prometheus snapshot is typed.
series = [json.loads(l) for l in open(sys.argv[4]) if l.strip()]
assert series, "metrics JSONL series is empty"
last = series[-1]
assert last["gauges"].get("process.rss_bytes", 0) > 0
assert "par.queue_depth" in last["gauges"]
prom = open(sys.argv[5]).read()
assert "# TYPE hp_process_rss_bytes gauge" in prom
assert "hp_peel_rounds" in prom

print(f"trace ok: {len(events)} events, one tree of {len(spans)} spans "
      f"across {len(threads)} threads ({flows} flow events), "
      f"{len(builds)} artifact build spans, {peel_levels} peel-level "
      f"spans; profile ok: {len(folded)} folded stacks; "
      f"metrics ok: {len(series)} flushes")
EOF

echo "=== analysis server: scripted session + replay + cache gate ==="
serve_dir="${prefix}/serve-check"
rm -rf "${serve_dir}"
mkdir -p "${serve_dir}"
"${prefix}/src/cli/hyperproteome" generate "${serve_dir}/surrogate.hyper" \
  --proteins 20000
sock="unix:${serve_dir}/hp.sock"
# The daemon under --trace: every request lands as a serve.request span
# in the Chrome trace, validated by hp_trace_check after shutdown.
"${prefix}/src/cli/hyperproteome" serve --socket "${sock}" \
  --record "${serve_dir}/session.jsonl" \
  --trace "${serve_dir}/serve_trace.json" \
  > "${serve_dir}/server.log" 2>&1 &
server_pid=$!
for _ in $(seq 1 100); do
  [ -S "${serve_dir}/hp.sock" ] && break
  sleep 0.1
done
[ -S "${serve_dir}/hp.sock" ]
# Parity: server answers (cold, then cached) must be byte-identical to
# the one-shot CLI on the same dataset.
"${prefix}/src/cli/hyperproteome" stats "${serve_dir}/surrogate.hyper" \
  > "${serve_dir}/stats_oneshot.txt"
"${prefix}/src/cli/hyperproteome" query --socket "${sock}" \
  stats "${serve_dir}/surrogate.hyper" > "${serve_dir}/stats_cold.txt"
"${prefix}/src/cli/hyperproteome" query --socket "${sock}" \
  stats "${serve_dir}/surrogate.hyper" > "${serve_dir}/stats_warm.txt"
diff "${serve_dir}/stats_oneshot.txt" "${serve_dir}/stats_cold.txt"
diff "${serve_dir}/stats_oneshot.txt" "${serve_dir}/stats_warm.txt"
"${prefix}/src/cli/hyperproteome" query --socket "${sock}" \
  stats "${serve_dir}/surrogate.hyper" --verbose \
  | grep -q "cache=hit"
"${prefix}/src/cli/hyperproteome" query --socket "${sock}" \
  soverlap "${serve_dir}/surrogate.hyper" > /dev/null
# Snapshot the record now: the replay below re-appends to the live
# file, and the timeout request after this would replay as a failure.
cp "${serve_dir}/session.jsonl" "${serve_dir}/replay_input.jsonl"
# A request that blows its deadline must come back as a timeout error,
# not hang the session.
if "${prefix}/src/cli/hyperproteome" query --socket "${sock}" \
  sleep --ms=5000 --timeout-ms=50 > "${serve_dir}/timeout.txt" 2>&1; then
  echo "serve: expected the timed-out request to fail" >&2
  exit 1
fi
grep -q "timeout after 50ms" "${serve_dir}/timeout.txt"
"${prefix}/src/cli/hyperproteome" query --socket "${sock}" \
  --script "${serve_dir}/replay_input.jsonl" > "${serve_dir}/replay.txt"
"${prefix}/src/cli/hyperproteome" query --socket "${sock}" shutdown \
  > /dev/null
wait "${server_pid}"
grep -q "server stopped" "${serve_dir}/server.log"
"${prefix}/src/obs/hp_trace_check" "${serve_dir}/serve_trace.json" \
  --require-span serve.request --min-spans 5
# The standalone daemon binary answers the same protocol.
"${prefix}/src/serve/hp_serve" --socket "unix:${serve_dir}/hpd.sock" \
  > "${serve_dir}/daemon.log" 2>&1 &
daemon_pid=$!
for _ in $(seq 1 100); do
  [ -S "${serve_dir}/hpd.sock" ] && break
  sleep 0.1
done
"${prefix}/src/cli/hyperproteome" query \
  --socket "unix:${serve_dir}/hpd.sock" ping | grep -q "pong"
"${prefix}/src/cli/hyperproteome" query \
  --socket "unix:${serve_dir}/hpd.sock" shutdown > /dev/null
wait "${daemon_pid}"

echo "=== analysis server ablation bench (quick) ==="
"${prefix}/bench/bench_micro_serve" --quick --json "${root}/BENCH_serve.json"
python3 - "${root}/BENCH_serve.json" <<'EOF'
import json, sys

bench = json.load(open(sys.argv[1]))
speedup = bench["gate_speedup"]
assert bench["cold_seconds"] > 0, "cold one-shot baseline did not run"
assert speedup >= 100.0, \
    f"warm server query speedup {speedup:.1f}x < 100x vs cold one-shot " \
    f"on the scaled surrogate"
loop = bench["open_loop"]
assert loop["errors"] == 0, f"open-loop load run saw {loop['errors']} errors"
assert loop["requests"] > 0, "open-loop load run sent no requests"
print(f"serve bench ok: {speedup:.0f}x warm-query speedup (gate: >= 100x), "
      f"open-loop p99 {loop['p99_us']:.0f}us at "
      f"{loop['achieved_rps']:.0f} rps")
EOF

echo "=== tier-1: sanitized build + ctest (HP_SANITIZE=address;undefined) ==="
cmake -B "${prefix}-asan" -S "${root}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo "-DHP_SANITIZE=address;undefined"
cmake --build "${prefix}-asan" -j
# The deep fuzz sweep (label: slow) runs in the release pass above;
# under sanitizers the 1000-seed smoke below covers the same oracles.
ctest --test-dir "${prefix}-asan" --output-on-failure -LE slow

echo "=== differential fuzz smoke under sanitizers (1000 seeds) ==="
# Deterministic fixed budget: generated instances through the full
# oracle battery -- including the incremental-vs-rebuild mutation
# differential (a random mutation trace per instance, so 1000 mutation
# sequences per run) -- plus loader-corruption trials, then the
# checked-in reproducer corpus. Zero mismatches required.
"${prefix}-asan/src/cli/hp_fuzz" --seed-range 0:1000 \
  --corpus "${prefix}-asan/fuzz-corpus"
"${prefix}-asan/src/cli/hp_fuzz" --replay "${root}/tests/corpus"

echo "=== work-stealing pool under ThreadSanitizer (HP_SANITIZE=thread) ==="
cmake -B "${prefix}-tsan" -S "${root}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo "-DHP_SANITIZE=thread"
cmake --build "${prefix}-tsan" -j
# HP_THREADS=4 forces a real multi-worker pool even on 1-2 core CI
# machines, so TSan sees genuine cross-thread interleavings in the
# deques, the parallel kcore/BFS/fuzz paths, and the prefetch fan-out.
HP_THREADS=4 "${prefix}-tsan/tests/unit_tests" --gtest_filter='*Par*:*par*:TaskGroup*:ThreadPool*:LaneLimit*:Oversubscription*:Determinism*:ParallelKCore*:KCoreEquivalence*:FrontierPeel*:Seeds/FrontierPeel*:Invariants*:Mutate*:ServeTest*:ContextPool*'
# The fuzz smoke again runs the 1000-sequence mutation differential,
# here with a real multi-worker pool under the rebuild tier's builds.
HP_THREADS=4 "${prefix}-tsan/src/cli/hp_fuzz" --seed-range 0:1000 \
  --corpus "${prefix}-tsan/fuzz-corpus"

echo "ci: all green"
