// Quickstart: build a protein-complex hypergraph, inspect it, compute
// its core decomposition, and pick a bait cover -- the whole public API
// surface in ~60 lines.
//
//   $ ./quickstart
#include <cstdio>

#include "bio/complex_io.hpp"
#include "core/cover.hpp"
#include "core/kcore.hpp"
#include "core/stats.hpp"
#include "core/traversal.hpp"

int main() {
  // 1. Parse a complex membership table (the format of public complex
  //    catalogues: "ComplexName<TAB>Protein1<TAB>Protein2...").
  const char* table =
      "Arp2/3\tARP2\tARP3\tARC15\tARC18\tARC19\n"
      "SAGA\tGCN5\tADA2\tSPT7\tTRA1\n"
      "SLIK\tGCN5\tADA2\tSPT7\tRTG2\n"
      "ADA\tGCN5\tADA2\tAHC1\n"
      "NuA4\tESA1\tTRA1\tEPL1\n"
      "Mediator\tSRB4\tSRB5\tMED6\tGCN5\n";
  const hp::bio::ComplexDataset data = hp::bio::parse_complex_table(table);
  const hp::hyper::Hypergraph& h = data.hypergraph;

  // 2. Summary statistics (section 2 of the paper).
  std::printf("%s\n", hp::hyper::to_string(hp::hyper::summarize(h)).c_str());

  // 3. Distances: how many complexes apart are two proteins?
  const hp::index_t arp2 = data.proteins.id_of("ARP2");
  const hp::index_t med6 = data.proteins.id_of("MED6");
  const auto dist = hp::hyper::bfs_distances(h, arp2);
  if (dist[med6] != hp::kInvalidIndex) {
    std::printf("distance(ARP2, MED6) = %u hyperedges\n\n", dist[med6]);
  } else {
    std::printf("ARP2 and MED6 are in different components\n\n");
  }

  // 4. Core decomposition (section 3): the densest sub-proteome.
  const hp::hyper::HyperCoreResult cores = hp::hyper::core_decomposition(h);
  std::printf("maximum core: k = %u\n", cores.max_core);
  std::printf("core proteins:");
  for (hp::index_t v : cores.core_vertices(cores.max_core)) {
    std::printf(" %s", data.proteins.name_of(v).c_str());
  }
  std::printf("\ncore complexes:");
  for (hp::index_t e : cores.core_edges(cores.max_core)) {
    std::printf(" %s", data.complex_names[e].c_str());
  }
  std::printf("\n\n");

  // 5. Bait selection (section 4): a minimum set of proteins whose TAP
  //    pulldowns identify every complex.
  const hp::hyper::CoverResult cover =
      hp::hyper::greedy_vertex_cover(h, hp::hyper::unit_weights(h));
  std::printf("greedy bait cover (%zu proteins, avg degree %.2f):",
              cover.vertices.size(), cover.average_degree);
  for (hp::index_t v : cover.vertices) {
    std::printf(" %s", data.proteins.name_of(v).c_str());
  }
  std::printf("\n");
  return 0;
}
