// Core proteome analysis on the Cellzome-scale surrogate: compute the
// maximum hypergraph core, extract it as a standalone hypergraph, list
// its proteins, and test it for essentiality/homology enrichment --
// the full section-3 workflow.
//
//   $ ./core_proteome [--seed N] [--k K]
#include <cstdio>

#include "bio/cellzome_synth.hpp"
#include "bio/enrichment.hpp"
#include "core/kcore.hpp"
#include "util/args.hpp"

int main(int argc, char** argv) {
  const hp::Args args{argc, argv};
  hp::bio::CellzomeParams params;
  params.seed = static_cast<std::uint64_t>(args.get_int("seed", 20040426));

  const hp::bio::ComplexDataset data = hp::bio::cellzome_surrogate(params);
  const hp::hyper::Hypergraph& h = data.hypergraph;

  const hp::hyper::HyperCoreResult cores = hp::hyper::core_decomposition(h);
  const hp::index_t k = static_cast<hp::index_t>(
      args.get_int("k", static_cast<std::int64_t>(cores.max_core)));
  std::printf("maximum core: k = %u; analysing the %u-core\n\n",
              cores.max_core, k);

  const auto core_vertices = cores.core_vertices(k);
  const hp::hyper::SubHypergraph core = hp::hyper::extract_core(h, cores, k);
  std::printf("%u-core: %u proteins, %u complexes\n", k,
              core.hypergraph.num_vertices(), core.hypergraph.num_edges());

  std::printf("\ncore proteins (first 20):");
  for (std::size_t i = 0; i < core_vertices.size() && i < 20; ++i) {
    std::printf(" %s", data.proteins.name_of(core_vertices[i]).c_str());
  }
  std::printf("%s\n", core_vertices.size() > 20 ? " ..." : "");

  // Core complexes and their residual sizes inside the core.
  std::printf("\ncore complexes (first 10, with residual sizes):\n");
  for (hp::index_t e = 0;
       e < core.hypergraph.num_edges() && e < 10; ++e) {
    std::printf("  %s: %u core members\n",
                data.complex_names[core.edge_to_parent[e]].c_str(),
                core.hypergraph.edge_size(e));
  }

  // Enrichment against the simulated annotation source.
  hp::Rng rng{params.seed ^ 0xE5ULL};
  const hp::bio::AnnotationSet annotations = hp::bio::simulate_annotations(
      h.num_vertices(), core_vertices, {}, rng);
  const hp::bio::CoreProteomeReport report =
      hp::bio::core_proteome_report(core_vertices, annotations);

  std::printf(
      "\nannotation summary: %llu unknown, %llu known (%llu essential), "
      "%llu with homologs\n",
      static_cast<unsigned long long>(report.core_unknown),
      static_cast<unsigned long long>(report.core_known),
      static_cast<unsigned long long>(report.core_known_essential),
      static_cast<unsigned long long>(report.core_homologs));
  std::printf("essential enrichment: %.2fx (p = %.2e)\n",
              report.essential_enrichment.fold_enrichment,
              report.essential_enrichment.p_value);
  std::printf("homolog enrichment:   %.2fx (p = %.2e)\n",
              report.homolog_enrichment.fold_enrichment,
              report.homolog_enrichment.p_value);
  return 0;
}
