// Bait selection for a TAP experiment (section 4 workflow): compare the
// three cover strategies on the Cellzome-scale surrogate, then verify
// their reliability with the pulldown simulator.
//
//   $ ./bait_selection [--seed N] [--success-rate P] [--trials N]
#include <cstdio>

#include "bio/bait.hpp"
#include "bio/cellzome_synth.hpp"
#include "bio/tap_sim.hpp"
#include "util/args.hpp"

namespace {

void describe(const char* name, const hp::bio::BaitSelection& s,
              const hp::bio::ComplexDataset& data) {
  std::printf("%-26s %4zu baits, avg degree %.2f", name, s.baits.size(),
              s.average_degree);
  if (!s.excluded_complexes.empty()) {
    std::printf(", %zu complexes excluded (singletons)",
                s.excluded_complexes.size());
  }
  std::printf("\n  first baits:");
  for (std::size_t i = 0; i < s.baits.size() && i < 8; ++i) {
    std::printf(" %s", data.proteins.name_of(s.baits[i]).c_str());
  }
  std::printf("%s\n", s.baits.size() > 8 ? " ..." : "");
}

}  // namespace

int main(int argc, char** argv) {
  const hp::Args args{argc, argv};
  hp::bio::CellzomeParams params;
  params.seed = static_cast<std::uint64_t>(args.get_int("seed", 20040426));
  const double success = args.get_double("success-rate", 0.7);
  const int trials = static_cast<int>(args.get_int("trials", 200));

  const hp::bio::ComplexDataset data = hp::bio::cellzome_surrogate(params);
  const hp::hyper::Hypergraph& h = data.hypergraph;

  const hp::bio::BaitSelection unit =
      hp::bio::select_baits(h, hp::bio::BaitStrategy::kMinCardinality);
  const hp::bio::BaitSelection deg2 =
      hp::bio::select_baits(h, hp::bio::BaitStrategy::kDegreeSquared);
  const hp::bio::BaitSelection twice =
      hp::bio::select_baits(h, hp::bio::BaitStrategy::kDoubleCoverage);

  std::puts("bait selection strategies:\n");
  describe("min-cardinality cover:", unit, data);
  describe("deg^2-weighted cover:", deg2, data);
  describe("2-multicover:", twice, data);

  std::printf("\nTAP simulation (%d trials, %.0f%% pulldown success):\n",
              trials, success * 100.0);
  hp::Rng rng{params.seed ^ 0x7A75ULL};
  const hp::bio::TapSimParams sim{success, trials};
  const struct {
    const char* name;
    const hp::bio::BaitSelection* selection;
  } strategies[] = {{"min-cardinality", &unit},
                    {"deg^2-weighted", &deg2},
                    {"2-multicover", &twice}};
  for (const auto& strategy : strategies) {
    const hp::bio::TapSimResult r =
        hp::bio::simulate_tap(h, strategy.selection->baits, sim, rng);
    std::printf("  %-16s recovers %.1f%% of complexes per round\n",
                strategy.name, r.mean_recovered_fraction * 100.0);
  }
  return 0;
}
