// Model-comparison walkthrough: load (or synthesize) a protein-complex
// dataset and contrast the hypergraph against the paper's two baseline
// graph representations on the three axes the paper argues --
// information loss, storage, and the artifacts each model introduces.
//
//   $ ./compare_models [--file complexes.tsv] [--seed N]
#include <cstdio>

#include "bio/cellzome_synth.hpp"
#include "bio/complex_io.hpp"
#include "bio/core_recovery.hpp"
#include "core/kcore.hpp"
#include "core/projection.hpp"
#include "core/soverlap.hpp"
#include "graph/graph_kcore.hpp"
#include "graph/graph_stats.hpp"
#include "util/args.hpp"

int main(int argc, char** argv) {
  const hp::Args args{argc, argv};
  hp::bio::ComplexDataset data;
  if (args.has("file")) {
    data = hp::bio::load_complex_table(args.get("file", ""));
  } else {
    hp::bio::CellzomeParams params;
    params.seed = static_cast<std::uint64_t>(args.get_int("seed", 20040426));
    data = hp::bio::cellzome_surrogate(params);
    std::puts("(no --file given; using the Cellzome-scale surrogate)");
  }
  const hp::hyper::Hypergraph& h = data.hypergraph;

  // Axis 1: storage.
  const hp::hyper::RepresentationCosts costs =
      hp::hyper::representation_costs(h);
  std::puts("\n[storage]");
  std::printf("  hypergraph:        %8llu pins\n",
              static_cast<unsigned long long>(costs.hypergraph_pins));
  std::printf("  clique expansion:  %8llu edges (%.1fx)\n",
              static_cast<unsigned long long>(costs.clique_edges),
              static_cast<double>(costs.clique_edges) /
                  static_cast<double>(costs.hypergraph_pins));
  std::printf("  star expansion:    %8llu edges\n",
              static_cast<unsigned long long>(costs.star_edges));
  std::printf("  intersection graph:%8llu edges\n",
              static_cast<unsigned long long>(costs.intersection_edges));

  // Axis 2: artifacts. Clique expansion manufactures clustering; the
  // intersection graph forgets the proteins entirely.
  const hp::graph::Graph clique = hp::hyper::clique_expansion(h);
  std::puts("\n[artifacts]");
  std::printf("  clique expansion clustering coefficient: %.3f "
              "(inflated by construction)\n",
              hp::graph::average_clustering_coefficient(clique));
  std::printf("  intersection graph: %u complex nodes, 0 protein nodes "
              "(proteins unrepresented)\n",
              hp::hyper::intersection_graph(h).num_vertices());

  // Axis 3: analysis quality. Compare the core each model finds.
  const hp::hyper::HyperCoreResult hcores = hp::hyper::core_decomposition(h);
  const hp::graph::CoreDecomposition gcores =
      hp::graph::core_decomposition(clique);
  std::puts("\n[core detection]");
  std::printf("  hypergraph maximum core: k = %u, %zu proteins\n",
              hcores.max_core,
              hcores.core_vertices(hcores.max_core).size());
  std::printf("  clique-graph maximum core: k = %u, %zu proteins\n",
              gcores.max_core, gcores.max_core_vertices().size());

  // The s-overlap ladder: what the plain intersection graph cannot see.
  const hp::index_t s_max = hp::hyper::max_meaningful_s(h);
  std::puts("\n[s-overlap ladder] (complex pairs sharing >= s proteins)");
  for (hp::index_t s = 1; s <= s_max && s <= 6; ++s) {
    std::printf("  s = %u: %llu pairs\n", s,
                static_cast<unsigned long long>(
                    hp::hyper::s_intersection_graph(h, s).num_edges()));
  }
  if (s_max > 6) std::printf("  ... up to s = %u\n", s_max);
  return 0;
}
