// Matrix Market hypergraph cores: load a .mtx file (or synthesize one),
// convert it to the row-net hypergraph, and report its core
// decomposition -- the Table 1 workflow on a single input.
//
//   $ ./matrix_cores [--file matrix.mtx] [--column-net] [--seed N]
#include <cstdio>

#include "core/kcore.hpp"
#include "core/stats.hpp"
#include "mm/matrix_market.hpp"
#include "mm/mm_synth.hpp"
#include "mm/mm_to_hypergraph.hpp"
#include "util/args.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  const hp::Args args{argc, argv};

  hp::mm::CooMatrix matrix;
  if (args.has("file")) {
    const std::string path = args.get("file", "");
    std::printf("loading %s\n", path.c_str());
    matrix = hp::mm::load_matrix_market(path);
  } else {
    hp::Rng rng{static_cast<std::uint64_t>(args.get_int("seed", 1))};
    matrix = hp::mm::synthesize_stiffness(2000, 8, 2500, rng);
    std::puts("(no --file given; synthesizing a stiffness-profile matrix)");
  }
  std::printf("matrix: %u x %u, %llu stored entries (%llu expanded)\n\n",
              matrix.num_rows, matrix.num_cols,
              static_cast<unsigned long long>(matrix.nnz_stored()),
              static_cast<unsigned long long>(matrix.nnz_expanded()));

  const hp::hyper::Hypergraph h =
      args.get_bool("column-net", false)
          ? hp::mm::column_net_hypergraph(matrix)
          : hp::mm::row_net_hypergraph(matrix);
  std::printf("%s\n", hp::hyper::to_string(hp::hyper::summarize(h)).c_str());

  hp::Timer timer;
  const hp::hyper::HyperCoreResult cores = hp::hyper::core_decomposition(h);
  std::printf("core decomposition in %s\n",
              hp::format_duration(timer.seconds()).c_str());
  std::printf("maximum core: k = %u with %zu vertices, %zu hyperedges\n",
              cores.max_core, cores.core_vertices(cores.max_core).size(),
              cores.core_edges(cores.max_core).size());

  std::puts("\nk-core ladder:");
  for (std::size_t k = 1; k < cores.level_vertices.size(); ++k) {
    std::printf("  %2zu-core: %6u vertices, %6u hyperedges\n", k,
                cores.level_vertices[k], cores.level_edges[k]);
  }
  return 0;
}
