// Network-properties workbench: load a complex table from a file (or
// generate the surrogate), print the section-2 property sheet, the
// degree distribution with its power-law fit, and the model-comparison
// storage numbers.
//
//   $ ./network_properties [--file complexes.tsv] [--seed N]
#include <cstdio>

#include "bio/cellzome_synth.hpp"
#include "bio/complex_io.hpp"
#include "core/projection.hpp"
#include "core/stats.hpp"
#include "core/traversal.hpp"
#include "util/args.hpp"

int main(int argc, char** argv) {
  const hp::Args args{argc, argv};

  hp::bio::ComplexDataset data;
  if (args.has("file")) {
    const std::string path = args.get("file", "");
    std::printf("loading %s\n\n", path.c_str());
    data = hp::bio::load_complex_table(path);
  } else {
    hp::bio::CellzomeParams params;
    params.seed = static_cast<std::uint64_t>(args.get_int("seed", 20040426));
    data = hp::bio::cellzome_surrogate(params);
    std::puts("(no --file given; using the Cellzome-scale surrogate)\n");
  }
  const hp::hyper::Hypergraph& h = data.hypergraph;

  std::printf("%s\n", hp::hyper::to_string(hp::hyper::summarize(h)).c_str());

  const hp::hyper::HyperPathSummary paths = hp::hyper::path_summary(h);
  std::printf("diameter                  : %u\n", paths.diameter);
  std::printf("average path length       : %.3f\n\n", paths.average_length);

  const hp::PowerLawFit fit = hp::hyper::vertex_degree_power_law(h);
  std::printf(
      "protein degree power law  : P(d) = 10^%.3f * d^-%.3f  (R^2 = %.3f)\n",
      fit.log10_c, fit.gamma, fit.r_squared);

  const hp::hyper::RepresentationCosts costs =
      hp::hyper::representation_costs(h);
  std::puts("\nstorage comparison:");
  std::printf("  hypergraph pins         : %llu (%zu bytes)\n",
              static_cast<unsigned long long>(costs.hypergraph_pins),
              costs.hypergraph_bytes);
  std::printf("  clique-expansion edges  : %llu (%zu bytes)\n",
              static_cast<unsigned long long>(costs.clique_edges),
              costs.clique_bytes);
  std::printf("  star-expansion edges    : %llu\n",
              static_cast<unsigned long long>(costs.star_edges));
  std::printf("  intersection-graph edges: %llu\n",
              static_cast<unsigned long long>(costs.intersection_edges));
  return 0;
}
