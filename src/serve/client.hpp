// In-tree client of the analysis server: one connection, synchronous
// request/response. Used by `hp_cli query`, the e2e tests, and the
// bench_micro_serve load generator -- all protocol consumers go through
// this one implementation, so wire-format drift shows up in-tree first.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "serve/protocol.hpp"
#include "serve/socket.hpp"

namespace hp::serve {

class Client {
 public:
  /// Connect immediately. Throws SocketError.
  explicit Client(const Endpoint& endpoint);

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Send one request and block for its response. A request without an
  /// id is stamped with a connection-local sequence number, and the
  /// response's echoed id is checked against it. Throws SocketError on
  /// transport failure, hp::ParseError on a malformed response frame.
  proto::Response call(proto::Request request);

  /// Convenience: build + send a query request.
  proto::Response query(
      const std::string& command, const std::string& path,
      std::vector<std::pair<std::string, std::string>> args = {},
      std::uint64_t timeout_ms = 0);

  /// Send one already-formatted frame verbatim and return the raw
  /// response frame -- the replay path (`hp_cli query --script`), which
  /// must not re-serialize recorded requests. Throws SocketError.
  std::string call_raw(const std::string& frame);

  /// Tell the server to stop. The server replies before shutting down.
  proto::Response shutdown();

 private:
  Socket socket_;
  LineReader reader_;
  std::uint64_t next_id_ = 1;
};

}  // namespace hp::serve
