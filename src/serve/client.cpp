#include "serve/client.hpp"

#include "util/common.hpp"

namespace hp::serve {

Client::Client(const Endpoint& endpoint)
    : socket_(connect_to(endpoint)), reader_(socket_.fd()) {}

std::string Client::call_raw(const std::string& frame) {
  HP_REQUIRE(frame.find('\n') == std::string::npos,
             "client: frame contains a raw newline");
  if (!write_all(socket_.fd(), frame + "\n")) {
    throw SocketError{"client: connection lost while sending"};
  }
  std::string reply;
  const LineReader::Status status = reader_.read_line(reply);
  switch (status) {
    case LineReader::Status::kLine:
      return reply;
    case LineReader::Status::kOverflow:
      throw SocketError{"client: response frame exceeds the protocol cap"};
    case LineReader::Status::kError:
      throw SocketError{"client: recv failed: " + reply};
    default:
      throw SocketError{"client: connection closed before a response"};
  }
}

proto::Response Client::call(proto::Request request) {
  if (!request.has_id()) request.id = next_id_++;
  const proto::Response response =
      proto::parse_response(call_raw(proto::format_request(request)));
  if (response.has_id() && response.id != request.id) {
    throw SocketError{"client: response id " + std::to_string(response.id) +
                      " does not match request id " +
                      std::to_string(request.id)};
  }
  return response;
}

proto::Response Client::query(
    const std::string& command, const std::string& path,
    std::vector<std::pair<std::string, std::string>> args,
    std::uint64_t timeout_ms) {
  proto::Request request;
  request.command = command;
  request.path = path;
  request.args = std::move(args);
  request.timeout_ms = timeout_ms;
  return call(std::move(request));
}

proto::Response Client::shutdown() {
  proto::Request request;
  request.command = "shutdown";
  return call(std::move(request));
}

}  // namespace hp::serve
