#include "serve/context_pool.hpp"

#include <climits>
#include <cstdlib>

#include "cli/commands.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace hp::serve {

std::size_t session_charge_bytes(cli::QuerySession& session) {
  const hyper::ContextStats stats = session.context.stats();
  return stats.total_bytes() + stats.hypergraph_owned_bytes +
         stats.hypergraph_mapped_bytes;
}

std::string canonical_key(const std::string& path) {
  char resolved[PATH_MAX];
  if (::realpath(path.c_str(), resolved) != nullptr) {
    return std::string{resolved};
  }
  return path;
}

ContextPool::ContextPool(std::size_t byte_budget)
    : byte_budget_(byte_budget) {}

ContextPool::Lease::Lease(Lease&& other) noexcept
    : pool_(other.pool_), key_(std::move(other.key_)),
      session_(std::move(other.session_)), hit_(other.hit_) {
  other.pool_ = nullptr;
}

ContextPool::Lease::~Lease() {
  if (pool_ != nullptr) pool_->release(key_);
}

ContextPool::Entry* ContextPool::find_locked(const std::string& key) {
  for (Entry& entry : entries_) {
    if (entry.key == key) return &entry;
  }
  return nullptr;
}

ContextPool::Lease ContextPool::acquire(const std::string& path) {
  const std::string key = canonical_key(path);
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    Entry* entry = find_locked(key);
    if (entry == nullptr) break;
    if (!entry->loading) {
      ++hits_;
      obs::counter("server.cache.hits").add(1);
      entry->last_used = ++tick_;
      ++entry->leases;
      return Lease{this, key, entry->session, /*hit=*/true};
    }
    // Another request is loading this key right now: wait for it
    // instead of loading a second copy (cache stampede).
    loaded_cv_.wait(lock);
  }

  ++misses_;
  obs::counter("server.cache.misses").add(1);
  entries_.push_back(Entry{key, nullptr, 0, ++tick_, 0, /*loading=*/true});

  std::shared_ptr<cli::QuerySession> session;
  lock.unlock();
  try {
    HP_TRACE_SPAN("serve.load_context");
    session =
        std::make_shared<cli::QuerySession>(cli::load_dataset(path));
  } catch (...) {
    lock.lock();
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (entries_[i].key == key) {
        entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(i));
        break;
      }
    }
    loaded_cv_.notify_all();
    throw;
  }
  lock.lock();

  Entry* entry = find_locked(key);
  // The entry cannot have been evicted meanwhile: loading entries are
  // pinned and only this thread clears the flag.
  entry->session = session;
  entry->charged_bytes = session_charge_bytes(*session);
  entry->loading = false;
  entry->last_used = ++tick_;
  entry->leases = 1;
  evict_locked();
  loaded_cv_.notify_all();
  return Lease{this, key, std::move(session), /*hit=*/false};
}

void ContextPool::release(const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry* entry = find_locked(key);
  if (entry == nullptr) return;
  --entry->leases;
  // Re-charge: the query may have built artifacts (or rebased mapped
  // storage), so the footprint at release differs from at acquire.
  entry->charged_bytes = session_charge_bytes(*entry->session);
  if (entry->leases == 0) evict_locked();
}

void ContextPool::evict_locked() {
  while (entries_.size() > 1) {
    std::size_t total = 0;
    for (const Entry& entry : entries_) total += entry.charged_bytes;
    if (total <= byte_budget_) return;

    std::size_t victim = entries_.size();
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      const Entry& entry = entries_[i];
      if (entry.leases > 0 || entry.loading) continue;
      if (entry.last_used == tick_) continue;  // the newest stays
      if (victim == entries_.size() ||
          entry.last_used < entries_[victim].last_used) {
        victim = i;
      }
    }
    if (victim == entries_.size()) return;  // everything pinned
    entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(victim));
    ++evictions_;
    obs::counter("server.cache.evictions").add(1);
  }
}

void ContextPool::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (std::size_t i = entries_.size(); i-- > 0;) {
    if (entries_[i].leases > 0 || entries_[i].loading) continue;
    entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(i));
    ++evictions_;
    obs::counter("server.cache.evictions").add(1);
  }
}

PoolStats ContextPool::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  PoolStats stats;
  stats.hits = hits_;
  stats.misses = misses_;
  stats.evictions = evictions_;
  stats.entries = entries_.size();
  for (const Entry& entry : entries_) {
    stats.charged_bytes += entry.charged_bytes;
  }
  return stats;
}

std::vector<ChargedEntry> ContextPool::charged_entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<ChargedEntry> out;
  out.reserve(entries_.size());
  for (const Entry& entry : entries_) {
    out.push_back(ChargedEntry{entry.key, entry.charged_bytes,
                               entry.leases > 0});
  }
  return out;
}

}  // namespace hp::serve
