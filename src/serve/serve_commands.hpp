// CLI surface of the analysis server: the `serve` and `query`
// subcommands, plugged into the hp_cli dispatch table through
// cli::register_command (the library dependency runs serve -> cli, so
// the binary's main() wires these in; hp_cli itself stays server-free).
#pragma once

#include <iosfwd>

#include "util/args.hpp"

namespace hp::serve {

/// `serve --socket SPEC [--cache-mb N] [--timeout-ms N] [--record f]`:
/// run the analysis server in the foreground until a protocol
/// `shutdown` request (or stop_on_signals() fires). Prints one
/// "listening on <endpoint>" line once accepting.
int cmd_serve(const Args& args, std::ostream& out);

/// `query --socket SPEC <command> [file] [--flag=value ...]`: connect,
/// send one request, print the server's output verbatim (exit 1 with
/// the error message on a failed request). With `--script f` instead,
/// replay recorded request frames line-by-line and print one response
/// frame per line.
int cmd_query(const Args& args, std::ostream& out);

/// Register both subcommands with the hp_cli dispatcher.
void register_cli_commands();

/// Arrange for SIGINT/SIGTERM to stop the server cmd_serve is about to
/// run (sigwait on a dedicated thread; nothing runs in signal context).
/// Call once, before cmd_serve, from a binary's main().
void stop_on_signals();

}  // namespace hp::serve
