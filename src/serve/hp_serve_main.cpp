// Standalone analysis-server daemon: `hp_serve --socket SPEC [...]`.
// Equivalent to `hyperproteome serve ...` (same cmd_serve code path)
// but without the full CLI surface; SIGINT/SIGTERM stop it gracefully,
// draining in-flight requests.
#include <iostream>

#include "serve/serve_commands.hpp"

int main(int argc, char** argv) {
  hp::serve::stop_on_signals();
  try {
    const hp::Args args{argc, argv};
    if (!args.has("socket")) {
      std::cout << "usage: hp_serve --socket unix:/path|tcp:host:port\n"
                   "         [--cache-mb N] [--timeout-ms N] [--record f]\n";
      return 2;
    }
    return hp::serve::cmd_serve(args, std::cout);
  } catch (const std::exception& error) {
    std::cout << "error: " << error.what() << '\n';
    return 1;
  }
}
