// The long-lived analysis server (DESIGN.md §15).
//
// One Server owns a listening socket (Unix-domain or TCP), a
// ContextPool of warm AnalysisContexts, and the process-wide par
// ThreadPool. Connections get a dedicated I/O thread (blocking reads
// are cheap; request *execution* is what must share the pool): each
// request runs as a par::TaskGroup task, so query work lands on the
// same work-stealing lanes as every other parallel region -- including
// the artifact builds the query triggers -- and HP_THREADS=1 degrades
// the whole server to deterministic inline execution.
//
// Lifecycle: start() binds and spawns the accept thread; request_stop()
// (also triggered by the protocol `shutdown` command and by SIGINT in
// hp_serve) closes the listener and half-closes every connection
// (SHUT_RD), so in-flight requests drain and their replies are still
// written; wait() joins everything.
//
// Observability: every request runs under a `serve.request` root span
// (command-specific child spans come from the query layer), and the
// server.* metrics family tracks requests, errors, timeouts, cache
// hits/misses/evictions, open connections, queue depth and per-command
// latency histograms.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/context_pool.hpp"
#include "serve/protocol.hpp"
#include "serve/socket.hpp"

namespace hp::serve {

struct ServerOptions {
  Endpoint endpoint;
  /// ContextPool byte budget (default 1 GiB).
  std::size_t cache_budget_bytes = std::size_t{1} << 30;
  /// Per-request deadline when the request carries none; 0 = unlimited.
  std::uint64_t default_timeout_ms = 0;
  /// When non-empty, append every request frame here (one per line) for
  /// later replay with `hp_cli query --script`.
  std::string record_path;
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind, listen, spawn the accept thread. Throws SocketError.
  void start();

  /// Begin shutdown: stop accepting, half-close connections. Safe from
  /// any thread, including a request handler. Idempotent.
  void request_stop();

  /// Join the accept thread and every connection thread. Returns once
  /// all in-flight requests have drained.
  void wait();

  bool stopping() const {
    return stop_.load(std::memory_order_acquire);
  }

  /// The bound endpoint; for tcp port 0 this carries the real port
  /// after start().
  const Endpoint& endpoint() const { return options_.endpoint; }

  ContextPool& pool() { return *pool_; }

  /// Execute one parsed request exactly as a connection would (metrics,
  /// tracing, timeout handling included) -- the in-process path used by
  /// tests and the load generator to measure the server without socket
  /// noise.
  proto::Response handle(const proto::Request& request);

 private:
  struct Connection {
    Socket socket;
    std::thread thread;
  };

  void accept_main();
  void connection_main(std::size_t slot);
  proto::Response dispatch(const proto::Request& request,
                           std::uint64_t deadline_ns);
  void record_frame(const std::string& frame);

  ServerOptions options_;
  Socket listener_;
  std::thread accept_thread_;
  std::atomic<bool> stop_{false};
  bool started_ = false;

  std::mutex connections_mutex_;
  std::vector<std::unique_ptr<Connection>> connections_;

  std::mutex record_mutex_;

  std::unique_ptr<ContextPool> pool_;
};

}  // namespace hp::serve
