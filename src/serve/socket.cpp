#include "serve/socket.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/common.hpp"

namespace hp::serve {

namespace {

[[noreturn]] void raise_errno(const std::string& what) {
  throw SocketError{what + ": " + std::strerror(errno)};
}

sockaddr_un unix_address(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  HP_REQUIRE(path.size() < sizeof addr.sun_path,
             "unix socket path longer than sockaddr_un allows (~107 bytes)");
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

sockaddr_in tcp_address(const Endpoint& endpoint, bool for_listen) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(endpoint.port);
  if (endpoint.host.empty()) {
    addr.sin_addr.s_addr = for_listen ? htonl(INADDR_ANY)
                                      : htonl(INADDR_LOOPBACK);
  } else if (inet_pton(AF_INET, endpoint.host.c_str(), &addr.sin_addr) != 1) {
    throw InvalidInputError{"endpoint host '" + endpoint.host +
                            "' is not a numeric IPv4 address"};
  }
  return addr;
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_.store(other.release(), std::memory_order_release);
  }
  return *this;
}

void Socket::close() {
  const int fd = release();
  if (fd >= 0) ::close(fd);
}

void Socket::shutdown_read() {
  const int fd = fd_.load(std::memory_order_acquire);
  if (fd >= 0) ::shutdown(fd, SHUT_RD);
}

void Socket::shutdown_both() {
  const int fd = fd_.load(std::memory_order_acquire);
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

std::string Endpoint::to_string() const {
  if (kind == Kind::kUnix) return "unix:" + path;
  return "tcp:" + host + ":" + std::to_string(port);
}

Endpoint parse_endpoint(const std::string& spec) {
  HP_REQUIRE(!spec.empty(), "empty endpoint spec");
  Endpoint endpoint;
  if (spec.rfind("tcp:", 0) == 0) {
    endpoint.kind = Endpoint::Kind::kTcp;
    const std::string rest = spec.substr(4);
    const std::size_t colon = rest.rfind(':');
    HP_REQUIRE(colon != std::string::npos,
               "tcp endpoint needs 'tcp:host:port' (host may be empty)");
    endpoint.host = rest.substr(0, colon);
    const std::string port_text = rest.substr(colon + 1);
    HP_REQUIRE(!port_text.empty(), "tcp endpoint is missing a port");
    std::uint32_t port = 0;
    for (char c : port_text) {
      HP_REQUIRE(c >= '0' && c <= '9', "tcp port is not a number");
      port = port * 10 + static_cast<std::uint32_t>(c - '0');
      HP_REQUIRE(port <= 65535, "tcp port out of range");
    }
    endpoint.port = static_cast<std::uint16_t>(port);
    return endpoint;
  }
  endpoint.kind = Endpoint::Kind::kUnix;
  endpoint.path = spec.rfind("unix:", 0) == 0 ? spec.substr(5) : spec;
  HP_REQUIRE(!endpoint.path.empty(), "unix endpoint is missing a path");
  // Fail early with the named limit instead of a bind() errno later.
  (void)unix_address(endpoint.path);
  return endpoint;
}

Socket listen_on(Endpoint& endpoint, int backlog) {
  if (endpoint.kind == Endpoint::Kind::kUnix) {
    Socket s{::socket(AF_UNIX, SOCK_STREAM, 0)};
    if (!s.valid()) raise_errno("socket(AF_UNIX)");
    const sockaddr_un addr = unix_address(endpoint.path);
    ::unlink(endpoint.path.c_str());  // stale socket from a dead server
    if (::bind(s.fd(), reinterpret_cast<const sockaddr*>(&addr),
               sizeof addr) != 0) {
      raise_errno("bind(" + endpoint.path + ")");
    }
    if (::listen(s.fd(), backlog) != 0) raise_errno("listen");
    return s;
  }

  Socket s{::socket(AF_INET, SOCK_STREAM, 0)};
  if (!s.valid()) raise_errno("socket(AF_INET)");
  const int one = 1;
  ::setsockopt(s.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr = tcp_address(endpoint, /*for_listen=*/true);
  if (::bind(s.fd(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0) {
    raise_errno("bind(" + endpoint.to_string() + ")");
  }
  if (::listen(s.fd(), backlog) != 0) raise_errno("listen");
  if (endpoint.port == 0) {
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    if (::getsockname(s.fd(), reinterpret_cast<sockaddr*>(&bound), &len) !=
        0) {
      raise_errno("getsockname");
    }
    endpoint.port = ntohs(bound.sin_port);
  }
  return s;
}

Socket connect_to(const Endpoint& endpoint) {
  if (endpoint.kind == Endpoint::Kind::kUnix) {
    Socket s{::socket(AF_UNIX, SOCK_STREAM, 0)};
    if (!s.valid()) raise_errno("socket(AF_UNIX)");
    const sockaddr_un addr = unix_address(endpoint.path);
    if (::connect(s.fd(), reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) != 0) {
      raise_errno("connect(" + endpoint.path + ")");
    }
    return s;
  }
  Socket s{::socket(AF_INET, SOCK_STREAM, 0)};
  if (!s.valid()) raise_errno("socket(AF_INET)");
  const sockaddr_in addr = tcp_address(endpoint, /*for_listen=*/false);
  if (::connect(s.fd(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) != 0) {
    raise_errno("connect(" + endpoint.to_string() + ")");
  }
  return s;
}

Socket accept_on(Socket& listener) {
  while (true) {
    const int fd = ::accept(listener.fd(), nullptr, nullptr);
    if (fd >= 0) return Socket{fd};
    if (errno == EINTR) continue;
    // EBADF/EINVAL: the stop path closed or shut down the listener under
    // us. ECONNABORTED: the peer gave up; keep serving others.
    if (errno == ECONNABORTED) continue;
    if (errno == EBADF || errno == EINVAL) return Socket{};
    raise_errno("accept");
  }
}

bool write_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

LineReader::Status LineReader::read_line(std::string& out) {
  out.clear();
  while (true) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      if (newline > max_line_) return Status::kOverflow;
      out.assign(buffer_, 0, newline);
      buffer_.erase(0, newline + 1);
      return Status::kLine;
    }
    if (buffer_.size() > max_line_) return Status::kOverflow;
    if (eof_) return buffer_.empty() ? Status::kEof : Status::kTruncated;

    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      out = std::strerror(errno);
      return Status::kError;
    }
    if (n == 0) {
      eof_ = true;
      continue;
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace hp::serve
