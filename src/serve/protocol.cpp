#include "serve/protocol.hpp"

#include <cmath>
#include <cstdio>

#include "obs/json_check.hpp"
#include "util/common.hpp"

namespace hp::serve::proto {

namespace {

using obs::json::Value;

[[noreturn]] void fail(const std::string& why) {
  throw ParseError{"protocol: " + why};
}

bool valid_name_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_' ||
         c == '-';
}

bool valid_key_char(char c) {
  return valid_name_char(c) || (c >= 'A' && c <= 'Z');
}

/// JSON numbers arrive as doubles; protocol integers must be exact.
std::uint64_t require_integer(const Value& v, const char* field) {
  if (v.type != Value::Type::kNumber) {
    fail(std::string{field} + " must be an integer");
  }
  const double d = v.number;
  if (!(d >= 0.0) || d > static_cast<double>(kMaxIntegerField) ||
      std::floor(d) != d) {
    fail(std::string{field} + " out of range (0.." +
         std::to_string(kMaxIntegerField) + ")");
  }
  return static_cast<std::uint64_t>(d);
}

std::string require_string(const Value& v, const char* field,
                           std::size_t max_length) {
  if (v.type != Value::Type::kString) {
    fail(std::string{field} + " must be a string");
  }
  if (v.string.size() > max_length) {
    fail(std::string{field} + " longer than " + std::to_string(max_length) +
         " bytes");
  }
  if (v.string.find('\0') != std::string::npos) {
    fail(std::string{field} + " contains a NUL byte");
  }
  return v.string;
}

/// Reject duplicated keys: the json reader preserves every occurrence.
void require_unique_keys(const Value& object, const char* what) {
  for (std::size_t i = 0; i < object.object.size(); ++i) {
    for (std::size_t j = i + 1; j < object.object.size(); ++j) {
      if (object.object[i].first == object.object[j].first) {
        fail(std::string{what} + " key '" + object.object[i].first +
             "' appears twice");
      }
    }
  }
}

Value parse_frame_object(const std::string& frame, const char* what) {
  if (frame.size() > kMaxFrameBytes) {
    fail(std::string{what} + " frame larger than " +
         std::to_string(kMaxFrameBytes) + " bytes");
  }
  if (frame.find('\n') != std::string::npos) {
    fail(std::string{what} + " frame contains a raw newline");
  }
  Value root = obs::json::parse(frame);
  if (root.type != Value::Type::kObject) {
    fail(std::string{what} + " frame is not a JSON object");
  }
  return root;
}

void parse_args_object(const Value& value, Request& request) {
  if (value.type != Value::Type::kObject) fail("args must be an object");
  require_unique_keys(value, "args");
  if (value.object.size() > kMaxArgs) {
    fail("args carries more than " + std::to_string(kMaxArgs) + " entries");
  }
  for (const auto& [key, arg] : value.object) {
    if (key.empty() || key.size() > kMaxArgKeyLength) {
      fail("args key '" + key + "' is empty or over-long");
    }
    for (char c : key) {
      if (!valid_key_char(c)) fail("args key '" + key + "' has bad chars");
    }
    std::string text;
    switch (arg.type) {
      case Value::Type::kString:
        text = require_string(arg, "args value", kMaxArgValueLength);
        break;
      case Value::Type::kNumber: {
        const double d = arg.number;
        if (std::floor(d) == d && std::fabs(d) <=
            static_cast<double>(kMaxIntegerField)) {
          text = std::to_string(static_cast<std::int64_t>(d));
        } else {
          fail("args value for '" + key + "' is not an exact integer");
        }
        break;
      }
      case Value::Type::kBool:
        text = arg.boolean ? "true" : "false";
        break;
      default:
        fail("args value for '" + key + "' must be string/integer/bool");
    }
    request.args.emplace_back(key, std::move(text));
  }
}

}  // namespace

Request parse_request(const std::string& frame) {
  const Value root = parse_frame_object(frame, "request");
  require_unique_keys(root, "request");

  Request request;
  bool saw_cmd = false;
  for (const auto& [key, value] : root.object) {
    if (key == "id") {
      request.id = require_integer(value, "id");
    } else if (key == "cmd") {
      request.command = require_string(value, "cmd", kMaxCommandLength);
      saw_cmd = true;
    } else if (key == "path") {
      request.path = require_string(value, "path", kMaxPathLength);
    } else if (key == "args") {
      parse_args_object(value, request);
    } else if (key == "timeout_ms") {
      request.timeout_ms = require_integer(value, "timeout_ms");
    } else {
      fail("unknown request key '" + key + "'");
    }
  }
  if (!saw_cmd || request.command.empty()) fail("missing or empty cmd");
  for (char c : request.command) {
    if (!valid_name_char(c)) {
      fail("cmd '" + request.command + "' has characters outside [a-z0-9_-]");
    }
  }
  if (request.path.find('\n') != std::string::npos) {
    fail("path contains a newline");
  }
  return request;
}

std::string format_request(const Request& request) {
  HP_REQUIRE(!request.command.empty() &&
                 request.command.size() <= kMaxCommandLength,
             "format_request: bad command length");
  for (char c : request.command) {
    HP_REQUIRE(valid_name_char(c), "format_request: bad command character");
  }
  HP_REQUIRE(request.path.size() <= kMaxPathLength,
             "format_request: path too long");
  HP_REQUIRE(request.args.size() <= kMaxArgs,
             "format_request: too many args");
  std::string out = "{";
  if (request.has_id()) {
    HP_REQUIRE(request.id <= kMaxIntegerField,
               "format_request: id out of range");
    out += "\"id\": " + std::to_string(request.id) + ", ";
  }
  out += "\"cmd\": \"" + escape_json(request.command) + "\"";
  if (!request.path.empty()) {
    out += ", \"path\": \"" + escape_json(request.path) + "\"";
  }
  if (!request.args.empty()) {
    out += ", \"args\": {";
    for (std::size_t i = 0; i < request.args.size(); ++i) {
      const auto& [key, value] = request.args[i];
      HP_REQUIRE(!key.empty() && key.size() <= kMaxArgKeyLength,
                 "format_request: bad args key");
      HP_REQUIRE(value.size() <= kMaxArgValueLength,
                 "format_request: args value too long");
      if (i > 0) out += ", ";
      out += "\"" + escape_json(key) + "\": \"" + escape_json(value) + "\"";
    }
    out += "}";
  }
  if (request.timeout_ms > 0) {
    HP_REQUIRE(request.timeout_ms <= kMaxIntegerField,
               "format_request: timeout_ms out of range");
    out += ", \"timeout_ms\": " + std::to_string(request.timeout_ms);
  }
  out += "}";
  HP_REQUIRE(out.size() <= kMaxFrameBytes, "format_request: frame too large");
  return out;
}

Response parse_response(const std::string& frame) {
  const Value root = parse_frame_object(frame, "response");
  require_unique_keys(root, "response");

  Response response;
  bool saw_ok = false;
  for (const auto& [key, value] : root.object) {
    if (key == "id") {
      if (value.type == Value::Type::kNull) continue;  // explicit "no id"
      response.id = require_integer(value, "id");
    } else if (key == "ok") {
      if (value.type != Value::Type::kBool) fail("ok must be a boolean");
      response.ok = value.boolean;
      saw_ok = true;
    } else if (key == "output") {
      // Output is capped by the frame limit, not a field limit: it is
      // the one field that legitimately dominates the frame.
      response.output = require_string(value, "output", kMaxFrameBytes);
    } else if (key == "error") {
      response.error = require_string(value, "error", kMaxFrameBytes);
    } else if (key == "cache") {
      response.cache = require_string(value, "cache", kMaxCommandLength);
    } else if (key == "micros") {
      response.micros = require_integer(value, "micros");
    } else {
      fail("unknown response key '" + key + "'");
    }
  }
  if (!saw_ok) fail("missing ok field");
  if (response.ok && !response.error.empty()) {
    fail("ok response carries an error field");
  }
  if (!response.ok && response.error.empty()) {
    fail("failed response carries no error message");
  }
  return response;
}

std::string format_response(const Response& response) {
  std::string out = "{\"id\": ";
  out += response.has_id() ? std::to_string(response.id) : "null";
  out += response.ok ? ", \"ok\": true" : ", \"ok\": false";
  if (!response.cache.empty()) {
    out += ", \"cache\": \"" + escape_json(response.cache) + "\"";
  }
  out += ", \"micros\": " + std::to_string(response.micros);
  if (response.ok) {
    out += ", \"output\": \"" + escape_json(response.output) + "\"";
  } else {
    out += ", \"error\": \"" + escape_json(response.error) + "\"";
  }
  out += "}";
  return out;
}

std::string escape_json(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (unsigned char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

}  // namespace hp::serve::proto
