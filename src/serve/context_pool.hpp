// Multi-tenant AnalysisContext cache for the long-lived server.
//
// The pool keys warm QuerySessions (dataset + AnalysisContext) by
// canonical dataset path. A request acquires a Lease: on a hit the
// session -- with every artifact it has already built -- is reused; on
// a miss the dataset is loaded while other requests for the *same* key
// wait on the loading entry instead of loading it again (cache-stampede
// protection), and requests for other keys proceed untouched.
//
// Memory discipline: each entry is charged its real footprint --
// ContextStats::total_bytes() (built artifacts) plus the base
// hypergraph's owned and mapped bytes, the same accounting
// --context-stats prints. Queries grow a context lazily, so the charge
// is recomputed when a lease is released, and when the sum exceeds the
// byte budget idle entries are evicted least-recently-used. Leased and
// loading entries are never evicted, and the most recent entry survives
// even over budget (a budget smaller than one context must not turn the
// server into a load loop).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cli/query.hpp"

namespace hp::serve {

/// Counters mirrored into the server.cache.* metrics family.
struct PoolStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::size_t charged_bytes = 0;  ///< sum over resident entries
  std::size_t entries = 0;
};

/// One resident entry's charge, for tests and the `cache` introspection
/// command.
struct ChargedEntry {
  std::string key;
  std::size_t bytes = 0;
  bool leased = false;
};

class ContextPool {
 public:
  explicit ContextPool(std::size_t byte_budget);
  ~ContextPool() = default;

  ContextPool(const ContextPool&) = delete;
  ContextPool& operator=(const ContextPool&) = delete;

  /// Scoped hold on a pooled session. While any lease on a key is
  /// outstanding the entry is pinned (never evicted). Destruction
  /// recomputes the entry's byte charge -- artifacts built during the
  /// query are charged back -- and runs eviction if over budget.
  class Lease {
   public:
    Lease(Lease&& other) noexcept;
    Lease& operator=(Lease&&) = delete;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease();

    cli::QuerySession& session() { return *session_; }
    bool cache_hit() const { return hit_; }

   private:
    friend class ContextPool;
    Lease(ContextPool* pool, std::string key,
          std::shared_ptr<cli::QuerySession> session, bool hit)
        : pool_(pool), key_(std::move(key)), session_(std::move(session)),
          hit_(hit) {}

    ContextPool* pool_;
    std::string key_;
    std::shared_ptr<cli::QuerySession> session_;
    bool hit_;
  };

  /// Get-or-load the session for `path` (keyed by canonical path, so
  /// "./d.hyper" and "d.hyper" share an entry). Loads run outside the
  /// pool lock; concurrent acquires of the same key wait for the first
  /// loader. Load failures propagate to every waiter and leave no
  /// entry behind.
  Lease acquire(const std::string& path);

  /// Drop every idle entry regardless of budget (counts as evictions).
  void clear();

  PoolStats stats() const;
  /// Resident entries with their current charges, insertion order.
  std::vector<ChargedEntry> charged_entries() const;
  std::size_t byte_budget() const { return byte_budget_; }

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<cli::QuerySession> session;
    std::size_t charged_bytes = 0;
    std::uint64_t last_used = 0;
    int leases = 0;
    bool loading = false;
  };

  void release(const std::string& key);
  /// Evict idle LRU entries until within budget; pool lock held.
  void evict_locked();
  Entry* find_locked(const std::string& key);

  const std::size_t byte_budget_;
  mutable std::mutex mutex_;
  std::condition_variable loaded_cv_;
  std::vector<Entry> entries_;
  std::uint64_t tick_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

/// The byte footprint the pool charges for a session: built artifacts
/// plus owned and mapped hypergraph storage. Exposed so the accounting
/// regression test asserts pool charges == summed session stats.
std::size_t session_charge_bytes(cli::QuerySession& session);

/// Canonicalize a dataset path for keying (realpath when the file
/// exists, the verbatim path otherwise).
std::string canonical_key(const std::string& path);

}  // namespace hp::serve
