#include "serve/server.hpp"

#include <chrono>
#include <fstream>
#include <limits>
#include <sstream>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "par/thread_pool.hpp"
#include "util/args.hpp"
#include "util/common.hpp"

namespace hp::serve {

namespace {

/// Raised by command bodies when the request deadline passes.
class TimeoutError : public std::runtime_error {
 public:
  explicit TimeoutError(const std::string& what)
      : std::runtime_error(what) {}
};

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void check_deadline(std::uint64_t deadline_ns, const char* stage) {
  if (deadline_ns != 0 && now_ns() > deadline_ns) {
    throw TimeoutError{std::string{"deadline exceeded "} + stage};
  }
}

/// Rebuild an Args view from the validated wire args. Every value rides
/// in --key=value form, which the parser treats identically to the
/// two-token CLI form, so query code sees exactly what a one-shot
/// invocation would.
Args wire_args(const proto::Request& request) {
  std::vector<std::string> argv_storage;
  argv_storage.reserve(request.args.size() + 2);
  argv_storage.push_back("hp_serve");
  argv_storage.push_back(request.command);
  for (const auto& [key, value] : request.args) {
    argv_storage.push_back("--" + key + "=" + value);
  }
  std::vector<const char*> argv;
  argv.reserve(argv_storage.size());
  for (const std::string& token : argv_storage) {
    argv.push_back(token.c_str());
  }
  return Args{static_cast<int>(argv.size()), argv.data()};
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      pool_(std::make_unique<ContextPool>(options_.cache_budget_bytes)) {}

Server::~Server() {
  request_stop();
  wait();
}

void Server::start() {
  HP_REQUIRE(!started_, "Server::start called twice");
  listener_ = listen_on(options_.endpoint);
  started_ = true;
  accept_thread_ = std::thread([this] { accept_main(); });
}

void Server::request_stop() {
  if (stop_.exchange(true, std::memory_order_acq_rel)) return;
  listener_.shutdown_both();
  std::lock_guard<std::mutex> lock(connections_mutex_);
  for (const std::unique_ptr<Connection>& connection : connections_) {
    // Half-close: the connection thread's next read sees EOF, but the
    // reply to any request it is still executing goes out first.
    connection->socket.shutdown_read();
  }
}

void Server::wait() {
  if (accept_thread_.joinable()) accept_thread_.join();
  // After the accept thread exits no new connections appear, so the
  // vector is stable from here on.
  std::vector<std::unique_ptr<Connection>> connections;
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    connections.swap(connections_);
  }
  for (const std::unique_ptr<Connection>& connection : connections) {
    if (connection->thread.joinable()) connection->thread.join();
  }
  listener_.close();
}

void Server::accept_main() {
  while (!stopping()) {
    Socket accepted = accept_on(listener_);
    if (!accepted.valid()) break;  // listener closed by request_stop
    if (stopping()) break;
    std::lock_guard<std::mutex> lock(connections_mutex_);
    connections_.push_back(std::make_unique<Connection>());
    Connection* connection = connections_.back().get();
    connection->socket = std::move(accepted);
    obs::gauge("server.connections")
        .set(static_cast<double>(connections_.size()));
    const std::size_t slot = connections_.size() - 1;
    connection->thread = std::thread([this, slot] { connection_main(slot); });
  }
}

void Server::connection_main(std::size_t slot) {
  Socket* socket = nullptr;
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    socket = &connections_[slot]->socket;
  }
  LineReader reader{socket->fd()};
  std::string frame;
  while (true) {
    const LineReader::Status status = reader.read_line(frame);
    if (status == LineReader::Status::kEof ||
        status == LineReader::Status::kTruncated ||
        status == LineReader::Status::kError) {
      break;
    }
    if (status == LineReader::Status::kOverflow) {
      // The stream cannot be resynchronized mid-frame; report and drop.
      proto::Response response;
      response.ok = false;
      response.error = "protocol: request frame larger than " +
                       std::to_string(proto::kMaxFrameBytes) + " bytes";
      obs::counter("server.errors").add(1);
      write_all(socket->fd(), proto::format_response(response) + "\n");
      break;
    }
    if (frame.empty()) continue;  // blank keep-alive line
    record_frame(frame);

    proto::Response response;
    try {
      response = handle(proto::parse_request(frame));
    } catch (const std::exception& error) {
      // Frame-level failure (malformed JSON, bad fields): the framing
      // itself is intact, so reply and keep the connection.
      response.ok = false;
      response.error = error.what();
      obs::counter("server.errors").add(1);
    }
    if (!write_all(socket->fd(), proto::format_response(response) + "\n")) {
      break;
    }
  }
  socket->close();
}

proto::Response Server::handle(const proto::Request& request) {
  const std::uint64_t start_ns = now_ns();
  const std::uint64_t timeout_ms = request.timeout_ms != 0
                                       ? request.timeout_ms
                                       : options_.default_timeout_ms;
  // Saturating ms -> deadline conversion. The protocol accepts
  // timeout_ms up to 2^53-1, so the naive start_ns + timeout_ms * 1e6
  // wraps in uint64 and a huge client-supplied timeout silently became
  // an instant (or past) deadline. Any product or sum that no longer
  // fits means "effectively no deadline": clamp to the maximum instead
  // of wrapping.
  constexpr std::uint64_t kMaxNs = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t deadline_ns = 0;
  if (timeout_ms != 0) {
    const std::uint64_t timeout_ns =
        timeout_ms <= kMaxNs / 1000000u ? timeout_ms * 1000000u : kMaxNs;
    deadline_ns =
        timeout_ns <= kMaxNs - start_ns ? start_ns + timeout_ns : kMaxNs;
  }

  obs::counter("server.requests").add(1);
  obs::gauge("server.queue_depth")
      .set(static_cast<double>(par::ThreadPool::global().queue_depth()));

  proto::Response response;
  response.id = request.id;
  try {
    // The request body runs as a pool task: query work (and the
    // artifact builds it triggers) shares the work-stealing lanes with
    // every other request; wait() helps, so at HP_THREADS=1 this is
    // plain inline execution. TaskGroup also re-parents the task's
    // spans under our serve.request span on whichever lane runs it.
    HP_TRACE_SPAN("serve.request");
    check_deadline(deadline_ns, "before execution");
    proto::Response inner;
    inner.id = request.id;
    par::TaskGroup group;
    group.run([&] { inner = dispatch(request, deadline_ns); });
    group.wait();
    check_deadline(deadline_ns, "during execution");
    response = std::move(inner);
  } catch (const TimeoutError& error) {
    response.ok = false;
    response.output.clear();
    response.error = std::string{"timeout after "} +
                     std::to_string(timeout_ms) + "ms (" + error.what() + ")";
    obs::counter("server.timeouts").add(1);
    obs::counter("server.errors").add(1);
  } catch (const std::exception& error) {
    response.ok = false;
    response.output.clear();
    response.error = error.what();
    obs::counter("server.errors").add(1);
  }

  const std::uint64_t elapsed_ns = now_ns() - start_ns;
  response.micros = elapsed_ns / 1000u;
  obs::latency("server.request_ns").record_ns(elapsed_ns);
  obs::latency("server.cmd." + request.command + "_ns")
      .record_ns(elapsed_ns);
  return response;
}

proto::Response Server::dispatch(const proto::Request& request,
                                 std::uint64_t deadline_ns) {
  proto::Response response;
  response.id = request.id;
  response.ok = true;
  const std::string& command = request.command;

  if (cli::is_query_command(command)) {
    if (request.path.empty()) {
      throw InvalidInputError{"query command '" + command +
                              "' needs a path field"};
    }
    ContextPool::Lease lease = pool_->acquire(request.path);
    response.cache = lease.cache_hit() ? "hit" : "miss";
    const Args args = wire_args(request);
    std::ostringstream out;
    const int code = cli::run_query(lease.session(), command, args, out);
    if (code != 0) {
      throw InvalidInputError{command + " returned exit code " +
                              std::to_string(code)};
    }
    response.output = out.str();
    return response;
  }

  if (command == "ping") {
    response.output = "pong\n";
    return response;
  }
  if (command == "commands") {
    std::ostringstream out;
    for (const std::string& name : cli::query_commands()) out << name << '\n';
    out << "ping\ncommands\ncache\ncache_clear\nmetrics\nsleep\nshutdown\n";
    response.output = out.str();
    return response;
  }
  if (command == "cache") {
    const PoolStats stats = pool_->stats();
    std::ostringstream out;
    out << "entries: " << stats.entries << '\n'
        << "charged bytes: " << stats.charged_bytes << " (budget "
        << pool_->byte_budget() << ")\n"
        << "hits: " << stats.hits << "  misses: " << stats.misses
        << "  evictions: " << stats.evictions << '\n';
    for (const ChargedEntry& entry : pool_->charged_entries()) {
      out << "  " << entry.bytes << "  " << (entry.leased ? "leased  " : "idle    ")
          << entry.key << '\n';
    }
    response.output = out.str();
    return response;
  }
  if (command == "cache_clear") {
    pool_->clear();
    response.output = "cache cleared\n";
    return response;
  }
  if (command == "metrics") {
    response.output =
        obs::render_table(obs::Registry::global().snapshot());
    return response;
  }
  if (command == "sleep") {
    // Debug command for deadline tests: burns wall clock in 1 ms slices
    // with a cooperative deadline check each slice, so timeouts fire
    // deterministically even under HP_THREADS=1 inline execution.
    const Args args = wire_args(request);
    const std::int64_t ms = args.get_int("ms", 10);
    const std::uint64_t until = now_ns() +
                                static_cast<std::uint64_t>(ms) * 1000000u;
    while (now_ns() < until) {
      check_deadline(deadline_ns, "during sleep");
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    response.output = "slept " + std::to_string(ms) + "ms\n";
    return response;
  }
  if (command == "shutdown") {
    request_stop();
    response.output = "stopping\n";
    return response;
  }
  throw InvalidInputError{"unknown command '" + command +
                          "' (try 'commands')"};
}

void Server::record_frame(const std::string& frame) {
  if (options_.record_path.empty()) return;
  std::lock_guard<std::mutex> lock(record_mutex_);
  std::ofstream out(options_.record_path, std::ios::app);
  out << frame << '\n';
}

}  // namespace hp::serve
