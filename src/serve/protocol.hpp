// Wire protocol of the long-lived analysis server (DESIGN.md §15).
//
// Framing is newline-delimited JSON: one request object per line, one
// response object per line, UTF-8, no embedded raw newlines (strings
// carry them escaped). The format was chosen over a length-prefixed
// binary frame because every side of it is debuggable with nc/socat
// and a captured session replays verbatim (`hp_cli query --script`).
//
// Request object:
//   {"id": 7,                   optional echo token, integer >= 0
//    "cmd": "stats",            required, [a-z0-9_-], <= 64 chars
//    "path": "data.hyper",      dataset path for query commands
//    "args": {"k": 3,           optional flag map; values are strings,
//             "paths": true},   integers or booleans
//    "timeout_ms": 250}         optional per-request deadline override
//
// Response object:
//   {"id": 7, "ok": true, "cache": "hit", "micros": 184,
//    "output": "..."}                                   -- success
//   {"id": 7, "ok": false, "error": "..."}              -- failure
//
// Trust model: requests arrive from an untrusted socket. parse_request
// is the hardened entry point -- it either returns a fully validated
// Request or throws hp::ParseError; it never aborts, never allocates
// proportionally more than the (size-capped) frame, and never recurses
// deeper than the JSON reader's 256-level bound. The protocol fuzz
// oracle (src/check/protocol_fuzz.cpp) hammers exactly this contract.
//
// This header is deliberately free of any server/socket dependency: it
// is its own small library (hp_proto) so the fuzzing harness (hp_check)
// can link the parser without pulling in the server, which sits above
// the CLI command layer.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace hp::serve::proto {

/// Hard cap on one frame (request or response line) in bytes, newline
/// excluded. Oversized frames are a protocol error; the server replies
/// with an error and drops the connection (it cannot resynchronize
/// reliably mid-frame).
inline constexpr std::size_t kMaxFrameBytes = 1u << 20;

/// Field-level limits enforced by parse_request.
inline constexpr std::size_t kMaxCommandLength = 64;
inline constexpr std::size_t kMaxPathLength = 4096;
inline constexpr std::size_t kMaxArgs = 64;
inline constexpr std::size_t kMaxArgKeyLength = 64;
inline constexpr std::size_t kMaxArgValueLength = 4096;
/// Largest accepted integer field (id, timeout_ms, numeric args):
/// 2^53 - 1, the exactly-representable range of the JSON double model.
inline constexpr std::uint64_t kMaxIntegerField = (1ull << 53) - 1;

/// Sentinel for "request carried no id" (responses echo it as null).
inline constexpr std::uint64_t kNoRequestId = ~std::uint64_t{0};

/// A validated request. `args` preserves the order the keys appeared
/// on the wire; values are normalized to strings (booleans become
/// "true"/"false", integers their decimal rendering) so they can be
/// handed to hp::Args unchanged.
struct Request {
  std::uint64_t id = kNoRequestId;
  std::string command;
  std::string path;
  std::vector<std::pair<std::string, std::string>> args;
  std::uint64_t timeout_ms = 0;  ///< 0 = use the server default

  bool has_id() const { return id != kNoRequestId; }
};

struct Response {
  std::uint64_t id = kNoRequestId;
  bool ok = false;
  std::string output;  ///< command output (success only)
  std::string error;   ///< failure message (failure only)
  std::string cache;   ///< "hit" / "miss" for pooled queries, else ""
  std::uint64_t micros = 0;  ///< server-side handling time

  bool has_id() const { return id != kNoRequestId; }
};

/// Parse one request frame (without its trailing newline). Throws
/// hp::ParseError on any violation: not a JSON object, unknown or
/// duplicated keys, wrong types, out-of-range integers, over-long or
/// malformed strings, oversized frames. Never throws anything else.
Request parse_request(const std::string& frame);

/// Serialize a request to one frame (no trailing newline). The inverse
/// of parse_request for every valid Request; used by the client and by
/// the fuzz oracle's round-trip check. Throws hp::InvalidInputError on
/// a Request that violates the field limits above.
std::string format_request(const Request& request);

/// Parse one response frame. Same hardening contract as parse_request
/// (the client also reads from an untrusted byte stream).
Response parse_response(const std::string& frame);

/// Serialize a response to one frame (no trailing newline). `output`
/// and `error` may contain arbitrary bytes; they are JSON-escaped.
std::string format_response(const Response& response);

/// JSON string escaping shared by the formatters: quotes, backslashes
/// and control characters (including newline) are escaped, everything
/// else passes through byte-for-byte.
std::string escape_json(const std::string& text);

}  // namespace hp::serve::proto
