#include "serve/serve_commands.hpp"

#include <csignal>
#include <fstream>
#include <mutex>
#include <ostream>
#include <thread>

#include "cli/commands.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "util/common.hpp"

namespace hp::serve {

namespace {

/// The server cmd_serve is running, for the signal-stop thread.
std::mutex g_active_mutex;
Server* g_active_server = nullptr;
bool g_signal_thread_started = false;

void set_active_server(Server* server) {
  std::lock_guard<std::mutex> lock(g_active_mutex);
  g_active_server = server;
}

/// Flags consumed by the client itself or by the hp_cli global
/// observability layer; everything else is forwarded onto the wire.
bool client_side_flag(const std::string& name) {
  static const char* kLocal[] = {
      "socket", "script", "timeout-ms", "verbose",
      "trace", "metrics", "profile", "metrics-interval",
      "metrics-jsonl", "metrics-prom", "slow-span-ms",
  };
  for (const char* local : kLocal) {
    if (name == local) return true;
  }
  return false;
}

int replay_script(Client& client, const std::string& path,
                  std::ostream& out) {
  std::ifstream in(path);
  HP_REQUIRE(in.good(), "query: cannot open script '" + path + "'");
  std::string line;
  int failures = 0;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    const std::string reply = client.call_raw(line);
    out << reply << '\n';
    if (!proto::parse_response(reply).ok) ++failures;
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

int cmd_serve(const Args& args, std::ostream& out) {
  ServerOptions options;
  options.endpoint = parse_endpoint(args.get("socket", ""));
  const std::int64_t cache_mb = args.get_int("cache-mb", 1024);
  HP_REQUIRE(cache_mb > 0, "serve: --cache-mb must be positive");
  options.cache_budget_bytes =
      static_cast<std::size_t>(cache_mb) * 1024u * 1024u;
  const std::int64_t timeout_ms = args.get_int("timeout-ms", 0);
  HP_REQUIRE(timeout_ms >= 0, "serve: --timeout-ms must be >= 0");
  options.default_timeout_ms = static_cast<std::uint64_t>(timeout_ms);
  options.record_path = args.get("record", "");

  Server server{std::move(options)};
  server.start();
  set_active_server(&server);
  out << "listening on " << server.endpoint().to_string() << std::endl;
  server.wait();
  set_active_server(nullptr);
  const PoolStats stats = server.pool().stats();
  out << "server stopped (cache hits " << stats.hits << ", misses "
      << stats.misses << ", evictions " << stats.evictions << ")\n";
  return 0;
}

int cmd_query(const Args& args, std::ostream& out) {
  const Endpoint endpoint = parse_endpoint(args.get("socket", ""));
  Client client{endpoint};

  if (args.has("script")) {
    return replay_script(client, args.get("script", ""), out);
  }

  HP_REQUIRE(args.positional().size() >= 2,
             "query needs a command (and its dataset file, if any)");
  proto::Request request;
  request.command = args.positional()[1];
  if (args.positional().size() >= 3) request.path = args.positional()[2];
  for (const auto& [key, value] : args.flags()) {
    if (!client_side_flag(key)) request.args.emplace_back(key, value);
  }
  request.timeout_ms =
      static_cast<std::uint64_t>(args.get_int("timeout-ms", 0));

  const proto::Response response = client.call(std::move(request));
  if (!response.ok) {
    out << "error: " << response.error << '\n';
    return 1;
  }
  if (args.get_bool("verbose", false)) {
    out << "# cache=" << (response.cache.empty() ? "-" : response.cache)
        << " micros=" << response.micros << '\n';
  }
  out << response.output;
  return 0;
}

void register_cli_commands() {
  cli::register_command(
      "serve", "cli.serve", &cmd_serve,
      "  serve --socket unix:/tmp/hp.sock|tcp:host:port\n"
      "        [--cache-mb N] [--timeout-ms N] [--record f]\n"
      "                                         long-lived analysis "
      "server\n");
  cli::register_command(
      "query", "cli.query", &cmd_query,
      "  query --socket SPEC <command> [file] [--flag=value ...]\n"
      "        [--timeout-ms N] [--verbose] | --script session.txt\n"
      "                                         one request against a "
      "running server\n");
}

void stop_on_signals() {
  if (g_signal_thread_started) return;
  g_signal_thread_started = true;
  // Block the stop signals in every future thread (workers inherit this
  // mask), then take them synchronously on a dedicated thread: nothing
  // runs in async-signal context.
  static sigset_t set;
  sigemptyset(&set);
  sigaddset(&set, SIGINT);
  sigaddset(&set, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &set, nullptr);
  std::thread([] {
    int signal = 0;
    sigwait(&set, &signal);
    std::lock_guard<std::mutex> lock(g_active_mutex);
    if (g_active_server != nullptr) g_active_server->request_stop();
  }).detach();
}

}  // namespace hp::serve
