// Thin POSIX socket layer for the analysis server: RAII fds, endpoint
// parsing (Unix-domain and TCP), and a bounded line reader implementing
// the newline-delimited framing of serve/protocol.hpp.
//
// Everything here is transport only -- no protocol knowledge beyond the
// frame-size cap the reader enforces, so oversized lines are rejected
// in O(cap) bytes before a parser ever sees them.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "serve/protocol.hpp"

namespace hp::serve {

/// Error thrown on socket-level failures (bind, connect, accept, short
/// writes). Protocol violations use hp::ParseError instead.
class SocketError : public std::runtime_error {
 public:
  explicit SocketError(const std::string& what) : std::runtime_error(what) {}
};

/// Move-only owner of one file descriptor.
///
/// The fd is atomic because the server's stop path calls
/// shutdown_read()/shutdown_both() from another thread while the owning
/// connection thread may be close()ing concurrently: close() publishes
/// -1 before releasing the fd, so a racing shutdown either reaches the
/// still-open fd (the half-close we want) or no-ops. Moves are NOT
/// thread-safe; only close-vs-shutdown is.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }

  Socket(Socket&& other) noexcept : fd_(other.release()) {}
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  int fd() const { return fd_.load(std::memory_order_acquire); }
  bool valid() const { return fd() >= 0; }
  void close();

  /// shutdown(SHUT_RD): the peer's reads of us still work, our reader
  /// sees EOF. The server's graceful drain uses this -- in-flight
  /// requests finish and their replies still go out.
  void shutdown_read();
  /// shutdown(SHUT_RDWR): unblock any thread sitting in accept/recv.
  void shutdown_both();

 private:
  /// Detach and return the fd (-1 if already closed/moved-from).
  int release() { return fd_.exchange(-1, std::memory_order_acq_rel); }

  std::atomic<int> fd_{-1};
};

/// Where a server listens / a client connects.
///
/// Text form (CLI --socket flag, recorded sessions):
///   unix:/tmp/hp.sock   Unix-domain stream socket (also bare "/path")
///   tcp:127.0.0.1:7077  IPv4 TCP; host may be empty for "any" (listen)
///                       or loopback (connect); port 0 = ephemeral
struct Endpoint {
  enum class Kind { kUnix, kTcp };

  Kind kind = Kind::kUnix;
  std::string path;            ///< Unix socket path
  std::string host;            ///< TCP numeric IPv4 host, may be empty
  std::uint16_t port = 0;      ///< TCP port

  std::string to_string() const;
};

/// Parse the text form above. Throws hp::InvalidInputError on a bad
/// spec (empty, over-long Unix path, non-numeric port, ...).
Endpoint parse_endpoint(const std::string& spec);

/// Bind + listen. For Unix endpoints a stale socket file is unlinked
/// first. Returns the listening socket; for tcp port 0 the chosen
/// ephemeral port is written back into `endpoint`. Throws SocketError.
Socket listen_on(Endpoint& endpoint, int backlog = 64);

/// Connect to a listening endpoint. Throws SocketError.
Socket connect_to(const Endpoint& endpoint);

/// Accept one connection. Returns an invalid Socket when the listener
/// was closed/shut down (the server's stop path); throws SocketError on
/// other failures.
Socket accept_on(Socket& listener);

/// Write the whole buffer (MSG_NOSIGNAL; EINTR retried). Returns false
/// if the peer vanished mid-write.
bool write_all(int fd, const std::string& data);

/// Buffered reader of newline-terminated frames with a hard per-line
/// byte cap. Never blocks longer than the underlying fd does.
class LineReader {
 public:
  explicit LineReader(int fd, std::size_t max_line = proto::kMaxFrameBytes)
      : fd_(fd), max_line_(max_line) {}

  enum class Status {
    kLine,       ///< `out` holds one frame (newline stripped)
    kEof,        ///< clean close at a frame boundary
    kTruncated,  ///< close mid-frame (partial line discarded)
    kOverflow,   ///< frame exceeded max_line; connection unusable
    kError,      ///< recv failed (errno message in `out`)
  };

  Status read_line(std::string& out);

 private:
  int fd_;
  std::size_t max_line_;
  std::string buffer_;
  bool eof_ = false;
};

}  // namespace hp::serve
