#include "mm/csr.hpp"

#include <algorithm>

namespace hp::mm {

namespace {
/// Expand symmetric storage and sum duplicates into sorted (r, c, v)
/// triples.
std::vector<Entry> expanded_sorted_entries(const CooMatrix& coo) {
  std::vector<Entry> entries;
  entries.reserve(static_cast<std::size_t>(coo.nnz_expanded()));
  for (const Entry& e : coo.entries) {
    entries.push_back(e);
    if (coo.symmetry == Symmetry::kSymmetric && e.row != e.col) {
      entries.push_back(Entry{e.col, e.row, e.value});
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) {
              if (a.row != b.row) return a.row < b.row;
              return a.col < b.col;
            });
  // Sum duplicates.
  std::vector<Entry> merged;
  for (const Entry& e : entries) {
    if (!merged.empty() && merged.back().row == e.row &&
        merged.back().col == e.col) {
      merged.back().value += e.value;
    } else {
      merged.push_back(e);
    }
  }
  return merged;
}
}  // namespace

CsrMatrix::CsrMatrix(const CooMatrix& coo) : num_cols_(coo.num_cols) {
  if (coo.symmetry == Symmetry::kSymmetric) {
    HP_REQUIRE(coo.num_rows == coo.num_cols,
               "CsrMatrix: symmetric matrix must be square");
  }
  const std::vector<Entry> entries = expanded_sorted_entries(coo);
  offsets_.assign(static_cast<std::size_t>(coo.num_rows) + 1, 0);
  for (const Entry& e : entries) ++offsets_[e.row + 1];
  for (std::size_t i = 1; i < offsets_.size(); ++i) {
    offsets_[i] += offsets_[i - 1];
  }
  columns_.reserve(entries.size());
  values_.reserve(entries.size());
  for (const Entry& e : entries) {
    columns_.push_back(e.col);
    values_.push_back(e.value);
  }
}

std::vector<double> CsrMatrix::multiply(const std::vector<double>& x) const {
  HP_REQUIRE(x.size() == num_cols_, "CsrMatrix::multiply: size mismatch");
  std::vector<double> y(num_rows(), 0.0);
  for (index_t r = 0; r < num_rows(); ++r) {
    double sum = 0.0;
    for (std::size_t i = offsets_[r]; i < offsets_[r + 1]; ++i) {
      sum += values_[i] * x[columns_[i]];
    }
    y[r] = sum;
  }
  return y;
}

CsrMatrix CsrMatrix::transpose() const {
  CooMatrix coo;
  coo.num_rows = num_cols_;
  coo.num_cols = num_rows();
  coo.entries.reserve(columns_.size());
  for (index_t r = 0; r < num_rows(); ++r) {
    for (std::size_t i = offsets_[r]; i < offsets_[r + 1]; ++i) {
      coo.entries.push_back(Entry{columns_[i], r, values_[i]});
    }
  }
  return CsrMatrix{coo};
}

MatrixStats matrix_stats(const CooMatrix& m) {
  MatrixStats stats;
  stats.num_rows = m.num_rows;
  stats.num_cols = m.num_cols;

  const CsrMatrix csr{m};
  stats.nnz = csr.nnz();
  count_t profile = 0;
  for (index_t r = 0; r < csr.num_rows(); ++r) {
    const auto cols = csr.row_columns(r);
    stats.row_size_histogram.add(cols.size());
    if (cols.empty()) {
      ++stats.empty_rows;
      continue;
    }
    stats.max_row_size =
        std::max<index_t>(stats.max_row_size,
                          static_cast<index_t>(cols.size()));
    for (index_t c : cols) {
      const index_t band = r > c ? r - c : c - r;
      stats.bandwidth = std::max(stats.bandwidth, band);
    }
    if (cols.front() < r) profile += r - cols.front();
  }
  stats.profile = profile;
  stats.mean_row_size =
      m.num_rows > 0 ? static_cast<double>(stats.nnz) / m.num_rows : 0.0;
  return stats;
}

}  // namespace hp::mm
