#include "mm/mm_synth.hpp"

#include <algorithm>
#include <set>

namespace hp::mm {

namespace {
double random_value(Rng& rng) { return rng.uniform_real(-1.0, 1.0); }
}  // namespace

CooMatrix synthesize_banded(index_t n, index_t bandwidth, double fill,
                            Rng& rng) {
  HP_REQUIRE(n > 0, "synthesize_banded: n must be positive");
  HP_REQUIRE(fill >= 0.0 && fill <= 1.0, "synthesize_banded: bad fill");
  CooMatrix m;
  m.num_rows = n;
  m.num_cols = n;
  for (index_t i = 0; i < n; ++i) {
    const index_t lo = i > bandwidth ? i - bandwidth : 0;
    const index_t hi = std::min<index_t>(n - 1, i + bandwidth);
    for (index_t j = lo; j <= hi; ++j) {
      if (i == j || rng.bernoulli(fill)) {
        m.entries.push_back(Entry{i, j, random_value(rng)});
      }
    }
  }
  return m;
}

CooMatrix synthesize_fem_blocks(index_t n, index_t block, count_t extra,
                                Rng& rng) {
  HP_REQUIRE(block >= 2 && block <= n, "synthesize_fem_blocks: bad block");
  CooMatrix m;
  m.num_rows = n;
  m.num_cols = n;
  std::set<std::pair<index_t, index_t>> seen;
  auto add = [&](index_t i, index_t j) {
    if (seen.insert({i, j}).second) {
      m.entries.push_back(Entry{i, j, random_value(rng)});
    }
  };
  // Overlapping blocks with stride block/2.
  const index_t stride = std::max<index_t>(1, block / 2);
  for (index_t start = 0; start < n; start += stride) {
    const index_t end = std::min<index_t>(n, start + block);
    for (index_t i = start; i < end; ++i) {
      for (index_t j = start; j < end; ++j) add(i, j);
    }
    if (end == n) break;
  }
  // Long-range coupling entries.
  for (count_t k = 0; k < extra; ++k) {
    add(static_cast<index_t>(rng.uniform(n)),
        static_cast<index_t>(rng.uniform(n)));
  }
  return m;
}

CooMatrix synthesize_stiffness(index_t n, index_t element_size,
                               count_t num_elements, Rng& rng) {
  HP_REQUIRE(element_size >= 2 && element_size <= n,
             "synthesize_stiffness: bad element size");
  CooMatrix m;
  m.num_rows = n;
  m.num_cols = n;
  m.symmetry = Symmetry::kSymmetric;
  std::set<std::pair<index_t, index_t>> seen;
  auto add_lower = [&](index_t i, index_t j) {
    if (i < j) std::swap(i, j);
    if (seen.insert({i, j}).second) {
      m.entries.push_back(Entry{i, j, random_value(rng)});
    }
  };
  // Diagonal (stiffness matrices are SPD-profiled).
  for (index_t i = 0; i < n; ++i) add_lower(i, i);
  std::vector<index_t> nodes;
  for (count_t k = 0; k < num_elements; ++k) {
    // Elements touch spatially nearby nodes: a random window anchor plus
    // random picks inside a window 4x the element size.
    nodes.clear();
    const index_t window = std::min<index_t>(n, element_size * 4);
    const index_t anchor =
        static_cast<index_t>(rng.uniform(n - window + 1));
    std::set<index_t> picked;
    while (picked.size() < element_size) {
      picked.insert(anchor + static_cast<index_t>(rng.uniform(window)));
    }
    nodes.assign(picked.begin(), picked.end());
    for (std::size_t a = 0; a < nodes.size(); ++a) {
      for (std::size_t b = a; b < nodes.size(); ++b) {
        add_lower(nodes[a], nodes[b]);
      }
    }
  }
  return m;
}

CooMatrix synthesize_tokamak(index_t n, index_t bandwidth, index_t border,
                             double fill, Rng& rng) {
  HP_REQUIRE(border < n, "synthesize_tokamak: border must be < n");
  CooMatrix m = synthesize_banded(n, bandwidth, fill, rng);
  std::set<std::pair<index_t, index_t>> seen;
  for (const Entry& e : m.entries) seen.insert({e.row, e.col});
  // Dense coupling of every unknown to the last `border` ones.
  for (index_t b = n - border; b < n; ++b) {
    for (index_t i = 0; i < n; ++i) {
      if (rng.bernoulli(0.5)) {
        if (seen.insert({i, b}).second) {
          m.entries.push_back(Entry{i, b, random_value(rng)});
        }
      }
      if (rng.bernoulli(0.5)) {
        if (seen.insert({b, i}).second) {
          m.entries.push_back(Entry{b, i, random_value(rng)});
        }
      }
    }
  }
  return m;
}

CooMatrix synthesize_random(index_t rows, index_t cols, count_t nnz,
                            Rng& rng) {
  HP_REQUIRE(nnz <= static_cast<count_t>(rows) * cols,
             "synthesize_random: nnz exceeds capacity");
  CooMatrix m;
  m.num_rows = rows;
  m.num_cols = cols;
  std::set<std::pair<index_t, index_t>> seen;
  while (m.entries.size() < nnz) {
    const index_t i = static_cast<index_t>(rng.uniform(rows));
    const index_t j = static_cast<index_t>(rng.uniform(cols));
    if (seen.insert({i, j}).second) {
      m.entries.push_back(Entry{i, j, random_value(rng)});
    }
  }
  return m;
}

}  // namespace hp::mm
