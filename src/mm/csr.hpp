// Compressed-sparse-row form and structural statistics for the Matrix
// Market substrate. The k-core Table 1 discussion ties run time to
// matrix structure (bandwidth, row fill); these utilities compute those
// descriptors and provide the CSR view the converters and generators
// are tested against.
#pragma once

#include <span>
#include <vector>

#include "mm/matrix_market.hpp"
#include "util/histogram.hpp"

namespace hp::mm {

/// Immutable CSR matrix. Built from a CooMatrix with symmetric
/// expansion applied and duplicate coordinates summed.
class CsrMatrix {
 public:
  CsrMatrix() = default;
  explicit CsrMatrix(const CooMatrix& coo);

  index_t num_rows() const {
    return static_cast<index_t>(offsets_.empty() ? 0 : offsets_.size() - 1);
  }
  index_t num_cols() const { return num_cols_; }
  count_t nnz() const { return columns_.size(); }

  std::span<const index_t> row_columns(index_t r) const {
    return {columns_.data() + offsets_[r], columns_.data() + offsets_[r + 1]};
  }
  std::span<const double> row_values(index_t r) const {
    return {values_.data() + offsets_[r], values_.data() + offsets_[r + 1]};
  }
  index_t row_size(index_t r) const {
    return static_cast<index_t>(offsets_[r + 1] - offsets_[r]);
  }

  /// Sparse matrix-vector product y = A x (the classic CSR kernel).
  std::vector<double> multiply(const std::vector<double>& x) const;

  /// Transposed copy.
  CsrMatrix transpose() const;

 private:
  index_t num_cols_ = 0;
  std::vector<std::size_t> offsets_;
  std::vector<index_t> columns_;  // sorted within each row
  std::vector<double> values_;
};

/// Structural descriptors of a sparse matrix.
struct MatrixStats {
  index_t num_rows = 0;
  index_t num_cols = 0;
  count_t nnz = 0;                  ///< after symmetric expansion
  index_t bandwidth = 0;            ///< max |i - j| over nonzeros
  count_t profile = 0;              ///< sum over rows of (i - min column)
  index_t max_row_size = 0;
  double mean_row_size = 0.0;
  index_t empty_rows = 0;
  Histogram row_size_histogram;
};

MatrixStats matrix_stats(const CooMatrix& m);

}  // namespace hp::mm
