// MatrixMarket coordinate-format reader/writer.
//
// Table 1 of the paper runs the hypergraph k-core on sparse matrices
// from the NIST Matrix Market (bfw*, fidap*, stk*, utm* families),
// viewing each matrix as a hypergraph (rows = hyperedges over column
// vertices). This module parses and writes the interchange format:
//
//   %%MatrixMarket matrix coordinate <real|integer|pattern>
//                  <general|symmetric>
//   % comments
//   nrows ncols nnz
//   i j [value]          (1-based indices)
#pragma once

#include <string>
#include <vector>

#include "util/common.hpp"

namespace hp::mm {

enum class Field { kReal, kInteger, kPattern };
enum class Symmetry { kGeneral, kSymmetric };

struct Entry {
  index_t row = 0;  ///< 0-based
  index_t col = 0;  ///< 0-based
  double value = 1.0;
};

/// Sparse matrix in coordinate form. For symmetric matrices only the
/// lower triangle (row >= col) is stored, per the format.
struct CooMatrix {
  index_t num_rows = 0;
  index_t num_cols = 0;
  Field field = Field::kReal;
  Symmetry symmetry = Symmetry::kGeneral;
  std::vector<Entry> entries;

  count_t nnz_stored() const { return entries.size(); }

  /// Structural nonzeros after symmetric expansion (off-diagonal
  /// symmetric entries count twice).
  count_t nnz_expanded() const;
};

/// Parse MatrixMarket text. Throws hp::ParseError on malformed input
/// (bad banner, out-of-range indices, wrong entry count, an upper-
/// triangular entry in a symmetric matrix, ...).
CooMatrix parse_matrix_market(const std::string& text);

std::string format_matrix_market(const CooMatrix& m);

CooMatrix load_matrix_market(const std::string& path);
void save_matrix_market(const CooMatrix& m, const std::string& path);

}  // namespace hp::mm
