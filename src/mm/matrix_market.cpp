#include "mm/matrix_market.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/declared_sizes.hpp"
#include "util/stringutil.hpp"

namespace hp::mm {

namespace {

/// Size-line dimensions run through the loader-shared declared-entity
/// bound (io::kMaxDeclaredEntities) so MatrixMarket headers cannot
/// drive allocations the other loaders would reject.
index_t parse_dimension(std::string_view field, std::size_t line_no,
                        const char* what) {
  return io::check_declared_count(parse_int(field), what,
                                  "line " + std::to_string(line_no));
}

}  // namespace

count_t CooMatrix::nnz_expanded() const {
  if (symmetry == Symmetry::kGeneral) return entries.size();
  count_t n = 0;
  for (const Entry& e : entries) {
    n += e.row == e.col ? 1 : 2;
  }
  return n;
}

CooMatrix parse_matrix_market(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;

  // Banner.
  if (!std::getline(in, line)) throw ParseError{"matrix market: empty input"};
  ++line_no;
  {
    const auto fields = split_whitespace(line);
    if (fields.size() != 5 || !iequals(fields[0], "%%MatrixMarket") ||
        !iequals(fields[1], "matrix") || !iequals(fields[2], "coordinate")) {
      throw ParseError{
          "matrix market: bad banner (only 'matrix coordinate' supported)"};
    }
    CooMatrix m;
    if (iequals(fields[3], "real")) {
      m.field = Field::kReal;
    } else if (iequals(fields[3], "integer")) {
      m.field = Field::kInteger;
    } else if (iequals(fields[3], "pattern")) {
      m.field = Field::kPattern;
    } else {
      throw ParseError{"matrix market: unsupported field '" +
                       std::string{fields[3]} + "'"};
    }
    if (iequals(fields[4], "general")) {
      m.symmetry = Symmetry::kGeneral;
    } else if (iequals(fields[4], "symmetric")) {
      m.symmetry = Symmetry::kSymmetric;
    } else {
      throw ParseError{"matrix market: unsupported symmetry '" +
                       std::string{fields[4]} + "'"};
    }

    // Size line (skipping comments).
    count_t declared_nnz = 0;
    bool size_seen = false;
    while (std::getline(in, line)) {
      ++line_no;
      const std::string_view body = trim(line);
      if (body.empty() || body.front() == '%') continue;
      const auto size_fields = split_whitespace(body);
      if (size_fields.size() != 3) {
        throw ParseError{"line " + std::to_string(line_no) +
                         ": expected 'rows cols nnz'"};
      }
      m.num_rows = parse_dimension(size_fields[0], line_no, "row count");
      m.num_cols = parse_dimension(size_fields[1], line_no, "column count");
      const long long nnz = parse_int(size_fields[2]);
      if (nnz < 0) {
        throw ParseError{"line " + std::to_string(line_no) +
                         ": negative nnz count"};
      }
      declared_nnz = static_cast<count_t>(nnz);
      size_seen = true;
      break;
    }
    if (!size_seen) throw ParseError{"matrix market: missing size line"};

    // Never trust the declared count for the up-front allocation: each
    // entry needs at least 4 bytes of text, so a declaration exceeding
    // that bound is a corrupted header (the exact count is still
    // enforced after reading). Without the cap, "1 1 99999999999999"
    // is a 20-byte allocation bomb.
    m.entries.reserve(static_cast<std::size_t>(
        std::min<count_t>(declared_nnz, text.size() / 4 + 1)));
    while (std::getline(in, line)) {
      ++line_no;
      const std::string_view body = trim(line);
      if (body.empty() || body.front() == '%') continue;
      const auto fields2 = split_whitespace(body);
      const std::size_t expect = m.field == Field::kPattern ? 2 : 3;
      if (fields2.size() != expect) {
        throw ParseError{"line " + std::to_string(line_no) +
                         ": wrong number of entry fields"};
      }
      Entry entry;
      const long long r = parse_int(fields2[0]);
      const long long c = parse_int(fields2[1]);
      // Compare before narrowing: an index like 2^32+1 must not wrap
      // into the valid range.
      if (r < 1 || c < 1 || r > static_cast<long long>(m.num_rows) ||
          c > static_cast<long long>(m.num_cols)) {
        throw ParseError{"line " + std::to_string(line_no) +
                         ": index out of range"};
      }
      entry.row = static_cast<index_t>(r - 1);
      entry.col = static_cast<index_t>(c - 1);
      if (m.field != Field::kPattern) {
        entry.value = parse_double(fields2[2]);
      }
      if (m.symmetry == Symmetry::kSymmetric && entry.row < entry.col) {
        throw ParseError{"line " + std::to_string(line_no) +
                         ": upper-triangular entry in symmetric matrix"};
      }
      m.entries.push_back(entry);
    }
    if (m.entries.size() != declared_nnz) {
      throw ParseError{"matrix market: header declares " +
                       std::to_string(declared_nnz) + " entries, found " +
                       std::to_string(m.entries.size())};
    }
    return m;
  }
}

std::string format_matrix_market(const CooMatrix& m) {
  std::ostringstream out;
  out << "%%MatrixMarket matrix coordinate ";
  switch (m.field) {
    case Field::kReal:
      out << "real ";
      break;
    case Field::kInteger:
      out << "integer ";
      break;
    case Field::kPattern:
      out << "pattern ";
      break;
  }
  out << (m.symmetry == Symmetry::kGeneral ? "general" : "symmetric") << '\n';
  out << m.num_rows << ' ' << m.num_cols << ' ' << m.entries.size() << '\n';
  for (const Entry& e : m.entries) {
    out << (e.row + 1) << ' ' << (e.col + 1);
    if (m.field == Field::kInteger) {
      out << ' ' << static_cast<long long>(e.value);
    } else if (m.field == Field::kReal) {
      out << ' ' << e.value;
    }
    out << '\n';
  }
  return out.str();
}

CooMatrix load_matrix_market(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error{"load_matrix_market: cannot open " + path};
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_matrix_market(buffer.str());
}

void save_matrix_market(const CooMatrix& m, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error{"save_matrix_market: cannot open " + path};
  out << format_matrix_market(m);
  if (!out) {
    throw std::runtime_error{"save_matrix_market: write failed for " + path};
  }
}

}  // namespace hp::mm
