#include "mm/mm_to_hypergraph.hpp"

#include <algorithm>

namespace hp::mm {

namespace {
/// Collect (row -> columns) with symmetric expansion, sorted, deduped.
std::vector<std::vector<index_t>> rows_to_columns(const CooMatrix& m) {
  std::vector<std::vector<index_t>> rows(m.num_rows);
  for (const Entry& e : m.entries) {
    rows[e.row].push_back(e.col);
    if (m.symmetry == Symmetry::kSymmetric && e.row != e.col) {
      // The transpose entry lives at (col, row); valid because symmetric
      // matrices are square.
      rows[e.col].push_back(e.row);
    }
  }
  for (auto& cols : rows) {
    std::sort(cols.begin(), cols.end());
    cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
  }
  return rows;
}
}  // namespace

hyper::Hypergraph row_net_hypergraph(const CooMatrix& m) {
  if (m.symmetry == Symmetry::kSymmetric) {
    HP_REQUIRE(m.num_rows == m.num_cols,
               "row_net_hypergraph: symmetric matrix must be square");
  }
  const auto rows = rows_to_columns(m);
  hyper::HypergraphBuilder builder{m.num_cols};
  for (const auto& cols : rows) {
    if (!cols.empty()) builder.add_edge(cols);
  }
  return builder.build();
}

hyper::Hypergraph column_net_hypergraph(const CooMatrix& m) {
  // Transpose and reuse the row-net construction.
  CooMatrix t;
  t.num_rows = m.num_cols;
  t.num_cols = m.num_rows;
  t.field = m.field;
  t.symmetry = m.symmetry;
  t.entries.reserve(m.entries.size());
  for (const Entry& e : m.entries) {
    // For symmetric storage, keep the lower-triangle convention by
    // leaving indices as-is (the expansion is symmetric anyway).
    if (m.symmetry == Symmetry::kSymmetric) {
      t.entries.push_back(e);
    } else {
      t.entries.push_back(Entry{e.col, e.row, e.value});
    }
  }
  return row_net_hypergraph(t);
}

}  // namespace hp::mm
