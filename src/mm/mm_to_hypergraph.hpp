// Conversion of a sparse matrix to a hypergraph, as in the paper's
// Table 1: "we have run the hypergraph core algorithm on larger
// hypergraphs obtained from scientific computing applications (from the
// Matrix Market)". The standard row-net model is used: every column is
// a vertex, every row is a hyperedge containing the columns where the
// row has a structural nonzero. Symmetric matrices are expanded first.
#pragma once

#include "core/hypergraph.hpp"
#include "mm/matrix_market.hpp"

namespace hp::mm {

/// Row-net hypergraph: |V| = num_cols, |F| = number of non-empty rows.
/// Empty rows produce no hyperedge (hyperedges cannot be empty).
hyper::Hypergraph row_net_hypergraph(const CooMatrix& m);

/// Column-net hypergraph: the dual view (|V| = num_rows).
hyper::Hypergraph column_net_hypergraph(const CooMatrix& m);

}  // namespace hp::mm
