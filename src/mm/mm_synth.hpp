// Synthetic sparse matrices with the structural profiles of the Matrix
// Market families the paper's Table 1 uses (bfw*, fidap*, stk/bcsstk*,
// utm*). The originals are not bundled; these generators produce
// matrices of the same families' character -- banded finite-element
// stencils, fluid-dynamics block structure, structural-stiffness
// overlapping element cliques, and tokamak-style bordered bands -- at
// sizes chosen so the whole Table 1 sweep runs in seconds. The point
// being reproduced is the *scaling trend* of the k-core run time with
// core size and Delta_2,F, not the absolute 2 GHz-Xeon timings.
#pragma once

#include "mm/matrix_market.hpp"
#include "util/rng.hpp"

namespace hp::mm {

/// Banded matrix (bfw398a-like): n x n, nonzeros within `bandwidth` of
/// the diagonal, each present with probability `fill`. Diagonal always
/// present. General, real.
CooMatrix synthesize_banded(index_t n, index_t bandwidth, double fill,
                            Rng& rng);

/// FEM fluid-dynamics profile (fidap-like): overlapping dense element
/// blocks of size `block` laid along the diagonal with 50 % overlap,
/// plus sparse random coupling entries. General, real.
CooMatrix synthesize_fem_blocks(index_t n, index_t block, count_t extra,
                                Rng& rng);

/// Structural-stiffness profile (bcsstk-like): symmetric; random
/// "elements" of `element_size` nodes, each contributing a dense clique
/// to the lower triangle. `num_elements` elements.
CooMatrix synthesize_stiffness(index_t n, index_t element_size,
                               count_t num_elements, Rng& rng);

/// Tokamak profile (utm-like): banded core plus dense border rows/cols
/// coupling everything to the last `border` unknowns. General, real.
CooMatrix synthesize_tokamak(index_t n, index_t bandwidth, index_t border,
                             double fill, Rng& rng);

/// Uniform random sparse matrix (control case): `nnz` distinct entries.
CooMatrix synthesize_random(index_t rows, index_t cols, count_t nnz,
                            Rng& rng);

}  // namespace hp::mm
