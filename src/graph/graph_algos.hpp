// Traversal algorithms on graphs: BFS distances, connected components,
// diameter / average path length (the small-world measurements of the
// paper, applied to the baseline graph models).
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "util/common.hpp"

namespace hp::graph {

/// BFS distances (in edges) from `source`; unreachable vertices get
/// kInvalidIndex.
std::vector<index_t> bfs_distances(const Graph& g, index_t source);

/// Connected-component labeling.
struct Components {
  std::vector<index_t> label;       ///< component id per vertex
  std::vector<index_t> sizes;       ///< vertices per component
  index_t count = 0;

  /// Index of the largest component.
  index_t largest() const;
};

Components connected_components(const Graph& g);

/// Exact all-pairs path-length summary over the largest component (or
/// whole graph if connected). O(V * E); fine at the paper's scales.
struct PathSummary {
  index_t diameter = 0;        ///< max finite distance
  double average_length = 0.0; ///< mean over all connected ordered pairs
  count_t pairs = 0;           ///< number of connected ordered pairs
};

PathSummary path_summary(const Graph& g);

}  // namespace hp::graph
