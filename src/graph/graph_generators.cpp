#include "graph/graph_generators.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>

namespace hp::graph {

Graph generate_erdos_renyi(index_t n, count_t m, Rng& rng) {
  HP_REQUIRE(n >= 2 || m == 0, "generate_erdos_renyi: too few vertices");
  const count_t max_edges =
      static_cast<count_t>(n) * (n - 1) / 2;
  HP_REQUIRE(m <= max_edges, "generate_erdos_renyi: m exceeds C(n,2)");
  GraphBuilder builder{n};
  std::set<std::pair<index_t, index_t>> seen;
  while (seen.size() < m) {
    index_t u = static_cast<index_t>(rng.uniform(n));
    index_t v = static_cast<index_t>(rng.uniform(n));
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    if (seen.insert({u, v}).second) builder.add_edge(u, v);
  }
  return builder.build();
}

Graph generate_barabasi_albert(index_t n, index_t attach, Rng& rng) {
  HP_REQUIRE(attach >= 1, "generate_barabasi_albert: attach must be >= 1");
  HP_REQUIRE(n > attach, "generate_barabasi_albert: n must exceed attach");
  GraphBuilder builder{n};
  // `targets` holds one entry per half-edge: sampling uniformly from it is
  // sampling proportionally to degree.
  std::vector<index_t> targets;
  // Seed: a clique on attach+1 vertices.
  for (index_t u = 0; u <= attach; ++u) {
    for (index_t v = u + 1; v <= attach; ++v) {
      builder.add_edge(u, v);
      targets.push_back(u);
      targets.push_back(v);
    }
  }
  std::vector<index_t> chosen;
  for (index_t v = attach + 1; v < n; ++v) {
    chosen.clear();
    while (chosen.size() < attach) {
      const index_t t = targets[rng.pick(targets.size())];
      if (std::find(chosen.begin(), chosen.end(), t) == chosen.end()) {
        chosen.push_back(t);
      }
    }
    for (index_t t : chosen) {
      builder.add_edge(v, t);
      targets.push_back(v);
      targets.push_back(t);
    }
  }
  return builder.build();
}

Graph generate_chung_lu(const std::vector<double>& weights, Rng& rng) {
  const index_t n = static_cast<index_t>(weights.size());
  double total = 0.0;
  for (double w : weights) {
    HP_REQUIRE(w >= 0.0, "generate_chung_lu: negative weight");
    total += w;
  }
  HP_REQUIRE(total > 0.0, "generate_chung_lu: zero total weight");
  GraphBuilder builder{n};

  // Miller-Hagberg style efficient sampling: sort weights descending and
  // skip runs of non-edges geometrically. O(n + m) expected.
  std::vector<index_t> order(n);
  for (index_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](index_t a, index_t b) {
    return weights[a] > weights[b];
  });

  for (index_t i = 0; i < n; ++i) {
    const double wi = weights[order[i]];
    if (wi <= 0.0) break;
    index_t j = i + 1;
    double p = std::min(1.0, wi * weights[order[j < n ? j : i]] / total);
    while (j < n && p > 0.0) {
      if (p < 1.0) {
        const double r = rng.uniform01();
        j += static_cast<index_t>(
            std::floor(std::log(std::max(r, 1e-300)) / std::log(1.0 - p)));
      }
      if (j >= n) break;
      const double q = std::min(1.0, wi * weights[order[j]] / total);
      if (rng.uniform01() < q / p) {
        builder.add_edge(order[i], order[j]);
      }
      p = q;
      ++j;
    }
  }
  return builder.build();
}

std::vector<double> power_law_weights(index_t n, double gamma,
                                      double avg_degree) {
  HP_REQUIRE(gamma > 2.0, "power_law_weights: gamma must exceed 2");
  HP_REQUIRE(n > 0, "power_law_weights: n must be positive");
  std::vector<double> w(n);
  const double exponent = -1.0 / (gamma - 1.0);
  for (index_t i = 0; i < n; ++i) {
    w[i] = std::pow(static_cast<double>(i) + 1.0, exponent);
  }
  double sum = 0.0;
  for (double x : w) sum += x;
  const double scale = avg_degree * static_cast<double>(n) / sum;
  for (double& x : w) x *= scale;
  return w;
}

Graph rewire_preserving_degrees(const Graph& g, count_t swaps, Rng& rng) {
  // Extract edge list.
  std::vector<std::pair<index_t, index_t>> edges;
  edges.reserve(static_cast<std::size_t>(g.num_edges()));
  for (index_t u = 0; u < g.num_vertices(); ++u) {
    for (index_t v : g.neighbors(u)) {
      if (u < v) edges.emplace_back(u, v);
    }
  }
  if (edges.size() < 2) {
    GraphBuilder builder{g.num_vertices()};
    for (const auto& [u, v] : edges) builder.add_edge(u, v);
    return builder.build();
  }

  std::set<std::pair<index_t, index_t>> present(edges.begin(), edges.end());
  auto norm = [](index_t a, index_t b) {
    return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  };

  count_t done = 0;
  count_t attempts = 0;
  const count_t max_attempts = swaps * 50 + 1000;
  while (done < swaps && attempts < max_attempts) {
    ++attempts;
    const std::size_t i = rng.pick(edges.size());
    const std::size_t j = rng.pick(edges.size());
    if (i == j) continue;
    auto [a, b] = edges[i];
    auto [c, d] = edges[j];
    // Swap to (a, d) and (c, b).
    if (a == d || c == b || a == c || b == d) continue;
    const auto e1 = norm(a, d);
    const auto e2 = norm(c, b);
    if (present.count(e1) || present.count(e2)) continue;
    present.erase(norm(a, b));
    present.erase(norm(c, d));
    present.insert(e1);
    present.insert(e2);
    edges[i] = e1;
    edges[j] = e2;
    ++done;
  }

  GraphBuilder builder{g.num_vertices()};
  for (const auto& [u, v] : edges) builder.add_edge(u, v);
  return builder.build();
}

}  // namespace hp::graph
