#include "graph/graph_stats.hpp"

#include <algorithm>

namespace hp::graph {

Histogram degree_histogram(const Graph& g) {
  Histogram h;
  for (index_t v = 0; v < g.num_vertices(); ++v) h.add(g.degree(v));
  return h;
}

namespace {
/// Count edges among the neighbors of v (each counted once).
count_t links_among_neighbors(const Graph& g, index_t v) {
  const auto nbrs = g.neighbors(v);
  count_t links = 0;
  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    for (std::size_t j = i + 1; j < nbrs.size(); ++j) {
      if (g.has_edge(nbrs[i], nbrs[j])) ++links;
    }
  }
  return links;
}
}  // namespace

double average_clustering_coefficient(const Graph& g) {
  if (g.num_vertices() == 0) return 0.0;
  double sum = 0.0;
  for (index_t v = 0; v < g.num_vertices(); ++v) {
    const index_t d = g.degree(v);
    if (d < 2) continue;
    const double possible = static_cast<double>(d) * (d - 1) / 2.0;
    sum += static_cast<double>(links_among_neighbors(g, v)) / possible;
  }
  return sum / static_cast<double>(g.num_vertices());
}

double transitivity(const Graph& g) {
  count_t closed = 0;  // 3 * triangles, counted per center vertex
  count_t wedges = 0;
  for (index_t v = 0; v < g.num_vertices(); ++v) {
    const index_t d = g.degree(v);
    if (d < 2) continue;
    wedges += static_cast<count_t>(d) * (d - 1) / 2;
    closed += links_among_neighbors(g, v);
  }
  return wedges > 0 ? static_cast<double>(closed) / static_cast<double>(wedges)
                    : 0.0;
}

PowerLawFit degree_power_law(const Graph& g) {
  return power_law_fit(degree_histogram(g).frequencies());
}

}  // namespace hp::graph
