// Degree statistics and clustering coefficient for graphs. The paper's
// section 1.2 cites the "unusually high clustering coefficients" caused
// by clique-expanding complexes (Maslov/Sneppen/Alon); we measure exactly
// that in bench_model_comparison.
#pragma once

#include "graph/graph.hpp"
#include "util/histogram.hpp"
#include "util/linreg.hpp"

namespace hp::graph {

/// Degree histogram of the graph.
Histogram degree_histogram(const Graph& g);

/// Average local clustering coefficient (Watts-Strogatz). Vertices of
/// degree < 2 contribute 0.
double average_clustering_coefficient(const Graph& g);

/// Global clustering coefficient (transitivity): 3 * triangles / wedges.
double transitivity(const Graph& g);

/// Power-law fit of the degree distribution (degrees >= 1).
PowerLawFit degree_power_law(const Graph& g);

}  // namespace hp::graph
