// Random graph generators used to synthesize the DIP protein-protein
// interaction networks of section 3 (yeast: 4,746 proteins; drosophila:
// ~7,000) and the null models for the small-world analysis.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace hp::graph {

/// Erdos-Renyi G(n, m): m distinct uniform edges.
Graph generate_erdos_renyi(index_t n, count_t m, Rng& rng);

/// Barabasi-Albert preferential attachment: start from a small clique,
/// attach each new vertex to `attach` existing vertices chosen
/// proportionally to degree. Produces a power-law degree distribution
/// with exponent near 3.
Graph generate_barabasi_albert(index_t n, index_t attach, Rng& rng);

/// Chung-Lu model: edge (u, v) present with probability
/// min(1, w_u w_v / sum w). Expected degrees follow the weight sequence,
/// so a power-law weight sequence yields a power-law graph with tunable
/// exponent -- our stand-in for the DIP PPI networks.
Graph generate_chung_lu(const std::vector<double>& weights, Rng& rng);

/// Power-law weight sequence w_i = c * (i + i0)^(-1/(gamma-1)), scaled so
/// the expected average degree matches `avg_degree`. Suitable input for
/// generate_chung_lu.
std::vector<double> power_law_weights(index_t n, double gamma,
                                      double avg_degree);

/// Degree-preserving rewiring (double-edge swaps) -- the standard null
/// model for the small-world comparison: same degree sequence, randomized
/// structure. Performs `swaps` successful swaps.
Graph rewire_preserving_degrees(const Graph& g, count_t swaps, Rng& rng);

}  // namespace hp::graph
