// Compressed-sparse-row undirected simple graph.
//
// This is the substrate for the paper's two baseline representations of
// protein-complex data (clique/star expansions, complex intersection
// graphs) and for the DIP protein-protein interaction comparisons in
// section 3. Immutable after construction; use GraphBuilder to assemble.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/common.hpp"

namespace hp::graph {

class GraphBuilder;

/// Undirected simple graph in CSR form. Neighbor lists are sorted, with
/// no self-loops and no parallel edges.
class Graph {
 public:
  Graph() = default;

  index_t num_vertices() const {
    return static_cast<index_t>(offsets_.empty() ? 0 : offsets_.size() - 1);
  }

  /// Number of undirected edges.
  count_t num_edges() const { return adjacency_.size() / 2; }

  index_t degree(index_t v) const {
    return static_cast<index_t>(offsets_[v + 1] - offsets_[v]);
  }

  /// Sorted neighbors of v.
  std::span<const index_t> neighbors(index_t v) const {
    return {adjacency_.data() + offsets_[v],
            adjacency_.data() + offsets_[v + 1]};
  }

  /// Binary search in the sorted neighbor list.
  bool has_edge(index_t u, index_t v) const;

  index_t max_degree() const;

  /// Bytes used by the CSR arrays; the storage measure the paper uses to
  /// argue the hypergraph representation is cheaper than clique expansion.
  std::size_t storage_bytes() const {
    return offsets_.size() * sizeof(offsets_[0]) +
           adjacency_.size() * sizeof(adjacency_[0]);
  }

 private:
  friend class GraphBuilder;
  std::vector<std::size_t> offsets_;  // size num_vertices()+1
  std::vector<index_t> adjacency_;    // both directions of each edge
};

/// Accumulates edges, deduplicates, and produces an immutable Graph.
class GraphBuilder {
 public:
  explicit GraphBuilder(index_t num_vertices) : num_vertices_(num_vertices) {}

  /// Add an undirected edge. Self-loops are rejected; duplicates are
  /// merged at build(). Endpoints must be < num_vertices.
  void add_edge(index_t u, index_t v);

  std::size_t num_pending_edges() const { return edges_.size(); }

  /// Sort, deduplicate, and produce the CSR graph. The builder may be
  /// reused afterwards (its pending edge list is preserved).
  Graph build() const;

 private:
  index_t num_vertices_;
  std::vector<std::pair<index_t, index_t>> edges_;
};

}  // namespace hp::graph
