#include "graph/graph.hpp"

#include <algorithm>

namespace hp::graph {

bool Graph::has_edge(index_t u, index_t v) const {
  const auto nbrs = neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

index_t Graph::max_degree() const {
  index_t best = 0;
  for (index_t v = 0; v < num_vertices(); ++v) {
    best = std::max(best, degree(v));
  }
  return best;
}

void GraphBuilder::add_edge(index_t u, index_t v) {
  HP_REQUIRE(u != v, "GraphBuilder: self-loop rejected");
  HP_REQUIRE(u < num_vertices_ && v < num_vertices_,
             "GraphBuilder: endpoint out of range");
  if (u > v) std::swap(u, v);
  edges_.emplace_back(u, v);
}

Graph GraphBuilder::build() const {
  std::vector<std::pair<index_t, index_t>> sorted = edges_;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());

  Graph g;
  g.offsets_.assign(num_vertices_ + 1, 0);
  for (const auto& [u, v] : sorted) {
    ++g.offsets_[u + 1];
    ++g.offsets_[v + 1];
  }
  for (std::size_t i = 1; i < g.offsets_.size(); ++i) {
    g.offsets_[i] += g.offsets_[i - 1];
  }
  g.adjacency_.resize(sorted.size() * 2);
  std::vector<std::size_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const auto& [u, v] : sorted) {
    g.adjacency_[cursor[u]++] = v;
    g.adjacency_[cursor[v]++] = u;
  }
  // Each per-vertex slice is already sorted because edges were emitted in
  // global (u, v) order: for a fixed vertex the counterparts appear in
  // increasing order except for the mixed lower/upper halves, so sort.
  for (index_t v = 0; v < num_vertices_; ++v) {
    std::sort(g.adjacency_.begin() + static_cast<std::ptrdiff_t>(g.offsets_[v]),
              g.adjacency_.begin() +
                  static_cast<std::ptrdiff_t>(g.offsets_[v + 1]));
  }
  return g;
}

}  // namespace hp::graph
