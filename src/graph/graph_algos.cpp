#include "graph/graph_algos.hpp"

#include <algorithm>

#ifdef HP_HAVE_OPENMP
#include <omp.h>
#endif

namespace hp::graph {

std::vector<index_t> bfs_distances(const Graph& g, index_t source) {
  HP_REQUIRE(source < g.num_vertices(), "bfs_distances: source out of range");
  std::vector<index_t> dist(g.num_vertices(), kInvalidIndex);
  std::vector<index_t> frontier{source};
  dist[source] = 0;
  index_t level = 0;
  std::vector<index_t> next;
  while (!frontier.empty()) {
    ++level;
    next.clear();
    for (index_t u : frontier) {
      for (index_t v : g.neighbors(u)) {
        if (dist[v] == kInvalidIndex) {
          dist[v] = level;
          next.push_back(v);
        }
      }
    }
    frontier.swap(next);
  }
  return dist;
}

index_t Components::largest() const {
  HP_REQUIRE(count > 0, "Components::largest: no components");
  return static_cast<index_t>(
      std::max_element(sizes.begin(), sizes.end()) - sizes.begin());
}

Components connected_components(const Graph& g) {
  Components comp;
  comp.label.assign(g.num_vertices(), kInvalidIndex);
  std::vector<index_t> stack;
  for (index_t start = 0; start < g.num_vertices(); ++start) {
    if (comp.label[start] != kInvalidIndex) continue;
    const index_t id = comp.count++;
    comp.sizes.push_back(0);
    stack.push_back(start);
    comp.label[start] = id;
    while (!stack.empty()) {
      const index_t u = stack.back();
      stack.pop_back();
      ++comp.sizes[id];
      for (index_t v : g.neighbors(u)) {
        if (comp.label[v] == kInvalidIndex) {
          comp.label[v] = id;
          stack.push_back(v);
        }
      }
    }
  }
  return comp;
}

PathSummary path_summary(const Graph& g) {
  PathSummary summary;
  const index_t n = g.num_vertices();
  count_t total = 0;
  index_t diameter = 0;
  count_t pairs = 0;
#ifdef HP_HAVE_OPENMP
#pragma omp parallel for schedule(dynamic, 16) \
    reduction(+ : total, pairs) reduction(max : diameter)
#endif
  for (index_t s = 0; s < n; ++s) {
    const std::vector<index_t> dist = bfs_distances(g, s);
    for (index_t v = 0; v < n; ++v) {
      if (v == s || dist[v] == kInvalidIndex) continue;
      total += dist[v];
      ++pairs;
      diameter = std::max(diameter, dist[v]);
    }
  }
  summary.diameter = diameter;
  summary.pairs = pairs;
  summary.average_length =
      pairs > 0 ? static_cast<double>(total) / static_cast<double>(pairs)
                : 0.0;
  return summary;
}

}  // namespace hp::graph
