#include "graph/graph_algos.hpp"

#include <algorithm>

#include "par/thread_pool.hpp"

namespace hp::graph {

std::vector<index_t> bfs_distances(const Graph& g, index_t source) {
  HP_REQUIRE(source < g.num_vertices(), "bfs_distances: source out of range");
  std::vector<index_t> dist(g.num_vertices(), kInvalidIndex);
  std::vector<index_t> frontier{source};
  dist[source] = 0;
  index_t level = 0;
  std::vector<index_t> next;
  while (!frontier.empty()) {
    ++level;
    next.clear();
    for (index_t u : frontier) {
      for (index_t v : g.neighbors(u)) {
        if (dist[v] == kInvalidIndex) {
          dist[v] = level;
          next.push_back(v);
        }
      }
    }
    frontier.swap(next);
  }
  return dist;
}

index_t Components::largest() const {
  HP_REQUIRE(count > 0, "Components::largest: no components");
  return static_cast<index_t>(
      std::max_element(sizes.begin(), sizes.end()) - sizes.begin());
}

Components connected_components(const Graph& g) {
  Components comp;
  comp.label.assign(g.num_vertices(), kInvalidIndex);
  std::vector<index_t> stack;
  for (index_t start = 0; start < g.num_vertices(); ++start) {
    if (comp.label[start] != kInvalidIndex) continue;
    const index_t id = comp.count++;
    comp.sizes.push_back(0);
    stack.push_back(start);
    comp.label[start] = id;
    while (!stack.empty()) {
      const index_t u = stack.back();
      stack.pop_back();
      ++comp.sizes[id];
      for (index_t v : g.neighbors(u)) {
        if (comp.label[v] == kInvalidIndex) {
          comp.label[v] = id;
          stack.push_back(v);
        }
      }
    }
  }
  return comp;
}

PathSummary path_summary(const Graph& g) {
  PathSummary summary;
  const index_t n = g.num_vertices();

  // Per-lane epoch-stamped BFS scratch, reused across the sources a
  // lane processes; exact integer partials keep the result independent
  // of the chunk schedule (same convention as hyper::path_summary:
  // unreachable pairs are excluded, averages are within components).
  struct LanePartial {
    std::vector<index_t> epoch_of;
    std::vector<index_t> frontier;
    std::vector<index_t> next;
    index_t epoch = 0;
    count_t total = 0;
    count_t pairs = 0;
    index_t diameter = 0;
  };
  std::vector<LanePartial> lanes(
      static_cast<std::size_t>(par::ThreadPool::global().thread_count()));
  par::parallel_for(0, n, /*grain=*/8, [&](index_t begin, index_t end,
                                           int lane) {
    LanePartial& p = lanes[static_cast<std::size_t>(lane)];
    if (p.epoch_of.size() != n) p.epoch_of.assign(n, 0);
    for (index_t s = begin; s < end; ++s) {
      const index_t epoch = ++p.epoch;
      p.frontier.clear();
      p.frontier.push_back(s);
      p.epoch_of[s] = epoch;
      index_t level = 0;
      while (!p.frontier.empty()) {
        ++level;
        p.next.clear();
        for (index_t u : p.frontier) {
          for (index_t v : g.neighbors(u)) {
            if (p.epoch_of[v] == epoch) continue;
            p.epoch_of[v] = epoch;
            p.next.push_back(v);
            p.total += level;
            ++p.pairs;
            p.diameter = std::max(p.diameter, level);
          }
        }
        p.frontier.swap(p.next);
      }
    }
  });

  count_t total = 0;
  count_t pairs = 0;
  index_t diameter = 0;
  for (const LanePartial& p : lanes) {
    total += p.total;
    pairs += p.pairs;
    diameter = std::max(diameter, p.diameter);
  }
  summary.diameter = diameter;
  summary.pairs = pairs;
  summary.average_length =
      pairs > 0 ? static_cast<double>(total) / static_cast<double>(pairs)
                : 0.0;
  return summary;
}

}  // namespace hp::graph
