#include "graph/graph_kcore.hpp"

#include <algorithm>

#include "util/bucket_queue.hpp"

namespace hp::graph {

std::vector<index_t> CoreDecomposition::max_core_vertices() const {
  std::vector<index_t> out;
  for (index_t v = 0; v < core.size(); ++v) {
    if (core[v] == max_core && max_core > 0) out.push_back(v);
  }
  return out;
}

CoreDecomposition core_decomposition(const Graph& g) {
  CoreDecomposition result;
  const index_t n = g.num_vertices();
  result.core.assign(n, 0);
  if (n == 0) return result;

  std::vector<index_t> degree(n);
  for (index_t v = 0; v < n; ++v) degree[v] = g.degree(v);
  BucketQueue queue{degree, g.max_degree()};

  index_t current_k = 0;
  while (!queue.empty()) {
    index_t min_deg = 0;
    const index_t v = queue.pop_min(min_deg);
    current_k = std::max(current_k, min_deg);
    result.core[v] = current_k;
    for (index_t u : g.neighbors(v)) {
      // Standard Batagelj-Zaversnik rule: a neighbor's residual degree
      // drops by one, but never below the current peel level.
      if (queue.contains(u) && queue.priority(u) > min_deg) {
        queue.decrease_key(u, queue.priority(u) - 1);
      }
    }
  }
  result.max_core = current_k;
  return result;
}

std::vector<index_t> k_core_vertices(const CoreDecomposition& d, index_t k) {
  std::vector<index_t> out;
  for (index_t v = 0; v < d.core.size(); ++v) {
    if (d.core[v] >= k) out.push_back(v);
  }
  return out;
}

CoreDecomposition core_decomposition_naive(const Graph& g) {
  CoreDecomposition result;
  const index_t n = g.num_vertices();
  result.core.assign(n, 0);
  std::vector<bool> removed(n, false);
  std::vector<index_t> degree(n);
  for (index_t v = 0; v < n; ++v) degree[v] = g.degree(v);

  // For k = 1, 2, ...: repeatedly strip vertices of degree < k; survivors
  // have core number >= k.
  for (index_t k = 1;; ++k) {
    bool changed = true;
    while (changed) {
      changed = false;
      for (index_t v = 0; v < n; ++v) {
        if (removed[v] || degree[v] >= k) continue;
        removed[v] = true;
        changed = true;
        for (index_t u : g.neighbors(v)) {
          if (!removed[u]) --degree[u];
        }
      }
    }
    bool any_left = false;
    for (index_t v = 0; v < n; ++v) {
      if (!removed[v]) {
        result.core[v] = k;
        any_left = true;
      }
    }
    if (!any_left) break;
    result.max_core = k;
  }
  return result;
}

}  // namespace hp::graph
