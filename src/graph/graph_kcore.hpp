// Graph k-core decomposition (Batagelj-Zaversnik bucket peeling).
//
// The paper (section 3) describes the classic linear-time algorithm:
// repeatedly remove a vertex of minimum degree; the highest minimum
// degree observed is the maximum core. We additionally return per-vertex
// core numbers, which the paper's DIP-network comparison needs.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "util/common.hpp"

namespace hp::graph {

struct CoreDecomposition {
  /// core[v] = largest k such that v belongs to the k-core.
  std::vector<index_t> core;
  /// Maximum core value (0 for an empty / edgeless graph).
  index_t max_core = 0;
  /// Vertices in the maximum core.
  std::vector<index_t> max_core_vertices() const;
};

/// O(V + E) peeling via a bucket queue.
CoreDecomposition core_decomposition(const Graph& g);

/// Vertices of the k-core (possibly empty).
std::vector<index_t> k_core_vertices(const CoreDecomposition& d, index_t k);

/// Reference O(V^2 E)-ish implementation by repeated scans, for testing.
CoreDecomposition core_decomposition_naive(const Graph& g);

}  // namespace hp::graph
