#include "core/kcore.hpp"

#include <algorithm>

#include "core/overlap.hpp"

namespace hp::hyper {

std::vector<index_t> HyperCoreResult::core_vertices(index_t k) const {
  std::vector<index_t> out;
  for (index_t v = 0; v < vertex_core.size(); ++v) {
    if (vertex_core[v] >= k) out.push_back(v);
  }
  return out;
}

std::vector<index_t> HyperCoreResult::core_edges(index_t k) const {
  std::vector<index_t> out;
  for (index_t e = 0; e < edge_core.size(); ++e) {
    if (edge_core[e] >= k) out.push_back(e);
  }
  return out;
}

namespace {

/// Mutable peeling state shared across levels k = 1, 2, ...
class PeelState {
 public:
  explicit PeelState(const Hypergraph& h)
      : h_(h),
        overlaps_(h),
        vertex_alive_(h.num_vertices(), true),
        edge_alive_(h.num_edges(), true),
        vertex_degree_(h.num_vertices()),
        edge_size_(h.num_edges()),
        in_queue_(h.num_vertices(), false) {
    for (index_t v = 0; v < h.num_vertices(); ++v) {
      vertex_degree_[v] = h.vertex_degree(v);
    }
    for (index_t e = 0; e < h.num_edges(); ++e) {
      edge_size_[e] = h.edge_size(e);
    }
  }

  index_t alive_vertices() const { return alive_vertex_count_; }
  index_t alive_edges() const { return alive_edge_count_; }
  bool vertex_alive(index_t v) const { return vertex_alive_[v]; }
  bool edge_alive(index_t e) const { return edge_alive_[e]; }

  /// Remove every non-maximal edge currently present. This is the
  /// initial reduction required before the level-1 peel (the k-core must
  /// be a *reduced* sub-hypergraph). Cascades are not needed here --
  /// removing edges only lowers vertex degrees, which the subsequent
  /// peel handles.
  void initial_reduction() {
    for (index_t f = 0; f < h_.num_edges(); ++f) {
      if (!edge_alive_[f]) continue;
      if (find_container(f) != kInvalidIndex) delete_edge(f, 0);
    }
  }

  /// Peel at level k: repeatedly remove vertices of residual degree < k,
  /// cascading edge deletions, until every live vertex has degree >= k.
  /// Removed items are stamped with core number k - 1.
  void peel(index_t k, std::vector<index_t>& vertex_core,
            std::vector<index_t>& edge_core) {
    // Seed the work queue with all sub-threshold live vertices.
    for (index_t v = 0; v < h_.num_vertices(); ++v) {
      if (vertex_alive_[v] && vertex_degree_[v] < k) enqueue(v);
    }
    while (!queue_.empty()) {
      const index_t v = queue_.back();
      queue_.pop_back();
      in_queue_[v] = false;
      if (!vertex_alive_[v]) continue;
      delete_vertex(v, k, vertex_core, edge_core);
    }
  }

 private:
  void enqueue(index_t v) {
    if (!in_queue_[v]) {
      in_queue_[v] = true;
      queue_.push_back(v);
    }
  }

  /// Live edge g that contains f (f's residual members all inside g),
  /// or kInvalidIndex. For identical residual sets, f counts as contained
  /// (the later-checked duplicate is the one removed), so exactly one
  /// representative survives.
  index_t find_container(index_t f) const {
    const index_t size_f = edge_size_[f];
    if (size_f == 0) return f;  // empty edge: "contained" sentinel
    for (const auto& [g, ov] : overlaps_.row(f)) {
      if (!edge_alive_[g] || ov == 0) continue;
      if (ov == size_f) return g;  // f subset of (or equal to) g
    }
    return kInvalidIndex;
  }

  /// Remove vertex v: take it out of every live edge, maintaining edge
  /// sizes and pairwise overlaps, then delete edges that stopped being
  /// maximal. Finally mark v with its core number.
  void delete_vertex(index_t v, index_t k, std::vector<index_t>& vertex_core,
                     std::vector<index_t>& edge_core) {
    vertex_alive_[v] = false;
    --alive_vertex_count_;
    vertex_core[v] = k - 1;

    // Live edges containing v.
    touched_.clear();
    for (index_t e : h_.edges_of(v)) {
      if (edge_alive_[e]) touched_.push_back(e);
    }

    // Every pair of touched edges loses one unit of overlap (they shared
    // v); this is the O(d(v)^2) update from the paper's analysis.
    for (std::size_t i = 0; i < touched_.size(); ++i) {
      for (std::size_t j = i + 1; j < touched_.size(); ++j) {
        auto& row_i = overlaps_.mutable_row(touched_[i]);
        auto& row_j = overlaps_.mutable_row(touched_[j]);
        --row_i[touched_[j]];
        --row_j[touched_[i]];
      }
    }
    for (index_t e : touched_) --edge_size_[e];

    // Only edges whose cardinality just dropped can have become
    // non-maximal.
    for (index_t f : touched_) {
      if (!edge_alive_[f]) continue;  // deleted earlier in this loop
      if (find_container(f) != kInvalidIndex) {
        delete_edge(f, k, &edge_core);
      }
    }
  }

  /// Delete edge f; member vertices lose one degree and may fall under
  /// the threshold. `k == 0` marks the initial reduction (no cascade,
  /// core number 0).
  void delete_edge(index_t f, index_t k,
                   std::vector<index_t>* edge_core = nullptr) {
    edge_alive_[f] = false;
    --alive_edge_count_;
    if (edge_core != nullptr && k >= 1) (*edge_core)[f] = k - 1;
    for (index_t w : h_.vertices_of(f)) {
      if (!vertex_alive_[w]) continue;
      --vertex_degree_[w];
      if (k >= 1 && vertex_degree_[w] < k) enqueue(w);
    }
  }

  const Hypergraph& h_;
  OverlapTable overlaps_;
  std::vector<bool> vertex_alive_;
  std::vector<bool> edge_alive_;
  std::vector<index_t> vertex_degree_;  // live incident edges
  std::vector<index_t> edge_size_;      // live member vertices
  std::vector<bool> in_queue_;
  std::vector<index_t> queue_;
  std::vector<index_t> touched_;
  index_t alive_vertex_count_ = 0;
  index_t alive_edge_count_ = 0;

 public:
  void init_counts() {
    alive_vertex_count_ = h_.num_vertices();
    alive_edge_count_ = h_.num_edges();
  }
};

}  // namespace

HyperCoreResult core_decomposition(const Hypergraph& h) {
  HyperCoreResult result;
  result.vertex_core.assign(h.num_vertices(), 0);
  result.edge_core.assign(h.num_edges(), 0);

  PeelState state{h};
  state.init_counts();
  state.initial_reduction();

  // level 0 = reduced input.
  result.level_vertices.push_back(state.alive_vertices());
  result.level_edges.push_back(state.alive_edges());

  for (index_t k = 1;; ++k) {
    state.peel(k, result.vertex_core, result.edge_core);
    if (state.alive_vertices() == 0) {
      result.max_core = k - 1;
      break;
    }
    // Everything still alive is in the k-core.
    result.level_vertices.push_back(state.alive_vertices());
    result.level_edges.push_back(state.alive_edges());
    // Stamp survivors so that if the loop ends next level, their core
    // numbers are correct.
    for (index_t v = 0; v < h.num_vertices(); ++v) {
      if (state.vertex_alive(v)) result.vertex_core[v] = k;
    }
    for (index_t e = 0; e < h.num_edges(); ++e) {
      if (state.edge_alive(e)) result.edge_core[e] = k;
    }
  }
  return result;
}

SubHypergraph extract_core(const Hypergraph& h, const HyperCoreResult& d,
                           index_t k) {
  std::vector<bool> keep_vertex(h.num_vertices());
  std::vector<bool> keep_edge(h.num_edges());
  for (index_t v = 0; v < h.num_vertices(); ++v) {
    keep_vertex[v] = d.vertex_core[v] >= k;
  }
  for (index_t e = 0; e < h.num_edges(); ++e) {
    keep_edge[e] = d.edge_core[e] >= k;
  }
  return induce(h, keep_vertex, keep_edge);
}

bool satisfies_core_conditions(const Hypergraph& core, index_t k) {
  for (index_t v = 0; v < core.num_vertices(); ++v) {
    if (core.vertex_degree(v) < k) return false;
  }
  // Reducedness: no edge contained in another.
  for (index_t f = 0; f < core.num_edges(); ++f) {
    for (index_t g = 0; g < core.num_edges(); ++g) {
      if (f == g) continue;
      const auto fv = core.vertices_of(f);
      const auto gv = core.vertices_of(g);
      if (fv.size() > gv.size()) continue;
      if (std::includes(gv.begin(), gv.end(), fv.begin(), fv.end())) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace hp::hyper
