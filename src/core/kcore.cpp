#include "core/kcore.hpp"

#include <algorithm>
#include <optional>

#include "core/peel/frontier.hpp"
#include "core/peel/peel.hpp"
#include "obs/trace.hpp"

namespace hp::hyper {

std::vector<index_t> HyperCoreResult::core_vertices(index_t k) const {
  std::vector<index_t> out;
  for (index_t v = 0; v < vertex_core.size(); ++v) {
    if (vertex_core[v] >= k) out.push_back(v);
  }
  return out;
}

std::vector<index_t> HyperCoreResult::core_edges(index_t k) const {
  std::vector<index_t> out;
  for (index_t e = 0; e < edge_core.size(); ++e) {
    if (edge_core[e] >= k) out.push_back(e);
  }
  return out;
}

namespace {

/// Sequential overlap-maintaining peel policy (the paper's Fig. 4) on
/// top of the shared substrate: the substrate owns alive masks, residual
/// degrees/sizes and core stamping; this class owns only the work queue
/// and the threshold rule.
///
/// Two frontier disciplines share the cascade:
///   * kFrontier (default) -- level seeds come from lazy degree buckets
///     (FrontierBuckets): every degree drop during the peel pushes a
///     (vertex, new-degree) hint, and entering level k drains buckets
///     0..k-1, so seeding costs O(degree drops) over the whole run.
///   * kScan (legacy, kept as the differential-testing oracle) -- each
///     level rescans all |V| vertices for degree < k.
/// Both produce bit-identical results: after level k-1 every live
/// vertex has degree >= k-1, so a level-k seed has degree exactly k-1
/// and therefore an undrained entry in bucket k-1 (its last drop, or
/// its initial fill); draining, filtering stale entries and sorting
/// ascending reproduces the scan's seed order, and the in-level LIFO
/// cascade is byte-for-byte the same code.
class OverlapPeeler {
 public:
  OverlapPeeler(const Hypergraph& h, HyperCoreResult& result,
                PeelStats& stats, PeelEngine engine)
      : h_(h),
        residual_(h),
        overlaps_(h),
        stats_(stats),
        engine_(engine),
        in_queue_(h.num_vertices(), false) {
    residual_.bind_stats(&stats);
    residual_.bind_cores(&result.vertex_core, &result.edge_core);
  }

  const ResidualHypergraph& residual() const { return residual_; }

  /// Remove every non-maximal edge currently present. This is the
  /// initial reduction required before the level-1 peel (the k-core must
  /// be a *reduced* sub-hypergraph). Cascades are not needed here --
  /// removing edges only lowers vertex degrees, which the subsequent
  /// peel handles.
  void initial_reduction() {
    residual_.set_peel_level(0);
    for (index_t f = 0; f < h_.num_edges(); ++f) {
      if (!residual_.edge_alive(f)) continue;
      if (find_container(residual_, overlaps_, f, &stats_) != kInvalidIndex) {
        residual_.erase_edge(f);
      }
    }
  }

  /// Build the frontier bucket queue from post-reduction degrees (one
  /// initial-fill push per vertex; every later degree drop adds one
  /// more). Reduction only deletes edges, so all vertices are live.
  /// No-op for the scan engine.
  void prepare_frontier() {
    if (engine_ != PeelEngine::kFrontier) return;
    index_t max_degree = 0;
    for (index_t v = 0; v < h_.num_vertices(); ++v) {
      max_degree = std::max(max_degree, residual_.vertex_degree(v));
    }
    buckets_.emplace(max_degree, &stats_);
    for (index_t v = 0; v < h_.num_vertices(); ++v) {
      buckets_->push(v, residual_.vertex_degree(v));
    }
  }

  /// Peel at level k: repeatedly remove vertices of residual degree < k,
  /// cascading edge deletions, until every live vertex has degree >= k.
  /// Removed items are stamped with core number k - 1 by the substrate.
  void peel(index_t k) {
    residual_.set_peel_level(k);
    ++stats_.peel_rounds;
    if (engine_ == PeelEngine::kFrontier) {
      // Seeds = stale-filtered drain of buckets 0..k-1, sorted ascending
      // to reproduce the scan's seed order exactly (the LIFO cascade
      // then processes the highest-id seed first, as before).
      HP_TRACE_SPAN("peel.frontier", k);
      seeds_.clear();
      buckets_->drain_below(
          k,
          [&](index_t v) {
            if (!residual_.vertex_alive(v) || in_queue_[v]) return false;
            in_queue_[v] = true;
            return true;
          },
          seeds_);
      std::sort(seeds_.begin(), seeds_.end());
      for (index_t v : seeds_) {
        queue_.push_back(v);
        stats_.note_queue_length(queue_.size());
      }
    } else {
      // Legacy discipline: full vertex scan for sub-threshold seeds.
      for (index_t v = 0; v < h_.num_vertices(); ++v) {
        if (residual_.vertex_alive(v) && residual_.vertex_degree(v) < k) {
          enqueue(v);
        }
      }
    }
    while (!queue_.empty()) {
      const index_t v = queue_.back();
      queue_.pop_back();
      in_queue_[v] = false;
      if (!residual_.vertex_alive(v)) continue;
      delete_vertex(v, k);
    }
  }

 private:
  void enqueue(index_t v) {
    if (!in_queue_[v]) {
      in_queue_[v] = true;
      queue_.push_back(v);
      stats_.note_queue_length(queue_.size());
    }
  }

  /// Remove vertex v: take it out of every live edge, maintaining edge
  /// sizes and pairwise overlaps, then delete edges that stopped being
  /// maximal.
  void delete_vertex(index_t v, index_t k) {
    touched_.clear();
    residual_.erase_vertex(v, touched_);

    // Every pair of touched edges loses one unit of overlap (they shared
    // v); this is the O(d(v)^2) update from the paper's analysis.
    overlaps_.decrement_clique(touched_, &stats_);

    // Only edges whose cardinality just dropped can have become
    // non-maximal.
    for (index_t f : touched_) {
      if (!residual_.edge_alive(f)) continue;  // deleted earlier here
      if (find_container(residual_, overlaps_, f, &stats_) != kInvalidIndex) {
        residual_.erase_edge(f, [&](index_t w, index_t degree) {
          if (degree < k) {
            enqueue(w);
          } else if (engine_ == PeelEngine::kFrontier) {
            // Still above threshold: remember the drop as a lazy hint
            // for the level that will eventually reach this degree.
            buckets_->push(w, degree);
          }
        });
      }
    }
  }

  const Hypergraph& h_;
  ResidualHypergraph residual_;
  FlatOverlapTracker overlaps_;
  PeelStats& stats_;
  PeelEngine engine_;
  std::optional<FrontierBuckets> buckets_;
  std::vector<bool> in_queue_;
  std::vector<index_t> queue_;
  std::vector<index_t> seeds_;
  std::vector<index_t> touched_;
};

/// Shared driver for both sequential engines; only the seed discipline
/// differs inside OverlapPeeler.
HyperCoreResult core_decomposition_impl(const Hypergraph& h,
                                        PeelStats* stats,
                                        PeelEngine engine) {
  HP_TRACE_SPAN("kcore.decomposition");
  HyperCoreResult result;
  result.vertex_core.assign(h.num_vertices(), 0);
  result.edge_core.assign(h.num_edges(), 0);

  PeelStats local;
  OverlapPeeler peeler{h, result, local, engine};
  {
    HP_TRACE_SPAN("kcore.initial_reduction");
    peeler.initial_reduction();
  }
  peeler.prepare_frontier();

  // level 0 = reduced input.
  result.level_vertices.push_back(peeler.residual().live_vertices());
  result.level_edges.push_back(peeler.residual().live_edges());
  result.in_reduced.assign(h.num_edges(), 0);
  for (index_t e = 0; e < h.num_edges(); ++e) {
    result.in_reduced[e] = peeler.residual().edge_alive(e) ? 1 : 0;
  }

  // The substrate stamps core numbers at deletion time, so the loop only
  // has to record per-level population counts; no survivor sweeps. Each
  // level gets its own span (args.k = level) with the cumulative
  // substrate counters interleaved on the trace timeline, so a 6-core
  // run shows six peel spans and where the overlap work happened.
  for (index_t k = 1;; ++k) {
    {
      HP_TRACE_SPAN("kcore.peel_level", k);
      peeler.peel(k);
    }
    obs::trace_counter("peel.overlap_decrements",
                       static_cast<double>(local.overlap_decrements));
    obs::trace_counter("peel.containment_probes",
                       static_cast<double>(local.containment_probes));
    if (peeler.residual().live_vertices() == 0) {
      result.max_core = k - 1;
      break;
    }
    // Everything still alive is in the k-core.
    result.level_vertices.push_back(peeler.residual().live_vertices());
    result.level_edges.push_back(peeler.residual().live_edges());
  }
  publish_metrics(local);
  if (stats != nullptr) *stats += local;
  return result;
}

}  // namespace

HyperCoreResult core_decomposition(const Hypergraph& h, PeelStats* stats) {
  return core_decomposition_impl(h, stats, PeelEngine::kFrontier);
}

HyperCoreResult core_decomposition(const Hypergraph& h) {
  return core_decomposition(h, nullptr);
}

HyperCoreResult core_decomposition_scan(const Hypergraph& h,
                                        PeelStats* stats) {
  return core_decomposition_impl(h, stats, PeelEngine::kScan);
}

SubHypergraph extract_core(const Hypergraph& h, const HyperCoreResult& d,
                           index_t k) {
  std::vector<bool> keep_vertex(h.num_vertices());
  std::vector<bool> keep_edge(h.num_edges());
  for (index_t v = 0; v < h.num_vertices(); ++v) {
    keep_vertex[v] = d.vertex_core[v] >= k;
  }
  for (index_t e = 0; e < h.num_edges(); ++e) {
    keep_edge[e] = d.edge_core[e] >= k;
  }
  return induce(h, keep_vertex, keep_edge);
}

bool satisfies_core_conditions(const Hypergraph& core, index_t k) {
  for (index_t v = 0; v < core.num_vertices(); ++v) {
    if (core.vertex_degree(v) < k) return false;
  }
  // Reducedness: no edge contained in another.
  for (index_t f = 0; f < core.num_edges(); ++f) {
    for (index_t g = 0; g < core.num_edges(); ++g) {
      if (f == g) continue;
      const auto fv = core.vertices_of(f);
      const auto gv = core.vertices_of(g);
      if (fv.size() > gv.size()) continue;
      if (std::includes(gv.begin(), gv.end(), fv.begin(), fv.end())) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace hp::hyper
