#include "core/hypergraph.hpp"

#include <algorithm>

namespace hp::hyper {

bool Hypergraph::edge_contains(index_t e, index_t v) const {
  const auto members = vertices_of(e);
  return std::binary_search(members.begin(), members.end(), v);
}

index_t Hypergraph::max_vertex_degree() const {
  index_t best = 0;
  for (index_t v = 0; v < num_vertices(); ++v) {
    best = std::max(best, vertex_degree(v));
  }
  return best;
}

index_t Hypergraph::max_edge_size() const {
  index_t best = 0;
  for (index_t e = 0; e < num_edges(); ++e) {
    best = std::max(best, edge_size(e));
  }
  return best;
}

index_t HypergraphBuilder::add_edge(std::span<const index_t> members) {
  HP_REQUIRE(!members.empty(), "HypergraphBuilder: empty hyperedge");
  std::vector<index_t> sorted(members.begin(), members.end());
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  HP_REQUIRE(sorted.back() < num_vertices_,
             "HypergraphBuilder: member vertex out of range");
  edge_offsets_.push_back(members_.size());
  members_.insert(members_.end(), sorted.begin(), sorted.end());
  return static_cast<index_t>(edge_offsets_.size() - 1);
}

index_t HypergraphBuilder::add_edge(std::initializer_list<index_t> members) {
  return add_edge(std::span<const index_t>{members.begin(), members.size()});
}

void HypergraphBuilder::ensure_vertex(index_t v) {
  if (v >= num_vertices_) num_vertices_ = v + 1;
}

Hypergraph HypergraphBuilder::build() const {
  Hypergraph h;
  const index_t num_edges = static_cast<index_t>(edge_offsets_.size());

  h.eoff_.assign(num_edges + 1, 0);
  for (index_t e = 0; e < num_edges; ++e) {
    const std::size_t begin = edge_offsets_[e];
    const std::size_t end =
        e + 1 < num_edges ? edge_offsets_[e + 1] : members_.size();
    h.eoff_[e + 1] = h.eoff_[e] + (end - begin);
  }
  h.eadj_ = members_;

  h.voff_.assign(static_cast<std::size_t>(num_vertices_) + 1, 0);
  for (index_t v : members_) ++h.voff_[v + 1];
  for (std::size_t i = 1; i < h.voff_.size(); ++i) {
    h.voff_[i] += h.voff_[i - 1];
  }
  h.vadj_.resize(members_.size());
  std::vector<std::size_t> cursor(h.voff_.begin(), h.voff_.end() - 1);
  // Edges are appended in increasing id order, so each vertex's incidence
  // list comes out sorted by edge id automatically.
  for (index_t e = 0; e < num_edges; ++e) {
    for (std::size_t i = h.eoff_[e]; i < h.eoff_[e + 1]; ++i) {
      h.vadj_[cursor[h.eadj_[i]]++] = e;
    }
  }
  return h;
}

SubHypergraph induce(const Hypergraph& h, const std::vector<bool>& keep_vertex,
                     const std::vector<bool>& keep_edge) {
  HP_REQUIRE(keep_vertex.size() == h.num_vertices(),
             "induce: keep_vertex size mismatch");
  HP_REQUIRE(keep_edge.size() == h.num_edges(),
             "induce: keep_edge size mismatch");
  SubHypergraph sub;
  std::vector<index_t> vertex_map(h.num_vertices(), kInvalidIndex);
  for (index_t v = 0; v < h.num_vertices(); ++v) {
    if (keep_vertex[v]) {
      vertex_map[v] = static_cast<index_t>(sub.vertex_to_parent.size());
      sub.vertex_to_parent.push_back(v);
    }
  }
  HypergraphBuilder builder{
      static_cast<index_t>(sub.vertex_to_parent.size())};
  std::vector<index_t> scratch;
  for (index_t e = 0; e < h.num_edges(); ++e) {
    if (!keep_edge[e]) continue;
    scratch.clear();
    for (index_t v : h.vertices_of(e)) {
      if (vertex_map[v] != kInvalidIndex) scratch.push_back(vertex_map[v]);
    }
    if (scratch.empty()) continue;
    builder.add_edge(scratch);
    sub.edge_to_parent.push_back(e);
  }
  sub.hypergraph = builder.build();
  return sub;
}

void validate(const Hypergraph& h) {
  const index_t nv = h.num_vertices();
  const index_t ne = h.num_edges();
  count_t pins_from_edges = 0;
  for (index_t e = 0; e < ne; ++e) {
    const auto members = h.vertices_of(e);
    HP_REQUIRE(std::is_sorted(members.begin(), members.end()),
               "validate: edge member list not sorted");
    HP_REQUIRE(std::adjacent_find(members.begin(), members.end()) ==
                   members.end(),
               "validate: duplicate vertex in edge");
    for (index_t v : members) {
      HP_REQUIRE(v < nv, "validate: member vertex out of range");
    }
    pins_from_edges += members.size();
  }
  HP_REQUIRE(pins_from_edges == h.num_pins(),
             "validate: pin count mismatch");
  count_t pins_from_vertices = 0;
  for (index_t v = 0; v < nv; ++v) {
    const auto edges = h.edges_of(v);
    HP_REQUIRE(std::is_sorted(edges.begin(), edges.end()),
               "validate: vertex incidence list not sorted");
    for (index_t e : edges) {
      HP_REQUIRE(e < ne, "validate: incident edge out of range");
      HP_REQUIRE(h.edge_contains(e, v),
                 "validate: incidence asymmetry (vertex lists edge, edge "
                 "lacks vertex)");
    }
    pins_from_vertices += edges.size();
  }
  HP_REQUIRE(pins_from_vertices == h.num_pins(),
             "validate: vertex-side pin count mismatch");
}

}  // namespace hp::hyper
