#include "core/hypergraph.hpp"

#include <algorithm>

namespace hp::hyper {

void Hypergraph::bind_owned() {
  voff_ = voff_own_;
  vadj_ = vadj_own_;
  eoff_ = eoff_own_;
  eadj_ = eadj_own_;
}

void Hypergraph::swap(Hypergraph& other) noexcept {
  // Vector swap moves the buffers with their data pointers, so the
  // views (swapped alongside) stay bound to the right storage.
  voff_own_.swap(other.voff_own_);
  vadj_own_.swap(other.vadj_own_);
  eoff_own_.swap(other.eoff_own_);
  eadj_own_.swap(other.eadj_own_);
  keepalive_.swap(other.keepalive_);
  std::swap(voff_, other.voff_);
  std::swap(vadj_, other.vadj_);
  std::swap(eoff_, other.eoff_);
  std::swap(eadj_, other.eadj_);
}

Hypergraph::Hypergraph(const Hypergraph& other)
    : voff_own_(other.voff_own_),
      vadj_own_(other.vadj_own_),
      eoff_own_(other.eoff_own_),
      eadj_own_(other.eadj_own_),
      keepalive_(other.keepalive_) {
  if (keepalive_ != nullptr) {
    // Mapped: share the region (O(1) copy), views alias the same pages.
    voff_ = other.voff_;
    vadj_ = other.vadj_;
    eoff_ = other.eoff_;
    eadj_ = other.eadj_;
  } else {
    bind_owned();
  }
}

Hypergraph::Hypergraph(Hypergraph&& other) noexcept { swap(other); }

Hypergraph& Hypergraph::operator=(const Hypergraph& other) {
  Hypergraph tmp{other};
  swap(tmp);
  return *this;
}

Hypergraph& Hypergraph::operator=(Hypergraph&& other) noexcept {
  if (this != &other) {
    Hypergraph tmp{std::move(other)};
    swap(tmp);
  }
  return *this;
}

std::size_t Hypergraph::owned_bytes() const {
  return voff_own_.size() * sizeof(offset_t) +
         vadj_own_.size() * sizeof(index_t) +
         eoff_own_.size() * sizeof(offset_t) +
         eadj_own_.size() * sizeof(index_t);
}

std::size_t Hypergraph::mapped_bytes() const {
  if (keepalive_ == nullptr) return 0;
  return voff_.size_bytes() + vadj_.size_bytes() + eoff_.size_bytes() +
         eadj_.size_bytes();
}

bool Hypergraph::operator==(const Hypergraph& other) const {
  if (num_vertices() != other.num_vertices() ||
      num_edges() != other.num_edges() || num_pins() != other.num_pins()) {
    return false;
  }
  for (index_t e = 0; e < num_edges(); ++e) {
    if (edge_size(e) != other.edge_size(e)) return false;
  }
  // Identical edge partitions + identical concatenated members pin down
  // the vertex-side CSR too (it is derived).
  return std::equal(eadj_.begin(), eadj_.end(), other.eadj_.begin());
}

Hypergraph Hypergraph::adopt_owned(std::vector<offset_t> voff,
                                   std::vector<index_t> vadj,
                                   std::vector<offset_t> eoff,
                                   std::vector<index_t> eadj) {
  HP_REQUIRE(!voff.empty() && !eoff.empty(),
             "Hypergraph::adopt_owned: offset arrays need a leading 0");
  HP_REQUIRE(voff.front() == 0 && voff.back() == vadj.size() &&
                 eoff.front() == 0 && eoff.back() == eadj.size() &&
                 vadj.size() == eadj.size(),
             "Hypergraph::adopt_owned: offset/adjacency size mismatch");
  Hypergraph h;
  h.voff_own_ = std::move(voff);
  h.vadj_own_ = std::move(vadj);
  h.eoff_own_ = std::move(eoff);
  h.eadj_own_ = std::move(eadj);
  h.bind_owned();
  return h;
}

Hypergraph Hypergraph::adopt_external(std::shared_ptr<const void> keepalive,
                                      std::span<const offset_t> voff,
                                      std::span<const index_t> vadj,
                                      std::span<const offset_t> eoff,
                                      std::span<const index_t> eadj) {
  HP_REQUIRE(keepalive != nullptr,
             "Hypergraph::adopt_external: null keepalive");
  HP_REQUIRE(!voff.empty() && !eoff.empty(),
             "Hypergraph::adopt_external: offset arrays need a leading 0");
  HP_REQUIRE(voff.front() == 0 && voff.back() == vadj.size() &&
                 eoff.front() == 0 && eoff.back() == eadj.size() &&
                 vadj.size() == eadj.size(),
             "Hypergraph::adopt_external: offset/adjacency size mismatch");
  Hypergraph h;
  h.keepalive_ = std::move(keepalive);
  h.voff_ = voff;
  h.vadj_ = vadj;
  h.eoff_ = eoff;
  h.eadj_ = eadj;
  return h;
}

bool Hypergraph::edge_contains(index_t e, index_t v) const {
  const auto members = vertices_of(e);
  return std::binary_search(members.begin(), members.end(), v);
}

index_t Hypergraph::max_vertex_degree() const {
  index_t best = 0;
  for (index_t v = 0; v < num_vertices(); ++v) {
    best = std::max(best, vertex_degree(v));
  }
  return best;
}

index_t Hypergraph::max_edge_size() const {
  index_t best = 0;
  for (index_t e = 0; e < num_edges(); ++e) {
    best = std::max(best, edge_size(e));
  }
  return best;
}

index_t HypergraphBuilder::add_edge(std::span<const index_t> members) {
  HP_REQUIRE(!members.empty(), "HypergraphBuilder: empty hyperedge");
  std::vector<index_t> sorted(members.begin(), members.end());
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  HP_REQUIRE(sorted.back() < num_vertices_,
             "HypergraphBuilder: member vertex out of range");
  edge_offsets_.push_back(members_.size());
  members_.insert(members_.end(), sorted.begin(), sorted.end());
  return static_cast<index_t>(edge_offsets_.size() - 1);
}

index_t HypergraphBuilder::add_edge(std::initializer_list<index_t> members) {
  return add_edge(std::span<const index_t>{members.begin(), members.size()});
}

void HypergraphBuilder::ensure_vertex(index_t v) {
  if (v >= num_vertices_) num_vertices_ = v + 1;
}

Hypergraph HypergraphBuilder::build() const {
  using offset_t = Hypergraph::offset_t;
  const index_t num_edges = static_cast<index_t>(edge_offsets_.size());

  std::vector<offset_t> eoff(static_cast<std::size_t>(num_edges) + 1, 0);
  for (index_t e = 0; e < num_edges; ++e) {
    const std::size_t begin = edge_offsets_[e];
    const std::size_t end =
        e + 1 < num_edges ? edge_offsets_[e + 1] : members_.size();
    eoff[e + 1] = eoff[e] + (end - begin);
  }
  std::vector<index_t> eadj = members_;

  std::vector<offset_t> voff(static_cast<std::size_t>(num_vertices_) + 1, 0);
  for (index_t v : members_) ++voff[v + 1];
  for (std::size_t i = 1; i < voff.size(); ++i) {
    voff[i] += voff[i - 1];
  }
  std::vector<index_t> vadj(members_.size());
  std::vector<offset_t> cursor(voff.begin(), voff.end() - 1);
  // Edges are appended in increasing id order, so each vertex's incidence
  // list comes out sorted by edge id automatically.
  for (index_t e = 0; e < num_edges; ++e) {
    for (offset_t i = eoff[e]; i < eoff[e + 1]; ++i) {
      vadj[cursor[eadj[i]]++] = e;
    }
  }
  return Hypergraph::adopt_owned(std::move(voff), std::move(vadj),
                                 std::move(eoff), std::move(eadj));
}

SubHypergraph induce(const Hypergraph& h, const std::vector<bool>& keep_vertex,
                     const std::vector<bool>& keep_edge) {
  HP_REQUIRE(keep_vertex.size() == h.num_vertices(),
             "induce: keep_vertex size mismatch");
  HP_REQUIRE(keep_edge.size() == h.num_edges(),
             "induce: keep_edge size mismatch");
  SubHypergraph sub;
  std::vector<index_t> vertex_map(h.num_vertices(), kInvalidIndex);
  for (index_t v = 0; v < h.num_vertices(); ++v) {
    if (keep_vertex[v]) {
      vertex_map[v] = static_cast<index_t>(sub.vertex_to_parent.size());
      sub.vertex_to_parent.push_back(v);
    }
  }
  HypergraphBuilder builder{
      static_cast<index_t>(sub.vertex_to_parent.size())};
  std::vector<index_t> scratch;
  for (index_t e = 0; e < h.num_edges(); ++e) {
    if (!keep_edge[e]) continue;
    scratch.clear();
    for (index_t v : h.vertices_of(e)) {
      if (vertex_map[v] != kInvalidIndex) scratch.push_back(vertex_map[v]);
    }
    if (scratch.empty()) continue;
    builder.add_edge(scratch);
    sub.edge_to_parent.push_back(e);
  }
  sub.hypergraph = builder.build();
  return sub;
}

void validate(const Hypergraph& h) {
  const index_t nv = h.num_vertices();
  const index_t ne = h.num_edges();
  count_t pins_from_edges = 0;
  for (index_t e = 0; e < ne; ++e) {
    const auto members = h.vertices_of(e);
    HP_REQUIRE(std::is_sorted(members.begin(), members.end()),
               "validate: edge member list not sorted");
    HP_REQUIRE(std::adjacent_find(members.begin(), members.end()) ==
                   members.end(),
               "validate: duplicate vertex in edge");
    for (index_t v : members) {
      HP_REQUIRE(v < nv, "validate: member vertex out of range");
    }
    pins_from_edges += members.size();
  }
  HP_REQUIRE(pins_from_edges == h.num_pins(),
             "validate: pin count mismatch");
  count_t pins_from_vertices = 0;
  for (index_t v = 0; v < nv; ++v) {
    const auto edges = h.edges_of(v);
    HP_REQUIRE(std::is_sorted(edges.begin(), edges.end()),
               "validate: vertex incidence list not sorted");
    for (index_t e : edges) {
      HP_REQUIRE(e < ne, "validate: incident edge out of range");
      HP_REQUIRE(h.edge_contains(e, v),
                 "validate: incidence asymmetry (vertex lists edge, edge "
                 "lacks vertex)");
    }
    pins_from_vertices += edges.size();
  }
  HP_REQUIRE(pins_from_vertices == h.num_pins(),
             "validate: vertex-side pin count mismatch");
}

}  // namespace hp::hyper
