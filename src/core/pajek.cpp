#include "core/pajek.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace hp::hyper {

namespace {
/// Pajek label: quoted, with embedded quotes replaced (Pajek has no
/// escape mechanism).
std::string quote(const std::string& label) {
  std::string out = "\"";
  for (char c : label) out += (c == '"' ? '\'' : c);
  out += '"';
  return out;
}
}  // namespace

std::string to_pajek_bipartite(const Hypergraph& h,
                               const std::vector<std::string>& vertex_labels,
                               const std::vector<std::string>& edge_labels) {
  if (!vertex_labels.empty()) {
    HP_REQUIRE(vertex_labels.size() == h.num_vertices(),
               "to_pajek_bipartite: vertex label count mismatch");
  }
  if (!edge_labels.empty()) {
    HP_REQUIRE(edge_labels.size() == h.num_edges(),
               "to_pajek_bipartite: edge label count mismatch");
  }
  std::ostringstream out;
  const index_t total = h.num_vertices() + h.num_edges();
  // Two-mode header: total node count, then the size of the first mode.
  out << "*Vertices " << total << ' ' << h.num_vertices() << '\n';
  for (index_t v = 0; v < h.num_vertices(); ++v) {
    const std::string label =
        vertex_labels.empty() ? "v" + std::to_string(v) : vertex_labels[v];
    out << (v + 1) << ' ' << quote(label) << '\n';
  }
  for (index_t e = 0; e < h.num_edges(); ++e) {
    const std::string label =
        edge_labels.empty() ? "f" + std::to_string(e) : edge_labels[e];
    out << (h.num_vertices() + e + 1) << ' ' << quote(label) << '\n';
  }
  out << "*Edges\n";
  for (index_t e = 0; e < h.num_edges(); ++e) {
    for (index_t v : h.vertices_of(e)) {
      out << (v + 1) << ' ' << (h.num_vertices() + e + 1) << '\n';
    }
  }
  return out.str();
}

std::string to_pajek_partition(const std::vector<Fig3Class>& classes) {
  std::ostringstream out;
  out << "*Vertices " << classes.size() << '\n';
  for (Fig3Class c : classes) out << static_cast<int>(c) << '\n';
  return out.str();
}

std::vector<Fig3Class> fig3_classes(const Hypergraph& h,
                                    const std::vector<index_t>& vertex_core,
                                    const std::vector<index_t>& edge_core,
                                    index_t k) {
  HP_REQUIRE(vertex_core.size() == h.num_vertices(),
             "fig3_classes: vertex core size mismatch");
  HP_REQUIRE(edge_core.size() == h.num_edges(),
             "fig3_classes: edge core size mismatch");
  std::vector<Fig3Class> classes;
  classes.reserve(h.num_vertices() + h.num_edges());
  for (index_t v = 0; v < h.num_vertices(); ++v) {
    classes.push_back(vertex_core[v] >= k ? Fig3Class::kCoreProtein
                                          : Fig3Class::kProtein);
  }
  for (index_t e = 0; e < h.num_edges(); ++e) {
    classes.push_back(edge_core[e] >= k ? Fig3Class::kCoreComplex
                                        : Fig3Class::kComplex);
  }
  return classes;
}

std::string to_pajek_graph(const graph::Graph& g,
                           const std::vector<std::string>& labels) {
  if (!labels.empty()) {
    HP_REQUIRE(labels.size() == g.num_vertices(),
               "to_pajek_graph: label count mismatch");
  }
  std::ostringstream out;
  out << "*Vertices " << g.num_vertices() << '\n';
  for (index_t v = 0; v < g.num_vertices(); ++v) {
    const std::string label =
        labels.empty() ? "v" + std::to_string(v) : labels[v];
    out << (v + 1) << ' ' << quote(label) << '\n';
  }
  out << "*Edges\n";
  for (index_t u = 0; u < g.num_vertices(); ++u) {
    for (index_t v : g.neighbors(u)) {
      if (u < v) out << (u + 1) << ' ' << (v + 1) << '\n';
    }
  }
  return out.str();
}

void save_pajek(const std::string& content, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error{"save_pajek: cannot open " + path};
  out << content;
  if (!out) throw std::runtime_error{"save_pajek: write failed for " + path};
}

}  // namespace hp::hyper
