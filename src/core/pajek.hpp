// Pajek export -- the drawing pipeline of the paper's Figure 3.
//
// The paper renders the yeast protein-complex hypergraph as a bipartite
// ("two-mode") network in Pajek, with proteins/complexes colored by
// membership in the maximum core (red/green for core protein/complex,
// yellow/pink otherwise). This module writes:
//
//   * the two-mode .net file (vertices = proteins then complexes,
//     edges = memberships), and
//   * a .clu partition file assigning each node a class, which Pajek
//     uses to color the drawing.
//
// One-mode graphs (projections) can also be exported.
#pragma once

#include <string>
#include <vector>

#include "core/hypergraph.hpp"
#include "graph/graph.hpp"

namespace hp::hyper {

/// Node classes used for the Figure 3 coloring.
enum class Fig3Class : int {
  kProtein = 0,      ///< yellow in the paper
  kCoreProtein = 1,  ///< red
  kComplex = 2,      ///< pink
  kCoreComplex = 3,  ///< green
};

/// Two-mode Pajek network of the hypergraph. `vertex_labels` /
/// `edge_labels` are optional (empty = use generic v<i> / f<i> names);
/// when given they must match the vertex/edge counts.
std::string to_pajek_bipartite(
    const Hypergraph& h,
    const std::vector<std::string>& vertex_labels = {},
    const std::vector<std::string>& edge_labels = {});

/// Pajek .clu partition for the bipartite network: one class id per
/// node (proteins first, then complexes), from the Fig3Class of each.
std::string to_pajek_partition(const std::vector<Fig3Class>& classes);

/// Build the Figure 3 classes from a core decomposition level: protein
/// v is kCoreProtein iff vertex_core[v] >= k, complex e is kCoreComplex
/// iff edge_core[e] >= k.
std::vector<Fig3Class> fig3_classes(const Hypergraph& h,
                                    const std::vector<index_t>& vertex_core,
                                    const std::vector<index_t>& edge_core,
                                    index_t k);

/// One-mode Pajek network of a plain graph.
std::string to_pajek_graph(const graph::Graph& g,
                           const std::vector<std::string>& labels = {});

/// File helpers; throw std::runtime_error on I/O failure.
void save_pajek(const std::string& content, const std::string& path);

}  // namespace hp::hyper
