// Paths, distances, components, and diameter of a hypergraph.
//
// The paper defines a path as an alternating sequence of vertices and
// hyperedges v1, f1, v2, f2, ..., v_i with each hyperedge containing its
// flanking vertices; the length is the number of hyperedges. Distances
// are therefore half the distances in the bipartite graph B(H), which is
// exactly how we compute them: one BFS over the incidence structure,
// alternating vertex -> edges -> vertices expansions.
#pragma once

#include <vector>

#include "core/hypergraph.hpp"

namespace hp::hyper {

/// Hyperedge-count distances from `source` to every vertex;
/// kInvalidIndex marks unreachable vertices. distance[source] == 0.
std::vector<index_t> bfs_distances(const Hypergraph& h, index_t source);

/// Connected components of the bipartite incidence structure. An
/// isolated vertex forms its own component with zero hyperedges.
struct HyperComponents {
  std::vector<index_t> vertex_label;  ///< component id per vertex
  std::vector<index_t> edge_label;    ///< component id per hyperedge
  std::vector<index_t> vertex_counts; ///< vertices per component
  std::vector<index_t> edge_counts;   ///< hyperedges per component
  index_t count = 0;

  /// Component with the most vertices.
  index_t largest() const;
};

HyperComponents connected_components(const Hypergraph& h);

/// Exact all-pairs path statistics (paper: diameter 6, average path
/// length 2.568 for the yeast hypergraph). Average is over all ordered
/// connected vertex pairs. O(|V| * |E|); parallelized over sources.
struct HyperPathSummary {
  index_t diameter = 0;
  double average_length = 0.0;
  count_t connected_pairs = 0;
};

HyperPathSummary path_summary(const Hypergraph& h);

}  // namespace hp::hyper
