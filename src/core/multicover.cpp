#include "core/multicover.hpp"

#include <algorithm>
#include <limits>

#include "core/peel/residual.hpp"
#include "util/lazy_heap.hpp"

namespace hp::hyper {

MulticoverResult greedy_multicover(const Hypergraph& h,
                                   const std::vector<double>& weights,
                                   const std::vector<index_t>& requirements) {
  HP_REQUIRE(weights.size() == h.num_vertices(),
             "greedy_multicover: weight vector size mismatch");
  HP_REQUIRE(requirements.size() == h.num_edges(),
             "greedy_multicover: requirements size mismatch");

  MulticoverResult result;
  // Residual demand per edge, clamped to cardinality (>= 1 always, so
  // every edge starts alive on the substrate).
  std::vector<index_t> demand(h.num_edges());
  for (index_t e = 0; e < h.num_edges(); ++e) {
    HP_REQUIRE(requirements[e] >= 1,
               "greedy_multicover: requirement must be >= 1");
    demand[e] = std::min<index_t>(requirements[e], h.edge_size(e));
    if (demand[e] != requirements[e]) result.clamped_edges.push_back(e);
  }

  // Substrate mapping: an edge is alive while its demand is positive;
  // a vertex's usefulness (adjacent edges still demanding coverage) is
  // then exactly its residual degree. Chosen vertices stay alive -- a
  // cover vertex remains inside its edges -- so only the edge-deletion
  // half of the substrate is exercised.
  ResidualHypergraph residual{h};
  std::vector<bool> chosen(h.num_vertices(), false);

  LazyMinHeap heap;
  for (index_t v = 0; v < h.num_vertices(); ++v) {
    if (residual.vertex_degree(v) > 0) {
      heap.push(v, weights[v] / static_cast<double>(residual.vertex_degree(v)));
    }
  }

  const auto current_key = [&](index_t v) {
    const index_t useful = residual.vertex_degree(v);
    return useful > 0 ? weights[v] / static_cast<double>(useful)
                      : std::numeric_limits<double>::infinity();
  };
  const auto still_live = [&](index_t v) {
    return !chosen[v] && residual.vertex_degree(v) > 0;
  };

  while (residual.live_edges() > 0) {
    const index_t v = heap.pop_current(current_key, still_live);
    chosen[v] = true;
    result.vertices.push_back(v);
    result.total_weight += weights[v];
    for (index_t e : h.edges_of(v)) {
      if (!residual.edge_alive(e)) continue;
      --demand[e];
      if (demand[e] == 0) {
        // Edge satisfied: delete it from the residual so it stops
        // contributing to anyone's usefulness (degree maintenance is
        // the substrate's job; the lazy heap re-keys on pop).
        residual.erase_edge(e);
      } else {
        // Edge still demands more vertices, but v itself can no longer
        // contribute to it (a vertex hits an edge at most once); v is
        // chosen, so its usefulness is moot anyway.
      }
    }
  }

  result.average_degree = average_degree(h, result.vertices);
  return result;
}

MulticoverResult greedy_multicover(const Hypergraph& h,
                                   const std::vector<double>& weights,
                                   index_t r) {
  return greedy_multicover(h, weights,
                           std::vector<index_t>(h.num_edges(), r));
}

bool is_multicover(const Hypergraph& h, const std::vector<index_t>& cover,
                   const std::vector<index_t>& requirements) {
  HP_REQUIRE(requirements.size() == h.num_edges(),
             "is_multicover: requirements size mismatch");
  std::vector<bool> in_cover(h.num_vertices(), false);
  for (index_t v : cover) {
    HP_REQUIRE(v < h.num_vertices(), "is_multicover: vertex out of range");
    in_cover[v] = true;
  }
  for (index_t e = 0; e < h.num_edges(); ++e) {
    index_t hits = 0;
    for (index_t v : h.vertices_of(e)) {
      if (in_cover[v]) ++hits;
    }
    const index_t need = std::min<index_t>(requirements[e], h.edge_size(e));
    if (hits < need) return false;
  }
  return true;
}

}  // namespace hp::hyper
