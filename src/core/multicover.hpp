// Greedy minimum-weight vertex multicover (paper, section 4.1).
//
// Each hyperedge f carries a coverage requirement r_f >= 1 and must be
// hit by at least r_f distinct cover vertices. The greedy algorithm is
// the Fig. 5 procedure with one change: when a vertex enters the cover,
// only hyperedges whose requirement is now met are deleted; a partially
// satisfied hyperedge keeps contributing (its residual demand) to the
// costs of its remaining vertices. The approximation ratio stays H_m.
//
// The paper uses r_f = 2 to make the 70 %-reproducible TAP experiment
// identify every complex at least twice (559 proteins in their data;
// singleton complexes, which cannot be covered twice, are excluded).
#pragma once

#include <vector>

#include "core/cover.hpp"
#include "core/hypergraph.hpp"

namespace hp::hyper {

struct MulticoverResult {
  std::vector<index_t> vertices;  ///< selection order
  double total_weight = 0.0;
  double average_degree = 0.0;
  /// Hyperedges whose requirement exceeds their cardinality; these are
  /// infeasible and were clamped to their cardinality (the paper's
  /// "excluding three complexes that consist of a single protein").
  std::vector<index_t> clamped_edges;
};

/// Greedy weighted multicover. requirements[f] >= 1 per edge; entries
/// larger than edge_size(f) are clamped (and reported) because a vertex
/// can hit an edge at most once.
MulticoverResult greedy_multicover(const Hypergraph& h,
                                   const std::vector<double>& weights,
                                   const std::vector<index_t>& requirements);

/// Convenience: uniform requirement r for every hyperedge.
MulticoverResult greedy_multicover(const Hypergraph& h,
                                   const std::vector<double>& weights,
                                   index_t r);

/// True if every hyperedge f is hit by at least min(r_f, |f|) distinct
/// vertices of `cover`.
bool is_multicover(const Hypergraph& h, const std::vector<index_t>& cover,
                   const std::vector<index_t>& requirements);

}  // namespace hp::hyper
