#include "core/projection.hpp"

#include <algorithm>
#include <map>

#include "obs/trace.hpp"

namespace hp::hyper {

graph::Graph clique_expansion(const Hypergraph& h) {
  HP_TRACE_SPAN("projection.clique_expansion");
  graph::GraphBuilder builder{h.num_vertices()};
  for (index_t e = 0; e < h.num_edges(); ++e) {
    const auto members = h.vertices_of(e);
    for (std::size_t i = 0; i < members.size(); ++i) {
      for (std::size_t j = i + 1; j < members.size(); ++j) {
        builder.add_edge(members[i], members[j]);
      }
    }
  }
  return builder.build();
}

graph::Graph star_expansion(const Hypergraph& h,
                            const std::vector<index_t>& baits) {
  HP_TRACE_SPAN("projection.star_expansion");
  HP_REQUIRE(baits.size() == h.num_edges(),
             "star_expansion: need one bait per hyperedge");
  graph::GraphBuilder builder{h.num_vertices()};
  for (index_t e = 0; e < h.num_edges(); ++e) {
    const index_t bait = baits[e];
    HP_REQUIRE(h.edge_contains(e, bait),
               "star_expansion: bait is not a member of its hyperedge");
    for (index_t v : h.vertices_of(e)) {
      if (v != bait) builder.add_edge(bait, v);
    }
  }
  return builder.build();
}

std::vector<index_t> default_baits(const Hypergraph& h) {
  std::vector<index_t> baits(h.num_edges());
  for (index_t e = 0; e < h.num_edges(); ++e) {
    index_t best = h.vertices_of(e).front();
    for (index_t v : h.vertices_of(e)) {
      if (h.vertex_degree(v) > h.vertex_degree(best)) best = v;
    }
    baits[e] = best;
  }
  return baits;
}

graph::Graph intersection_graph(const Hypergraph& h,
                                std::vector<index_t>* weights_out) {
  HP_TRACE_SPAN("projection.intersection_graph");
  // Accumulate overlap counts per unordered complex pair via the vertex
  // incidence lists (same sweep as OverlapTable, but only the upper
  // triangle).
  std::map<std::pair<index_t, index_t>, index_t> overlap;
  for (index_t v = 0; v < h.num_vertices(); ++v) {
    const auto edges = h.edges_of(v);
    for (std::size_t i = 0; i < edges.size(); ++i) {
      for (std::size_t j = i + 1; j < edges.size(); ++j) {
        ++overlap[{edges[i], edges[j]}];
      }
    }
  }
  graph::GraphBuilder builder{h.num_edges()};
  for (const auto& [pair, w] : overlap) {
    builder.add_edge(pair.first, pair.second);
    (void)w;
  }
  if (weights_out != nullptr) {
    weights_out->clear();
    weights_out->reserve(overlap.size());
    // std::map iterates in (u, v)-sorted order, matching the contract.
    for (const auto& [pair, w] : overlap) weights_out->push_back(w);
  }
  return builder.build();
}

graph::Graph bipartite_graph(const Hypergraph& h) {
  HP_TRACE_SPAN("projection.bipartite_graph");
  graph::GraphBuilder builder{h.num_vertices() + h.num_edges()};
  for (index_t e = 0; e < h.num_edges(); ++e) {
    for (index_t v : h.vertices_of(e)) {
      builder.add_edge(v, h.num_vertices() + e);
    }
  }
  return builder.build();
}

RepresentationCosts representation_costs(const Hypergraph& h) {
  RepresentationCosts costs;
  costs.hypergraph_bytes = h.storage_bytes();
  costs.hypergraph_pins = h.num_pins();

  const graph::Graph clique = clique_expansion(h);
  costs.clique_bytes = clique.storage_bytes();
  costs.clique_edges = clique.num_edges();

  const graph::Graph star = star_expansion(h, default_baits(h));
  costs.star_bytes = star.storage_bytes();
  costs.star_edges = star.num_edges();

  const graph::Graph inter = intersection_graph(h);
  costs.intersection_bytes = inter.storage_bytes();
  costs.intersection_edges = inter.num_edges();
  return costs;
}

}  // namespace hp::hyper
