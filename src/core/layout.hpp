// Force-directed layout of the bipartite hypergraph drawing.
//
// The paper's Figure 3 is a Pajek drawing of B(H); Pajek computes its
// own coordinates interactively. To make the figure reproducible
// offline, this module computes a Fruchterman-Reingold layout of any
// graph (used on B(H)) so the SVG renderer (svg.hpp) can emit the
// finished drawing. Deterministic for a given seed.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace hp::hyper {

struct Point {
  double x = 0.0;
  double y = 0.0;
};

struct LayoutParams {
  int iterations = 120;
  double width = 1000.0;   ///< layout canvas width
  double height = 1000.0;  ///< layout canvas height
  /// Initial temperature as a fraction of the canvas width; cools
  /// linearly to zero over the iterations.
  double initial_temperature = 0.10;
  std::uint64_t seed = 42;
};

/// Fruchterman-Reingold layout. O(iterations * (V^2 + E)); fine for the
/// Cellzome-scale drawing (~1.6k nodes). Components are kept apart by
/// the repulsive forces alone. Positions fall inside
/// [0, width] x [0, height].
std::vector<Point> force_layout(const graph::Graph& g,
                                const LayoutParams& params = {});

/// Normalize arbitrary positions into [margin, width-margin] x
/// [margin, height-margin] (used before rendering).
void fit_to_canvas(std::vector<Point>& points, double width, double height,
                   double margin);

}  // namespace hp::hyper
