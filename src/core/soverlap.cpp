#include "core/soverlap.hpp"

#include <algorithm>

#include "core/overlap.hpp"
#include "graph/graph_algos.hpp"

namespace hp::hyper {

graph::Graph s_intersection_graph(const Hypergraph& h, index_t s) {
  return s_intersection_graph(OverlapTable{h}, s);
}

graph::Graph s_intersection_graph(const OverlapTable& table, index_t s) {
  HP_REQUIRE(s >= 1, "s_intersection_graph: s must be >= 1");
  graph::GraphBuilder builder{table.num_edges()};
  for (index_t f = 0; f < table.num_edges(); ++f) {
    for (const auto& [g, ov] : table.row(f)) {
      if (f < g && ov >= s) builder.add_edge(f, g);
    }
  }
  return builder.build();
}

index_t SComponents::largest() const {
  HP_REQUIRE(count > 0, "SComponents::largest: no components");
  return static_cast<index_t>(
      std::max_element(sizes.begin(), sizes.end()) - sizes.begin());
}

SComponents s_components(const Hypergraph& h, index_t s) {
  return s_components(OverlapTable{h}, s);
}

SComponents s_components(const OverlapTable& table, index_t s) {
  const graph::Graph g = s_intersection_graph(table, s);
  const graph::Components comp = graph::connected_components(g);
  SComponents out;
  out.label = comp.label;
  out.sizes = comp.sizes;
  out.count = comp.count;
  return out;
}

std::vector<index_t> s_distances(const Hypergraph& h, index_t source,
                                 index_t s) {
  HP_REQUIRE(source < h.num_edges(), "s_distances: source out of range");
  const graph::Graph g = s_intersection_graph(h, s);
  return graph::bfs_distances(g, source);
}

SPathSummary s_path_summary(const Hypergraph& h, index_t s) {
  const graph::Graph g = s_intersection_graph(h, s);
  const graph::PathSummary summary = graph::path_summary(g);
  SPathSummary out;
  out.diameter = summary.diameter;
  out.average_length = summary.average_length;
  out.connected_pairs = summary.pairs;
  return out;
}

index_t max_meaningful_s(const Hypergraph& h) {
  return max_meaningful_s(OverlapTable{h});
}

index_t max_meaningful_s(const OverlapTable& table) {
  index_t best = 0;
  for (index_t f = 0; f < table.num_edges(); ++f) {
    for (const auto& [g, ov] : table.row(f)) {
      (void)g;
      best = std::max(best, ov);
    }
  }
  return best;
}

}  // namespace hp::hyper
