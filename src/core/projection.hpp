// The two baseline graph models the paper argues against (section 1.2),
// plus the bipartite drawing graph of Fig. 3.
//
//  * Protein-protein interaction graph, clique variant: every pair of
//    proteins in a complex is joined -- O(n^2) edges per complex.
//  * Protein-protein interaction graph, star variant: the complex's bait
//    protein is joined to every other member.
//  * Complex intersection graph: complexes are vertices; two complexes
//    are adjacent when they share >= 1 protein (optionally weighted by
//    the overlap size). A protein in m complexes creates O(m^2) edges.
//  * Bipartite graph B(H): proteins 0..|V|-1, complexes |V|..|V|+|F|-1.
//
// Each projection reports its storage so bench_model_comparison can
// reproduce the paper's space argument quantitatively.
#pragma once

#include <vector>

#include "core/hypergraph.hpp"
#include "graph/graph.hpp"

namespace hp::hyper {

/// Clique expansion: all pairs within each hyperedge.
graph::Graph clique_expansion(const Hypergraph& h);

/// Star expansion: baits[e] is the designated bait protein of hyperedge
/// e and must be a member. Edges of size 1 contribute nothing.
graph::Graph star_expansion(const Hypergraph& h,
                            const std::vector<index_t>& baits);

/// Default bait choice: each hyperedge's highest-degree member (a proxy
/// for "the protein most likely to have been used as bait").
std::vector<index_t> default_baits(const Hypergraph& h);

/// Complex intersection graph over hyperedges. If `weights_out` is
/// non-null it receives, for each graph edge in (u, v)-sorted order, the
/// number of shared vertices.
graph::Graph intersection_graph(const Hypergraph& h,
                                std::vector<index_t>* weights_out = nullptr);

/// Bipartite incidence graph B(H).
graph::Graph bipartite_graph(const Hypergraph& h);

/// Storage comparison of the four representations for one hypergraph.
struct RepresentationCosts {
  std::size_t hypergraph_bytes = 0;
  std::size_t clique_bytes = 0;
  std::size_t star_bytes = 0;
  std::size_t intersection_bytes = 0;
  count_t hypergraph_pins = 0;
  count_t clique_edges = 0;
  count_t star_edges = 0;
  count_t intersection_edges = 0;
};

RepresentationCosts representation_costs(const Hypergraph& h);

}  // namespace hp::hyper
