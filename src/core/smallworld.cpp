#include "core/smallworld.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "obs/trace.hpp"

namespace hp::hyper {

Hypergraph configuration_model(const Hypergraph& h, Rng& rng,
                               int max_retries) {
  HP_TRACE_SPAN("smallworld.configuration_model");
  // One stub per pin on each side; shuffle the vertex stubs and deal them
  // to hyperedge slots.
  std::vector<index_t> vertex_stubs;
  vertex_stubs.reserve(static_cast<std::size_t>(h.num_pins()));
  for (index_t v = 0; v < h.num_vertices(); ++v) {
    for (index_t i = 0; i < h.vertex_degree(v); ++i) {
      vertex_stubs.push_back(v);
    }
  }
  rng.shuffle(vertex_stubs);

  HypergraphBuilder builder{h.num_vertices()};
  std::size_t cursor = 0;
  std::vector<index_t> members;
  std::unordered_set<index_t> seen;
  for (index_t e = 0; e < h.num_edges(); ++e) {
    const index_t size = h.edge_size(e);
    members.clear();
    seen.clear();
    for (index_t slot = 0; slot < size; ++slot) {
      index_t v = vertex_stubs[cursor++];
      // Resolve duplicate membership by swapping with a random later
      // stub; give up after max_retries and drop the stub.
      int retries = 0;
      while (seen.count(v) > 0 && retries < max_retries &&
             cursor < vertex_stubs.size()) {
        const std::size_t other =
            cursor + rng.pick(vertex_stubs.size() - cursor);
        std::swap(vertex_stubs[cursor - 1], vertex_stubs[other]);
        v = vertex_stubs[cursor - 1];
        ++retries;
      }
      if (seen.count(v) > 0) continue;  // drop the colliding stub
      seen.insert(v);
      members.push_back(v);
    }
    if (!members.empty()) builder.add_edge(members);
  }
  return builder.build();
}

SmallWorldReport small_world_report(const Hypergraph& h, Rng& rng) {
  return small_world_report(h, path_summary(h), rng);
}

SmallWorldReport small_world_report(const Hypergraph& h,
                                    const HyperPathSummary& observed,
                                    Rng& rng) {
  HP_TRACE_SPAN("smallworld.report");
  SmallWorldReport report;
  report.observed = observed;
  const Hypergraph null_h = configuration_model(h, rng);
  report.null_model = path_summary(null_h);
  report.log_num_vertices =
      h.num_vertices() > 0 ? std::log(static_cast<double>(h.num_vertices()))
                           : 0.0;
  report.path_ratio = report.null_model.average_length > 0.0
                          ? report.observed.average_length /
                                report.null_model.average_length
                          : 0.0;
  return report;
}

}  // namespace hp::hyper
