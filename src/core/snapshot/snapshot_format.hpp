// On-disk layout of the immutable hypergraph snapshot (DESIGN.md
// section 13).
//
//   [ Header: 128 bytes, little-endian, FNV-1a self-checksummed ]
//   [ ...zero padding to a 64-byte boundary between sections...  ]
//   [ voff: u64[(V+1)] ][ vadj ][ eoff: u64[(F+1)] ][ eadj ]
//
// The adjacency sections are raw u32 arrays (NopCodec) or delta+LEB128
// streams (VarintCodec, header flag bit 0). With the raw codec the file
// sections *are* the in-memory CSR arrays, so snapshot::open can hand
// out spans into the mapping with zero parse cost.
//
// Multi-byte fields are little-endian; the endian_tag word makes a
// big-endian writer detectable instead of silently misread. Readers
// reject unknown versions and unknown flag bits (no silent forward
// compatibility). Section offsets are 64-byte aligned so mapped u64
// arrays are naturally (and cache-line) aligned.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <type_traits>

namespace hp::hyper::snapshot {

inline constexpr char kMagic[8] = {'H', 'P', 'S', 'N', 'A', 'P', '0', '1'};

/// Written as 0x01020304 by a little-endian writer; reads back as
/// 0x04030201 on a big-endian machine.
inline constexpr std::uint32_t kEndianTag = 0x01020304u;

inline constexpr std::uint32_t kFormatVersion = 1;

/// Header flag bit 0: vadj/eadj are VarintCodec streams, decoded
/// section-at-a-time into owned storage on open.
inline constexpr std::uint32_t kFlagVarintAdjacency = 1u << 0;
inline constexpr std::uint32_t kKnownFlags = kFlagVarintAdjacency;

/// Every section starts on a 64-byte boundary (gap zero-padded).
inline constexpr std::uint64_t kSectionAlignment = 64;

struct Header {
  char magic[8];             // "HPSNAP01"
  std::uint32_t endian_tag;  // kEndianTag
  std::uint32_t version;     // kFormatVersion
  std::uint32_t flags;       // kFlag* bits; unknown bits are rejected
  std::uint32_t reserved;    // must be 0
  std::uint64_t num_vertices;
  std::uint64_t num_edges;
  std::uint64_t num_pins;
  std::uint64_t voff_offset;  // from start of file, kSectionAlignment'd
  std::uint64_t voff_bytes;
  std::uint64_t vadj_offset;
  std::uint64_t vadj_bytes;
  std::uint64_t eoff_offset;
  std::uint64_t eoff_bytes;
  std::uint64_t eadj_offset;
  std::uint64_t eadj_bytes;
  std::uint64_t sections_checksum;  // FNV-1a chained over the 4 sections
  std::uint64_t header_checksum;    // FNV-1a over bytes [0, 120)
};

static_assert(sizeof(Header) == 128, "snapshot header layout drifted");
static_assert(std::is_trivially_copyable_v<Header>);
static_assert(offsetof(Header, header_checksum) == 120);

inline constexpr std::uint64_t kFnvOffsetBasis = 14695981039346656037ull;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ull;

/// 64-bit FNV-1a; `seed` chains multiple ranges into one digest.
inline std::uint64_t fnv1a(const char* data, std::size_t size,
                           std::uint64_t seed = kFnvOffsetBasis) {
  std::uint64_t hash = seed;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= static_cast<unsigned char>(data[i]);
    hash *= kFnvPrime;
  }
  return hash;
}

/// Checksum of everything before the header_checksum field itself.
inline std::uint64_t header_checksum(const Header& header) {
  char bytes[sizeof(Header)];
  std::memcpy(bytes, &header, sizeof(Header));
  return fnv1a(bytes, offsetof(Header, header_checksum));
}

}  // namespace hp::hyper::snapshot
