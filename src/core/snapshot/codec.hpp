// Adjacency-section codecs for the snapshot format.
//
// A codec transforms the concatenated sorted adjacency lists of one CSR
// side (vadj or eadj) to and from a byte stream. The offset array frames
// the lists, so codecs can exploit within-list structure: VarintCodec
// stores each list as an absolute first id plus strictly positive
// deltas, LEB128-encoded -- small ids and dense lists shrink to a byte
// or two per pin. NopCodec is the raw little-endian u32 dump whose
// on-disk bytes are directly mappable.
//
// Decoders are fed untrusted bytes (the reader checks the section
// checksum first on the owned path, but `verify` and the corruption
// oracle reach them with arbitrary input): they must either throw
// ParseError or write exactly offsets.back() values, never read out of
// bounds.
#pragma once

#include <concepts>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "core/hypergraph.hpp"

namespace hp::hyper::snapshot {

using offset_t = Hypergraph::offset_t;

/// What the snapshot reader/writer require of an adjacency codec.
template <typename C>
concept SectionCodec =
    requires(std::span<const index_t> values, std::span<const offset_t> offsets,
             std::string& out, std::string_view encoded,
             std::span<index_t> decoded) {
      { C::kId } -> std::convertible_to<std::uint32_t>;
      { C::name() } -> std::convertible_to<const char*>;
      { C::encode(values, offsets, out) } -> std::same_as<void>;
      { C::decode(encoded, offsets, decoded) } -> std::same_as<void>;
    };

/// Identity codec: raw little-endian u32 values (the zero-copy layout).
struct NopCodec {
  static constexpr std::uint32_t kId = 0;
  static const char* name() { return "nop"; }
  static void encode(std::span<const index_t> values,
                     std::span<const offset_t> offsets, std::string& out);
  /// Throws ParseError unless encoded.size() == 4 * decoded.size().
  static void decode(std::string_view encoded,
                     std::span<const offset_t> offsets,
                     std::span<index_t> decoded);
};

/// Per-list delta + LEB128 varint codec. Lists are sorted and
/// duplicate-free, so every delta after the absolute first id is >= 1.
struct VarintCodec {
  static constexpr std::uint32_t kId = 1;
  static const char* name() { return "varint"; }
  static void encode(std::span<const index_t> values,
                     std::span<const offset_t> offsets, std::string& out);
  /// Throws ParseError on truncation, trailing bytes, or a varint that
  /// overflows 32 bits. Value-level validity (sortedness, range) is the
  /// caller's hyper::validate pass, as with every other loader.
  static void decode(std::string_view encoded,
                     std::span<const offset_t> offsets,
                     std::span<index_t> decoded);
};

static_assert(SectionCodec<NopCodec>);
static_assert(SectionCodec<VarintCodec>);

}  // namespace hp::hyper::snapshot
