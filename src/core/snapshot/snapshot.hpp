// Immutable on-disk hypergraph snapshots (DESIGN.md section 13).
//
// save/to_bytes serialize a Hypergraph into the mappable layout of
// snapshot_format.hpp; open() memory-maps a raw-codec snapshot and
// returns a Hypergraph whose CSR views point straight into the mapping
// -- load cost is O(header + offset tables), not O(file). Varint
// snapshots are decoded section-at-a-time into owned storage.
//
// Trust model, same as every loader: bounds (io::check_declared_sizes)
// and the offset tables are validated before any span is formed, so a
// hostile file cannot cause out-of-bounds reads; full content
// validation (sortedness, CSR symmetry) stays hyper::validate, which
// the CLI runs on every load path. from_bytes -- the corruption-oracle
// entry point -- additionally verifies the section checksum and runs
// validate itself: it either throws or returns a fully valid
// hypergraph.
#pragma once

#include <cstdint>
#include <string>

#include "core/hypergraph.hpp"
#include "core/snapshot/snapshot_format.hpp"

namespace hp::hyper::snapshot {

enum class Codec : std::uint32_t { kNone = 0, kVarint = 1 };

struct SaveOptions {
  Codec codec = Codec::kNone;
};

/// Serialize to the snapshot layout.
std::string to_bytes(const Hypergraph& h, const SaveOptions& options = {});

/// to_bytes + write to `path`; throws std::runtime_error on I/O failure.
void save(const Hypergraph& h, const std::string& path,
          const SaveOptions& options = {});

/// Open a snapshot file. Raw-codec snapshots are memory-mapped
/// (zero-copy: the returned Hypergraph keeps the mapping alive and
/// reports its bytes as mapped_bytes()); varint snapshots decode into
/// owned storage and release the mapping. Header, bounds, and offset
/// tables are fully validated; adjacency *content* is not scanned here
/// (run hyper::validate, as cli::load_dataset does). Throws ParseError
/// on malformed input, std::runtime_error on I/O failure.
Hypergraph open(const std::string& path);

/// Parse a snapshot from an in-memory buffer into owned storage, with
/// the section checksum verified and hyper::validate run: throws or
/// returns a valid hypergraph. This is the fuzz/corruption-oracle path.
Hypergraph from_bytes(const std::string& bytes);

/// Header summary without touching the sections.
struct Info {
  std::uint32_t version = 0;
  Codec codec = Codec::kNone;
  count_t num_vertices = 0;
  count_t num_edges = 0;
  count_t num_pins = 0;
  std::uint64_t file_bytes = 0;
  std::uint64_t section_bytes = 0;  ///< sum of the four section sizes
};

Info info(const std::string& path);

/// Full integrity check: header + section checksums + structural
/// validate. Throws (ParseError / InvalidInputError) on any defect.
void verify(const std::string& path);

}  // namespace hp::hyper::snapshot
