#include "core/snapshot/snapshot.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <memory>
#include <string_view>
#include <utility>
#include <vector>

#include "core/snapshot/codec.hpp"
#include "util/declared_sizes.hpp"
#include "util/mmap_file.hpp"

namespace hp::hyper::snapshot {

namespace {

void pad_to_alignment(std::string& out) {
  while (out.size() % kSectionAlignment != 0) out.push_back('\0');
}

/// Chained FNV-1a digest of the four sections, in header order.
std::uint64_t sections_checksum_of(const char* data, const Header& header) {
  std::uint64_t sum = kFnvOffsetBasis;
  sum = fnv1a(data + header.voff_offset, header.voff_bytes, sum);
  sum = fnv1a(data + header.vadj_offset, header.vadj_bytes, sum);
  sum = fnv1a(data + header.eoff_offset, header.eoff_bytes, sum);
  sum = fnv1a(data + header.eadj_offset, header.eadj_bytes, sum);
  return sum;
}

/// Everything that must hold before a single section byte is trusted:
/// magic/version/endianness, the header's own checksum, declared-count
/// bounds (io::check_declared_sizes -- the shared allocation-bomb
/// guard), and a section table whose ranges lie inside the input,
/// aligned, with the exact sizes the counts imply. Throws ParseError.
Header read_and_check_header(const char* data, std::size_t size) {
  if (size < sizeof(Header)) {
    throw ParseError{"snapshot: input smaller than header (" +
                     std::to_string(size) + " bytes)"};
  }
  Header header;
  std::memcpy(&header, data, sizeof(Header));
  if (std::memcmp(header.magic, kMagic, sizeof(kMagic)) != 0) {
    throw ParseError{"snapshot: bad magic"};
  }
  if (header.endian_tag != kEndianTag) {
    throw ParseError{
        "snapshot: endianness mismatch (file written on an incompatible "
        "machine)"};
  }
  if (header.version != kFormatVersion) {
    throw ParseError{"snapshot: unsupported version " +
                     std::to_string(header.version)};
  }
  if (header.header_checksum != header_checksum(header)) {
    throw ParseError{"snapshot: header checksum mismatch"};
  }
  if ((header.flags & ~kKnownFlags) != 0) {
    throw ParseError{"snapshot: unknown flag bits"};
  }
  if (header.reserved != 0) {
    throw ParseError{"snapshot: reserved header field not zero"};
  }
  io::check_declared_sizes(header.num_vertices, header.num_edges,
                           header.num_pins, size, "snapshot");

  const auto check_section = [&](std::uint64_t offset, std::uint64_t bytes,
                                 const char* what) {
    if (offset < sizeof(Header) || offset % kSectionAlignment != 0 ||
        offset > size || bytes > size - offset) {
      throw ParseError{std::string{"snapshot: "} + what +
                       " section out of bounds"};
    }
  };
  check_section(header.voff_offset, header.voff_bytes, "voff");
  check_section(header.vadj_offset, header.vadj_bytes, "vadj");
  check_section(header.eoff_offset, header.eoff_bytes, "eoff");
  check_section(header.eadj_offset, header.eadj_bytes, "eadj");

  // Counts bounded above, so these products cannot overflow.
  if (header.voff_bytes != (header.num_vertices + 1) * sizeof(offset_t) ||
      header.eoff_bytes != (header.num_edges + 1) * sizeof(offset_t)) {
    throw ParseError{"snapshot: offset section size disagrees with counts"};
  }
  if ((header.flags & kFlagVarintAdjacency) == 0 &&
      (header.vadj_bytes != header.num_pins * sizeof(index_t) ||
       header.eadj_bytes != header.num_pins * sizeof(index_t))) {
    throw ParseError{"snapshot: adjacency section size disagrees with counts"};
  }

  std::uint64_t end = 0;
  for (const auto& [offset, bytes] :
       {std::pair{header.voff_offset, header.voff_bytes},
        std::pair{header.vadj_offset, header.vadj_bytes},
        std::pair{header.eoff_offset, header.eoff_bytes},
        std::pair{header.eadj_offset, header.eadj_bytes}}) {
    end = std::max(end, offset + bytes);
  }
  if (end != size) {
    throw ParseError{"snapshot: trailing bytes after sections"};
  }
  return header;
}

/// An offset table must start at 0, end at the declared pin count, and
/// be monotone -- after this, every list the table frames lies inside
/// an adjacency array of num_pins elements, so span formation is safe.
void check_offset_table(std::span<const offset_t> offsets, std::uint64_t pins,
                        const char* what) {
  if (offsets.front() != 0 || offsets.back() != pins) {
    throw ParseError{std::string{"snapshot: "} + what +
                     " offsets disagree with pin count"};
  }
  for (std::size_t i = 1; i < offsets.size(); ++i) {
    if (offsets[i] < offsets[i - 1]) {
      throw ParseError{std::string{"snapshot: "} + what +
                       " offsets not monotone"};
    }
  }
}

}  // namespace

std::string to_bytes(const Hypergraph& h, const SaveOptions& options) {
  // A default-constructed hypergraph has empty offset views; on disk the
  // arrays always carry their leading 0.
  static constexpr offset_t kEmptyOffsets[1] = {0};
  std::span<const offset_t> voff = h.vertex_offsets();
  std::span<const offset_t> eoff = h.edge_offsets();
  if (voff.empty()) voff = kEmptyOffsets;
  if (eoff.empty()) eoff = kEmptyOffsets;

  Header header{};
  std::memcpy(header.magic, kMagic, sizeof(kMagic));
  header.endian_tag = kEndianTag;
  header.version = kFormatVersion;
  header.flags =
      options.codec == Codec::kVarint ? kFlagVarintAdjacency : 0u;
  header.num_vertices = h.num_vertices();
  header.num_edges = h.num_edges();
  header.num_pins = h.num_pins();

  std::string out(sizeof(Header), '\0');
  const auto append_offsets = [&](std::span<const offset_t> offsets,
                                  std::uint64_t& offset_field,
                                  std::uint64_t& bytes_field) {
    pad_to_alignment(out);
    offset_field = out.size();
    out.append(reinterpret_cast<const char*>(offsets.data()),
               offsets.size_bytes());
    bytes_field = out.size() - offset_field;
  };
  const auto append_adjacency = [&](std::span<const index_t> values,
                                    std::span<const offset_t> offsets,
                                    std::uint64_t& offset_field,
                                    std::uint64_t& bytes_field) {
    pad_to_alignment(out);
    offset_field = out.size();
    if (options.codec == Codec::kVarint) {
      VarintCodec::encode(values, offsets, out);
    } else {
      NopCodec::encode(values, offsets, out);
    }
    bytes_field = out.size() - offset_field;
  };

  append_offsets(voff, header.voff_offset, header.voff_bytes);
  append_adjacency(h.vertex_adjacency(), voff, header.vadj_offset,
                   header.vadj_bytes);
  append_offsets(eoff, header.eoff_offset, header.eoff_bytes);
  append_adjacency(h.edge_adjacency(), eoff, header.eadj_offset,
                   header.eadj_bytes);

  header.sections_checksum = sections_checksum_of(out.data(), header);
  header.header_checksum = header_checksum(header);
  std::memcpy(out.data(), &header, sizeof(Header));
  return out;
}

void save(const Hypergraph& h, const std::string& path,
          const SaveOptions& options) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error{"snapshot::save: cannot open " + path};
  const std::string bytes = to_bytes(h, options);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out) {
    throw std::runtime_error{"snapshot::save: write failed for " + path};
  }
}

Hypergraph open(const std::string& path) {
  auto file = std::make_shared<MappedFile>(path);
  const char* base = static_cast<const char*>(file->data());
  const Header header = read_and_check_header(base, file->size());

  const std::span<const offset_t> voff{
      reinterpret_cast<const offset_t*>(base + header.voff_offset),
      static_cast<std::size_t>(header.num_vertices) + 1};
  const std::span<const offset_t> eoff{
      reinterpret_cast<const offset_t*>(base + header.eoff_offset),
      static_cast<std::size_t>(header.num_edges) + 1};
  check_offset_table(voff, header.num_pins, "vertex");
  check_offset_table(eoff, header.num_pins, "edge");
  const auto pins = static_cast<std::size_t>(header.num_pins);

  if ((header.flags & kFlagVarintAdjacency) != 0) {
    // Compressed adjacency: decode section-at-a-time into owned storage
    // and let the mapping go when `file` leaves scope.
    std::vector<offset_t> voff_owned(voff.begin(), voff.end());
    std::vector<offset_t> eoff_owned(eoff.begin(), eoff.end());
    std::vector<index_t> vadj(pins);
    std::vector<index_t> eadj(pins);
    VarintCodec::decode({base + header.vadj_offset, header.vadj_bytes},
                        voff_owned, vadj);
    VarintCodec::decode({base + header.eadj_offset, header.eadj_bytes},
                        eoff_owned, eadj);
    return Hypergraph::adopt_owned(std::move(voff_owned), std::move(vadj),
                                   std::move(eoff_owned), std::move(eadj));
  }

  const std::span<const index_t> vadj{
      reinterpret_cast<const index_t*>(base + header.vadj_offset), pins};
  const std::span<const index_t> eadj{
      reinterpret_cast<const index_t*>(base + header.eadj_offset), pins};
  return Hypergraph::adopt_external(std::move(file), voff, vadj, eoff, eadj);
}

Hypergraph from_bytes(const std::string& bytes) {
  const Header header = read_and_check_header(bytes.data(), bytes.size());
  if (sections_checksum_of(bytes.data(), header) !=
      header.sections_checksum) {
    throw ParseError{"snapshot: section checksum mismatch"};
  }

  // The string buffer carries no alignment guarantee; memcpy the offset
  // tables out before reading them.
  std::vector<offset_t> voff(static_cast<std::size_t>(header.num_vertices) +
                             1);
  std::vector<offset_t> eoff(static_cast<std::size_t>(header.num_edges) + 1);
  std::memcpy(voff.data(), bytes.data() + header.voff_offset,
              header.voff_bytes);
  std::memcpy(eoff.data(), bytes.data() + header.eoff_offset,
              header.eoff_bytes);
  check_offset_table(voff, header.num_pins, "vertex");
  check_offset_table(eoff, header.num_pins, "edge");

  const auto pins = static_cast<std::size_t>(header.num_pins);
  std::vector<index_t> vadj(pins);
  std::vector<index_t> eadj(pins);
  const std::string_view vadj_section{bytes.data() + header.vadj_offset,
                                      header.vadj_bytes};
  const std::string_view eadj_section{bytes.data() + header.eadj_offset,
                                      header.eadj_bytes};
  if ((header.flags & kFlagVarintAdjacency) != 0) {
    VarintCodec::decode(vadj_section, voff, vadj);
    VarintCodec::decode(eadj_section, eoff, eadj);
  } else {
    NopCodec::decode(vadj_section, voff, vadj);
    NopCodec::decode(eadj_section, eoff, eadj);
  }

  Hypergraph h = Hypergraph::adopt_owned(std::move(voff), std::move(vadj),
                                         std::move(eoff), std::move(eadj));
  // Parse-or-throw contract: never hand back an invalid structure.
  validate(h);
  return h;
}

Info info(const std::string& path) {
  const MappedFile file{path};
  const Header header = read_and_check_header(
      static_cast<const char*>(file.data()), file.size());
  Info out;
  out.version = header.version;
  out.codec = (header.flags & kFlagVarintAdjacency) != 0 ? Codec::kVarint
                                                         : Codec::kNone;
  out.num_vertices = header.num_vertices;
  out.num_edges = header.num_edges;
  out.num_pins = header.num_pins;
  out.file_bytes = file.size();
  out.section_bytes = header.voff_bytes + header.vadj_bytes +
                      header.eoff_bytes + header.eadj_bytes;
  return out;
}

void verify(const std::string& path) {
  {
    const MappedFile file{path};
    const char* base = static_cast<const char*>(file.data());
    const Header header = read_and_check_header(base, file.size());
    if (sections_checksum_of(base, header) != header.sections_checksum) {
      throw ParseError{"snapshot: section checksum mismatch"};
    }
  }
  validate(open(path));
}

}  // namespace hp::hyper::snapshot
