#include "core/snapshot/codec.hpp"

#include <cstring>

namespace hp::hyper::snapshot {

namespace {

void put_varint(std::string& out, std::uint32_t value) {
  while (value >= 0x80u) {
    out.push_back(static_cast<char>((value & 0x7fu) | 0x80u));
    value >>= 7;
  }
  out.push_back(static_cast<char>(value));
}

std::uint32_t get_varint(std::string_view bytes, std::size_t& cursor) {
  std::uint64_t value = 0;
  for (int shift = 0; shift < 35; shift += 7) {
    if (cursor >= bytes.size()) {
      throw ParseError{"snapshot varint: truncated stream"};
    }
    const auto byte = static_cast<unsigned char>(bytes[cursor++]);
    value |= static_cast<std::uint64_t>(byte & 0x7fu) << shift;
    if ((byte & 0x80u) == 0) {
      if (value > 0xffffffffull) {
        throw ParseError{"snapshot varint: value overflows 32 bits"};
      }
      return static_cast<std::uint32_t>(value);
    }
  }
  throw ParseError{"snapshot varint: value overflows 32 bits"};
}

}  // namespace

void NopCodec::encode(std::span<const index_t> values,
                      std::span<const offset_t> /*offsets*/,
                      std::string& out) {
  out.append(reinterpret_cast<const char*>(values.data()),
             values.size_bytes());
}

void NopCodec::decode(std::string_view encoded,
                      std::span<const offset_t> /*offsets*/,
                      std::span<index_t> decoded) {
  if (encoded.size() != decoded.size_bytes()) {
    throw ParseError{"snapshot: raw adjacency section size mismatch"};
  }
  if (!decoded.empty()) {
    std::memcpy(decoded.data(), encoded.data(), encoded.size());
  }
}

void VarintCodec::encode(std::span<const index_t> values,
                         std::span<const offset_t> offsets,
                         std::string& out) {
  for (std::size_t list = 0; list + 1 < offsets.size(); ++list) {
    index_t previous = 0;
    for (offset_t i = offsets[list]; i < offsets[list + 1]; ++i) {
      // First id absolute, then the (>= 1) gaps of the sorted list.
      put_varint(out, i == offsets[list] ? values[i] : values[i] - previous);
      previous = values[i];
    }
  }
}

void VarintCodec::decode(std::string_view encoded,
                         std::span<const offset_t> offsets,
                         std::span<index_t> decoded) {
  std::size_t cursor = 0;
  for (std::size_t list = 0; list + 1 < offsets.size(); ++list) {
    index_t previous = 0;
    for (offset_t i = offsets[list]; i < offsets[list + 1]; ++i) {
      const std::uint32_t delta = get_varint(encoded, cursor);
      // Wrap-around from a corrupt delta yields an unsorted or
      // out-of-range list; hyper::validate rejects it downstream.
      previous = i == offsets[list] ? delta : previous + delta;
      decoded[i] = previous;
    }
  }
  if (cursor != encoded.size()) {
    throw ParseError{"snapshot varint: trailing bytes in adjacency section"};
  }
}

}  // namespace hp::hyper::snapshot
