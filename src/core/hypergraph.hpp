// The hypergraph model of the paper: vertices are proteins, hyperedges
// are protein complexes.
//
// Storage is a dual CSR ("incidence" form): one CSR maps each vertex to
// the sorted list of hyperedges containing it, the other maps each
// hyperedge to its sorted member vertices. Total space is
// O(|V| + |F| + |E|) where |E| = sum of vertex degrees = sum of hyperedge
// sizes -- the storage measure the paper contrasts with the O(n^2) clique
// expansion.
//
// A Hypergraph is immutable after construction; peeling algorithms keep
// their own mutable degree/alive arrays. Use HypergraphBuilder to
// assemble one.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "util/common.hpp"

namespace hp::hyper {

class HypergraphBuilder;

class Hypergraph {
 public:
  Hypergraph() = default;

  /// Number of vertices (proteins), including isolated ones.
  index_t num_vertices() const {
    return static_cast<index_t>(voff_.empty() ? 0 : voff_.size() - 1);
  }

  /// Number of hyperedges (complexes).
  index_t num_edges() const {
    return static_cast<index_t>(eoff_.empty() ? 0 : eoff_.size() - 1);
  }

  /// |E|: the number of (vertex, hyperedge) incidences ("pins"); equals
  /// the sum of vertex degrees and the sum of hyperedge sizes.
  count_t num_pins() const { return vadj_.size(); }

  /// Degree of a vertex: number of hyperedges it belongs to.
  index_t vertex_degree(index_t v) const {
    return static_cast<index_t>(voff_[v + 1] - voff_[v]);
  }

  /// Degree (cardinality) of a hyperedge: number of member vertices.
  index_t edge_size(index_t e) const {
    return static_cast<index_t>(eoff_[e + 1] - eoff_[e]);
  }

  /// Sorted hyperedges containing vertex v.
  std::span<const index_t> edges_of(index_t v) const {
    return {vadj_.data() + voff_[v], vadj_.data() + voff_[v + 1]};
  }

  /// Sorted member vertices of hyperedge e.
  std::span<const index_t> vertices_of(index_t e) const {
    return {eadj_.data() + eoff_[e], eadj_.data() + eoff_[e + 1]};
  }

  /// Binary search in the sorted member list.
  bool edge_contains(index_t e, index_t v) const;

  /// Delta_V: maximum vertex degree (paper: 21 for Cellzome).
  index_t max_vertex_degree() const;

  /// Delta_F: maximum hyperedge cardinality.
  index_t max_edge_size() const;

  /// Bytes consumed by the CSR arrays.
  std::size_t storage_bytes() const {
    return voff_.size() * sizeof(voff_[0]) + vadj_.size() * sizeof(vadj_[0]) +
           eoff_.size() * sizeof(eoff_[0]) + eadj_.size() * sizeof(eadj_[0]);
  }

  /// Structural equality (same vertex count and identical edge lists).
  bool operator==(const Hypergraph& other) const = default;

 private:
  friend class HypergraphBuilder;
  std::vector<std::size_t> voff_;
  std::vector<index_t> vadj_;
  std::vector<std::size_t> eoff_;
  std::vector<index_t> eadj_;
};

/// Accumulates hyperedges and produces an immutable Hypergraph.
class HypergraphBuilder {
 public:
  explicit HypergraphBuilder(index_t num_vertices)
      : num_vertices_(num_vertices) {}

  /// Add a hyperedge with the given members. Duplicate members within an
  /// edge are merged; an empty member list is rejected (an empty complex
  /// carries no information). Returns the new edge's id.
  index_t add_edge(std::span<const index_t> members);
  index_t add_edge(std::initializer_list<index_t> members);

  /// Grow the vertex set (ids are dense, so adding vertex n-1 implies
  /// vertices 0..n-2 exist).
  void ensure_vertex(index_t v);

  index_t num_vertices() const { return num_vertices_; }
  index_t num_edges() const {
    return static_cast<index_t>(edge_offsets_.size());
  }

  Hypergraph build() const;

 private:
  index_t num_vertices_ = 0;
  std::vector<std::size_t> edge_offsets_;  // start of each edge in members_
  std::vector<index_t> members_;           // concatenated sorted member lists
};

/// A sub-hypergraph induced by keeping a subset of vertices and edges,
/// with id remappings back to the parent. Edges are restricted to the
/// kept vertices; edges that become empty are dropped.
struct SubHypergraph {
  Hypergraph hypergraph;
  std::vector<index_t> vertex_to_parent;  ///< new vertex id -> old id
  std::vector<index_t> edge_to_parent;    ///< new edge id -> old id
};

/// Induce the sub-hypergraph on `keep_vertex` / `keep_edge` masks
/// (each sized like the parent's vertex/edge counts).
SubHypergraph induce(const Hypergraph& h, const std::vector<bool>& keep_vertex,
                     const std::vector<bool>& keep_edge);

/// Validate internal consistency (CSR symmetry, sortedness); intended for
/// tests and after deserialization. Throws InvalidInputError on failure.
void validate(const Hypergraph& h);

}  // namespace hp::hyper
