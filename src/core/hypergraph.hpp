// The hypergraph model of the paper: vertices are proteins, hyperedges
// are protein complexes.
//
// Storage is a dual CSR ("incidence" form): one CSR maps each vertex to
// the sorted list of hyperedges containing it, the other maps each
// hyperedge to its sorted member vertices. Total space is
// O(|V| + |F| + |E|) where |E| = sum of vertex degrees = sum of hyperedge
// sizes -- the storage measure the paper contrasts with the O(n^2) clique
// expansion.
//
// All reads go through std::span views. The views are backed either by
// owned heap vectors (HypergraphBuilder output -- the historical
// behavior) or by an external read-only region kept alive by a
// shared_ptr (a memory-mapped snapshot; see core/snapshot/). Either
// way a Hypergraph is immutable after construction; peeling algorithms
// keep their own mutable degree/alive arrays.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "util/common.hpp"

namespace hp::hyper {

class Hypergraph {
 public:
  /// Element type of the CSR offset arrays. Fixed-width (not
  /// std::size_t) so the on-disk snapshot sections are the in-memory
  /// arrays, byte for byte, on every platform.
  using offset_t = std::uint64_t;

  Hypergraph() = default;
  Hypergraph(const Hypergraph& other);
  Hypergraph(Hypergraph&& other) noexcept;
  Hypergraph& operator=(const Hypergraph& other);
  Hypergraph& operator=(Hypergraph&& other) noexcept;
  ~Hypergraph() = default;

  void swap(Hypergraph& other) noexcept;

  /// Number of vertices (proteins), including isolated ones.
  index_t num_vertices() const {
    return static_cast<index_t>(voff_.empty() ? 0 : voff_.size() - 1);
  }

  /// Number of hyperedges (complexes).
  index_t num_edges() const {
    return static_cast<index_t>(eoff_.empty() ? 0 : eoff_.size() - 1);
  }

  /// |E|: the number of (vertex, hyperedge) incidences ("pins"); equals
  /// the sum of vertex degrees and the sum of hyperedge sizes.
  count_t num_pins() const { return vadj_.size(); }

  /// Degree of a vertex: number of hyperedges it belongs to.
  index_t vertex_degree(index_t v) const {
    return static_cast<index_t>(voff_[v + 1] - voff_[v]);
  }

  /// Degree (cardinality) of a hyperedge: number of member vertices.
  index_t edge_size(index_t e) const {
    return static_cast<index_t>(eoff_[e + 1] - eoff_[e]);
  }

  /// Sorted hyperedges containing vertex v.
  std::span<const index_t> edges_of(index_t v) const {
    return vadj_.subspan(voff_[v], voff_[v + 1] - voff_[v]);
  }

  /// Sorted member vertices of hyperedge e.
  std::span<const index_t> vertices_of(index_t e) const {
    return eadj_.subspan(eoff_[e], eoff_[e + 1] - eoff_[e]);
  }

  /// Raw CSR views (serializers and the snapshot writer read these; the
  /// offset arrays have a leading 0, or are empty on a
  /// default-constructed instance).
  std::span<const offset_t> vertex_offsets() const { return voff_; }
  std::span<const index_t> vertex_adjacency() const { return vadj_; }
  std::span<const offset_t> edge_offsets() const { return eoff_; }
  std::span<const index_t> edge_adjacency() const { return eadj_; }

  /// Binary search in the sorted member list.
  bool edge_contains(index_t e, index_t v) const;

  /// Delta_V: maximum vertex degree (paper: 21 for Cellzome).
  index_t max_vertex_degree() const;

  /// Delta_F: maximum hyperedge cardinality.
  index_t max_edge_size() const;

  /// True when the CSR arrays live in an external region (a mapped
  /// snapshot) instead of owned heap vectors.
  bool is_mapped() const { return keepalive_ != nullptr; }

  /// Heap bytes owned by this instance's CSR vectors.
  std::size_t owned_bytes() const;

  /// Bytes viewed in an external mapped region (0 for owned storage).
  /// These are OS page-cache pages shared across processes, not process
  /// heap -- --context-stats reports them separately.
  std::size_t mapped_bytes() const;

  /// Bytes consumed by the CSR arrays, regardless of who owns them.
  std::size_t storage_bytes() const { return owned_bytes() + mapped_bytes(); }

  /// Structural equality: same vertex count and identical edge lists.
  /// Compares content, not storage -- an owned hypergraph equals its
  /// mapped snapshot.
  bool operator==(const Hypergraph& other) const;

  /// Adopt pre-built CSR arrays as owned storage. Low-level: the caller
  /// guarantees the arrays form a consistent dual CSR (sorted,
  /// duplicate-free lists with matching vertex/edge sides) -- only the
  /// O(1) size equations are checked here. Used by HypergraphBuilder
  /// and the snapshot readers; run hyper::validate() on anything that
  /// came from an untrusted source.
  static Hypergraph adopt_owned(std::vector<offset_t> voff,
                                std::vector<index_t> vadj,
                                std::vector<offset_t> eoff,
                                std::vector<index_t> eadj);

  /// Adopt CSR views into an external read-only region (a mapped
  /// snapshot file). `keepalive` owns the region and is held for the
  /// lifetime of this instance and all copies. Same caller contract as
  /// adopt_owned.
  static Hypergraph adopt_external(std::shared_ptr<const void> keepalive,
                                   std::span<const offset_t> voff,
                                   std::span<const index_t> vadj,
                                   std::span<const offset_t> eoff,
                                   std::span<const index_t> eadj);

 private:
  /// Point the views at the owned vectors.
  void bind_owned();

  // Owned storage (empty when mapped).
  std::vector<offset_t> voff_own_;
  std::vector<index_t> vadj_own_;
  std::vector<offset_t> eoff_own_;
  std::vector<index_t> eadj_own_;
  // Keeps an external region (mmap) alive; null for owned storage.
  std::shared_ptr<const void> keepalive_;
  // The views every accessor reads through. Invariant: either all four
  // alias the owned vectors (keepalive_ == nullptr) or all four point
  // into the external region.
  std::span<const offset_t> voff_;
  std::span<const index_t> vadj_;
  std::span<const offset_t> eoff_;
  std::span<const index_t> eadj_;
};

/// Accumulates hyperedges and produces an immutable Hypergraph.
class HypergraphBuilder {
 public:
  explicit HypergraphBuilder(index_t num_vertices)
      : num_vertices_(num_vertices) {}

  /// Add a hyperedge with the given members. Duplicate members within an
  /// edge are merged; an empty member list is rejected (an empty complex
  /// carries no information). Returns the new edge's id.
  index_t add_edge(std::span<const index_t> members);
  index_t add_edge(std::initializer_list<index_t> members);

  /// Grow the vertex set (ids are dense, so adding vertex n-1 implies
  /// vertices 0..n-2 exist).
  void ensure_vertex(index_t v);

  index_t num_vertices() const { return num_vertices_; }
  index_t num_edges() const {
    return static_cast<index_t>(edge_offsets_.size());
  }

  Hypergraph build() const;

 private:
  index_t num_vertices_ = 0;
  std::vector<std::size_t> edge_offsets_;  // start of each edge in members_
  std::vector<index_t> members_;           // concatenated sorted member lists
};

/// A sub-hypergraph induced by keeping a subset of vertices and edges,
/// with id remappings back to the parent. Edges are restricted to the
/// kept vertices; edges that become empty are dropped.
struct SubHypergraph {
  Hypergraph hypergraph;
  std::vector<index_t> vertex_to_parent;  ///< new vertex id -> old id
  std::vector<index_t> edge_to_parent;    ///< new edge id -> old id
};

/// Induce the sub-hypergraph on `keep_vertex` / `keep_edge` masks
/// (each sized like the parent's vertex/edge counts).
SubHypergraph induce(const Hypergraph& h, const std::vector<bool>& keep_vertex,
                     const std::vector<bool>& keep_edge);

/// Validate internal consistency (CSR symmetry, sortedness); intended for
/// tests and after deserialization. Throws InvalidInputError on failure.
void validate(const Hypergraph& h);

}  // namespace hp::hyper
