// SVG rendering of the bipartite hypergraph drawing -- an offline,
// reproducible version of the paper's Figure 3.
//
// Styling follows the paper's legend: yellow/red circles for
// non-core/core proteins, pink/green squares for non-core/core
// complexes, grey membership edges.
#pragma once

#include <string>
#include <vector>

#include "core/hypergraph.hpp"
#include "core/layout.hpp"
#include "core/pajek.hpp"

namespace hp::hyper {

struct SvgStyle {
  double width = 1000.0;
  double height = 1000.0;
  double protein_radius = 2.5;
  double complex_half_side = 3.5;
  /// Core nodes are drawn larger by this factor.
  double core_scale = 1.8;
  const char* protein_fill = "#f2c200";       // yellow
  const char* core_protein_fill = "#d62728";  // red
  const char* complex_fill = "#f4a6c0";       // pink
  const char* core_complex_fill = "#2ca02c";  // green
  const char* edge_stroke = "#bbbbbb";
};

/// Render the bipartite drawing. `positions` holds one point per
/// bipartite node (proteins 0..|V|-1 then complexes), e.g. from
/// force_layout(bipartite_graph(h)); `classes` from fig3_classes().
std::string to_svg(const Hypergraph& h, const std::vector<Point>& positions,
                   const std::vector<Fig3Class>& classes,
                   const SvgStyle& style = {});

/// Convenience: layout B(H) and render in one call.
std::string render_fig3_svg(const Hypergraph& h,
                            const std::vector<index_t>& vertex_core,
                            const std::vector<index_t>& edge_core, index_t k,
                            const LayoutParams& layout = {},
                            const SvgStyle& style = {});

void save_svg(const std::string& svg, const std::string& path);

}  // namespace hp::hyper
