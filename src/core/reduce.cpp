#include "core/reduce.hpp"

#include "core/peel/frontier.hpp"
#include "obs/trace.hpp"

namespace hp::hyper {

ReduceResult find_non_maximal(const Hypergraph& h) {
  HP_TRACE_SPAN("reduce.find_non_maximal");
  // Same shared reduction as the peelers' level 0: one bulk containment
  // sweep decides maximality (deleting an edge cannot create new
  // containments), and the neighborhood-seeded verification sweep
  // inside erase_non_maximal self-checks that at no extra asymptotic
  // cost.
  ResidualHypergraph residual{h};
  const index_t removed = erase_non_maximal(residual, nullptr);

  ReduceResult result;
  result.keep.assign(h.num_edges(), true);
  for (index_t f = 0; f < h.num_edges(); ++f) {
    if (!residual.edge_alive(f)) result.keep[f] = false;
  }
  result.num_removed = removed;
  return result;
}

SubHypergraph reduce(const Hypergraph& h) {
  const ReduceResult r = find_non_maximal(h);
  const std::vector<bool> keep_vertex(h.num_vertices(), true);
  return induce(h, keep_vertex, r.keep);
}

bool is_reduced(const Hypergraph& h) {
  return find_non_maximal(h).num_removed == 0;
}

}  // namespace hp::hyper
