#include "core/reduce.hpp"

#include "core/overlap.hpp"

namespace hp::hyper {

ReduceResult find_non_maximal(const Hypergraph& h) {
  const OverlapTable table{h};
  ReduceResult result;
  result.keep.assign(h.num_edges(), true);
  for (index_t f = 0; f < h.num_edges(); ++f) {
    const index_t size_f = h.edge_size(f);
    for (const auto& [g, ov] : table.row(f)) {
      if (ov != size_f) continue;  // f not fully inside g
      const index_t size_g = h.edge_size(g);
      if (size_g > size_f) {
        result.keep[f] = false;  // strict containment
        break;
      }
      if (size_g == size_f && g < f) {
        result.keep[f] = false;  // duplicate: keep lowest id
        break;
      }
    }
  }
  for (index_t e = 0; e < h.num_edges(); ++e) {
    if (!result.keep[e]) ++result.num_removed;
  }
  return result;
}

SubHypergraph reduce(const Hypergraph& h) {
  const ReduceResult r = find_non_maximal(h);
  const std::vector<bool> keep_vertex(h.num_vertices(), true);
  return induce(h, keep_vertex, r.keep);
}

bool is_reduced(const Hypergraph& h) {
  return find_non_maximal(h).num_removed == 0;
}

}  // namespace hp::hyper
