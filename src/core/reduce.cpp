#include "core/reduce.hpp"

#include "core/peel/containment.hpp"
#include "obs/trace.hpp"

namespace hp::hyper {

ReduceResult find_non_maximal(const Hypergraph& h) {
  HP_TRACE_SPAN("reduce.find_non_maximal");
  // Fresh residual = the input itself; one bulk containment sweep over
  // all edges decides maximality (deleting an edge cannot create new
  // containments, so no fixpoint is needed).
  const ResidualHypergraph residual{h};
  std::vector<index_t> all_edges(h.num_edges());
  for (index_t e = 0; e < h.num_edges(); ++e) all_edges[e] = e;
  const std::vector<index_t> doomed =
      find_non_maximal(residual, all_edges, nullptr);

  ReduceResult result;
  result.keep.assign(h.num_edges(), true);
  for (index_t f : doomed) result.keep[f] = false;
  result.num_removed = static_cast<index_t>(doomed.size());
  return result;
}

SubHypergraph reduce(const Hypergraph& h) {
  const ReduceResult r = find_non_maximal(h);
  const std::vector<bool> keep_vertex(h.num_vertices(), true);
  return induce(h, keep_vertex, r.keep);
}

bool is_reduced(const Hypergraph& h) {
  return find_non_maximal(h).num_removed == 0;
}

}  // namespace hp::hyper
