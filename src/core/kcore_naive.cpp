#include "core/kcore_naive.hpp"

#include <vector>

#include "core/peel/residual.hpp"

namespace hp::hyper {

namespace {

/// Reference policy: explicit residual-set comparisons for maximality
/// (what the paper argues against). All alive/degree/size bookkeeping
/// and core stamping live in the shared ResidualHypergraph; only the
/// set-comparison test is private to this oracle.
struct NaivePolicy {
  const Hypergraph& h;
  ResidualHypergraph& residual;

  /// Is the residual set of f a subset of the residual set of g?
  /// Two-pointer sweep over the sorted member lists, skipping dead
  /// vertices (the residual sets are never materialized).
  bool residual_subset(index_t f, index_t g) const {
    const auto fv = h.vertices_of(f);
    const auto gv = h.vertices_of(g);
    std::size_t j = 0;
    for (index_t w : fv) {
      if (!residual.vertex_alive(w)) continue;
      while (j < gv.size() &&
             (gv[j] < w || !residual.vertex_alive(gv[j]))) {
        ++j;
      }
      if (j == gv.size() || gv[j] != w) return false;
      ++j;
    }
    return true;
  }

  /// Remove non-maximal / empty edges by pairwise subset tests until
  /// stable (one pass suffices: deleting edges cannot create
  /// containment). Strict containment dooms f; among identical residual
  /// sets the lowest id survives.
  void reduce_by_comparison() {
    const index_t ne = h.num_edges();
    for (index_t f = 0; f < ne; ++f) {
      if (!residual.edge_alive(f)) continue;
      const index_t size_f = residual.edge_size(f);
      bool contained = size_f == 0;
      for (index_t g = 0; g < ne && !contained; ++g) {
        if (g == f || !residual.edge_alive(g)) continue;
        const index_t size_g = residual.edge_size(g);
        if (size_g < size_f) continue;
        if (size_g == size_f && g > f) continue;  // duplicate: lowest id wins
        contained = residual_subset(f, g);
      }
      if (contained) residual.erase_edge(f);
    }
  }
};

}  // namespace

HyperCoreResult core_decomposition_naive(const Hypergraph& h) {
  HyperCoreResult result;
  result.vertex_core.assign(h.num_vertices(), 0);
  result.edge_core.assign(h.num_edges(), 0);

  ResidualHypergraph residual{h};
  residual.bind_cores(&result.vertex_core, &result.edge_core);
  NaivePolicy policy{h, residual};

  residual.set_peel_level(0);
  policy.reduce_by_comparison();
  result.level_vertices.push_back(residual.live_vertices());
  result.level_edges.push_back(residual.live_edges());
  result.in_reduced.assign(h.num_edges(), 0);
  for (index_t e = 0; e < h.num_edges(); ++e) {
    result.in_reduced[e] = residual.edge_alive(e) ? 1 : 0;
  }

  for (index_t k = 1;; ++k) {
    residual.set_peel_level(k);
    // Fixpoint: strip sub-threshold vertices, re-reduce, repeat. Core
    // numbers are stamped by the substrate on deletion.
    bool changed = true;
    while (changed) {
      changed = false;
      for (index_t v = 0; v < h.num_vertices(); ++v) {
        if (!residual.vertex_alive(v) || residual.vertex_degree(v) >= k) {
          continue;
        }
        residual.erase_vertex(v);
        changed = true;
      }
      const index_t before = residual.live_edges();
      policy.reduce_by_comparison();
      if (residual.live_edges() != before) changed = true;
    }
    if (residual.live_vertices() == 0) {
      result.max_core = k - 1;
      break;
    }
    result.level_vertices.push_back(residual.live_vertices());
    result.level_edges.push_back(residual.live_edges());
  }
  return result;
}

}  // namespace hp::hyper
