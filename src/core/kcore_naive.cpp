#include "core/kcore_naive.hpp"

#include <algorithm>
#include <vector>

namespace hp::hyper {

namespace {

struct NaiveState {
  // Residual member sets (sorted) and alive flags.
  std::vector<std::vector<index_t>> members;
  std::vector<bool> edge_alive;
  std::vector<bool> vertex_alive;
  std::vector<index_t> vertex_degree;

  explicit NaiveState(const Hypergraph& h)
      : edge_alive(h.num_edges(), true),
        vertex_alive(h.num_vertices(), true),
        vertex_degree(h.num_vertices()) {
    members.reserve(h.num_edges());
    for (index_t e = 0; e < h.num_edges(); ++e) {
      const auto m = h.vertices_of(e);
      members.emplace_back(m.begin(), m.end());
    }
    for (index_t v = 0; v < h.num_vertices(); ++v) {
      vertex_degree[v] = h.vertex_degree(v);
    }
  }

  /// Remove non-maximal / empty edges by pairwise subset tests until
  /// stable (one pass suffices: deleting edges cannot create
  /// containment).
  void reduce_by_comparison(index_t level, std::vector<index_t>* edge_core) {
    const index_t ne = static_cast<index_t>(members.size());
    for (index_t f = 0; f < ne; ++f) {
      if (!edge_alive[f]) continue;
      bool contained = members[f].empty();
      if (!contained) {
        for (index_t g = 0; g < ne && !contained; ++g) {
          if (g == f || !edge_alive[g]) continue;
          if (members[g].size() < members[f].size()) continue;
          if (members[g].size() == members[f].size() && g > f &&
              members[g] == members[f]) {
            // Duplicate pair: delete the later-scanned one (f is the
            // earlier; skip here, g will be deleted when scanned).
            continue;
          }
          contained = std::includes(members[g].begin(), members[g].end(),
                                    members[f].begin(), members[f].end());
        }
      }
      if (contained) delete_edge(f, level, edge_core);
    }
  }

  void delete_edge(index_t f, index_t level, std::vector<index_t>* edge_core) {
    edge_alive[f] = false;
    if (edge_core != nullptr && level >= 1) (*edge_core)[f] = level - 1;
    for (index_t w : members[f]) {
      if (vertex_alive[w]) --vertex_degree[w];
    }
  }

  void delete_vertex(index_t v) {
    vertex_alive[v] = false;
    for (auto& m : members) {
      // Removing v from dead edges too is harmless and keeps this simple.
      const auto it = std::lower_bound(m.begin(), m.end(), v);
      if (it != m.end() && *it == v) m.erase(it);
    }
  }

  index_t alive_vertex_count() const {
    index_t n = 0;
    for (bool a : vertex_alive) n += a ? 1 : 0;
    return n;
  }
  index_t alive_edge_count() const {
    index_t n = 0;
    for (bool a : edge_alive) n += a ? 1 : 0;
    return n;
  }
};

}  // namespace

HyperCoreResult core_decomposition_naive(const Hypergraph& h) {
  HyperCoreResult result;
  result.vertex_core.assign(h.num_vertices(), 0);
  result.edge_core.assign(h.num_edges(), 0);

  NaiveState state{h};
  state.reduce_by_comparison(0, nullptr);
  result.level_vertices.push_back(state.alive_vertex_count());
  result.level_edges.push_back(state.alive_edge_count());

  for (index_t k = 1;; ++k) {
    // Fixpoint: strip sub-threshold vertices, re-reduce, repeat.
    bool changed = true;
    while (changed) {
      changed = false;
      for (index_t v = 0; v < h.num_vertices(); ++v) {
        if (!state.vertex_alive[v] || state.vertex_degree[v] >= k) continue;
        // Deleting v shrinks its edges; recompute degrees from scratch
        // afterwards for simplicity.
        state.delete_vertex(v);
        result.vertex_core[v] = k - 1;
        changed = true;
      }
      // Recompute vertex degrees over live edges after removals.
      std::fill(state.vertex_degree.begin(), state.vertex_degree.end(), 0);
      for (index_t e = 0; e < h.num_edges(); ++e) {
        if (!state.edge_alive[e]) continue;
        for (index_t w : state.members[e]) {
          if (state.vertex_alive[w]) ++state.vertex_degree[w];
        }
      }
      const index_t before = state.alive_edge_count();
      state.reduce_by_comparison(k, &result.edge_core);
      if (state.alive_edge_count() != before) changed = true;
      // Edge deletions changed degrees; recompute once more.
      std::fill(state.vertex_degree.begin(), state.vertex_degree.end(), 0);
      for (index_t e = 0; e < h.num_edges(); ++e) {
        if (!state.edge_alive[e]) continue;
        for (index_t w : state.members[e]) {
          if (state.vertex_alive[w]) ++state.vertex_degree[w];
        }
      }
    }
    if (state.alive_vertex_count() == 0) {
      result.max_core = k - 1;
      break;
    }
    result.level_vertices.push_back(state.alive_vertex_count());
    result.level_edges.push_back(state.alive_edge_count());
    for (index_t v = 0; v < h.num_vertices(); ++v) {
      if (state.vertex_alive[v]) result.vertex_core[v] = k;
    }
    for (index_t e = 0; e < h.num_edges(); ++e) {
      if (state.edge_alive[e]) result.edge_core[e] = k;
    }
  }
  return result;
}

}  // namespace hp::hyper
