// Small-world assessment of a hypergraph (paper section 2).
//
// The paper calls the yeast hypergraph "small world" because its
// diameter (6) and average path length (2.568) are tiny relative to its
// 1,361 vertices. We make the claim quantitative the standard way: the
// network is small-world when its average path length is close to that
// of a degree-matched random null model, i.e. L ~ L_random ~ log |V|,
// while retaining structure the null model destroys.
#pragma once

#include "core/hypergraph.hpp"
#include "core/traversal.hpp"
#include "util/rng.hpp"

namespace hp::hyper {

struct SmallWorldReport {
  HyperPathSummary observed;
  HyperPathSummary null_model;   ///< degree/size-preserving random rewiring
  double log_num_vertices = 0.0; ///< ln |V| reference scale
  /// Ratio observed.average_length / null_model.average_length; ~1 for a
  /// small-world network.
  double path_ratio = 0.0;
};

/// Generate a null-model hypergraph with the same vertex degree sequence
/// and hyperedge size sequence via stub matching (bipartite configuration
/// model). Duplicate memberships are resolved by re-drawing; after
/// `max_retries` failed attempts, a remaining collision is dropped
/// (slightly lowering a degree), which at the paper's densities is rare.
Hypergraph configuration_model(const Hypergraph& h, Rng& rng,
                               int max_retries = 100);

/// Compute the report. Uses one configuration-model sample.
SmallWorldReport small_world_report(const Hypergraph& h, Rng& rng);

/// Same, with the observed path summary supplied by the caller (the
/// AnalysisContext path: its cached all-pairs summary is reused instead
/// of re-running the BFS sweep here).
SmallWorldReport small_world_report(const Hypergraph& h,
                                    const HyperPathSummary& observed,
                                    Rng& rng);

}  // namespace hp::hyper
