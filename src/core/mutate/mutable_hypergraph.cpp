#include "core/mutate/mutable_hypergraph.hpp"

#include <algorithm>

namespace hp::hyper {

MutableHypergraph::MutableHypergraph(const Hypergraph& base)
    : members_(base.num_edges()),
      incident_(base.num_vertices()),
      vertex_alive_(base.num_vertices(), 1),
      edge_alive_(base.num_edges(), 1),
      live_vertices_(base.num_vertices()),
      live_edges_(base.num_edges()),
      live_pins_(base.num_pins()),
      vertex_touch_epoch_(base.num_vertices(), 0),
      edge_touch_epoch_(base.num_edges(), 0) {
  for (index_t e = 0; e < base.num_edges(); ++e) {
    const auto members = base.vertices_of(e);
    members_[e].assign(members.begin(), members.end());
  }
  for (index_t v = 0; v < base.num_vertices(); ++v) {
    const auto edges = base.edges_of(v);
    incident_[v].assign(edges.begin(), edges.end());
  }
}

void MutableHypergraph::touch_vertex(index_t v, bool existed) {
  if (vertex_touch_epoch_[v] == epoch_) return;
  vertex_touch_epoch_[v] = epoch_;
  dirty_.vertices.push_back(
      {v, existed ? vertex_degree(v) : index_t{0}, existed});
}

void MutableHypergraph::touch_edge(index_t e, bool existed) {
  if (edge_touch_epoch_[e] == epoch_) return;
  edge_touch_epoch_[e] = epoch_;
  dirty_.edges.push_back({e, existed ? edge_size(e) : index_t{0}, existed});
}

index_t MutableHypergraph::add_vertex() {
  const index_t v = num_vertices();
  incident_.emplace_back();
  vertex_alive_.push_back(1);
  vertex_touch_epoch_.push_back(0);
  touch_vertex(v, /*existed=*/false);
  ++live_vertices_;
  ++dirty_.mutations;
  ++version_;
  return v;
}

bool MutableHypergraph::remove_vertex(index_t v) {
  HP_REQUIRE(v < num_vertices(), "remove_vertex: vertex id out of range");
  if (!vertex_alive(v)) return false;
  touch_vertex(v, /*existed=*/true);
  // Detach from every containing hyperedge; edges that become empty die.
  // Degrees of the *other* members only change when an edge dies, and an
  // edge dies here only when v was its last member -- so no other
  // vertex's degree moves, and no other vertex needs touching.
  std::vector<index_t> edges(incident_[v].begin(), incident_[v].end());
  for (index_t e : edges) {
    touch_edge(e, /*existed=*/true);
    auto& mem = members_[e];
    mem.erase(std::lower_bound(mem.begin(), mem.end(), v));
    --live_pins_;
    if (mem.empty()) {
      edge_alive_[e] = 0;
      --live_edges_;
    }
  }
  incident_[v].clear();
  incident_[v].shrink_to_fit();
  vertex_alive_[v] = 0;
  --live_vertices_;
  dirty_.structural_removal = true;
  ++dirty_.mutations;
  ++version_;
  return true;
}

index_t MutableHypergraph::add_hyperedge(std::span<const index_t> members) {
  HP_REQUIRE(!members.empty(), "add_hyperedge: empty member list");
  std::vector<index_t> sorted(members.begin(), members.end());
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  for (index_t v : sorted) {
    HP_REQUIRE(v < num_vertices(), "add_hyperedge: member out of range");
    HP_REQUIRE(vertex_alive(v), "add_hyperedge: member vertex is dead");
  }
  const index_t e = num_edge_slots();
  edge_alive_.push_back(1);
  edge_touch_epoch_.push_back(0);
  touch_edge(e, /*existed=*/false);
  for (index_t v : sorted) {
    touch_vertex(v, /*existed=*/true);
    auto& inc = incident_[v];
    inc.insert(std::lower_bound(inc.begin(), inc.end(), e), e);
  }
  live_pins_ += sorted.size();
  members_.push_back(std::move(sorted));
  ++live_edges_;
  ++dirty_.mutations;
  ++version_;
  return e;
}

index_t MutableHypergraph::add_hyperedge(
    std::initializer_list<index_t> members) {
  return add_hyperedge(std::span<const index_t>{members.begin(),
                                                members.end()});
}

bool MutableHypergraph::remove_hyperedge(index_t e) {
  HP_REQUIRE(e < num_edge_slots(), "remove_hyperedge: edge id out of range");
  if (!edge_alive(e)) return false;
  touch_edge(e, /*existed=*/true);
  for (index_t v : members_[e]) {
    touch_vertex(v, /*existed=*/true);
    auto& inc = incident_[v];
    inc.erase(std::lower_bound(inc.begin(), inc.end(), e));
  }
  live_pins_ -= members_[e].size();
  members_[e].clear();
  members_[e].shrink_to_fit();
  edge_alive_[e] = 0;
  --live_edges_;
  dirty_.structural_removal = true;
  ++dirty_.mutations;
  ++version_;
  return true;
}

DirtyRegion MutableHypergraph::drain_dirty() {
  DirtyRegion region = std::move(dirty_);
  dirty_ = DirtyRegion{};
  ++epoch_;
  return region;
}

const MutableHypergraph::Snapshot& MutableHypergraph::snapshot() const {
  if (snapshot_ && snapshot_version_ == version_) return *snapshot_;
  HypergraphBuilder builder{num_vertices()};
  std::vector<index_t> edge_to_stable;
  edge_to_stable.reserve(live_edges_);
  for (index_t e = 0; e < num_edge_slots(); ++e) {
    if (!edge_alive(e)) continue;
    builder.add_edge(members_[e]);
    edge_to_stable.push_back(e);
  }
  snapshot_.emplace(Snapshot{builder.build(), std::move(edge_to_stable)});
  snapshot_version_ = version_;
  return *snapshot_;
}

std::size_t MutableHypergraph::storage_bytes() const {
  std::size_t bytes = sizeof(*this);
  bytes += members_.capacity() * sizeof(members_[0]);
  for (const auto& m : members_) bytes += m.capacity() * sizeof(index_t);
  bytes += incident_.capacity() * sizeof(incident_[0]);
  for (const auto& inc : incident_) bytes += inc.capacity() * sizeof(index_t);
  bytes += vertex_alive_.capacity() + edge_alive_.capacity();
  bytes += vertex_touch_epoch_.capacity() * sizeof(std::uint64_t);
  bytes += edge_touch_epoch_.capacity() * sizeof(std::uint64_t);
  bytes += dirty_.vertices.capacity() * sizeof(DirtyVertex);
  bytes += dirty_.edges.capacity() * sizeof(DirtyEdge);
  return bytes;
}

}  // namespace hp::hyper
