#include "core/mutate/mutable_context.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace hp::hyper {

namespace detail {

void UnionFind::reset(index_t n) {
  parent.resize(n);
  size.assign(n, 1);
  for (index_t i = 0; i < n; ++i) parent[i] = i;
}

void UnionFind::grow(index_t n) {
  const index_t old = static_cast<index_t>(parent.size());
  if (n <= old) return;
  parent.resize(n);
  size.resize(n, 1);
  for (index_t i = old; i < n; ++i) parent[i] = i;
}

index_t UnionFind::find(index_t x) {
  while (parent[x] != x) {
    parent[x] = parent[parent[x]];  // path halving
    x = parent[x];
  }
  return x;
}

bool UnionFind::unite(index_t a, index_t b) {
  index_t ra = find(a);
  index_t rb = find(b);
  if (ra == rb) return false;
  if (size[ra] < size[rb]) std::swap(ra, rb);
  parent[rb] = ra;
  size[ra] += size[rb];
  return true;
}

}  // namespace detail

namespace {

/// Bump-safe histogram access over exact-core counts.
void bump(std::vector<count_t>& counts, index_t value, bool up) {
  if (value >= counts.size()) counts.resize(value + 1, 0);
  if (up) {
    ++counts[value];
  } else {
    --counts[value];
  }
}

}  // namespace

MutableAnalysisContext::MutableAnalysisContext(const Hypergraph& base)
    : graph_(base) {}

void MutableAnalysisContext::grow_tracked_arrays() {
  const index_t n = graph_.num_vertices();
  const index_t slots = graph_.num_edge_slots();
  if (vertex_mark_.size() < n) vertex_mark_.resize(n, 0);
  if (edge_mark_.size() < slots) edge_mark_.resize(slots, 0);
  if (degrees_counters_.built && degrees_.size() < n) {
    degrees_.resize(n, 0);
  }
  if (components_counters_.built && !uf_stale_) uf_.grow(n);
  if (cores_counters_.built) {
    const index_t old_n = static_cast<index_t>(cores_.vertex_core.size());
    if (n > old_n) {
      cores_.vertex_core.resize(n, 0);
      bump(core_count_v_, 0, true);
      core_count_v_[0] += (n - old_n) - 1;  // bump added the first one
    }
    const index_t old_e = static_cast<index_t>(cores_.edge_core.size());
    if (slots > old_e) {
      cores_.edge_core.resize(slots, 0);
      cores_.in_reduced.resize(slots, 0);
      bump(core_count_e_, 0, true);
      core_count_e_[0] += (slots - old_e) - 1;
    }
  }
}

void MutableAnalysisContext::apply() {
  if (graph_.dirty().empty()) return;
  HP_TRACE_SPAN("context.apply");
  const DirtyRegion region = graph_.drain_dirty();
  ++apply_stats_.applies;
  apply_stats_.mutations += region.mutations;
  obs::counter("context.apply.count").add(1);
  obs::counter("context.apply.mutations").add(region.mutations);

  grow_tracked_arrays();

  if (degrees_counters_.built) {
    HP_TRACE_SPAN("context.apply.degrees");
    for (const DirtyVertex& rec : region.vertices) {
      degrees_[rec.id] = graph_.vertex_degree(rec.id);
    }
    ++degrees_counters_.incremental_updates;
    ++apply_stats_.incremental_updates;
  }

  if (vertex_hist_counters_.built || edge_hist_counters_.built) {
    HP_TRACE_SPAN("context.apply.histograms");
    if (vertex_hist_counters_.built) {
      for (const DirtyVertex& rec : region.vertices) {
        const index_t now = graph_.vertex_degree(rec.id);
        if (rec.existed) {
          if (now == rec.old_degree) continue;
          vertex_hist_.remove(rec.old_degree);
        }
        vertex_hist_.add(now);
      }
      ++vertex_hist_counters_.incremental_updates;
      ++apply_stats_.incremental_updates;
    }
    if (edge_hist_counters_.built) {
      for (const DirtyEdge& rec : region.edges) {
        const bool alive = graph_.edge_alive(rec.id);
        const index_t now = graph_.edge_size(rec.id);
        if (rec.existed && alive && now == rec.old_size) continue;
        if (rec.existed) edge_hist_.remove(rec.old_size);
        if (alive) edge_hist_.add(now);
      }
      ++edge_hist_counters_.incremental_updates;
      ++apply_stats_.incremental_updates;
    }
  }

  if (components_counters_.built) {
    HP_TRACE_SPAN("context.apply.components");
    if (region.structural_removal) {
      // Connectivity can only be *proven* under insertion; any removal
      // invalidates the union-find until the next rebuild.
      uf_stale_ = true;
    } else if (!uf_stale_) {
      for (const DirtyEdge& rec : region.edges) {
        if (!graph_.edge_alive(rec.id)) continue;
        const auto members = graph_.edge_members(rec.id);
        for (std::size_t i = 1; i < members.size(); ++i) {
          uf_.unite(members[0], members[i]);
        }
      }
    }
    components_dirty_ = true;
    ++components_counters_.incremental_updates;
    ++apply_stats_.incremental_updates;
  }

  if (cores_counters_.built) {
    HP_TRACE_SPAN("context.apply.cores");
    for (const DirtyVertex& rec : region.vertices) {
      pending_seeds_.push_back(rec.id);
      if (rec.existed && !graph_.vertex_alive(rec.id)) {
        pending_dead_vertices_.push_back(rec.id);
      }
    }
    for (const DirtyEdge& rec : region.edges) {
      if (graph_.edge_alive(rec.id)) {
        const auto members = graph_.edge_members(rec.id);
        pending_seeds_.insert(pending_seeds_.end(), members.begin(),
                              members.end());
      } else if (rec.existed) {
        pending_dead_edges_.push_back(rec.id);
      }
    }
    cores_dirty_ = true;
    ++cores_counters_.incremental_updates;
    ++apply_stats_.incremental_updates;
  }
  // The rebuild tier is refreshed lazily: analysis() compares versions
  // and rebases (per-slot invalidation) only when actually queried.
}

const std::vector<index_t>& MutableAnalysisContext::vertex_degrees() {
  apply();
  if (!degrees_counters_.built) {
    degrees_.assign(graph_.num_vertices(), 0);
    for (index_t v = 0; v < graph_.num_vertices(); ++v) {
      degrees_[v] = graph_.vertex_degree(v);
    }
    degrees_counters_.built = true;
    ++degrees_counters_.builds;
  } else {
    ++degrees_counters_.hits;
  }
  return degrees_;
}

const Histogram& MutableAnalysisContext::vertex_degree_histogram() {
  apply();
  if (!vertex_hist_counters_.built) {
    vertex_hist_ = Histogram{};
    for (index_t v = 0; v < graph_.num_vertices(); ++v) {
      vertex_hist_.add(graph_.vertex_degree(v));
    }
    vertex_hist_counters_.built = true;
    ++vertex_hist_counters_.builds;
  } else {
    ++vertex_hist_counters_.hits;
  }
  return vertex_hist_;
}

const Histogram& MutableAnalysisContext::edge_size_histogram() {
  apply();
  if (!edge_hist_counters_.built) {
    edge_hist_ = Histogram{};
    for (index_t e = 0; e < graph_.num_edge_slots(); ++e) {
      if (graph_.edge_alive(e)) edge_hist_.add(graph_.edge_size(e));
    }
    edge_hist_counters_.built = true;
    ++edge_hist_counters_.builds;
  } else {
    ++edge_hist_counters_.hits;
  }
  return edge_hist_;
}

void MutableAnalysisContext::rebuild_union_find() {
  uf_.reset(graph_.num_vertices());
  for (index_t e = 0; e < graph_.num_edge_slots(); ++e) {
    if (!graph_.edge_alive(e)) continue;
    const auto members = graph_.edge_members(e);
    for (std::size_t i = 1; i < members.size(); ++i) {
      uf_.unite(members[0], members[i]);
    }
  }
  uf_stale_ = false;
}

void MutableAnalysisContext::canonicalize_components() {
  const index_t n = graph_.num_vertices();
  HyperComponents out;
  out.vertex_label.assign(n, kInvalidIndex);
  // Labels are assigned at the first root sighting in ascending vertex
  // id order -- exactly the order connected_components() seeds its DFS
  // from, so the two labelings are bit-identical.
  std::vector<index_t> root_label(n, kInvalidIndex);
  for (index_t v = 0; v < n; ++v) {
    const index_t root = uf_.find(v);
    if (root_label[root] == kInvalidIndex) {
      root_label[root] = out.count++;
      out.vertex_counts.push_back(0);
    }
    out.vertex_label[v] = root_label[root];
    ++out.vertex_counts[out.vertex_label[v]];
  }
  out.edge_counts.assign(out.count, 0);
  out.edge_label.reserve(graph_.live_edges());
  for (index_t e = 0; e < graph_.num_edge_slots(); ++e) {
    if (!graph_.edge_alive(e)) continue;
    const index_t label = out.vertex_label[graph_.edge_members(e)[0]];
    out.edge_label.push_back(label);
    ++out.edge_counts[label];
  }
  components_ = std::move(out);
}

const HyperComponents& MutableAnalysisContext::components() {
  apply();
  if (!components_counters_.built) {
    rebuild_union_find();
    canonicalize_components();
    components_counters_.built = true;
    components_dirty_ = false;
    ++components_counters_.builds;
  } else {
    if (components_dirty_) {
      if (uf_stale_) {
        rebuild_union_find();
        ++apply_stats_.component_rebuilds;
      }
      canonicalize_components();
      components_dirty_ = false;
    }
    ++components_counters_.hits;
  }
  return components_;
}

void MutableAnalysisContext::build_cores_full(bool count_as_fallback) {
  const MutableHypergraph::Snapshot& snap = graph_.snapshot();
  const HyperCoreResult compact =
      core_decomposition(snap.hypergraph, &peel_stats_);
  const index_t slots = graph_.num_edge_slots();
  cores_.vertex_core = compact.vertex_core;
  cores_.edge_core.assign(slots, 0);
  cores_.in_reduced.assign(slots, 0);
  for (index_t j = 0; j < snap.edge_to_stable.size(); ++j) {
    cores_.edge_core[snap.edge_to_stable[j]] = compact.edge_core[j];
    cores_.in_reduced[snap.edge_to_stable[j]] = compact.in_reduced[j];
  }
  cores_.max_core = compact.max_core;
  cores_.level_vertices = compact.level_vertices;
  cores_.level_edges = compact.level_edges;

  core_count_v_.assign(compact.max_core + 1, 0);
  for (index_t c : cores_.vertex_core) bump(core_count_v_, c, true);
  core_count_e_.assign(compact.max_core + 1, 0);
  for (index_t c : cores_.edge_core) bump(core_count_e_, c, true);
  reduced_edge_count_ = compact.level_edges.empty()
                            ? 0
                            : compact.level_edges[0];

  pending_seeds_.clear();
  pending_dead_vertices_.clear();
  pending_dead_edges_.clear();
  if (count_as_fallback) {
    ++peel_stats_.repair_fallbacks;
    ++apply_stats_.core_repair_fallbacks;
  }
}

void MutableAnalysisContext::recompute_levels() {
  index_t max_core = 0;
  for (index_t c = static_cast<index_t>(core_count_v_.size()); c-- > 1;) {
    if (core_count_v_[c] > 0) {
      max_core = c;
      break;
    }
  }
  cores_.max_core = max_core;
  cores_.level_vertices.assign(max_core + 1, 0);
  cores_.level_edges.assign(max_core + 1, 0);
  cores_.level_vertices[0] = graph_.num_vertices();
  cores_.level_edges[0] = static_cast<index_t>(reduced_edge_count_);
  count_t suffix_v = 0;
  count_t suffix_e = 0;
  for (index_t k = max_core; k >= 1; --k) {
    if (k < core_count_v_.size()) suffix_v += core_count_v_[k];
    if (k < core_count_e_.size()) suffix_e += core_count_e_[k];
    cores_.level_vertices[k] = static_cast<index_t>(suffix_v);
    cores_.level_edges[k] = static_cast<index_t>(suffix_e);
  }
}

void MutableAnalysisContext::repair_cores() {
  HP_TRACE_SPAN("context.apply.cores.repair");
  // Dead items first: tombstoned vertices and removed edges leave the
  // core structure entirely (core 0, out of the reduced set).
  for (index_t v : pending_dead_vertices_) {
    const index_t old = cores_.vertex_core[v];
    if (old != 0) {
      bump(core_count_v_, old, false);
      bump(core_count_v_, 0, true);
      cores_.vertex_core[v] = 0;
    }
  }
  for (index_t e : pending_dead_edges_) {
    const index_t old = cores_.edge_core[e];
    if (old != 0) {
      bump(core_count_e_, old, false);
      bump(core_count_e_, 0, true);
      cores_.edge_core[e] = 0;
    }
    if (cores_.in_reduced[e] != 0) {
      cores_.in_reduced[e] = 0;
      --reduced_edge_count_;
    }
  }

  // Flood the current components reachable from the live seeds; every
  // unseeded component is provably unchanged (see file header of
  // mutable_context.hpp).
  ++mark_epoch_;
  std::vector<index_t> affected_v;
  std::vector<index_t> affected_e;
  std::vector<index_t> stack;
  for (index_t s : pending_seeds_) {
    if (!graph_.vertex_alive(s) || vertex_mark_[s] == mark_epoch_) continue;
    vertex_mark_[s] = mark_epoch_;
    stack.push_back(s);
    while (!stack.empty()) {
      const index_t v = stack.back();
      stack.pop_back();
      affected_v.push_back(v);
      for (index_t e : graph_.edges_of(v)) {
        if (edge_mark_[e] == mark_epoch_) continue;
        edge_mark_[e] = mark_epoch_;
        affected_e.push_back(e);
        for (index_t w : graph_.edge_members(e)) {
          if (vertex_mark_[w] != mark_epoch_) {
            vertex_mark_[w] = mark_epoch_;
            stack.push_back(w);
          }
        }
      }
    }
  }

  if (static_cast<double>(affected_v.size()) >
      repair_threshold_ * static_cast<double>(graph_.live_vertices())) {
    build_cores_full(/*count_as_fallback=*/true);
    return;
  }

  std::sort(affected_v.begin(), affected_v.end());
  std::sort(affected_e.begin(), affected_e.end());

  // Re-peel the affected components in isolation. Stable-ascending
  // local ids keep the relative vertex/edge order of the full peel, so
  // the LIFO schedule and duplicate-representative tiebreaks coincide.
  if (vertex_local_.size() < vertex_mark_.size()) {
    vertex_local_.resize(vertex_mark_.size(), 0);
  }
  for (index_t i = 0; i < affected_v.size(); ++i) {
    vertex_local_[affected_v[i]] = i;
  }
  HypergraphBuilder builder{static_cast<index_t>(affected_v.size())};
  std::vector<index_t> local_members;
  for (index_t e : affected_e) {
    const auto members = graph_.edge_members(e);
    local_members.clear();
    for (index_t w : members) local_members.push_back(vertex_local_[w]);
    builder.add_edge(local_members);
  }
  const HyperCoreResult local =
      core_decomposition(builder.build(), &peel_stats_);

  for (index_t i = 0; i < affected_v.size(); ++i) {
    const index_t v = affected_v[i];
    const index_t old = cores_.vertex_core[v];
    const index_t now = local.vertex_core[i];
    if (old != now) {
      bump(core_count_v_, old, false);
      bump(core_count_v_, now, true);
      cores_.vertex_core[v] = now;
    }
  }
  for (index_t j = 0; j < affected_e.size(); ++j) {
    const index_t e = affected_e[j];
    const index_t old = cores_.edge_core[e];
    const index_t now = local.edge_core[j];
    if (old != now) {
      bump(core_count_e_, old, false);
      bump(core_count_e_, now, true);
      cores_.edge_core[e] = now;
    }
    const char now_reduced = local.in_reduced[j];
    if (cores_.in_reduced[e] != now_reduced) {
      reduced_edge_count_ += now_reduced ? 1 : count_t{0};
      reduced_edge_count_ -= now_reduced ? count_t{0} : 1;
      cores_.in_reduced[e] = now_reduced;
    }
  }
  recompute_levels();

  ++peel_stats_.repairs;
  peel_stats_.repaired_vertices += affected_v.size();
  peel_stats_.repaired_edges += affected_e.size();
  ++apply_stats_.core_repairs;
  obs::counter("context.apply.core_repairs").add(1);

  pending_seeds_.clear();
  pending_dead_vertices_.clear();
  pending_dead_edges_.clear();
}

const HyperCoreResult& MutableAnalysisContext::cores() {
  apply();
  if (!cores_counters_.built) {
    build_cores_full(/*count_as_fallback=*/false);
    cores_counters_.built = true;
    cores_dirty_ = false;
    ++cores_counters_.builds;
  } else {
    if (cores_dirty_) {
      repair_cores();
      cores_dirty_ = false;
    }
    ++cores_counters_.hits;
  }
  return cores_;
}

const MutableHypergraph::Snapshot& MutableAnalysisContext::snapshot() {
  apply();
  return graph_.snapshot();
}

AnalysisContext& MutableAnalysisContext::analysis() {
  apply();
  const MutableHypergraph::Snapshot& snap = graph_.snapshot();
  if (!analysis_) {
    analysis_ = std::make_unique<AnalysisContext>(snap.hypergraph);
    analysis_version_ = graph_.version();
  } else if (analysis_version_ != graph_.version()) {
    const index_t reset_count = analysis_->rebase(snap.hypergraph);
    apply_stats_.slot_invalidations += reset_count;
    obs::counter("context.apply.slot_invalidations").add(reset_count);
    analysis_version_ = graph_.version();
  }
  return *analysis_;
}

ContextStats MutableAnalysisContext::stats() {
  ContextStats out;
  const auto row = [](const char* name, const CheapCounters& c,
                      std::size_t bytes) {
    ArtifactStats s;
    s.name = name;
    s.builds = c.builds;
    s.hits = c.hits;
    s.incremental_updates = c.incremental_updates;
    s.bytes = c.built ? bytes : 0;
    return s;
  };
  out.artifacts.push_back(row("incremental degrees", degrees_counters_,
                              degrees_.size() * sizeof(index_t)));
  out.artifacts.push_back(
      row("incremental vertex degree histogram", vertex_hist_counters_,
          vertex_hist_.frequencies().size() * sizeof(std::size_t)));
  out.artifacts.push_back(
      row("incremental edge size histogram", edge_hist_counters_,
          edge_hist_.frequencies().size() * sizeof(std::size_t)));
  out.artifacts.push_back(
      row("incremental components", components_counters_,
          (components_.vertex_label.size() + components_.edge_label.size() +
           components_.vertex_counts.size() + components_.edge_counts.size()) *
              sizeof(index_t)));
  out.artifacts.push_back(
      row("incremental cores", cores_counters_,
          (cores_.vertex_core.size() + cores_.edge_core.size() +
           cores_.level_vertices.size() + cores_.level_edges.size()) *
                  sizeof(index_t) +
              cores_.in_reduced.size()));
  // The unpacked mutable representation always lives on the heap; only
  // the inner analysis context (rebased onto materialized snapshots)
  // can be carrying mapped pages.
  out.hypergraph_owned_bytes = graph_.storage_bytes();
  if (analysis_) {
    ContextStats inner = analysis_->stats();
    for (ArtifactStats& a : inner.artifacts) {
      out.artifacts.push_back(std::move(a));
    }
    out.hypergraph_owned_bytes += inner.hypergraph_owned_bytes;
    out.hypergraph_mapped_bytes += inner.hypergraph_mapped_bytes;
  }
  return out;
}

}  // namespace hp::hyper
