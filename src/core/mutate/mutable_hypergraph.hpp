// MutableHypergraph: an edit overlay over the immutable CSR Hypergraph.
//
// The CSR form (core/hypergraph.hpp) is the right layout for analysis
// but cannot absorb edits; this class keeps the same structure in
// "unpacked" form -- one member vector per hyperedge, one incidence
// vector per vertex -- and supports add/remove of vertices and
// hyperedges in O(degree log) time per pin. Identifiers are *stable*:
//
//   - Vertices are never renumbered. remove_vertex() detaches the
//     vertex from all its hyperedges and leaves a tombstone; the id
//     stays valid (alive == false) and still occupies a slot in any
//     materialized snapshot, as an isolated vertex.
//   - Hyperedges get ids 0..num_edge_slots()-1 in insertion order;
//     removal leaves a dead slot, insertion always appends a new slot.
//     Snapshots compact the live edges in stable-id order and report
//     the mapping in Snapshot::edge_to_stable.
//
// Every effective mutation bumps version() and records the touched
// vertices/edges -- with their pre-mutation degree/size -- in a
// DirtyRegion (see dirty_region.hpp) which incremental consumers drain.
// Snapshot materialization is lazy and cached by version, so a burst of
// edits pays O(V + E) packing cost once, and only if somebody asks.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <optional>
#include <span>
#include <vector>

#include "core/hypergraph.hpp"
#include "core/mutate/dirty_region.hpp"
#include "util/common.hpp"

namespace hp::hyper {

class MutableHypergraph {
 public:
  MutableHypergraph() = default;

  /// Unpack an immutable snapshot into editable form (O(V + E + pins)).
  explicit MutableHypergraph(const Hypergraph& base);

  /// Monotonic edit counter; bumped once per effective mutation.
  std::uint64_t version() const { return version_; }

  /// Size of the vertex id space, tombstones included.
  index_t num_vertices() const {
    return static_cast<index_t>(incident_.size());
  }

  /// Size of the hyperedge id space, dead slots included.
  index_t num_edge_slots() const {
    return static_cast<index_t>(members_.size());
  }

  index_t live_vertices() const { return live_vertices_; }
  index_t live_edges() const { return live_edges_; }
  count_t live_pins() const { return live_pins_; }

  bool vertex_alive(index_t v) const { return vertex_alive_[v] != 0; }
  bool edge_alive(index_t e) const { return edge_alive_[e] != 0; }

  /// Degree of a vertex (0 for tombstones).
  index_t vertex_degree(index_t v) const {
    return static_cast<index_t>(incident_[v].size());
  }

  /// Cardinality of a hyperedge (0 for dead slots).
  index_t edge_size(index_t e) const {
    return static_cast<index_t>(members_[e].size());
  }

  /// Sorted member vertices of a live hyperedge (empty for dead slots).
  std::span<const index_t> edge_members(index_t e) const {
    return members_[e];
  }

  /// Sorted live hyperedge ids containing vertex v.
  std::span<const index_t> edges_of(index_t v) const { return incident_[v]; }

  /// Append a new isolated vertex; returns its id.
  index_t add_vertex();

  /// Detach a vertex from every hyperedge containing it and tombstone
  /// it. Hyperedges that become empty die. Returns false (no-op) if the
  /// vertex is already dead.
  bool remove_vertex(index_t v);

  /// Insert a hyperedge over the given members (deduplicated, sorted --
  /// HypergraphBuilder semantics). Duplicate whole edges are allowed,
  /// exactly as in the builder. Throws InvalidInputError on an empty
  /// member list or a dead/out-of-range member. Returns the stable id.
  index_t add_hyperedge(std::span<const index_t> members);
  index_t add_hyperedge(std::initializer_list<index_t> members);

  /// Remove a hyperedge. Returns false (no-op) if the slot is already
  /// dead. Member vertices stay alive even at degree 0.
  bool remove_hyperedge(index_t e);

  /// Touched-since-last-drain delta; see DirtyRegion.
  const DirtyRegion& dirty() const { return dirty_; }

  /// Hand the accumulated region to the caller and start a new window.
  DirtyRegion drain_dirty();

  /// An immutable materialization of the live structure. Vertex ids are
  /// preserved verbatim (tombstones become isolated vertices); live
  /// hyperedges are compacted in stable-id order, with
  /// edge_to_stable[compact] giving the stable id.
  struct Snapshot {
    Hypergraph hypergraph;
    std::vector<index_t> edge_to_stable;
  };

  /// Materialize (or return the cached) snapshot for the current
  /// version. O(V + E + pins) when stale, O(1) when cached.
  const Snapshot& snapshot() const;

  /// Bytes held by the unpacked representation (excludes the cached
  /// snapshot, which is accounted separately by its owner).
  std::size_t storage_bytes() const;

 private:
  void touch_vertex(index_t v, bool existed);
  void touch_edge(index_t e, bool existed);

  std::vector<std::vector<index_t>> members_;   // per edge slot, sorted
  std::vector<std::vector<index_t>> incident_;  // per vertex, sorted ids
  std::vector<char> vertex_alive_;
  std::vector<char> edge_alive_;
  index_t live_vertices_ = 0;
  index_t live_edges_ = 0;
  count_t live_pins_ = 0;
  std::uint64_t version_ = 0;

  DirtyRegion dirty_;
  // First-touch dedup: slot != current epoch means "not yet recorded in
  // this drain window".
  std::vector<std::uint64_t> vertex_touch_epoch_;
  std::vector<std::uint64_t> edge_touch_epoch_;
  std::uint64_t epoch_ = 1;

  mutable std::optional<Snapshot> snapshot_;
  mutable std::uint64_t snapshot_version_ = ~std::uint64_t{0};
};

}  // namespace hp::hyper
