// MutableAnalysisContext: the incremental analysis pipeline.
//
// Owns a MutableHypergraph plus two tiers of derived artifacts:
//
//   Cheap tier (maintained in *stable* id space, incrementally):
//     - vertex degrees            O(|dirty|) per apply
//     - vertex degree histogram   O(|dirty|), moves old bucket -> new
//     - edge size histogram       O(|dirty|)
//     - connected components      union-find; pure insertion unions in
//                                 near-O(1), any deletion falls back to
//                                 a rebuild at the next query
//     - core decomposition        bounded repair: re-peel only the
//                                 components reachable from the dirty
//                                 region (see cores() below)
//
//   Rebuild tier (full AnalysisContext over the materialized snapshot):
//     dual, projections, overlaps, reduced, summary, paths keep their
//     rebuild semantics, but via AnalysisContext::rebase() they are
//     reset per-slot -- and only when mutations actually happened since
//     the slots were built.
//
// Correctness of the bounded core repair rests on peeling being
// component-local: overlaps and containment require shared vertices, so
// the global peel restricted to one component is exactly that
// component's own peel (including the LIFO pop order and the
// duplicate-representative tiebreak, which interleave across components
// without affecting within-component order). After a mutation, any
// current component containing no seed (dirty vertex or member of a
// dirty edge) is provably an unchanged old component, so re-peeling the
// seeded components and splicing is bit-identical to a full re-peel.
// The differential fuzz oracle (src/check/mutation.hpp) holds this to
// account on thousands of random mutation traces.
//
// Threading: the whole pipeline is single-writer by contract -- one
// thread mutates and queries. Artifacts handed out by reference are
// invalidated by the next apply()/mutation, exactly like iterators of a
// std::vector under insert. Parallelism still happens *inside* builds
// (the rebuild tier's prefetch, path summaries), which is safe because
// apply() never runs concurrently with them.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/context/analysis_context.hpp"
#include "core/kcore.hpp"
#include "core/mutate/mutable_hypergraph.hpp"
#include "core/peel/peel_stats.hpp"
#include "core/traversal.hpp"
#include "util/histogram.hpp"

namespace hp::hyper {

namespace detail {

/// Union-find over vertex ids with union by size and path halving.
struct UnionFind {
  std::vector<index_t> parent;
  std::vector<index_t> size;

  void reset(index_t n);
  void grow(index_t n);
  index_t find(index_t x);
  /// Returns true when two distinct roots were merged.
  bool unite(index_t a, index_t b);
};

}  // namespace detail

class MutableAnalysisContext {
 public:
  /// Start from an immutable base (unpacked into a MutableHypergraph).
  explicit MutableAnalysisContext(const Hypergraph& base);

  MutableAnalysisContext(const MutableAnalysisContext&) = delete;
  MutableAnalysisContext& operator=(const MutableAnalysisContext&) = delete;

  /// The underlying editable structure. Mutate freely, then call
  /// apply() (or any query, which applies implicitly).
  MutableHypergraph& graph() { return graph_; }
  const MutableHypergraph& graph() const { return graph_; }

  /// Absorb pending mutations into every *built* cheap-tier artifact
  /// and mark the rebuild tier stale. No-op when the graph is clean.
  void apply();

  // --- cheap tier (stable id space; tombstones report degree 0 and
  // --- form singleton components, matching their appearance in the
  // --- materialized snapshot) ---------------------------------------
  const std::vector<index_t>& vertex_degrees();
  const Histogram& vertex_degree_histogram();
  const Histogram& edge_size_histogram();
  /// Canonical component labeling, bit-identical to
  /// connected_components(snapshot().hypergraph) with edge labels in
  /// compact (snapshot) edge order.
  const HyperComponents& components();
  /// Core decomposition in stable id space: vertex_core by vertex id,
  /// edge_core / in_reduced by stable edge slot (dead slots report 0).
  /// Level counts, max_core and the compact-order invariants match
  /// core_decomposition(snapshot().hypergraph) exactly.
  const HyperCoreResult& cores();
  /// Substrate + repair counters accumulated across all core builds and
  /// repairs so far.
  const PeelStats& core_peel_stats() const { return peel_stats_; }

  // --- rebuild tier --------------------------------------------------
  /// Materialized snapshot of the current version (cached).
  const MutableHypergraph::Snapshot& snapshot();
  /// Full AnalysisContext over the snapshot; rebased lazily (per-slot
  /// invalidation) when mutations happened since the last call.
  AnalysisContext& analysis();

  /// Fraction of live vertices the seeded region may reach before a
  /// bounded repair escalates to a full re-peel (default 0.5).
  void set_repair_threshold(double fraction) {
    repair_threshold_ = fraction;
  }

  struct ApplyStats {
    count_t applies = 0;             ///< non-empty apply() calls
    count_t mutations = 0;           ///< graph mutations absorbed
    count_t incremental_updates = 0; ///< artifact-level in-place updates
    count_t slot_invalidations = 0;  ///< rebuild-tier slots reset
    count_t component_rebuilds = 0;  ///< union-find deletion fallbacks
    count_t core_repairs = 0;        ///< bounded subcore re-peels
    count_t core_repair_fallbacks = 0;
  };
  const ApplyStats& apply_stats() const { return apply_stats_; }

  /// Cheap-tier rows (with incremental-update counts) followed by the
  /// rebuild tier's per-slot rows when the inner context exists.
  ContextStats stats();

 private:
  struct CheapCounters {
    bool built = false;
    count_t builds = 0;
    count_t hits = 0;
    count_t incremental_updates = 0;
  };

  void grow_tracked_arrays();
  void rebuild_union_find();
  void canonicalize_components();
  void build_cores_full(bool count_as_fallback);
  void repair_cores();
  void recompute_levels();

  MutableHypergraph graph_;

  // degrees
  CheapCounters degrees_counters_;
  std::vector<index_t> degrees_;

  // histograms
  CheapCounters vertex_hist_counters_;
  Histogram vertex_hist_;
  CheapCounters edge_hist_counters_;
  Histogram edge_hist_;

  // components
  CheapCounters components_counters_;
  detail::UnionFind uf_;
  bool uf_stale_ = false;         ///< deletion happened; rebuild UF
  bool components_dirty_ = false; ///< canonical output needs refresh
  HyperComponents components_;

  // cores
  CheapCounters cores_counters_;
  HyperCoreResult cores_;                      // stable id space
  std::vector<count_t> core_count_v_;          // #vertices per exact core
  std::vector<count_t> core_count_e_;          // #edges per exact core
  count_t reduced_edge_count_ = 0;             // live edges in level-0
  std::vector<index_t> pending_seeds_;         // dirty vertices (stable)
  std::vector<index_t> pending_dead_vertices_;
  std::vector<index_t> pending_dead_edges_;
  bool cores_dirty_ = false;
  // BFS scratch, epoch-stamped to avoid O(V) clears per repair.
  std::vector<std::uint64_t> vertex_mark_;
  std::vector<std::uint64_t> edge_mark_;
  std::uint64_t mark_epoch_ = 0;
  std::vector<index_t> vertex_local_;  // stable -> local repair id
  double repair_threshold_ = 0.5;
  PeelStats peel_stats_;

  // rebuild tier
  std::unique_ptr<AnalysisContext> analysis_;
  std::uint64_t analysis_version_ = 0;

  ApplyStats apply_stats_;
};

}  // namespace hp::hyper
