// DirtyRegion: the set of vertices and hyperedges touched by mutations
// since the last apply/drain, with the *pre-mutation* value captured at
// first touch.
//
// The old values are what make incremental artifact maintenance
// possible: a degree histogram can move a vertex from its old bucket to
// its new one only if somebody remembered the old bucket. The
// MutableHypergraph records each vertex/edge at most once per drain
// window (first touch wins), so the region is a delta between two
// consistent states, not a mutation log.
#pragma once

#include <vector>

#include "util/common.hpp"

namespace hp::hyper {

/// A vertex touched since the last drain. `old_degree` is its degree at
/// the start of the window; `existed` is false for vertices created
/// inside the window (their old degree is meaningless).
struct DirtyVertex {
  index_t id = kInvalidIndex;
  index_t old_degree = 0;
  bool existed = true;
};

/// A hyperedge touched since the last drain. `old_size` is its
/// cardinality at the start of the window; `existed` is false for edges
/// inserted inside the window.
struct DirtyEdge {
  index_t id = kInvalidIndex;
  index_t old_size = 0;
  bool existed = true;
};

/// Accumulated delta between two consistent MutableHypergraph states.
struct DirtyRegion {
  std::vector<DirtyVertex> vertices;  ///< unique ids, first-touch order
  std::vector<DirtyEdge> edges;       ///< unique ids, first-touch order
  /// Number of effective mutations in the window (no-ops excluded).
  count_t mutations = 0;
  /// True when any pin or edge was removed; connectivity can only merge
  /// under pure insertion, so this flag selects the union-find fast
  /// path vs the rebuild-on-deletion fallback.
  bool structural_removal = false;

  bool empty() const { return mutations == 0; }

  void clear() {
    vertices.clear();
    edges.clear();
    mutations = 0;
    structural_removal = false;
  }
};

}  // namespace hp::hyper
