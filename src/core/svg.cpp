#include "core/svg.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "core/projection.hpp"

namespace hp::hyper {

std::string to_svg(const Hypergraph& h, const std::vector<Point>& positions,
                   const std::vector<Fig3Class>& classes,
                   const SvgStyle& style) {
  const std::size_t total = h.num_vertices() + h.num_edges();
  HP_REQUIRE(positions.size() == total, "to_svg: position count mismatch");
  HP_REQUIRE(classes.size() == total, "to_svg: class count mismatch");

  std::ostringstream out;
  out << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << style.width
      << "\" height=\"" << style.height << "\" viewBox=\"0 0 " << style.width
      << ' ' << style.height << "\">\n";
  out << "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";

  // Membership edges first (under the nodes).
  out << "<g stroke=\"" << style.edge_stroke
      << "\" stroke-width=\"0.4\" opacity=\"0.7\">\n";
  for (index_t e = 0; e < h.num_edges(); ++e) {
    const Point& pe = positions[h.num_vertices() + e];
    for (index_t v : h.vertices_of(e)) {
      const Point& pv = positions[v];
      out << "<line x1=\"" << pv.x << "\" y1=\"" << pv.y << "\" x2=\""
          << pe.x << "\" y2=\"" << pe.y << "\"/>\n";
    }
  }
  out << "</g>\n";

  // Proteins: circles.
  for (index_t v = 0; v < h.num_vertices(); ++v) {
    const bool core = classes[v] == Fig3Class::kCoreProtein;
    const double r =
        style.protein_radius * (core ? style.core_scale : 1.0);
    out << "<circle cx=\"" << positions[v].x << "\" cy=\"" << positions[v].y
        << "\" r=\"" << r << "\" fill=\""
        << (core ? style.core_protein_fill : style.protein_fill) << "\"/>\n";
  }
  // Complexes: squares.
  for (index_t e = 0; e < h.num_edges(); ++e) {
    const std::size_t node = h.num_vertices() + e;
    const bool core = classes[node] == Fig3Class::kCoreComplex;
    const double s =
        style.complex_half_side * (core ? style.core_scale : 1.0);
    out << "<rect x=\"" << positions[node].x - s << "\" y=\""
        << positions[node].y - s << "\" width=\"" << 2 * s << "\" height=\""
        << 2 * s << "\" fill=\""
        << (core ? style.core_complex_fill : style.complex_fill) << "\"/>\n";
  }

  // Legend, matching the paper's caption.
  out << "<g font-family=\"sans-serif\" font-size=\"14\">\n"
      << "<circle cx=\"20\" cy=\"20\" r=\"5\" fill=\"" << style.protein_fill
      << "\"/><text x=\"32\" y=\"25\">protein</text>\n"
      << "<circle cx=\"20\" cy=\"44\" r=\"5\" fill=\""
      << style.core_protein_fill
      << "\"/><text x=\"32\" y=\"49\">core protein</text>\n"
      << "<rect x=\"15\" y=\"63\" width=\"10\" height=\"10\" fill=\""
      << style.complex_fill
      << "\"/><text x=\"32\" y=\"73\">complex</text>\n"
      << "<rect x=\"15\" y=\"87\" width=\"10\" height=\"10\" fill=\""
      << style.core_complex_fill
      << "\"/><text x=\"32\" y=\"97\">core complex</text>\n"
      << "</g>\n";
  out << "</svg>\n";
  return out.str();
}

std::string render_fig3_svg(const Hypergraph& h,
                            const std::vector<index_t>& vertex_core,
                            const std::vector<index_t>& edge_core, index_t k,
                            const LayoutParams& layout,
                            const SvgStyle& style) {
  const graph::Graph b = bipartite_graph(h);
  std::vector<Point> positions = force_layout(b, layout);
  fit_to_canvas(positions, style.width, style.height, 12.0);
  return to_svg(h, positions, fig3_classes(h, vertex_core, edge_core, k),
                style);
}

void save_svg(const std::string& svg, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error{"save_svg: cannot open " + path};
  out << svg;
  if (!out) throw std::runtime_error{"save_svg: write failed for " + path};
}

}  // namespace hp::hyper
