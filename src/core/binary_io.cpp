#include "core/binary_io.hpp"

#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/declared_sizes.hpp"

namespace hp::hyper {

namespace {

constexpr char kMagic[4] = {'H', 'P', 'H', 'G'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void put(std::string& out, T value) {
  char bytes[sizeof(T)];
  std::memcpy(bytes, &value, sizeof(T));
  out.append(bytes, sizeof(T));
}

template <typename T>
T get(const std::string& in, std::size_t& cursor) {
  if (cursor + sizeof(T) > in.size()) {
    throw ParseError{"binary hypergraph: truncated input"};
  }
  T value;
  std::memcpy(&value, in.data() + cursor, sizeof(T));
  cursor += sizeof(T);
  return value;
}

}  // namespace

std::string to_binary(const Hypergraph& h) {
  std::string out;
  out.reserve(24 + (h.num_edges() + 1) * 8 +
              static_cast<std::size_t>(h.num_pins()) * 4);
  out.append(kMagic, 4);
  put<std::uint32_t>(out, kVersion);
  put<std::uint32_t>(out, h.num_vertices());
  put<std::uint32_t>(out, h.num_edges());
  put<std::uint64_t>(out, h.num_pins());
  std::uint64_t offset = 0;
  put<std::uint64_t>(out, offset);
  for (index_t e = 0; e < h.num_edges(); ++e) {
    offset += h.edge_size(e);
    put<std::uint64_t>(out, offset);
  }
  for (index_t e = 0; e < h.num_edges(); ++e) {
    for (index_t v : h.vertices_of(e)) put<std::uint32_t>(out, v);
  }
  return out;
}

Hypergraph from_binary(const std::string& bytes) {
  std::size_t cursor = 0;
  if (bytes.size() < 4 || std::memcmp(bytes.data(), kMagic, 4) != 0) {
    throw ParseError{"binary hypergraph: bad magic"};
  }
  cursor = 4;
  const auto version = get<std::uint32_t>(bytes, cursor);
  if (version != kVersion) {
    throw ParseError{"binary hypergraph: unsupported version " +
                     std::to_string(version)};
  }
  const auto num_vertices = get<std::uint32_t>(bytes, cursor);
  const auto num_edges = get<std::uint32_t>(bytes, cursor);
  const auto num_pins = get<std::uint64_t>(bytes, cursor);

  // Validate the total length before allocating anything: a corrupted
  // header must not trigger multi-gigabyte allocations. The shared
  // coarse bounds (io::check_declared_sizes) come first so the exact
  // size equation below cannot overflow; num_vertices never enters that
  // equation (isolated vertices occupy no bytes), which is why it needs
  // the declared-entity bound -- without it a flipped header word makes
  // the builder commit tens of gigabytes of per-vertex offsets.
  io::check_declared_sizes(num_vertices, num_edges, num_pins, bytes.size(),
                           "binary hypergraph");
  const std::size_t expected_size =
      24 + (static_cast<std::size_t>(num_edges) + 1) * 8 +
      static_cast<std::size_t>(num_pins) * 4;
  if (bytes.size() != expected_size) {
    throw ParseError{"binary hypergraph: size mismatch (header declares " +
                     std::to_string(expected_size) + " bytes, got " +
                     std::to_string(bytes.size()) + ")"};
  }

  std::vector<std::uint64_t> offsets(static_cast<std::size_t>(num_edges) + 1);
  for (auto& o : offsets) o = get<std::uint64_t>(bytes, cursor);
  if (offsets.front() != 0 || offsets.back() != num_pins) {
    throw ParseError{"binary hypergraph: inconsistent offsets"};
  }
  for (std::size_t i = 1; i < offsets.size(); ++i) {
    if (offsets[i] < offsets[i - 1]) {
      throw ParseError{"binary hypergraph: offsets not monotone"};
    }
  }

  HypergraphBuilder builder{num_vertices};
  std::vector<index_t> members;
  for (index_t e = 0; e < num_edges; ++e) {
    members.clear();
    for (std::uint64_t i = offsets[e]; i < offsets[e + 1]; ++i) {
      const auto v = get<std::uint32_t>(bytes, cursor);
      if (v >= num_vertices) {
        throw ParseError{"binary hypergraph: member vertex out of range"};
      }
      members.push_back(v);
    }
    if (members.empty()) {
      throw ParseError{"binary hypergraph: empty hyperedge"};
    }
    builder.add_edge(members);
  }
  if (cursor != bytes.size()) {
    throw ParseError{"binary hypergraph: trailing bytes"};
  }
  return builder.build();
}

void save_binary(const Hypergraph& h, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error{"save_binary: cannot open " + path};
  const std::string bytes = to_binary(h);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out) throw std::runtime_error{"save_binary: write failed for " + path};
}

Hypergraph load_binary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error{"load_binary: cannot open " + path};
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return from_binary(buffer.str());
}

}  // namespace hp::hyper
