// Generalized cores of a hypergraph.
//
// The paper's k-core counts how many hyperedges a vertex belongs to.
// Batagelj & Zaversnik's generalized-core framework replaces that count
// with any monotone vertex measure p(v, residual); peeling vertices with
// p < threshold yields the "p-core" for every threshold in one pass
// whenever p is local and monotone decreasing under deletions. We
// provide the measures relevant to the protein-complex setting:
//
//   * kDegree       -- |incident live hyperedges| (the paper's k-core,
//                      but WITHOUT the reducedness rule: hyperedges are
//                      never deleted, only emptied; useful as a cheaper,
//                      weaker notion and as a cross-check)
//   * kPinWeight    -- sum over incident live hyperedges of 1/|f|
//                      (large complexes count less; a protein deep in
//                      many small specific complexes outranks one buried
//                      in a single huge pulldown)
//   * kNeighborhood -- |distinct live co-members| (the d2(v) measure
//                      from the paper's cover analysis)
//
// Measures take real values, so thresholds are doubles and the result
// reports, per vertex, the largest threshold at which it survives
// (its "core value").
#pragma once

#include <vector>

#include "core/hypergraph.hpp"
#include "core/peel/peel_stats.hpp"

namespace hp::hyper {

enum class CoreMeasure { kDegree, kPinWeight, kNeighborhood };

struct GeneralizedCoreResult {
  /// value[v] = sup of thresholds t such that v is in the t-core
  /// (equivalently: the measure of v at the moment it is peeled in the
  /// min-first peeling order, made monotone over the order).
  std::vector<double> value;
  double max_value = 0.0;

  /// Vertices with value >= t.
  std::vector<index_t> core_vertices(double t) const;
};

/// Min-first generalized peeling: repeatedly remove the vertex with the
/// smallest current measure; the running maximum of removal measures is
/// each vertex's core value (the standard generalized-core algorithm).
/// O(|E| * Delta_V + |V| log |V|)-ish with a lazy heap (the shared
/// instrumented LazyPeelHeap from core/peel/frontier.hpp).
GeneralizedCoreResult generalized_core(const Hypergraph& h,
                                       CoreMeasure measure);

/// Instrumented variant: substrate deletions plus the lazy heap's
/// frontier_pushes / frontier_wasted accumulate into `*stats`.
GeneralizedCoreResult generalized_core(const Hypergraph& h,
                                       CoreMeasure measure,
                                       PeelStats* stats);

/// Evaluate the measure of every vertex on the intact hypergraph
/// (exposed for tests and for ranking reports).
std::vector<double> measure_values(const Hypergraph& h, CoreMeasure measure);

}  // namespace hp::hyper
