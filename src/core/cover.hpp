// Greedy minimum-weight vertex cover of a hypergraph (Fig. 5).
//
// Given non-negative vertex weights w, find C ⊆ V hitting every
// hyperedge with small total weight. The greedy rule repeatedly picks
// the vertex minimizing the current cost
//     alpha(v) = w(v) / |adj(v) ∩ F_i|
// (its weight spread over the hyperedges it would newly cover), deletes
// the covered hyperedges, and repeats until every hyperedge is covered.
// This is the Johnson-Chvatal-Lovasz H_m = O(log m) approximation for
// set cover, m = |F|.
//
// The paper applies this to TAP bait selection: a cover is a candidate
// bait set guaranteed to pull down every complex. Weight choices:
//   * unit weights  -> minimum-cardinality cover (paper: 109 proteins);
//   * w(v) = deg(v)^2 -> biases toward low-degree baits, which pull down
//     their complexes less ambiguously (paper: 233 proteins, avg degree
//     down from 3.7 to 1.14).
#pragma once

#include <vector>

#include "core/hypergraph.hpp"

namespace hp::hyper {

struct CoverResult {
  std::vector<index_t> vertices;  ///< the cover, in selection order
  double total_weight = 0.0;      ///< sum of selected weights
  /// Average (original) degree of the cover's vertices -- the bait
  /// quality metric the paper reports.
  double average_degree = 0.0;
  /// Greedy lower bound on OPT: total_weight / H_m. Any feasible cover
  /// weighs at least this much.
  double lower_bound = 0.0;
};

/// Standard weight vectors.
std::vector<double> unit_weights(const Hypergraph& h);
std::vector<double> degree_squared_weights(const Hypergraph& h);

/// Greedy weighted vertex cover. `weights` must have one non-negative
/// entry per vertex; every hyperedge must be non-empty (guaranteed by
/// HypergraphBuilder). Runs in O(|E| log |V| + sum_v d2(v)) time via a
/// lazy-deletion heap.
CoverResult greedy_vertex_cover(const Hypergraph& h,
                                const std::vector<double>& weights);

/// True if `cover` hits every hyperedge of h.
bool is_vertex_cover(const Hypergraph& h, const std::vector<index_t>& cover);

/// Mean original degree of a vertex set (0 for an empty set).
double average_degree(const Hypergraph& h, const std::vector<index_t>& set);

/// H_m = 1 + 1/2 + ... + 1/m (the greedy approximation factor).
double harmonic(index_t m);

}  // namespace hp::hyper
