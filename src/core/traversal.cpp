#include "core/traversal.hpp"

#include <algorithm>

#include "obs/trace.hpp"
#include "par/thread_pool.hpp"

namespace hp::hyper {

std::vector<index_t> bfs_distances(const Hypergraph& h, index_t source) {
  HP_REQUIRE(source < h.num_vertices(), "bfs_distances: source out of range");
  std::vector<index_t> dist(h.num_vertices(), kInvalidIndex);
  std::vector<bool> edge_seen(h.num_edges(), false);
  std::vector<index_t> frontier{source};
  std::vector<index_t> next;
  dist[source] = 0;
  index_t level = 0;
  while (!frontier.empty()) {
    ++level;
    next.clear();
    for (index_t u : frontier) {
      for (index_t e : h.edges_of(u)) {
        if (edge_seen[e]) continue;
        edge_seen[e] = true;
        for (index_t v : h.vertices_of(e)) {
          if (dist[v] == kInvalidIndex) {
            dist[v] = level;
            next.push_back(v);
          }
        }
      }
    }
    frontier.swap(next);
  }
  return dist;
}

index_t HyperComponents::largest() const {
  HP_REQUIRE(count > 0, "HyperComponents::largest: no components");
  return static_cast<index_t>(
      std::max_element(vertex_counts.begin(), vertex_counts.end()) -
      vertex_counts.begin());
}

HyperComponents connected_components(const Hypergraph& h) {
  HP_TRACE_SPAN("traversal.connected_components");
  HyperComponents comp;
  comp.vertex_label.assign(h.num_vertices(), kInvalidIndex);
  comp.edge_label.assign(h.num_edges(), kInvalidIndex);
  std::vector<index_t> stack;
  for (index_t start = 0; start < h.num_vertices(); ++start) {
    if (comp.vertex_label[start] != kInvalidIndex) continue;
    const index_t id = comp.count++;
    comp.vertex_counts.push_back(0);
    comp.edge_counts.push_back(0);
    stack.push_back(start);
    comp.vertex_label[start] = id;
    while (!stack.empty()) {
      const index_t u = stack.back();
      stack.pop_back();
      ++comp.vertex_counts[id];
      for (index_t e : h.edges_of(u)) {
        if (comp.edge_label[e] != kInvalidIndex) continue;
        comp.edge_label[e] = id;
        ++comp.edge_counts[id];
        for (index_t v : h.vertices_of(e)) {
          if (comp.vertex_label[v] == kInvalidIndex) {
            comp.vertex_label[v] = id;
            stack.push_back(v);
          }
        }
      }
    }
  }
  return comp;
}

namespace {

/// Per-lane BFS workspace reused across sources. Visitation is
/// epoch-stamped (one epoch per source), so successive BFS runs skip
/// the O(|V| + |F|) reset the one-shot bfs_distances pays.
struct BfsScratch {
  std::vector<index_t> vertex_epoch;
  std::vector<index_t> edge_epoch;
  std::vector<index_t> frontier;
  std::vector<index_t> next;
  index_t epoch = 0;

  void ensure(const Hypergraph& h) {
    if (vertex_epoch.size() == h.num_vertices()) return;
    vertex_epoch.assign(h.num_vertices(), 0);
    edge_epoch.assign(h.num_edges(), 0);
  }
};

/// One hyperpath BFS from `source`, folding distances straight into the
/// partial sums (the distance array itself is scratch).
void accumulate_bfs(const Hypergraph& h, index_t source, BfsScratch& s,
                    count_t& total, count_t& pairs, index_t& diameter) {
  s.ensure(h);
  const index_t epoch = ++s.epoch;
  s.frontier.clear();
  s.frontier.push_back(source);
  s.vertex_epoch[source] = epoch;
  index_t level = 0;
  while (!s.frontier.empty()) {
    ++level;
    s.next.clear();
    for (index_t u : s.frontier) {
      for (index_t e : h.edges_of(u)) {
        if (s.edge_epoch[e] == epoch) continue;
        s.edge_epoch[e] = epoch;
        for (index_t v : h.vertices_of(e)) {
          if (s.vertex_epoch[v] == epoch) continue;
          s.vertex_epoch[v] = epoch;
          s.next.push_back(v);
          total += level;
          ++pairs;
          diameter = std::max(diameter, level);
        }
      }
    }
    s.frontier.swap(s.next);
  }
}

}  // namespace

HyperPathSummary path_summary(const Hypergraph& h) {
  HP_TRACE_SPAN("traversal.path_summary");
  HyperPathSummary summary;
  const index_t n = h.num_vertices();

  // All-sources sweep on the shared pool: each lane owns one BfsScratch
  // plus exact integer partials, merged lane-by-lane afterwards --
  // schedule-independent, so HP_THREADS=1 and =16 agree bit-for-bit.
  struct LanePartial {
    BfsScratch scratch;
    count_t total = 0;
    count_t pairs = 0;
    index_t diameter = 0;
  };
  std::vector<LanePartial> lanes(
      static_cast<std::size_t>(par::ThreadPool::global().thread_count()));
  par::parallel_for(0, n, /*grain=*/4, [&](index_t begin, index_t end,
                                           int lane) {
    LanePartial& p = lanes[static_cast<std::size_t>(lane)];
    for (index_t s = begin; s < end; ++s) {
      accumulate_bfs(h, s, p.scratch, p.total, p.pairs, p.diameter);
    }
  });

  count_t total = 0;
  count_t pairs = 0;
  index_t diameter = 0;
  for (const LanePartial& p : lanes) {
    total += p.total;
    pairs += p.pairs;
    diameter = std::max(diameter, p.diameter);
  }
  summary.diameter = diameter;
  summary.connected_pairs = pairs;
  summary.average_length =
      pairs > 0 ? static_cast<double>(total) / static_cast<double>(pairs)
                : 0.0;
  return summary;
}

}  // namespace hp::hyper
