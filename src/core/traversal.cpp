#include "core/traversal.hpp"

#include <algorithm>

#include "obs/trace.hpp"

#ifdef HP_HAVE_OPENMP
#include <omp.h>
#endif

namespace hp::hyper {

std::vector<index_t> bfs_distances(const Hypergraph& h, index_t source) {
  HP_REQUIRE(source < h.num_vertices(), "bfs_distances: source out of range");
  std::vector<index_t> dist(h.num_vertices(), kInvalidIndex);
  std::vector<bool> edge_seen(h.num_edges(), false);
  std::vector<index_t> frontier{source};
  std::vector<index_t> next;
  dist[source] = 0;
  index_t level = 0;
  while (!frontier.empty()) {
    ++level;
    next.clear();
    for (index_t u : frontier) {
      for (index_t e : h.edges_of(u)) {
        if (edge_seen[e]) continue;
        edge_seen[e] = true;
        for (index_t v : h.vertices_of(e)) {
          if (dist[v] == kInvalidIndex) {
            dist[v] = level;
            next.push_back(v);
          }
        }
      }
    }
    frontier.swap(next);
  }
  return dist;
}

index_t HyperComponents::largest() const {
  HP_REQUIRE(count > 0, "HyperComponents::largest: no components");
  return static_cast<index_t>(
      std::max_element(vertex_counts.begin(), vertex_counts.end()) -
      vertex_counts.begin());
}

HyperComponents connected_components(const Hypergraph& h) {
  HP_TRACE_SPAN("traversal.connected_components");
  HyperComponents comp;
  comp.vertex_label.assign(h.num_vertices(), kInvalidIndex);
  comp.edge_label.assign(h.num_edges(), kInvalidIndex);
  std::vector<index_t> stack;
  for (index_t start = 0; start < h.num_vertices(); ++start) {
    if (comp.vertex_label[start] != kInvalidIndex) continue;
    const index_t id = comp.count++;
    comp.vertex_counts.push_back(0);
    comp.edge_counts.push_back(0);
    stack.push_back(start);
    comp.vertex_label[start] = id;
    while (!stack.empty()) {
      const index_t u = stack.back();
      stack.pop_back();
      ++comp.vertex_counts[id];
      for (index_t e : h.edges_of(u)) {
        if (comp.edge_label[e] != kInvalidIndex) continue;
        comp.edge_label[e] = id;
        ++comp.edge_counts[id];
        for (index_t v : h.vertices_of(e)) {
          if (comp.vertex_label[v] == kInvalidIndex) {
            comp.vertex_label[v] = id;
            stack.push_back(v);
          }
        }
      }
    }
  }
  return comp;
}

HyperPathSummary path_summary(const Hypergraph& h) {
  HP_TRACE_SPAN("traversal.path_summary");
  HyperPathSummary summary;
  const index_t n = h.num_vertices();
  count_t total = 0;
  count_t pairs = 0;
  index_t diameter = 0;
#ifdef HP_HAVE_OPENMP
#pragma omp parallel for schedule(dynamic, 8) \
    reduction(+ : total, pairs) reduction(max : diameter)
#endif
  for (index_t s = 0; s < n; ++s) {
    const std::vector<index_t> dist = bfs_distances(h, s);
    for (index_t v = 0; v < n; ++v) {
      if (v == s || dist[v] == kInvalidIndex) continue;
      total += dist[v];
      ++pairs;
      diameter = std::max(diameter, dist[v]);
    }
  }
  summary.diameter = diameter;
  summary.connected_pairs = pairs;
  summary.average_length =
      pairs > 0 ? static_cast<double>(total) / static_cast<double>(pairs)
                : 0.0;
  return summary;
}

}  // namespace hp::hyper
