// Summary statistics of a hypergraph: everything section 2 and Table 1
// of the paper report.
#pragma once

#include <string>

#include "core/hypergraph.hpp"
#include "core/traversal.hpp"
#include "util/histogram.hpp"
#include "util/linreg.hpp"

namespace hp::hyper {

/// One-stop structural summary (the Table 1 row minus the core columns).
struct HypergraphSummary {
  index_t num_vertices = 0;       ///< |V|
  index_t num_edges = 0;          ///< |F|
  count_t num_pins = 0;           ///< |E|
  index_t max_vertex_degree = 0;  ///< Delta_V
  index_t max_edge_size = 0;      ///< Delta_F
  index_t max_degree2 = 0;        ///< Delta_2,F
  index_t num_components = 0;
  index_t largest_component_vertices = 0;
  index_t largest_component_edges = 0;
  index_t degree_one_vertices = 0;  ///< paper: 846 for Cellzome
  index_t isolated_vertices = 0;
  double mean_vertex_degree = 0.0;
  double mean_edge_size = 0.0;
};

HypergraphSummary summarize(const Hypergraph& h);

/// Assemble the summary from precomputed parts (the AnalysisContext
/// path: components and the overlap table are shared artifacts there,
/// not rebuilt per summary).
HypergraphSummary summarize(const Hypergraph& h,
                            const HyperComponents& components,
                            index_t max_degree2);

/// Histogram of vertex degrees (index = degree).
Histogram vertex_degree_histogram(const Hypergraph& h);

/// Histogram of hyperedge cardinalities.
Histogram edge_size_histogram(const Hypergraph& h);

/// Power-law fit of the vertex degree distribution (Fig. 1:
/// log10 c = 3.161, gamma = 2.528, R^2 = 0.963).
PowerLawFit vertex_degree_power_law(const Hypergraph& h);

/// Same fit from an already-computed degree histogram.
PowerLawFit vertex_degree_power_law(const Histogram& degree_histogram);

/// Both candidate fits of the complex size distribution. The paper
/// observes neither is good; callers compare the two R^2 values.
struct EdgeSizeFits {
  PowerLawFit power;
  ExponentialFit exponential;
};

EdgeSizeFits edge_size_fits(const Hypergraph& h);

/// Same fits from an already-computed size histogram.
EdgeSizeFits edge_size_fits(const Histogram& size_histogram);

/// Human-readable multi-line rendering of a summary.
std::string to_string(const HypergraphSummary& s);

}  // namespace hp::hyper
