// Bulk-synchronous hypergraph k-core decomposition on the shared
// work-stealing pool (src/par/).
//
// The paper closes its section 3 with: "for large hypergraphs, a
// parallel algorithm will need to be designed". This module supplies
// one. Instead of the sequential cascade with a persistent overlap
// table, each peel round removes the whole sub-threshold frontier at
// once, then re-checks maximality only for the edges that shrank, using
// an overlap-counting sweep over those edges' residual members
// (parallel over touched edges). Deterministic: for hyperedges whose
// residual sets become identical within a round, the lowest id survives.
//
// Frontier maintenance: rounds no longer rescan |V| vertices. Level
// seeds drain from lazy degree buckets, in-level rounds consume the
// per-lane degree-drop bags the previous round's edge deletions
// produced, and the bulk erase phases run on the pool with atomic
// counter decrements plus epoch-stamped touched-edge dedupe
// (core/peel/frontier.hpp). The legacy rescan loop survives as
// core_decomposition_parallel_scan, the differential-testing oracle.
//
// The result is bit-identical to core_decomposition() in vertex core
// numbers, maximum core, and per-level sizes; edge representative choice
// among equal residual sets may differ (see kcore.hpp).
#pragma once

#include "core/kcore.hpp"

namespace hp::hyper {

/// Parallel core decomposition. `num_threads` <= 0 uses the shared
/// pool's full lane count (HP_THREADS or hardware_concurrency);
/// positive values cap the lanes for this call only, with 1 running the
/// same bulk-synchronous algorithm serially inline.
HyperCoreResult core_decomposition_parallel(const Hypergraph& h,
                                            int num_threads = 0);

/// Instrumented variant: substrate counters accumulate into `*stats`
/// when non-null (rounds = bulk frontier rounds, peak queue = largest
/// frontier).
HyperCoreResult core_decomposition_parallel(const Hypergraph& h,
                                            int num_threads,
                                            PeelStats* stats);

/// Legacy scan-and-stamp bulk-synchronous engine: every cascade round
/// re-derives the frontier with an O(|V|) scan. Kept as the
/// differential-testing oracle for the frontier engine; outputs are
/// fully bit-identical (including edge_core and in_reduced).
HyperCoreResult core_decomposition_parallel_scan(const Hypergraph& h,
                                                 int num_threads = 0,
                                                 PeelStats* stats = nullptr);

}  // namespace hp::hyper
