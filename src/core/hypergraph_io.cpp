#include "core/hypergraph_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/stringutil.hpp"

namespace hp::hyper {

namespace {

/// Parse + bounds-check a header count through the loader-shared policy
/// (io::check_declared_count): negatives and counts that would wrap (or
/// bomb) the 32-bit index space fail with ParseError *before* any cast
/// or allocation.
index_t parse_entity_count(std::string_view field, std::size_t line_no,
                           const char* what) {
  return io::check_declared_count(parse_int(field), what,
                                  "line " + std::to_string(line_no));
}

}  // namespace

std::string to_text(const Hypergraph& h) {
  std::ostringstream out;
  out << "%hypergraph " << h.num_vertices() << ' ' << h.num_edges() << '\n';
  for (index_t e = 0; e < h.num_edges(); ++e) {
    bool first = true;
    for (index_t v : h.vertices_of(e)) {
      if (!first) out << ' ';
      out << v;
      first = false;
    }
    out << '\n';
  }
  return out.str();
}

Hypergraph from_text(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;
  bool header_seen = false;
  index_t num_vertices = 0;
  index_t declared_edges = 0;
  HypergraphBuilder builder{0};
  std::vector<index_t> members;
  index_t edges_read = 0;

  while (std::getline(in, line)) {
    ++line_no;
    const std::string_view body = trim(line);
    if (body.empty() || body.front() == '#') continue;
    if (body.front() == '%') {
      const auto fields = split_whitespace(body.substr(1));
      if (fields.size() != 3 || fields[0] != "hypergraph") {
        throw ParseError{"line " + std::to_string(line_no) +
                         ": bad header, expected '%hypergraph <V> <F>'"};
      }
      num_vertices = parse_entity_count(fields[1], line_no, "vertex count");
      declared_edges = parse_entity_count(fields[2], line_no, "edge count");
      builder = HypergraphBuilder{num_vertices};
      header_seen = true;
      continue;
    }
    if (!header_seen) {
      throw ParseError{"line " + std::to_string(line_no) +
                       ": edge before %hypergraph header"};
    }
    members.clear();
    for (std::string_view field : split_whitespace(body)) {
      const long long v = parse_int(field);
      // Compare before narrowing: a 64-bit id like 2^32 must not wrap
      // into the valid range.
      if (v < 0 || v >= static_cast<long long>(num_vertices)) {
        throw ParseError{"line " + std::to_string(line_no) +
                         ": vertex id out of range"};
      }
      members.push_back(static_cast<index_t>(v));
    }
    builder.add_edge(members);
    ++edges_read;
  }
  if (!header_seen) throw ParseError{"missing %hypergraph header"};
  if (edges_read != declared_edges) {
    throw ParseError{"header declares " + std::to_string(declared_edges) +
                     " edges but file contains " + std::to_string(edges_read)};
  }
  return builder.build();
}

void save_text(const Hypergraph& h, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error{"save_text: cannot open " + path};
  out << to_text(h);
  if (!out) throw std::runtime_error{"save_text: write failed for " + path};
}

Hypergraph load_text(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error{"load_text: cannot open " + path};
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return from_text(buffer.str());
}

std::string to_hmetis(const Hypergraph& h) {
  std::ostringstream out;
  out << "% hyperproteome hMETIS export\n";
  out << h.num_edges() << ' ' << h.num_vertices() << '\n';
  for (index_t e = 0; e < h.num_edges(); ++e) {
    bool first = true;
    for (index_t v : h.vertices_of(e)) {
      if (!first) out << ' ';
      out << (v + 1);
      first = false;
    }
    out << '\n';
  }
  return out.str();
}

Hypergraph from_hmetis(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;
  bool header_seen = false;
  index_t num_vertices = 0;
  index_t declared_edges = 0;
  HypergraphBuilder builder{0};
  std::vector<index_t> members;
  index_t edges_read = 0;

  while (std::getline(in, line)) {
    ++line_no;
    const std::string_view body = trim(line);
    if (body.empty() || body.front() == '%') continue;
    const auto fields = split_whitespace(body);
    if (!header_seen) {
      if (fields.size() == 3) {
        throw ParseError{
            "hmetis line " + std::to_string(line_no) +
            ": weighted format (fmt field) is not supported"};
      }
      if (fields.size() != 2) {
        throw ParseError{"hmetis line " + std::to_string(line_no) +
                         ": expected '<edges> <vertices>' header"};
      }
      declared_edges =
          parse_entity_count(fields[0], line_no, "hyperedge count");
      num_vertices = parse_entity_count(fields[1], line_no, "vertex count");
      builder = HypergraphBuilder{num_vertices};
      header_seen = true;
      continue;
    }
    members.clear();
    for (std::string_view field : fields) {
      const long long v = parse_int(field);
      // Compare before narrowing (see from_text).
      if (v < 1 || v > static_cast<long long>(num_vertices)) {
        throw ParseError{"hmetis line " + std::to_string(line_no) +
                         ": vertex id out of range (ids are 1-based)"};
      }
      members.push_back(static_cast<index_t>(v - 1));
    }
    builder.add_edge(members);
    ++edges_read;
  }
  if (!header_seen) throw ParseError{"hmetis: missing header"};
  if (edges_read != declared_edges) {
    throw ParseError{"hmetis: header declares " +
                     std::to_string(declared_edges) + " hyperedges, found " +
                     std::to_string(edges_read)};
  }
  return builder.build();
}

void save_hmetis(const Hypergraph& h, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error{"save_hmetis: cannot open " + path};
  out << to_hmetis(h);
  if (!out) throw std::runtime_error{"save_hmetis: write failed for " + path};
}

Hypergraph load_hmetis(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error{"load_hmetis: cannot open " + path};
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return from_hmetis(buffer.str());
}

}  // namespace hp::hyper
