// Dual hypergraph: swap the roles of vertices and hyperedges.
//
// In the dual H* of H, each hyperedge of H becomes a vertex, and each
// vertex v of H becomes the hyperedge {edges containing v}. For the
// protein-complex data the dual views each protein as "the set of
// complexes it participates in" -- the object whose pairwise
// intersections generate the complex intersection graph. Duality is an
// involution up to vertices of degree 0 (which vanish, since empty
// hyperedges are not representable).
#pragma once

#include "core/hypergraph.hpp"

namespace hp::hyper {

/// Build the dual. Vertices of degree 0 in `h` produce no hyperedge in
/// the dual (and a warning is NOT raised; callers can compare pin
/// counts). Hyperedge e of `h` becomes dual vertex e.
Hypergraph dual(const Hypergraph& h);

}  // namespace hp::hyper
