#include "core/overlap.hpp"

#include <algorithm>

namespace hp::hyper {

OverlapTable::OverlapTable(const Hypergraph& h) : rows_(h.num_edges()) {
  // Process each vertex's incidence list: every pair of edges sharing
  // this vertex gains one unit of overlap.
  for (index_t v = 0; v < h.num_vertices(); ++v) {
    const auto edges = h.edges_of(v);
    for (std::size_t i = 0; i < edges.size(); ++i) {
      for (std::size_t j = i + 1; j < edges.size(); ++j) {
        ++rows_[edges[i]][edges[j]];
        ++rows_[edges[j]][edges[i]];
      }
    }
  }
}

index_t OverlapTable::overlap(index_t f, index_t g) const {
  if (f == g) return 0;
  const auto& row = rows_[f];
  const auto it = row.find(g);
  return it == row.end() ? 0 : it->second;
}

index_t OverlapTable::max_degree2() const {
  index_t best = 0;
  for (const auto& row : rows_) {
    best = std::max(best, static_cast<index_t>(row.size()));
  }
  return best;
}

std::vector<index_t> vertex_degree2(const Hypergraph& h) {
  std::vector<index_t> d2(h.num_vertices(), 0);
  std::vector<index_t> scratch;
  for (index_t v = 0; v < h.num_vertices(); ++v) {
    scratch.clear();
    for (index_t e : h.edges_of(v)) {
      for (index_t w : h.vertices_of(e)) {
        if (w != v) scratch.push_back(w);
      }
    }
    std::sort(scratch.begin(), scratch.end());
    scratch.erase(std::unique(scratch.begin(), scratch.end()), scratch.end());
    d2[v] = static_cast<index_t>(scratch.size());
  }
  return d2;
}

}  // namespace hp::hyper
