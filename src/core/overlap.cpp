#include "core/overlap.hpp"

#include <algorithm>

namespace hp::hyper {

std::vector<index_t> vertex_degree2(const Hypergraph& h) {
  std::vector<index_t> d2(h.num_vertices(), 0);
  std::vector<index_t> scratch;
  for (index_t v = 0; v < h.num_vertices(); ++v) {
    scratch.clear();
    for (index_t e : h.edges_of(v)) {
      for (index_t w : h.vertices_of(e)) {
        if (w != v) scratch.push_back(w);
      }
    }
    std::sort(scratch.begin(), scratch.end());
    scratch.erase(std::unique(scratch.begin(), scratch.end()), scratch.end());
    d2[v] = static_cast<index_t>(scratch.size());
  }
  return d2;
}

}  // namespace hp::hyper
