// Reference hypergraph k-core implementation using explicit set
// comparisons for the maximality test.
//
// This is the implementation the paper argues *against* on efficiency
// grounds ("We can detect non-maximal hyperedges by counting overlaps
// among hyperedges instead of comparing set memberships"). We keep it as
// (a) a differential-testing oracle for the optimized algorithm and
// (b) the baseline of the ablation benchmark bench_micro_kcore.
#pragma once

#include "core/kcore.hpp"

namespace hp::hyper {

/// Same contract as core_decomposition(), computed by repeated
/// rebuild-and-scan with O(|F|^2 * Delta_F) maximality checks per level.
HyperCoreResult core_decomposition_naive(const Hypergraph& h);

}  // namespace hp::hyper
