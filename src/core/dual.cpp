#include "core/dual.hpp"

namespace hp::hyper {

Hypergraph dual(const Hypergraph& h) {
  HypergraphBuilder builder{h.num_edges()};
  for (index_t v = 0; v < h.num_vertices(); ++v) {
    const auto edges = h.edges_of(v);
    if (edges.empty()) continue;
    builder.add_edge(edges);
  }
  return builder.build();
}

}  // namespace hp::hyper
