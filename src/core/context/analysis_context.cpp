#include "core/context/analysis_context.hpp"

#include "core/dual.hpp"
#include "core/reduce.hpp"
#include "par/thread_pool.hpp"

namespace hp::hyper {

namespace {

std::size_t vector_bytes(const std::vector<index_t>& v) {
  return v.size() * sizeof(index_t);
}

std::size_t components_bytes(const HyperComponents& c) {
  return vector_bytes(c.vertex_label) + vector_bytes(c.edge_label) +
         vector_bytes(c.vertex_counts) + vector_bytes(c.edge_counts);
}

std::size_t histogram_bytes(const Histogram& h) {
  return h.frequencies().size() * sizeof(std::size_t);
}

std::size_t cores_bytes(const HyperCoreResult& c) {
  return vector_bytes(c.vertex_core) + vector_bytes(c.edge_core) +
         vector_bytes(c.level_vertices) + vector_bytes(c.level_edges);
}

std::size_t sub_bytes(const SubHypergraph& s) {
  return s.hypergraph.storage_bytes() + vector_bytes(s.vertex_to_parent) +
         vector_bytes(s.edge_to_parent);
}

}  // namespace

const Hypergraph& AnalysisContext::dual() const {
  return dual_.get("context.build.dual",
                   [&] { return ::hp::hyper::dual(hypergraph_); });
}

const graph::Graph& AnalysisContext::clique_projection() const {
  return clique_.get("context.build.clique_projection",
                     [&] { return clique_expansion(hypergraph_); });
}

const std::vector<index_t>& AnalysisContext::star_baits() const {
  return star_baits_.get("context.build.star_baits",
                         [&] { return default_baits(hypergraph_); });
}

const graph::Graph& AnalysisContext::star_projection() const {
  return star_.get("context.build.star_projection", [&] {
    return star_expansion(hypergraph_, star_baits());
  });
}

const graph::Graph& AnalysisContext::intersection_projection() const {
  return intersection_.get("context.build.intersection_projection", [&] {
    return intersection_graph(hypergraph_, nullptr);
  });
}

const HyperComponents& AnalysisContext::components() const {
  return components_.get("context.build.components", [&] {
    return connected_components(hypergraph_);
  });
}

const Histogram& AnalysisContext::vertex_degree_histogram() const {
  return vertex_degree_histogram_.get(
      "context.build.vertex_degree_histogram",
      [&] { return ::hp::hyper::vertex_degree_histogram(hypergraph_); });
}

const Histogram& AnalysisContext::edge_size_histogram() const {
  return edge_size_histogram_.get(
      "context.build.edge_size_histogram",
      [&] { return ::hp::hyper::edge_size_histogram(hypergraph_); });
}

const OverlapTable& AnalysisContext::overlaps() const {
  return overlaps_.get("context.build.overlap_table",
                       [&] { return OverlapTable{hypergraph_}; });
}

const SubHypergraph& AnalysisContext::reduced() const {
  return reduced_.get("context.build.reduced_hypergraph",
                      [&] { return reduce(hypergraph_); });
}

const HyperCoreResult& AnalysisContext::cores() const {
  return cores_.get("context.build.core_decomposition", [&] {
    return core_decomposition(hypergraph_, &peel_stats_);
  });
}

const PeelStats& AnalysisContext::core_peel_stats() const {
  cores();  // ensure the decomposition (and its counters) exist
  return peel_stats_;
}

const HypergraphSummary& AnalysisContext::summary() const {
  return summary_.get("context.build.summary", [&] {
    return summarize(hypergraph_, components(), overlaps().max_degree2());
  });
}

const HyperPathSummary& AnalysisContext::paths() const {
  return paths_.get("context.build.path_summary",
                    [&] { return path_summary(hypergraph_); });
}

void AnalysisContext::prefetch() const {
  HP_TRACE_SPAN("context.prefetch");
  // Independent roots fan out; a task blocking in a sibling's call_once
  // only ever waits on a build that is actively running, and the slot
  // dependency graph is acyclic, so the group cannot deadlock.
  par::TaskGroup group;
  group.run([this] { dual(); });
  group.run([this] { clique_projection(); });
  group.run([this] { star_projection(); });  // pulls star_baits() first
  group.run([this] { intersection_projection(); });
  group.run([this] { components(); });
  group.run([this] { vertex_degree_histogram(); });
  group.run([this] { edge_size_histogram(); });
  group.run([this] { overlaps(); });
  group.run([this] { reduced(); });
  group.run([this] { cores(); });
  group.run([this] { paths(); });  // internally parallel; shares the pool
  group.wait();
  summary();  // components() and overlaps() are warm now
}

index_t AnalysisContext::rebase(Hypergraph h) {
  HP_TRACE_SPAN("context.apply.rebase");
  hypergraph_ = std::move(h);
  index_t reset_count = 0;
  reset_count += dual_.reset() ? 1 : 0;
  reset_count += clique_.reset() ? 1 : 0;
  reset_count += star_baits_.reset() ? 1 : 0;
  reset_count += star_.reset() ? 1 : 0;
  reset_count += intersection_.reset() ? 1 : 0;
  reset_count += components_.reset() ? 1 : 0;
  reset_count += vertex_degree_histogram_.reset() ? 1 : 0;
  reset_count += edge_size_histogram_.reset() ? 1 : 0;
  reset_count += overlaps_.reset() ? 1 : 0;
  reset_count += reduced_.reset() ? 1 : 0;
  if (cores_.reset()) {
    ++reset_count;
    peel_stats_ = PeelStats{};
  }
  reset_count += summary_.reset() ? 1 : 0;
  reset_count += paths_.reset() ? 1 : 0;
  return reset_count;
}

RepresentationCosts AnalysisContext::representation_costs() const {
  RepresentationCosts costs;
  costs.hypergraph_bytes = hypergraph_.storage_bytes();
  costs.hypergraph_pins = hypergraph_.num_pins();
  costs.clique_bytes = clique_projection().storage_bytes();
  costs.clique_edges = clique_projection().num_edges();
  costs.star_bytes = star_projection().storage_bytes();
  costs.star_edges = star_projection().num_edges();
  costs.intersection_bytes = intersection_projection().storage_bytes();
  costs.intersection_edges = intersection_projection().num_edges();
  return costs;
}

ContextStats AnalysisContext::stats() const {
  const auto graph_bytes = [](const graph::Graph& g) {
    return g.storage_bytes();
  };
  ContextStats out;
  out.artifacts.push_back(dual_.stats(
      "dual", [](const Hypergraph& d) { return d.storage_bytes(); }));
  out.artifacts.push_back(clique_.stats("clique projection", graph_bytes));
  out.artifacts.push_back(star_baits_.stats("star baits", vector_bytes));
  out.artifacts.push_back(star_.stats("star projection", graph_bytes));
  out.artifacts.push_back(
      intersection_.stats("intersection projection", graph_bytes));
  out.artifacts.push_back(components_.stats("components", components_bytes));
  out.artifacts.push_back(
      vertex_degree_histogram_.stats("vertex degree histogram",
                                     histogram_bytes));
  out.artifacts.push_back(
      edge_size_histogram_.stats("edge size histogram", histogram_bytes));
  out.artifacts.push_back(overlaps_.stats(
      "overlap table", [](const OverlapTable& t) { return t.storage_bytes(); }));
  out.artifacts.push_back(reduced_.stats("reduced hypergraph", sub_bytes));
  out.artifacts.push_back(cores_.stats("core decomposition", cores_bytes));
  out.artifacts.push_back(summary_.stats(
      "summary", [](const HypergraphSummary&) { return sizeof(HypergraphSummary); }));
  out.artifacts.push_back(paths_.stats(
      "path summary", [](const HyperPathSummary&) { return sizeof(HyperPathSummary); }));
  out.hypergraph_owned_bytes = hypergraph_.owned_bytes();
  out.hypergraph_mapped_bytes = hypergraph_.mapped_bytes();
  return out;
}

}  // namespace hp::hyper
