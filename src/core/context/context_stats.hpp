// Instrumentation for the AnalysisContext derived-artifact cache.
//
// Mirrors PeelStats in spirit: every number the memoization layer could
// hide (what was built, how long it took, what it weighs, how often the
// cache was hit) is surfaced as a counter, so "the context builds each
// artifact exactly once" is an observable (hp_cli --context-stats,
// bench_micro_context) rather than a comment.
#pragma once

#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "util/common.hpp"

namespace hp::hyper {

/// Counters for one memoized artifact slot.
struct ArtifactStats {
  std::string name;
  /// Accesses that had to build the artifact. On a static context this
  /// is 0 (never requested) or 1 (built); under mutation a slot can be
  /// invalidated and rebuilt, so builds can exceed 1 and
  /// `builds - invalidations` tells whether the slot is currently warm.
  count_t builds = 0;
  /// Accesses served from the cache after a build.
  count_t hits = 0;
  /// Times the slot was reset (value dropped) by rebase()/mutation.
  count_t invalidations = 0;
  /// In-place incremental updates applied to a built value instead of a
  /// rebuild (the mutable pipeline's cheap tier).
  count_t incremental_updates = 0;
  /// Wall-clock seconds spent building, summed over rebuilds.
  double build_seconds = 0.0;
  /// Bytes held by the cached artifact *right now* (0 until built, and
  /// back to 0 after an invalidation).
  std::size_t bytes = 0;
};

/// Snapshot of every slot of an AnalysisContext, in declaration order.
struct ContextStats {
  std::vector<ArtifactStats> artifacts;

  /// Base hypergraph storage, split by ownership: heap-owned CSR
  /// buffers versus pages borrowed from an mmap'd snapshot. A context
  /// opened from a .hps snapshot reports its CSR arrays under
  /// `mapped`, not `owned` -- mapped pages are shared, evictable file
  /// cache, so counting them as heap usage would misstate the
  /// process's real footprint.
  std::size_t hypergraph_owned_bytes = 0;
  std::size_t hypergraph_mapped_bytes = 0;

  count_t total_builds() const;
  count_t total_hits() const;
  count_t total_invalidations() const;
  count_t total_incremental_updates() const;
  double total_build_seconds() const;
  std::size_t total_bytes() const;
};

/// Flat "context.<slot>.*" metric samples (builds/hits counters,
/// build_seconds/bytes gauges) plus "context.total.*" aggregates, for
/// the shared obs exporters. Slot names are slugged (spaces -> '_').
obs::MetricsSnapshot to_metrics(const ContextStats& stats);

/// Publish the snapshot into the global obs registry with absolute
/// (set) semantics; the CLI calls this before a --metrics export.
void publish_metrics(const ContextStats& stats);

/// Multi-line human-readable rendering (CLI --context-stats, benches);
/// formats through obs::render_table, the shared metrics table
/// exporter.
std::string to_string(const ContextStats& stats);

}  // namespace hp::hyper
