#include "core/context/context_stats.hpp"

namespace hp::hyper {

count_t ContextStats::total_builds() const {
  count_t total = 0;
  for (const ArtifactStats& a : artifacts) total += a.builds;
  return total;
}

count_t ContextStats::total_hits() const {
  count_t total = 0;
  for (const ArtifactStats& a : artifacts) total += a.hits;
  return total;
}

count_t ContextStats::total_invalidations() const {
  count_t total = 0;
  for (const ArtifactStats& a : artifacts) total += a.invalidations;
  return total;
}

count_t ContextStats::total_incremental_updates() const {
  count_t total = 0;
  for (const ArtifactStats& a : artifacts) total += a.incremental_updates;
  return total;
}

double ContextStats::total_build_seconds() const {
  double total = 0.0;
  for (const ArtifactStats& a : artifacts) total += a.build_seconds;
  return total;
}

std::size_t ContextStats::total_bytes() const {
  std::size_t total = 0;
  for (const ArtifactStats& a : artifacts) total += a.bytes;
  return total;
}

namespace {

std::string slug(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    if (c == ' ') c = '_';
  }
  return out;
}

}  // namespace

obs::MetricsSnapshot to_metrics(const ContextStats& stats) {
  obs::MetricsSnapshot snap;
  for (const ArtifactStats& a : stats.artifacts) {
    const std::string prefix = "context." + slug(a.name);
    snap.counters.push_back({prefix + ".builds", a.builds});
    snap.counters.push_back({prefix + ".hits", a.hits});
    if (a.invalidations > 0) {
      snap.counters.push_back({prefix + ".invalidations", a.invalidations});
    }
    if (a.incremental_updates > 0) {
      snap.counters.push_back(
          {prefix + ".incremental_updates", a.incremental_updates});
    }
    if (a.builds > 0) {
      snap.gauges.push_back({prefix + ".build_seconds", a.build_seconds});
      snap.gauges.push_back(
          {prefix + ".bytes", static_cast<double>(a.bytes)});
    }
  }
  snap.counters.push_back({"context.total.builds", stats.total_builds()});
  snap.counters.push_back({"context.total.hits", stats.total_hits()});
  snap.counters.push_back(
      {"context.total.invalidations", stats.total_invalidations()});
  snap.counters.push_back({"context.total.incremental_updates",
                           stats.total_incremental_updates()});
  snap.gauges.push_back(
      {"context.total.build_seconds", stats.total_build_seconds()});
  snap.gauges.push_back(
      {"context.total.bytes", static_cast<double>(stats.total_bytes())});
  snap.gauges.push_back(
      {"context.hypergraph.owned_bytes",
       static_cast<double>(stats.hypergraph_owned_bytes)});
  snap.gauges.push_back(
      {"context.hypergraph.mapped_bytes",
       static_cast<double>(stats.hypergraph_mapped_bytes)});
  return snap;
}

void publish_metrics(const ContextStats& stats) {
  const obs::MetricsSnapshot snap = to_metrics(stats);
  for (const obs::CounterSample& c : snap.counters) {
    obs::counter(c.name).set(c.value);
  }
  for (const obs::GaugeSample& g : snap.gauges) {
    obs::gauge(g.name).set(g.value);
  }
}

std::string to_string(const ContextStats& stats) {
  return "context artifact counters:\n" +
         obs::render_table(to_metrics(stats));
}

}  // namespace hp::hyper
