#include "core/context/context_stats.hpp"

#include <iomanip>
#include <sstream>

#include "util/timer.hpp"

namespace hp::hyper {

count_t ContextStats::total_builds() const {
  count_t total = 0;
  for (const ArtifactStats& a : artifacts) total += a.builds;
  return total;
}

count_t ContextStats::total_hits() const {
  count_t total = 0;
  for (const ArtifactStats& a : artifacts) total += a.hits;
  return total;
}

double ContextStats::total_build_seconds() const {
  double total = 0.0;
  for (const ArtifactStats& a : artifacts) total += a.build_seconds;
  return total;
}

std::size_t ContextStats::total_bytes() const {
  std::size_t total = 0;
  for (const ArtifactStats& a : artifacts) total += a.bytes;
  return total;
}

std::string to_string(const ContextStats& stats) {
  std::ostringstream out;
  out << "context artifact counters:\n"
      << "  " << std::left << std::setw(26) << "artifact" << std::right
      << std::setw(7) << "builds" << std::setw(7) << "hits" << std::setw(12)
      << "build time" << std::setw(12) << "bytes" << '\n';
  for (const ArtifactStats& a : stats.artifacts) {
    out << "  " << std::left << std::setw(26) << a.name << std::right
        << std::setw(7) << a.builds << std::setw(7) << a.hits << std::setw(12)
        << (a.builds > 0 ? format_duration(a.build_seconds) : "-")
        << std::setw(12) << a.bytes << '\n';
  }
  out << "  " << std::left << std::setw(26) << "total" << std::right
      << std::setw(7) << stats.total_builds() << std::setw(7)
      << stats.total_hits() << std::setw(12)
      << format_duration(stats.total_build_seconds()) << std::setw(12)
      << stats.total_bytes() << '\n';
  return out.str();
}

}  // namespace hp::hyper
