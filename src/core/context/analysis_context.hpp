// AnalysisContext: the memoized derived-artifact layer.
//
// Every analysis the paper reports (§2 properties, §3 cores, §4 covers)
// is computed from the same handful of derived structures -- the dual
// hypergraph, the graph expansions, connected components, the degree and
// size histograms, the pairwise overlap table, the reduced hypergraph,
// and the full core decomposition. An AnalysisContext owns one immutable
// Hypergraph and lazily computes, caches, and shares those artifacts
// behind a single API, so the CLI, bio::paper_report, and the bench
// drivers stop rebuilding them independently -- and future artifacts
// (centralities, spectra) have one place to hang.
//
// Concurrency: each slot is guarded by its own mutex with an atomic
// ready flag fast path, so concurrent readers racing on a cold slot
// build it exactly once and everyone blocks until the value is ready.
// Slots may depend on one another (summary pulls components and
// overlaps); the dependency graph is acyclic, so nested builds cannot
// deadlock. Counter updates are relaxed atomics -- ContextStats
// snapshots are advisory, the cached references are what carry the
// synchronization.
//
// Mutation (PR-6): slots can be reset individually, and rebase() swaps
// in a new hypergraph resetting only the slots that were actually
// built. Resets are a *single-writer* operation: the caller must
// guarantee no concurrent reader holds a reference into the slot (the
// mutable pipeline in core/mutate/ is single-threaded by contract, so
// this falls out naturally there).
//
// The context is neither copyable nor movable (the slot mutexes pin
// it); construct it where it will live, e.g. once per CLI invocation or
// per bench table row.
#pragma once

#include <atomic>
#include <mutex>
#include <optional>
#include <vector>

#include "core/context/context_stats.hpp"
#include "core/hypergraph.hpp"
#include "core/kcore.hpp"
#include "core/overlap.hpp"
#include "core/peel/peel_stats.hpp"
#include "core/projection.hpp"
#include "core/stats.hpp"
#include "core/traversal.hpp"
#include "graph/graph.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/histogram.hpp"
#include "util/timer.hpp"

namespace hp::hyper {

namespace detail {

/// One memoized artifact: built on first access (exactly once between
/// resets), then served by const reference. The first access counts as
/// the build; every later access counts as a hit. The build runs under
/// a trace span named `trace_name` (a literal, e.g.
/// "context.build.dual") and records its latency into the
/// "context.build_ns" histogram, so every artifact construction is
/// visible on the obs timeline.
///
/// Unlike the original once_flag design, a slot can be reset() (drops
/// the value, counts an invalidation) and rebuilt -- so `builds` can
/// exceed 1 over the lifetime of a mutable pipeline. reset() and
/// update() require the single-writer guarantee described in the file
/// header.
template <typename T>
class ArtifactSlot {
 public:
  template <typename Build>
  const T& get(const char* trace_name, const Build& build) const {
    if (ready_.load(std::memory_order_acquire)) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return *value_;
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (!ready_.load(std::memory_order_relaxed)) {
      obs::TraceSpan span{trace_name};
      Timer timer;
      value_.emplace(build());
      const std::uint64_t elapsed_ns = timer.nanoseconds();
      build_seconds_ += static_cast<double>(elapsed_ns) / 1e9;
      obs::latency("context.build_ns").record_ns(elapsed_ns);
      builds_.fetch_add(1, std::memory_order_relaxed);
      ready_.store(true, std::memory_order_release);
    } else {
      // Lost the race to a concurrent builder: the value is ready.
      hits_.fetch_add(1, std::memory_order_relaxed);
    }
    return *value_;
  }

  /// True once the build has completed (and not been reset since).
  bool built() const { return ready_.load(std::memory_order_acquire); }

  /// Drop the cached value; the next get() rebuilds. Counts an
  /// invalidation. Returns false (and counts nothing) when the slot was
  /// not built. Single-writer: no concurrent reader may hold a
  /// reference obtained from get().
  bool reset() const {
    std::lock_guard<std::mutex> lock(mu_);
    if (!ready_.load(std::memory_order_relaxed)) return false;
    ready_.store(false, std::memory_order_release);
    value_.reset();
    invalidations_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  /// Mutate a built value in place (incremental maintenance). Returns
  /// false when the slot is cold -- the caller should then leave it to
  /// the next full build. Single-writer, like reset().
  template <typename Update>
  bool update(const Update& apply) const {
    std::lock_guard<std::mutex> lock(mu_);
    if (!ready_.load(std::memory_order_relaxed)) return false;
    apply(*value_);
    incremental_updates_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  /// Counter snapshot; `bytes_of` is only invoked on a currently-built
  /// value, so reported bytes shrink back to zero after a reset.
  template <typename BytesOf>
  ArtifactStats stats(const char* name, const BytesOf& bytes_of) const {
    ArtifactStats s;
    s.name = name;
    s.builds = builds_.load(std::memory_order_relaxed);
    s.hits = hits_.load(std::memory_order_relaxed);
    s.invalidations = invalidations_.load(std::memory_order_relaxed);
    s.incremental_updates =
        incremental_updates_.load(std::memory_order_relaxed);
    s.build_seconds = build_seconds_;
    std::lock_guard<std::mutex> lock(mu_);
    if (ready_.load(std::memory_order_relaxed)) s.bytes = bytes_of(*value_);
    return s;
  }

 private:
  mutable std::mutex mu_;
  mutable std::atomic<bool> ready_{false};
  mutable std::optional<T> value_;
  mutable double build_seconds_ = 0.0;
  mutable std::atomic<count_t> builds_{0};
  mutable std::atomic<count_t> hits_{0};
  mutable std::atomic<count_t> invalidations_{0};
  mutable std::atomic<count_t> incremental_updates_{0};
};

}  // namespace detail

class AnalysisContext {
 public:
  /// Take ownership of the (immutable) hypergraph under analysis.
  explicit AnalysisContext(Hypergraph h) : hypergraph_(std::move(h)) {}

  AnalysisContext(const AnalysisContext&) = delete;
  AnalysisContext& operator=(const AnalysisContext&) = delete;

  const Hypergraph& hypergraph() const { return hypergraph_; }

  /// Dual hypergraph H* (see core/dual.hpp).
  const Hypergraph& dual() const;

  /// Clique expansion of the protein-interaction graph.
  const graph::Graph& clique_projection() const;

  /// Star expansion with the default (highest-degree member) baits.
  const graph::Graph& star_projection() const;

  /// The bait choice star_projection() was built with.
  const std::vector<index_t>& star_baits() const;

  /// Unweighted complex intersection graph (s = 1).
  const graph::Graph& intersection_projection() const;

  /// Connected components of the bipartite incidence structure.
  const HyperComponents& components() const;

  /// Histogram of vertex degrees (Fig. 1 input).
  const Histogram& vertex_degree_histogram() const;

  /// Histogram of hyperedge cardinalities.
  const Histogram& edge_size_histogram() const;

  /// Pairwise hyperedge overlap table (Delta_2,F and friends).
  const OverlapTable& overlaps() const;

  /// Reduced hypergraph (non-maximal hyperedges removed) with parent
  /// id maps.
  const SubHypergraph& reduced() const;

  /// Full k-core decomposition (PR-1 peel substrate underneath).
  const HyperCoreResult& cores() const;

  /// Substrate counters captured while cores() was built; forces the
  /// core decomposition if it has not run yet.
  const PeelStats& core_peel_stats() const;

  /// Table-1 style structural summary; shares components() and
  /// overlaps() instead of rebuilding them.
  const HypergraphSummary& summary() const;

  /// Exact all-pairs path statistics (diameter, average length).
  const HyperPathSummary& paths() const;

  /// Storage comparison of the four representations, assembled from the
  /// cached projections (same numbers as hyper::representation_costs).
  RepresentationCosts representation_costs() const;

  /// Build every artifact eagerly, fanning the independent slots out
  /// across the shared pool (src/par/) via a TaskGroup. Slots that
  /// depend on others (summary on components + overlaps) are built
  /// after the fan-out, when their inputs are already warm. Safe to
  /// call concurrently with readers: the per-slot once_flags still
  /// guarantee exactly-once construction. At HP_THREADS=1 this runs
  /// every build inline, in declaration order.
  void prefetch() const;

  /// Swap in a new hypergraph, resetting every *built* slot (each reset
  /// counts an invalidation; cold slots stay untouched, so artifacts
  /// nobody asked for stay free). This is the per-slot alternative to
  /// tearing the whole context down: counters, build times and the
  /// slots' identities survive. Single-writer -- callers must hold no
  /// artifact references across a rebase. Returns the number of slots
  /// reset.
  index_t rebase(Hypergraph h);

  /// Snapshot of every slot's build/hit counters.
  ContextStats stats() const;

 private:
  Hypergraph hypergraph_;

  detail::ArtifactSlot<Hypergraph> dual_;
  detail::ArtifactSlot<graph::Graph> clique_;
  detail::ArtifactSlot<std::vector<index_t>> star_baits_;
  detail::ArtifactSlot<graph::Graph> star_;
  detail::ArtifactSlot<graph::Graph> intersection_;
  detail::ArtifactSlot<HyperComponents> components_;
  detail::ArtifactSlot<Histogram> vertex_degree_histogram_;
  detail::ArtifactSlot<Histogram> edge_size_histogram_;
  detail::ArtifactSlot<OverlapTable> overlaps_;
  detail::ArtifactSlot<SubHypergraph> reduced_;
  detail::ArtifactSlot<HyperCoreResult> cores_;
  detail::ArtifactSlot<HypergraphSummary> summary_;
  detail::ArtifactSlot<HyperPathSummary> paths_;

  /// Written exactly once, inside the cores_ build (under its
  /// once_flag), read only after cores() returned.
  mutable PeelStats peel_stats_;
};

}  // namespace hp::hyper
