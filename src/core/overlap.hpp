// Pairwise hyperedge overlap table -- adapter over the flat substrate.
//
// overlap(f, g) = |f ∩ g| is the quantity the paper's k-core algorithm
// maintains instead of comparing vertex sets: an edge f is contained in g
// exactly when its current cardinality equals its current overlap with g.
// The table also yields degree-2 statistics: d2(f) = number of hyperedges
// sharing at least one vertex with f (Delta_2,F = max over f), and d2(v)
// = number of distinct other vertices co-occurring with v, both of which
// appear in the paper's complexity bounds and in Table 1.
//
// Adapter status: storage and lookups live in FlatOverlapTracker
// (core/peel/flat_overlap.hpp), the CSR-of-rows structure the peeling
// substrate mutates. This class is the stable read-only facade kept for
// stats.cpp / Table-1 reporting, the s-overlap census and their tests;
// new peeling code should use the tracker directly.
#pragma once

#include <utility>
#include <vector>

#include "core/hypergraph.hpp"
#include "core/peel/flat_overlap.hpp"

namespace hp::hyper {

/// Sparse symmetric table of nonzero pairwise overlaps.
class OverlapTable {
 public:
  /// Build from the incidence lists in O(sum_v d(v)^2) time.
  explicit OverlapTable(const Hypergraph& h) : tracker_(h) {}

  /// |f ∩ g|; zero when disjoint or f == g.
  index_t overlap(index_t f, index_t g) const {
    return tracker_.overlap(f, g);
  }

  /// Row of f viewed as (g, overlap) pairs over all g (!= f) with
  /// overlap(f, g) > 0, in ascending g.
  class RowView {
   public:
    class iterator {
     public:
      iterator(const index_t* g, const index_t* ov) : g_(g), ov_(ov) {}
      std::pair<index_t, index_t> operator*() const { return {*g_, *ov_}; }
      iterator& operator++() {
        ++g_;
        ++ov_;
        return *this;
      }
      bool operator!=(const iterator& other) const { return g_ != other.g_; }

     private:
      const index_t* g_;
      const index_t* ov_;
    };
    RowView(std::span<const index_t> neighbors,
            std::span<const index_t> counts)
        : neighbors_(neighbors), counts_(counts) {}
    iterator begin() const {
      return {neighbors_.data(), counts_.data()};
    }
    iterator end() const {
      return {neighbors_.data() + neighbors_.size(),
              counts_.data() + counts_.size()};
    }
    std::size_t size() const { return neighbors_.size(); }

   private:
    std::span<const index_t> neighbors_;
    std::span<const index_t> counts_;
  };

  RowView row(index_t f) const {
    return {tracker_.neighbors(f), tracker_.counts(f)};
  }

  /// d2(f): number of hyperedges overlapping f.
  index_t degree2(index_t f) const { return tracker_.degree2(f); }

  /// Delta_2,F: max degree2 over all hyperedges (0 if no edges).
  index_t max_degree2() const { return tracker_.max_degree2(); }

  index_t num_edges() const { return tracker_.num_edges(); }

  /// Bytes held by the underlying flat arrays.
  std::size_t storage_bytes() const { return tracker_.storage_bytes(); }

  /// The underlying substrate structure (for peeling code migrating off
  /// the adapter).
  const FlatOverlapTracker& tracker() const { return tracker_; }

 private:
  FlatOverlapTracker tracker_;
};

/// d2(v): number of distinct vertices other than v sharing a hyperedge
/// with v (the cover algorithm's complexity parameter).
std::vector<index_t> vertex_degree2(const Hypergraph& h);

}  // namespace hp::hyper
