// Pairwise hyperedge overlap table.
//
// overlap(f, g) = |f ∩ g| is the quantity the paper's k-core algorithm
// maintains instead of comparing vertex sets: an edge f is contained in g
// exactly when its current cardinality equals its current overlap with g.
// The table also yields degree-2 statistics: d2(f) = number of hyperedges
// sharing at least one vertex with f (Delta_2,F = max over f), and d2(v)
// = number of distinct other vertices co-occurring with v, both of which
// appear in the paper's complexity bounds and in Table 1.
#pragma once

#include <unordered_map>
#include <vector>

#include "core/hypergraph.hpp"

namespace hp::hyper {

/// Sparse symmetric table of nonzero pairwise overlaps.
class OverlapTable {
 public:
  /// Build from the incidence lists in O(sum_v d(v)^2) expected time.
  explicit OverlapTable(const Hypergraph& h);

  /// |f ∩ g|; zero when disjoint.
  index_t overlap(index_t f, index_t g) const;

  /// Row of f: all g (!= f) with overlap(f, g) > 0 and their counts.
  const std::unordered_map<index_t, index_t>& row(index_t f) const {
    return rows_[f];
  }

  /// Mutable row access for peeling algorithms that decrement overlaps.
  std::unordered_map<index_t, index_t>& mutable_row(index_t f) {
    return rows_[f];
  }

  /// d2(f): number of hyperedges overlapping f.
  index_t degree2(index_t f) const {
    return static_cast<index_t>(rows_[f].size());
  }

  /// Delta_2,F: max degree2 over all hyperedges (0 if no edges).
  index_t max_degree2() const;

  index_t num_edges() const { return static_cast<index_t>(rows_.size()); }

 private:
  std::vector<std::unordered_map<index_t, index_t>> rows_;
};

/// d2(v): number of distinct vertices other than v sharing a hyperedge
/// with v (the cover algorithm's complexity parameter).
std::vector<index_t> vertex_degree2(const Hypergraph& h);

}  // namespace hp::hyper
