// Alternative vertex-cover algorithms (paper section 4.1 closing remark:
// "Dual and primal-dual algorithms with approximation ratios that depend
// on the maximum degree ... can also be designed ... It is not clear if
// these algorithms will be practically inferior or superior in quality
// to the greedy algorithm discussed here. This is the subject of current
// work."). We implement them and settle the empirical question in
// bench_micro_cover.
#pragma once

#include <vector>

#include "core/cover.hpp"
#include "core/hypergraph.hpp"

namespace hp::hyper {

struct PrimalDualResult {
  std::vector<index_t> vertices;
  double total_weight = 0.0;
  double average_degree = 0.0;
  /// Value of the feasible dual solution sum_f y_f -- a true lower bound
  /// on the optimum cover weight, so total_weight / dual_value is an
  /// instance-specific a-posteriori approximation certificate.
  double dual_value = 0.0;
};

/// Primal-dual (Bar-Yehuda & Even style) weighted vertex cover: process
/// hyperedges; for an uncovered edge raise its dual variable until some
/// member's weight is exhausted, then take all newly tight members.
/// Guarantee: weight(C) <= Delta_F * OPT, Delta_F = max hyperedge size.
PrimalDualResult primal_dual_cover(const Hypergraph& h,
                                   const std::vector<double>& weights);

/// Exact minimum-weight vertex cover by branch and bound on hyperedges.
/// Exponential; intended for test oracles on small instances
/// (|V| <= ~30). Throws std::invalid_argument beyond `max_vertices`.
struct ExactCoverResult {
  std::vector<index_t> vertices;
  double total_weight = 0.0;
};

ExactCoverResult exact_vertex_cover(const Hypergraph& h,
                                    const std::vector<double>& weights,
                                    index_t max_vertices = 30);

}  // namespace hp::hyper
