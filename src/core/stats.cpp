#include "core/stats.hpp"

#include <sstream>

#include "core/overlap.hpp"
#include "core/traversal.hpp"

namespace hp::hyper {

HypergraphSummary summarize(const Hypergraph& h) {
  return summarize(h, connected_components(h),
                   OverlapTable{h}.max_degree2());
}

HypergraphSummary summarize(const Hypergraph& h,
                            const HyperComponents& comp,
                            index_t max_degree2) {
  HypergraphSummary s;
  s.num_vertices = h.num_vertices();
  s.num_edges = h.num_edges();
  s.num_pins = h.num_pins();
  s.max_vertex_degree = h.max_vertex_degree();
  s.max_edge_size = h.max_edge_size();
  s.max_degree2 = max_degree2;

  s.num_components = comp.count;
  if (comp.count > 0) {
    const index_t big = comp.largest();
    s.largest_component_vertices = comp.vertex_counts[big];
    s.largest_component_edges = comp.edge_counts[big];
  }

  for (index_t v = 0; v < h.num_vertices(); ++v) {
    const index_t d = h.vertex_degree(v);
    if (d == 1) ++s.degree_one_vertices;
    if (d == 0) ++s.isolated_vertices;
  }
  s.mean_vertex_degree =
      h.num_vertices() > 0
          ? static_cast<double>(h.num_pins()) / h.num_vertices()
          : 0.0;
  s.mean_edge_size = h.num_edges() > 0
                         ? static_cast<double>(h.num_pins()) / h.num_edges()
                         : 0.0;
  return s;
}

Histogram vertex_degree_histogram(const Hypergraph& h) {
  Histogram hist;
  for (index_t v = 0; v < h.num_vertices(); ++v) {
    hist.add(h.vertex_degree(v));
  }
  return hist;
}

Histogram edge_size_histogram(const Hypergraph& h) {
  Histogram hist;
  for (index_t e = 0; e < h.num_edges(); ++e) {
    hist.add(h.edge_size(e));
  }
  return hist;
}

PowerLawFit vertex_degree_power_law(const Hypergraph& h) {
  return vertex_degree_power_law(vertex_degree_histogram(h));
}

PowerLawFit vertex_degree_power_law(const Histogram& degree_histogram) {
  return power_law_fit(degree_histogram.frequencies());
}

EdgeSizeFits edge_size_fits(const Hypergraph& h) {
  return edge_size_fits(edge_size_histogram(h));
}

EdgeSizeFits edge_size_fits(const Histogram& hist) {
  EdgeSizeFits fits;
  fits.power = power_law_fit(hist.frequencies());
  fits.exponential = exponential_fit(hist.frequencies());
  return fits;
}

std::string to_string(const HypergraphSummary& s) {
  std::ostringstream out;
  out << "|V| (vertices)            : " << s.num_vertices << '\n'
      << "|F| (hyperedges)          : " << s.num_edges << '\n'
      << "|E| (pins)                : " << s.num_pins << '\n'
      << "Delta_V (max degree)      : " << s.max_vertex_degree << '\n'
      << "Delta_F (max edge size)   : " << s.max_edge_size << '\n'
      << "Delta_2,F (max degree-2)  : " << s.max_degree2 << '\n'
      << "components                : " << s.num_components << '\n'
      << "largest component         : " << s.largest_component_vertices
      << " vertices, " << s.largest_component_edges << " hyperedges\n"
      << "degree-1 vertices         : " << s.degree_one_vertices << '\n'
      << "isolated vertices         : " << s.isolated_vertices << '\n'
      << "mean vertex degree        : " << s.mean_vertex_degree << '\n'
      << "mean hyperedge size       : " << s.mean_edge_size << '\n';
  return out.str();
}

}  // namespace hp::hyper
