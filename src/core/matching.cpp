#include "core/matching.hpp"

#include <algorithm>
#include <stdexcept>

namespace hp::hyper {

MatchingResult greedy_matching(const Hypergraph& h) {
  std::vector<index_t> order(h.num_edges());
  for (index_t e = 0; e < h.num_edges(); ++e) order[e] = e;
  std::stable_sort(order.begin(), order.end(), [&](index_t a, index_t b) {
    return h.edge_size(a) < h.edge_size(b);
  });

  MatchingResult result;
  std::vector<bool> blocked(h.num_vertices(), false);
  for (index_t e : order) {
    bool free = true;
    for (index_t v : h.vertices_of(e)) {
      if (blocked[v]) {
        free = false;
        break;
      }
    }
    if (!free) continue;
    result.edges.push_back(e);
    for (index_t v : h.vertices_of(e)) blocked[v] = true;
  }
  std::sort(result.edges.begin(), result.edges.end());
  return result;
}

bool is_matching(const Hypergraph& h, const std::vector<index_t>& edges) {
  std::vector<bool> used(h.num_vertices(), false);
  for (index_t e : edges) {
    HP_REQUIRE(e < h.num_edges(), "is_matching: edge out of range");
    for (index_t v : h.vertices_of(e)) {
      if (used[v]) return false;
      used[v] = true;
    }
  }
  return true;
}

bool is_maximal_matching(const Hypergraph& h,
                         const std::vector<index_t>& edges) {
  if (!is_matching(h, edges)) return false;
  std::vector<bool> used(h.num_vertices(), false);
  std::vector<bool> chosen(h.num_edges(), false);
  for (index_t e : edges) {
    chosen[e] = true;
    for (index_t v : h.vertices_of(e)) used[v] = true;
  }
  for (index_t e = 0; e < h.num_edges(); ++e) {
    if (chosen[e]) continue;
    bool free = true;
    for (index_t v : h.vertices_of(e)) {
      if (used[v]) {
        free = false;
        break;
      }
    }
    if (free) return false;  // e could be added
  }
  return true;
}

namespace {

struct MatchBranch {
  const Hypergraph& h;
  std::vector<bool> used;
  std::vector<index_t> current;
  std::vector<index_t> best;

  explicit MatchBranch(const Hypergraph& hg)
      : h(hg), used(hg.num_vertices(), false) {}

  void recurse(index_t next_edge) {
    // Bound: even taking every remaining edge cannot beat best.
    if (current.size() + (h.num_edges() - next_edge) <= best.size()) return;
    if (next_edge == h.num_edges()) {
      if (current.size() > best.size()) best = current;
      return;
    }
    // Option 1: take next_edge if free.
    bool free = true;
    for (index_t v : h.vertices_of(next_edge)) {
      if (used[v]) {
        free = false;
        break;
      }
    }
    if (free) {
      for (index_t v : h.vertices_of(next_edge)) used[v] = true;
      current.push_back(next_edge);
      recurse(next_edge + 1);
      current.pop_back();
      for (index_t v : h.vertices_of(next_edge)) used[v] = false;
    }
    // Option 2: skip it.
    recurse(next_edge + 1);
  }
};

}  // namespace

MatchingResult exact_maximum_matching(const Hypergraph& h,
                                      index_t max_edges) {
  if (h.num_edges() > max_edges) {
    throw std::invalid_argument{
        "exact_maximum_matching: instance too large for exact search"};
  }
  MatchBranch branch{h};
  branch.recurse(0);
  MatchingResult result;
  result.edges = branch.best;
  return result;
}

}  // namespace hp::hyper
