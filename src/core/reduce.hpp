// Hypergraph reduction: removal of non-maximal hyperedges.
//
// A "reduced" hypergraph (paper, section 3) is one in which no hyperedge
// is contained in another. Reduction is the k = 0 step of the hypergraph
// k-core computation, and also a useful standalone cleaning pass for raw
// complex data (a pulled-down sub-complex is subsumed by its superset).
#pragma once

#include <vector>

#include "core/hypergraph.hpp"

namespace hp::hyper {

struct ReduceResult {
  /// keep[e] is true when edge e is maximal (for groups of identical
  /// edges, exactly the lowest-id representative is kept).
  std::vector<bool> keep;
  index_t num_removed = 0;
};

/// Identify non-maximal edges via overlap counting (no set comparisons),
/// as the paper prescribes. O(sum_v d(v)^2) expected.
ReduceResult find_non_maximal(const Hypergraph& h);

/// Build the reduced hypergraph (all vertices retained, possibly with
/// degree 0 after their last containing edge is dropped). The returned
/// edge_to_parent maps new edge ids to the originals.
SubHypergraph reduce(const Hypergraph& h);

/// True if no edge is contained in another (and no duplicates).
bool is_reduced(const Hypergraph& h);

}  // namespace hp::hyper
