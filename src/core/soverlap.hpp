// s-overlap analysis: a graded generalization of the paper's complex
// intersection graph.
//
// The paper's intersection graph joins two complexes sharing >= 1
// protein and notes the edge "could be weighted to represent the number
// of proteins two complexes have in common". Thresholding that weight
// gives the s-intersection graph (edges between complexes sharing >= s
// proteins), and with it s-connected components, s-distances and
// s-diameters -- the "s-walk" analysis popularized by later hypergraph
// toolkits (HyperNetX/XGI). s = 1 recovers the paper's objects exactly;
// higher s isolates the strongly-cohesive complex families (the core
// machinery) from incidental single-protein contacts.
#pragma once

#include <vector>

#include "core/hypergraph.hpp"
#include "core/overlap.hpp"
#include "graph/graph.hpp"

namespace hp::hyper {

/// Intersection graph over hyperedges with overlap threshold s >= 1
/// (s = 1 is the paper's complex intersection graph).
graph::Graph s_intersection_graph(const Hypergraph& h, index_t s);

/// Same, from an already-built overlap table (the AnalysisContext path:
/// one table serves the whole s-sweep instead of one build per s).
graph::Graph s_intersection_graph(const OverlapTable& table, index_t s);

/// Connected components of hyperedges under >= s overlap.
struct SComponents {
  std::vector<index_t> label;  ///< component id per hyperedge
  std::vector<index_t> sizes;  ///< hyperedges per component
  index_t count = 0;

  index_t largest() const;
};

SComponents s_components(const Hypergraph& h, index_t s);
SComponents s_components(const OverlapTable& table, index_t s);

/// s-distance between two hyperedges: length of the shortest walk
/// f = f0, f1, ..., fk = g with |f_i ∩ f_{i+1}| >= s. kInvalidIndex when
/// no such walk exists.
std::vector<index_t> s_distances(const Hypergraph& h, index_t source,
                                 index_t s);

/// Diameter and average s-distance over connected ordered hyperedge
/// pairs.
struct SPathSummary {
  index_t diameter = 0;
  double average_length = 0.0;
  count_t connected_pairs = 0;
};

SPathSummary s_path_summary(const Hypergraph& h, index_t s);

/// The largest s for which some pair of distinct hyperedges still
/// overlaps in >= s vertices (0 if all hyperedges are pairwise
/// disjoint). Above this value every s-intersection graph is empty.
index_t max_meaningful_s(const Hypergraph& h);
index_t max_meaningful_s(const OverlapTable& table);

}  // namespace hp::hyper
