// Binary serialization of hypergraphs.
//
// The text formats (.hyper, .hgr) are for interchange; this format is
// for fast checkpointing of large instances ("larger proteomic studies
// ... will require high performance algorithms and software", paper
// §3). Layout, all little-endian:
//
//   magic   "HPHG"            4 bytes
//   version u32 (= 1)
//   |V|     u32
//   |F|     u32
//   |E|     u64 (pin count)
//   eoff    (|F| + 1) x u64   edge offsets
//   eadj    |E| x u32         concatenated member lists
//
// The loader rebuilds the vertex-side CSR and validates structure, so a
// truncated or corrupted file fails loudly with ParseError.
#pragma once

#include <string>

#include "core/hypergraph.hpp"

namespace hp::hyper {

/// Serialize to the binary layout above.
std::string to_binary(const Hypergraph& h);

/// Parse; throws hp::ParseError on bad magic/version/truncation or
/// structural inconsistency.
Hypergraph from_binary(const std::string& bytes);

void save_binary(const Hypergraph& h, const std::string& path);
Hypergraph load_binary(const std::string& path);

}  // namespace hp::hyper
