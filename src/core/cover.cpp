#include "core/cover.hpp"

#include <limits>

#include "util/lazy_heap.hpp"

namespace hp::hyper {

std::vector<double> unit_weights(const Hypergraph& h) {
  return std::vector<double>(h.num_vertices(), 1.0);
}

std::vector<double> degree_squared_weights(const Hypergraph& h) {
  std::vector<double> w(h.num_vertices());
  for (index_t v = 0; v < h.num_vertices(); ++v) {
    const double d = static_cast<double>(h.vertex_degree(v));
    w[v] = d * d;
  }
  return w;
}

CoverResult greedy_vertex_cover(const Hypergraph& h,
                                const std::vector<double>& weights) {
  HP_REQUIRE(weights.size() == h.num_vertices(),
             "greedy_vertex_cover: weight vector size mismatch");
  for (double w : weights) {
    HP_REQUIRE(w >= 0.0, "greedy_vertex_cover: negative weight");
  }

  CoverResult result;
  std::vector<bool> covered(h.num_edges(), false);
  std::vector<bool> chosen(h.num_vertices(), false);
  // uncovered[v] = |adj(v) ∩ F_i|, the number of not-yet-covered
  // hyperedges v belongs to.
  std::vector<index_t> uncovered(h.num_vertices());
  index_t remaining = h.num_edges();

  LazyMinHeap heap;
  for (index_t v = 0; v < h.num_vertices(); ++v) {
    uncovered[v] = h.vertex_degree(v);
    if (uncovered[v] > 0) {
      heap.push(v, weights[v] / static_cast<double>(uncovered[v]));
    }
  }

  const auto current_key = [&](index_t v) {
    return uncovered[v] > 0
               ? weights[v] / static_cast<double>(uncovered[v])
               : std::numeric_limits<double>::infinity();
  };
  const auto still_live = [&](index_t v) {
    return !chosen[v] && uncovered[v] > 0;
  };

  while (remaining > 0) {
    const index_t v = heap.pop_current(current_key, still_live);
    chosen[v] = true;
    result.vertices.push_back(v);
    result.total_weight += weights[v];
    for (index_t e : h.edges_of(v)) {
      if (covered[e]) continue;
      covered[e] = true;
      --remaining;
      for (index_t w : h.vertices_of(e)) {
        if (!chosen[w] && uncovered[w] > 0) --uncovered[w];
      }
    }
  }

  result.average_degree = average_degree(h, result.vertices);
  const double hm = harmonic(h.num_edges());
  result.lower_bound = hm > 0.0 ? result.total_weight / hm : 0.0;
  return result;
}

bool is_vertex_cover(const Hypergraph& h, const std::vector<index_t>& cover) {
  std::vector<bool> in_cover(h.num_vertices(), false);
  for (index_t v : cover) {
    HP_REQUIRE(v < h.num_vertices(), "is_vertex_cover: vertex out of range");
    in_cover[v] = true;
  }
  for (index_t e = 0; e < h.num_edges(); ++e) {
    bool hit = false;
    for (index_t v : h.vertices_of(e)) {
      if (in_cover[v]) {
        hit = true;
        break;
      }
    }
    if (!hit) return false;
  }
  return true;
}

double average_degree(const Hypergraph& h, const std::vector<index_t>& set) {
  if (set.empty()) return 0.0;
  double sum = 0.0;
  for (index_t v : set) sum += static_cast<double>(h.vertex_degree(v));
  return sum / static_cast<double>(set.size());
}

double harmonic(index_t m) {
  double sum = 0.0;
  for (index_t i = 1; i <= m; ++i) sum += 1.0 / static_cast<double>(i);
  return sum;
}

}  // namespace hp::hyper
