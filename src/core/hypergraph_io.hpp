// Text serialization of hypergraphs.
//
// Format ("hp-hyper v1"), one hyperedge per line:
//
//   # comment
//   %hypergraph <num_vertices> <num_edges>
//   v0 v1 v2 ...
//
// Vertex ids are 0-based integers. The header makes isolated vertices
// representable. This is also the exchange format the bio layer writes
// after mapping protein names to ids.
#pragma once

#include <iosfwd>
#include <string>

#include "core/hypergraph.hpp"
#include "util/declared_sizes.hpp"

namespace hp::hyper {

/// Largest vertex/edge count any hypergraph loader accepts from a file
/// header. Guards against allocation bombs: a 30-byte header (or a
/// corrupted binary header word) must not make a loader commit
/// gigabytes of CSR offsets before any structural check can run.
/// Re-exported alias: the policy (and the shared check helpers) moved
/// to io::kMaxDeclaredEntities in util/declared_sizes.hpp so the mm and
/// snapshot loaders enforce the same bound.
inline constexpr long long kMaxDeclaredEntities = io::kMaxDeclaredEntities;

/// Serialize to the text format above.
std::string to_text(const Hypergraph& h);

/// Parse the text format; throws hp::ParseError with a line number on
/// malformed input.
Hypergraph from_text(const std::string& text);

/// File convenience wrappers; throw std::runtime_error on I/O failure.
void save_text(const Hypergraph& h, const std::string& path);
Hypergraph load_text(const std::string& path);

// --- hMETIS / PaToH .hgr interchange -------------------------------------
//
// The standard hypergraph exchange format of the scientific-computing
// community (the same community the paper's Table 1 matrices come
// from). Unweighted variant:
//
//   % comment
//   <num_hyperedges> <num_vertices>
//   v1 v2 v3 ...        (1-based, one line per hyperedge)

/// Serialize to unweighted hMETIS format.
std::string to_hmetis(const Hypergraph& h);

/// Parse unweighted hMETIS text (a weighted fmt field is rejected with
/// ParseError, not silently misread).
Hypergraph from_hmetis(const std::string& text);

void save_hmetis(const Hypergraph& h, const std::string& path);
Hypergraph load_hmetis(const std::string& path);

}  // namespace hp::hyper
