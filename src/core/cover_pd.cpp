#include "core/cover_pd.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace hp::hyper {

PrimalDualResult primal_dual_cover(const Hypergraph& h,
                                   const std::vector<double>& weights) {
  HP_REQUIRE(weights.size() == h.num_vertices(),
             "primal_dual_cover: weight vector size mismatch");
  PrimalDualResult result;
  // slack[v] = w(v) - sum of duals of edges containing v; v is "tight"
  // (enters the cover) when its slack reaches zero.
  std::vector<double> slack(weights);
  std::vector<bool> tight(h.num_vertices(), false);
  std::vector<bool> covered(h.num_edges(), false);

  for (index_t e = 0; e < h.num_edges(); ++e) {
    // Skip edges already covered by a tight vertex.
    bool hit = false;
    for (index_t v : h.vertices_of(e)) {
      if (tight[v]) {
        hit = true;
        break;
      }
    }
    if (hit) {
      covered[e] = true;
      continue;
    }
    // Raise y_e until the smallest member slack hits zero.
    double raise = std::numeric_limits<double>::infinity();
    for (index_t v : h.vertices_of(e)) {
      raise = std::min(raise, slack[v]);
    }
    result.dual_value += raise;
    for (index_t v : h.vertices_of(e)) {
      slack[v] -= raise;
      if (slack[v] <= 0.0 && !tight[v]) {
        tight[v] = true;
        result.vertices.push_back(v);
        result.total_weight += weights[v];
      }
    }
    covered[e] = true;
  }
  result.average_degree = average_degree(h, result.vertices);
  return result;
}

namespace {

struct BranchState {
  const Hypergraph& h;
  const std::vector<double>& weights;
  std::vector<bool> chosen;
  std::vector<index_t> hits;  // cover vertices per edge
  double weight = 0.0;
  double best_weight = std::numeric_limits<double>::infinity();
  std::vector<index_t> best;
  std::vector<index_t> current;

  BranchState(const Hypergraph& hg, const std::vector<double>& w)
      : h(hg), weights(w), chosen(hg.num_vertices(), false),
        hits(hg.num_edges(), 0) {}

  index_t first_uncovered() const {
    for (index_t e = 0; e < h.num_edges(); ++e) {
      if (hits[e] == 0) return e;
    }
    return kInvalidIndex;
  }

  void take(index_t v) {
    chosen[v] = true;
    current.push_back(v);
    weight += weights[v];
    for (index_t e : h.edges_of(v)) ++hits[e];
  }

  void untake(index_t v) {
    chosen[v] = false;
    current.pop_back();
    weight -= weights[v];
    for (index_t e : h.edges_of(v)) --hits[e];
  }

  void recurse() {
    if (weight >= best_weight) return;  // bound
    const index_t e = first_uncovered();
    if (e == kInvalidIndex) {
      best_weight = weight;
      best = current;
      return;
    }
    // Branch: exactly one of e's members must be in any cover.
    for (index_t v : h.vertices_of(e)) {
      if (chosen[v]) continue;  // cannot happen (e would be covered)
      take(v);
      recurse();
      untake(v);
    }
  }
};

}  // namespace

ExactCoverResult exact_vertex_cover(const Hypergraph& h,
                                    const std::vector<double>& weights,
                                    index_t max_vertices) {
  HP_REQUIRE(weights.size() == h.num_vertices(),
             "exact_vertex_cover: weight vector size mismatch");
  if (h.num_vertices() > max_vertices) {
    throw std::invalid_argument{
        "exact_vertex_cover: instance too large for exact search"};
  }
  BranchState state{h, weights};
  state.recurse();
  ExactCoverResult result;
  if (h.num_edges() == 0) return result;  // empty cover is optimal
  result.vertices = state.best;
  result.total_weight = state.best_weight;
  std::sort(result.vertices.begin(), result.vertices.end());
  return result;
}

}  // namespace hp::hyper
