#include "core/generalized_core.hpp"

#include <algorithm>
#include <queue>

#include "core/peel/residual.hpp"

namespace hp::hyper {

namespace {

/// Measure policy on top of the shared residual substrate: the
/// substrate tracks alive vertices and residual edge sizes; this
/// evaluates the chosen vertex measure against that state.
struct MeasurePolicy {
  const Hypergraph& h;
  const ResidualHypergraph& residual;
  CoreMeasure measure;

  double evaluate(index_t v) const {
    switch (measure) {
      case CoreMeasure::kDegree: {
        // Incident edges still connecting v to at least one live
        // co-member.
        index_t degree = 0;
        for (index_t e : h.edges_of(v)) {
          if (residual.edge_size(e) >= 2) ++degree;
        }
        return static_cast<double>(degree);
      }
      case CoreMeasure::kPinWeight: {
        // Per incident edge: live co-members normalized by the edge's
        // full co-member count; 1.0 for an intact edge, shrinking to 0
        // as the complex empties around v.
        double total = 0.0;
        for (index_t e : h.edges_of(v)) {
          const index_t full = h.edge_size(e);
          if (full < 2) continue;
          total += static_cast<double>(residual.edge_size(e) - 1) /
                   static_cast<double>(full - 1);
        }
        return total;
      }
      case CoreMeasure::kNeighborhood: {
        std::vector<index_t> seen;
        for (index_t e : h.edges_of(v)) {
          for (index_t w : h.vertices_of(e)) {
            if (w != v && residual.vertex_alive(w)) seen.push_back(w);
          }
        }
        std::sort(seen.begin(), seen.end());
        seen.erase(std::unique(seen.begin(), seen.end()), seen.end());
        return static_cast<double>(seen.size());
      }
    }
    return 0.0;
  }
};

struct HeapEntry {
  double key;
  index_t vertex;
  bool operator>(const HeapEntry& other) const {
    if (key != other.key) return key > other.key;
    return vertex > other.vertex;
  }
};

/// Remove v on the substrate and return the live vertices whose measure
/// may have changed (the live co-members of v's edges).
std::vector<index_t> remove_vertex(ResidualHypergraph& residual,
                                   index_t v) {
  std::vector<index_t> touched;
  residual.erase_vertex(v, touched);
  std::vector<index_t> affected;
  for (index_t e : touched) {
    for (index_t w : residual.base().vertices_of(e)) {
      if (residual.vertex_alive(w)) affected.push_back(w);
    }
  }
  std::sort(affected.begin(), affected.end());
  affected.erase(std::unique(affected.begin(), affected.end()),
                 affected.end());
  return affected;
}

}  // namespace

std::vector<double> measure_values(const Hypergraph& h,
                                   CoreMeasure measure) {
  const ResidualHypergraph residual{h};
  const MeasurePolicy policy{h, residual, measure};
  std::vector<double> values(h.num_vertices());
  for (index_t v = 0; v < h.num_vertices(); ++v) {
    values[v] = policy.evaluate(v);
  }
  return values;
}

GeneralizedCoreResult generalized_core(const Hypergraph& h,
                                       CoreMeasure measure) {
  GeneralizedCoreResult result;
  const index_t n = h.num_vertices();
  result.value.assign(n, 0.0);
  if (n == 0) return result;

  ResidualHypergraph residual{h};
  const MeasurePolicy policy{h, residual, measure};
  std::vector<double> current(n);
  std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                      std::greater<HeapEntry>>
      heap;
  for (index_t v = 0; v < n; ++v) {
    current[v] = policy.evaluate(v);
    heap.push({current[v], v});
  }

  double running_max = 0.0;
  while (residual.live_vertices() > 0) {
    const HeapEntry top = heap.top();
    heap.pop();
    if (!residual.vertex_alive(top.vertex) ||
        top.key != current[top.vertex]) {
      continue;  // stale entry; a fresher one is in the heap
    }
    const index_t v = top.vertex;
    running_max = std::max(running_max, current[v]);
    result.value[v] = running_max;
    for (index_t w : remove_vertex(residual, v)) {
      const double fresh = policy.evaluate(w);
      if (fresh != current[w]) {
        current[w] = fresh;
        heap.push({fresh, w});
      }
    }
  }
  result.max_value = running_max;
  return result;
}

std::vector<index_t> GeneralizedCoreResult::core_vertices(double t) const {
  std::vector<index_t> out;
  for (index_t v = 0; v < value.size(); ++v) {
    if (value[v] >= t) out.push_back(v);
  }
  return out;
}

}  // namespace hp::hyper
