#include "core/generalized_core.hpp"

#include <algorithm>

#include "core/peel/frontier.hpp"
#include "core/peel/residual.hpp"

namespace hp::hyper {

namespace {

/// Measure policy on top of the shared residual substrate: the
/// substrate tracks alive vertices and residual edge sizes; this
/// evaluates the chosen vertex measure against that state.
struct MeasurePolicy {
  const Hypergraph& h;
  const ResidualHypergraph& residual;
  CoreMeasure measure;

  double evaluate(index_t v) const {
    switch (measure) {
      case CoreMeasure::kDegree: {
        // Incident edges still connecting v to at least one live
        // co-member.
        index_t degree = 0;
        for (index_t e : h.edges_of(v)) {
          if (residual.edge_size(e) >= 2) ++degree;
        }
        return static_cast<double>(degree);
      }
      case CoreMeasure::kPinWeight: {
        // Per incident edge: live co-members normalized by the edge's
        // full co-member count; 1.0 for an intact edge, shrinking to 0
        // as the complex empties around v.
        double total = 0.0;
        for (index_t e : h.edges_of(v)) {
          const index_t full = h.edge_size(e);
          if (full < 2) continue;
          total += static_cast<double>(residual.edge_size(e) - 1) /
                   static_cast<double>(full - 1);
        }
        return total;
      }
      case CoreMeasure::kNeighborhood: {
        std::vector<index_t> seen;
        for (index_t e : h.edges_of(v)) {
          for (index_t w : h.vertices_of(e)) {
            if (w != v && residual.vertex_alive(w)) seen.push_back(w);
          }
        }
        std::sort(seen.begin(), seen.end());
        seen.erase(std::unique(seen.begin(), seen.end()), seen.end());
        return static_cast<double>(seen.size());
      }
    }
    return 0.0;
  }
};

/// Remove v on the substrate and return the live vertices whose measure
/// may have changed (the live co-members of v's edges).
std::vector<index_t> remove_vertex(ResidualHypergraph& residual,
                                   index_t v) {
  std::vector<index_t> touched;
  residual.erase_vertex(v, touched);
  std::vector<index_t> affected;
  for (index_t e : touched) {
    for (index_t w : residual.base().vertices_of(e)) {
      if (residual.vertex_alive(w)) affected.push_back(w);
    }
  }
  std::sort(affected.begin(), affected.end());
  affected.erase(std::unique(affected.begin(), affected.end()),
                 affected.end());
  return affected;
}

}  // namespace

std::vector<double> measure_values(const Hypergraph& h,
                                   CoreMeasure measure) {
  const ResidualHypergraph residual{h};
  const MeasurePolicy policy{h, residual, measure};
  std::vector<double> values(h.num_vertices());
  for (index_t v = 0; v < h.num_vertices(); ++v) {
    values[v] = policy.evaluate(v);
  }
  return values;
}

GeneralizedCoreResult generalized_core(const Hypergraph& h,
                                       CoreMeasure measure,
                                       PeelStats* stats) {
  GeneralizedCoreResult result;
  const index_t n = h.num_vertices();
  result.value.assign(n, 0.0);
  if (n == 0) return result;

  PeelStats local;
  ResidualHypergraph residual{h};
  residual.bind_stats(&local);
  const MeasurePolicy policy{h, residual, measure};
  std::vector<double> current(n);
  // Same frontier discipline as the k-core engine, in measure space:
  // the shared lazy-deletion heap skips stale snapshots at pop time
  // (counted as frontier_wasted) instead of locating entries to update,
  // and pushes only vertices whose measure actually changed. Selection
  // order is bit-identical to the historical hand-rolled heap -- same
  // comparator, same tie-break, same staleness rule.
  LazyPeelHeap heap{&local};
  for (index_t v = 0; v < n; ++v) {
    current[v] = policy.evaluate(v);
    heap.push(v, current[v]);
  }

  double running_max = 0.0;
  while (residual.live_vertices() > 0) {
    const index_t v = heap.pop_min(
        [&](index_t w) { return current[w]; },
        [&](index_t w) { return residual.vertex_alive(w); });
    if (v == kInvalidIndex) break;  // unreachable: live vertices remain
    running_max = std::max(running_max, current[v]);
    result.value[v] = running_max;
    for (index_t w : remove_vertex(residual, v)) {
      const double fresh = policy.evaluate(w);
      if (fresh != current[w]) {
        current[w] = fresh;
        heap.push(w, fresh);
      }
    }
  }
  result.max_value = running_max;
  if (stats != nullptr) *stats += local;
  return result;
}

GeneralizedCoreResult generalized_core(const Hypergraph& h,
                                       CoreMeasure measure) {
  return generalized_core(h, measure, nullptr);
}

std::vector<index_t> GeneralizedCoreResult::core_vertices(double t) const {
  std::vector<index_t> out;
  for (index_t v = 0; v < value.size(); ++v) {
    if (value[v] >= t) out.push_back(v);
  }
  return out;
}

}  // namespace hp::hyper
