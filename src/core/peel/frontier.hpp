// Frontier-driven peeling engine shared by every peel policy.
//
// Historically each peel level (and each bulk cascade round) re-scanned
// all |V| vertices to find the sub-threshold frontier -- fine at the
// paper's 1,361 proteins, ruinous at the 10^6-10^7-vertex surrogates
// the benchmarks now drive. This module replaces the scans with
// work-proportional frontier maintenance (the decrement-and-filter
// shape of Blaze's k-core EdgeMap/VertexMap, SNIPPETS.md section 2):
//
//   * FrontierBuckets -- a lazy bucket queue keyed by residual degree.
//     Every degree drop pushes a (vertex, new-degree) entry into
//     bucket[new-degree]; entering level k drains buckets 0..k-1 and
//     filters stale entries (dead vertices, duplicates from multiple
//     drops). Degrees only decrease, so an entry in a bucket below the
//     current level is never missed and never early: the drained set is
//     exactly {v live : degree(v) < k}, i.e. what the scan found, at
//     O(drops) total cost instead of O(levels * |V|).
//
//   * LaneDropBags -- per-pool-lane bags of degree-drop records for the
//     bulk-synchronous parallel peel. Lanes append race-free to their
//     own bag while edge deletions decrement degrees atomically; the
//     driver drains all bags between rounds, splitting drops into the
//     in-level frontier (new degree < k) and FrontierBuckets (future
//     levels).
//
//   * EpochStamps -- |F|-sized claim marks for deduplicating the
//     touched-edge set a parallel round produces. Bumping the epoch
//     invalidates all stamps in O(1), so rounds never clear the array.
//
//   * LazyPeelHeap -- the measure-driven (generalized-core) flavor of
//     the same discipline: a lazy-deletion heap over double-valued
//     measures where stale entries are skipped at pop time instead of
//     being located and updated in place.
//
// All four report into PeelStats (frontier_pushes / frontier_wasted),
// so the engine's work-proportionality is observable: pushes are
// bounded by |pins| + |V| per decomposition, and wasted counts exactly
// the lazy slack.
//
// The shared initial-reduction fixpoint (erase_non_maximal) also lives
// here: it re-seeds containment candidates from the just-doomed edges'
// overlap neighborhoods instead of rescanning every live edge, which
// keeps adversarial duplicate-chain inputs (hp_fuzz kDuplicateChain)
// linear instead of quadratic.
#pragma once

#include <queue>
#include <vector>

#include "core/peel/peel_stats.hpp"
#include "core/peel/residual.hpp"

namespace hp::hyper {

/// Seed-discipline selector for the k-core peelers. kFrontier is the
/// production engine; kScan is the legacy rescan-every-level loop, kept
/// as the differential-testing oracle (the two must stay bit-identical;
/// tests/core/test_frontier_peel.cpp enforces it).
enum class PeelEngine { kFrontier, kScan };

/// Lazy bucket queue over vertices keyed by residual degree.
///
/// Entries are append-only hints, not exact positions: a vertex may sit
/// in several buckets at once (one per degree it has passed through) and
/// is validated against the live residual state at drain time. Compared
/// to the exact decrease-key hp::BucketQueue this trades a bounded
/// amount of slack (counted as frontier_wasted) for push paths that are
/// branch-free and, in the parallel driver, mergeable from per-lane
/// bags without locks.
class FrontierBuckets {
 public:
  /// Buckets 0..max_degree. Stats are optional.
  FrontierBuckets(index_t max_degree, PeelStats* stats)
      : buckets_(static_cast<std::size_t>(max_degree) + 1), stats_(stats) {}

  /// Lazy entry: v currently has residual degree d. O(1) amortized.
  void push(index_t v, index_t d) {
    buckets_[d].push_back(v);
    if (stats_ != nullptr) ++stats_->frontier_pushes;
  }

  /// Drain every bucket strictly below `level`, appending entries that
  /// pass `valid(v)` to `out` exactly once (duplicates are filtered via
  /// `valid`, which the caller makes single-accepting, e.g. an in-queue
  /// mark). Stale or duplicate entries count as frontier_wasted.
  /// Degrees never grow, so an entry in bucket d < level whose vertex is
  /// still alive is genuinely sub-threshold; buckets >= level are left
  /// untouched for later levels.
  template <typename ValidFn>
  void drain_below(index_t level, ValidFn&& valid,
                   std::vector<index_t>& out) {
    const index_t top =
        std::min<index_t>(level, static_cast<index_t>(buckets_.size()));
    for (index_t d = 0; d < top; ++d) {
      for (index_t v : buckets_[d]) {
        if (valid(v)) {
          out.push_back(v);
        } else if (stats_ != nullptr) {
          ++stats_->frontier_wasted;
        }
      }
      buckets_[d].clear();
    }
  }

 private:
  std::vector<std::vector<index_t>> buckets_;
  PeelStats* stats_;
};

/// One degree-drop record produced while deleting edges: `vertex` fell
/// to residual degree `degree` (each atomic decrement observes a unique
/// value, so records are naturally distinct per vertex).
struct DegreeDrop {
  index_t vertex;
  index_t degree;
};

/// Per-lane append bags for degree drops. Lanes write race-free to
/// their own bag during a parallel region; the driver drains everything
/// between rounds. Capacity is the pool's lane count.
class LaneDropBags {
 public:
  explicit LaneDropBags(int lanes)
      : bags_(static_cast<std::size_t>(lanes)) {}

  void record(int lane, index_t vertex, index_t degree) {
    bags_[static_cast<std::size_t>(lane)].push_back({vertex, degree});
  }

  /// Invoke fn(vertex, degree) for every record, then clear all bags.
  template <typename Fn>
  void drain(Fn&& fn) {
    for (std::vector<DegreeDrop>& bag : bags_) {
      for (const DegreeDrop& drop : bag) fn(drop.vertex, drop.degree);
      bag.clear();
    }
  }

  count_t total() const {
    count_t n = 0;
    for (const std::vector<DegreeDrop>& bag : bags_) n += bag.size();
    return n;
  }

 private:
  std::vector<std::vector<DegreeDrop>> bags_;
};

/// Epoch-stamped claim marks over `size` items. claim(i) is true for
/// exactly one caller per epoch (atomic exchange), so concurrent lanes
/// can deduplicate the touched-edge set without clearing scratch
/// between rounds: next_epoch() invalidates every stamp in O(1).
class EpochStamps {
 public:
  explicit EpochStamps(index_t size);

  void next_epoch() { ++epoch_; }

  /// True exactly once per item per epoch, under any interleaving.
  bool claim(index_t item);

 private:
  std::vector<std::uint64_t> stamps_;  // accessed via std::atomic_ref
  std::uint64_t epoch_ = 0;
};

/// Lazy-deletion max-measure peeling heap for the generalized-core
/// policy: entries are (measure, vertex) snapshots; pop_min re-checks
/// each entry against the caller's current values and skips stale ones
/// (counted as frontier_wasted) instead of performing decrease-key.
/// Deterministic: ties break toward the lower vertex id, matching the
/// historical priority_queue implementation bit for bit.
class LazyPeelHeap {
 public:
  explicit LazyPeelHeap(PeelStats* stats) : stats_(stats) {}

  void push(index_t vertex, double key) {
    heap_.push(Entry{key, vertex});
    if (stats_ != nullptr) ++stats_->frontier_pushes;
  }

  /// Pop the minimum entry whose key still equals `current(vertex)` and
  /// whose vertex passes `live(vertex)`. Returns kInvalidIndex when the
  /// heap drains without a current entry.
  template <typename CurrentFn, typename LiveFn>
  index_t pop_min(CurrentFn&& current, LiveFn&& live) {
    while (!heap_.empty()) {
      const Entry top = heap_.top();
      heap_.pop();
      if (live(top.vertex) && top.key == current(top.vertex)) {
        return top.vertex;
      }
      if (stats_ != nullptr) ++stats_->frontier_wasted;
    }
    return kInvalidIndex;
  }

 private:
  struct Entry {
    double key;
    index_t vertex;
    bool operator>(const Entry& other) const {
      if (key != other.key) return key > other.key;
      return vertex > other.vertex;
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap_;
  PeelStats* stats_;
};

/// Shared initial-reduction fixpoint: delete every non-maximal edge of
/// `residual` (which must be freshly constructed or at least
/// vertex-complete) using the bulk containment sweep, re-seeding
/// follow-up candidates from the overlap neighborhoods of the edges
/// just doomed instead of rescanning all live edges. Returns the number
/// of edges erased. Deleting edges cannot create new containments
/// (residual vertex sets are untouched), so the re-seeded second sweep
/// is a bounded self-check that terminates the fixpoint after work
/// proportional to the doomed edges' neighborhoods -- adversarial
/// duplicate chains stay linear where the full-rescan loop went
/// quadratic.
index_t erase_non_maximal(ResidualHypergraph& residual, PeelStats* stats);

}  // namespace hp::hyper
