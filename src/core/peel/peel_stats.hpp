// Instrumentation counters for the peeling substrate.
//
// The paper's complexity claim for the k-core algorithm is
// O(|E| (Delta_2,F + Delta_V log Delta_2,F)): the first term pays for
// overlap maintenance (every pin deletion touches at most Delta_2,F
// overlap entries), the second for containment detection. PeelStats
// makes both terms observable: every algorithm built on the substrate
// reports how many overlap decrements and containment probes it actually
// performed, so the bound can be checked empirically (bench_micro_kcore,
// bench_table1_cores) instead of trusted.
//
// Invariants maintained by the substrate (asserted by
// tests/core/test_peel_substrate.cpp):
//   * overlap_decrements is even -- overlaps are symmetric and always
//     decremented in (f,g)/(g,f) pairs;
//   * containment_probes >= cascaded_edge_deletions -- an edge is only
//     deleted mid-peel after a probe found a container (or found the
//     edge empty, which counts as one probe);
//   * vertex_deletions <= |V| and edge_deletions <= |F|.
#pragma once

#include <string>

#include "obs/metrics.hpp"
#include "util/common.hpp"

namespace hp::hyper {

struct PeelStats {
  /// Single (f,g) overlap-entry decrements; symmetric pairs count twice.
  count_t overlap_decrements = 0;
  /// Overlap entries (or per-candidate counter bumps in bulk sweeps)
  /// examined while testing edges for containment.
  count_t containment_probes = 0;
  /// Vertices removed from the residual hypergraph.
  count_t vertex_deletions = 0;
  /// Hyperedges removed, including the initial (level-0) reduction.
  count_t edge_deletions = 0;
  /// Hyperedges removed during a level >= 1 peel, i.e. deletions
  /// cascading from vertex removals rather than input non-maximality.
  count_t cascaded_edge_deletions = 0;
  /// Peel rounds: levels processed by sequential peels, frontier rounds
  /// by bulk-synchronous peels.
  count_t peel_rounds = 0;
  /// Largest work-queue (or frontier) population observed.
  count_t peak_queue_length = 0;
  /// Frontier-engine entries pushed: lazy bucket inserts (one per degree
  /// drop plus the initial fill), per-lane bag appends, and heap pushes
  /// by the measure-driven peel. Bounded by |pins| + |V| per run.
  count_t frontier_pushes = 0;
  /// Frontier entries discarded as stale at drain/pop time (vertex
  /// already dead, duplicate of an entry seen this level, or a lazy
  /// heap key that no longer matches). wasted <= pushes always.
  count_t frontier_wasted = 0;
  /// Bounded subcore repairs performed by incremental core maintenance
  /// (core/mutate/): each repair re-peels only the components reachable
  /// from the dirty region.
  count_t repairs = 0;
  /// Repairs that escalated to a full re-peel because the affected
  /// region exceeded the repair threshold.
  count_t repair_fallbacks = 0;
  /// Vertices / edges re-peeled across all bounded repairs (the
  /// "repair size" -- compare against |V| / |F| to see the savings).
  count_t repaired_vertices = 0;
  count_t repaired_edges = 0;

  void note_queue_length(count_t length) {
    if (length > peak_queue_length) peak_queue_length = length;
  }

  PeelStats& operator+=(const PeelStats& other) {
    overlap_decrements += other.overlap_decrements;
    containment_probes += other.containment_probes;
    vertex_deletions += other.vertex_deletions;
    edge_deletions += other.edge_deletions;
    cascaded_edge_deletions += other.cascaded_edge_deletions;
    peel_rounds += other.peel_rounds;
    note_queue_length(other.peak_queue_length);
    frontier_pushes += other.frontier_pushes;
    frontier_wasted += other.frontier_wasted;
    repairs += other.repairs;
    repair_fallbacks += other.repair_fallbacks;
    repaired_vertices += other.repaired_vertices;
    repaired_edges += other.repaired_edges;
    return *this;
  }
};

/// Flat "peel.*" metric samples -- the struct viewed as registry-style
/// counters, consumed by the shared obs exporters.
obs::MetricsSnapshot to_metrics(const PeelStats& stats);

/// Accumulate the totals into the global obs registry ("peel.*"
/// counters add up across peels; the peak queue length is a gauge).
/// core_decomposition calls this once per run.
void publish_metrics(const PeelStats& stats);

/// Multi-line human-readable rendering (CLI --peel-stats, benches);
/// formats through obs::render_table, the shared metrics table
/// exporter.
std::string to_string(const PeelStats& stats);

}  // namespace hp::hyper
