#include "core/peel/containment.hpp"

#include <algorithm>
#include <atomic>

#include "par/thread_pool.hpp"

namespace hp::hyper {

index_t find_container(const ResidualHypergraph& residual,
                       const FlatOverlapTracker& overlaps, index_t f,
                       PeelStats* stats) {
  const index_t size_f = residual.edge_size(f);
  if (size_f == 0) {
    // Empty residual set: "contained" sentinel. Counted as one probe so
    // that probes >= cascaded deletions holds.
    if (stats != nullptr) ++stats->containment_probes;
    return f;
  }
  const auto row = overlaps.neighbors(f);
  const auto counts = overlaps.counts(f);
  index_t container = kInvalidIndex;
  std::size_t probes = 0;
  for (std::size_t s = 0; s < row.size(); ++s) {
    ++probes;
    const index_t g = row[s];
    const index_t ov = counts[s];
    if (!residual.edge_alive(g) || ov == 0) continue;
    if (ov == size_f) {  // f subset of (or equal to) g
      container = g;
      break;
    }
  }
  if (stats != nullptr) stats->containment_probes += probes;
  return container;
}

std::vector<index_t> find_non_maximal(const ResidualHypergraph& residual,
                                      std::span<const index_t> candidates,
                                      PeelStats* stats) {
  const Hypergraph& h = residual.base();
  // Atomic because duplicate candidates may mark the same edge from two
  // lanes; every store writes 1, so relaxed ordering is enough.
  std::vector<std::atomic<char>> doomed(h.num_edges());
  const index_t n = static_cast<index_t>(candidates.size());

  // Per-lane scratch: the overlap-counting sweep needs an |F|-sized
  // count array, reused across every candidate a lane processes.
  struct LaneScratch {
    std::vector<index_t> count;
    std::vector<index_t> seen;
    count_t probes = 0;
  };
  std::vector<LaneScratch> scratch(
      static_cast<std::size_t>(par::ThreadPool::global().thread_count()));

  par::parallel_for(0, n, /*grain=*/8, [&](index_t chunk_begin,
                                           index_t chunk_end, int lane) {
    LaneScratch& s = scratch[static_cast<std::size_t>(lane)];
    if (s.count.empty()) s.count.assign(h.num_edges(), 0);
    for (index_t idx = chunk_begin; idx < chunk_end; ++idx) {
      const index_t f = candidates[idx];
      if (!residual.edge_alive(f)) continue;
      const index_t size_f = residual.edge_size(f);
      if (size_f == 0) {
        doomed[f].store(1, std::memory_order_relaxed);
        ++s.probes;
        continue;
      }
      s.seen.clear();
      bool contained = false;
      for (index_t w : h.vertices_of(f)) {
        if (!residual.vertex_alive(w)) continue;
        for (index_t g : h.edges_of(w)) {
          if (g == f || !residual.edge_alive(g)) continue;
          ++s.probes;
          if (s.count[g] == 0) s.seen.push_back(g);
          ++s.count[g];
          if (s.count[g] == size_f) {
            // f's residual set lies inside g's. Strict containment
            // always dooms f; identical residual sets keep the lowest
            // id (deterministic under any schedule).
            const index_t size_g = residual.edge_size(g);
            if (size_g > size_f || (size_g == size_f && g < f)) {
              contained = true;
              break;
            }
          }
        }
        if (contained) break;
      }
      for (index_t g : s.seen) s.count[g] = 0;
      if (contained) doomed[f].store(1, std::memory_order_relaxed);
    }
  });

  if (stats != nullptr) {
    for (const LaneScratch& s : scratch) stats->containment_probes += s.probes;
  }

  std::vector<index_t> result;
  for (index_t f : candidates) {
    if (doomed[f].load(std::memory_order_relaxed)) result.push_back(f);
  }
  // Candidates may contain duplicates; dedupe.
  std::sort(result.begin(), result.end());
  result.erase(std::unique(result.begin(), result.end()), result.end());
  return result;
}

}  // namespace hp::hyper
