#include "core/peel/containment.hpp"

#include <algorithm>

#ifdef HP_HAVE_OPENMP
#include <omp.h>
#endif

namespace hp::hyper {

index_t find_container(const ResidualHypergraph& residual,
                       const FlatOverlapTracker& overlaps, index_t f,
                       PeelStats* stats) {
  const index_t size_f = residual.edge_size(f);
  if (size_f == 0) {
    // Empty residual set: "contained" sentinel. Counted as one probe so
    // that probes >= cascaded deletions holds.
    if (stats != nullptr) ++stats->containment_probes;
    return f;
  }
  const auto row = overlaps.neighbors(f);
  const auto counts = overlaps.counts(f);
  index_t container = kInvalidIndex;
  std::size_t probes = 0;
  for (std::size_t s = 0; s < row.size(); ++s) {
    ++probes;
    const index_t g = row[s];
    const index_t ov = counts[s];
    if (!residual.edge_alive(g) || ov == 0) continue;
    if (ov == size_f) {  // f subset of (or equal to) g
      container = g;
      break;
    }
  }
  if (stats != nullptr) stats->containment_probes += probes;
  return container;
}

std::vector<index_t> find_non_maximal(const ResidualHypergraph& residual,
                                      std::span<const index_t> candidates,
                                      PeelStats* stats) {
  const Hypergraph& h = residual.base();
  std::vector<char> doomed(h.num_edges(), 0);
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(candidates.size());
  count_t probes_total = 0;
#ifdef HP_HAVE_OPENMP
#pragma omp parallel reduction(+ : probes_total)
#endif
  {
    std::vector<index_t> count(h.num_edges(), 0);
    std::vector<index_t> seen;
    count_t probes = 0;
#ifdef HP_HAVE_OPENMP
#pragma omp for schedule(dynamic, 8)
#endif
    for (std::ptrdiff_t idx = 0; idx < n; ++idx) {
      const index_t f = candidates[idx];
      if (!residual.edge_alive(f)) continue;
      const index_t size_f = residual.edge_size(f);
      if (size_f == 0) {
        doomed[f] = 1;
        ++probes;
        continue;
      }
      seen.clear();
      bool contained = false;
      for (index_t w : h.vertices_of(f)) {
        if (!residual.vertex_alive(w)) continue;
        for (index_t g : h.edges_of(w)) {
          if (g == f || !residual.edge_alive(g)) continue;
          ++probes;
          if (count[g] == 0) seen.push_back(g);
          ++count[g];
          if (count[g] == size_f) {
            // f's residual set lies inside g's. Strict containment
            // always dooms f; identical residual sets keep the lowest
            // id (deterministic under any schedule).
            const index_t size_g = residual.edge_size(g);
            if (size_g > size_f || (size_g == size_f && g < f)) {
              contained = true;
              break;
            }
          }
        }
        if (contained) break;
      }
      for (index_t g : seen) count[g] = 0;
      if (contained) doomed[f] = 1;
    }
    probes_total += probes;
  }
  if (stats != nullptr) stats->containment_probes += probes_total;

  std::vector<index_t> result;
  for (index_t f : candidates) {
    if (doomed[f]) result.push_back(f);
  }
  // Candidates may contain duplicates; dedupe.
  std::sort(result.begin(), result.end());
  result.erase(std::unique(result.begin(), result.end()), result.end());
  return result;
}

}  // namespace hp::hyper
