// Containment (non-maximality) detection on a residual hypergraph.
//
// The paper's trick (section 3): a hyperedge f is contained in a live
// hyperedge g exactly when f's current cardinality equals its current
// overlap with g -- no set comparison needed. This module is the single
// home for both flavors of that test; reduce, the sequential k-core peel
// and the bulk-synchronous parallel peel all route through here instead
// of keeping private copies.
#pragma once

#include <span>
#include <vector>

#include "core/peel/flat_overlap.hpp"
#include "core/peel/residual.hpp"

namespace hp::hyper {

/// Incremental flavor (sequential peel): scan f's overlap row for a live
/// container. Returns a live g with f ⊆ g, f itself when f's residual
/// set is empty, or kInvalidIndex when f is maximal. For identical
/// residual sets any of the duplicates may be returned; the peel deletes
/// the edge it is currently probing, so exactly one representative
/// survives. O(d2(f)) row entries, counted as containment probes.
index_t find_container(const ResidualHypergraph& residual,
                       const FlatOverlapTracker& overlaps, index_t f,
                       PeelStats* stats);

/// Bulk flavor (parallel peel, whole-hypergraph reduction): decide which
/// of `candidates` are non-maximal under the current residual sets via
/// an overlap-counting sweep per candidate with thread-local counters
/// (parallel over candidates on the shared pool, src/par/). Strict containment always
/// dooms a candidate; among identical residual sets the lowest id
/// survives, making the result deterministic under any schedule.
/// Candidates may repeat; the returned doomed list is sorted and unique.
std::vector<index_t> find_non_maximal(const ResidualHypergraph& residual,
                                      std::span<const index_t> candidates,
                                      PeelStats* stats);

}  // namespace hp::hyper
