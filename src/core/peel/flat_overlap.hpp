// Flat sparse pairwise-overlap tracker (CSR-of-rows).
//
// Stores overlap(f, g) = |f ∩ g| for every unordered pair of distinct
// hyperedges sharing at least one vertex, the quantity the paper's
// k-core peel maintains instead of comparing vertex sets. Unlike the
// historical vector-of-unordered_map layout, all rows live in two
// contiguous arrays (neighbor ids, counts) addressed by per-row offsets:
//
//   offsets_:   |F|+1 row starts
//   neighbors_: row f = sorted ids of edges overlapping f   (static)
//   counts_:    counts_[s] = current overlap with neighbors_[s]
//
// The neighbor structure is fixed at construction (peeling only ever
// *decrements* counts; an entry that reaches zero stays in place), so
// point lookups are binary searches -- the paper's Delta_V ln Delta_2,F
// term -- while the hot batch update (all edges sharing a just-deleted
// vertex lose one unit of pairwise overlap) is a marked sweep over the
// touched rows: amortized O(1) per row entry, contiguous, allocation
// free. Row sweeps are bounded by Delta_2,F per touch and every edge is
// touched once per member deletion, which is exactly the paper's
// O(|E| Delta_2,F) overlap-maintenance term.
#pragma once

#include <span>
#include <vector>

#include "core/hypergraph.hpp"
#include "core/peel/peel_stats.hpp"

namespace hp::hyper {

class FlatOverlapTracker {
 public:
  /// Build from incidence lists in O(sum_f sum_{v in f} d(v)) time.
  explicit FlatOverlapTracker(const Hypergraph& h);

  index_t num_edges() const {
    return static_cast<index_t>(offsets_.empty() ? 0 : offsets_.size() - 1);
  }

  /// Sorted ids of edges that (initially) overlap f.
  std::span<const index_t> neighbors(index_t f) const {
    return {neighbors_.data() + offsets_[f],
            neighbors_.data() + offsets_[f + 1]};
  }

  /// Current counts, parallel to neighbors(f). Entries may be zero once
  /// peeling has erased every shared vertex of the pair.
  std::span<const index_t> counts(index_t f) const {
    return {counts_.data() + offsets_[f], counts_.data() + offsets_[f + 1]};
  }

  /// |f ∩ g| under all decrements so far; 0 when disjoint or f == g.
  index_t overlap(index_t f, index_t g) const;

  /// d2(f): number of hyperedges overlapping f in the *input* hypergraph
  /// (row width; decrements do not shrink it, matching the paper's
  /// Delta_2,F which is a static quantity).
  index_t degree2(index_t f) const {
    return static_cast<index_t>(offsets_[f + 1] - offsets_[f]);
  }

  /// Delta_2,F: max degree2 over all hyperedges (0 if no edges).
  index_t max_degree2() const;

  /// Every pair of distinct edges in `clique` loses one unit of overlap
  /// (they shared a vertex that was just deleted). `clique` must hold
  /// distinct edge ids whose pairwise overlaps are all currently >= 1.
  /// Cost: sum of the touched rows' widths, one contiguous sweep each.
  void decrement_clique(std::span<const index_t> clique, PeelStats* stats);

  /// Point decrement of the symmetric pair (f, g); O(log d2) each side.
  void decrement(index_t f, index_t g, PeelStats* stats);

  /// Bytes held by the CSR arrays (footprint reporting / benches).
  std::size_t storage_bytes() const {
    return offsets_.size() * sizeof(offsets_[0]) +
           neighbors_.size() * sizeof(neighbors_[0]) +
           counts_.size() * sizeof(counts_[0]) +
           in_clique_.size() * sizeof(in_clique_[0]);
  }

 private:
  /// Slot of g inside row f, or kInvalidIndex when disjoint.
  std::size_t slot_of(index_t f, index_t g) const;

  std::vector<std::size_t> offsets_;
  std::vector<index_t> neighbors_;
  std::vector<index_t> counts_;
  std::vector<char> in_clique_;  // |F| scratch marks for decrement_clique
};

}  // namespace hp::hyper
