#include "core/peel/residual.hpp"

#include <atomic>

namespace hp::hyper {

ResidualHypergraph::ResidualHypergraph(const Hypergraph& h)
    : h_(&h),
      vertex_alive_(h.num_vertices(), 1),
      edge_alive_(h.num_edges(), 1),
      vertex_degree_(h.num_vertices()),
      edge_size_(h.num_edges()),
      live_vertices_(h.num_vertices()),
      live_edges_(h.num_edges()) {
  for (index_t v = 0; v < h.num_vertices(); ++v) {
    vertex_degree_[v] = h.vertex_degree(v);
  }
  for (index_t e = 0; e < h.num_edges(); ++e) {
    edge_size_[e] = h.edge_size(e);
  }
}

void ResidualHypergraph::mark_vertex_dead(index_t v) {
  vertex_alive_[v] = 0;
  --live_vertices_;
  if (stats_ != nullptr) ++stats_->vertex_deletions;
  if (vertex_core_ != nullptr && level_ >= 1) {
    (*vertex_core_)[v] = level_ - 1;
  }
}

void ResidualHypergraph::mark_edge_dead(index_t f) {
  edge_alive_[f] = 0;
  --live_edges_;
  if (stats_ != nullptr) {
    ++stats_->edge_deletions;
    if (level_ >= 1) ++stats_->cascaded_edge_deletions;
  }
  if (edge_core_ != nullptr && level_ >= 1) {
    (*edge_core_)[f] = level_ - 1;
  }
}

void ResidualHypergraph::erase_vertex(index_t v,
                                      std::vector<index_t>& touched) {
  mark_vertex_dead(v);
  for (index_t e : h_->edges_of(v)) {
    if (edge_alive_[e] == 0) continue;
    --edge_size_[e];
    touched.push_back(e);
  }
}

void ResidualHypergraph::erase_vertex(index_t v) {
  mark_vertex_dead(v);
  for (index_t e : h_->edges_of(v)) {
    if (edge_alive_[e] != 0) --edge_size_[e];
  }
}

void ResidualHypergraph::erase_edge(index_t f) {
  mark_edge_dead(f);
  for (index_t w : h_->vertices_of(f)) {
    if (vertex_alive_[w] != 0) --vertex_degree_[w];
  }
}

void ResidualHypergraph::shrink_edge_atomic(index_t e) {
  std::atomic_ref<index_t> size{edge_size_[e]};
  size.fetch_sub(1, std::memory_order_relaxed);
}

index_t ResidualHypergraph::drop_degree_atomic(index_t w) {
  std::atomic_ref<index_t> degree{vertex_degree_[w]};
  return degree.fetch_sub(1, std::memory_order_relaxed) - 1;
}

void ResidualHypergraph::note_bulk_erase(index_t vertices, index_t edges) {
  live_vertices_ -= vertices;
  live_edges_ -= edges;
  if (stats_ != nullptr) {
    stats_->vertex_deletions += vertices;
    stats_->edge_deletions += edges;
    if (level_ >= 1) stats_->cascaded_edge_deletions += edges;
  }
}

}  // namespace hp::hyper
