// Residual-hypergraph bookkeeping shared by every peeling algorithm.
//
// A peel works on a shrinking sub-hypergraph of an immutable Hypergraph:
// alive masks, residual vertex degrees (live incident edges), residual
// edge sizes (live member vertices), and live counts. Historically each
// algorithm (sequential/naive/parallel k-core, generalized cores,
// reduction, multicover) carried a private copy of this state; this
// class is the single substrate they now share, leaving each algorithm
// only its *policy* -- peel order, threshold rule, measure.
//
// Deletion primitives are cascade-free by design: erase_vertex reports
// the live edges it shrank, erase_edge invokes a caller-supplied hook per
// member vertex whose degree dropped. The caller decides what to enqueue
// or delete next, so the same substrate serves threshold peels, bulk
// frontiers, measure-driven heaps and cover demand tracking.
//
// Core stamping (satellite of the paper's Fig. 4): when core-number
// arrays are bound, erase_* stamps the removed item with level-1 at the
// moment of deletion. Since a peel runs until nothing is alive, every
// item is stamped exactly once -- no per-level survivor sweeps needed.
#pragma once

#include <utility>
#include <vector>

#include "core/hypergraph.hpp"
#include "core/peel/peel_stats.hpp"

namespace hp::hyper {

class ResidualHypergraph {
 public:
  explicit ResidualHypergraph(const Hypergraph& h);

  const Hypergraph& base() const { return *h_; }

  bool vertex_alive(index_t v) const { return vertex_alive_[v] != 0; }
  bool edge_alive(index_t e) const { return edge_alive_[e] != 0; }
  index_t vertex_degree(index_t v) const { return vertex_degree_[v]; }
  index_t edge_size(index_t e) const { return edge_size_[e]; }
  index_t live_vertices() const { return live_vertices_; }
  index_t live_edges() const { return live_edges_; }

  /// Optional instrumentation: deletions are counted into `stats`.
  void bind_stats(PeelStats* stats) { stats_ = stats; }

  /// Optional core stamping: erase_vertex / erase_edge write level-1
  /// into these arrays (sized |V| / |F|) while peel_level() >= 1.
  void bind_cores(std::vector<index_t>* vertex_core,
                  std::vector<index_t>* edge_core) {
    vertex_core_ = vertex_core;
    edge_core_ = edge_core;
  }

  /// Current peel level k; level 0 is the initial reduction (deletions
  /// are not stamped and not counted as cascaded).
  void set_peel_level(index_t k) { level_ = k; }
  index_t peel_level() const { return level_; }

  /// Delete vertex v: mark dead, shrink every live incident edge by one,
  /// append those edges to `touched` (not cleared). Stamps v if bound.
  void erase_vertex(index_t v, std::vector<index_t>& touched);

  /// Same, discarding the touched-edge list.
  void erase_vertex(index_t v);

  /// Delete edge f: mark dead, decrement the degree of every live member
  /// vertex, invoking on_degree_drop(w, new_degree) for each. Stamps f
  /// if bound.
  template <typename F>
  void erase_edge(index_t f, F&& on_degree_drop) {
    mark_edge_dead(f);
    for (index_t w : h_->vertices_of(f)) {
      if (vertex_alive_[w] == 0) continue;
      on_degree_drop(w, --vertex_degree_[w]);
    }
  }

  /// Same, without a degree-drop hook.
  void erase_edge(index_t f);

  // --- Bulk-parallel primitives (frontier engine) -------------------
  //
  // The bulk-synchronous peel erases a whole frontier of vertices (then
  // a whole batch of doomed edges) from concurrent pool lanes. Item
  // ownership is disjoint -- each vertex/edge is erased by exactly one
  // lane -- so alive flags and core stamps are plain disjoint writes,
  // while the shared degree/size counters use atomic decrements. Live
  // counts and stats are settled once per phase via note_bulk_erase
  // (calling it is the caller's obligation; the mark_*_bulk primitives
  // deliberately touch neither). Phase discipline keeps the reads safe:
  // a vertex phase never writes edge-alive flags and vice versa.

  /// Mark v dead and stamp its core (level-1) if bound. No counters.
  void mark_vertex_dead_bulk(index_t v) {
    vertex_alive_[v] = 0;
    if (vertex_core_ != nullptr && level_ >= 1) {
      (*vertex_core_)[v] = level_ - 1;
    }
  }

  /// Mark f dead and stamp its core (level-1) if bound. No counters.
  void mark_edge_dead_bulk(index_t f) {
    edge_alive_[f] = 0;
    if (edge_core_ != nullptr && level_ >= 1) {
      (*edge_core_)[f] = level_ - 1;
    }
  }

  /// Atomically shrink edge e's residual size by one (a member vertex
  /// died). Safe from any lane while no lane writes edge-alive flags.
  void shrink_edge_atomic(index_t e);

  /// Atomically drop vertex w's residual degree by one (an incident
  /// edge died); returns the new degree. Each concurrent decrement
  /// observes a distinct value, so (w, new_degree) records are unique.
  index_t drop_degree_atomic(index_t w);

  /// Settle live counts and deletion stats after bulk phases erased
  /// `vertices` vertices and `edges` edges via the mark_*_bulk
  /// primitives. Serial (driver) code only.
  void note_bulk_erase(index_t vertices, index_t edges);

 private:
  void mark_vertex_dead(index_t v);
  void mark_edge_dead(index_t f);

  const Hypergraph* h_;
  std::vector<char> vertex_alive_;
  std::vector<char> edge_alive_;
  std::vector<index_t> vertex_degree_;  // live incident edges
  std::vector<index_t> edge_size_;      // live member vertices
  index_t live_vertices_ = 0;
  index_t live_edges_ = 0;
  index_t level_ = 0;
  PeelStats* stats_ = nullptr;
  std::vector<index_t>* vertex_core_ = nullptr;
  std::vector<index_t>* edge_core_ = nullptr;
};

}  // namespace hp::hyper
