// Umbrella header for the peeling substrate: residual bookkeeping, flat
// overlap tracking, containment detection and instrumentation. See the
// "Peeling substrate" section of DESIGN.md for the layer diagram.
#pragma once

#include "core/peel/containment.hpp"   // IWYU pragma: export
#include "core/peel/flat_overlap.hpp"  // IWYU pragma: export
#include "core/peel/peel_stats.hpp"    // IWYU pragma: export
#include "core/peel/residual.hpp"      // IWYU pragma: export
