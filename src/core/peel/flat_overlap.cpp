#include "core/peel/flat_overlap.hpp"

#include <algorithm>

namespace hp::hyper {

namespace {
constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);
}  // namespace

FlatOverlapTracker::FlatOverlapTracker(const Hypergraph& h)
    : in_clique_(h.num_edges(), 0) {
  const index_t ne = h.num_edges();
  offsets_.reserve(static_cast<std::size_t>(ne) + 1);
  offsets_.push_back(0);

  // Per-row accumulation: count, over f's members, how often each other
  // incident edge appears; that multiplicity is |f ∩ g|. The scratch
  // counter array is cleared via the `seen` list, keeping each row
  // O(sum_{v in f} d(v)).
  std::vector<index_t> scratch(ne, 0);
  std::vector<index_t> seen;
  for (index_t f = 0; f < ne; ++f) {
    seen.clear();
    for (index_t v : h.vertices_of(f)) {
      for (index_t g : h.edges_of(v)) {
        if (g == f) continue;
        if (scratch[g] == 0) seen.push_back(g);
        ++scratch[g];
      }
    }
    std::sort(seen.begin(), seen.end());
    for (index_t g : seen) {
      neighbors_.push_back(g);
      counts_.push_back(scratch[g]);
      scratch[g] = 0;
    }
    offsets_.push_back(neighbors_.size());
  }
}

std::size_t FlatOverlapTracker::slot_of(index_t f, index_t g) const {
  const auto row = neighbors(f);
  const auto it = std::lower_bound(row.begin(), row.end(), g);
  if (it == row.end() || *it != g) return kNoSlot;
  return offsets_[f] + static_cast<std::size_t>(it - row.begin());
}

index_t FlatOverlapTracker::overlap(index_t f, index_t g) const {
  if (f == g) return 0;
  const std::size_t slot = slot_of(f, g);
  return slot == kNoSlot ? 0 : counts_[slot];
}

index_t FlatOverlapTracker::max_degree2() const {
  index_t best = 0;
  for (index_t f = 0; f < num_edges(); ++f) {
    best = std::max(best, degree2(f));
  }
  return best;
}

void FlatOverlapTracker::decrement_clique(std::span<const index_t> clique,
                                          PeelStats* stats) {
  if (clique.size() < 2) return;
  for (index_t f : clique) in_clique_[f] = 1;
  count_t decrements = 0;
  for (index_t f : clique) {
    // One contiguous sweep of row f handles f's side of every pair
    // (f, g) with g marked; g's sweep handles the mirror entry.
    const std::size_t begin = offsets_[f];
    const std::size_t end = offsets_[f + 1];
    for (std::size_t s = begin; s < end; ++s) {
      if (in_clique_[neighbors_[s]]) {
        --counts_[s];
        ++decrements;
      }
    }
  }
  for (index_t f : clique) in_clique_[f] = 0;
  if (stats != nullptr) stats->overlap_decrements += decrements;
}

void FlatOverlapTracker::decrement(index_t f, index_t g, PeelStats* stats) {
  const std::size_t sf = slot_of(f, g);
  const std::size_t sg = slot_of(g, f);
  HP_REQUIRE(sf != kNoSlot && sg != kNoSlot,
             "FlatOverlapTracker::decrement: pair never overlapped");
  --counts_[sf];
  --counts_[sg];
  if (stats != nullptr) stats->overlap_decrements += 2;
}

}  // namespace hp::hyper
