#include "core/peel/peel_stats.hpp"

namespace hp::hyper {

obs::MetricsSnapshot to_metrics(const PeelStats& stats) {
  obs::MetricsSnapshot snap;
  snap.counters = {
      {"peel.overlap_decrements", stats.overlap_decrements},
      {"peel.containment_probes", stats.containment_probes},
      {"peel.vertex_deletions", stats.vertex_deletions},
      {"peel.edge_deletions", stats.edge_deletions},
      {"peel.cascaded_edge_deletions", stats.cascaded_edge_deletions},
      {"peel.rounds", stats.peel_rounds},
      {"peel.peak_queue_length", stats.peak_queue_length},
      {"peel.frontier_pushes", stats.frontier_pushes},
      {"peel.frontier_wasted", stats.frontier_wasted},
      {"peel.repairs", stats.repairs},
      {"peel.repair_fallbacks", stats.repair_fallbacks},
      {"peel.repaired_vertices", stats.repaired_vertices},
      {"peel.repaired_edges", stats.repaired_edges},
  };
  return snap;
}

void publish_metrics(const PeelStats& stats) {
  obs::counter("peel.overlap_decrements").add(stats.overlap_decrements);
  obs::counter("peel.containment_probes").add(stats.containment_probes);
  obs::counter("peel.vertex_deletions").add(stats.vertex_deletions);
  obs::counter("peel.edge_deletions").add(stats.edge_deletions);
  obs::counter("peel.cascaded_edge_deletions")
      .add(stats.cascaded_edge_deletions);
  obs::counter("peel.rounds").add(stats.peel_rounds);
  obs::counter("peel.frontier_pushes").add(stats.frontier_pushes);
  obs::counter("peel.frontier_wasted").add(stats.frontier_wasted);
  obs::counter("peel.repairs").add(stats.repairs);
  obs::counter("peel.repair_fallbacks").add(stats.repair_fallbacks);
  obs::counter("peel.repaired_vertices").add(stats.repaired_vertices);
  obs::counter("peel.repaired_edges").add(stats.repaired_edges);
  // Peaks do not sum across peels; last-write gauge keeps the largest
  // recent value observable without inventing max-counter semantics.
  obs::gauge("peel.peak_queue_length")
      .set(static_cast<double>(stats.peak_queue_length));
}

std::string to_string(const PeelStats& stats) {
  return obs::render_table(to_metrics(stats));
}

}  // namespace hp::hyper
