#include "core/peel/peel_stats.hpp"

#include <sstream>

namespace hp::hyper {

std::string to_string(const PeelStats& stats) {
  std::ostringstream out;
  out << "overlap decrements        : " << stats.overlap_decrements << '\n'
      << "containment probes        : " << stats.containment_probes << '\n'
      << "vertex deletions          : " << stats.vertex_deletions << '\n'
      << "edge deletions            : " << stats.edge_deletions << '\n'
      << "  cascaded (level >= 1)   : " << stats.cascaded_edge_deletions
      << '\n'
      << "peel rounds               : " << stats.peel_rounds << '\n'
      << "peak queue length         : " << stats.peak_queue_length << '\n';
  return out.str();
}

}  // namespace hp::hyper
