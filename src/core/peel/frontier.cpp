#include "core/peel/frontier.hpp"

#include <atomic>

#include "core/peel/containment.hpp"

namespace hp::hyper {

EpochStamps::EpochStamps(index_t size)
    : stamps_(static_cast<std::size_t>(size), 0) {
  // Epoch 0 is the initial stamp value; start handing out epoch 1 so the
  // first round's claims are distinguishable without clearing.
  epoch_ = 1;
}

bool EpochStamps::claim(index_t item) {
  std::atomic_ref<std::uint64_t> stamp{stamps_[item]};
  return stamp.exchange(epoch_, std::memory_order_relaxed) != epoch_;
}

index_t erase_non_maximal(ResidualHypergraph& residual, PeelStats* stats) {
  const Hypergraph& h = residual.base();
  std::vector<index_t> candidates(h.num_edges());
  for (index_t e = 0; e < h.num_edges(); ++e) candidates[e] = e;

  index_t erased = 0;
  std::vector<char> queued;  // sized lazily: most inputs finish in one pass
  for (;;) {
    const std::vector<index_t> doomed =
        find_non_maximal(residual, candidates, stats);
    if (doomed.empty()) break;
    for (index_t f : doomed) {
      if (!residual.edge_alive(f)) continue;
      residual.erase_edge(f);
      ++erased;
    }
    // Deleting edges leaves every residual vertex set untouched, so no
    // containment can newly appear and the next sweep is a self-check
    // expected to come back empty. Seed it from the overlap
    // neighborhoods of the edges just doomed -- the only candidates a
    // hypothetical substrate bug could affect -- rather than rescanning
    // all live edges, which made adversarial duplicate chains quadratic.
    if (queued.empty()) queued.assign(h.num_edges(), 0);
    candidates.clear();
    for (index_t f : doomed) {
      for (index_t w : h.vertices_of(f)) {
        if (!residual.vertex_alive(w)) continue;
        for (index_t g : h.edges_of(w)) {
          if (residual.edge_alive(g) && queued[g] == 0) {
            queued[g] = 1;
            candidates.push_back(g);
          }
        }
      }
    }
    for (index_t g : candidates) queued[g] = 0;  // marks dedupe one build
    if (candidates.empty()) break;
  }
  return erased;
}

}  // namespace hp::hyper
