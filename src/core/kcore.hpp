// Hypergraph k-core decomposition -- the paper's central algorithm
// (Fig. 4).
//
// Definition (section 3): the k-core of a hypergraph H is the maximal
// sub-hypergraph that is *reduced* (no hyperedge contained in another)
// and in which every vertex belongs to at least k hyperedges. When a
// vertex is deleted it is removed from all hyperedges containing it; a
// hyperedge is deleted as soon as it stops being maximal (including the
// special case of becoming empty).
//
// Non-maximality is detected without set comparisons by maintaining
// pairwise overlap counts: hyperedge f is contained in a live hyperedge
// g exactly when f's current cardinality equals its current overlap with
// g. Complexity: O(|E| (Delta_2,F + Delta_V log Delta_2,F)) as analyzed
// in the paper (hash maps here replace the paper's balanced trees, making
// the log factor expected O(1)).
//
// The decomposition runs the peel at k = 1, 2, ... on the shrinking
// residual; core(x) = largest k such that x survives the level-k peel.
// Cores are nested, and the maximum core is the largest k with a
// non-empty residual.
#pragma once

#include <vector>

#include "core/hypergraph.hpp"
#include "core/peel/peel_stats.hpp"

namespace hp::hyper {

/// Result of the full core decomposition.
struct HyperCoreResult {
  /// vertex_core[v] = largest k such that v belongs to the k-core
  /// (0 = not even in the 1-core, e.g. an isolated vertex).
  std::vector<index_t> vertex_core;
  /// edge_core[e] = largest k such that e belongs (as a residual edge)
  /// to the k-core. For groups of hyperedges that become identical during
  /// peeling, only one representative keeps the higher core value; which
  /// one is implementation-defined, but the *count* per level is not.
  std::vector<index_t> edge_core;
  /// in_reduced[e] != 0 iff edge e survived the initial reduction (the
  /// level-0 residual). Not derivable from edge_core: reduction-removed
  /// and level-1-removed edges both report core 0, yet only the latter
  /// counted toward level_edges[0]. Incremental core repair
  /// (core/mutate/) needs this to maintain level_edges[0] under splices.
  std::vector<char> in_reduced;
  /// Largest k with a non-empty k-core.
  index_t max_core = 0;
  /// level_vertices[k] / level_edges[k]: number of vertices / edges in
  /// the k-core, for k = 0 .. max_core (index 0 = whole reduced input).
  std::vector<index_t> level_vertices;
  std::vector<index_t> level_edges;

  std::vector<index_t> core_vertices(index_t k) const;
  std::vector<index_t> core_edges(index_t k) const;
};

/// Full core decomposition via the overlap-maintaining peel. Level
/// seeds come from the lazy degree-bucket frontier engine
/// (core/peel/frontier.hpp), so each level costs O(degree drops)
/// instead of an O(|V|) rescan.
HyperCoreResult core_decomposition(const Hypergraph& h);

/// Instrumented variant: substrate counters (overlap decrements,
/// containment probes, cascades, rounds, peak queue, frontier
/// pushes/wasted) are accumulated into `*stats` when non-null.
HyperCoreResult core_decomposition(const Hypergraph& h, PeelStats* stats);

/// Legacy scan-and-stamp engine: identical cascade, but every level
/// rescans all |V| vertices for sub-threshold seeds. Kept as the
/// differential-testing oracle for the frontier engine -- results are
/// bit-identical (vertex_core, edge_core, levels, in_reduced) on every
/// input; only the seeding cost differs.
HyperCoreResult core_decomposition_scan(const Hypergraph& h,
                                        PeelStats* stats = nullptr);

/// Extract the k-core as a standalone hypergraph (residual hyperedges
/// restricted to core vertices), with id maps back to the input.
SubHypergraph extract_core(const Hypergraph& h, const HyperCoreResult& d,
                           index_t k);

/// Verify that `core` (as a sub-hypergraph of h described by the masks)
/// satisfies the k-core conditions: reduced, and every vertex has degree
/// >= k. Used by tests and exposed for downstream sanity checks.
bool satisfies_core_conditions(const Hypergraph& core, index_t k);

}  // namespace hp::hyper
