// Hypergraph matchings -- the LP-dual counterpart of the vertex covers
// in section 4.
//
// A matching is a set of pairwise disjoint hyperedges. By weak LP
// duality, the size of any matching lower-bounds the size of any vertex
// cover (each matched hyperedge needs its own cover vertex), giving a
// second, combinatorial certificate for the greedy covers alongside the
// primal-dual bound. In the TAP setting a matching is a set of
// complexes with no shared proteins -- complexes whose pulldowns can be
// attributed unambiguously.
#pragma once

#include <vector>

#include "core/hypergraph.hpp"

namespace hp::hyper {

struct MatchingResult {
  std::vector<index_t> edges;  ///< chosen pairwise-disjoint hyperedges
};

/// Greedy maximal matching, scanning hyperedges by ascending
/// cardinality (small edges block fewer vertices, a classic heuristic).
/// The result is maximal: every unchosen hyperedge intersects a chosen
/// one.
MatchingResult greedy_matching(const Hypergraph& h);

/// True if the edges are pairwise vertex-disjoint.
bool is_matching(const Hypergraph& h, const std::vector<index_t>& edges);

/// True if no hyperedge can be added (every edge intersects the set).
bool is_maximal_matching(const Hypergraph& h,
                         const std::vector<index_t>& edges);

/// Exact maximum matching by branch and bound; exponential, intended
/// for test oracles (throws std::invalid_argument above max_edges).
MatchingResult exact_maximum_matching(const Hypergraph& h,
                                      index_t max_edges = 24);

}  // namespace hp::hyper
