#include "core/kcore_parallel.hpp"

#include <algorithm>
#include <vector>

#ifdef HP_HAVE_OPENMP
#include <omp.h>
#endif

namespace hp::hyper {

namespace {

/// Shared bulk-synchronous peel state.
struct BulkState {
  const Hypergraph& h;
  std::vector<char> vertex_alive;
  std::vector<char> edge_alive;
  std::vector<index_t> vertex_degree;  // live incident edges
  std::vector<index_t> edge_size;      // live member vertices
  index_t alive_vertices = 0;
  index_t alive_edges = 0;

  explicit BulkState(const Hypergraph& hg)
      : h(hg),
        vertex_alive(hg.num_vertices(), 1),
        edge_alive(hg.num_edges(), 1),
        vertex_degree(hg.num_vertices()),
        edge_size(hg.num_edges()),
        alive_vertices(hg.num_vertices()),
        alive_edges(hg.num_edges()) {
    for (index_t v = 0; v < hg.num_vertices(); ++v) {
      vertex_degree[v] = hg.vertex_degree(v);
    }
    for (index_t e = 0; e < hg.num_edges(); ++e) {
      edge_size[e] = hg.edge_size(e);
    }
  }

  /// Decide, in parallel, which of `candidates` are non-maximal under
  /// the current residual sets. Uses an overlap-counting sweep per
  /// candidate with thread-local counters. Returns the doomed edges.
  std::vector<index_t> find_non_maximal(const std::vector<index_t>& candidates)
      const {
    std::vector<char> doomed(h.num_edges(), 0);
    const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(candidates.size());
#ifdef HP_HAVE_OPENMP
#pragma omp parallel
#endif
    {
      std::vector<index_t> count(h.num_edges(), 0);
      std::vector<index_t> seen;
#ifdef HP_HAVE_OPENMP
#pragma omp for schedule(dynamic, 8)
#endif
      for (std::ptrdiff_t idx = 0; idx < n; ++idx) {
        const index_t f = candidates[idx];
        if (!edge_alive[f]) continue;
        const index_t size_f = edge_size[f];
        if (size_f == 0) {
          doomed[f] = 1;
          continue;
        }
        seen.clear();
        bool contained = false;
        for (index_t w : h.vertices_of(f)) {
          if (!vertex_alive[w]) continue;
          for (index_t g : h.edges_of(w)) {
            if (g == f || !edge_alive[g]) continue;
            if (count[g] == 0) seen.push_back(g);
            ++count[g];
            if (count[g] == size_f) {
              // f's residual set lies inside g's. Strict containment
              // always dooms f; for identical residual sets the lowest
              // id survives (deterministic under any schedule).
              if (edge_size[g] > size_f || (edge_size[g] == size_f && g < f)) {
                contained = true;
                break;
              }
            }
          }
          if (contained) break;
        }
        for (index_t g : seen) count[g] = 0;
        if (contained) doomed[f] = 1;
      }
    }
    std::vector<index_t> result;
    for (index_t f : candidates) {
      if (doomed[f]) result.push_back(f);
    }
    // Candidates may contain duplicates; dedupe.
    std::sort(result.begin(), result.end());
    result.erase(std::unique(result.begin(), result.end()), result.end());
    return result;
  }

  /// Apply edge deletions; returns vertices whose degree dropped.
  void delete_edges(const std::vector<index_t>& doomed, index_t level,
                    std::vector<index_t>& edge_core) {
    for (index_t f : doomed) {
      if (!edge_alive[f]) continue;
      edge_alive[f] = 0;
      --alive_edges;
      if (level >= 1) edge_core[f] = level - 1;
      for (index_t w : h.vertices_of(f)) {
        if (vertex_alive[w]) --vertex_degree[w];
      }
    }
  }
};

}  // namespace

HyperCoreResult core_decomposition_parallel(const Hypergraph& h,
                                            int num_threads) {
#ifdef HP_HAVE_OPENMP
  if (num_threads > 0) omp_set_num_threads(num_threads);
#else
  (void)num_threads;
#endif
  HyperCoreResult result;
  result.vertex_core.assign(h.num_vertices(), 0);
  result.edge_core.assign(h.num_edges(), 0);

  BulkState state{h};

  // Initial reduction: every edge is a containment candidate.
  {
    std::vector<index_t> all_edges(h.num_edges());
    for (index_t e = 0; e < h.num_edges(); ++e) all_edges[e] = e;
    // Iterate to a fixpoint: deleting one duplicate representative can
    // expose another containment only among remaining duplicates, and
    // the id-tiebreak resolves whole equality classes in one pass, so a
    // single pass suffices; we still loop defensively.
    for (;;) {
      const std::vector<index_t> doomed = state.find_non_maximal(all_edges);
      if (doomed.empty()) break;
      state.delete_edges(doomed, 0, result.edge_core);
      all_edges.clear();
      for (index_t e = 0; e < h.num_edges(); ++e) {
        if (state.edge_alive[e]) all_edges.push_back(e);
      }
    }
  }

  result.level_vertices.push_back(state.alive_vertices);
  result.level_edges.push_back(state.alive_edges);

  std::vector<index_t> frontier;
  std::vector<index_t> touched;
  for (index_t k = 1;; ++k) {
    // Cascade rounds within this level.
    for (;;) {
      frontier.clear();
      for (index_t v = 0; v < h.num_vertices(); ++v) {
        if (state.vertex_alive[v] && state.vertex_degree[v] < k) {
          frontier.push_back(v);
        }
      }
      if (frontier.empty()) break;

      touched.clear();
      for (index_t v : frontier) {
        state.vertex_alive[v] = 0;
        --state.alive_vertices;
        result.vertex_core[v] = k - 1;
      }
      for (index_t v : frontier) {
        for (index_t e : h.edges_of(v)) {
          if (state.edge_alive[e]) {
            --state.edge_size[e];
            touched.push_back(e);
          }
        }
      }
      const std::vector<index_t> doomed = state.find_non_maximal(touched);
      state.delete_edges(doomed, k, result.edge_core);
    }
    if (state.alive_vertices == 0) {
      result.max_core = k - 1;
      break;
    }
    result.level_vertices.push_back(state.alive_vertices);
    result.level_edges.push_back(state.alive_edges);
    for (index_t v = 0; v < h.num_vertices(); ++v) {
      if (state.vertex_alive[v]) result.vertex_core[v] = k;
    }
    for (index_t e = 0; e < h.num_edges(); ++e) {
      if (state.edge_alive[e]) result.edge_core[e] = k;
    }
  }
  return result;
}

}  // namespace hp::hyper
