#include "core/kcore_parallel.hpp"

#include <algorithm>
#include <optional>
#include <vector>

#include "core/peel/frontier.hpp"
#include "core/peel/peel.hpp"
#include "obs/trace.hpp"
#include "par/thread_pool.hpp"

namespace hp::hyper {

namespace {

/// Chunk size for the bulk erase phases: each item does degree(v) /
/// size(f) work, so a few dozen amortize the chunk-claim fetch_add.
constexpr index_t kEraseGrain = 32;

/// Delete a batch of doomed edges on the substrate (stamping and degree
/// maintenance are the substrate's job; this is pure policy glue).
void delete_edges(ResidualHypergraph& residual,
                  const std::vector<index_t>& doomed) {
  for (index_t f : doomed) {
    if (residual.edge_alive(f)) residual.erase_edge(f);
  }
}

/// Sort + unique a frontier candidate list in place, charging dropped
/// duplicates to frontier_wasted. Determinism: the surviving order is
/// ascending regardless of which lane produced which entry.
void sort_unique_frontier(std::vector<index_t>& frontier, PeelStats& stats) {
  std::sort(frontier.begin(), frontier.end());
  const auto last = std::unique(frontier.begin(), frontier.end());
  stats.frontier_wasted +=
      static_cast<count_t>(frontier.end() - last);
  frontier.erase(last, frontier.end());
}

/// Shared driver for both bulk-synchronous engines. The scan engine
/// re-derives every round's frontier with an O(|V|) pass; the frontier
/// engine maintains it from per-lane degree-drop bags (in-level) and
/// lazy degree buckets (across levels), and erases frontiers/doomed
/// batches in parallel with atomic counter decrements. Both are
/// bit-identical in every output field: the round-1 frontier of level k
/// is exactly {live v : degree < k} either way (every live vertex keeps
/// a bucket entry at its current degree), later rounds' frontiers are
/// exactly the vertices dropped below k by the previous round's edge
/// deletions, and find_non_maximal is order-independent with a
/// deterministic lowest-id tie-break.
HyperCoreResult parallel_impl(const Hypergraph& h, int num_threads,
                              PeelStats* stats, PeelEngine engine) {
  // Scoped lane cap instead of the old omp_set_num_threads, which
  // mutated process-wide state and oversubscribed under nesting; the
  // shared pool never spawns threads per call (DESIGN.md section 11).
  std::optional<par::LaneLimit> lane_limit;
  if (num_threads > 0) lane_limit.emplace(num_threads);
  HP_TRACE_SPAN("kcore.decomposition_parallel");
  HyperCoreResult result;
  result.vertex_core.assign(h.num_vertices(), 0);
  result.edge_core.assign(h.num_edges(), 0);

  PeelStats local;
  ResidualHypergraph residual{h};
  residual.bind_stats(&local);
  residual.bind_cores(&result.vertex_core, &result.edge_core);

  // Initial reduction: delete every non-maximal edge, re-seeding the
  // verification sweep from doomed-edge neighborhoods (not a full
  // rescan -- see erase_non_maximal for the fixpoint argument).
  {
    HP_TRACE_SPAN("kcore.initial_reduction");
    residual.set_peel_level(0);
    erase_non_maximal(residual, &local);
  }

  result.level_vertices.push_back(residual.live_vertices());
  result.level_edges.push_back(residual.live_edges());
  result.in_reduced.assign(h.num_edges(), 0);
  for (index_t e = 0; e < h.num_edges(); ++e) {
    result.in_reduced[e] = residual.edge_alive(e) ? 1 : 0;
  }

  // Frontier-engine state. Buckets are filled with post-reduction
  // degrees (all vertices are live -- reduction deletes only edges);
  // every subsequent drop to a still-above-threshold degree re-enters
  // the buckets, so each level's seed drain is O(drops), not O(|V|).
  const int lanes = par::ThreadPool::global().thread_count();
  std::optional<FrontierBuckets> buckets;
  std::optional<EpochStamps> edge_stamps;
  std::optional<LaneDropBags> drop_bags;
  std::vector<std::vector<index_t>> touched_bags;
  if (engine == PeelEngine::kFrontier) {
    index_t max_degree = 0;
    for (index_t v = 0; v < h.num_vertices(); ++v) {
      max_degree = std::max(max_degree, residual.vertex_degree(v));
    }
    buckets.emplace(max_degree, &local);
    for (index_t v = 0; v < h.num_vertices(); ++v) {
      buckets->push(v, residual.vertex_degree(v));
    }
    edge_stamps.emplace(h.num_edges());
    drop_bags.emplace(lanes);
    touched_bags.resize(static_cast<std::size_t>(lanes));
  }

  // Core numbers are stamped by the substrate at deletion time; the
  // level loop only records populations (no survivor sweeps).
  std::vector<index_t> frontier;
  std::vector<index_t> touched;
  for (index_t k = 1;; ++k) {
    HP_TRACE_SPAN("kcore.peel_level", k);
    residual.set_peel_level(k);
    if (engine == PeelEngine::kFrontier) {
      // Level seeds: drain buckets 0..k-1 and drop stale entries (dead
      // vertices, duplicate hints). A live entry below k is genuinely
      // sub-threshold -- degrees only shrink after the push.
      HP_TRACE_SPAN("peel.frontier", k);
      frontier.clear();
      buckets->drain_below(
          k, [&](index_t v) { return residual.vertex_alive(v); }, frontier);
      sort_unique_frontier(frontier, local);
    }
    // Cascade rounds within this level.
    for (;;) {
      if (engine == PeelEngine::kScan) {
        frontier.clear();
        for (index_t v = 0; v < h.num_vertices(); ++v) {
          if (residual.vertex_alive(v) && residual.vertex_degree(v) < k) {
            frontier.push_back(v);
          }
        }
      }
      if (frontier.empty()) break;
      ++local.peel_rounds;
      local.note_queue_length(frontier.size());

      if (engine == PeelEngine::kScan) {
        touched.clear();
        for (index_t v : frontier) residual.erase_vertex(v, touched);
        const std::vector<index_t> doomed =
            find_non_maximal(residual, touched, &local);
        delete_edges(residual, doomed);
        continue;
      }

      // Phase A: erase the whole frontier in parallel. Vertices are
      // disjoint per lane; edge sizes shrink atomically; the touched
      // set is deduplicated via epoch stamps into per-lane bags (no
      // edge-alive flag changes happen in this phase, so the alive
      // reads are stable).
      edge_stamps->next_epoch();
      par::parallel_for(
          0, static_cast<index_t>(frontier.size()), kEraseGrain,
          [&](index_t chunk_begin, index_t chunk_end, int lane) {
            std::vector<index_t>& bag =
                touched_bags[static_cast<std::size_t>(lane)];
            for (index_t i = chunk_begin; i < chunk_end; ++i) {
              const index_t v = frontier[i];
              residual.mark_vertex_dead_bulk(v);
              for (index_t f : h.edges_of(v)) {
                if (!residual.edge_alive(f)) continue;
                residual.shrink_edge_atomic(f);
                if (edge_stamps->claim(f)) bag.push_back(f);
              }
            }
          });
      residual.note_bulk_erase(static_cast<index_t>(frontier.size()), 0);
      touched.clear();
      for (std::vector<index_t>& bag : touched_bags) {
        touched.insert(touched.end(), bag.begin(), bag.end());
        bag.clear();
      }

      const std::vector<index_t> doomed =
          find_non_maximal(residual, touched, &local);

      // Phase B: delete the doomed edges in parallel, recording every
      // degree drop in per-lane bags (vertex-alive flags are stable in
      // this phase; degree decrements are atomic, and each decrement
      // observes a distinct new value).
      par::parallel_for(
          0, static_cast<index_t>(doomed.size()), kEraseGrain,
          [&](index_t chunk_begin, index_t chunk_end, int lane) {
            for (index_t i = chunk_begin; i < chunk_end; ++i) {
              const index_t f = doomed[i];
              residual.mark_edge_dead_bulk(f);
              for (index_t w : h.vertices_of(f)) {
                if (!residual.vertex_alive(w)) continue;
                drop_bags->record(lane, w, residual.drop_degree_atomic(w));
              }
            }
          });
      residual.note_bulk_erase(0, static_cast<index_t>(doomed.size()));

      // Route the drops: below threshold feeds the next cascade round,
      // everything else becomes a lazy bucket hint for future levels.
      frontier.clear();
      drop_bags->drain([&](index_t w, index_t degree) {
        if (degree < k) {
          ++local.frontier_pushes;
          frontier.push_back(w);
        } else {
          buckets->push(w, degree);
        }
      });
      sort_unique_frontier(frontier, local);
    }
    if (residual.live_vertices() == 0) {
      result.max_core = k - 1;
      break;
    }
    result.level_vertices.push_back(residual.live_vertices());
    result.level_edges.push_back(residual.live_edges());
  }
  publish_metrics(local);
  if (stats != nullptr) *stats += local;
  return result;
}

}  // namespace

HyperCoreResult core_decomposition_parallel(const Hypergraph& h,
                                            int num_threads,
                                            PeelStats* stats) {
  return parallel_impl(h, num_threads, stats, PeelEngine::kFrontier);
}

HyperCoreResult core_decomposition_parallel(const Hypergraph& h,
                                            int num_threads) {
  return core_decomposition_parallel(h, num_threads, nullptr);
}

HyperCoreResult core_decomposition_parallel_scan(const Hypergraph& h,
                                                 int num_threads,
                                                 PeelStats* stats) {
  return parallel_impl(h, num_threads, stats, PeelEngine::kScan);
}

}  // namespace hp::hyper
