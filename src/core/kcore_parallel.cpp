#include "core/kcore_parallel.hpp"

#include <optional>
#include <vector>

#include "core/peel/peel.hpp"
#include "obs/trace.hpp"
#include "par/thread_pool.hpp"

namespace hp::hyper {

namespace {

/// Delete a batch of doomed edges on the substrate (stamping and degree
/// maintenance are the substrate's job; this is pure policy glue).
void delete_edges(ResidualHypergraph& residual,
                  const std::vector<index_t>& doomed) {
  for (index_t f : doomed) {
    if (residual.edge_alive(f)) residual.erase_edge(f);
  }
}

}  // namespace

HyperCoreResult core_decomposition_parallel(const Hypergraph& h,
                                            int num_threads,
                                            PeelStats* stats) {
  // Scoped lane cap instead of the old omp_set_num_threads, which
  // mutated process-wide state and oversubscribed under nesting; the
  // shared pool never spawns threads per call (DESIGN.md section 11).
  std::optional<par::LaneLimit> lane_limit;
  if (num_threads > 0) lane_limit.emplace(num_threads);
  HP_TRACE_SPAN("kcore.decomposition_parallel");
  HyperCoreResult result;
  result.vertex_core.assign(h.num_vertices(), 0);
  result.edge_core.assign(h.num_edges(), 0);

  PeelStats local;
  ResidualHypergraph residual{h};
  residual.bind_stats(&local);
  residual.bind_cores(&result.vertex_core, &result.edge_core);

  // Initial reduction: every edge is a containment candidate.
  {
    HP_TRACE_SPAN("kcore.initial_reduction");
    residual.set_peel_level(0);
    std::vector<index_t> all_edges(h.num_edges());
    for (index_t e = 0; e < h.num_edges(); ++e) all_edges[e] = e;
    // Iterate to a fixpoint: deleting one duplicate representative can
    // expose another containment only among remaining duplicates, and
    // the id-tiebreak resolves whole equality classes in one pass, so a
    // single pass suffices; we still loop defensively.
    for (;;) {
      const std::vector<index_t> doomed =
          find_non_maximal(residual, all_edges, &local);
      if (doomed.empty()) break;
      delete_edges(residual, doomed);
      all_edges.clear();
      for (index_t e = 0; e < h.num_edges(); ++e) {
        if (residual.edge_alive(e)) all_edges.push_back(e);
      }
    }
  }

  result.level_vertices.push_back(residual.live_vertices());
  result.level_edges.push_back(residual.live_edges());
  result.in_reduced.assign(h.num_edges(), 0);
  for (index_t e = 0; e < h.num_edges(); ++e) {
    result.in_reduced[e] = residual.edge_alive(e) ? 1 : 0;
  }

  // Core numbers are stamped by the substrate at deletion time; the
  // level loop only records populations (no survivor sweeps).
  std::vector<index_t> frontier;
  std::vector<index_t> touched;
  for (index_t k = 1;; ++k) {
    HP_TRACE_SPAN("kcore.peel_level", k);
    residual.set_peel_level(k);
    // Cascade rounds within this level.
    for (;;) {
      frontier.clear();
      for (index_t v = 0; v < h.num_vertices(); ++v) {
        if (residual.vertex_alive(v) && residual.vertex_degree(v) < k) {
          frontier.push_back(v);
        }
      }
      if (frontier.empty()) break;
      ++local.peel_rounds;
      local.note_queue_length(frontier.size());

      touched.clear();
      for (index_t v : frontier) residual.erase_vertex(v, touched);
      const std::vector<index_t> doomed =
          find_non_maximal(residual, touched, &local);
      delete_edges(residual, doomed);
    }
    if (residual.live_vertices() == 0) {
      result.max_core = k - 1;
      break;
    }
    result.level_vertices.push_back(residual.live_vertices());
    result.level_edges.push_back(residual.live_edges());
  }
  publish_metrics(local);
  if (stats != nullptr) *stats += local;
  return result;
}

HyperCoreResult core_decomposition_parallel(const Hypergraph& h,
                                            int num_threads) {
  return core_decomposition_parallel(h, num_threads, nullptr);
}

}  // namespace hp::hyper
