#include "core/layout.hpp"

#include <algorithm>
#include <cmath>

#include "util/common.hpp"

namespace hp::hyper {

std::vector<Point> force_layout(const graph::Graph& g,
                                const LayoutParams& params) {
  const index_t n = g.num_vertices();
  std::vector<Point> pos(n);
  if (n == 0) return pos;

  Rng rng{params.seed};
  for (Point& p : pos) {
    p.x = rng.uniform_real(0.0, params.width);
    p.y = rng.uniform_real(0.0, params.height);
  }
  if (n == 1) return pos;

  // Ideal pairwise distance.
  const double area = params.width * params.height;
  const double k = std::sqrt(area / static_cast<double>(n));
  const double k2 = k * k;

  std::vector<Point> disp(n);
  for (int iter = 0; iter < params.iterations; ++iter) {
    const double temperature =
        params.initial_temperature * params.width *
        (1.0 - static_cast<double>(iter) / params.iterations);

    for (Point& d : disp) d = Point{};

    // Repulsion between all pairs.
    for (index_t i = 0; i < n; ++i) {
      for (index_t j = i + 1; j < n; ++j) {
        double dx = pos[i].x - pos[j].x;
        double dy = pos[i].y - pos[j].y;
        double dist2 = dx * dx + dy * dy;
        if (dist2 < 1e-9) {
          // Coincident points: nudge deterministically.
          dx = 1e-3 * (1.0 + static_cast<double>(i % 7));
          dy = 1e-3;
          dist2 = dx * dx + dy * dy;
        }
        const double force = k2 / dist2;  // F_r / dist, applied to (dx,dy)
        disp[i].x += dx * force;
        disp[i].y += dy * force;
        disp[j].x -= dx * force;
        disp[j].y -= dy * force;
      }
    }

    // Attraction along edges.
    for (index_t u = 0; u < n; ++u) {
      for (index_t v : g.neighbors(u)) {
        if (v <= u) continue;
        double dx = pos[u].x - pos[v].x;
        double dy = pos[u].y - pos[v].y;
        const double dist = std::max(1e-6, std::sqrt(dx * dx + dy * dy));
        const double force = dist / k;  // F_a / dist
        disp[u].x -= dx * force;
        disp[u].y -= dy * force;
        disp[v].x += dx * force;
        disp[v].y += dy * force;
      }
    }

    // Displace, capped by temperature, clamped to the canvas.
    for (index_t i = 0; i < n; ++i) {
      const double len = std::max(
          1e-9, std::sqrt(disp[i].x * disp[i].x + disp[i].y * disp[i].y));
      const double step = std::min(len, temperature);
      pos[i].x += disp[i].x / len * step;
      pos[i].y += disp[i].y / len * step;
      pos[i].x = std::clamp(pos[i].x, 0.0, params.width);
      pos[i].y = std::clamp(pos[i].y, 0.0, params.height);
    }
  }
  return pos;
}

void fit_to_canvas(std::vector<Point>& points, double width, double height,
                   double margin) {
  HP_REQUIRE(width > 2 * margin && height > 2 * margin,
             "fit_to_canvas: margin exceeds canvas");
  if (points.empty()) return;
  double min_x = points[0].x, max_x = points[0].x;
  double min_y = points[0].y, max_y = points[0].y;
  for (const Point& p : points) {
    min_x = std::min(min_x, p.x);
    max_x = std::max(max_x, p.x);
    min_y = std::min(min_y, p.y);
    max_y = std::max(max_y, p.y);
  }
  const double span_x = std::max(1e-9, max_x - min_x);
  const double span_y = std::max(1e-9, max_y - min_y);
  for (Point& p : points) {
    p.x = margin + (p.x - min_x) / span_x * (width - 2 * margin);
    p.y = margin + (p.y - min_y) / span_y * (height - 2 * margin);
  }
}

}  // namespace hp::hyper
