#include "par/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/timer.hpp"

namespace hp::par {

namespace {

/// Identity of the pool worker running the current thread (null pool
/// for external threads, including the main thread).
struct WorkerIdentity {
  ThreadPool* pool = nullptr;
  int slot = 0;
};
thread_local WorkerIdentity tl_worker;

/// Thread-local lane cap managed by LaneLimit; 0 = unlimited.
thread_local int tl_lane_limit = 0;

obs::Counter& tasks_counter() {
  static obs::Counter& c = obs::counter("par.tasks");
  return c;
}

obs::Counter& steals_counter() {
  static obs::Counter& c = obs::counter("par.steals");
  return c;
}

obs::Counter& idle_counter() {
  static obs::Counter& c = obs::counter("par.idle_ns");
  return c;
}

}  // namespace

int hardware_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

int parse_thread_count(const char* text, int fallback) {
  if (text == nullptr || *text == '\0') return fallback;
  char* end = nullptr;
  const long value = std::strtol(text, &end, 10);
  if (end == text || *end != '\0') return fallback;  // non-numeric / trailing junk
  if (value <= 0) return fallback;                   // 0 and negatives = "default"
  return static_cast<int>(std::min<long>(value, kMaxThreads));
}

int configured_threads() {
  return parse_thread_count(std::getenv("HP_THREADS"), hardware_threads());
}

ThreadPool::ThreadPool(int threads)
    : lanes_(std::clamp(threads, 1, kMaxThreads)) {
  queues_.reserve(static_cast<std::size_t>(lanes_));
  for (int i = 0; i < lanes_; ++i) {
    queues_.push_back(std::make_unique<Lane>());
  }
  workers_.reserve(static_cast<std::size_t>(lanes_ - 1));
  for (int slot = 1; slot < lanes_; ++slot) {
    workers_.emplace_back([this, slot] { worker_main(slot); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(sleep_mutex_);
    stop_ = true;
  }
  sleep_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool{configured_threads()};
  // The metrics flusher polls queue depth through this callback; the
  // pool contributes it here so obs never has to link against par.
  static const bool registered = [] {
    obs::register_flush_callback("par.queue_depth", [] {
      obs::gauge("par.queue_depth")
          .set(static_cast<double>(ThreadPool::global().queue_depth()));
    });
    return true;
  }();
  (void)registered;
  return pool;
}

PoolStats ThreadPool::stats() const {
  PoolStats s;
  s.tasks = tasks_.load(std::memory_order_relaxed);
  s.steals = steals_.load(std::memory_order_relaxed);
  s.idle_ns = idle_ns_.load(std::memory_order_relaxed);
  return s;
}

void ThreadPool::submit(Task task) {
  const int slot = tl_worker.pool == this ? tl_worker.slot : 0;
  {
    std::lock_guard<std::mutex> lock(queues_[static_cast<std::size_t>(slot)]->mutex);
    queues_[static_cast<std::size_t>(slot)]->deque.push_back(std::move(task));
  }
  {
    // Bump under the sleep mutex so a worker checking queued_ before
    // parking cannot miss the wakeup.
    std::lock_guard<std::mutex> lock(sleep_mutex_);
    queued_.fetch_add(1, std::memory_order_relaxed);
  }
  sleep_cv_.notify_one();
}

bool ThreadPool::try_take(int self_slot, Task& out) {
  {
    Lane& own = *queues_[static_cast<std::size_t>(self_slot)];
    std::lock_guard<std::mutex> lock(own.mutex);
    if (!own.deque.empty()) {
      out = std::move(own.deque.back());  // LIFO: best cache locality
      own.deque.pop_back();
      queued_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
  }
  for (int offset = 1; offset < lanes_; ++offset) {
    const int victim = (self_slot + offset) % lanes_;
    Lane& lane = *queues_[static_cast<std::size_t>(victim)];
    std::lock_guard<std::mutex> lock(lane.mutex);
    if (lane.deque.empty()) continue;
    out = std::move(lane.deque.front());  // FIFO steal: oldest task
    lane.deque.pop_front();
    queued_.fetch_sub(1, std::memory_order_relaxed);
    steals_.fetch_add(1, std::memory_order_relaxed);
    steals_counter().add(1);
    return true;
  }
  return false;
}

void ThreadPool::execute(Task& task) {
  tasks_.fetch_add(1, std::memory_order_relaxed);
  tasks_counter().add(1);
  try {
    task.fn();
  } catch (...) {
    task.group->capture(std::current_exception());
  }
  task.group->finish_one();
  task.group.reset();  // release the state before the next take
}

bool ThreadPool::try_run_one() {
  const int slot = tl_worker.pool == this ? tl_worker.slot : 0;
  Task task;
  if (!try_take(slot, task)) return false;
  execute(task);
  return true;
}

void ThreadPool::worker_main(int slot) {
  tl_worker = {this, slot};
  for (;;) {
    Task task;
    if (try_take(slot, task)) {
      execute(task);
      continue;
    }
    std::unique_lock<std::mutex> lock(sleep_mutex_);
    if (stop_) return;
    if (queued_.load(std::memory_order_relaxed) == 0) {
      Timer idle;
      sleep_cv_.wait(lock, [this] {
        return stop_ || queued_.load(std::memory_order_relaxed) > 0;
      });
      const std::uint64_t ns = idle.nanoseconds();
      idle_ns_.fetch_add(ns, std::memory_order_relaxed);
      idle_counter().add(ns);
    }
    if (stop_) return;
  }
}

LaneLimit::LaneLimit(int max_lanes) : previous_(tl_lane_limit) {
  const int requested = std::max(max_lanes, 1);
  tl_lane_limit =
      previous_ == 0 ? requested : std::min(previous_, requested);
}

LaneLimit::~LaneLimit() { tl_lane_limit = previous_; }

int LaneLimit::current() { return tl_lane_limit; }

TaskGroup::TaskGroup(ThreadPool& pool)
    : pool_(pool), state_(std::make_shared<detail::GroupState>()) {}

TaskGroup::~TaskGroup() {
  try {
    wait();
  } catch (...) {
    // Destructor must not throw; call wait() to observe task errors.
  }
}

void TaskGroup::run(std::function<void()> fn) {
  if (pool_.thread_count() == 1 || tl_lane_limit == 1) {
    fn();  // serial mode: inline, exceptions propagate to the caller
    return;
  }
  if (obs::tracing_enabled()) {
    // Capture the spawner's causal position so the task's spans parent
    // into this operation's trace tree no matter which lane (or steal
    // victim) runs it. Only paid while tracing is on.
    fn = [link = obs::capture_task_link(), body = std::move(fn)] {
      obs::TaskScope scope{link};
      body();
    };
  }
  state_->pending.fetch_add(1, std::memory_order_acq_rel);
  pool_.submit({std::move(fn), state_});
}

void TaskGroup::wait() {
  detail::GroupState& state = *state_;
  while (state.pending.load(std::memory_order_acquire) != 0) {
    if (pool_.try_run_one()) continue;
    const int snapshot = state.pending.load(std::memory_order_acquire);
    if (snapshot == 0) break;
    // Tasks of this group are in flight on workers; park until one
    // finishes (finish_one notifies on every decrement).
    state.pending.wait(snapshot, std::memory_order_acquire);
  }
  std::exception_ptr error;
  {
    std::lock_guard<std::mutex> lock(state.error_mutex);
    std::swap(error, state.error);
  }
  if (error) std::rethrow_exception(error);
}

namespace detail {

namespace {

struct ForJob {
  std::atomic<index_t> next{0};
  index_t end = 0;
  index_t grain = 1;
  ForBody body = nullptr;
  void* context = nullptr;
  std::atomic<bool> abort{false};
  std::mutex error_mutex;
  std::exception_ptr error;
};

void drive(ForJob& job, int lane) {
  while (!job.abort.load(std::memory_order_relaxed)) {
    const index_t begin =
        job.next.fetch_add(job.grain, std::memory_order_relaxed);
    if (begin >= job.end) return;
    const index_t end = std::min<index_t>(begin + job.grain, job.end);
    try {
      job.body(job.context, begin, end, lane);
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(job.error_mutex);
        if (!job.error) job.error = std::current_exception();
      }
      job.abort.store(true, std::memory_order_relaxed);
      return;
    }
  }
}

}  // namespace

void run_for(ThreadPool& pool, index_t begin, index_t end, index_t grain,
             int max_lanes, ForBody body, void* context) {
  if (end <= begin) return;
  grain = std::max<index_t>(grain, 1);
  const index_t items = end - begin;
  HP_TRACE_SPAN("par.for", items);

  int cap = pool.thread_count();
  if (tl_lane_limit > 0) cap = std::min(cap, tl_lane_limit);
  if (max_lanes > 0) cap = std::min(cap, max_lanes);
  const index_t chunks = (items + grain - 1) / grain;
  const int lanes = static_cast<int>(
      std::min<index_t>(static_cast<index_t>(cap), chunks));

  if (lanes <= 1) {
    body(context, begin, end, 0);
    return;
  }

  ForJob job;
  job.next.store(begin, std::memory_order_relaxed);
  job.end = end;
  job.grain = grain;
  job.body = body;
  job.context = context;

  TaskGroup group{pool};
  for (int lane = 1; lane < lanes; ++lane) {
    group.run([&job, lane] { drive(job, lane); });
  }
  drive(job, 0);
  group.wait();
  if (job.error) std::rethrow_exception(job.error);
}

}  // namespace detail

}  // namespace hp::par
