// Process-wide work-stealing parallel runtime (DESIGN.md section 11).
//
// One lazily-initialized ThreadPool serves every parallel region in the
// process: the bulk-synchronous k-core peel, the all-sources BFS path
// sweep, AnalysisContext slot prefetching, and the fuzz driver's seed
// fan-out. Centralizing the threads fixes the oversubscription the
// previous per-call OpenMP regions suffered (a nested parallel region
// multiplied thread counts, and omp_set_num_threads mutated process
// state): nested parallel_for/TaskGroup calls reuse the same fixed set
// of workers, so the process-wide thread count is bounded by the pool
// size no matter how deeply parallel regions nest.
//
// Topology: `thread_count()` lanes, of which lane 0 is the submitting
// caller and lanes 1..N-1 are pooled std::threads. Each worker owns a
// deque (LIFO for the owner, FIFO for thieves); external submissions
// land in a shared injection deque that workers also steal from. A
// blocked wait() helps: the waiting thread drains tasks instead of
// sleeping, so nested regions cannot deadlock.
//
// Configuration: the global pool reads HP_THREADS once at first use.
// Unset, empty, non-numeric, or "0" fall back to
// hardware_concurrency(); "1" degrades every region to serial inline
// execution (no worker threads at all, bit-identical results); larger
// values are honored up to kMaxThreads even beyond the hardware count
// (useful for stress-testing races on small machines).
//
// Determinism contract: parallel_for partitions [begin, end) into
// grain-sized chunks claimed dynamically by at most `thread_count()`
// lanes. Chunk-to-lane assignment is non-deterministic; algorithms stay
// schedule-independent by writing to disjoint indices and/or combining
// per-lane partials with commutative-associative operations on exact
// (integer) accumulators -- every in-tree caller does one of the two,
// which is why HP_THREADS=1 and HP_THREADS=16 produce identical output.
//
// Observability: every region opens a "par.for" span; the pool
// publishes par.tasks / par.steals / par.idle_ns counters.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "util/common.hpp"

namespace hp::par {

/// Hard upper bound on pool lanes (backstop against absurd HP_THREADS).
inline constexpr int kMaxThreads = 256;

/// std::thread::hardware_concurrency(), clamped to >= 1.
int hardware_threads();

/// Parse an HP_THREADS-style override. nullptr, empty, non-numeric,
/// trailing-garbage, negative, zero, or overflowing text yields
/// `fallback`; valid positive values are clamped to kMaxThreads.
int parse_thread_count(const char* text, int fallback);

/// Lane count the global pool is built with: HP_THREADS when set and
/// valid, hardware_threads() otherwise.
int configured_threads();

/// Monotonic pool counters (also published as obs metrics par.*).
struct PoolStats {
  std::uint64_t tasks = 0;   ///< tasks executed (group tasks + runners)
  std::uint64_t steals = 0;  ///< tasks taken from another lane's deque
  std::uint64_t idle_ns = 0; ///< total time workers spent parked
};

class TaskGroup;

namespace detail {

/// Completion state shared between a TaskGroup and its in-flight tasks.
/// Held by shared_ptr from both sides so a worker finishing the last
/// task can never touch a destroyed counter, even if the group object
/// is already unwinding.
struct GroupState {
  std::atomic<int> pending{0};
  std::mutex error_mutex;
  std::exception_ptr error;

  void capture(std::exception_ptr e) {
    std::lock_guard<std::mutex> lock(error_mutex);
    if (!error) error = std::move(e);
  }
  void finish_one() {
    pending.fetch_sub(1, std::memory_order_acq_rel);
    pending.notify_all();
  }
};

}  // namespace detail

class ThreadPool {
 public:
  /// `threads` = lane count including the submitting caller, clamped to
  /// [1, kMaxThreads]; 1 spawns no workers and runs everything inline.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// The process-wide pool, built on first use with
  /// configured_threads(). Intentionally never resized afterwards.
  static ThreadPool& global();

  /// Total lanes (caller + workers); >= 1.
  int thread_count() const { return lanes_; }

  /// Spawned std::threads (thread_count() - 1).
  int worker_count() const { return lanes_ - 1; }

  PoolStats stats() const;

  /// Tasks currently queued (submitted, not yet taken). Advisory -- the
  /// value is racy by nature; the metrics exporter samples it as the
  /// par.queue_depth gauge.
  int queue_depth() const { return queued_.load(std::memory_order_relaxed); }

  /// Pop-or-steal one queued task and run it on the calling thread.
  /// Returns false when every deque is empty. Public so blocked waiters
  /// outside TaskGroup (tests, future latches) can help too.
  bool try_run_one();

 private:
  friend class TaskGroup;

  struct Task {
    std::function<void()> fn;
    std::shared_ptr<detail::GroupState> group;
  };

  /// One lane's deque. Slot 0 is the shared injection queue for
  /// external (non-worker) submitters; slots 1..N-1 belong to workers.
  struct Lane {
    std::mutex mutex;
    std::deque<Task> deque;
  };

  void submit(Task task);
  bool try_take(int self_slot, Task& out);
  void execute(Task& task);
  void worker_main(int slot);

  int lanes_;
  std::vector<std::unique_ptr<Lane>> queues_;
  std::vector<std::thread> workers_;

  std::mutex sleep_mutex_;
  std::condition_variable sleep_cv_;
  std::atomic<int> queued_{0};
  bool stop_ = false;

  std::atomic<std::uint64_t> tasks_{0};
  std::atomic<std::uint64_t> steals_{0};
  std::atomic<std::uint64_t> idle_ns_{0};
};

/// Scoped cap on the lane count of parallel regions *entered from the
/// current thread* (tasks already running on other workers are not
/// affected). LaneLimit{1} is the serial escape hatch: regions run
/// inline on the caller, deterministically, with no tasks submitted.
/// Nested limits compose by taking the minimum.
class LaneLimit {
 public:
  explicit LaneLimit(int max_lanes);
  ~LaneLimit();

  LaneLimit(const LaneLimit&) = delete;
  LaneLimit& operator=(const LaneLimit&) = delete;

  /// The cap active on this thread; 0 = unlimited.
  static int current();

 private:
  int previous_;
};

/// Scoped fork-join task group. run() enqueues one task (or executes it
/// inline when the pool is serial / lane-limited to 1); wait() blocks
/// until every task finished, helping with queued work meanwhile, and
/// rethrows the first exception any task raised. The destructor waits
/// but swallows exceptions; call wait() explicitly to observe them.
///
/// Tracing: when tracing is enabled at run() time, the task body is
/// wrapped so it adopts the spawner's obs::TraceContext on whichever
/// lane executes it (including steals) under a "par.task" span -- spans
/// inside pooled tasks parent into the submitting operation's trace
/// tree (DESIGN.md section 14). With tracing off the body is submitted
/// unwrapped: zero extra cost.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool& pool = ThreadPool::global());
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  void run(std::function<void()> fn);
  void wait();

 private:
  ThreadPool& pool_;
  std::shared_ptr<detail::GroupState> state_;
};

namespace detail {

/// Type-erased chunk body: (context, chunk_begin, chunk_end, lane).
using ForBody = void (*)(void*, index_t, index_t, int);

/// Dynamic-scheduling parallel loop core: at most min(max_lanes or
/// pool lanes, chunk count) lanes claim grain-sized chunks from a
/// shared cursor. The caller drives lane 0; the first exception aborts
/// remaining chunks and is rethrown here.
void run_for(ThreadPool& pool, index_t begin, index_t end, index_t grain,
             int max_lanes, ForBody body, void* context);

}  // namespace detail

/// parallel_for(begin, end, grain, body): body(chunk_begin, chunk_end,
/// lane) over disjoint chunks of [begin, end). `lane` is a dense id in
/// [0, pool.thread_count()) stable for the duration of one chunk --
/// index per-lane scratch with it. Grain is the chunk size in
/// iterations; pick it so one chunk amortizes a claim (an atomic
/// fetch_add) against the loop body's cost.
template <typename Body>
void parallel_for(index_t begin, index_t end, index_t grain, Body&& body,
                  ThreadPool& pool = ThreadPool::global()) {
  using BodyT = std::remove_reference_t<Body>;
  detail::run_for(
      pool, begin, end, grain, /*max_lanes=*/0,
      [](void* context, index_t b, index_t e, int lane) {
        (*static_cast<BodyT*>(context))(b, e, lane);
      },
      const_cast<std::remove_const_t<BodyT>*>(&body));
}

/// parallel_reduce(begin, end, grain, identity, body, combine):
/// body(chunk_begin, chunk_end) -> T per chunk, folded into per-lane
/// partials and then combined lane-by-lane. `combine` must be
/// commutative and associative for schedule-independent results (exact
/// accumulators; all in-tree uses are integral).
template <typename T, typename Body, typename Combine>
T parallel_reduce(index_t begin, index_t end, index_t grain, T identity,
                  Body&& body, Combine&& combine,
                  ThreadPool& pool = ThreadPool::global()) {
  std::vector<T> partials(static_cast<std::size_t>(pool.thread_count()),
                          identity);
  parallel_for(
      begin, end, grain,
      [&](index_t b, index_t e, int lane) {
        partials[static_cast<std::size_t>(lane)] =
            combine(partials[static_cast<std::size_t>(lane)], body(b, e));
      },
      pool);
  T result = identity;
  for (const T& partial : partials) result = combine(result, partial);
  return result;
}

}  // namespace hp::par
