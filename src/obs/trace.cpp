#include "obs/trace.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>
#include <ostream>
#include <vector>

#include "obs/metrics.hpp"
#include "util/common.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace hp::obs {

namespace {

using SteadyClock = std::chrono::steady_clock;

std::atomic<bool> g_enabled{false};

/// Trace epoch: all timestamps are relative to this steady-clock point.
/// Written only by reset_tracing() / first use, read by every event.
std::atomic<std::int64_t> g_epoch_ns{0};

/// Process-unique id wells. Span/trace id 0 means "none", so both start
/// handing out ids at 1. Flow ids share the span well (Chrome only
/// needs flow ids to be unique among flows, but distinct wells invite
/// collisions after a reset; one well is simpler and safe).
std::atomic<std::uint64_t> g_next_span_id{1};
std::atomic<std::uint64_t> g_next_trace_id{1};

/// Slow-span watchdog threshold; 0 = disabled.
std::atomic<std::uint64_t> g_slow_span_ns{0};

/// Ambient causal position of the calling thread.
thread_local TraceContext tl_context;

struct TraceEvent {
  const char* name;   // literal owned by the call site
  std::uint64_t ts_ns;
  std::uint64_t arg;       // kNoTraceArg = absent
  std::uint64_t trace_id;  // 0 = no context recorded
  std::uint64_t span_id;   // B: this span; s/f: the flow id
  std::uint64_t parent_id; // B only; 0 = root of its trace
  double value;            // counter events only
  char phase;              // 'B', 'E', 'C', 's' (flow start), 'f' (flow end)
};

/// Per-thread event buffer. Owned by the global registry (so it outlives
/// its thread and survives thread exit); the thread keeps a raw pointer.
/// The mutex is uncontended except against a concurrent flush/reset.
struct ThreadBuffer {
  std::mutex mutex;
  std::uint32_t tid = 0;
  std::vector<TraceEvent> events;
  std::size_t depth = 0;  // current span-stack depth
};

struct BufferRegistry {
  std::mutex mutex;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;
};

BufferRegistry& registry() {
  static BufferRegistry* r = new BufferRegistry;  // leaked: outlive statics
  return *r;
}

std::int64_t steady_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             SteadyClock::now().time_since_epoch())
      .count();
}

std::int64_t epoch_ns() {
  std::int64_t epoch = g_epoch_ns.load(std::memory_order_acquire);
  if (epoch != 0) return epoch;
  // First use: race-tolerant one-time initialization.
  std::int64_t now = steady_ns();
  if (now == 0) now = 1;
  std::int64_t expected = 0;
  if (g_epoch_ns.compare_exchange_strong(expected, now,
                                         std::memory_order_acq_rel)) {
    return now;
  }
  return expected;
}

ThreadBuffer& local_buffer() {
  thread_local ThreadBuffer* buffer = [] {
    auto owned = std::make_unique<ThreadBuffer>();
    ThreadBuffer* raw = owned.get();
    BufferRegistry& r = registry();
    const std::lock_guard<std::mutex> lock{r.mutex};
    raw->tid = static_cast<std::uint32_t>(r.buffers.size());
    r.buffers.push_back(std::move(owned));
    return raw;
  }();
  return *buffer;
}

void append(const TraceEvent& event) {
  ThreadBuffer& buffer = local_buffer();
  const std::lock_guard<std::mutex> lock{buffer.mutex};
  buffer.events.push_back(event);
  if (event.phase == 'B') {
    ++buffer.depth;
  } else if (event.phase == 'E' && buffer.depth > 0) {
    --buffer.depth;
  }
}

/// Minimal JSON string escaping; names are library-controlled literals,
/// but a rogue quote must not corrupt the file.
void write_escaped(std::ostream& out, const char* text) {
  for (const char* p = text; *p != '\0'; ++p) {
    switch (*p) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\t':
        out << "\\t";
        break;
      default:
        out << *p;
    }
  }
}

void write_event(std::ostream& out, const TraceEvent& e, std::uint32_t tid) {
  char ts[32];
  std::snprintf(ts, sizeof ts, "%.3f", static_cast<double>(e.ts_ns) / 1e3);
  out << "{\"name\": \"";
  write_escaped(out, e.name);
  out << "\", \"ph\": \"" << e.phase << "\", \"pid\": 1, \"tid\": " << tid
      << ", \"ts\": " << ts;
  if (e.phase == 'C') {
    char value[64];
    std::snprintf(value, sizeof value, "%.17g", e.value);
    out << ", \"args\": {\"value\": " << value << "}";
  } else if (e.phase == 's' || e.phase == 'f') {
    // Flow events bind to the enclosing slice; "bp": "e" makes the
    // finish attach to the slice it is emitted inside of.
    out << ", \"cat\": \"par\", \"id\": " << e.span_id;
    if (e.phase == 'f') out << ", \"bp\": \"e\"";
  } else if (e.phase == 'B') {
    out << ", \"args\": {";
    bool first = true;
    if (e.arg != kNoTraceArg) {
      out << "\"k\": " << e.arg;
      first = false;
    }
    if (e.trace_id != 0) {
      out << (first ? "" : ", ") << "\"trace\": " << e.trace_id
          << ", \"span\": " << e.span_id << ", \"parent\": " << e.parent_id;
      first = false;
    }
    out << "}";
  } else if (e.arg != kNoTraceArg) {
    out << ", \"args\": {\"k\": " << e.arg << "}";
  }
  out << "}";
}

Counter& slow_span_counter() {
  static Counter& c = counter("obs.slow_spans");
  return c;
}

}  // namespace

bool tracing_enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_tracing_enabled(bool on) {
  if (on) epoch_ns();  // pin the epoch before the first event
  g_enabled.store(on, std::memory_order_relaxed);
}

std::uint64_t trace_now_ns() {
  return static_cast<std::uint64_t>(steady_ns() - epoch_ns());
}

TraceContext current_trace_context() { return tl_context; }

TraceContextScope::TraceContextScope(TraceContext context)
    : previous_(tl_context) {
  tl_context = context;
}

TraceContextScope::~TraceContextScope() { tl_context = previous_; }

void set_slow_span_threshold_ns(std::uint64_t threshold_ns) {
  g_slow_span_ns.store(threshold_ns, std::memory_order_relaxed);
}

std::uint64_t slow_span_threshold_ns() {
  return g_slow_span_ns.load(std::memory_order_relaxed);
}

namespace detail {

bool enabled_relaxed() { return g_enabled.load(std::memory_order_relaxed); }

SpanState begin_span(const char* name, std::uint64_t arg) {
  SpanState state;
  state.previous = tl_context;
  const std::uint64_t span_id =
      g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t trace_id =
      state.previous.trace_id != 0
          ? state.previous.trace_id
          : g_next_trace_id.fetch_add(1, std::memory_order_relaxed);
  state.start_ns = trace_now_ns();
  append({name, state.start_ns, arg, trace_id, span_id,
          state.previous.span_id, 0.0, 'B'});
  tl_context = {trace_id, span_id};
  return state;
}

void end_span(const char* name, const SpanState& state) {
  const std::uint64_t now = trace_now_ns();
  const TraceContext self = tl_context;
  append({name, now, kNoTraceArg, 0, 0, 0, 0.0, 'E'});
  tl_context = state.previous;
  const std::uint64_t threshold =
      g_slow_span_ns.load(std::memory_order_relaxed);
  if (threshold != 0 && now - state.start_ns > threshold) {
    slow_span_counter().add(1);
    log_warn() << "slow span '" << name << "' took "
               << format_duration(static_cast<double>(now - state.start_ns) /
                                  1e9)
               << " (threshold "
               << format_duration(static_cast<double>(threshold) / 1e9)
               << ", trace " << self.trace_id << ", span " << self.span_id
               << ")";
  }
}

}  // namespace detail

TaskLink capture_task_link() {
  TaskLink link;
  if (!detail::enabled_relaxed()) return link;
  link.context = tl_context;
  link.flow_id = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  append({"par.spawn", trace_now_ns(), kNoTraceArg, link.context.trace_id,
          link.flow_id, 0, 0.0, 's'});
  return link;
}

TaskScope::TaskScope(const TaskLink& link)
    : scope_(link.flow_id != 0 ? link.context : current_trace_context()),
      span_("par.task") {
  if (link.flow_id == 0 || !detail::enabled_relaxed()) return;
  // Emitted inside the just-opened par.task span so "bp": "e" binds the
  // arrow head to it.
  append({"par.spawn", trace_now_ns(), kNoTraceArg, link.context.trace_id,
          link.flow_id, 0, 0.0, 'f'});
}

TaskScope::~TaskScope() = default;

void trace_counter(const char* name, double value) {
  if (!detail::enabled_relaxed()) return;
  append({name, trace_now_ns(), kNoTraceArg, 0, 0, 0, value, 'C'});
}

std::size_t trace_span_depth() {
  ThreadBuffer& buffer = local_buffer();
  const std::lock_guard<std::mutex> lock{buffer.mutex};
  return buffer.depth;
}

std::size_t trace_event_count() {
  BufferRegistry& r = registry();
  const std::lock_guard<std::mutex> registry_lock{r.mutex};
  std::size_t total = 0;
  for (const auto& buffer : r.buffers) {
    const std::lock_guard<std::mutex> lock{buffer->mutex};
    total += buffer->events.size();
  }
  return total;
}

void reset_tracing() {
  BufferRegistry& r = registry();
  const std::lock_guard<std::mutex> registry_lock{r.mutex};
  for (const auto& buffer : r.buffers) {
    const std::lock_guard<std::mutex> lock{buffer->mutex};
    buffer->events.clear();
    buffer->depth = 0;
  }
  std::int64_t now = steady_ns();
  if (now == 0) now = 1;
  g_epoch_ns.store(now, std::memory_order_release);
}

void write_chrome_trace(std::ostream& out) {
  BufferRegistry& r = registry();
  const std::lock_guard<std::mutex> registry_lock{r.mutex};
  out << "{\"traceEvents\": [";
  bool first = true;
  for (const auto& buffer : r.buffers) {
    const std::lock_guard<std::mutex> lock{buffer->mutex};
    for (const TraceEvent& event : buffer->events) {
      out << (first ? "\n" : ",\n");
      first = false;
      write_event(out, event, buffer->tid);
    }
  }
  out << "\n], \"displayTimeUnit\": \"ms\"}\n";
}

void write_chrome_trace_file(const std::string& path) {
  std::ofstream out{path};
  if (!out) {
    throw InvalidInputError{"cannot open trace output file '" + path + "'"};
  }
  write_chrome_trace(out);
}

}  // namespace hp::obs
