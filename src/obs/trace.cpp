#include "obs/trace.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>
#include <ostream>
#include <vector>

#include "util/common.hpp"

namespace hp::obs {

namespace {

using SteadyClock = std::chrono::steady_clock;

std::atomic<bool> g_enabled{false};

/// Trace epoch: all timestamps are relative to this steady-clock point.
/// Written only by reset_tracing() / first use, read by every event.
std::atomic<std::int64_t> g_epoch_ns{0};

struct TraceEvent {
  const char* name;   // literal owned by the call site
  std::uint64_t ts_ns;
  std::uint64_t arg;  // kNoTraceArg = absent
  double value;       // counter events only
  char phase;         // 'B', 'E', 'C'
};

/// Per-thread event buffer. Owned by the global registry (so it outlives
/// its thread and survives thread exit); the thread keeps a raw pointer.
/// The mutex is uncontended except against a concurrent flush/reset.
struct ThreadBuffer {
  std::mutex mutex;
  std::uint32_t tid = 0;
  std::vector<TraceEvent> events;
  std::size_t depth = 0;  // current span-stack depth
};

struct BufferRegistry {
  std::mutex mutex;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;
};

BufferRegistry& registry() {
  static BufferRegistry* r = new BufferRegistry;  // leaked: outlive statics
  return *r;
}

std::int64_t steady_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             SteadyClock::now().time_since_epoch())
      .count();
}

std::int64_t epoch_ns() {
  std::int64_t epoch = g_epoch_ns.load(std::memory_order_acquire);
  if (epoch != 0) return epoch;
  // First use: race-tolerant one-time initialization.
  std::int64_t now = steady_ns();
  if (now == 0) now = 1;
  std::int64_t expected = 0;
  if (g_epoch_ns.compare_exchange_strong(expected, now,
                                         std::memory_order_acq_rel)) {
    return now;
  }
  return expected;
}

ThreadBuffer& local_buffer() {
  thread_local ThreadBuffer* buffer = [] {
    auto owned = std::make_unique<ThreadBuffer>();
    ThreadBuffer* raw = owned.get();
    BufferRegistry& r = registry();
    const std::lock_guard<std::mutex> lock{r.mutex};
    raw->tid = static_cast<std::uint32_t>(r.buffers.size());
    r.buffers.push_back(std::move(owned));
    return raw;
  }();
  return *buffer;
}

void append(const TraceEvent& event) {
  ThreadBuffer& buffer = local_buffer();
  const std::lock_guard<std::mutex> lock{buffer.mutex};
  buffer.events.push_back(event);
  if (event.phase == 'B') {
    ++buffer.depth;
  } else if (event.phase == 'E' && buffer.depth > 0) {
    --buffer.depth;
  }
}

/// Minimal JSON string escaping; names are library-controlled literals,
/// but a rogue quote must not corrupt the file.
void write_escaped(std::ostream& out, const char* text) {
  for (const char* p = text; *p != '\0'; ++p) {
    switch (*p) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\t':
        out << "\\t";
        break;
      default:
        out << *p;
    }
  }
}

void write_event(std::ostream& out, const TraceEvent& e, std::uint32_t tid) {
  char ts[32];
  std::snprintf(ts, sizeof ts, "%.3f", static_cast<double>(e.ts_ns) / 1e3);
  out << "{\"name\": \"";
  write_escaped(out, e.name);
  out << "\", \"ph\": \"" << e.phase << "\", \"pid\": 1, \"tid\": " << tid
      << ", \"ts\": " << ts;
  if (e.phase == 'C') {
    char value[64];
    std::snprintf(value, sizeof value, "%.17g", e.value);
    out << ", \"args\": {\"value\": " << value << "}";
  } else if (e.arg != kNoTraceArg) {
    out << ", \"args\": {\"k\": " << e.arg << "}";
  }
  out << "}";
}

}  // namespace

bool tracing_enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_tracing_enabled(bool on) {
  if (on) epoch_ns();  // pin the epoch before the first event
  g_enabled.store(on, std::memory_order_relaxed);
}

std::uint64_t trace_now_ns() {
  return static_cast<std::uint64_t>(steady_ns() - epoch_ns());
}

namespace detail {

bool enabled_relaxed() { return g_enabled.load(std::memory_order_relaxed); }

void record_begin(const char* name, std::uint64_t arg) {
  append({name, trace_now_ns(), arg, 0.0, 'B'});
}

void record_end(const char* name) {
  append({name, trace_now_ns(), kNoTraceArg, 0.0, 'E'});
}

}  // namespace detail

void trace_counter(const char* name, double value) {
  if (!detail::enabled_relaxed()) return;
  append({name, trace_now_ns(), kNoTraceArg, value, 'C'});
}

std::size_t trace_span_depth() {
  ThreadBuffer& buffer = local_buffer();
  const std::lock_guard<std::mutex> lock{buffer.mutex};
  return buffer.depth;
}

std::size_t trace_event_count() {
  BufferRegistry& r = registry();
  const std::lock_guard<std::mutex> registry_lock{r.mutex};
  std::size_t total = 0;
  for (const auto& buffer : r.buffers) {
    const std::lock_guard<std::mutex> lock{buffer->mutex};
    total += buffer->events.size();
  }
  return total;
}

void reset_tracing() {
  BufferRegistry& r = registry();
  const std::lock_guard<std::mutex> registry_lock{r.mutex};
  for (const auto& buffer : r.buffers) {
    const std::lock_guard<std::mutex> lock{buffer->mutex};
    buffer->events.clear();
    buffer->depth = 0;
  }
  std::int64_t now = steady_ns();
  if (now == 0) now = 1;
  g_epoch_ns.store(now, std::memory_order_release);
}

void write_chrome_trace(std::ostream& out) {
  BufferRegistry& r = registry();
  const std::lock_guard<std::mutex> registry_lock{r.mutex};
  out << "{\"traceEvents\": [";
  bool first = true;
  for (const auto& buffer : r.buffers) {
    const std::lock_guard<std::mutex> lock{buffer->mutex};
    for (const TraceEvent& event : buffer->events) {
      out << (first ? "\n" : ",\n");
      first = false;
      write_event(out, event, buffer->tid);
    }
  }
  out << "\n], \"displayTimeUnit\": \"ms\"}\n";
}

void write_chrome_trace_file(const std::string& path) {
  std::ofstream out{path};
  if (!out) {
    throw InvalidInputError{"cannot open trace output file '" + path + "'"};
  }
  write_chrome_trace(out);
}

}  // namespace hp::obs
