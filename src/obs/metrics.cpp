#include "obs/metrics.hpp"

#include <bit>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>

#include "util/common.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace hp::obs {

namespace {

int bucket_of(std::uint64_t ns) {
  if (ns <= 1) return 0;
  const int bit = std::bit_width(ns) - 1;  // floor(log2(ns))
  return bit < LatencyHistogram::kBuckets ? bit
                                          : LatencyHistogram::kBuckets - 1;
}

std::string format_ns(std::uint64_t ns) {
  return format_duration(static_cast<double>(ns) / 1e9);
}

std::string format_gauge(double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", value);
  return buf;
}

}  // namespace

void LatencyHistogram::record_ns(std::uint64_t ns) {
  buckets_[bucket_of(ns)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_ns_.fetch_add(ns, std::memory_order_relaxed);
}

void LatencyHistogram::reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_ns_.store(0, std::memory_order_relaxed);
}

std::uint64_t LatencyHistogram::quantile_upper_ns(double q) const {
  const std::uint64_t total = count();
  if (total == 0) return 0;
  const std::uint64_t rank =
      static_cast<std::uint64_t>(q * static_cast<double>(total - 1));
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += bucket(i);
    if (seen > rank) return std::uint64_t{1} << (i + 1);
  }
  return std::uint64_t{1} << kBuckets;
}

struct Registry::Impl {
  mutable std::mutex mutex;
  // std::map keeps snapshots name-sorted; node stability lets callers
  // hold references across later registrations.
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms;
};

Registry::Impl& Registry::impl() const {
  static Impl* impl = new Impl;  // leaked: metric refs outlive statics
  return *impl;
}

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

Counter& Registry::counter(const std::string& name) {
  Impl& i = impl();
  const std::lock_guard<std::mutex> lock{i.mutex};
  auto& slot = i.counters[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  Impl& i = impl();
  const std::lock_guard<std::mutex> lock{i.mutex};
  auto& slot = i.gauges[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

LatencyHistogram& Registry::latency(const std::string& name) {
  Impl& i = impl();
  const std::lock_guard<std::mutex> lock{i.mutex};
  auto& slot = i.histograms[name];
  if (slot == nullptr) slot = std::make_unique<LatencyHistogram>();
  return *slot;
}

MetricsSnapshot Registry::snapshot() const {
  Impl& i = impl();
  const std::lock_guard<std::mutex> lock{i.mutex};
  MetricsSnapshot out;
  for (const auto& [name, metric] : i.counters) {
    out.counters.push_back({name, metric->value()});
  }
  for (const auto& [name, metric] : i.gauges) {
    out.gauges.push_back({name, metric->value()});
  }
  for (const auto& [name, metric] : i.histograms) {
    HistogramSample s;
    s.name = name;
    s.count = metric->count();
    s.sum_ns = metric->sum_ns();
    s.p50_ns = metric->quantile_upper_ns(0.50);
    s.p90_ns = metric->quantile_upper_ns(0.90);
    s.p99_ns = metric->quantile_upper_ns(0.99);
    s.max_ns = metric->quantile_upper_ns(1.0);
    int last = -1;
    for (int b = 0; b < LatencyHistogram::kBuckets; ++b) {
      if (metric->bucket(b) > 0) last = b;
    }
    for (int b = 0; b <= last; ++b) s.buckets.push_back(metric->bucket(b));
    out.histograms.push_back(std::move(s));
  }
  return out;
}

void Registry::reset() {
  Impl& i = impl();
  const std::lock_guard<std::mutex> lock{i.mutex};
  for (auto& [name, metric] : i.counters) metric->set(0);
  for (auto& [name, metric] : i.gauges) metric->set(0.0);
  for (auto& [name, metric] : i.histograms) metric->reset();
}

Counter& counter(const std::string& name) {
  return Registry::global().counter(name);
}

Gauge& gauge(const std::string& name) {
  return Registry::global().gauge(name);
}

LatencyHistogram& latency(const std::string& name) {
  return Registry::global().latency(name);
}

std::string render_table(const MetricsSnapshot& snapshot) {
  Table table{{"metric", "type", "value"}};
  for (const CounterSample& s : snapshot.counters) {
    table.row().cell(s.name).cell("counter").cell(s.value);
  }
  for (const GaugeSample& s : snapshot.gauges) {
    table.row().cell(s.name).cell("gauge").cell(format_gauge(s.value));
  }
  for (const HistogramSample& s : snapshot.histograms) {
    std::ostringstream value;
    value << "count=" << s.count << " sum=" << format_ns(s.sum_ns)
          << " p50<=" << format_ns(s.p50_ns)
          << " p90<=" << format_ns(s.p90_ns)
          << " p99<=" << format_ns(s.p99_ns)
          << " max<=" << format_ns(s.max_ns);
    table.row().cell(s.name).cell("histogram").cell(value.str());
  }
  return table.to_string();
}

namespace {

void write_escaped_name(std::ostream& out, const std::string& name) {
  out << '"';
  for (char c : name) {
    if (c == '"' || c == '\\') out << '\\';
    out << c;
  }
  out << '"';
}

}  // namespace

void write_metrics_json(const MetricsSnapshot& snapshot, std::ostream& out) {
  out << "{\n  \"counters\": {";
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
    out << (i == 0 ? "\n    " : ",\n    ");
    write_escaped_name(out, snapshot.counters[i].name);
    out << ": " << snapshot.counters[i].value;
  }
  out << "\n  },\n  \"gauges\": {";
  for (std::size_t i = 0; i < snapshot.gauges.size(); ++i) {
    char value[64];
    std::snprintf(value, sizeof value, "%.17g", snapshot.gauges[i].value);
    out << (i == 0 ? "\n    " : ",\n    ");
    write_escaped_name(out, snapshot.gauges[i].name);
    out << ": " << value;
  }
  out << "\n  },\n  \"histograms\": {";
  for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const HistogramSample& s = snapshot.histograms[i];
    out << (i == 0 ? "\n    " : ",\n    ");
    write_escaped_name(out, s.name);
    out << ": {\"count\": " << s.count << ", \"sum_ns\": " << s.sum_ns
        << ", \"p50_ns\": " << s.p50_ns << ", \"p90_ns\": " << s.p90_ns
        << ", \"p99_ns\": " << s.p99_ns << ", \"max_ns\": " << s.max_ns
        << ", \"buckets\": [";
    for (std::size_t b = 0; b < s.buckets.size(); ++b) {
      out << (b == 0 ? "" : ", ") << s.buckets[b];
    }
    out << "]}";
  }
  out << "\n  }\n}\n";
}

void write_metrics_json_file(const MetricsSnapshot& snapshot,
                             const std::string& path) {
  std::ofstream out{path};
  if (!out) {
    throw InvalidInputError{"cannot open metrics output file '" + path +
                            "'"};
  }
  write_metrics_json(snapshot, out);
}

}  // namespace hp::obs
