#include "obs/json_check.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <map>
#include <set>
#include <vector>

#include "util/common.hpp"

namespace hp::obs::json {

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw ParseError{"json: " + why + " at offset " +
                     std::to_string(pos_)};
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string{"expected '"} + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* literal) {
    const std::size_t n = std::char_traits<char>::length(literal);
    if (text_.compare(pos_, n, literal) != 0) return false;
    pos_ += n;
    return true;
  }

  Value parse_value() {
    if (depth_ >= kMaxDepth) fail("nesting deeper than 256 levels");
    ++depth_;
    Value v = parse_value_inner();
    --depth_;
    return v;
  }

  Value parse_value_inner() {
    skip_whitespace();
    switch (peek()) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"': {
        Value v;
        v.type = Value::Type::kString;
        v.string = parse_string();
        return v;
      }
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return make_bool(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return make_bool(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Value{};
      default:
        return parse_number();
    }
  }

  static Value make_bool(bool b) {
    Value v;
    v.type = Value::Type::kBool;
    v.boolean = b;
    return v;
  }

  Value parse_object() {
    expect('{');
    Value v;
    v.type = Value::Type::kObject;
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value());
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Value parse_array() {
    expect('[');
    Value v;
    v.type = Value::Type::kArray;
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value());
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u':
          // Pass \uXXXX through undecoded; trace names never need it.
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          out += "\\u";
          out.append(text_, pos_, 4);
          pos_ += 4;
          break;
        default:
          fail("unknown escape");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    const auto digits = [&] {
      const std::size_t before = pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
        ++pos_;
      }
      return pos_ > before;
    };
    if (!digits()) fail("malformed number");
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (!digits()) fail("malformed fraction");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (!digits()) fail("malformed exponent");
    }
    Value v;
    v.type = Value::Type::kNumber;
    v.number = std::strtod(text_.c_str() + start, nullptr);
    return v;
  }

  /// Recursion ceiling for nested arrays/objects: deep enough for any
  /// trace or metrics document, shallow enough that a hostile
  /// "[[[[..."-style input raises ParseError long before the parser
  /// (or the Value destructor) can exhaust the stack. The analysis
  /// server's request parser (src/serve/protocol.cpp) relies on this
  /// bound holding for arbitrary network input.
  static constexpr int kMaxDepth = 256;

  const std::string& text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

const Value* Value::find(const std::string& key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [name, value] : object) {
    if (name == key) return &value;
  }
  return nullptr;
}

Value parse(const std::string& text) {
  return Parser{text}.parse_document();
}

}  // namespace hp::obs::json

namespace hp::obs {

bool TraceSummary::all_balanced() const {
  return std::all_of(threads.begin(), threads.end(),
                     [](const TraceThreadSummary& t) { return t.balanced; });
}

bool TraceSummary::all_monotonic() const {
  return std::all_of(
      threads.begin(), threads.end(),
      [](const TraceThreadSummary& t) { return t.timestamps_monotonic; });
}

bool TraceSummary::all_single_rooted() const {
  return parent_integrity &&
         std::all_of(trees.begin(), trees.end(),
                     [](const TraceTreeSummary& t) {
                       return t.roots == 1 && t.connected;
                     });
}

const TraceThreadSummary* TraceSummary::thread(std::uint32_t tid) const {
  for (const TraceThreadSummary& t : threads) {
    if (t.tid == tid) return &t;
  }
  return nullptr;
}

const TraceTreeSummary* TraceSummary::tree(std::uint64_t trace_id) const {
  for (const TraceTreeSummary& t : trees) {
    if (t.trace_id == trace_id) return &t;
  }
  return nullptr;
}

TraceSummary summarize_trace(const json::Value& root) {
  const json::Value* events = root.find("traceEvents");
  if (events == nullptr || events->type != json::Value::Type::kArray) {
    throw ParseError{"trace: missing \"traceEvents\" array"};
  }

  struct ThreadState {
    TraceThreadSummary summary;
    double last_ts = -1.0;
    std::int64_t depth = 0;
  };
  std::map<std::uint32_t, ThreadState> threads;

  struct TreeState {
    TraceTreeSummary summary;
    std::set<std::uint32_t> tids;
  };
  std::map<std::uint64_t, TreeState> trees;
  std::map<std::uint64_t, std::uint64_t> span_to_trace;  // span id -> trace
  struct ParentRef {
    std::uint64_t trace_id;
    std::uint64_t parent_id;
  };
  std::vector<ParentRef> parent_refs;  // resolved after the event sweep

  TraceSummary out;
  for (const json::Value& event : events->array) {
    const json::Value* name = event.find("name");
    const json::Value* phase = event.find("ph");
    const json::Value* ts = event.find("ts");
    const json::Value* tid = event.find("tid");
    if (name == nullptr || name->type != json::Value::Type::kString ||
        phase == nullptr || phase->type != json::Value::Type::kString ||
        phase->string.size() != 1 || ts == nullptr ||
        ts->type != json::Value::Type::kNumber || tid == nullptr ||
        tid->type != json::Value::Type::kNumber) {
      throw ParseError{"trace: event missing name/ph/ts/tid"};
    }
    ++out.events;
    ThreadState& state =
        threads[static_cast<std::uint32_t>(tid->number)];
    state.summary.tid = static_cast<std::uint32_t>(tid->number);
    ++state.summary.events;
    if (ts->number < state.last_ts) {
      state.summary.timestamps_monotonic = false;
    }
    state.last_ts = ts->number;
    switch (phase->string[0]) {
      case 'B': {
        ++state.summary.begin_events;
        ++state.depth;
        // Causal ids ride in args: {"trace": t, "span": s, "parent": p}.
        // Spans without them (older traces) simply stay outside the
        // tree bookkeeping.
        const json::Value* args = event.find("args");
        const json::Value* trace = args ? args->find("trace") : nullptr;
        const json::Value* span = args ? args->find("span") : nullptr;
        const json::Value* parent = args ? args->find("parent") : nullptr;
        if (trace != nullptr && span != nullptr && parent != nullptr &&
            trace->type == json::Value::Type::kNumber &&
            span->type == json::Value::Type::kNumber &&
            parent->type == json::Value::Type::kNumber) {
          const auto trace_id = static_cast<std::uint64_t>(trace->number);
          const auto span_id = static_cast<std::uint64_t>(span->number);
          const auto parent_id = static_cast<std::uint64_t>(parent->number);
          TreeState& tree = trees[trace_id];
          tree.summary.trace_id = trace_id;
          ++tree.summary.spans;
          tree.tids.insert(state.summary.tid);
          if (parent_id == 0) {
            ++tree.summary.roots;
          } else {
            parent_refs.push_back({trace_id, parent_id});
          }
          if (!span_to_trace.emplace(span_id, trace_id).second) {
            out.parent_integrity = false;  // duplicate span id
          }
        }
        break;
      }
      case 'E':
        ++state.summary.end_events;
        if (--state.depth < 0) state.summary.balanced = false;
        break;
      case 'C':
        ++state.summary.counter_events;
        break;
      case 's':
      case 't':
      case 'f':
        ++state.summary.flow_events;
        break;
      case 'X':
        break;  // complete events carry their own duration
      default:
        throw ParseError{"trace: unsupported phase '" + phase->string +
                         "'"};
    }
  }
  // Second pass: every parent reference must name a recorded span of
  // the same trace. Dangling or cross-trace parents break connectivity.
  for (const ParentRef& ref : parent_refs) {
    const auto found = span_to_trace.find(ref.parent_id);
    if (found == span_to_trace.end() || found->second != ref.trace_id) {
      out.parent_integrity = false;
      trees[ref.trace_id].summary.connected = false;
    }
  }
  for (auto& [tid, state] : threads) {
    if (state.depth != 0) state.summary.balanced = false;
    out.threads.push_back(state.summary);
  }
  for (auto& [trace_id, state] : trees) {
    state.summary.threads = state.tids.size();
    out.trees.push_back(state.summary);
  }
  return out;
}

}  // namespace hp::obs
