#include "obs/profile.hpp"

#include <cxxabi.h>
#include <dlfcn.h>
#include <sys/time.h>
#include <ucontext.h>

#include <atomic>
#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <mutex>
#include <ostream>
#include <vector>

#include "util/common.hpp"

namespace hp::obs {

namespace {

/// Sample buffer layout: `stride` atomic words per sample; word 0 is
/// the frame count (written last, with release, so a reader that sees
/// it non-zero also sees the frames), words 1..depth are PC values
/// leaf-first. Allocated by start_profiling() before the handler is
/// installed; the handler only ever indexes it.
struct ProfileState {
  std::vector<std::atomic<std::uintptr_t>> buffer;
  std::size_t stride = 0;
  std::size_t capacity = 0;  // samples
  int max_frames = 0;
  std::atomic<std::size_t> cursor{0};
  std::atomic<std::size_t> dropped{0};
};

ProfileState& state() {
  static ProfileState* s = new ProfileState;  // leaked: outlives statics
  return *s;
}

/// Armed flag the handler checks first; lock-free and async-signal-safe.
std::atomic<bool> g_armed{false};
bool g_active = false;  // start/stop bookkeeping, under g_control_mutex
std::mutex g_control_mutex;
struct sigaction g_previous_action;

/// Upper bound on how far above the handler's own frame a valid frame
/// pointer may live. Anything outside [approx_sp, approx_sp + 8 MiB) is
/// rejected before it is dereferenced, so a clobbered rbp (e.g. libc
/// code using it as a scratch register) degrades to a shorter stack
/// instead of a fault.
constexpr std::uintptr_t kMaxStackSpan = 8u << 20;

/// Async-signal-safe by construction: atomics, arithmetic, and loads
/// from addresses validated to lie on the current thread's stack. The
/// sanitizers are excluded because the frame walk intentionally reads
/// stack words that instrumentation considers out of scope (spilled
/// registers, parent frames).
#if defined(__clang__) || defined(__GNUC__)
__attribute__((no_sanitize("address", "thread", "undefined")))
#endif
void
sigprof_handler(int, siginfo_t*, void* context) {
  if (!g_armed.load(std::memory_order_relaxed)) return;
  ProfileState& s = state();
  const std::size_t index =
      s.cursor.fetch_add(1, std::memory_order_relaxed);
  if (index >= s.capacity) {
    s.dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  std::atomic<std::uintptr_t>* sample = s.buffer.data() + index * s.stride;

  std::uintptr_t pc = 0;
  std::uintptr_t fp = 0;
#if defined(__x86_64__)
  const auto* uc = static_cast<const ucontext_t*>(context);
  pc = static_cast<std::uintptr_t>(uc->uc_mcontext.gregs[REG_RIP]);
  fp = static_cast<std::uintptr_t>(uc->uc_mcontext.gregs[REG_RBP]);
#elif defined(__aarch64__)
  const auto* uc = static_cast<const ucontext_t*>(context);
  pc = static_cast<std::uintptr_t>(uc->uc_mcontext.pc);
  fp = static_cast<std::uintptr_t>(uc->uc_mcontext.regs[29]);
#else
  (void)context;
  pc = reinterpret_cast<std::uintptr_t>(__builtin_return_address(0));
  fp = reinterpret_cast<std::uintptr_t>(__builtin_frame_address(0));
#endif

  int depth = 0;
  if (pc != 0) {
    sample[1 + depth].store(pc, std::memory_order_relaxed);
    ++depth;
  }
  // The handler runs on the interrupted thread's stack (no sigaltstack),
  // so a local's address bounds the valid frame-pointer range from
  // below.
  const std::uintptr_t stack_low = reinterpret_cast<std::uintptr_t>(&depth);
  const std::uintptr_t stack_high = stack_low + kMaxStackSpan;
  while (depth < s.max_frames) {
    if (fp < stack_low || fp + 2 * sizeof(void*) > stack_high ||
        fp % sizeof(void*) != 0) {
      break;
    }
    const auto* frame = reinterpret_cast<const std::uintptr_t*>(fp);
    const std::uintptr_t ret = frame[1];
    const std::uintptr_t next = frame[0];
    if (ret == 0) break;
    sample[1 + depth].store(ret, std::memory_order_relaxed);
    ++depth;
    if (next <= fp) break;  // frame chain must move toward the stack base
    fp = next;
  }
  sample[0].store(static_cast<std::uintptr_t>(depth),
                  std::memory_order_release);
}

/// Demangle + cache one code address. `adjust` subtracts 1 for return
/// addresses so the lookup lands inside the call instruction.
std::string symbolize(std::uintptr_t address, bool is_return_address) {
  const std::uintptr_t lookup =
      is_return_address && address > 0 ? address - 1 : address;
  Dl_info info;
  if (dladdr(reinterpret_cast<void*>(lookup), &info) != 0 &&
      info.dli_sname != nullptr) {
    int status = 0;
    char* demangled =
        abi::__cxa_demangle(info.dli_sname, nullptr, nullptr, &status);
    std::string name =
        status == 0 && demangled != nullptr ? demangled : info.dli_sname;
    std::free(demangled);
    // ';' is the folded-stack separator and ' ' separates the count;
    // neither may appear inside a frame name.
    for (char& c : name) {
      if (c == ';') c = ':';
      if (c == ' ') c = '_';
    }
    return name;
  }
  char buf[64];
  if (dladdr(reinterpret_cast<void*>(lookup), &info) != 0 &&
      info.dli_fname != nullptr) {
    const char* base = std::strrchr(info.dli_fname, '/');
    base = base != nullptr ? base + 1 : info.dli_fname;
    std::snprintf(buf, sizeof buf, "%s+0x%llx", base,
                  static_cast<unsigned long long>(
                      lookup -
                      reinterpret_cast<std::uintptr_t>(info.dli_fbase)));
    std::string name = buf;
    for (char& c : name) {
      if (c == ';') c = ':';
      if (c == ' ') c = '_';
    }
    return name;
  }
  std::snprintf(buf, sizeof buf, "0x%llx",
                static_cast<unsigned long long>(address));
  return buf;
}

}  // namespace

bool profiling_active() {
  const std::lock_guard<std::mutex> lock{g_control_mutex};
  return g_active;
}

void start_profiling(const ProfileOptions& options) {
  const std::lock_guard<std::mutex> lock{g_control_mutex};
  HP_REQUIRE(!g_active, "profiler is already active");
  HP_REQUIRE(options.interval_us > 0, "profiler interval must be > 0");
  HP_REQUIRE(options.max_frames > 0, "profiler max_frames must be > 0");
  HP_REQUIRE(options.max_samples > 0, "profiler max_samples must be > 0");

  ProfileState& s = state();
  s.stride = static_cast<std::size_t>(options.max_frames) + 1;
  s.capacity = options.max_samples;
  s.max_frames = options.max_frames;
  // value-initialized atomics: every depth word starts at 0 ("empty")
  s.buffer = std::vector<std::atomic<std::uintptr_t>>(s.capacity * s.stride);
  s.cursor.store(0, std::memory_order_relaxed);
  s.dropped.store(0, std::memory_order_relaxed);

  struct sigaction action;
  std::memset(&action, 0, sizeof action);
  action.sa_sigaction = &sigprof_handler;
  action.sa_flags = SA_SIGINFO | SA_RESTART;
  sigemptyset(&action.sa_mask);
  if (sigaction(SIGPROF, &action, &g_previous_action) != 0) {
    throw InvalidInputError{"profiler: sigaction(SIGPROF) failed"};
  }

  g_armed.store(true, std::memory_order_release);

  itimerval timer;
  timer.it_interval.tv_sec =
      static_cast<time_t>(options.interval_us / 1000000);
  timer.it_interval.tv_usec =
      static_cast<suseconds_t>(options.interval_us % 1000000);
  timer.it_value = timer.it_interval;
  if (setitimer(ITIMER_PROF, &timer, nullptr) != 0) {
    g_armed.store(false, std::memory_order_release);
    sigaction(SIGPROF, &g_previous_action, nullptr);
    throw InvalidInputError{"profiler: setitimer(ITIMER_PROF) failed"};
  }
  g_active = true;
}

void stop_profiling() {
  const std::lock_guard<std::mutex> lock{g_control_mutex};
  if (!g_active) return;
  itimerval off;
  std::memset(&off, 0, sizeof off);
  setitimer(ITIMER_PROF, &off, nullptr);
  g_armed.store(false, std::memory_order_release);
  sigaction(SIGPROF, &g_previous_action, nullptr);
  g_active = false;
}

std::size_t profile_sample_count() {
  ProfileState& s = state();
  const std::size_t claimed = s.cursor.load(std::memory_order_relaxed);
  return claimed < s.capacity ? claimed : s.capacity;
}

std::size_t profile_dropped_samples() {
  return state().dropped.load(std::memory_order_relaxed);
}

void reset_profiling() {
  const std::lock_guard<std::mutex> lock{g_control_mutex};
  HP_REQUIRE(!g_active, "stop the profiler before resetting it");
  ProfileState& s = state();
  for (std::atomic<std::uintptr_t>& word : s.buffer) {
    word.store(0, std::memory_order_relaxed);
  }
  s.cursor.store(0, std::memory_order_relaxed);
  s.dropped.store(0, std::memory_order_relaxed);
}

void write_folded(std::ostream& out) {
  ProfileState& s = state();
  const std::size_t samples = profile_sample_count();

  // Aggregate identical stacks (stored leaf-first) before symbolizing.
  std::map<std::vector<std::uintptr_t>, std::uint64_t> stacks;
  std::vector<std::uintptr_t> key;
  for (std::size_t i = 0; i < samples; ++i) {
    const std::atomic<std::uintptr_t>* sample =
        s.buffer.data() + i * s.stride;
    const auto depth = static_cast<std::size_t>(
        sample[0].load(std::memory_order_acquire));
    if (depth == 0) continue;  // claimed but unfinished at stop time
    key.clear();
    for (std::size_t f = 0; f < depth; ++f) {
      key.push_back(sample[1 + f].load(std::memory_order_relaxed));
    }
    ++stacks[key];
  }

  std::map<std::uintptr_t, std::string> leaf_names;
  std::map<std::uintptr_t, std::string> return_names;
  const auto name_of = [&](std::uintptr_t address, bool is_return) {
    auto& cache = is_return ? return_names : leaf_names;
    auto found = cache.find(address);
    if (found == cache.end()) {
      found = cache.emplace(address, symbolize(address, is_return)).first;
    }
    return found->second;
  };

  // Folded lines are root-first; samples are leaf-first, so iterate the
  // stack backwards. Frame 0 is the interrupted PC, the rest are return
  // addresses (symbolized at address - 1).
  for (const auto& [stack, count] : stacks) {
    for (std::size_t f = stack.size(); f-- > 0;) {
      out << name_of(stack[f], /*is_return=*/f != 0);
      out << (f == 0 ? ' ' : ';');
    }
    out << count << '\n';
  }
}

void write_folded_file(const std::string& path) {
  std::ofstream out{path};
  if (!out) {
    throw InvalidInputError{"cannot open profile output file '" + path +
                            "'"};
  }
  write_folded(out);
}

}  // namespace hp::obs
