// Continuous metrics export: a background flusher thread snapshots the
// registry on a fixed interval into (a) an in-memory time-series ring
// buffer, (b) an append-only JSONL file (one snapshot object per line),
// and (c) a Prometheus text-exposition file rewritten atomically
// (tmp + rename) so a scraper never reads a torn snapshot.
//
// The flusher also refreshes process-level gauges before every
// snapshot (update_process_gauges): process.rss_bytes from
// /proc/self/statm, a par.idle_ns_per_s rate derived from the pool's
// cumulative idle counter, plus any callbacks registered with
// register_flush_callback (the thread pool contributes par.queue_depth
// this way, keeping obs free of a dependency on par).
//
// Interval selection: HP_METRICS_INTERVAL accepts "250ms", "2s", or a
// bare millisecond count; unset or unparsable means "no continuous
// export" (the CLI then flushes once at exit as before). DESIGN.md
// section 14 covers the lifecycle.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace hp::obs {

struct ExportOptions {
  /// JSONL sink; empty disables the file (ring buffer still fills).
  std::string jsonl_path;
  /// Prometheus text-exposition sink; empty disables.
  std::string prom_path;
  /// Flush period for the background thread.
  std::chrono::milliseconds interval{1000};
  /// Ring-buffer capacity in snapshots; oldest entries are overwritten.
  std::size_t ring_capacity = 512;
};

/// One ring-buffer entry: a registry snapshot plus when it was taken.
struct TimedSnapshot {
  std::uint64_t unix_ms = 0;      // wall clock, for log correlation
  std::uint64_t uptime_ns = 0;    // steady clock, for rate math
  MetricsSnapshot snapshot;
};

/// Background flusher. start() spawns the thread; stop() joins it after
/// a final flush, so the sinks always end on a complete snapshot.
/// Thread-safe; start() while running throws.
class MetricsExporter {
 public:
  MetricsExporter();
  ~MetricsExporter();
  MetricsExporter(const MetricsExporter&) = delete;
  MetricsExporter& operator=(const MetricsExporter&) = delete;

  void start(const ExportOptions& options);
  /// Final flush + join. No-op when not running. Never throws: sink
  /// write failures on the last flush are logged, not raised.
  void stop();
  bool running() const;

  /// Take one snapshot immediately (also refreshes process gauges) and
  /// write it to every configured sink. Usable with or without the
  /// background thread.
  void flush_now();

  /// Completed flushes since start().
  std::uint64_t flush_count() const;

  /// Copy of the ring buffer, oldest first.
  std::vector<TimedSnapshot> ring() const;

  /// Process-wide exporter the CLI wires to HP_METRICS_INTERVAL.
  static MetricsExporter& global();

 private:
  struct Impl;
  Impl* impl_;  // allocated in the constructor (Impl is file-local)
  Impl& impl() const { return *impl_; }
};

/// Refresh process-level gauges in the global registry:
/// process.rss_bytes, process.vm_bytes (from /proc/self/statm; absent
/// on non-Linux, gauges stay 0), par.idle_ns_per_s (rate over the call
/// interval), then run every registered flush callback.
void update_process_gauges();

/// Register a named callback run by update_process_gauges(); replaces
/// any previous callback of the same name (idempotent registration from
/// singleton constructors).
void register_flush_callback(const std::string& name,
                             std::function<void()> callback);

/// Prometheus text exposition (version 0.0.4): counters and gauges as
/// `hp_<name> value` with dots mapped to underscores, histograms as
/// summaries with quantile 0.5/0.9/0.99 labels plus _sum/_count.
void write_prometheus(const MetricsSnapshot& snapshot, std::ostream& out);

/// write_prometheus to a temp file next to `path`, then rename over it.
/// Throws InvalidInputError when the file cannot be written.
void write_prometheus_file(const MetricsSnapshot& snapshot,
                           const std::string& path);

/// Append one snapshot as a single JSON line to `path`. Throws
/// InvalidInputError when the file cannot be opened.
void append_metrics_jsonl(const TimedSnapshot& snapshot,
                          const std::string& path);

/// Parse an interval spec: "250ms", "2s", or a bare millisecond count.
/// nullopt (not a throw) for empty/garbage/zero, so callers can treat
/// an unset or bad HP_METRICS_INTERVAL as "disabled" with a warning.
std::optional<std::chrono::milliseconds> parse_metrics_interval(
    const std::string& text);

/// parse_metrics_interval(getenv("HP_METRICS_INTERVAL")).
std::optional<std::chrono::milliseconds> metrics_interval_from_env();

}  // namespace hp::obs
