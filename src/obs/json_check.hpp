// Minimal JSON reader + Chrome-trace structural validator.
//
// The obs exporters write JSON by hand (no third-party dependency); this
// module closes the loop by parsing it back, so tests and tooling can
// assert "the emitted file is valid JSON with well-formed trace events"
// without a real JSON library. It is a strict RFC-8259 subset reader
// (no comments, no trailing commas); escapes are decoded for \" \\ \/
// \n \t \r \b \f and passed through verbatim for \uXXXX.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace hp::obs::json {

/// Mutable JSON document tree. Small inputs only (traces, metrics
/// dumps); everything is stored by value.
struct Value {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;  // insertion order

  /// Member lookup on an object; nullptr when absent or not an object.
  const Value* find(const std::string& key) const;
};

/// Parse one JSON document (trailing whitespace allowed, trailing
/// garbage rejected). Nesting is capped at 256 levels so hostile
/// deeply-nested input fails with ParseError instead of exhausting the
/// stack (the analysis-server request parser feeds this with untrusted
/// network frames). Throws hp::ParseError with an offset on error.
Value parse(const std::string& text);

}  // namespace hp::obs::json

namespace hp::obs {

/// Per-thread tallies of a parsed Chrome trace.
struct TraceThreadSummary {
  std::uint32_t tid = 0;
  std::size_t events = 0;
  std::size_t begin_events = 0;
  std::size_t end_events = 0;
  std::size_t counter_events = 0;
  std::size_t flow_events = 0;  // ph "s"/"t"/"f" task hand-off markers
  bool timestamps_monotonic = true;  // non-decreasing ts in file order
  bool balanced = true;  // B/E counts match and depth never went negative
};

/// Per-trace-id tallies of the causal span tree (args.trace/span/parent
/// on B events, DESIGN.md section 14). A healthy operation shows up as
/// exactly one tree: `roots == 1` and `connected` true.
struct TraceTreeSummary {
  std::uint64_t trace_id = 0;
  std::size_t spans = 0;      // B events carrying this trace id
  std::size_t roots = 0;      // spans with parent 0
  std::size_t threads = 0;    // distinct tids contributing spans
  /// Every non-root parent id resolves to a span of the same trace.
  bool connected = true;
};

struct TraceSummary {
  std::size_t events = 0;
  std::vector<TraceThreadSummary> threads;  // sorted by tid
  std::vector<TraceTreeSummary> trees;      // sorted by trace_id
  /// Span ids unique file-wide and every parent reference resolves to a
  /// span of the same trace. Spans without ids (pre-context traces) are
  /// exempt.
  bool parent_integrity = true;

  bool all_balanced() const;
  bool all_monotonic() const;
  /// Every tree has exactly one root and is fully connected.
  bool all_single_rooted() const;
  const TraceThreadSummary* thread(std::uint32_t tid) const;
  const TraceTreeSummary* tree(std::uint64_t trace_id) const;
};

/// Validate a parsed trace document: must be an object with a
/// "traceEvents" array whose entries carry string "name"/"ph" and
/// numeric "ts"/"tid". Throws hp::ParseError on structural violations;
/// ordering/balance/parent-integrity problems are reported in the
/// summary, not thrown.
TraceSummary summarize_trace(const json::Value& root);

}  // namespace hp::obs
