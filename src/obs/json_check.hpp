// Minimal JSON reader + Chrome-trace structural validator.
//
// The obs exporters write JSON by hand (no third-party dependency); this
// module closes the loop by parsing it back, so tests and tooling can
// assert "the emitted file is valid JSON with well-formed trace events"
// without a real JSON library. It is a strict RFC-8259 subset reader
// (no comments, no trailing commas); escapes are decoded for \" \\ \/
// \n \t \r \b \f and passed through verbatim for \uXXXX.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace hp::obs::json {

/// Mutable JSON document tree. Small inputs only (traces, metrics
/// dumps); everything is stored by value.
struct Value {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;  // insertion order

  /// Member lookup on an object; nullptr when absent or not an object.
  const Value* find(const std::string& key) const;
};

/// Parse one JSON document (trailing whitespace allowed, trailing
/// garbage rejected). Throws hp::ParseError with an offset on error.
Value parse(const std::string& text);

}  // namespace hp::obs::json

namespace hp::obs {

/// Per-thread tallies of a parsed Chrome trace.
struct TraceThreadSummary {
  std::uint32_t tid = 0;
  std::size_t events = 0;
  std::size_t begin_events = 0;
  std::size_t end_events = 0;
  std::size_t counter_events = 0;
  bool timestamps_monotonic = true;  // non-decreasing ts in file order
  bool balanced = true;  // B/E counts match and depth never went negative
};

struct TraceSummary {
  std::size_t events = 0;
  std::vector<TraceThreadSummary> threads;  // sorted by tid

  bool all_balanced() const;
  bool all_monotonic() const;
  const TraceThreadSummary* thread(std::uint32_t tid) const;
};

/// Validate a parsed trace document: must be an object with a
/// "traceEvents" array whose entries carry string "name"/"ph" and
/// numeric "ts"/"tid". Throws hp::ParseError on structural violations;
/// ordering/balance problems are reported in the summary, not thrown.
TraceSummary summarize_trace(const json::Value& root);

}  // namespace hp::obs
