// Metrics registry: named counters, gauges and fixed-bucket latency
// histograms behind relaxed atomics, with JSON and pretty-table export.
//
// Counters/gauges/histograms are created on first lookup and live for
// the process lifetime, so call sites may cache the returned reference
// across hot loops (a name lookup takes the registry mutex; an update
// is a relaxed atomic op). Cold paths just call hp::obs::counter("x")
// inline.
//
// The pretty-table renderer (render_table) is the single formatter the
// CLI stats flags route through: --peel-stats and --context-stats build
// a MetricsSnapshot from their structs and render it here instead of
// keeping bespoke column code (DESIGN.md section 9).
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace hp::obs {

/// Monotonic counter. add() for event counts; set() for publishing an
/// externally accumulated total (e.g. PeelStats after a peel).
class Counter {
 public:
  void add(std::uint64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void set(std::uint64_t value) {
    value_.store(value, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins scalar.
class Gauge {
 public:
  void set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket latency histogram over nanoseconds: bucket i counts
/// samples in [2^i, 2^(i+1)) ns (bucket 0 holds 0..1 ns), 48 buckets
/// cover everything below ~78 hours. Quantiles are upper bounds read
/// from the bucket boundaries (at most 2x off, plenty for "where did
/// the time go" questions).
class LatencyHistogram {
 public:
  static constexpr int kBuckets = 48;

  void record_ns(std::uint64_t ns);

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t sum_ns() const {
    return sum_ns_.load(std::memory_order_relaxed);
  }
  std::uint64_t bucket(int i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// Upper bound of the bucket holding quantile q (0 < q <= 1), in ns.
  /// 0 when empty.
  std::uint64_t quantile_upper_ns(double q) const;

  /// Zero every bucket and accumulator (not atomic as a whole; callers
  /// quiesce recorders first).
  void reset();

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_ns_{0};
};

struct CounterSample {
  std::string name;
  std::uint64_t value = 0;
};

struct GaugeSample {
  std::string name;
  double value = 0.0;
};

struct HistogramSample {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t sum_ns = 0;
  std::uint64_t p50_ns = 0;  // bucket upper bounds
  std::uint64_t p90_ns = 0;
  std::uint64_t p99_ns = 0;
  std::uint64_t max_ns = 0;
  std::vector<std::uint64_t> buckets;  // trailing zero buckets trimmed
};

/// Point-in-time value dump, sorted by name within each kind. Also the
/// input format of the shared exporters, so modules with their own
/// counter structs (PeelStats, ContextStats) can render through the
/// same code.
struct MetricsSnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
};

/// Process-global named-metric registry.
class Registry {
 public:
  static Registry& global();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  LatencyHistogram& latency(const std::string& name);

  MetricsSnapshot snapshot() const;

  /// Zero every registered metric (tests); names stay registered.
  void reset();

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

 private:
  struct Impl;
  Impl& impl() const;
};

/// Conveniences against the global registry.
Counter& counter(const std::string& name);
Gauge& gauge(const std::string& name);
LatencyHistogram& latency(const std::string& name);

/// Pretty table: `metric | type | value` rows (histograms summarized as
/// count/p50/p90/max with human-readable durations).
std::string render_table(const MetricsSnapshot& snapshot);

/// JSON export: {"counters": {...}, "gauges": {...}, "histograms":
/// {name: {count, sum_ns, p50_ns, ..., buckets}}}.
void write_metrics_json(const MetricsSnapshot& snapshot, std::ostream& out);

/// write_metrics_json to `path`; throws InvalidInputError on failure.
void write_metrics_json_file(const MetricsSnapshot& snapshot,
                             const std::string& path);

}  // namespace hp::obs
