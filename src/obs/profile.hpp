// Sampling CPU profiler: SIGPROF/ITIMER_PROF-driven backtrace sampler
// emitting folded-stack output for flamegraph tooling (DESIGN.md
// section 14).
//
// How it works: start_profiling() arms a process-wide CPU-time interval
// timer (setitimer ITIMER_PROF). The kernel delivers SIGPROF to
// whichever thread is running when the timer expires, so samples
// attribute CPU time across the work-stealing pool's lanes with no
// per-thread setup. The handler walks the frame-pointer chain from the
// interrupted register state (ucontext) into a preallocated flat sample
// buffer -- no allocation, no locks, no library calls: every operation
// in the handler is async-signal-safe. Symbolization (dladdr +
// __cxa_demangle) happens later, in write_folded(), on a normal thread.
//
// Requirements and limits:
//   * Frames resolve only if the binary keeps frame pointers
//     (-fno-omit-frame-pointer, enabled project-wide) and exports its
//     symbols to the dynamic table (-rdynamic, also project-wide);
//     unresolvable frames degrade to hex addresses, never crash.
//   * ITIMER_PROF counts *CPU* time: a thread parked in the pool's
//     sleep_cv accrues no samples. That is what a flamegraph should
//     show; wall-clock gaps belong to the tracer's span timeline.
//   * The sample buffer is fixed at start time; overflow drops samples
//     and counts them (profile_dropped_samples) instead of growing.
//   * One profiler per process (signal handlers are process-global);
//     start_profiling() while active throws.
//
// Overhead budget: at the default ~1 kHz each sample costs a signal
// delivery plus a bounded frame walk (~1-2 us); measured end-to-end
// overhead on the peel benchmark is recorded by bench_micro_obs in
// BENCH_obs.json (profiler_overhead_percent; budget: < 10% at 1 kHz,
// see EXPERIMENTS.md).
//
// Folded output format (Brendan Gregg's flamegraph.pl / speedscope /
// inferno): one line per distinct stack, root;...;leaf <count>.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace hp::obs {

struct ProfileOptions {
  /// Sampling interval in microseconds of process CPU time. The
  /// default, 997 us (~1 kHz), is prime so the sampler cannot phase-
  /// lock with millisecond-periodic workloads.
  std::uint64_t interval_us = 997;
  /// Deepest stack recorded per sample; deeper frames are truncated at
  /// the root end.
  int max_frames = 64;
  /// Sample buffer capacity; at 1 kHz, 65536 samples cover ~65 s of
  /// CPU time. Memory: capacity * (max_frames + 1) words.
  std::size_t max_samples = 65536;
};

/// True between start_profiling() and stop_profiling().
bool profiling_active();

/// Allocate the sample buffer, install the SIGPROF handler and arm the
/// interval timer. Throws InvalidInputError when already active or when
/// the options are degenerate; throws on timer/handler syscall failure.
void start_profiling(const ProfileOptions& options = {});

/// Disarm the timer, restore the previous SIGPROF disposition and stop
/// sampling. Collected samples stay available for write_folded().
/// No-op when not active.
void stop_profiling();

/// Samples collected since the last start_profiling().
std::size_t profile_sample_count();

/// Samples dropped because the buffer was full.
std::size_t profile_dropped_samples();

/// Write collected samples as folded stacks: "root;frame;leaf count"
/// lines, aggregated over identical stacks, symbolized via dladdr with
/// demangling (hex addresses for unresolvable frames). Call after
/// stop_profiling().
void write_folded(std::ostream& out);

/// write_folded to `path`; throws InvalidInputError when the file
/// cannot be opened.
void write_folded_file(const std::string& path);

/// Drop all collected samples (profiler must be stopped).
void reset_profiling();

}  // namespace hp::obs
