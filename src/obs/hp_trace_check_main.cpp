// Structural validator for emitted Chrome traces, built on the obs
// json_check module. CI runs it over the analysis server's request
// trace to assert the causal span trees are well-formed:
//
//   hp_trace_check trace.json [--require-span serve.request]
//                             [--min-spans N]
//
// Exit 0 when every thread is balanced/monotonic, every trace tree is
// single-rooted and connected, parent integrity holds, and (when
// requested) at least N spans with the given name are present.
#include <fstream>
#include <iostream>
#include <sstream>

#include "obs/json_check.hpp"
#include "util/args.hpp"
#include "util/common.hpp"

namespace {

std::size_t count_spans(const hp::obs::json::Value& root,
                        const std::string& name) {
  const hp::obs::json::Value* events = root.find("traceEvents");
  if (events == nullptr) return 0;
  std::size_t count = 0;
  for (const hp::obs::json::Value& event : events->array) {
    const hp::obs::json::Value* ph = event.find("ph");
    const hp::obs::json::Value* event_name = event.find("name");
    if (ph != nullptr && ph->string == "B" && event_name != nullptr &&
        event_name->string == name) {
      ++count;
    }
  }
  return count;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const hp::Args args{argc, argv};
    if (args.positional().empty()) {
      std::cout << "usage: hp_trace_check trace.json "
                   "[--require-span NAME] [--min-spans N]\n";
      return 2;
    }
    const std::string path = args.positional()[0];
    std::ifstream in(path);
    HP_REQUIRE(in.good(), "cannot open '" + path + "'");
    std::ostringstream text;
    text << in.rdbuf();

    const hp::obs::json::Value root = hp::obs::json::parse(text.str());
    const hp::obs::TraceSummary summary = hp::obs::summarize_trace(root);

    std::cout << path << ": " << summary.events << " events, "
              << summary.threads.size() << " threads, "
              << summary.trees.size() << " span trees\n";

    int failures = 0;
    if (!summary.all_balanced()) {
      std::cout << "FAIL: unbalanced begin/end events\n";
      ++failures;
    }
    if (!summary.all_monotonic()) {
      std::cout << "FAIL: non-monotonic timestamps\n";
      ++failures;
    }
    if (!summary.all_single_rooted()) {
      std::cout << "FAIL: a trace tree is not single-rooted/connected\n";
      ++failures;
    }
    if (!summary.parent_integrity) {
      std::cout << "FAIL: dangling span parent references\n";
      ++failures;
    }
    if (args.has("require-span")) {
      const std::string name = args.get("require-span", "");
      const std::size_t count = count_spans(root, name);
      const std::size_t min_spans =
          static_cast<std::size_t>(args.get_int("min-spans", 1));
      std::cout << "spans named '" << name << "': " << count << "\n";
      if (count < min_spans) {
        std::cout << "FAIL: expected at least " << min_spans << '\n';
        ++failures;
      }
    }
    if (failures == 0) {
      std::cout << "trace ok\n";
      return 0;
    }
    return 1;
  } catch (const std::exception& error) {
    std::cout << "error: " << error.what() << '\n';
    return 1;
  }
}
