#include "obs/export.hpp"

#include <unistd.h>

#include <cctype>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <mutex>
#include <ostream>
#include <sstream>
#include <thread>

#include "util/common.hpp"
#include "util/log.hpp"

namespace hp::obs {

namespace {

/// Steady-clock anchor for uptime_ns; initialized on first use.
std::uint64_t uptime_ns_now() {
  static const auto start = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

std::uint64_t unix_ms_now() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

struct CallbackRegistry {
  std::mutex mutex;
  std::map<std::string, std::function<void()>> callbacks;
};

CallbackRegistry& callback_registry() {
  static CallbackRegistry* r = new CallbackRegistry;  // outlives statics
  return *r;
}

/// Prometheus metric names allow [a-zA-Z0-9_:]; everything else (our
/// dots) becomes '_'. A leading digit gets an extra '_' prefix, though
/// the "hp_" prefix already prevents that.
std::string prometheus_name(const std::string& name) {
  std::string out = "hp_";
  for (char c : name) {
    const bool ok = std::isalnum(static_cast<unsigned char>(c)) != 0 ||
                    c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

void write_json_string(std::ostream& out, const std::string& text) {
  out << '"';
  for (char c : text) {
    if (c == '"' || c == '\\') out << '\\';
    out << c;
  }
  out << '"';
}

/// One snapshot as a single JSON line (no pretty printing: JSONL
/// consumers split on '\n').
void write_snapshot_line(const TimedSnapshot& timed, std::ostream& out) {
  out << "{\"unix_ms\": " << timed.unix_ms
      << ", \"uptime_ns\": " << timed.uptime_ns << ", \"counters\": {";
  const MetricsSnapshot& s = timed.snapshot;
  for (std::size_t i = 0; i < s.counters.size(); ++i) {
    if (i != 0) out << ", ";
    write_json_string(out, s.counters[i].name);
    out << ": " << s.counters[i].value;
  }
  out << "}, \"gauges\": {";
  for (std::size_t i = 0; i < s.gauges.size(); ++i) {
    char value[64];
    std::snprintf(value, sizeof value, "%.17g", s.gauges[i].value);
    if (i != 0) out << ", ";
    write_json_string(out, s.gauges[i].name);
    out << ": " << value;
  }
  out << "}, \"histograms\": {";
  for (std::size_t i = 0; i < s.histograms.size(); ++i) {
    const HistogramSample& h = s.histograms[i];
    if (i != 0) out << ", ";
    write_json_string(out, h.name);
    out << ": {\"count\": " << h.count << ", \"sum_ns\": " << h.sum_ns
        << ", \"p50_ns\": " << h.p50_ns << ", \"p90_ns\": " << h.p90_ns
        << ", \"p99_ns\": " << h.p99_ns << ", \"max_ns\": " << h.max_ns
        << "}";
  }
  out << "}}\n";
}

}  // namespace

void register_flush_callback(const std::string& name,
                             std::function<void()> callback) {
  CallbackRegistry& r = callback_registry();
  const std::lock_guard<std::mutex> lock{r.mutex};
  r.callbacks[name] = std::move(callback);
}

void update_process_gauges() {
  // RSS / virtual size from /proc/self/statm (page counts). Absent on
  // non-Linux; the gauges then simply stay at their last value (0).
  if (std::ifstream statm{"/proc/self/statm"}; statm) {
    std::uint64_t vm_pages = 0;
    std::uint64_t rss_pages = 0;
    if (statm >> vm_pages >> rss_pages) {
      const auto page =
          static_cast<std::uint64_t>(::sysconf(_SC_PAGESIZE));
      gauge("process.vm_bytes")
          .set(static_cast<double>(vm_pages * page));
      gauge("process.rss_bytes")
          .set(static_cast<double>(rss_pages * page));
    }
  }

  // Pool idle rate: how many ns of worker idle time accrue per second
  // of wall time, derived from the cumulative par.idle_ns counter over
  // the interval since the previous call. First call publishes 0.
  {
    static std::mutex rate_mutex;
    static std::uint64_t prev_idle_ns = 0;
    static std::uint64_t prev_uptime_ns = 0;
    static bool primed = false;
    const std::lock_guard<std::mutex> lock{rate_mutex};
    const std::uint64_t idle = counter("par.idle_ns").value();
    const std::uint64_t now = uptime_ns_now();
    if (primed && now > prev_uptime_ns) {
      const double rate = static_cast<double>(idle - prev_idle_ns) /
                          (static_cast<double>(now - prev_uptime_ns) / 1e9);
      gauge("par.idle_ns_per_s").set(rate);
    }
    prev_idle_ns = idle;
    prev_uptime_ns = now;
    primed = true;
  }

  // Registered contributors (the thread pool publishes par.queue_depth
  // here; see ThreadPool::global()).
  std::vector<std::function<void()>> callbacks;
  {
    CallbackRegistry& r = callback_registry();
    const std::lock_guard<std::mutex> lock{r.mutex};
    callbacks.reserve(r.callbacks.size());
    for (const auto& [name, fn] : r.callbacks) callbacks.push_back(fn);
  }
  for (const auto& fn : callbacks) fn();
}

void write_prometheus(const MetricsSnapshot& snapshot, std::ostream& out) {
  for (const CounterSample& s : snapshot.counters) {
    const std::string name = prometheus_name(s.name);
    out << "# TYPE " << name << " counter\n";
    out << name << ' ' << s.value << '\n';
  }
  for (const GaugeSample& s : snapshot.gauges) {
    const std::string name = prometheus_name(s.name);
    char value[64];
    std::snprintf(value, sizeof value, "%.17g", s.value);
    out << "# TYPE " << name << " gauge\n";
    out << name << ' ' << value << '\n';
  }
  for (const HistogramSample& s : snapshot.histograms) {
    const std::string name = prometheus_name(s.name);
    out << "# TYPE " << name << " summary\n";
    out << name << "{quantile=\"0.5\"} " << s.p50_ns << '\n';
    out << name << "{quantile=\"0.9\"} " << s.p90_ns << '\n';
    out << name << "{quantile=\"0.99\"} " << s.p99_ns << '\n';
    out << name << "_sum " << s.sum_ns << '\n';
    out << name << "_count " << s.count << '\n';
  }
}

void write_prometheus_file(const MetricsSnapshot& snapshot,
                           const std::string& path) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out{tmp, std::ios::trunc};
    if (!out) {
      throw InvalidInputError{"cannot open metrics output file '" + tmp +
                              "'"};
    }
    write_prometheus(snapshot, out);
    if (!out.flush()) {
      throw InvalidInputError{"failed writing metrics to '" + tmp + "'"};
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw InvalidInputError{"cannot replace metrics file '" + path + "'"};
  }
}

void append_metrics_jsonl(const TimedSnapshot& snapshot,
                          const std::string& path) {
  std::ofstream out{path, std::ios::app};
  if (!out) {
    throw InvalidInputError{"cannot open metrics output file '" + path +
                            "'"};
  }
  write_snapshot_line(snapshot, out);
}

std::optional<std::chrono::milliseconds> parse_metrics_interval(
    const std::string& text) {
  if (text.empty()) return std::nullopt;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || value <= 0) return std::nullopt;
  const std::string unit = end;
  double ms = 0;
  if (unit.empty() || unit == "ms") {
    ms = value;
  } else if (unit == "s") {
    ms = value * 1000.0;
  } else {
    return std::nullopt;
  }
  if (ms < 1.0) ms = 1.0;
  return std::chrono::milliseconds{static_cast<std::int64_t>(ms)};
}

std::optional<std::chrono::milliseconds> metrics_interval_from_env() {
  const char* text = std::getenv("HP_METRICS_INTERVAL");
  return text != nullptr ? parse_metrics_interval(text) : std::nullopt;
}

struct MetricsExporter::Impl {
  mutable std::mutex mutex;
  std::condition_variable cv;
  std::thread thread;
  bool running = false;
  bool stopping = false;
  ExportOptions options;
  std::vector<TimedSnapshot> ring;  // ring.size() <= ring_capacity
  std::size_t ring_next = 0;        // next write position once full
  std::atomic<std::uint64_t> flushes{0};

  void flush_locked_config() {
    // Snapshot the sink config under the lock, then do the slow I/O
    // outside it so flush_now() never blocks metric updates.
    ExportOptions opts;
    {
      const std::lock_guard<std::mutex> lock{mutex};
      opts = options;
    }
    update_process_gauges();
    TimedSnapshot timed;
    timed.unix_ms = unix_ms_now();
    timed.uptime_ns = uptime_ns_now();
    timed.snapshot = Registry::global().snapshot();
    {
      const std::lock_guard<std::mutex> lock{mutex};
      if (ring.size() < options.ring_capacity) {
        ring.push_back(timed);
      } else if (!ring.empty()) {
        ring[ring_next] = timed;
        ring_next = (ring_next + 1) % ring.size();
      }
    }
    if (!opts.jsonl_path.empty()) {
      append_metrics_jsonl(timed, opts.jsonl_path);
    }
    if (!opts.prom_path.empty()) {
      write_prometheus_file(timed.snapshot, opts.prom_path);
    }
    flushes.fetch_add(1, std::memory_order_relaxed);
  }

  void thread_main() {
    std::unique_lock<std::mutex> lock{mutex};
    while (!stopping) {
      const auto interval = options.interval;
      cv.wait_for(lock, interval, [this] { return stopping; });
      if (stopping) break;
      lock.unlock();
      try {
        flush_locked_config();
      } catch (const std::exception& error) {
        log_warn() << "metrics export flush failed: " << error.what();
      }
      lock.lock();
    }
  }
};

MetricsExporter::MetricsExporter() : impl_(new Impl) {}

MetricsExporter::~MetricsExporter() {
  stop();
  delete impl_;
}

void MetricsExporter::start(const ExportOptions& options) {
  Impl& i = impl();
  HP_REQUIRE(options.interval.count() > 0,
             "metrics export interval must be > 0");
  HP_REQUIRE(options.ring_capacity > 0,
             "metrics export ring capacity must be > 0");
  {
    const std::lock_guard<std::mutex> lock{i.mutex};
    HP_REQUIRE(!i.running, "metrics exporter is already running");
    i.options = options;
    i.stopping = false;
    i.ring.clear();
    i.ring_next = 0;
    i.flushes.store(0, std::memory_order_relaxed);
    i.running = true;
  }
  i.thread = std::thread{[&i] { i.thread_main(); }};
}

void MetricsExporter::stop() {
  Impl& i = impl();
  {
    const std::lock_guard<std::mutex> lock{i.mutex};
    if (!i.running) return;
    i.stopping = true;
  }
  i.cv.notify_all();
  if (i.thread.joinable()) i.thread.join();
  try {
    i.flush_locked_config();  // sinks end on a complete snapshot
  } catch (const std::exception& error) {
    log_warn() << "metrics export final flush failed: " << error.what();
  }
  const std::lock_guard<std::mutex> lock{i.mutex};
  i.running = false;
}

bool MetricsExporter::running() const {
  Impl& i = impl();
  const std::lock_guard<std::mutex> lock{i.mutex};
  return i.running;
}

void MetricsExporter::flush_now() { impl().flush_locked_config(); }

std::uint64_t MetricsExporter::flush_count() const {
  return impl().flushes.load(std::memory_order_relaxed);
}

std::vector<TimedSnapshot> MetricsExporter::ring() const {
  Impl& i = impl();
  const std::lock_guard<std::mutex> lock{i.mutex};
  std::vector<TimedSnapshot> out;
  out.reserve(i.ring.size());
  // Oldest first: entries [ring_next, end) then [0, ring_next).
  for (std::size_t k = 0; k < i.ring.size(); ++k) {
    out.push_back(i.ring[(i.ring_next + k) % i.ring.size()]);
  }
  return out;
}

MetricsExporter& MetricsExporter::global() {
  static MetricsExporter* exporter = new MetricsExporter;  // leaked
  return *exporter;
}

}  // namespace hp::obs
