// Tracing facility: RAII scoped spans and counter events on per-thread
// buffers, exported as Chrome trace-event JSON (chrome://tracing,
// Perfetto, `about:tracing`).
//
// Design constraints (DESIGN.md sections 9 and 14):
//   * A span site in a hot path must be almost free when tracing is off:
//     the TraceSpan constructor performs exactly one relaxed atomic load
//     and no allocation, then bails. bench_micro_obs measures this and
//     scripts/ci.sh gates the derived disabled overhead at <= 0.1%.
//   * When tracing is on, events go to a thread-local buffer (one mutex
//     acquisition per event, always uncontended except against a
//     concurrent flush), so worker threads never serialize on a global
//     sink. Buffers are registered once per thread and persist for the
//     process lifetime; reset_tracing() clears their contents without
//     invalidating the thread-local pointers.
//   * Span and counter names must be string literals (or otherwise
//     outlive the trace): events store the pointer, never a copy.
//     Dynamic values ride in the integer `arg` (exported as args.k).
//
// Event model: spans emit paired B/E duration events at construction and
// destruction. Appending at both endpoints keeps every thread's buffer
// ordered by timestamp, which the exporter (and the satellite test's
// "strictly non-decreasing ts per thread" assertion) relies on. Counter
// events (`ph: "C"`) interleave on the same per-thread timeline.
//
// Request-scoped causality (DESIGN.md section 14): every enabled span
// gets a process-unique span id and records the ambient TraceContext --
// the innermost open span on the current thread -- as its parent. A
// span opening with no ambient context starts a new trace (fresh trace
// id), so one CLI command = one trace tree. The context is carried
// thread-locally and captured/restored across src/par/ task boundaries
// (TaskGroup::run wraps task bodies in a TaskScope), so spans emitted
// by pool workers -- including stolen tasks -- parent into the
// submitting operation's tree instead of forming disjoint per-thread
// strips. B events export args.trace/args.span/args.parent; task
// hand-offs additionally emit Chrome flow events (ph "s"/"f") so the
// tracing UI draws cross-thread arrows.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace hp::obs {

/// The global runtime switch. Off by default; flipping it on starts
/// recording into per-thread buffers.
bool tracing_enabled();
void set_tracing_enabled(bool on);

/// Nanoseconds on the steady clock since the trace epoch (process start
/// or the last reset_tracing()).
std::uint64_t trace_now_ns();

/// Sentinel for "span has no integer argument".
inline constexpr std::uint64_t kNoTraceArg = ~std::uint64_t{0};

/// Ambient causal position: the trace we are inside and the innermost
/// open span. {0, 0} = "no trace context" (a span opened here roots a
/// new trace). Plain values -- cheap to capture at a task-spawn site
/// and restore on whichever thread (or steal victim) runs the task.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;  // parent for spans opened under this scope

  bool valid() const { return trace_id != 0; }
};

/// The calling thread's ambient context (two thread-local reads).
TraceContext current_trace_context();

/// RAII: make `context` the calling thread's ambient context, restoring
/// the previous one on destruction. This is how a task body adopts the
/// context captured where the task was spawned.
class TraceContextScope {
 public:
  explicit TraceContextScope(TraceContext context);
  ~TraceContextScope();

  TraceContextScope(const TraceContextScope&) = delete;
  TraceContextScope& operator=(const TraceContextScope&) = delete;

 private:
  TraceContext previous_;
};

/// Slow-span watchdog: any span whose wall duration exceeds the
/// threshold is logged (hp::log_warn, with its trace/span ids) and
/// counted in the obs.slow_spans metric when it closes. 0 disables the
/// check (the default). Active only while tracing is on -- the span
/// fast path stays one relaxed load when tracing is off.
void set_slow_span_threshold_ns(std::uint64_t threshold_ns);
std::uint64_t slow_span_threshold_ns();

namespace detail {

bool enabled_relaxed();

/// State a TraceSpan carries between construction and destruction.
struct SpanState {
  TraceContext previous;       // ambient context to restore
  std::uint64_t start_ns = 0;  // for the slow-span watchdog
};

SpanState begin_span(const char* name, std::uint64_t arg);
void end_span(const char* name, const SpanState& state);

}  // namespace detail

/// RAII scoped span. Emits a B event when constructed (if tracing is on)
/// and the matching E event when destroyed. `name` must be a literal.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, std::uint64_t arg = kNoTraceArg)
      : name_(nullptr) {
    if (!detail::enabled_relaxed()) return;  // 1 relaxed load, no alloc
    name_ = name;
    state_ = detail::begin_span(name, arg);
  }
  ~TraceSpan() {
    if (name_ != nullptr) detail::end_span(name_, state_);
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;  // nullptr = tracing was off at construction
  detail::SpanState state_;
};

/// Cross-thread task hand-off, one per spawned task. Captured on the
/// spawning thread (inside the parent span); the running thread -- which
/// may be a steal victim -- opens a TaskScope from it. When tracing is
/// on the capture emits a flow-start event ("s") and the TaskScope emits
/// the matching flow-finish ("f") under a "par.task" span, so Chrome
/// draws an arrow from spawn site to execution site. When tracing is
/// off both sides are no-ops (flow_id 0).
struct TaskLink {
  TraceContext context;
  std::uint64_t flow_id = 0;
};

/// Capture the ambient context for a task about to be spawned; emits
/// the flow-start event when tracing is on.
TaskLink capture_task_link();

/// RAII task body scope: restores the captured context, opens a
/// "par.task" span and emits the flow-finish event. Use on the thread
/// that actually runs the task.
class TaskScope {
 public:
  explicit TaskScope(const TaskLink& link);
  ~TaskScope();

  TaskScope(const TaskScope&) = delete;
  TaskScope& operator=(const TaskScope&) = delete;

 private:
  TraceContextScope scope_;
  TraceSpan span_;
};

/// Emit a counter sample on the calling thread's timeline. No-op (one
/// relaxed load) when tracing is off. `name` must be a literal.
void trace_counter(const char* name, double value);

/// Current nesting depth of the calling thread's span stack (0 outside
/// any span). Only meaningful while tracing is on.
std::size_t trace_span_depth();

/// Total buffered events across all threads (B + E + C + flows).
std::size_t trace_event_count();

/// Drop all buffered events and restart the trace epoch. Call with
/// worker threads quiescent.
void reset_tracing();

/// Write every buffered event as Chrome trace-event JSON
/// ({"traceEvents": [...]}, ts/dur in microseconds). Call with worker
/// threads quiescent (buffers are locked one at a time, but a mid-write
/// span would split its B/E pair across the file boundary).
void write_chrome_trace(std::ostream& out);

/// write_chrome_trace to `path`; throws InvalidInputError when the file
/// cannot be opened.
void write_chrome_trace_file(const std::string& path);

// Concatenation helper so two HP_TRACE_SPANs may share a line-numbered
// scope without colliding.
#define HP_OBS_CONCAT_INNER(a, b) a##b
#define HP_OBS_CONCAT(a, b) HP_OBS_CONCAT_INNER(a, b)

/// Scoped span covering the rest of the enclosing block.
/// Usage: HP_TRACE_SPAN("kcore.decomposition");
///        HP_TRACE_SPAN("kcore.peel_level", k);
#define HP_TRACE_SPAN(...) \
  ::hp::obs::TraceSpan HP_OBS_CONCAT(hp_trace_span_, __LINE__) { __VA_ARGS__ }

}  // namespace hp::obs
