// Tracing facility: RAII scoped spans and counter events on per-thread
// buffers, exported as Chrome trace-event JSON (chrome://tracing,
// Perfetto, `about:tracing`).
//
// Design constraints (DESIGN.md section 9):
//   * A span site in a hot path must be almost free when tracing is off:
//     the TraceSpan constructor performs exactly one relaxed atomic load
//     and no allocation, then bails. bench_micro_obs measures this.
//   * When tracing is on, events go to a thread-local buffer (one mutex
//     acquisition per event, always uncontended except against a
//     concurrent flush), so worker threads never serialize on a global
//     sink. Buffers are registered once per thread and persist for the
//     process lifetime; reset_tracing() clears their contents without
//     invalidating the thread-local pointers.
//   * Span and counter names must be string literals (or otherwise
//     outlive the trace): events store the pointer, never a copy.
//     Dynamic values ride in the integer `arg` (exported as args.k).
//
// Event model: spans emit paired B/E duration events at construction and
// destruction. Appending at both endpoints keeps every thread's buffer
// ordered by timestamp, which the exporter (and the satellite test's
// "strictly non-decreasing ts per thread" assertion) relies on. Counter
// events (`ph: "C"`) interleave on the same per-thread timeline.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace hp::obs {

/// The global runtime switch. Off by default; flipping it on starts
/// recording into per-thread buffers.
bool tracing_enabled();
void set_tracing_enabled(bool on);

/// Nanoseconds on the steady clock since the trace epoch (process start
/// or the last reset_tracing()).
std::uint64_t trace_now_ns();

/// Sentinel for "span has no integer argument".
inline constexpr std::uint64_t kNoTraceArg = ~std::uint64_t{0};

namespace detail {
void record_begin(const char* name, std::uint64_t arg);
void record_end(const char* name);
bool enabled_relaxed();
}  // namespace detail

/// RAII scoped span. Emits a B event when constructed (if tracing is on)
/// and the matching E event when destroyed. `name` must be a literal.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, std::uint64_t arg = kNoTraceArg)
      : name_(nullptr) {
    if (!detail::enabled_relaxed()) return;  // 1 relaxed load, no alloc
    name_ = name;
    detail::record_begin(name, arg);
  }
  ~TraceSpan() {
    if (name_ != nullptr) detail::record_end(name_);
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;  // nullptr = tracing was off at construction
};

/// Emit a counter sample on the calling thread's timeline. No-op (one
/// relaxed load) when tracing is off. `name` must be a literal.
void trace_counter(const char* name, double value);

/// Current nesting depth of the calling thread's span stack (0 outside
/// any span). Only meaningful while tracing is on.
std::size_t trace_span_depth();

/// Total buffered events across all threads (B + E + C).
std::size_t trace_event_count();

/// Drop all buffered events and restart the trace epoch. Call with
/// worker threads quiescent.
void reset_tracing();

/// Write every buffered event as Chrome trace-event JSON
/// ({"traceEvents": [...]}, ts/dur in microseconds). Call with worker
/// threads quiescent (buffers are locked one at a time, but a mid-write
/// span would split its B/E pair across the file boundary).
void write_chrome_trace(std::ostream& out);

/// write_chrome_trace to `path`; throws InvalidInputError when the file
/// cannot be opened.
void write_chrome_trace_file(const std::string& path);

// Concatenation helper so two HP_TRACE_SPANs may share a line-numbered
// scope without colliding.
#define HP_OBS_CONCAT_INNER(a, b) a##b
#define HP_OBS_CONCAT(a, b) HP_OBS_CONCAT_INNER(a, b)

/// Scoped span covering the rest of the enclosing block.
/// Usage: HP_TRACE_SPAN("kcore.decomposition");
///        HP_TRACE_SPAN("kcore.peel_level", k);
#define HP_TRACE_SPAN(...) \
  ::hp::obs::TraceSpan HP_OBS_CONCAT(hp_trace_span_, __LINE__) { __VA_ARGS__ }

}  // namespace hp::obs
