#include "util/declared_sizes.hpp"

namespace hp::io {

index_t check_declared_count(long long value, const char* what,
                             const std::string& where) {
  if (value < 0 || value > kMaxDeclaredEntities) {
    throw ParseError{where + ": " + what + " " + std::to_string(value) +
                     " out of range"};
  }
  return static_cast<index_t>(value);
}

void check_declared_sizes(unsigned long long num_vertices,
                          unsigned long long num_edges,
                          unsigned long long num_pins,
                          std::size_t input_bytes, const char* format) {
  const auto limit = static_cast<unsigned long long>(kMaxDeclaredEntities);
  if (num_vertices > limit) {
    throw ParseError{std::string{format} + ": vertex count " +
                     std::to_string(num_vertices) + " out of range"};
  }
  if (num_edges > limit) {
    throw ParseError{std::string{format} + ": edge count " +
                     std::to_string(num_edges) + " out of range"};
  }
  if (num_pins > input_bytes) {
    throw ParseError{std::string{format} + ": pin count " +
                     std::to_string(num_pins) + " exceeds input size"};
  }
}

}  // namespace hp::io
