// Wall-clock timing helpers for benchmark tables.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

namespace hp {

/// Monotonic wall-clock stopwatch.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double milliseconds() const { return seconds() * 1e3; }

  /// Integer elapsed nanoseconds (the obs latency histograms' unit);
  /// exact where seconds() would round through a double.
  std::uint64_t nanoseconds() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Format a duration the way the paper's Table 1 does: "0.47 s",
/// "1.2 m", "3.1 h" -- picking the largest unit that keeps the value
/// >= 1, down through ms/us/ns for sub-second values.
std::string format_duration(double seconds);

}  // namespace hp
