// Bucket priority queue for peeling algorithms (graph k-core a la
// Batagelj-Zaversnik). Supports decrease-key in O(1) by moving an item
// between buckets; extract-min is amortized O(1) over a peeling run
// because the minimum pointer only moves forward by at most 1 per
// decrease and the total forward motion is bounded by max priority.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <vector>

#include "util/common.hpp"

namespace hp {

/// Priority queue over items 0..n-1 with integer priorities in
/// [0, max_priority]. Designed for min-degree peeling: priorities only
/// decrease (decrease_key) or items are removed (pop_min / erase).
class BucketQueue {
 public:
  /// Build from initial priorities; priorities.size() items.
  BucketQueue(const std::vector<index_t>& priorities, index_t max_priority);

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  bool contains(index_t item) const {
    return position_[item] != kInvalidIndex;
  }

  index_t priority(index_t item) const { return priority_[item]; }

  /// Remove and return an item of minimum priority, along with that
  /// priority via out-param. Throws std::logic_error when empty.
  index_t pop_min(index_t& min_priority_out);

  /// Lower `item`'s priority to `new_priority` (must be <= current).
  void decrease_key(index_t item, index_t new_priority);

  /// Remove an item that is still in the queue.
  void erase(index_t item);

 private:
  void remove_from_bucket(index_t item);
  void add_to_bucket(index_t item, index_t priority);

  // buckets_[p] lists items with priority p; position_[i] is the index of
  // item i within its bucket, or kInvalidIndex when not in the queue.
  std::vector<std::vector<index_t>> buckets_;
  std::vector<index_t> position_;
  std::vector<index_t> priority_;
  index_t cursor_ = 0;  // all buckets below cursor_ are empty
  std::size_t size_ = 0;
};

inline BucketQueue::BucketQueue(const std::vector<index_t>& priorities,
                                index_t max_priority)
    : buckets_(static_cast<std::size_t>(max_priority) + 1),
      position_(priorities.size(), kInvalidIndex),
      priority_(priorities) {
  for (index_t i = 0; i < priorities.size(); ++i) {
    if (priorities[i] > max_priority) {
      throw std::invalid_argument{
          "BucketQueue: priority exceeds max_priority"};
    }
    add_to_bucket(i, priorities[i]);
  }
  size_ = priorities.size();
}

inline index_t BucketQueue::pop_min(index_t& min_priority_out) {
  if (size_ == 0) throw std::logic_error{"BucketQueue::pop_min: empty"};
  while (buckets_[cursor_].empty()) ++cursor_;
  const index_t item = buckets_[cursor_].back();
  buckets_[cursor_].pop_back();
  position_[item] = kInvalidIndex;
  --size_;
  min_priority_out = cursor_;
  return item;
}

inline void BucketQueue::decrease_key(index_t item, index_t new_priority) {
  if (position_[item] == kInvalidIndex) {
    throw std::logic_error{"BucketQueue::decrease_key: item not in queue"};
  }
  if (new_priority > priority_[item]) {
    throw std::invalid_argument{
        "BucketQueue::decrease_key: new priority exceeds current"};
  }
  if (new_priority == priority_[item]) return;
  remove_from_bucket(item);
  add_to_bucket(item, new_priority);
  if (new_priority < cursor_) cursor_ = new_priority;
}

inline void BucketQueue::erase(index_t item) {
  if (position_[item] == kInvalidIndex) {
    throw std::logic_error{"BucketQueue::erase: item not in queue"};
  }
  remove_from_bucket(item);
  position_[item] = kInvalidIndex;
  --size_;
}

inline void BucketQueue::remove_from_bucket(index_t item) {
  auto& bucket = buckets_[priority_[item]];
  const index_t pos = position_[item];
  const index_t last = bucket.back();
  bucket[pos] = last;
  position_[last] = pos;
  bucket.pop_back();
}

inline void BucketQueue::add_to_bucket(index_t item, index_t priority) {
  priority_[item] = priority;
  position_[item] = static_cast<index_t>(buckets_[priority].size());
  buckets_[priority].push_back(item);
}

}  // namespace hp
