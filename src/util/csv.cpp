#include "util/csv.hpp"

#include <fstream>
#include <stdexcept>

#include "util/common.hpp"

namespace hp {

namespace {
bool needs_quoting(const std::string& field) {
  return field.find_first_of(",\"\n\r") != std::string::npos;
}

std::string escape(const std::string& field) {
  if (!needs_quoting(field)) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}
}  // namespace

void CsvWriter::add_row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) buffer_ += ',';
    buffer_ += escape(fields[i]);
  }
  buffer_ += '\n';
}

void CsvWriter::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error{"CsvWriter: cannot open " + path};
  out << buffer_;
  if (!out) throw std::runtime_error{"CsvWriter: write failed for " + path};
}

std::vector<std::vector<std::string>> parse_csv(const std::string& text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;

  auto end_field = [&] {
    row.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  auto end_row = [&] {
    if (field_started || !field.empty() || !row.empty()) {
      end_field();
      rows.push_back(std::move(row));
      row.clear();
    }
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        field_started = true;
        break;
      case ',':
        end_field();
        field_started = true;  // next field exists even if empty
        break;
      case '\r':
        break;  // tolerate CRLF
      case '\n':
        end_row();
        break;
      default:
        field += c;
        field_started = true;
    }
  }
  if (in_quotes) throw ParseError{"parse_csv: unterminated quoted field"};
  end_row();
  return rows;
}

}  // namespace hp
