#include "util/histogram.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace hp {

Histogram::Histogram(const std::vector<std::size_t>& values) {
  for (std::size_t v : values) add(v);
}

void Histogram::add(std::size_t value, std::size_t count) {
  if (value >= freq_.size()) freq_.resize(value + 1, 0);
  freq_[value] += count;
  total_ += count;
}

void Histogram::remove(std::size_t value, std::size_t count) {
  if (value >= freq_.size() || freq_[value] < count) {
    throw std::logic_error{"Histogram::remove: underflow"};
  }
  freq_[value] -= count;
  total_ -= count;
  while (!freq_.empty() && freq_.back() == 0) freq_.pop_back();
}

std::size_t Histogram::count(std::size_t value) const {
  return value < freq_.size() ? freq_[value] : 0;
}

std::size_t Histogram::max_value() const {
  for (std::size_t v = freq_.size(); v-- > 0;) {
    if (freq_[v] > 0) return v;
  }
  return 0;
}

std::size_t Histogram::min_value() const {
  for (std::size_t v = 0; v < freq_.size(); ++v) {
    if (freq_[v] > 0) return v;
  }
  return 0;
}

double Histogram::mean() const {
  if (total_ == 0) return 0.0;
  double sum = 0.0;
  for (std::size_t v = 0; v < freq_.size(); ++v) {
    sum += static_cast<double>(v) * static_cast<double>(freq_[v]);
  }
  return sum / static_cast<double>(total_);
}

double Histogram::variance() const {
  if (total_ == 0) return 0.0;
  const double m = mean();
  double sum = 0.0;
  for (std::size_t v = 0; v < freq_.size(); ++v) {
    const double d = static_cast<double>(v) - m;
    sum += d * d * static_cast<double>(freq_[v]);
  }
  return sum / static_cast<double>(total_);
}

std::size_t Histogram::percentile(double p) const {
  if (total_ == 0) throw std::logic_error{"Histogram::percentile: empty"};
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument{"Histogram::percentile: p out of [0,1]"};
  }
  if (p == 0.0) return min_value();
  const double target = p * static_cast<double>(total_);
  std::size_t cumulative = 0;
  for (std::size_t v = 0; v < freq_.size(); ++v) {
    cumulative += freq_[v];
    if (static_cast<double>(cumulative) >= target) return v;
  }
  return max_value();
}

std::string Histogram::to_string() const {
  std::ostringstream out;
  for (std::size_t v = 0; v < freq_.size(); ++v) {
    if (freq_[v] > 0) out << v << ' ' << freq_[v] << '\n';
  }
  return out.str();
}

}  // namespace hp
