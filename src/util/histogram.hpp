// Integer-valued frequency tables (degree histograms) with summary
// statistics, used throughout the property analyses.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace hp {

/// A frequency table over non-negative integer values (e.g. degrees).
class Histogram {
 public:
  Histogram() = default;

  /// Build from raw values.
  explicit Histogram(const std::vector<std::size_t>& values);

  void add(std::size_t value, std::size_t count = 1);

  /// Remove observations previously added. Keeps the table in the same
  /// canonical form a freshly-built histogram has (no trailing
  /// zero-frequency buckets), so an incrementally maintained histogram
  /// compares bit-identical to a rebuilt one. Throws std::logic_error
  /// on underflow.
  void remove(std::size_t value, std::size_t count = 1);

  /// Number of observations with exactly this value.
  std::size_t count(std::size_t value) const;

  /// Total number of observations.
  std::size_t total() const { return total_; }

  /// Largest observed value (0 if empty).
  std::size_t max_value() const;

  /// Smallest observed value (0 if empty).
  std::size_t min_value() const;

  double mean() const;
  double variance() const;

  /// p in [0, 1]; returns the smallest value v such that at least
  /// p * total() observations are <= v. Throws if empty.
  std::size_t percentile(double p) const;

  /// frequencies()[v] == count(v); sized max_value()+1 (empty when total()==0).
  const std::vector<std::size_t>& frequencies() const { return freq_; }

  /// Render an ASCII log-log style listing: "value count" per line,
  /// skipping zero-frequency values.
  std::string to_string() const;

 private:
  std::vector<std::size_t> freq_;
  std::size_t total_ = 0;
};

}  // namespace hp
