#include "util/rng.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

namespace hp {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  std::uint64_t z = (x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& word : s_) word = splitmix64(x);
  // A state of all zeros is the one forbidden state for xoshiro; splitmix64
  // cannot produce it from any seed, but guard anyway.
  if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0) s_[0] = 1;
}

std::uint64_t Rng::uniform(std::uint64_t n) {
  if (n == 0) throw std::invalid_argument{"Rng::uniform: n must be positive"};
  // Lemire's nearly-divisionless method.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < n) {
    std::uint64_t t = -n % n;
    while (l < t) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo > hi)
    throw std::invalid_argument{"Rng::uniform_int: empty range"};
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>((*this)());
  }
  return lo + static_cast<std::int64_t>(uniform(span));
}

double Rng::normal(double mean, double stddev) {
  // Box-Muller; discard the second variate for reproducibility under
  // arbitrary call interleavings.
  double u1 = uniform01();
  double u2 = uniform01();
  while (u1 <= 0.0) u1 = uniform01();
  const double r = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * r * std::cos(2.0 * M_PI * u2);
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

std::uint64_t Rng::zipf(std::uint64_t n, double s) {
  if (n == 0) throw std::invalid_argument{"Rng::zipf: n must be positive"};
  if (s <= 0.0) throw std::invalid_argument{"Rng::zipf: s must be positive"};
  // Rejection-inversion sampling (Hormann & Derflinger 1996) for the
  // Zipf distribution on {1, ..., n} with P(k) proportional to k^-s.
  // Handles s == 1 via the logarithmic antiderivative.
  const double sm1 = s - 1.0;
  auto H = [&](double x) -> double {
    // Antiderivative of x^-s.
    if (std::abs(sm1) < 1e-12) return std::log(x);
    return std::pow(x, -sm1) / -sm1;
  };
  auto Hinv = [&](double y) -> double {
    if (std::abs(sm1) < 1e-12) return std::exp(y);
    return std::pow(-sm1 * y, -1.0 / sm1);
  };
  const double h_x1 = H(1.5) - 1.0;
  const double h_n = H(static_cast<double>(n) + 0.5);
  for (;;) {
    const double u = h_x1 + uniform01() * (h_n - h_x1);
    const double x = Hinv(u);
    const std::uint64_t k =
        static_cast<std::uint64_t>(std::max(1.0, std::min(
            static_cast<double>(n), std::floor(x + 0.5))));
    const double kd = static_cast<double>(k);
    if (u >= H(kd + 0.5) - std::pow(kd, -s)) return k;
  }
}

AliasTable::AliasTable(const std::vector<double>& weights) {
  const std::size_t n = weights.size();
  if (n == 0)
    throw std::invalid_argument{"AliasTable: weights must be non-empty"};
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0)
      throw std::invalid_argument{"AliasTable: weights must be non-negative"};
    total += w;
  }
  if (total <= 0.0)
    throw std::invalid_argument{"AliasTable: total weight must be positive"};

  prob_.assign(n, 0.0);
  alias_.assign(n, 0);
  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i)
    scaled[i] = weights[i] * static_cast<double>(n) / total;

  std::vector<std::uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  for (std::uint32_t i : large) prob_[i] = 1.0;
  for (std::uint32_t i : small) prob_[i] = 1.0;  // numerical leftovers
}

std::size_t AliasTable::sample(Rng& rng) const {
  const std::size_t i = rng.pick(prob_.size());
  return rng.uniform01() < prob_[i] ? i : alias_[i];
}

}  // namespace hp
