// Small string helpers used by the file-format parsers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace hp {

/// Strip ASCII whitespace from both ends.
std::string_view trim(std::string_view s);

/// Split on a single delimiter character; empty fields are preserved.
std::vector<std::string_view> split(std::string_view s, char delim);

/// Split on runs of ASCII whitespace; empty fields never appear.
std::vector<std::string_view> split_whitespace(std::string_view s);

/// True if `s` starts with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// Case-insensitive ASCII equality.
bool iequals(std::string_view a, std::string_view b);

/// Lowercase an ASCII string.
std::string to_lower(std::string_view s);

/// Parse helpers; throw hp::ParseError on malformed input so that file
/// parsers surface a useful line-level message.
long long parse_int(std::string_view s);
double parse_double(std::string_view s);

/// Join elements with a separator.
std::string join(const std::vector<std::string>& parts,
                 std::string_view separator);

}  // namespace hp
