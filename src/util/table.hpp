// ASCII table rendering for benchmark output. Each bench prints the same
// rows the paper reports, aligned for human reading and trivially
// machine-parseable (pipe-separated).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hp {

/// Column-aligned text table with a header row.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Begin a new row; subsequent cell() calls fill it left to right.
  Table& row();

  Table& cell(const std::string& value);
  Table& cell(const char* value);
  Table& cell(std::int64_t value);
  Table& cell(std::uint64_t value);
  Table& cell(int value);
  Table& cell(unsigned value);
  /// Fixed-precision real cell.
  Table& cell(double value, int precision = 3);

  std::size_t num_rows() const { return rows_.size(); }
  std::size_t num_columns() const { return headers_.size(); }

  /// Render with padded columns, ' | ' separators and a rule under the
  /// header.
  std::string to_string() const;

  /// Print to stdout.
  void print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hp
