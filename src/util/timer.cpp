#include "util/timer.hpp"

#include <cstdio>

namespace hp {

std::string format_duration(double seconds) {
  char buf[64];
  if (seconds >= 3600.0) {
    std::snprintf(buf, sizeof buf, "%.2f h", seconds / 3600.0);
  } else if (seconds >= 60.0) {
    std::snprintf(buf, sizeof buf, "%.2f m", seconds / 60.0);
  } else if (seconds >= 1.0) {
    std::snprintf(buf, sizeof buf, "%.2f s", seconds);
  } else if (seconds >= 1e-3) {
    std::snprintf(buf, sizeof buf, "%.2f ms", seconds * 1e3);
  } else if (seconds >= 1e-6) {
    std::snprintf(buf, sizeof buf, "%.1f us", seconds * 1e6);
  } else {
    std::snprintf(buf, sizeof buf, "%.0f ns", seconds * 1e9);
  }
  return buf;
}

}  // namespace hp
